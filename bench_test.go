// Benchmarks regenerating the paper's figures (see DESIGN.md §3 and
// EXPERIMENTS.md). The paper is a position paper with conceptual figures,
// so each benchmark quantifies the claim its figure makes:
//
//	Figure 1: one environment hosts all four time-space quadrants
//	Figure 2: isolated pairwise interop costs O(N²) adapters
//	Figure 3: environment interop costs O(N) registrations
//	Figure 4: the CSCW environment is a thin layer over the ODP environment
package mocca

import (
	"fmt"
	"math"
	"testing"
	"time"

	"mocca/internal/access"
	"mocca/internal/activity"
	"mocca/internal/directory"
	"mocca/internal/information"
	"mocca/internal/interop"
	"mocca/internal/mhs"
	"mocca/internal/netsim"
	"mocca/internal/odp"
	"mocca/internal/placement"
	"mocca/internal/rpc"
	"mocca/internal/rtc"
	"mocca/internal/trader"
	"mocca/internal/transparency"
	"mocca/internal/vclock"
)

// --- Figure 1: the groupware time-space matrix ---------------------------

// benchSimRTC measures one shared-state update fanned out to nUsers
// sessions, local (same node) or remote.
func benchSimRTC(b *testing.B, nUsers int, colocated bool) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
	srvEP := rpc.NewEndpoint(net.MustAddNode("mcu"), clk)
	server := rtc.NewServer(srvEP, clk)
	cid, err := server.CreateConference("bench", rtc.ModeOpen)
	if err != nil {
		b.Fatal(err)
	}
	sessions := make([]*rtc.Session, nUsers)
	for i := range sessions {
		node := netsim.Address(fmt.Sprintf("u%d", i))
		if colocated {
			node = netsim.Address(fmt.Sprintf("room-terminal-%d", i))
		}
		ep := rpc.NewEndpoint(net.MustAddNode(node), clk)
		sessions[i] = rtc.NewSession(ep, clk, "mcu", cid, string(node))
		join(b, clk, sessions[i])
	}
	if colocated {
		// Same place: LAN-class links.
		for i := range sessions {
			net.SetLink("mcu", netsim.Address(fmt.Sprintf("room-terminal-%d", i)),
				netsim.LinkProfile{Latency: 200 * time.Microsecond})
		}
	}
	writer := sessions[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		async(b, clk, func(done func(error)) {
			go func() { done(writer.Set("k", "v")) }()
		})
	}
	b.ReportMetric(float64(nUsers), "users")
}

func join(b *testing.B, clk *vclock.Simulated, s *rtc.Session) {
	b.Helper()
	async(b, clk, func(done func(error)) {
		go func() { done(s.Join()) }()
	})
}

// async drives the simulated clock until the supplied blocking operation
// completes.
func async(b *testing.B, clk *vclock.Simulated, start func(done func(error))) {
	b.Helper()
	ch := make(chan error, 1)
	start(func(err error) { ch <- err })
	for {
		select {
		case err := <-ch:
			if err != nil {
				b.Fatal(err)
			}
			clk.RunUntilIdle()
			return
		default:
			time.Sleep(20 * time.Microsecond)
			clk.Advance(5 * time.Millisecond)
		}
	}
}

func BenchmarkFigure1_SameTimeSamePlace(b *testing.B) { benchSimRTC(b, 4, true) }
func BenchmarkFigure1_SameTimeDiffPlace(b *testing.B) { benchSimRTC(b, 4, false) }

func BenchmarkFigure1_DiffTimeSamePlace(b *testing.B) {
	// Team-room board: post + later read, via the information space.
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "note", Fields: []information.Field{
		{Name: "headline", Type: information.FieldText, Required: true},
	}}); err != nil {
		b.Fatal(err)
	}
	space := information.NewSpace(registry, access.NewSystem(), clk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := space.Put("nightshift", "note", map[string]string{"headline": "handover"})
		if err != nil {
			b.Fatal(err)
		}
		clk.Advance(8 * time.Hour) // the next shift arrives later
		if _, err := space.Get("nightshift", obj.ID); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1_DiffTimeDiffPlace(b *testing.B) {
	// Message system: cross-domain store-and-forward delivery.
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
	gmd := mhs.NewMTA("mta-gmd", "gmd.de", rpc.NewEndpoint(net.MustAddNode("mta-gmd"), clk), clk)
	upc := mhs.NewMTA("mta-upc", "upc.es", rpc.NewEndpoint(net.MustAddNode("mta-upc"), clk), clk)
	gmd.AddRoute("upc.es", "mta-upc")
	upc.AddRoute("gmd.de", "mta-gmd")
	prinz := mhs.NewUserAgent(mhs.MustParseORName("pn=prinz;o=gmd;c=de"), gmd)
	navarro := mhs.NewUserAgent(mhs.MustParseORName("pn=navarro;o=upc;c=es"), upc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prinz.Send([]mhs.ORName{navarro.Name}, "s", "b"); err != nil {
			b.Fatal(err)
		}
		clk.RunUntilIdle()
	}
	b.StopTimer()
	if navarro.Unread() != b.N {
		b.Fatalf("delivered %d of %d", navarro.Unread(), b.N)
	}
}

// --- Figures 2 and 3: isolated vs environment interop --------------------

func BenchmarkFigure2_Isolated(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("apps=%d", n), func(b *testing.B) {
			apps := interop.SyntheticApps(n)
			world := interop.BuildIsolated(apps, 1.0, 1)
			doc := apps[0].Document("t", "b")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				to := apps[1+i%(n-1)]
				if _, err := world.Exchange(apps[0].Name, to.Name, doc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(world.AdapterCount()), "adapters")
		})
	}
}

func BenchmarkFigure3_Environment(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("apps=%d", n), func(b *testing.B) {
			apps := interop.SyntheticApps(n)
			world, err := interop.BuildEnvironment(apps)
			if err != nil {
				b.Fatal(err)
			}
			doc := apps[0].Document("t", "b")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				to := apps[1+i%(n-1)]
				if _, err := world.Exchange(apps[0].Name, to.Name, doc); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(world.AdapterCount()), "adapters")
		})
	}
}

// --- Figure 4: layering — raw ODP vs trader vs CSCW environment ----------

func BenchmarkFigure4_Layering(b *testing.B) {
	newPair := func() (*vclock.Simulated, *rpc.Endpoint, *rpc.Endpoint) {
		clk := vclock.NewSimulated(netsim.DefaultEpoch)
		net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
		client := rpc.NewEndpoint(net.MustAddNode("client"), clk)
		server := rpc.NewEndpoint(net.MustAddNode("server"), clk)
		server.MustRegister("svc.echo", func(r rpc.Request) ([]byte, error) { return r.Body, nil })
		return clk, client, server
	}
	call := func(b *testing.B, clk *vclock.Simulated, ep *rpc.Endpoint) {
		b.Helper()
		var result rpc.Result
		done := false
		ep.Go("server", "svc.echo", []byte("x"), func(r rpc.Result) { result = r; done = true })
		clk.RunUntilIdle()
		if !done || result.Err != nil {
			b.Fatalf("call failed: %v", result.Err)
		}
	}

	b.Run("raw_odp_invocation", func(b *testing.B) {
		clk, client, _ := newPair()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			call(b, clk, client)
		}
	})

	b.Run("trader_mediated", func(b *testing.B) {
		clk, client, _ := newPair()
		tr := trader.New()
		if err := tr.RegisterType("echo"); err != nil {
			b.Fatal(err)
		}
		if err := tr.Export(trader.Offer{ID: "o1", ServiceType: "echo", Provider: "server"}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			offers, err := tr.Import(trader.ImportRequest{ServiceType: "echo"})
			if err != nil || len(offers) == 0 {
				b.Fatal(err)
			}
			call(b, clk, client)
		}
	})

	b.Run("environment_mediated", func(b *testing.B) {
		clk, client, _ := newPair()
		// Environment path: access check + transparency check + trader
		// lookup + invocation — the full CSCW-environment overhead.
		acl := access.NewSystem()
		if err := acl.DefineRole("member"); err != nil {
			b.Fatal(err)
		}
		if err := acl.Grant("member", access.OpRead, "svc/*"); err != nil {
			b.Fatal(err)
		}
		if err := acl.Assign("client", "member", access.GlobalScope); err != nil {
			b.Fatal(err)
		}
		sel := transparency.NewSelector()
		tr := trader.New()
		if err := tr.RegisterType("echo"); err != nil {
			b.Fatal(err)
		}
		if err := tr.Export(trader.Offer{ID: "o1", ServiceType: "echo", Provider: "server"}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !acl.Can("client", access.OpRead, "svc/echo") {
				b.Fatal("denied")
			}
			if !sel.For("client").Has(odp.Time) {
				b.Fatal("no transparency")
			}
			offers, err := tr.Import(trader.ImportRequest{ServiceType: "echo", Importer: "client"})
			if err != nil || len(offers) == 0 {
				b.Fatal(err)
			}
			call(b, clk, client)
		}
	})
}

// --- R1: directory search scaling -----------------------------------------

func BenchmarkDirectorySearch(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("entries=%d", n), func(b *testing.B) {
			dit := directory.NewDIT()
			if err := dit.Add(directory.MustParseDN("o=Big"), nil); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				attrs := directory.PersonEntry(fmt.Sprintf("u%06d", i), "U", "")
				attrs.Add("dept", []string{"eng", "sales", "hr", "ops"}[i%4])
				if err := dit.Add(directory.MustParseDN(fmt.Sprintf("cn=u%06d,o=Big", i)), attrs); err != nil {
					b.Fatal(err)
				}
			}
			filter := directory.MustParseFilter("(&(objectclass=person)(dept=eng))")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := dit.Search(directory.SearchRequest{
					Base: directory.MustParseDN("o=Big"), Scope: directory.ScopeSubtree, Filter: filter,
				})
				if err != nil || len(got) == 0 {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- R2: MHS delivery -------------------------------------------------------

func BenchmarkMHSDelivery(b *testing.B) {
	scenarios := []struct {
		name string
		dl   bool
	}{
		{"direct", false},
		{"dl_fanout_10", true},
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) {
			clk := vclock.NewSimulated(netsim.DefaultEpoch)
			net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
			mta := mhs.NewMTA("mta", "gmd.de", rpc.NewEndpoint(net.MustAddNode("mta"), clk), clk)
			sender := mhs.NewUserAgent(mhs.MustParseORName("pn=sender;o=gmd;c=de"), mta)
			var target mhs.ORName
			if sc.dl {
				members := make([]mhs.ORName, 10)
				for i := range members {
					ua := mhs.NewUserAgent(mhs.MustParseORName(fmt.Sprintf("pn=m%d;o=gmd;c=de", i)), mta)
					members[i] = ua.Name
				}
				if err := mta.CreateDL("team", members...); err != nil {
					b.Fatal(err)
				}
				target = mhs.MustParseORName("pn=team;o=gmd;c=de")
			} else {
				rcpt := mhs.NewUserAgent(mhs.MustParseORName("pn=rcpt;o=gmd;c=de"), mta)
				target = rcpt.Name
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sender.Send([]mhs.ORName{target}, "s", "b"); err != nil {
					b.Fatal(err)
				}
				clk.RunUntilIdle()
			}
		})
	}
}

// --- R3: activity coordination ---------------------------------------------

func BenchmarkActivityCoordination(b *testing.B) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	reg := activity.NewRegistry(clk)
	const chain = 20
	ids := make([]string, chain)
	for i := 0; i < chain; i++ {
		a, err := reg.Create("ada", fmt.Sprintf("a%02d", i), "")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = a.ID
		if i > 0 {
			if err := reg.DependOn(a.ID, ids[i-1]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.Schedule(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(chain, "activities")
}

// --- R4: transparency selection cost ----------------------------------------

func BenchmarkTransparency(b *testing.B) {
	fields := map[string]string{
		"title": "doc", "body": "text",
		"view:zoom": "150%", "view:cursor": "3,4",
	}
	cases := []struct {
		name string
		mask odp.Mask
	}{
		{"none", 0},
		{"time_only", odp.MaskOf(odp.Time)},
		{"org_only", odp.MaskOf(odp.Organisation)},
		{"all_cscw", odp.MaskOf(odp.CSCWTransparencies()...)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			sel := transparency.NewSelector()
			sel.Set("u", tc.mask)
			memberOf := []string{"act-1", "act-2", "act-3"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = transparency.FilterView(sel, "u", fields)
				_ = transparency.ActivityFilter(sel, "u", memberOf, "act-2")
			}
		})
	}
}

// --- R5: trader lookup with and without org policy ---------------------------

func BenchmarkTrader(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		for _, withPolicy := range []bool{false, true} {
			name := fmt.Sprintf("offers=%d/policy=%v", n, withPolicy)
			b.Run(name, func(b *testing.B) {
				tr := trader.New()
				if err := tr.RegisterType("svc"); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					err := tr.Export(trader.Offer{
						ID:          fmt.Sprintf("o%06d", i),
						ServiceType: "svc",
						Properties:  directory.NewAttributes("load", fmt.Sprintf("%d", i%100)),
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				if withPolicy {
					tr.AddPolicy(trader.PolicyFunc{ID: "mod2", Fn: func(importer string, o trader.Offer) bool {
						return len(o.ID)%2 == 0 || true
					}})
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					got, err := tr.Import(trader.ImportRequest{
						ServiceType: "svc", Constraint: "(load<=10)", MaxOffers: 5, Importer: "x",
					})
					if err != nil || len(got) == 0 {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- A1: ablation — temporal bridge on/off -----------------------------------

func BenchmarkAblationTemporalBridge(b *testing.B) {
	for _, bridged := range []bool{true, false} {
		name := "bridge_on"
		if !bridged {
			name = "bridge_off"
		}
		b.Run(name, func(b *testing.B) {
			clk := vclock.NewSimulated(netsim.DefaultEpoch)
			sel := transparency.NewSelector()
			if !bridged {
				sel.SetDefault(0) // no temporal transparency anywhere
			}
			delivered, failed := 0, 0
			router := &transparency.TimeRouter{
				Selector: sel,
				Presence: func(string) bool { return false }, // recipient offline
				Sync:     func(string, any) error { return nil },
				Async:    func(string, any) error { return nil },
			}
			_ = clk
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := router.Route("sender", "offline-user", "payload"); err != nil {
					failed++
				} else {
					delivered++
				}
			}
			b.StopTimer()
			if bridged && failed > 0 {
				b.Fatalf("bridge on: %d failures", failed)
			}
			if !bridged && delivered > 0 {
				b.Fatalf("bridge off: %d deliveries", delivered)
			}
			b.ReportMetric(float64(delivered)/float64(b.N), "delivery_rate")
		})
	}
}

// --- R6: anti-entropy sync over per-site information replicas ---------------

// BenchmarkReplicaAntiEntropy measures one write on a site's information
// replica propagated to every other site by channel-borne anti-entropy
// (digest exchange → delta pull → apply), i.e. the full figure-4 stack:
// space engine → replicator rpc → channel stack → simulated network.
func BenchmarkReplicaAntiEntropy(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("sites=%d", n), func(b *testing.B) {
			benchReplicaAntiEntropy(b, n, WithSeed(1))
		})
	}
}

// BenchmarkReplicaAntiEntropyDurable is the same write-propagate-converge
// cycle with every replica on the durable log-structured backend, so each
// local write and each remote apply pays a WAL append on its site.
func BenchmarkReplicaAntiEntropyDurable(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("sites=%d", n), func(b *testing.B) {
			benchReplicaAntiEntropy(b, n, WithSeed(1), WithDurableStore(b.TempDir()))
		})
	}
}

func benchReplicaAntiEntropy(b *testing.B, n int, opts ...Option) {
	dep := NewDeployment(opts...)
	sites := make([]*Site, n)
	for i := range sites {
		sites[i] = dep.AddSite(fmt.Sprintf("s%02d", i), fmt.Sprintf("s%02d.net", i))
	}
	obj, err := sites[0].Space().Put("ada", SharedSchemaName, map[string]string{"title": "v0"})
	if err != nil {
		b.Fatal(err)
	}
	dep.Run()
	version := obj.Version
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		upd, err := sites[0].Space().Update("ada", obj.ID, version,
			map[string]string{"title": fmt.Sprintf("v%d", i+1)})
		if err != nil {
			b.Fatal(err)
		}
		version = upd.Version
		dep.Run() // drain sync rounds: all replicas converge
	}
	b.StopTimer()
	for _, s := range sites[1:] {
		got, err := s.Space().Get("ada", obj.ID)
		if err != nil || got.Version != version {
			b.Fatalf("replica %s diverged: %+v %v", s.Name, got, err)
		}
	}
	b.ReportMetric(float64(n), "sites")
}

// --- R6b: anti-entropy digest cost at scale ----------------------------------

// BenchmarkReplicaAntiEntropyScale pins the digest negotiation's scaling
// claims at 10⁴ and 10⁵ stored objects: a converged round costs O(1)
// digest bytes (one root compare + high-water marks) and a round
// repairing one changed object costs O(log n) — against the legacy
// full-digest baseline whose every round ships the whole O(n) digest.
// The digestB/op metric is replica.Stats.DigestBytes per converged
// round; syncB/op is the engineering-viewpoint wire cost
// (Fabric.TotalsFor("repl-")), which includes data deltas and JSON
// framing.
func BenchmarkReplicaAntiEntropyScale(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		for _, mode := range []struct {
			name string
			opts []Option
		}{
			{"merkle", nil},
			{"full-digest", []Option{WithFullDigestSync()}},
		} {
			if n == 100_000 && mode.name == "full-digest" {
				// The O(n) baseline at 10⁵ objects ships ~10 MB per round;
				// the 10⁴ pair already pins the comparison.
				continue
			}
			b.Run(fmt.Sprintf("objects=%d/%s/converged", n, mode.name), func(b *testing.B) {
				dep, _, _ := seedLargeDeployment(b, n, mode.opts...)
				start := statsFor(b, dep, "s00")
				wireStart := dep.Fabric().TotalsFor("repl-").BytesOut
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dep.SyncInformation()
					dep.Run()
				}
				b.StopTimer()
				end := statsFor(b, dep, "s00")
				b.ReportMetric(float64(end.DigestBytes-start.DigestBytes)/float64(b.N), "digestB/op")
				b.ReportMetric(float64(dep.Fabric().TotalsFor("repl-").BytesOut-wireStart)/float64(b.N), "syncB/op")
			})
			b.Run(fmt.Sprintf("objects=%d/%s/divergent-1", n, mode.name), func(b *testing.B) {
				dep, sites, ids := seedLargeDeployment(b, n, mode.opts...)
				target, version := ids[42], uint64(1)
				start := statsFor(b, dep, "s00")
				wireStart := dep.Fabric().TotalsFor("repl-").BytesOut
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					upd, err := sites[0].Space().Update("ada", target, version,
						map[string]string{"title": fmt.Sprintf("v%d", i+1)})
					if err != nil {
						b.Fatal(err)
					}
					version = upd.Version
					dep.Run() // drain sync rounds: both replicas converge
				}
				b.StopTimer()
				if got, err := sites[1].Space().Get("ada", target); err != nil || got.Version != version {
					b.Fatalf("replica diverged: %+v %v", got, err)
				}
				end := statsFor(b, dep, "s00")
				b.ReportMetric(float64(end.DigestBytes-start.DigestBytes)/float64(b.N), "digestB/op")
				b.ReportMetric(float64(dep.Fabric().TotalsFor("repl-").BytesOut-wireStart)/float64(b.N), "syncB/op")
			})
		}
	}
}

// --- R6c: telemetry plane overhead -------------------------------------------

// BenchmarkTelemetryOverhead prices the telemetry plane on the converged
// anti-entropy write cycle (the hottest cross-subsystem path): without
// the plane, with the plane present but the tracer disabled, and fully
// enabled. The claim under test is that the disabled path costs nothing
// measurable — every hook is one nil-or-atomic check and the wire format
// stays version-1 — so deployments can ship with telemetry compiled in.
// disabled-overhead-pct is the paired min-of-N comparison; it must stay
// within the noise floor (≤ 2%).
func BenchmarkTelemetryOverhead(b *testing.B) {
	const updates = 64
	cycle := func(disable bool, opts ...Option) time.Duration {
		dep := NewDeployment(append([]Option{WithSeed(3)}, opts...)...)
		s0 := dep.AddSite("s0", "s0.net")
		dep.AddSite("s1", "s1.net")
		if disable {
			dep.Telemetry().Tracer.SetEnabled(false)
		}
		obj, err := s0.Space().Put("ada", SharedSchemaName, map[string]string{"title": "v0"})
		if err != nil {
			b.Fatal(err)
		}
		dep.Run()
		version := obj.Version
		start := time.Now()
		for i := 0; i < updates; i++ {
			upd, err := s0.Space().Update("ada", obj.ID, version,
				map[string]string{"title": fmt.Sprintf("v%d", i+1)})
			if err != nil {
				b.Fatal(err)
			}
			version = upd.Version
			dep.Run()
		}
		return time.Since(start)
	}

	// Interleaved paired trials: each trial times baseline and disabled
	// back to back, so shared-machine noise hits both alike. The gate is
	// the minimum paired ratio — for it to exceed 2%, noise would have to
	// inflate the disabled half of every single pair, so a true ≤2%
	// overhead cannot flake while a real regression cannot hide.
	const trials = 7
	base, enabled := time.Duration(1<<62), time.Duration(1<<62)
	minRatio := math.Inf(1)
	for i := 0; i < trials; i++ {
		bt := cycle(false)
		dt := cycle(true, WithTelemetry())
		base = min(base, bt)
		enabled = min(enabled, cycle(false, WithTelemetry()))
		minRatio = min(minRatio, float64(dt)/float64(bt))
	}
	for i := 0; i < b.N; i++ { // metrics-only benchmark; measurement above
	}
	overheadPct := (minRatio - 1) * 100
	b.ReportMetric(float64(base.Nanoseconds())/updates, "baseline-ns/update")
	b.ReportMetric(overheadPct, "disabled-overhead-pct")
	b.ReportMetric((float64(enabled)-float64(base))/float64(base)*100, "enabled-overhead-pct")
	if overheadPct > 2.0 {
		b.Fatalf("disabled telemetry costs %.2f%% over no telemetry in every paired trial, want ≤ 2%%",
			overheadPct)
	}
}

// --- R7: placement fanout — full mesh vs activity-scoped placement -----------

// BenchmarkPlacementFanout measures one write into an activity's space
// propagated to convergence at 8 sites, with the activity's two members
// at two of them. "full-mesh" replicates every write to every site;
// "activity-scoped" installs a placement rule so only the member sites
// hold the space — the syncB/op metric is the engineering-viewpoint byte
// cost per converged write (Fabric.TotalsFor("repl-")).
func BenchmarkPlacementFanout(b *testing.B) {
	for _, scoped := range []bool{false, true} {
		name := "full-mesh"
		if scoped {
			name = "activity-scoped"
		}
		b.Run(fmt.Sprintf("%s/sites=8", name), func(b *testing.B) {
			dep := NewDeployment(WithSeed(1))
			sites := make([]*Site, 8)
			for i := range sites {
				sites[i] = dep.AddSite(fmt.Sprintf("s%02d", i), fmt.Sprintf("s%02d.net", i))
			}
			sites[0].AddUser("ada")
			sites[1].AddUser("ben")
			act, err := dep.Env().Activities().Create("ada", "bench", "")
			if err != nil {
				b.Fatal(err)
			}
			for _, m := range []string{"ada", "ben"} {
				if err := dep.Env().Activities().Join(act.ID, m, "participant"); err != nil {
					b.Fatal(err)
				}
			}
			if scoped {
				dep.SetPlacementRules(placement.ByActivity(act.ID, "context", dep.ActivityMemberSites))
				dep.Run()
			}
			obj, err := sites[0].Space().Put("ada", SharedSchemaName, map[string]string{
				"title": "v0", "context": act.ID,
			})
			if err != nil {
				b.Fatal(err)
			}
			dep.Run()
			version := obj.Version
			start := dep.Fabric().TotalsFor("repl-").BytesOut
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				upd, err := sites[0].Space().Update("ada", obj.ID, version,
					map[string]string{"title": fmt.Sprintf("v%d", i+1)})
				if err != nil {
					b.Fatal(err)
				}
				version = upd.Version
				dep.Run() // drain sync rounds to convergence
			}
			b.StopTimer()
			if got, err := sites[1].Space().Get("ada", obj.ID); err != nil || got.Version != version {
				b.Fatalf("member replica diverged: %+v %v", got, err)
			}
			if scoped {
				if n := sites[7].Space().Len(); n != 0 {
					b.Fatalf("non-member site holds %d rows", n)
				}
			}
			bytes := dep.Fabric().TotalsFor("repl-").BytesOut - start
			b.ReportMetric(float64(bytes)/float64(b.N), "syncB/op")
		})
	}
}
