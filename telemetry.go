package mocca

import (
	"io"

	"mocca/internal/information/logstore"
	"mocca/internal/observe"
)

// WithTelemetry turns on the deployment's unified telemetry plane: one
// seeded tracer + metrics registry + object-trace tag table shared by
// every subsystem. With it enabled,
//
//   - every rpc hop records client and serve spans linked by the trace
//     context the wire envelope carries (version-2 frames; peers without
//     telemetry interop unchanged on version-1 frames),
//   - each local put/update starts a root trace tagged to the object id,
//     which the placement forward, the holder's WAL commit, the gossip
//     rumor path and the anti-entropy apply at remote sites all continue
//     — one trace id follows the write across sites,
//   - the registry projects the existing per-subsystem Stats snapshots
//     as labelled metric families (see the adapter collector below) and
//     serves snapshots via Deployment.Metrics().
//
// Everything rides the simulated clock and the deployment seed, so runs
// stay deterministic; without this option no telemetry state exists and
// every envelope stays byte-identical to the untraced format. opts tune
// span-ring capacity, object-table capacity and the slow-op threshold.
func WithTelemetry(opts ...observe.Option) Option {
	return func(d *Deployment) {
		d.telemetry = true
		d.telOpts = opts
	}
}

// Telemetry returns the deployment's telemetry plane, or nil when
// WithTelemetry was not given. The result is safe to pass to subsystem
// constructors even when nil.
func (d *Deployment) Telemetry() *observe.Telemetry { return d.tel }

// Metrics returns the deployment's metrics registry (nil without
// WithTelemetry — and a nil registry is safe to snapshot: it yields an
// empty snapshot).
func (d *Deployment) Metrics() *observe.Registry {
	if d.tel == nil {
		return nil
	}
	return d.tel.Metrics
}

// Traces returns every retained span in chronological order (nil
// without WithTelemetry).
func (d *Deployment) Traces() []observe.Span {
	if d.tel == nil {
		return nil
	}
	return d.tel.Tracer.Spans()
}

// SlowOps returns the retained slow-span log (spans whose duration met
// the observe.WithSlowThreshold bound), oldest first.
func (d *Deployment) SlowOps() []observe.Span {
	if d.tel == nil {
		return nil
	}
	return d.tel.Tracer.SlowOps()
}

// WriteTrace writes the retained spans as Chrome trace-event JSON
// (load it at chrome://tracing or https://ui.perfetto.dev). Sites
// render as threads, spans as complete events.
func (d *Deployment) WriteTrace(w io.Writer) error {
	if d.tel == nil {
		return observe.WriteChromeTrace(w, nil)
	}
	return observe.WriteChromeTrace(w, d.tel.Tracer.Spans())
}

// registerCollectors installs the adapter collector that projects the
// deployment's existing Stats snapshots into the metrics registry. It is
// a pull-model adapter: nothing is recorded twice — each snapshot reads
// the same counters the subsystems already maintain, at Snapshot() time.
//
// Naming scheme: mocca.<subsystem>.<counter>{site="..."} for per-site
// families, label-free for deployment-wide ones. All families are
// counters unless noted as gauges (sizes that can shrink).
func (d *Deployment) registerCollectors() {
	ctr := func(name, site string, v int64) observe.Point {
		p := observe.Point{Name: name, Kind: observe.KindCounter, Value: v}
		if site != "" {
			p.Labels = observe.L("site", site)
		}
		return p
	}
	gauge := func(name, site string, v int64) observe.Point {
		p := ctr(name, site, v)
		p.Kind = observe.KindGauge
		return p
	}
	d.tel.Metrics.Register(observe.CollectorFunc(func(emit func(observe.Point)) {
		for _, name := range d.SiteNames() {
			s := d.sites[name]

			rs := s.repl.Stats()
			emit(ctr("mocca.sync.rounds", name, rs.Rounds))
			emit(ctr("mocca.sync.peer_syncs", name, rs.PeerSyncs))
			emit(ctr("mocca.sync.peer_failures", name, rs.PeerFailures))
			emit(ctr("mocca.sync.applied", name, rs.Applied))
			emit(ctr("mocca.sync.pushed", name, rs.Pushed))
			emit(ctr("mocca.sync.conflicts", name, rs.Conflicts))
			emit(ctr("mocca.sync.served_digests", name, rs.ServedDigests))
			emit(ctr("mocca.sync.digest_bytes", name, rs.DigestBytes))
			emit(ctr("mocca.sync.merkle_exchanges", name, rs.MerkleExchanges))
			emit(ctr("mocca.sync.legacy_exchanges", name, rs.LegacyExchanges))
			emit(ctr("mocca.sync.converged_roots", name, rs.ConvergedRoots))
			emit(gauge("mocca.sync.scoped_trees", name, int64(rs.ScopedTrees)))

			rds := s.reader.Stats()
			emit(ctr("mocca.placement.reads", name, rds.Reads))
			emit(ctr("mocca.placement.reads_served", name, rds.Served))
			emit(ctr("mocca.placement.read_attempts", name, rds.Attempts))
			emit(ctr("mocca.placement.no_holder", name, rds.NoHolder))
			emit(ctr("mocca.placement.negative_hits", name, rds.NegativeHits))
			emit(ctr("mocca.placement.forwards", name, rds.Forwards))
			emit(ctr("mocca.placement.forwarded", name, rds.Forwarded))

			svs := s.readServer.Stats()
			emit(ctr("mocca.placement.remote_reads_served", name, svs.Served))
			emit(ctr("mocca.placement.remote_reads_missed", name, svs.Missed))
			emit(ctr("mocca.placement.writes_accepted", name, svs.WritesAccepted))
			emit(ctr("mocca.placement.writes_refused", name, svs.WritesRefused))

			if s.overlay != nil {
				gs := s.overlay.Stats()
				emit(ctr("mocca.gossip.rounds", name, gs.Rounds))
				emit(ctr("mocca.gossip.rumors_published", name, gs.RumorsPublished))
				emit(ctr("mocca.gossip.rumors_forwarded", name, gs.RumorsForwarded))
				emit(ctr("mocca.gossip.rumors_seen", name, gs.RumorsSeen))
				emit(ctr("mocca.gossip.rumor_fetches", name, gs.RumorFetches))
				emit(ctr("mocca.gossip.rumor_applied", name, gs.RumorApplied))
				emit(gauge("mocca.gossip.active_view", name, int64(gs.ActiveSize)))
				emit(gauge("mocca.gossip.passive_view", name, int64(gs.PassiveSize)))
			}

			if b, ok := d.backends[name]; ok {
				if ls, ok := b.(storeStatser); ok {
					st := ls.Stats()
					emit(ctr("mocca.store.appends", name, st.Appends))
					emit(ctr("mocca.store.appended_bytes", name, st.AppendedBytes))
					emit(ctr("mocca.store.compactions", name, st.Compactions))
					emit(ctr("mocca.store.fsyncs", name, st.Fsyncs))
					emit(ctr("mocca.store.flushes", name, st.Flushes))
					emit(ctr("mocca.store.flushed_records", name, st.FlushedRecords))
					emit(gauge("mocca.store.segments", name, int64(st.Segments)))
				}
			}

			es := s.replEP.Stats()
			emit(ctr("mocca.rpc.calls_sent", name, es.CallsSent))
			emit(ctr("mocca.rpc.calls_served", name, es.CallsServed))
			emit(ctr("mocca.rpc.timeouts", name, es.Timeouts))
			emit(ctr("mocca.rpc.remote_errors", name, es.RemoteErrors))
		}

		ns := d.net.Stats()
		emit(ctr("mocca.net.sent", "", ns.Sent))
		emit(ctr("mocca.net.delivered", "", ns.Delivered))
		emit(ctr("mocca.net.dropped", "", ns.Dropped))
		emit(ctr("mocca.net.blocked", "", ns.Blocked))
		emit(ctr("mocca.net.bytes", "", ns.Bytes))

		ft := d.fabric.Totals()
		emit(gauge("mocca.channels.open", "", int64(ft.Channels)))
		emit(ctr("mocca.channels.frames_out", "", ft.FramesOut))
		emit(ctr("mocca.channels.frames_in", "", ft.FramesIn))
		emit(ctr("mocca.channels.bytes_out", "", ft.BytesOut))
		emit(ctr("mocca.channels.bytes_in", "", ft.BytesIn))
		emit(ctr("mocca.channels.discards_in", "", ft.DiscardsIn))

		tc := d.tel.Tracer.Counts()
		emit(ctr("mocca.trace.traces", "", tc.Traces))
		emit(ctr("mocca.trace.spans", "", tc.Spans))
		emit(gauge("mocca.trace.retained", "", int64(tc.Retained)))
		emit(ctr("mocca.trace.evicted", "", tc.Evicted))
		emit(ctr("mocca.trace.slow_spans", "", int64(tc.SlowSpans)))
	}))
}

// storeStatser is the slice of *logstore.Store the collector needs; the
// interface keeps the adapter working for any backend that exposes the
// same counters.
type storeStatser interface {
	Stats() logstore.Stats
}
