// Quickstart: build a two-site deployment, send mail across sites, and
// share an information object between two applications with different
// native schemas — the smallest end-to-end tour of the environment.
package main

import (
	"fmt"
	"log"

	"mocca"
	"mocca/internal/information"
)

func main() {
	dep := mocca.NewDeployment(mocca.WithSeed(1))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")

	prinz := gmd.AddUser("prinz")
	navarro := upc.AddUser("navarro")

	// 1. Asynchronous mail across management domains (X.400-style MHS).
	if _, err := prinz.Send([]mocca.ORName{navarro.Name},
		"open cscw systems", "will odp help? we think: yes"); err != nil {
		log.Fatal(err)
	}
	dep.Run()
	msgs, err := navarro.List()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("navarro received %d message(s); first subject: %q\n",
		len(msgs), msgs[0].Envelope.Content.Subject)

	// 2. Register an application with its native schema (figure 3).
	err = dep.Env().RegisterApplication(mocca.Application{
		Name:     "report-editor",
		Quadrant: "different-time/different-place",
		Schema: information.Schema{Name: "report", Fields: []information.Field{
			{Name: "heading", Type: information.FieldText, Required: true},
			{Name: "text", Type: information.FieldText},
		}},
		ToShared: func(in map[string]string) (map[string]string, error) {
			return map[string]string{"title": in["heading"], "body": in["text"]}, nil
		},
		FromShared: func(in map[string]string) (map[string]string, error) {
			return map[string]string{"heading": in["title"], "text": in["body"]}, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Author, share, and read back through the shared representation.
	obj, err := dep.Env().Space().Put("prinz", "report",
		map[string]string{"heading": "Models to support open CSCW", "text": "five models…"})
	if err != nil {
		log.Fatal(err)
	}
	if err := dep.Env().Space().Share("prinz", obj.ID, "navarro", false); err != nil {
		log.Fatal(err)
	}
	shared, err := dep.Env().Space().GetAs("navarro", obj.ID, mocca.SharedSchemaName)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("navarro reads shared object: title=%q\n", shared.Fields["title"])

	rep := dep.Env().Snapshot()
	fmt.Printf("environment: %d app(s), %d schema(s), %d object(s)\n",
		len(rep.Applications), len(rep.Schemas), rep.Objects)
}
