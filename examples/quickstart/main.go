// Quickstart: build a two-site deployment with durable information
// storage, send mail across sites, share an information object between
// two applications with different native schemas, and survive a site
// crash — the smallest end-to-end tour of the environment.
package main

import (
	"fmt"
	"log"
	"os"

	"mocca"
	"mocca/internal/information"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Durable backend: each site keeps its information replica in a
	// write-ahead log + snapshot under stateDir/<site>, so a crashed site
	// recovers its replica from disk instead of rejoining empty.
	stateDir, err := os.MkdirTemp("", "mocca-quickstart")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)

	dep := mocca.NewDeployment(mocca.WithSeed(1), mocca.WithDurableStore(stateDir))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")

	prinz := gmd.AddUser("prinz")
	navarro := upc.AddUser("navarro")

	// 1. Asynchronous mail across management domains (X.400-style MHS).
	if _, err := prinz.Send([]mocca.ORName{navarro.Name},
		"open cscw systems", "will odp help? we think: yes"); err != nil {
		return err
	}
	dep.Run()
	msgs, err := navarro.List()
	if err != nil {
		return err
	}
	fmt.Printf("navarro received %d message(s); first subject: %q\n",
		len(msgs), msgs[0].Envelope.Content.Subject)

	// 2. Register an application with its native schema (figure 3).
	err = dep.Env().RegisterApplication(mocca.Application{
		Name:     "report-editor",
		Quadrant: "different-time/different-place",
		Schema: information.Schema{Name: "report", Fields: []information.Field{
			{Name: "heading", Type: information.FieldText, Required: true},
			{Name: "text", Type: information.FieldText},
		}},
		ToShared: func(in map[string]string) (map[string]string, error) {
			return map[string]string{"title": in["heading"], "body": in["text"]}, nil
		},
		FromShared: func(in map[string]string) (map[string]string, error) {
			return map[string]string{"heading": in["title"], "text": in["body"]}, nil
		},
	})
	if err != nil {
		return err
	}

	// 3. Author, share, and read back through the shared representation.
	obj, err := dep.Env().Space().Put("prinz", "report",
		map[string]string{"heading": "Models to support open CSCW", "text": "five models…"})
	if err != nil {
		return err
	}
	if err := dep.Env().Space().Share("prinz", obj.ID, "navarro", false); err != nil {
		return err
	}
	shared, err := dep.Env().Space().GetAs("navarro", obj.ID, mocca.SharedSchemaName)
	if err != nil {
		return err
	}
	fmt.Printf("navarro reads shared object: title=%q\n", shared.Fields["title"])

	// 4. Durability: writes landing on a site replica are WAL-logged, so a
	// crashed site recovers them from disk and rejoins without a full
	// re-replication.
	memo, err := gmd.Space().Put("prinz", mocca.SharedSchemaName,
		map[string]string{"title": "crash survivor"})
	if err != nil {
		return err
	}
	dep.Run() // replicate gmd -> upc
	upc.Crash()
	if err := upc.Restart(); err != nil {
		return err
	}
	recovered, err := upc.Space().Get("prinz", memo.ID)
	if err != nil {
		return err
	}
	fmt.Printf("upc recovered %q from its write-ahead log\n", recovered.Fields["title"])

	rep := dep.Env().Snapshot()
	fmt.Printf("environment: %d app(s), %d schema(s), %d object(s)\n",
		len(rep.Applications), len(rep.Schemas), rep.Objects)
	return nil
}
