// Conference: a synchronous desktop conference with floor control, plus
// temporal transparency — the absent member receives the minutes through
// the MHS, so "interaction will be independent of the mode we are using".
package main

import (
	"fmt"
	"log"

	"mocca"
	"mocca/internal/comm"
)

func main() {
	dep := mocca.NewDeployment(mocca.WithSeed(3))
	gmd := dep.AddSite("gmd", "gmd.de")

	_ = gmd.AddUser("prinz")
	_ = gmd.AddUser("rodden")
	_ = gmd.AddUser("navarro") // will be absent

	cid, err := dep.Conferencing().CreateConference("odp position paper", mocca.ConferenceModerated)
	if err != nil {
		log.Fatal(err)
	}

	prinz, err := dep.JoinConference(cid, "prinz")
	must(err)
	rodden, err := dep.JoinConference(cid, "rodden")
	must(err)

	// Moderated editing: the floor gates updates.
	must(dep.Do(func() error { _, err := prinz.RequestFloor(); return err }))
	must(dep.Do(func() error { return prinz.Set("section-6", "ODP and CSCW: mutual benefit") }))
	if err := dep.Do(func() error { return rodden.Set("section-6", "hijack!") }); err != nil {
		fmt.Printf("rodden blocked without floor: %v\n", err)
	}
	must(dep.Do(prinz.ReleaseFloor))
	must(dep.Do(func() error { _, err := rodden.RequestFloor(); return err }))
	must(dep.Do(func() error { return rodden.Set("conclusion", "we answer: yes!") }))
	dep.Run()

	fmt.Printf("prinz sees conclusion: %q\n", prinz.Get("conclusion"))
	fmt.Printf("rodden sees section-6: %q\n", rodden.Get("section-6"))

	must(dep.Do(prinz.Leave))
	must(dep.Do(rodden.Leave))
	dep.Run()

	// Temporal transparency: navarro was offline for the whole meeting;
	// the bridge mails him the minutes.
	sent, err := comm.BridgeConference(dep.Env().Hub(), dep.Conferencing(), cid,
		[]string{"prinz", "rodden", "navarro"}, "meeting:"+cid)
	must(err)
	dep.Run()
	fmt.Printf("digests mailed to absent members: %d\n", sent)

	site, _ := dep.Site("gmd")
	_ = site
	// navarro reads the minutes asynchronously.
	hub := dep.Env().Hub()
	_ = hub
	fmt.Println("conference over; minutes delivered via MHS")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
