// Federation: two organisations with their own policies interoperate
// through the environment. The organisational knowledge base dictates the
// trading policy (§6.1), and organisational transparency controls what
// users see of the boundary.
package main

import (
	"fmt"
	"log"

	"mocca"
	"mocca/internal/directory"
	"mocca/internal/odp"
	"mocca/internal/org"
	"mocca/internal/trader"
	"mocca/internal/transparency"
)

func main() {
	dep := mocca.NewDeployment(mocca.WithSeed(5))
	env := dep.Env()
	kb := env.Org()

	must(kb.AddObject(org.Object{ID: "gmd", Kind: org.KindOrg, Name: "GMD"}))
	must(kb.AddObject(org.Object{ID: "upc", Kind: org.KindOrg, Name: "UPC"}))
	must(kb.AddObject(org.Object{ID: "lancaster", Kind: org.KindOrg, Name: "Lancaster"}))
	must(kb.AddObject(org.Object{ID: "prinz", Kind: org.KindPerson, Name: "Prinz", Org: "gmd"}))
	must(kb.AddObject(org.Object{ID: "navarro", Kind: org.KindPerson, Name: "Navarro", Org: "upc"}))

	// GMD and UPC share openly; Lancaster's (hypothetical) policy differs.
	kb.SetPolicy("gmd", "data-sharing", "open")
	kb.SetPolicy("upc", "data-sharing", "open")
	kb.SetPolicy("lancaster", "data-sharing", "restricted")

	// Each organisation exports a conferencing service offer.
	tr := env.Trader()
	must(tr.RegisterType("conferencing"))
	for _, o := range []trader.Offer{
		{ID: "gmd-mcu", ServiceType: "conferencing", Provider: "mcu-gmd",
			Properties: directory.NewAttributes("org", "gmd", "maxusers", "20")},
		{ID: "upc-mcu", ServiceType: "conferencing", Provider: "mcu-upc",
			Properties: directory.NewAttributes("org", "upc", "maxusers", "50")},
		{ID: "lancs-mcu", ServiceType: "conferencing", Provider: "mcu-lancs",
			Properties: directory.NewAttributes("org", "lancaster", "maxusers", "10")},
	} {
		must(tr.Export(o))
	}

	// The org KB dictates the trading policy: prinz (GMD) sees GMD and UPC
	// offers, but not Lancaster's (incompatible data-sharing policy).
	offers, err := tr.Import(trader.ImportRequest{
		ServiceType: "conferencing", Importer: "prinz", OrderBy: "maxusers",
	})
	must(err)
	fmt.Printf("prinz's trader view (%d offers):\n", len(offers))
	for _, o := range offers {
		fmt.Printf("  %s from org=%s (maxusers=%s)\n",
			o.ID, o.Properties.First("org"), o.Properties.First("maxusers"))
	}

	// Organisational transparency: with it on (default), the UPC service
	// looks local; after the user turns it off, the boundary is annotated.
	sel := env.Transparency()
	view, err := transparency.ResolveOrg(sel, kb, "prinz", "gmd", "upc")
	must(err)
	fmt.Printf("transparent view of upc resource: visible=%v annotation=%q\n", view.Visible, view.Annotation)

	sel.Disable("prinz", odp.Organisation)
	view, err = transparency.ResolveOrg(sel, kb, "prinz", "gmd", "upc")
	must(err)
	fmt.Printf("opaque view of upc resource:      visible=%v annotation=%q\n", view.Visible, view.Annotation)

	// Incompatible policies block interaction entirely — transparency
	// hides structure, never policy.
	if _, err := transparency.ResolveOrg(sel, kb, "prinz", "gmd", "lancaster"); err != nil {
		fmt.Printf("lancaster interaction blocked: %v\n", err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
