// Channel Tunnel: the paper's §3 worked example. "The management of a
// large scale engineering project (e.g. building the Channel Tunnel) can be
// undertaken as a cooperative activity" with inter-related sub-activities
// (progress meetings, joint report production, monitoring, ad-hoc
// communication) sharing people, resources, and information.
package main

import (
	"fmt"
	"log"

	"mocca"
	"mocca/internal/activity"
	"mocca/internal/expertise"
	"mocca/internal/org"
)

func main() {
	dep := mocca.NewDeployment(mocca.WithSeed(1992))
	env := dep.Env()

	// --- Organisational model: two enterprises, one project -------------
	kb := env.Org()
	must(kb.AddObject(org.Object{ID: "tml", Kind: org.KindOrg, Name: "TransManche Link"}))
	must(kb.AddObject(org.Object{ID: "eurotunnel", Kind: org.KindOrg, Name: "Eurotunnel"}))
	must(kb.AddObject(org.Object{ID: "ada", Kind: org.KindPerson, Name: "Ada", Org: "tml"}))
	must(kb.AddObject(org.Object{ID: "ben", Kind: org.KindPerson, Name: "Ben", Org: "tml"}))
	must(kb.AddObject(org.Object{ID: "carol", Kind: org.KindPerson, Name: "Carol", Org: "eurotunnel"}))
	must(kb.AddObject(org.Object{ID: "chief-engineer", Kind: org.KindRole, Name: "Chief Engineer", Org: "tml"}))
	must(kb.AddObject(org.Object{ID: "tbm-1", Kind: org.KindResource, Name: "Boring Machine", Org: "tml"}))
	must(kb.Relate("ada", org.RelFills, "chief-engineer"))
	kb.SetPolicy("tml", "data-sharing", "open")
	kb.SetPolicy("eurotunnel", "data-sharing", "open")
	must(env.SyncOrgToDirectory())

	// --- Expertise model -------------------------------------------------
	env.Expertise().SetCapability("ada", "tunnel-engineering", expertise.LevelExpert)
	env.Expertise().SetCapability("ben", "geology", expertise.LevelProficient)
	env.ImportExpertise()

	// --- Inter-activity model: the programme of sub-activities ----------
	acts := env.Activities()
	survey, _ := acts.Create("ada", "geological survey", "map the chalk layer")
	boring, _ := acts.Create("ada", "tunnel boring", "dig from both ends")
	meetings, _ := acts.Create("ada", "progress meetings", "weekly, on-going")
	report, _ := acts.Create("ben", "joint report", "quarterly status")

	must(acts.DependOn(boring.ID, survey.ID)) // boring waits on the survey
	must(acts.Join(boring.ID, "ben", "site-engineer"))
	must(acts.Join(report.ID, "ada", "reviewer"))
	must(acts.Join(meetings.ID, "ben", ""))
	must(acts.UseResource(boring.ID, "tbm-1"))
	must(acts.UseResource(survey.ID, "tbm-1")) // shared resource => dependency

	order, err := acts.Schedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule (prerequisites first):")
	for i, aid := range order {
		a, _ := acts.Get(aid)
		fmt.Printf("  %d. %s [%s]\n", i+1, a.Name, a.State)
	}

	// Activation respects temporal dependencies.
	if err := acts.Transition("ada", boring.ID, activity.StateActive); err != nil {
		fmt.Printf("boring cannot start yet: %v\n", err)
	}
	must(acts.Transition("ada", survey.ID, activity.StateActive))
	must(acts.SetProgress("ada", survey.ID, 100))
	must(acts.Transition("ada", survey.ID, activity.StateCompleted))
	must(acts.Transition("ada", boring.ID, activity.StateActive))
	fmt.Println("survey completed; boring started")

	// Negotiate responsibility for the report to ada.
	neg, err := acts.Propose("ben", report.ID, activity.NegResponsibility, "ada", "")
	must(err)
	_, err = acts.Accept("ada", neg.ID)
	must(err)
	got, _ := acts.Get(report.ID)
	fmt.Printf("report coordinator after negotiation: %s\n", got.Coordinator)

	// Inter-activity dependencies materialised from shared resources.
	for _, d := range acts.Dependencies(boring.ID) {
		fmt.Printf("dependency: %s -[%s]-> %s (%s)\n", boring.ID, d.Kind, d.To, d.Detail)
	}

	// Staffing from the expertise model.
	capable := env.Expertise().FindCapable("tunnel-engineering", expertise.LevelExpert)
	fmt.Printf("experts available for tunnelling: %v\n", capable)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
