// Package mocca is the public API of the Open CSCW environment — a Go
// reproduction of the system envisioned in "Open CSCW Systems: Will ODP
// help?" (Navarro, Prinz, Rodden; ICDCS 1992).
//
// The package assembles a complete simulated deployment: an ODP-style
// substrate (simulated network, rpc, X.500-style directory, ODP trader,
// X.400-style message handling, synchronous conferencing) with the MOCCA
// CSCW environment on top (organisational, inter-activity, information,
// communication, and user-expertise models; role-based access control;
// user-selectable transparency; an ECA tailorability engine).
//
// Quickstart:
//
//	dep := mocca.NewDeployment(mocca.WithSeed(1))
//	site := dep.AddSite("gmd", "gmd.de")
//	ua := site.AddUser("prinz")
//	...
//	dep.Run() // drain the simulated network to quiescence
//
// See examples/ for complete programs.
package mocca

import (
	"fmt"
	"time"

	"mocca/internal/channel"
	"mocca/internal/comm"
	"mocca/internal/core"
	"mocca/internal/directory"
	"mocca/internal/engineering"
	"mocca/internal/id"
	"mocca/internal/mhs"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/rtc"
	"mocca/internal/trader"
	"mocca/internal/vclock"
)

// Re-exported core types, so applications program against the root package.
type (
	// Environment is the CSCW environment (figure 3/4 of the paper).
	Environment = core.Environment
	// Application describes a registering CSCW application.
	Application = core.Application
	// Message is the communication-model exchange unit.
	Message = comm.Message
	// ORName is an X.400-style originator/recipient name.
	ORName = mhs.ORName
	// UserAgent is an MHS submission/retrieval agent.
	UserAgent = mhs.UserAgent
	// ConferenceSession is a synchronous conferencing client.
	ConferenceSession = rtc.Session
)

// SharedSchemaName is the environment's interchange schema.
const SharedSchemaName = core.SharedSchemaName

// Conference modes.
const (
	// ConferenceOpen lets any member update shared state.
	ConferenceOpen = rtc.ModeOpen
	// ConferenceModerated requires holding the floor to update.
	ConferenceModerated = rtc.ModeFloor
)

// Option configures a Deployment.
type Option func(*Deployment)

// WithSeed fixes the simulation seed (default 1992).
func WithSeed(seed int64) Option {
	return func(d *Deployment) { d.seed = seed }
}

// WithDefaultLink sets network characteristics between sites.
func WithDefaultLink(latency time.Duration, loss float64) Option {
	return func(d *Deployment) {
		d.link = netsim.LinkProfile{Latency: latency, Loss: loss}
	}
}

// Deployment is a full simulated multi-site installation.
type Deployment struct {
	seed int64
	link netsim.LinkProfile

	clock  *vclock.Simulated
	net    *netsim.Network
	env    *core.Environment
	ids    *id.Generator
	fabric *engineering.Fabric

	mcu          *rtc.Server
	sites        map[string]*Site
	userEPs      map[netsim.Address]*rpc.Endpoint
	userSessions map[netsim.Address]*rtc.Session
}

// Site is one organisation's installation: an MTA plus local users.
type Site struct {
	Name   string
	Domain string

	dep *Deployment
	mta *mhs.MTA
}

// NewDeployment builds the simulated substrate and environment.
func NewDeployment(opts ...Option) *Deployment {
	d := &Deployment{
		seed:         1992,
		link:         netsim.LinkProfile{Latency: 20 * time.Millisecond},
		sites:        make(map[string]*Site),
		userEPs:      make(map[netsim.Address]*rpc.Endpoint),
		userSessions: make(map[netsim.Address]*rtc.Session),
	}
	for _, opt := range opts {
		opt(d)
	}
	d.clock = vclock.NewSimulated(netsim.DefaultEpoch)
	d.net = netsim.New(
		netsim.WithClock(d.clock),
		netsim.WithSeed(d.seed),
		netsim.WithDefaultLink(d.link),
	)
	d.ids = id.NewSeeded(d.seed)
	d.env = core.New(d.clock, core.WithIDs(d.ids))
	d.fabric = engineering.NewFabric()

	d.mcu = rtc.NewServer(d.newEndpoint("mcu"), d.clock, rtc.WithIDs(d.ids))
	return d
}

// newEndpoint creates a node and its rpc endpoint with the deployment's
// engineering fabric observing the channel stack, so every channel the
// deployment opens shows up in the engineering bookkeeping.
func (d *Deployment) newEndpoint(addr netsim.Address) *rpc.Endpoint {
	return rpc.NewEndpoint(d.net.MustAddNode(addr), d.clock,
		rpc.WithIDs(d.ids),
		rpc.WithChannel(channel.WithObserver(d.fabric)))
}

// Env returns the CSCW environment.
func (d *Deployment) Env() *core.Environment { return d.env }

// Conferencing returns the synchronous conference server.
func (d *Deployment) Conferencing() *rtc.Server { return d.mcu }

// Network returns the simulated network (for partitions, stats).
func (d *Deployment) Network() *netsim.Network { return d.net }

// Fabric returns the engineering-viewpoint bookkeeping of the live
// channels: nodes, transport capsules, per-channel epochs and counters.
func (d *Deployment) Fabric() *engineering.Fabric { return d.fabric }

// ChannelStats lists every live channel with its traffic counters, sorted
// by (local, remote) — the per-channel view figure 4 promises the
// infrastructure can provide for all interactions.
func (d *Deployment) ChannelStats() []engineering.ChannelInfo {
	return d.fabric.Channels()
}

// ReconcileChannels verifies that the engineering bookkeeping agrees with
// the network's own counters, i.e. that no traffic bypassed the channel
// stack. Returns nil when they agree.
func (d *Deployment) ReconcileChannels() error {
	s := d.net.Stats()
	return d.fabric.Reconcile(s.Sent, s.Delivered, s.Bytes)
}

// Clock returns the simulated clock.
func (d *Deployment) Clock() *vclock.Simulated { return d.clock }

// AddSite creates a site: one MTA serving the given domain, routed to all
// existing sites (full mesh).
func (d *Deployment) AddSite(name, domain string) *Site {
	addr := netsim.Address("mta-" + name)
	mta := mhs.NewMTA(string(addr), domain, d.newEndpoint(addr), d.clock, mhs.WithIDs(d.ids))
	site := &Site{Name: name, Domain: domain, dep: d, mta: mta}
	for _, other := range d.sites {
		mta.AddRoute(other.Domain, other.mta.Addr())
		other.mta.AddRoute(domain, mta.Addr())
	}
	d.sites[name] = site
	return site
}

// Site returns a site by name.
func (d *Deployment) Site(name string) (*Site, bool) {
	s, ok := d.sites[name]
	return s, ok
}

// AddUser provisions a user at the site: an MHS mailbox plus registration
// with the communication hub.
func (s *Site) AddUser(personal string) *mhs.UserAgent {
	ua := mhs.NewUserAgent(normalizeOR(personal, s.Domain), s.mta)
	s.dep.env.Hub().Register(personal, ua)
	return ua
}

// normalizeOR builds an O/R name within a routing domain of the form
// "org" or "org.country".
func normalizeOR(personal, domain string) mhs.ORName {
	or := mhs.ORName{Personal: personal, Org: domain}
	if i := lastDot(domain); i > 0 {
		or.Org = domain[:i]
		or.Country = domain[i+1:]
	}
	return or
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// MTA exposes the site's message transfer agent.
func (s *Site) MTA() *mhs.MTA { return s.mta }

// JoinConference creates a session for a member at their own node and
// joins it, driving the simulated clock until the join completes.
func (d *Deployment) JoinConference(conferenceID, member string, opts ...rtc.SessionOption) (*rtc.Session, error) {
	nodeAddr := netsim.Address("user-" + member)
	var ep *rpc.Endpoint
	if _, exists := d.net.Node(nodeAddr); exists {
		// Node (and endpoint) remain from a previous session of the same
		// user; a fresh endpoint would steal the node's channel stack.
		cached, ok := d.userEPs[nodeAddr]
		if !ok {
			return nil, fmt.Errorf("mocca: node %q exists without an endpoint", nodeAddr)
		}
		ep = cached
	} else {
		ep = d.newEndpoint(nodeAddr)
		d.userEPs[nodeAddr] = ep
	}
	// A new session supersedes the user's previous one: detach it so it
	// stops receiving (and its callbacks stop firing on) future events.
	if prev, ok := d.userSessions[nodeAddr]; ok {
		prev.Detach()
	}
	sess := rtc.NewSession(ep, d.clock, "mcu", conferenceID, member, opts...)
	if err := d.drive(sess.Join); err != nil {
		return nil, err
	}
	d.userSessions[nodeAddr] = sess
	return sess, nil
}

// Do runs a blocking operation against the deployment, advancing simulated
// time until it completes. Use it for Session and Client calls from
// example programs.
func (d *Deployment) Do(op func() error) error { return d.drive(op) }

// Run drains the simulated network to quiescence.
func (d *Deployment) Run() { d.clock.RunUntilIdle() }

// Advance moves simulated time forward, delivering due events.
func (d *Deployment) Advance(dur time.Duration) { d.clock.Advance(dur) }

// drive executes op on a helper goroutine while this goroutine advances
// the clock.
func (d *Deployment) drive(op func() error) error {
	done := make(chan error, 1)
	go func() { done <- op() }()
	for i := 0; ; i++ {
		select {
		case err := <-done:
			return err
		default:
			time.Sleep(100 * time.Microsecond)
			d.clock.Advance(10 * time.Millisecond)
			if i > 200000 {
				return fmt.Errorf("mocca: operation did not complete")
			}
		}
	}
}

// RegisterTradingService exports a service offer into the environment's
// trader under a service type (registering the type on first use).
func (d *Deployment) RegisterTradingService(serviceType, offerID string, provider string, props map[string]string) error {
	tr := d.env.Trader()
	if !tr.HasType(serviceType) {
		if err := tr.RegisterType(serviceType); err != nil {
			return err
		}
	}
	offer := trader.Offer{ID: offerID, ServiceType: serviceType, Provider: netsim.Address(provider)}
	if len(props) > 0 {
		attrs := make(directory.Attributes, len(props))
		for k, v := range props {
			attrs.Add(k, v)
		}
		offer.Properties = attrs
	}
	return tr.Export(offer)
}
