// Package mocca is the public API of the Open CSCW environment — a Go
// reproduction of the system envisioned in "Open CSCW Systems: Will ODP
// help?" (Navarro, Prinz, Rodden; ICDCS 1992).
//
// The package assembles a complete simulated deployment: an ODP-style
// substrate (simulated network, rpc, X.500-style directory, ODP trader,
// X.400-style message handling, synchronous conferencing) with the MOCCA
// CSCW environment on top (organisational, inter-activity, information,
// communication, and user-expertise models; role-based access control;
// user-selectable transparency; an ECA tailorability engine).
//
// Quickstart:
//
//	dep := mocca.NewDeployment(mocca.WithSeed(1))
//	site := dep.AddSite("gmd", "gmd.de")
//	ua := site.AddUser("prinz")
//	...
//	dep.Run() // drain the simulated network to quiescence
//
// See examples/ for complete programs.
package mocca

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mocca/internal/channel"
	"mocca/internal/comm"
	"mocca/internal/core"
	"mocca/internal/directory"
	"mocca/internal/engineering"
	"mocca/internal/gossip"
	"mocca/internal/id"
	"mocca/internal/information"
	"mocca/internal/information/logstore"
	"mocca/internal/mhs"
	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/placement"
	"mocca/internal/replica"
	"mocca/internal/rpc"
	"mocca/internal/rtc"
	"mocca/internal/trader"
	"mocca/internal/vclock"
)

// Re-exported core types, so applications program against the root package.
type (
	// Environment is the CSCW environment (figure 3/4 of the paper).
	Environment = core.Environment
	// Application describes a registering CSCW application.
	Application = core.Application
	// Message is the communication-model exchange unit.
	Message = comm.Message
	// ORName is an X.400-style originator/recipient name.
	ORName = mhs.ORName
	// UserAgent is an MHS submission/retrieval agent.
	UserAgent = mhs.UserAgent
	// ConferenceSession is a synchronous conferencing client.
	ConferenceSession = rtc.Session
)

// SharedSchemaName is the environment's interchange schema.
const SharedSchemaName = core.SharedSchemaName

// Conference modes.
const (
	// ConferenceOpen lets any member update shared state.
	ConferenceOpen = rtc.ModeOpen
	// ConferenceModerated requires holding the floor to update.
	ConferenceModerated = rtc.ModeFloor
)

// Option configures a Deployment.
type Option func(*Deployment)

// WithSeed fixes the simulation seed (default 1992).
func WithSeed(seed int64) Option {
	return func(d *Deployment) { d.seed = seed }
}

// WithDefaultLink sets network characteristics between sites.
func WithDefaultLink(latency time.Duration, loss float64) Option {
	return func(d *Deployment) {
		d.link = netsim.LinkProfile{Latency: latency, Loss: loss}
	}
}

// WithSyncInterval sets the anti-entropy interval for the per-site
// information replicas (default one second of simulated time).
func WithSyncInterval(interval time.Duration) Option {
	return func(d *Deployment) { d.syncEvery = interval }
}

// WithPlacement seeds the deployment's placement policy with rules, so
// partial replication is in force from the first site: each site only
// replicates the information spaces placed at it, resolves everything
// else through trader-mediated remote reads, and the policy can be
// re-tailored at runtime via Deployment.SetPlacementRules. Without this
// option the policy is the deterministic replicate-everywhere default —
// existing deployments are unchanged.
func WithPlacement(rules ...placement.Rule) Option {
	return func(d *Deployment) { d.placeRules = rules }
}

// WithFullDigestSync forces every site's replicator onto the legacy
// full-digest anti-entropy exchange, disabling the Merkle digest
// negotiation (the replicators neither initiate nor serve it). This is
// the pre-negotiation behaviour — kept for compatibility testing and for
// measuring the negotiation against the O(n)-digest baseline.
func WithFullDigestSync() Option {
	return func(d *Deployment) { d.fullDigest = true }
}

// WithGossip replaces the full-mesh site peering with the epidemic
// overlay (internal/gossip): each site maintains a partial active view
// of ~⌈log₂ n⌉+c peers discovered through trader membership offers, runs
// anti-entropy only against that view, and races fresh writes ahead of
// the sync rounds as rumors. The replicator's peer set follows the view
// (churn adds, removes and re-arms peers), so per-site channel counts
// and sync bytes scale with log n instead of n — the configuration for
// deployments past a few dozen sites. Without this option the full mesh
// remains the default and nothing changes. opts pass through to every
// site's overlay.
func WithGossip(opts ...gossip.Option) Option {
	return func(d *Deployment) {
		d.gossip = true
		d.gossipOpts = opts
	}
}

// WithSiteBackend supplies per-site information storage: the factory is
// called when a site's replica is materialised (AddSite) and again on
// Site.Restart, so a durable backend re-opened by the factory recovers
// the replica from disk. AddSite panics if the factory fails — a
// deployment whose storage cannot open has nothing sensible to simulate.
func WithSiteBackend(fn func(site string) (information.Backend, error)) Option {
	return func(d *Deployment) { d.backendFor = fn }
}

// WithDurableStore keeps every site's information replica in a tiered
// log-structured store under dir/<site> (write-ahead log + sorted
// segment files + manifest, see internal/information/logstore). A site
// killed with Site.Crash and brought back with Site.Restart recovers
// its replica from disk and re-enters anti-entropy with correct
// digests, so peers send it only what it missed. Store tuning knobs —
// logstore.WithFsync, WithGroupCommit, WithCompactEvery,
// WithMergeFanout, WithBackgroundMerge — pass through to every site's
// store, first boot and restart alike.
func WithDurableStore(dir string, opts ...logstore.Option) Option {
	return WithSiteBackend(func(site string) (information.Backend, error) {
		return logstore.Open(filepath.Join(dir, site), opts...)
	})
}

// Deployment is a full simulated multi-site installation.
type Deployment struct {
	seed       int64
	link       netsim.LinkProfile
	syncEvery  time.Duration
	backendFor func(site string) (information.Backend, error)
	placeRules []placement.Rule
	fullDigest bool
	gossip     bool
	gossipOpts []gossip.Option
	telemetry  bool
	telOpts    []observe.Option
	tel        *observe.Telemetry

	clock  *vclock.Simulated
	net    *netsim.Network
	env    *core.Environment
	ids    *id.Generator
	fabric *engineering.Fabric

	mcu          *rtc.Server
	sites        map[string]*Site
	backends     map[string]information.Backend
	userEPs      map[netsim.Address]*rpc.Endpoint
	userSessions map[netsim.Address]*rtc.Session
	userSites    map[string]string // personal name -> site, for activity placement
	placedOffers []string          // trader offer ids exported for placement
}

// Site is one organisation's installation: an MTA, local users, and the
// site's replica of the information space kept convergent by channel-borne
// anti-entropy sync.
type Site struct {
	Name   string
	Domain string

	dep        *Deployment
	mta        *mhs.MTA
	env        *core.SiteEnv
	repl       *replica.Replicator
	replEP     *rpc.Endpoint // the replicator's endpoint; closed on Crash
	readEP     *rpc.Endpoint // the placement read endpoint; closed on Crash
	reader     *placement.Reader
	readServer *placement.ReadServer
	gossipEP   *rpc.Endpoint   // the overlay's endpoint; closed on Crash (gossip mode)
	overlay    *gossip.Overlay // nil unless the deployment runs WithGossip
	crashed    bool
}

// NewDeployment builds the simulated substrate and environment.
func NewDeployment(opts ...Option) *Deployment {
	d := &Deployment{
		seed:         1992,
		link:         netsim.LinkProfile{Latency: 20 * time.Millisecond},
		syncEvery:    replica.DefaultInterval,
		sites:        make(map[string]*Site),
		backends:     make(map[string]information.Backend),
		userEPs:      make(map[netsim.Address]*rpc.Endpoint),
		userSessions: make(map[netsim.Address]*rtc.Session),
		userSites:    make(map[string]string),
	}
	for _, opt := range opts {
		opt(d)
	}
	d.clock = vclock.NewSimulated(netsim.DefaultEpoch)
	if d.telemetry {
		d.tel = observe.New(d.seed, d.clock.Now, d.telOpts...)
	}
	d.net = netsim.New(
		netsim.WithClock(d.clock),
		netsim.WithSeed(d.seed),
		netsim.WithDefaultLink(d.link),
	)
	d.ids = id.NewSeeded(d.seed)
	if d.tel != nil {
		d.registerCollectors()
	}
	envOpts := []core.Option{core.WithIDs(d.ids)}
	if d.backendFor != nil {
		envOpts = append(envOpts, core.WithSiteBackend(d.openBackend))
	}
	d.env = core.New(d.clock, envOpts...)
	d.fabric = engineering.NewFabric()

	// Placement: seed the policy before subscribing, so construction does
	// not fire a (pointless) migration pass; later rule changes re-export
	// trader offers, migrate rows off de-placed sites and kick sync.
	if len(d.placeRules) > 0 {
		d.env.Placement().Use(d.placeRules...)
	}
	d.env.Placement().Subscribe(d.onPlacementChange)
	d.env.SetReadThrough(func(fromSite, actor, objID string) (*information.Object, string, error) {
		site, ok := d.sites[fromSite]
		if !ok {
			return nil, "", fmt.Errorf("mocca: read-through from unknown site %q", fromSite)
		}
		return site.reader.Read(actor, objID)
	})

	d.mcu = rtc.NewServer(d.newEndpoint("mcu"), d.clock, rtc.WithIDs(d.ids))

	// A healed partition or a recovered node is the moment diverged
	// replicas can reconcile: kick an immediate sync round on every site
	// (replicators that went dormant on the failure cap wake up; converged
	// ones run one cheap no-op round).
	d.net.OnHeal(func() {
		if d.gossip {
			// Re-knit the overlay first: demoted cross-partition peers
			// rejoin active views, so the sync rounds kicked next reach
			// across the healed cut.
			d.mendGossip()
		}
		d.SyncInformation()
	})
	d.net.OnRecover(func(addr netsim.Address) {
		// Only a replication node coming back can have reconciliation
		// work; restarts of MTAs, the MCU or user nodes don't warrant a
		// full-mesh digest exchange.
		if strings.HasPrefix(string(addr), "repl-") {
			d.SyncInformation()
		}
	})
	return d
}

// newEndpoint creates a node and its rpc endpoint with the deployment's
// engineering fabric observing the channel stack, so every channel the
// deployment opens shows up in the engineering bookkeeping.
func (d *Deployment) newEndpoint(addr netsim.Address) *rpc.Endpoint {
	return d.endpointOver(d.net.MustAddNode(addr))
}

// endpointAt is newEndpoint for an address whose node may already exist:
// restarts keep the node (the address is the site's stable network
// identity) and hand its inbound traffic to a fresh channel stack, which
// is what a rebooted engineering capsule looks like on the wire.
func (d *Deployment) endpointAt(addr netsim.Address) *rpc.Endpoint {
	if node, ok := d.net.Node(addr); ok {
		return d.endpointOver(node)
	}
	return d.newEndpoint(addr)
}

// endpointOver is the one place deployment endpoints are wired, so every
// endpoint — first boot or restart — gets identical options.
func (d *Deployment) endpointOver(node *netsim.Node) *rpc.Endpoint {
	chOpts := []channel.Option{channel.WithObserver(d.fabric)}
	opts := []rpc.Option{rpc.WithIDs(d.ids)}
	if d.tel != nil {
		opts = append(opts, rpc.WithTelemetry(d.tel))
		chOpts = append(chOpts,
			channel.WithTelemetry(d.tel),
			channel.WithNamedInterceptor("trace", channel.TracingInterceptor(d.tel.Tracer)))
	}
	opts = append(opts, rpc.WithChannel(chOpts...))
	return rpc.NewEndpoint(node, d.clock, opts...)
}

// openBackend runs the configured backend factory for a site, tracking
// the result so Crash can close it. It panics on factory failure — see
// WithSiteBackend.
func (d *Deployment) openBackend(site string) information.Backend {
	b, err := d.backendFor(site)
	if err != nil {
		panic(fmt.Sprintf("mocca: open information backend for site %q: %v", site, err))
	}
	if st, ok := b.(interface {
		SetTelemetry(*observe.Telemetry, string)
	}); ok && d.tel != nil {
		st.SetTelemetry(d.tel, site)
	}
	d.backends[site] = b
	return b
}

// Env returns the CSCW environment.
func (d *Deployment) Env() *core.Environment { return d.env }

// Conferencing returns the synchronous conference server.
func (d *Deployment) Conferencing() *rtc.Server { return d.mcu }

// Network returns the simulated network (for partitions, stats).
func (d *Deployment) Network() *netsim.Network { return d.net }

// Fabric returns the engineering-viewpoint bookkeeping of the live
// channels: nodes, transport capsules, per-channel epochs and counters.
func (d *Deployment) Fabric() *engineering.Fabric { return d.fabric }

// ChannelStats lists every live channel with its traffic counters, sorted
// by (local, remote) — the per-channel view figure 4 promises the
// infrastructure can provide for all interactions.
func (d *Deployment) ChannelStats() []engineering.ChannelInfo {
	return d.fabric.Channels()
}

// ReconcileChannels verifies that the engineering bookkeeping agrees with
// the network's own counters, i.e. that no traffic bypassed the channel
// stack. Returns nil when they agree.
func (d *Deployment) ReconcileChannels() error {
	s := d.net.Stats()
	return d.fabric.Reconcile(s.Sent, s.Delivered, s.Bytes)
}

// Clock returns the simulated clock.
func (d *Deployment) Clock() *vclock.Simulated { return d.clock }

// AddSite creates a site: one MTA serving the given domain, routed to all
// existing sites (full mesh), plus the site's information-space replica
// with its anti-entropy replicator peered the same way — scoped by the
// deployment's placement policy — and a placement read endpoint serving
// trader-mediated remote reads of the spaces hosted here.
func (d *Deployment) AddSite(name, domain string) *Site {
	addr := netsim.Address("mta-" + name)
	mta := mhs.NewMTA(string(addr), domain, d.newEndpoint(addr), d.clock, mhs.WithIDs(d.ids))
	senv := d.env.SiteEnv(name)
	replEP := d.newEndpoint(netsim.Address("repl-" + name))
	repl := replica.New(replEP, d.clock, senv.Space(), d.replicaOptions()...)
	site := &Site{Name: name, Domain: domain, dep: d, mta: mta, env: senv, repl: repl, replEP: replEP}
	site.readEP = d.newEndpoint(site.readAddr())
	site.reader = placement.NewReader(site.readEP, d.env.Trader(), name,
		placement.WithNegativeCache(d.env.Placement()),
		placement.WithNegativeTTL(placement.DefaultNegativeTTL, d.clock.Now),
		placement.WithReaderTelemetry(d.tel))
	site.readServer = placement.NewReadServer(site.readEP, name,
		func() *information.Space { return site.env.Space() },
		placement.WithHolderPolicy(d.env.Placement()),
		placement.WithServerTelemetry(d.tel))
	d.wireSiteSpace(site)
	for _, other := range d.sites {
		mta.AddRoute(other.Domain, other.mta.Addr())
		other.mta.AddRoute(domain, mta.Addr())
		if !d.gossip {
			repl.AddPeerNamed(other.Name, other.repl.Addr())
			other.repl.AddPeerNamed(name, repl.Addr())
		}
	}
	repl.AutoSync(d.syncEvery)
	if d.gossip {
		// Overlay mode: the replicator's peer set follows the active view;
		// joining the overlay (below) adds the first peers, and the
		// OnChange hook runs the immediate first sync that pulls existing
		// state from them.
		d.wireSiteGossip(site)
	} else if len(d.sites) > 0 {
		// A site joining an established deployment pulls the existing
		// information state with an immediate first round — otherwise its
		// replica stays empty until something else wakes the dormant mesh.
		repl.SyncNow()
	}
	d.sites[name] = site
	d.refreshPlacementOffers()
	return site
}

// wireSiteGossip creates the site's overlay agent on its own gossip
// endpoint, advertises it as a trader membership offer, couples the
// replicator's peer set to active-view churn, and joins the overlay.
func (d *Deployment) wireSiteGossip(s *Site) {
	opts := []gossip.Option{
		gossip.WithSeed(d.seed),
		gossip.WithTelemetry(d.tel),
		gossip.WithContacts(d.gossipContacts),
		gossip.WithBias(d.gossipBias(s.Name)),
		gossip.WithOnChange(func(added, removed []gossip.Peer) {
			for _, p := range removed {
				s.repl.RemovePeer(p.Repl)
			}
			for _, p := range added {
				s.repl.AddPeerNamed(p.Site, p.Repl)
			}
			if len(added) > 0 && !s.crashed {
				// View churn re-arms anti-entropy: a fresh peer may hold
				// state this site has never seen (late join, post-heal).
				s.repl.SyncNow()
			}
		}),
	}
	opts = append(opts, d.gossipOpts...)
	s.gossipEP = d.endpointAt(s.gossipAddr())
	s.overlay = gossip.New(s.gossipEP, d.clock, s.Name, s.replAddr(), s.repl, opts...)
	// A failing sync round is the overlay's partition detector: the
	// membership layer may be dormant when a cut lands, but anti-entropy
	// trips over it immediately and Suspect re-probes the views.
	s.repl.OnRoundFailure(s.overlay.Suspect)
	d.exportGossipOffer(s)
	s.overlay.Join()
}

// gossipContacts resolves the advertised overlay membership from the
// trader: one peer per live site's membership offer.
func (d *Deployment) gossipContacts() []gossip.Peer {
	tr := d.env.Trader()
	if !tr.HasType(gossip.ServiceType) {
		return nil
	}
	offers, err := tr.Import(trader.ImportRequest{ServiceType: gossip.ServiceType})
	if err != nil {
		return nil
	}
	out := make([]gossip.Peer, 0, len(offers))
	for _, of := range offers {
		out = append(out, gossip.Peer{
			Site: of.Properties.First(gossip.SiteProp),
			Addr: of.Provider,
			Repl: netsim.Address(of.Properties.First(gossip.ReplProp)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// gossipBias ranks a peer site by how many placement assignments it
// shares with self — the interest-set bias that makes sites gossip hot
// spaces with placed peers first. Non-selective policies rank everyone
// equally.
func (d *Deployment) gossipBias(self string) func(site string) int {
	pol := d.env.Placement()
	hosts := func(a placement.Assignment, site string) bool {
		if len(a.Sites) == 0 {
			return true
		}
		for _, s := range a.Sites {
			if s == site {
				return true
			}
		}
		return false
	}
	return func(site string) int {
		if !pol.Selective() {
			return 0
		}
		shared := 0
		for _, a := range pol.Assignments() {
			if hosts(a, self) && hosts(a, site) {
				shared++
			}
		}
		return shared
	}
}

// exportGossipOffer (re-)advertises the site's overlay membership in the
// trader. Crash withdraws the offer, so the advertised membership tracks
// live sites and the overlay ring heals around the dead.
func (d *Deployment) exportGossipOffer(s *Site) {
	tr := d.env.Trader()
	if !tr.HasType(gossip.ServiceType) {
		if err := tr.RegisterType(gossip.ServiceType); err != nil {
			panic(fmt.Sprintf("mocca: register gossip service type: %v", err))
		}
	}
	_ = tr.Withdraw(gossip.OfferID(s.Name)) // restart re-exports; unknown ids are fine
	offer := trader.Offer{
		ID:          gossip.OfferID(s.Name),
		ServiceType: gossip.ServiceType,
		Provider:    s.gossipAddr(),
		Properties: directory.NewAttributes(
			gossip.SiteProp, s.Name,
			gossip.ReplProp, string(s.replAddr()),
		),
	}
	if err := tr.Export(offer); err != nil {
		panic(fmt.Sprintf("mocca: export gossip offer %q: %v", offer.ID, err))
	}
}

// mendGossip re-knits every live site's overlay after a partition heals:
// demoted cross-partition peers are re-probed and promoted back, and
// overlays dormant on their failure cap re-arm.
func (d *Deployment) mendGossip() {
	for _, name := range d.SiteNames() {
		if s := d.sites[name]; s.overlay != nil && !s.crashed {
			s.overlay.Mend()
		}
	}
}

// replicaOptions builds the option set every site replicator is wired
// with, first boot or restart.
func (d *Deployment) replicaOptions() []replica.Option {
	opts := []replica.Option{replica.WithPlacement(d.env.Placement())}
	if d.fullDigest {
		opts = append(opts, replica.WithFullDigest())
	}
	if d.tel != nil {
		opts = append(opts, replica.WithTelemetry(d.tel))
	}
	return opts
}

// wireSiteSpace subscribes the deployment's placement plumbing to the
// site's (current) information replica: every local or applied write
// invalidates the reader's negative-lookup cache, and a Put or Update
// that lands at a site not placed for the object's space is forwarded to
// a placed holder — trader-resolved like a read-through — with the local
// foreign copy dropped only once a holder accepted it (DropCovered, so a
// racing newer write survives). When no holder is reachable the copy
// stays until the next MigrateForeign sweep: forwarding never destroys
// the only copy. Called again after Restart, against the recovered
// replica.
func (d *Deployment) wireSiteSpace(s *Site) {
	sp := s.env.Space()
	pol := d.env.Placement()
	sp.Subscribe("", func(ev information.Event) {
		switch ev.Kind {
		case "put", "update", "apply", "conflict", "evict":
			s.reader.Bump()
		}
		if ev.Kind != "put" && ev.Kind != "update" || ev.Object == nil {
			return
		}
		if d.tel.On() {
			// Each local write roots a trace and tags the object id, so
			// every downstream hop — rumor publish, placement forward,
			// WAL commit, anti-entropy apply elsewhere — parents under it.
			root := d.tel.Tracer.StartRoot("write:"+ev.Kind, s.Name)
			root.SetAttr("object", ev.Object.ID)
			d.tel.Objects.Tag(ev.Object.ID, root.Context())
			root.End()
		}
		if s.overlay != nil && !s.crashed {
			// Gossip mode: race the fresh write ahead of anti-entropy as a
			// rumor, placed peers first.
			obj := ev.Object
			desc := placement.Describe(obj)
			s.overlay.Publish(obj.ID, obj.VV, func(peerSite string) int {
				if pol.PlacedAt(peerSite, desc) {
					return 1
				}
				return 0
			})
		}
		if !pol.Selective() {
			return
		}
		obj := ev.Object
		pl := pol.SitesFor(placement.Describe(obj))
		if pl.At(s.Name) {
			return
		}
		s.reader.Forward(obj, pl, func(_ string, err error) {
			if err != nil {
				return // keep the foreign copy; migration sweeps later
			}
			_, _ = sp.DropCovered(obj.ID, obj.VV)
		})
	})
}

// Placement returns the deployment's placement policy.
func (d *Deployment) Placement() *placement.Policy { return d.env.Placement() }

// SetPlacementRules replaces the placement rule set at runtime: trader
// offers are re-exported, every site migrates rows of spaces it is no
// longer placed in to a placed peer, and sync rounds kick everywhere.
// Drain with Run afterwards to let migration and re-replication finish.
func (d *Deployment) SetPlacementRules(rules ...placement.Rule) {
	d.env.Placement().Use(rules...) // fires onPlacementChange
}

// onPlacementChange reacts to a policy change (Policy.Use/Add): offers
// follow the new hosting map, de-placed rows migrate off, and a sync
// round spreads whatever moved.
func (d *Deployment) onPlacementChange() {
	d.refreshPlacementOffers()
	for _, name := range d.SiteNames() {
		if s := d.sites[name]; !s.crashed {
			s.repl.MigrateForeign(nil)
		}
	}
	d.SyncInformation()
}

// refreshPlacementOffers re-exports one trader offer per (site, hosted
// space): the assignments of every installed rule plus the implicit
// everywhere-space. These offers are what a non-placed site's reader
// imports to resolve a holder.
func (d *Deployment) refreshPlacementOffers() {
	tr := d.env.Trader()
	if !tr.HasType(placement.ServiceType) {
		if err := tr.RegisterType(placement.ServiceType); err != nil {
			panic(fmt.Sprintf("mocca: register placement service type: %v", err))
		}
	}
	for _, id := range d.placedOffers {
		_ = tr.Withdraw(id) // stale hosting claims go away; unknown ids are fine
	}
	d.placedOffers = d.placedOffers[:0]
	assignments := d.env.Placement().Assignments()
	for _, name := range d.SiteNames() {
		site := d.sites[name]
		spaces := []string{placement.DefaultSpace}
		for _, a := range assignments {
			hosted := len(a.Sites) == 0
			for _, s := range a.Sites {
				if s == name {
					hosted = true
					break
				}
			}
			if hosted {
				spaces = append(spaces, a.Space)
			}
		}
		for _, space := range spaces {
			offer := trader.Offer{
				ID:          placement.OfferID(name, space),
				ServiceType: placement.ServiceType,
				Provider:    site.readAddr(),
				Properties: directory.NewAttributes(
					placement.SpaceProp, space,
					placement.SiteProp, name,
				),
			}
			if err := tr.Export(offer); err != nil {
				panic(fmt.Sprintf("mocca: export placement offer %q: %v", offer.ID, err))
			}
			d.placedOffers = append(d.placedOffers, offer.ID)
		}
	}
}

// SitePlacementStats is one site's view of partial replication: what it
// holds, what placement kept away from it, and how often it had to (or
// got to) serve reads across sites.
type SitePlacementStats struct {
	Site    string
	Objects int // rows currently on the site's replica

	FilteredDeltas int64 // delta objects withheld from peers by placement (full-digest path)
	FilteredPushes int64 // push objects withheld from peers by placement (full-digest path)
	ScopeFiltered  int64 // rows placement kept out of per-peer digest trees (Merkle path)
	RefusedApplies int64 // offered objects the site is not placed for
	Migrated       int64 // rows pushed off by migration
	Evicted        int64 // rows dropped locally after migration

	RemoteReadsIssued int64 // read-throughs this site asked for
	RemoteReadsServed int64 // remote reads this site answered for others

	WritesForwarded int64 // non-placed writes this site routed to a holder
	WritesAccepted  int64 // forwarded writes this site accepted for others
	NegativeHits    int64 // reads short-circuited by the negative-lookup cache
}

// PlacementStats reports per-site placement statistics, sorted by site —
// the observable face of partial replication (the engineering byte counts
// live in Fabric.TotalsFor("repl-")).
func (d *Deployment) PlacementStats() []SitePlacementStats {
	out := make([]SitePlacementStats, 0, len(d.sites))
	for _, name := range d.SiteNames() {
		site := d.sites[name]
		rs := site.repl.Stats()
		out = append(out, SitePlacementStats{
			Site:              name,
			Objects:           site.Space().Len(),
			FilteredDeltas:    rs.FilteredDeltas,
			FilteredPushes:    rs.FilteredPushes,
			ScopeFiltered:     rs.ScopeFiltered,
			RefusedApplies:    rs.RefusedApplies,
			Migrated:          rs.Migrated,
			Evicted:           rs.Evicted,
			RemoteReadsIssued: site.reader.Stats().Reads,
			RemoteReadsServed: site.readServer.Stats().Served,
			WritesForwarded:   site.reader.Stats().Forwarded,
			WritesAccepted:    site.readServer.Stats().WritesAccepted,
			NegativeHits:      site.reader.Stats().NegativeHits,
		})
	}
	return out
}

// SiteSyncStats is one site's anti-entropy counters, named.
type SiteSyncStats struct {
	Site string
	replica.Stats
}

// SyncStats reports per-site replication statistics, sorted by site —
// the observable face of the digest negotiation: converged-root compares,
// descent depth, digest bytes per round, and how often the legacy
// full-digest fallback ran.
func (d *Deployment) SyncStats() []SiteSyncStats {
	out := make([]SiteSyncStats, 0, len(d.sites))
	for _, name := range d.SiteNames() {
		out = append(out, SiteSyncStats{Site: name, Stats: d.sites[name].repl.Stats()})
	}
	return out
}

// Site returns a site by name.
func (d *Deployment) Site(name string) (*Site, bool) {
	s, ok := d.sites[name]
	return s, ok
}

// SiteNames lists the deployment's sites, sorted.
func (d *Deployment) SiteNames() []string {
	out := make([]string, 0, len(d.sites))
	for name := range d.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SyncInformation kicks an immediate anti-entropy round on every site;
// drain with Run (or Advance) afterwards to let the rounds complete.
func (d *Deployment) SyncInformation() {
	for _, name := range d.SiteNames() {
		d.sites[name].repl.SyncNow()
	}
}

// AddUser provisions a user at the site: an MHS mailbox plus registration
// with the communication hub. The user's home site is recorded so
// activity-scoped placement can map activity members to the sites whose
// replicas must host the activity's space.
func (s *Site) AddUser(personal string) *mhs.UserAgent {
	ua := mhs.NewUserAgent(normalizeOR(personal, s.Domain), s.mta)
	s.dep.env.Hub().Register(personal, ua)
	s.dep.userSites[personal] = s.Name
	return ua
}

// UserSite reports which site a user was provisioned at.
func (d *Deployment) UserSite(personal string) (string, bool) {
	site, ok := d.userSites[personal]
	return site, ok
}

// ActivityMemberSites resolves an activity id to the home sites of its
// current members — the lookup an activity-scoped placement rule needs.
// Use it with placement.ByActivity:
//
//	dep.SetPlacementRules(placement.ByActivity(act.ID, "context", dep.ActivityMemberSites))
//
// Membership is consulted per placement decision, so joins and leaves
// move the activity's space without touching the rule set (kick
// Deployment.SetPlacementRules or Policy.Use to migrate existing rows).
func (d *Deployment) ActivityMemberSites(activityID string) []string {
	act, err := d.env.Activities().Get(activityID)
	if err != nil {
		return nil
	}
	set := make(map[string]bool)
	for member := range act.Members {
		if site, ok := d.userSites[member]; ok {
			set[site] = true
		}
	}
	out := make([]string, 0, len(set))
	for site := range set {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// normalizeOR builds an O/R name within a routing domain of the form
// "org" or "org.country".
func normalizeOR(personal, domain string) mhs.ORName {
	or := mhs.ORName{Personal: personal, Org: domain}
	if i := lastDot(domain); i > 0 {
		or.Org = domain[:i]
		or.Country = domain[i+1:]
	}
	return or
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}

// MTA exposes the site's message transfer agent.
func (s *Site) MTA() *mhs.MTA { return s.mta }

// Env returns the site's face of the CSCW environment: shared schemas,
// ACL and policies, site-local information replica.
func (s *Site) Env() *core.SiteEnv { return s.env }

// Space returns the site's information-space replica. Writes land here
// and propagate to the other sites' replicas asynchronously via
// anti-entropy sync over the channel stack.
func (s *Site) Space() *information.Space { return s.env.Space() }

// Replicator exposes the site's anti-entropy replicator (peers, stats).
func (s *Site) Replicator() *replica.Replicator { return s.repl }

// SyncNow kicks an immediate anti-entropy round for this site.
func (s *Site) SyncNow() { s.repl.SyncNow() }

// Crash kills the site mid-run: its network nodes go down (in-flight
// frames to them are lost, peers' sync rounds start failing) and its
// information backend is released. The in-memory replica state is gone
// the moment Restart swaps it out — what survives is whatever the
// backend put on disk, which for the durable logstore is every completed
// write.
func (s *Site) Crash() {
	if s.crashed {
		return
	}
	d := s.dep
	if node, ok := d.net.Node(s.replAddr()); ok {
		node.SetDown(true)
	}
	if node, ok := d.net.Node(s.readAddr()); ok {
		node.SetDown(true)
	}
	if node, ok := d.net.Node(s.mta.Addr()); ok {
		node.SetDown(true)
	}
	if s.overlay != nil {
		// The dead site leaves the advertised membership: peers' probes
		// demote it from their views and the ring heals around it.
		_ = d.env.Trader().Withdraw(gossip.OfferID(s.Name))
		s.overlay.Close()
		if node, ok := d.net.Node(s.gossipAddr()); ok {
			node.SetDown(true)
		}
		s.gossipEP.Close()
	}
	// Close the replication and read endpoints: pending calls cancel now
	// and any stale auto-sync round the dead replicator still fires
	// completes immediately instead of dribbling timeouts after the
	// restart.
	s.replEP.Close()
	s.readEP.Close()
	if b, ok := d.backends[s.Name]; ok {
		// Closing drops the file handle; every append already reached the
		// OS before its write returned, so this models a kill at the last
		// completed mutation, not a graceful flush.
		if c, ok := b.(io.Closer); ok {
			_ = c.Close()
		}
		delete(d.backends, s.Name)
	}
	s.crashed = true
}

// Restart brings a crashed site back: the information replica is rebuilt
// over a freshly opened backend (for a durable store that means WAL +
// snapshot recovery), a new replicator takes over the site's replication
// address, and the nodes come back up — which kicks an immediate
// anti-entropy round, so the recovered replica pulls exactly the writes
// it missed while down instead of re-replicating from scratch.
func (s *Site) Restart() error {
	if !s.crashed {
		// Restarting a live site would open a second backend over the same
		// directory while the first still holds it.
		return fmt.Errorf("mocca: restart of running site %q (call Crash first)", s.Name)
	}
	d := s.dep
	var backend information.Backend
	if d.backendFor != nil {
		b, err := d.backendFor(s.Name)
		if err != nil {
			return fmt.Errorf("mocca: restart site %q: %w", s.Name, err)
		}
		backend = b
		d.backends[s.Name] = b
	}
	s.env = d.env.ResetSiteSpace(s.Name, backend)
	// Fresh endpoints, replicator and read server over the same
	// addresses; the old replicator's endpoint was closed by Crash, so
	// any round it still fires fails instantly and it goes dormant under
	// its failure cap.
	s.replEP = d.endpointAt(s.replAddr())
	s.repl = replica.New(s.replEP, d.clock, s.env.Space(), d.replicaOptions()...)
	s.readEP = d.endpointAt(s.readAddr())
	s.reader = placement.NewReader(s.readEP, d.env.Trader(), s.Name,
		placement.WithNegativeCache(d.env.Placement()),
		placement.WithNegativeTTL(placement.DefaultNegativeTTL, d.clock.Now))
	s.readServer = placement.NewReadServer(s.readEP, s.Name,
		func() *information.Space { return s.env.Space() },
		placement.WithHolderPolicy(d.env.Placement()))
	d.wireSiteSpace(s)
	if !d.gossip {
		for _, other := range d.sites {
			if other == s {
				continue
			}
			s.repl.AddPeerNamed(other.Name, other.repl.Addr())
			other.repl.AddPeerNamed(s.Name, s.repl.Addr())
		}
	}
	s.repl.AutoSync(d.syncEvery)
	if node, ok := d.net.Node(s.mta.Addr()); ok {
		node.SetDown(false)
	}
	if node, ok := d.net.Node(s.readAddr()); ok {
		node.SetDown(false)
	}
	s.crashed = false
	if d.gossip {
		// A fresh overlay agent rejoins the advertised membership; its
		// view changes re-peer the recovered replicator.
		if node, ok := d.net.Node(s.gossipAddr()); ok {
			node.SetDown(false)
		}
		d.wireSiteGossip(s)
	}
	if node, ok := d.net.Node(s.replAddr()); ok {
		// Recovery of a repl-* node fires the deployment's OnRecover hook,
		// which kicks a sync round everywhere.
		node.SetDown(false)
	}
	return nil
}

// replAddr is the site's replication endpoint address.
func (s *Site) replAddr() netsim.Address { return netsim.Address("repl-" + s.Name) }

// readAddr is the site's placement read endpoint address — separate from
// replAddr so Fabric.TotalsFor("repl-") measures pure anti-entropy
// traffic and TotalsFor("place-") measures remote reads.
func (s *Site) readAddr() netsim.Address { return netsim.Address("place-" + s.Name) }

// gossipAddr is the site's overlay endpoint address; TotalsFor("gossip-")
// measures pure membership/rumor traffic.
func (s *Site) gossipAddr() netsim.Address { return netsim.Address("gossip-" + s.Name) }

// Overlay exposes the site's gossip agent (views, stats); nil unless the
// deployment runs WithGossip.
func (s *Site) Overlay() *gossip.Overlay { return s.overlay }

// JoinConference creates a session for a member at their own node and
// joins it, driving the simulated clock until the join completes.
func (d *Deployment) JoinConference(conferenceID, member string, opts ...rtc.SessionOption) (*rtc.Session, error) {
	sess, err := d.NewConferenceSession(conferenceID, member, opts...)
	if err != nil {
		return nil, err
	}
	if err := d.drive(sess.Join); err != nil {
		return nil, err
	}
	return sess, nil
}

// NewConferenceSession prepares (but does not join) a session for a member
// at their own node. Callers that run on the simulated-clock goroutine —
// the workload driver — join via Session.GoJoin; interactive callers use
// JoinConference, which drives the blocking Join to completion.
func (d *Deployment) NewConferenceSession(conferenceID, member string, opts ...rtc.SessionOption) (*rtc.Session, error) {
	nodeAddr := netsim.Address("user-" + member)
	var ep *rpc.Endpoint
	if _, exists := d.net.Node(nodeAddr); exists {
		// Node (and endpoint) remain from a previous session of the same
		// user; a fresh endpoint would steal the node's channel stack.
		cached, ok := d.userEPs[nodeAddr]
		if !ok {
			return nil, fmt.Errorf("mocca: node %q exists without an endpoint", nodeAddr)
		}
		ep = cached
	} else {
		ep = d.newEndpoint(nodeAddr)
		d.userEPs[nodeAddr] = ep
	}
	// A new session supersedes the user's previous one: detach it so it
	// stops receiving (and its callbacks stop firing on) future events.
	if prev, ok := d.userSessions[nodeAddr]; ok {
		prev.Detach()
	}
	sess := rtc.NewSession(ep, d.clock, "mcu", conferenceID, member, opts...)
	d.userSessions[nodeAddr] = sess
	return sess, nil
}

// ServiceEndpoint returns (creating it on first use) an rpc endpoint at
// addr on the simulated network, wired through the deployment's channel
// stack and fabric observer like every site endpoint. Harness-level
// infrastructure — the workload generator's DSA and trader nodes, per-site
// load clients — lives on such endpoints so its traffic shows up in
// Fabric totals under its own address prefix.
func (d *Deployment) ServiceEndpoint(addr string) *rpc.Endpoint {
	a := netsim.Address(addr)
	if ep, ok := d.userEPs[a]; ok {
		return ep
	}
	ep := d.endpointAt(a)
	d.userEPs[a] = ep
	return ep
}

// Do runs a blocking operation against the deployment, advancing simulated
// time until it completes. Use it for Session and Client calls from
// example programs.
func (d *Deployment) Do(op func() error) error { return d.drive(op) }

// Run drains the simulated network to quiescence.
func (d *Deployment) Run() { d.clock.RunUntilIdle() }

// Advance moves simulated time forward, delivering due events.
func (d *Deployment) Advance(dur time.Duration) { d.clock.Advance(dur) }

// driveTimeout bounds drive in wall-clock time. Simulated work completes
// in microseconds of real time; an operation still pending after this
// long is stuck on something no amount of simulated time will fix.
const driveTimeout = 10 * time.Second

// drive executes op on a helper goroutine while this goroutine advances
// the simulated clock, idle-aware: time jumps straight to the next
// scheduled event instead of polling in fixed steps, and when the clock
// has nothing scheduled it briefly yields so the operation goroutine can
// either finish or schedule its next event.
func (d *Deployment) drive(op func() error) error {
	done := make(chan error, 1)
	go func() { done <- op() }()
	//lint:allow determinism wall-clock watchdog bounding a stuck simulated run; it only decides when to give up, never what the run computes
	start := time.Now()
	for {
		select {
		case err := <-done:
			return err
		default:
		}
		if deadline, ok := d.clock.NextDeadline(); ok {
			d.clock.AdvanceTo(deadline)
		} else {
			// Simulated clock idle: the operation is between steps on its
			// own goroutine. Yield until it finishes or schedules.
			select {
			case err := <-done:
				return err
			//lint:allow determinism wall-clock yield while the simulated clock is idle; it paces the host loop, never the simulated run
			case <-time.After(50 * time.Microsecond):
			}
		}
		//lint:allow determinism wall-clock watchdog bounding a stuck simulated run; it only decides when to give up, never what the run computes
		if time.Since(start) > driveTimeout {
			return fmt.Errorf("mocca: operation did not complete within %v (%d simulated events still pending)",
				driveTimeout, d.clock.Pending())
		}
	}
}

// RegisterTradingService exports a service offer into the environment's
// trader under a service type (registering the type on first use).
func (d *Deployment) RegisterTradingService(serviceType, offerID string, provider string, props map[string]string) error {
	tr := d.env.Trader()
	if !tr.HasType(serviceType) {
		if err := tr.RegisterType(serviceType); err != nil {
			return err
		}
	}
	offer := trader.Offer{ID: offerID, ServiceType: serviceType, Provider: netsim.Address(provider)}
	if len(props) > 0 {
		attrs := make(directory.Attributes, len(props))
		for k, v := range props {
			attrs.Add(k, v)
		}
		offer.Properties = attrs
	}
	return tr.Export(offer)
}
