package mocca

import (
	"fmt"
	"testing"
)

// seedLargeDeployment builds a 2-site deployment holding n converged
// objects. Seeding bypasses the wire (the second replica applies each
// row directly), so tests and benchmarks measure steady-state round
// cost, not initial replication.
func seedLargeDeployment(tb testing.TB, n int, opts ...Option) (*Deployment, []*Site, []string) {
	tb.Helper()
	dep := NewDeployment(append([]Option{WithSeed(1)}, opts...)...)
	sites := []*Site{
		dep.AddSite("s00", "s00.net"),
		dep.AddSite("s01", "s01.net"),
	}
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		obj, err := sites[0].Space().Put("ada", SharedSchemaName,
			map[string]string{"title": fmt.Sprintf("doc %d", i)})
		if err != nil {
			tb.Fatal(err)
		}
		if _, _, err := sites[1].Space().ApplyRemote(obj); err != nil {
			tb.Fatal(err)
		}
		ids[i] = obj.ID
	}
	dep.Run() // drain the armed rounds; replicas are already converged
	for _, s := range sites {
		if s.Space().Len() != n {
			tb.Fatalf("site %s holds %d rows, want %d", s.Name, s.Space().Len(), n)
		}
	}
	return dep, sites, ids
}

// statsFor returns one site's replicator stats out of SyncStats.
func statsFor(tb testing.TB, dep *Deployment, site string) SiteSyncStats {
	tb.Helper()
	for _, st := range dep.SyncStats() {
		if st.Site == site {
			return st
		}
	}
	tb.Fatalf("no sync stats for site %q", site)
	return SiteSyncStats{}
}

// TestMerkleDigestScaleAcceptance is the issue's acceptance criterion at
// 10⁴ objects: a converged anti-entropy round exchanges O(1) digest
// bytes (one root compare), and a round repairing k changed objects
// exchanges O(log n · k) digest bytes via subtree descent — both read
// off replicator Stats, and both orders of magnitude below the O(n)
// full-digest exchange the negotiation replaced.
func TestMerkleDigestScaleAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁴-object deployment")
	}
	const n = 10_000
	dep, sites, ids := seedLargeDeployment(t, n)

	// Converged round: root compare only, cost independent of n.
	before := statsFor(t, dep, "s00")
	dep.SyncInformation()
	dep.Run()
	after := statsFor(t, dep, "s00")
	if after.ConvergedRoots <= before.ConvergedRoots {
		t.Fatalf("converged round did not match roots: %+v", after.Stats)
	}
	if got := after.LastRoundDigestBytes; got == 0 || got > 256 {
		t.Fatalf("converged round digest bytes = %d, want (0, 256] at %d objects", got, n)
	}
	if after.DigestEntriesSent != before.DigestEntriesSent {
		t.Fatal("converged round shipped digest entries")
	}

	// Raise s00's high-water mark so ordinary updates become invisible to
	// the fast path — forcing the descent machinery the criterion is
	// about.
	hot, version := ids[0], uint64(1)
	for i := 0; i < 6; i++ {
		upd, err := sites[0].Space().Update("ada", hot, version,
			map[string]string{"title": fmt.Sprintf("hot v%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		version = upd.Version
	}
	dep.Run()

	// k changed objects, each a high-water blind spot.
	const k = 3
	before = statsFor(t, dep, "s00")
	for i := 0; i < k; i++ {
		if _, err := sites[0].Space().Update("ada", ids[100+i*777], 1,
			map[string]string{"title": fmt.Sprintf("cold v2 #%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	dep.Run()
	after = statsFor(t, dep, "s00")

	for i := 0; i < k; i++ {
		got, err := sites[1].Space().Get("ada", ids[100+i*777])
		if err != nil || got.Fields["title"] != fmt.Sprintf("cold v2 #%d", i) {
			t.Fatalf("cold update %d did not converge: %v %v", i, got, err)
		}
	}
	if after.DescentCalls <= before.DescentCalls {
		t.Fatalf("repair ran without descent: %+v", after.Stats)
	}
	divergentBytes := after.DigestBytes - before.DigestBytes
	if divergentBytes == 0 || divergentBytes > 20_000 {
		t.Fatalf("divergent repair cost %d digest bytes, want O(log n · k) ≪ O(n)", divergentBytes)
	}

	// The O(n) baseline the negotiation replaced: the same converged
	// deployment on the legacy full-digest exchange ships the entire
	// digest every round.
	legacyDep, _, _ := seedLargeDeployment(t, n, WithFullDigestSync())
	legacyDep.SyncInformation()
	legacyDep.Run()
	legacy := statsFor(t, legacyDep, "s00")
	if legacy.LegacyExchanges == 0 || legacy.MerkleExchanges != 0 {
		t.Fatalf("legacy deployment negotiated: %+v", legacy.Stats)
	}
	if legacy.LastRoundDigestBytes < 100_000 {
		t.Fatalf("legacy converged round cost %d digest bytes, expected O(n)", legacy.LastRoundDigestBytes)
	}
	t.Logf("digest bytes at %d objects: converged merkle=%d, %d-object repair=%d, legacy full digest=%d",
		n, after.LastRoundDigestBytes, k, divergentBytes, legacy.LastRoundDigestBytes)
}
