package mocca

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/odp"
	"mocca/internal/placement"
	"mocca/internal/transparency"
)

// fanoutOutcome fingerprints a fanout scenario run for reproducibility
// and cross-mode comparison.
type fanoutOutcome struct {
	syncBytes    int64
	remoteTitle  string
	remoteHolder string
	stateVV      string
}

// runActivityFanout drives the acceptance scenario: 8 sites, one activity
// whose two members live at s00 and s01, six objects written into the
// activity's space at s00. With scoped placement the space lives at
// {s00, s01} only; without, it replicates everywhere.
func runActivityFanout(t *testing.T, scoped bool) fanoutOutcome {
	t.Helper()
	const nSites, nObjs = 8, 6
	dep := NewDeployment(WithSeed(1992))
	sites := make([]*Site, nSites)
	for i := range sites {
		sites[i] = dep.AddSite(fmt.Sprintf("s%02d", i), fmt.Sprintf("s%02d.net", i))
	}
	sites[0].AddUser("ada")
	sites[1].AddUser("ben")
	act, err := dep.Env().Activities().Create("ada", "design-review", "review the design")
	if err != nil {
		t.Fatal(err)
	}
	for _, member := range []string{"ada", "ben"} {
		if err := dep.Env().Activities().Join(act.ID, member, "participant"); err != nil {
			t.Fatal(err)
		}
	}
	if scoped {
		dep.SetPlacementRules(placement.ByActivity(act.ID, "context", dep.ActivityMemberSites))
		dep.Run()
	}

	var objIDs []string
	for i := 0; i < nObjs; i++ {
		obj, err := sites[0].Space().Put("ada", SharedSchemaName, map[string]string{
			"title":   fmt.Sprintf("design rev %d", i),
			"context": act.ID,
		})
		if err != nil {
			t.Fatal(err)
		}
		objIDs = append(objIDs, obj.ID)
	}
	dep.Run()

	// Participants hold the space; with scoping, nobody else stores a row.
	for i, s := range sites {
		n := s.Space().Len()
		switch {
		case i < 2:
			if n != nObjs {
				t.Fatalf("participant %s holds %d rows, want %d", s.Name, n, nObjs)
			}
		case scoped:
			if n != 0 {
				t.Fatalf("non-participant %s stores %d rows, want 0", s.Name, n)
			}
		default:
			if n != nObjs {
				t.Fatalf("full replication: %s holds %d rows, want %d", s.Name, n, nObjs)
			}
		}
	}

	// A non-participating site still reads the space — via trader-resolved
	// remote read-through over the rpc/channel stack.
	reader := sites[nSites-1]
	var got *information.Object
	if err := dep.Do(func() error {
		o, err := reader.Env().Get("ada", objIDs[0])
		got = o
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got.Fields["title"] != "design rev 0" {
		t.Fatalf("remote read = %+v", got.Fields)
	}

	// Deselect location transparency: the same read is annotated with the
	// holder that actually served it.
	dep.Env().Transparency().Disable("ada", odp.Location)
	var annotated *information.Object
	if err := dep.Do(func() error {
		o, err := reader.Env().Get("ada", objIDs[0])
		annotated = o
		return err
	}); err != nil {
		t.Fatal(err)
	}
	holder := annotated.Fields[transparency.LocationHolderField]
	if scoped {
		if holder != "s00" && holder != "s01" {
			t.Fatalf("holder annotation = %q, want a participant site", holder)
		}
		if annotated.Fields[transparency.LocationReaderField] != reader.Name ||
			annotated.Fields[transparency.LocationViaField] != "trader" {
			t.Fatalf("location annotations = %v", annotated.Fields)
		}
		// Per-site stats surface the remote read and the filtering.
		stats := dep.PlacementStats()
		byName := map[string]SitePlacementStats{}
		var filtered int64
		for _, st := range stats {
			byName[st.Site] = st
			filtered += st.FilteredDeltas + st.FilteredPushes + st.ScopeFiltered
		}
		if byName[reader.Name].RemoteReadsIssued < 2 {
			t.Fatalf("reader stats = %+v", byName[reader.Name])
		}
		if byName["s00"].RemoteReadsServed+byName["s01"].RemoteReadsServed < 2 {
			t.Fatalf("no participant served the remote reads: %+v", stats)
		}
		if filtered == 0 {
			t.Fatal("placement filtered nothing")
		}
	}
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
	ref, err := sites[0].Space().Get("ada", objIDs[0])
	if err != nil {
		t.Fatal(err)
	}
	return fanoutOutcome{
		syncBytes:    dep.Fabric().TotalsFor("repl-").BytesOut,
		remoteTitle:  got.Fields["title"],
		remoteHolder: holder,
		stateVV:      ref.VV.String(),
	}
}

// TestPlacementActivityScopedFanout is the issue's acceptance scenario:
// with activity-scoped placement at 8 sites a non-participating site
// stores zero rows of the activity's space, anti-entropy bytes drop
// against full replication in the same scenario, and SiteEnv.Get from a
// non-placed site still returns the rows via trader-mediated read-through.
// Both modes are seeded; the scoped run is reproducible.
func TestPlacementActivityScopedFanout(t *testing.T) {
	scoped := runActivityFanout(t, true)
	full := runActivityFanout(t, false)
	if scoped.syncBytes >= full.syncBytes {
		t.Fatalf("partial replication saved nothing: scoped=%d full=%d bytes",
			scoped.syncBytes, full.syncBytes)
	}
	t.Logf("repl- sync bytes: scoped=%d full=%d (saved %.0f%%)",
		scoped.syncBytes, full.syncBytes,
		100*(1-float64(scoped.syncBytes)/float64(full.syncBytes)))

	// Seeded convergence under partial placement: a second scoped run ends
	// byte-identical.
	if again := runActivityFanout(t, true); again != scoped {
		t.Fatalf("scoped run not reproducible: %+v vs %+v", again, scoped)
	}
}

// TestPlacementRuntimeDeplacement: a space is scoped at runtime after it
// already replicated everywhere — the de-placed sites migrate their rows
// to the placed ones and end with zero rows, even when the policy change
// lands while the de-placed site is partitioned away mid-sync.
func TestPlacementRuntimeDeplacement(t *testing.T) {
	dep := NewDeployment(WithSeed(41))
	s0 := dep.AddSite("s0", "s0.net")
	s1 := dep.AddSite("s1", "s1.net")
	s2 := dep.AddSite("s2", "s2.net")

	obj, err := s2.Space().Put("ada", SharedSchemaName, map[string]string{
		"title": "workspace doc", "context": "ws-eng",
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()
	for _, s := range []*Site{s0, s1, s2} {
		if s.Space().Len() != 1 {
			t.Fatalf("%s did not replicate pre-scoping", s.Name)
		}
	}

	// Partition s2 away and write an update it will miss; scope the space
	// to {s0, s1} while s2 is cut off — the de-placement lands mid-sync.
	dep.Network().Partition(
		[]netsim.Address{"mta-s2", "repl-s2", "place-s2"},
		[]netsim.Address{"mta-s0", "repl-s0", "place-s0", "mta-s1", "repl-s1", "place-s1"},
	)
	if _, err := s0.Space().Update("ada", obj.ID, 1, map[string]string{"title": "v2"}); err != nil {
		t.Fatal(err)
	}
	dep.SetPlacementRules(placement.ByField("context", "ws-eng", "s0", "s1"))
	dep.Run()

	// Heal: s2 must migrate its stale row off and must not receive v2.
	dep.Network().Heal()
	dep.Run()
	dep.SetPlacementRules(placement.ByField("context", "ws-eng", "s0", "s1")) // re-kick migration post-heal
	dep.Run()

	if n := s2.Space().Len(); n != 0 {
		t.Fatalf("de-placed site still stores %d rows", n)
	}
	for _, s := range []*Site{s0, s1} {
		got, err := s.Space().Get("ada", obj.ID)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if got.Fields["title"] != "v2" {
			t.Fatalf("%s state = %v", s.Name, got.Fields)
		}
	}
	stats := dep.PlacementStats()
	var migrated int64
	for _, st := range stats {
		migrated += st.Migrated
	}
	if migrated == 0 {
		t.Fatalf("no migration recorded: %+v", stats)
	}
	// The de-placed site still reads the space remotely.
	var got *information.Object
	if err := dep.Do(func() error {
		o, err := s2.Env().Get("ada", obj.ID)
		got = o
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got.Fields["title"] != "v2" {
		t.Fatalf("remote read after de-placement = %v", got.Fields)
	}
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementDisjointInterestSetsPartitionHeal: two spaces scoped to
// disjoint site pairs, a partition separating the pairs, writes on both
// sides. After the heal each space converges within its pair and never
// crosses into the other — disjoint interest sets stay disjoint.
func TestPlacementDisjointInterestSetsPartitionHeal(t *testing.T) {
	dep := NewDeployment(WithSeed(17), WithPlacement(
		placement.ByField("context", "ws-hw", "s0", "s1"),
		placement.ByField("context", "ws-sw", "s2", "s3"),
	))
	sites := []*Site{
		dep.AddSite("s0", "s0.net"), dep.AddSite("s1", "s1.net"),
		dep.AddSite("s2", "s2.net"), dep.AddSite("s3", "s3.net"),
	}
	dep.Network().Partition(
		[]netsim.Address{"mta-s0", "repl-s0", "place-s0", "mta-s1", "repl-s1", "place-s1"},
		[]netsim.Address{"mta-s2", "repl-s2", "place-s2", "mta-s3", "repl-s3", "place-s3"},
	)
	hw, err := sites[0].Space().Put("ada", SharedSchemaName, map[string]string{
		"title": "board", "context": "ws-hw",
	})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := sites[2].Space().Put("ben", SharedSchemaName, map[string]string{
		"title": "kernel", "context": "ws-sw",
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()
	dep.Network().Heal()
	dep.Run()

	for i, s := range sites {
		wantHW, wantSW := i < 2, i >= 2
		if _, err := s.Space().Get("ada", hw.ID); (err == nil) != wantHW {
			t.Fatalf("%s hw presence wrong (err=%v)", s.Name, err)
		}
		if _, err := s.Space().Get("ben", sw.ID); (err == nil) != wantSW {
			t.Fatalf("%s sw presence wrong (err=%v)", s.Name, err)
		}
		want := 1
		if n := s.Space().Len(); n != want {
			t.Fatalf("%s holds %d rows, want %d", s.Name, n, want)
		}
	}
	// Cross-space reads work through the trader in both directions.
	if err := dep.Do(func() error {
		o, err := sites[3].Env().Get("ada", hw.ID)
		if err != nil {
			return err
		}
		if o.Fields["title"] != "board" {
			return fmt.Errorf("bad remote read: %v", o.Fields)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementWriteForwarding: a Put at a site not placed for the
// object's space is routed to a placed holder instead of stranding a
// foreign row until the next migration sweep — the local copy is dropped
// once the holder accepted, and the writer site still reads the object
// back through the trader.
func TestPlacementWriteForwarding(t *testing.T) {
	dep := NewDeployment(WithSeed(29), WithPlacement(
		placement.ByField("context", "vault", "s0"),
	))
	s0 := dep.AddSite("s0", "s0.net")
	s1 := dep.AddSite("s1", "s1.net")

	obj, err := s1.Space().Put("ada", SharedSchemaName, map[string]string{
		"title": "routed secret", "context": "vault",
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()

	if n := s1.Space().Len(); n != 0 {
		t.Fatalf("writer site still holds %d foreign rows", n)
	}
	got, err := s0.Space().Get("ada", obj.ID)
	if err != nil || got.Fields["title"] != "routed secret" {
		t.Fatalf("holder state = %v, %v", got, err)
	}
	stats := dep.PlacementStats()
	byName := map[string]SitePlacementStats{}
	for _, st := range stats {
		byName[st.Site] = st
	}
	if byName["s1"].WritesForwarded == 0 {
		t.Fatalf("no forward recorded: %+v", byName["s1"])
	}
	if byName["s0"].WritesAccepted == 0 {
		t.Fatalf("holder accepted nothing: %+v", byName["s0"])
	}
	// The writer still reads its own write — via read-through.
	if err := dep.Do(func() error {
		o, err := s1.Env().Get("ada", obj.ID)
		if err != nil {
			return err
		}
		if o.Fields["title"] != "routed secret" {
			return fmt.Errorf("bad read-back: %v", o.Fields)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
}

// TestPlacementWriteForwardingKeepsCopyWhenHolderDown: no reachable
// placed holder — the foreign copy stays (forwarding never destroys the
// only copy) and a later migration sweep moves it once the holder is
// back.
func TestPlacementWriteForwardingKeepsCopyWhenHolderDown(t *testing.T) {
	dep := NewDeployment(WithSeed(31), WithPlacement(
		placement.ByField("context", "vault", "s0"),
	))
	s0 := dep.AddSite("s0", "s0.net")
	s1 := dep.AddSite("s1", "s1.net")
	s0.Crash()

	obj, err := s1.Space().Put("ada", SharedSchemaName, map[string]string{
		"title": "stranded", "context": "vault",
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if _, err := s1.Space().Get("ada", obj.ID); err != nil {
		t.Fatalf("sole copy destroyed by failed forward: %v", err)
	}

	// Holder returns; the recovery sync round hands it the row, and a
	// migration sweep clears the foreign copy.
	if err := s0.Restart(); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	dep.SetPlacementRules(placement.ByField("context", "vault", "s0"))
	dep.Run()
	if _, err := s0.Space().Get("ada", obj.ID); err != nil {
		t.Fatalf("holder never received the row: %v", err)
	}
	if n := s1.Space().Len(); n != 0 {
		t.Fatalf("foreign copy still on writer site: %d rows", n)
	}
}

// TestPlacementSoleHolderDown: the only site placed for a space crashes;
// a read-through from elsewhere fails with an error that says so, and
// recovers once the holder restarts. The holder runs on the durable
// store — with a single placed replica, the log IS the only copy.
func TestPlacementSoleHolderDown(t *testing.T) {
	dep := NewDeployment(WithSeed(23), WithDurableStore(t.TempDir()), WithPlacement(
		placement.ByField("context", "vault", "s0"),
	))
	s0 := dep.AddSite("s0", "s0.net")
	s1 := dep.AddSite("s1", "s1.net")
	obj, err := s0.Space().Put("ada", SharedSchemaName, map[string]string{
		"title": "secret plan", "context": "vault",
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if s1.Space().Len() != 0 {
		t.Fatal("vault leaked to s1")
	}

	// Holder up: the read-through serves.
	if err := dep.Do(func() error {
		o, err := s1.Env().Get("ada", obj.ID)
		if err != nil {
			return err
		}
		if o.Fields["title"] != "secret plan" {
			return fmt.Errorf("bad read: %v", o.Fields)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// Sole holder down: the read fails with a useful error.
	s0.Crash()
	readErr := dep.Do(func() error {
		_, err := s1.Env().Get("ada", obj.ID)
		return err
	})
	if readErr == nil {
		t.Fatal("read through a dead sole holder succeeded")
	}
	if !errors.Is(readErr, placement.ErrNoHolder) {
		t.Fatalf("err = %v, want ErrNoHolder", readErr)
	}
	if !strings.Contains(readErr.Error(), "no reachable holder") {
		t.Fatalf("unhelpful error: %v", readErr)
	}

	// The holder comes back; reads recover.
	if err := s0.Restart(); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if err := dep.Do(func() error {
		_, err := s1.Env().Get("ada", obj.ID)
		return err
	}); err != nil {
		t.Fatalf("read after holder restart: %v", err)
	}
}
