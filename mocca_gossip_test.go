package mocca

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/vclock"
)

// gossipDeployment builds an n-site deployment on the epidemic overlay
// and drains the join/stabilization traffic.
func gossipDeployment(tb testing.TB, n int, opts ...Option) (*Deployment, []*Site) {
	tb.Helper()
	dep := NewDeployment(append([]Option{WithSeed(7), WithGossip()}, opts...)...)
	sites := make([]*Site, n)
	for i := range sites {
		name := fmt.Sprintf("s%03d", i)
		sites[i] = dep.AddSite(name, name+".org")
	}
	dep.Run()
	return dep, sites
}

// assertAllConverged requires every site's replica to be digest- and
// Merkle-root-identical to the first site's.
func assertAllConverged(tb testing.TB, sites []*Site) {
	tb.Helper()
	ref := sites[0].Space()
	refRoot := ref.Tree().Root()
	refDigest := ref.Digest()
	for _, s := range sites[1:] {
		if root := s.Space().Tree().Root(); root != refRoot {
			tb.Fatalf("site %s Merkle root %x diverges from %s's %x",
				s.Name, root, sites[0].Name, refRoot)
		}
		digest := s.Space().Digest()
		if len(digest) != len(refDigest) {
			tb.Fatalf("site %s holds %d rows, %s holds %d",
				s.Name, len(digest), sites[0].Name, len(refDigest))
		}
		for id, vv := range refDigest {
			if got, ok := digest[id]; !ok || got.Compare(vv) != vclock.Equal {
				tb.Fatalf("site %s digest for %s = %v, want %v", s.Name, id, got, vv)
			}
		}
	}
}

// TestGossipConvergence is the overlay's basic contract: a deployment
// built WithGossip converges writes from any site to every site, with
// per-site peer sets far below the mesh's n-1.
func TestGossipConvergence(t *testing.T) {
	dep, sites := gossipDeployment(t, 12)

	// Every overlay found an active view; no replicator peers full mesh.
	for _, s := range sites {
		st := s.Overlay().Stats()
		if st.ActiveSize == 0 {
			t.Fatalf("site %s has an empty active view", s.Name)
		}
		if peers := len(s.Replicator().Peers()); peers >= len(sites)-1 {
			t.Fatalf("site %s peers %d replicators — that is the mesh, not an overlay", s.Name, peers)
		}
	}

	// Writes at scattered sites reach everyone.
	for i, w := range []int{0, 5, 11} {
		if _, err := sites[w].Space().Put("user", SharedSchemaName,
			map[string]string{"title": fmt.Sprintf("doc-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	dep.Run()
	assertAllConverged(t, sites)

	// Rumors did the early spreading: at least one site pulled a row via
	// a rumor fetch rather than waiting for anti-entropy.
	fetched := int64(0)
	for _, s := range sites {
		fetched += s.Overlay().Stats().RumorApplied
	}
	if fetched == 0 {
		t.Fatal("no site applied a rumor-fetched row; rumor mongering is dead")
	}

	if err := dep.ReconcileChannels(); err != nil {
		t.Fatalf("gossip traffic bypassed the channel stack: %v", err)
	}
}

// TestGossipLateJoinPullsState: a site joining an established overlay
// deployment pulls the existing rows through its first view peers.
func TestGossipLateJoinPullsState(t *testing.T) {
	dep, sites := gossipDeployment(t, 6)
	if _, err := sites[2].Space().Put("user", SharedSchemaName,
		map[string]string{"title": "before-join"}); err != nil {
		t.Fatal(err)
	}
	dep.Run()

	late := dep.AddSite("zlate", "zlate.org")
	dep.Run()
	assertAllConverged(t, append(sites, late))
	if late.Space().Len() == 0 {
		t.Fatal("late joiner pulled nothing")
	}
}

// TestGossipCrashRestart: a crashed site leaves the advertised
// membership (its offer is withdrawn, peers demote it); after Restart it
// rejoins the overlay and pulls what it missed.
func TestGossipCrashRestart(t *testing.T) {
	dep, sites := gossipDeployment(t, 8)
	victim := sites[3]
	victim.Crash()
	dep.Run()

	if _, err := sites[0].Space().Put("user", SharedSchemaName,
		map[string]string{"title": "while-down"}); err != nil {
		t.Fatal(err)
	}
	dep.Run()

	if err := victim.Restart(); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	assertAllConverged(t, sites)
}

// TestGossipPartitionReconvergence is the partition-under-gossip
// acceptance scenario: a seeded netsim schedule partitions a random 20%
// of sites away mid-rumor, both sides keep writing, and after Heal every
// site's digest and Merkle root are byte-identical again.
func TestGossipPartitionReconvergence(t *testing.T) {
	const n = 20
	dep, sites := gossipDeployment(t, n)

	// A write whose rumor is still in flight when the partition lands.
	if _, err := sites[0].Space().Put("user", SharedSchemaName,
		map[string]string{"title": "mid-rumor"}); err != nil {
		t.Fatal(err)
	}
	dep.Advance(10 * time.Millisecond) // rumor frames are on the wire now

	// Seeded choice of the minority 20%.
	rng := rand.New(rand.NewSource(1992))
	minority := map[int]bool{}
	for len(minority) < n/5 {
		minority[rng.Intn(n)] = true
	}
	var minorityAddrs, majorityAddrs []netsim.Address
	var minoritySites, majoritySites []*Site
	for i, s := range sites {
		addrs := []netsim.Address{
			netsim.Address("mta-" + s.Name), netsim.Address("repl-" + s.Name),
			netsim.Address("place-" + s.Name), netsim.Address("gossip-" + s.Name),
		}
		if minority[i] {
			minorityAddrs = append(minorityAddrs, addrs...)
			minoritySites = append(minoritySites, s)
		} else {
			majorityAddrs = append(majorityAddrs, addrs...)
			majoritySites = append(majoritySites, s)
		}
	}
	dep.Network().Partition(minorityAddrs, majorityAddrs)

	// Writes on both sides of the cut.
	minObj, err := minoritySites[0].Space().Put("user", SharedSchemaName,
		map[string]string{"title": "minority-side"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := majoritySites[0].Space().Put("user", SharedSchemaName,
		map[string]string{"title": "majority-side"}); err != nil {
		t.Fatal(err)
	}
	// Draining under the partition must terminate (overlay failure caps)
	// and each side must converge internally.
	dep.Run()
	assertAllConverged(t, minoritySites)
	assertAllConverged(t, majoritySites)

	// The cut held: the minority write did not reach the majority.
	if _, leaked := majoritySites[0].Space().Fetch(minObj.ID); leaked {
		t.Fatalf("minority write %s crossed the partition", minObj.ID)
	}

	dep.Network().Heal()
	dep.Run()
	assertAllConverged(t, sites)

	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
}
