// moccalint is the project's static-analysis multichecker: five
// analyzers that mechanically enforce invariants this codebase has
// already paid to learn (see internal/analysis). Run it from the module
// root:
//
//	go run ./cmd/moccalint ./...
//
// Findings print as file:line:col: analyzer: message and make the run
// exit nonzero. A finding can be suppressed — one at a time, with a
// written justification — by a pragma on the flagged line or the line
// above:
//
//	//lint:allow <analyzer> <reason>
//
// Stale pragmas (unknown analyzer, missing reason, or suppressing
// nothing) are themselves findings, so allowances cannot outlive the
// code they excused.
package main

import (
	"flag"
	"fmt"
	"os"

	"mocca/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: moccalint [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.Suite() {
			fmt.Fprintf(os.Stderr, "  %-13s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(".", patterns, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "moccalint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "moccalint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
