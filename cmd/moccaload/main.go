// Command moccaload runs one workload scenario against a simulated
// deployment and prints the run report: per-class latency histograms,
// per-service throughput, the fault log, and the run fingerprint.
//
// Every run is byte-reproducible from its seed:
//
//	moccaload -sites 32 -users 10000 -duration 2m -crashes 3 -partitions 2
//	moccaload -topology gossip -sites 64 -seed 7
//	moccaload -durable -torn 1 -crashes 2 -json
//
// With -trace the run records causal spans across every rpc hop and
// writes them as Chrome trace-event JSON (chrome://tracing, perfetto);
// -metrics dumps the final metric families as Prometheus-style text:
//
//	moccaload -sites 4 -duration 20s -trace trace.json -metrics -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mocca/internal/observe"
	"mocca/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		seed       = flag.Int64("seed", 1992, "run seed; same seed, same run, byte for byte")
		sites      = flag.Int("sites", 8, "number of sites")
		users      = flag.Int("users", 0, "number of users (default 40 per site)")
		objects    = flag.Int("objects", 0, "shared-object pool size (default users/2)")
		duration   = flag.Duration("duration", time.Minute, "traffic window (simulated)")
		rate       = flag.Float64("rate", 60, "mean ops per user per hour")
		topology   = flag.String("topology", "mesh", "mesh | gossip")
		durable    = flag.Bool("durable", false, "back sites with a durable logstore (temp dir)")
		crashes    = flag.Int("crashes", 0, "crash/restart faults to schedule")
		partitions = flag.Int("partitions", 0, "partition/heal faults to schedule")
		slowlinks  = flag.Int("slowlinks", 0, "slow-link faults to schedule")
		torn       = flag.Int("torn", 0, "crashes that also tear the WAL tail (implies -durable)")
		asJSON     = flag.Bool("json", false, "emit the full report as JSON")
		traceOut   = flag.String("trace", "", "write the run's spans as Chrome trace-event JSON to this file")
		metricsOut = flag.String("metrics", "", `dump final metrics as Prometheus text to this file ("-" for stdout)`)
	)
	flag.Parse()

	spec := workload.Spec{
		Seed:           *seed,
		Sites:          *sites,
		Users:          *users,
		Objects:        *objects,
		Duration:       *duration,
		OpsPerUserHour: *rate,
		Topology:       *topology,
	}
	if *crashes+*partitions+*slowlinks+*torn > 0 {
		spec.Chaos = &workload.ChaosSpec{
			Crashes:    *crashes,
			Partitions: *partitions,
			SlowLinks:  *slowlinks,
			TornTails:  *torn,
		}
	}
	if *durable || *torn > 0 {
		dir, err := os.MkdirTemp("", "moccaload-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, "moccaload:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		spec.StoreDir = dir
	}

	var (
		rep *workload.Report
		tel *observe.Telemetry
		err error
	)
	if *traceOut != "" || *metricsOut != "" {
		rep, tel, err = workload.RunTrace(spec)
	} else {
		rep, err = workload.Run(spec)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "moccaload:", err)
		return 1
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(w io.Writer) error {
			return observe.WriteChromeTrace(w, tel.Tracer.Spans())
		}); err != nil {
			fmt.Fprintln(os.Stderr, "moccaload:", err)
			return 1
		}
	}
	if *metricsOut != "" {
		if err := writeFile(*metricsOut, tel.Metrics.Snapshot().WriteText); err != nil {
			fmt.Fprintln(os.Stderr, "moccaload:", err)
			return 1
		}
	}
	if *asJSON {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "moccaload:", err)
			return 1
		}
		fmt.Println(string(blob))
	} else {
		fmt.Println(rep.Summary())
	}
	if !rep.Converged {
		return 2
	}
	return 0
}

// writeFile streams fn's output to path, with "-" meaning stdout.
func writeFile(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
