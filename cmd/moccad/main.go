// Command moccad runs a full simulated open-CSCW deployment — three
// organisations, all four groupware quadrants, org/activity/expertise
// models populated, a tailoring rule installed — and prints the resulting
// environment report with the §6 ODP conformance table.
package main

import (
	"fmt"
	"log"

	"mocca"
	"mocca/internal/expertise"
	"mocca/internal/org"
	"mocca/internal/policy"
)

func main() {
	dep := mocca.NewDeployment(mocca.WithSeed(1992))
	env := dep.Env()

	// Sites and users.
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")
	lancs := dep.AddSite("lancs", "lancs.uk")
	prinz := gmd.AddUser("prinz")
	navarro := upc.AddUser("navarro")
	rodden := lancs.AddUser("rodden")

	// Organisational model.
	kb := env.Org()
	for _, o := range []org.Object{
		{ID: "gmd", Kind: org.KindOrg, Name: "GMD"},
		{ID: "upc", Kind: org.KindOrg, Name: "UPC"},
		{ID: "lancs", Kind: org.KindOrg, Name: "Lancaster"},
		{ID: "prinz", Kind: org.KindPerson, Name: "Wolfgang Prinz", Org: "gmd"},
		{ID: "navarro", Kind: org.KindPerson, Name: "Leandro Navarro", Org: "upc"},
		{ID: "rodden", Kind: org.KindPerson, Name: "Tom Rodden", Org: "lancs"},
		{ID: "mocca-lead", Kind: org.KindRole, Name: "MOCCA project lead", Org: "gmd"},
	} {
		if err := kb.AddObject(o); err != nil {
			log.Fatal(err)
		}
	}
	must(kb.Relate("prinz", org.RelFills, "mocca-lead"))
	for _, o := range []string{"gmd", "upc", "lancs"} {
		kb.SetPolicy(o, "data-sharing", "open")
	}
	must(env.SyncOrgToDirectory())
	env.Expertise().SetCapability("prinz", "group-communication", expertise.LevelExpert)
	env.ImportExpertise()

	// Groupware across the matrix.
	for _, app := range []mocca.Application{
		{Name: "meeting-room", Quadrant: "same-time/same-place"},
		{Name: "desktop-conference", Quadrant: "same-time/different-place"},
		{Name: "team-room", Quadrant: "different-time/same-place"},
		{Name: "message-system", Quadrant: "different-time/different-place"},
	} {
		must(env.RegisterApplication(app))
	}

	// An activity with a deadline.
	act, err := env.Activities().Create("prinz", "write ICDCS paper", "camera-ready")
	must(err)
	must(env.Activities().Join(act.ID, "navarro", "author"))
	must(env.Activities().Join(act.ID, "rodden", "author"))

	// User-level tailoring: notify on every info put.
	env.Policies().RegisterAction("log", func(ev policy.Event, args map[string]string) error {
		fmt.Printf("  [rule fired] %s object=%s\n", ev.Kind, ev.Attr("object"))
		return nil
	}, true)
	if _, err := env.Policies().InstallRuleText(
		"rule log-puts; on info.put; do log", policy.LevelUser); err != nil {
		log.Fatal(err)
	}

	// Exercise the deployment: mail + shared object.
	fmt.Println("running simulated deployment…")
	if _, err := prinz.Send([]mocca.ORName{navarro.Name, rodden.Name},
		"MOCCA models", "drafts of all five models attached"); err != nil {
		log.Fatal(err)
	}
	if _, err := env.Space().Put("prinz", mocca.SharedSchemaName,
		map[string]string{"title": "five models", "author": "prinz"}); err != nil {
		log.Fatal(err)
	}
	dep.Run()

	fmt.Printf("mail delivered: navarro=%d rodden=%d\n\n", navarro.Unread(), rodden.Unread())

	// Environment report.
	rep := env.Snapshot()
	fmt.Println("=== environment report ===")
	fmt.Printf("applications : %v\n", rep.Applications)
	fmt.Printf("quadrants    : %v\n", rep.Quadrants)
	fmt.Printf("schemas      : %v\n", rep.Schemas)
	fmt.Printf("info objects : %d\n", rep.Objects)
	fmt.Printf("activities   : %d\n", rep.Activities)
	fmt.Printf("org objects  : %d\n", rep.OrgObjects)

	fmt.Println("\n=== §6 conformance: requirement -> viewpoint -> function ===")
	for _, r := range env.Conformance().All() {
		fmt.Printf("%-32s %-12s %s\n", r.Name, r.Viewpoint, r.Function)
	}

	st := dep.Network().Stats()
	fmt.Printf("\nnetwork: %d sent, %d delivered, %d bytes\n", st.Sent, st.Delivered, st.Bytes)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
