// Command moccad runs a full simulated open-CSCW deployment — three
// organisations, all four groupware quadrants, org/activity/expertise
// models populated, a tailoring rule installed — and prints the resulting
// environment report with the §6 ODP conformance table.
//
// With -telemetry the run records causal traces and metrics; -trace
// writes the span timeline as Chrome trace-event JSON, and -metrics
// serves the final snapshot as Prometheus-style text at
// http://<addr>/metrics until interrupted:
//
//	moccad -telemetry -trace trace.json
//	moccad -metrics localhost:9092   # curl localhost:9092/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"mocca"
	"mocca/internal/expertise"
	"mocca/internal/org"
	"mocca/internal/policy"
)

func main() {
	var (
		telemetry   = flag.Bool("telemetry", false, "enable the tracing + metrics plane")
		traceOut    = flag.String("trace", "", "write spans as Chrome trace-event JSON (implies -telemetry)")
		metricsAddr = flag.String("metrics", "", "serve Prometheus text at http://addr/metrics after the run (implies -telemetry)")
	)
	flag.Parse()

	depOpts := []mocca.Option{mocca.WithSeed(1992)}
	if *telemetry || *traceOut != "" || *metricsAddr != "" {
		depOpts = append(depOpts, mocca.WithTelemetry())
	}
	dep := mocca.NewDeployment(depOpts...)
	env := dep.Env()

	// Sites and users.
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")
	lancs := dep.AddSite("lancs", "lancs.uk")
	prinz := gmd.AddUser("prinz")
	navarro := upc.AddUser("navarro")
	rodden := lancs.AddUser("rodden")

	// Organisational model.
	kb := env.Org()
	for _, o := range []org.Object{
		{ID: "gmd", Kind: org.KindOrg, Name: "GMD"},
		{ID: "upc", Kind: org.KindOrg, Name: "UPC"},
		{ID: "lancs", Kind: org.KindOrg, Name: "Lancaster"},
		{ID: "prinz", Kind: org.KindPerson, Name: "Wolfgang Prinz", Org: "gmd"},
		{ID: "navarro", Kind: org.KindPerson, Name: "Leandro Navarro", Org: "upc"},
		{ID: "rodden", Kind: org.KindPerson, Name: "Tom Rodden", Org: "lancs"},
		{ID: "mocca-lead", Kind: org.KindRole, Name: "MOCCA project lead", Org: "gmd"},
	} {
		if err := kb.AddObject(o); err != nil {
			log.Fatal(err)
		}
	}
	must(kb.Relate("prinz", org.RelFills, "mocca-lead"))
	for _, o := range []string{"gmd", "upc", "lancs"} {
		kb.SetPolicy(o, "data-sharing", "open")
	}
	must(env.SyncOrgToDirectory())
	env.Expertise().SetCapability("prinz", "group-communication", expertise.LevelExpert)
	env.ImportExpertise()

	// Groupware across the matrix.
	for _, app := range []mocca.Application{
		{Name: "meeting-room", Quadrant: "same-time/same-place"},
		{Name: "desktop-conference", Quadrant: "same-time/different-place"},
		{Name: "team-room", Quadrant: "different-time/same-place"},
		{Name: "message-system", Quadrant: "different-time/different-place"},
	} {
		must(env.RegisterApplication(app))
	}

	// An activity with a deadline.
	act, err := env.Activities().Create("prinz", "write ICDCS paper", "camera-ready")
	must(err)
	must(env.Activities().Join(act.ID, "navarro", "author"))
	must(env.Activities().Join(act.ID, "rodden", "author"))

	// User-level tailoring: notify on every info put.
	env.Policies().RegisterAction("log", func(ev policy.Event, args map[string]string) error {
		fmt.Printf("  [rule fired] %s object=%s\n", ev.Kind, ev.Attr("object"))
		return nil
	}, true)
	if _, err := env.Policies().InstallRuleText(
		"rule log-puts; on info.put; do log", policy.LevelUser); err != nil {
		log.Fatal(err)
	}

	// Exercise the deployment: mail + shared object.
	fmt.Println("running simulated deployment…")
	if _, err := prinz.Send([]mocca.ORName{navarro.Name, rodden.Name},
		"MOCCA models", "drafts of all five models attached"); err != nil {
		log.Fatal(err)
	}
	if _, err := env.Space().Put("prinz", mocca.SharedSchemaName,
		map[string]string{"title": "five models", "author": "prinz"}); err != nil {
		log.Fatal(err)
	}
	dep.Run()

	fmt.Printf("mail delivered: navarro=%d rodden=%d\n\n", navarro.Unread(), rodden.Unread())

	// Environment report.
	rep := env.Snapshot()
	fmt.Println("=== environment report ===")
	fmt.Printf("applications : %v\n", rep.Applications)
	fmt.Printf("quadrants    : %v\n", rep.Quadrants)
	fmt.Printf("schemas      : %v\n", rep.Schemas)
	fmt.Printf("info objects : %d\n", rep.Objects)
	fmt.Printf("activities   : %d\n", rep.Activities)
	fmt.Printf("org objects  : %d\n", rep.OrgObjects)

	fmt.Println("\n=== §6 conformance: requirement -> viewpoint -> function ===")
	for _, r := range env.Conformance().All() {
		fmt.Printf("%-32s %-12s %s\n", r.Name, r.Viewpoint, r.Function)
	}

	st := dep.Network().Stats()
	fmt.Printf("\nnetwork: %d sent, %d delivered, %d bytes\n", st.Sent, st.Delivered, st.Bytes)

	if tel := dep.Telemetry(); tel != nil {
		tc := tel.Tracer.Counts()
		fmt.Printf("telemetry: %d traces, %d spans (%d retained), %d slow\n",
			tc.Traces, tc.Spans, tc.Retained, tc.SlowSpans)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := dep.WriteTrace(f); err != nil {
			log.Fatal(err)
		}
		must(f.Close())
		fmt.Printf("trace written to %s (load at chrome://tracing)\n", *traceOut)
	}
	if *metricsAddr != "" {
		// The deployment is quiescent here, so the snapshot per request is
		// cheap and stable; collectors re-read the live Stats either way.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := dep.Metrics().Snapshot().WriteText(w); err != nil {
				log.Print(err)
			}
		})
		fmt.Printf("serving metrics at http://%s/metrics (ctrl-c to exit)\n", *metricsAddr)
		log.Fatal(http.ListenAndServe(*metricsAddr, nil))
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
