// Command benchjson converts `go test -bench` text output into a compact
// JSON perf-trajectory artifact: one record per benchmark with ns/op,
// allocs/op and every custom metric the harness reported (digestB/op,
// fsyncs/op, segprobes/op, ms/recovery, ...), plus a pivoted recovery_ms
// table keyed by recovery mode and store size. CI runs it over the
// benchmark log so each PR leaves a machine-readable point on the
// repository's performance trajectory.
//
//	go test -run='^$' -bench=. -benchtime=1x ./... | tee bench.txt
//	go run ./cmd/benchjson -o BENCH_pr6.json bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// entry is one benchmark line. Core metrics get stable top-level keys;
// everything else lands in Metrics under its literal unit name.
type entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_op,omitempty"`
	AllocsOp   float64            `json:"allocs_op,omitempty"`
	BytesOp    float64            `json:"bytes_op,omitempty"`
	DigestBOp  float64            `json:"digestB_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type artifact struct {
	Benchmarks []entry `json:"benchmarks"`
	// RecoveryMs pivots BenchmarkRecovery's ms/recovery metric:
	// "wal/objects=1000000" -> milliseconds per Open.
	RecoveryMs map[string]float64 `json:"recovery_ms,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	art := artifact{RecoveryMs: make(map[string]float64)}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		e, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		art.Benchmarks = append(art.Benchmarks, e)
		if rest, found := strings.CutPrefix(e.Name, "BenchmarkRecovery/"); found {
			if ms, has := e.Metrics["ms/recovery"]; has {
				art.RecoveryMs[trimProcSuffix(rest)] = ms
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(art.Benchmarks) == 0 {
		log.Fatal("benchjson: no benchmark lines in input")
	}
	if len(art.RecoveryMs) == 0 {
		art.RecoveryMs = nil
	}

	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(art.Benchmarks), *out)
}

// parseLine decodes one `go test -bench` result line:
//
//	BenchmarkName/sub-8   100   9925 ns/op   12 B/op   3 allocs/op   0.85 ms/recovery
//
// The name, the iteration count, then (value, unit) pairs.
func parseLine(line string) (entry, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	e := entry{Name: trimProcSuffix(f[0]), Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return entry{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "allocs/op":
			e.AllocsOp = v
		case "B/op":
			e.BytesOp = v
		case "digestB/op":
			e.DigestBOp = v
		default:
			e.Metrics[unit] = v
		}
	}
	if len(e.Metrics) == 0 {
		e.Metrics = nil
	}
	return e, true
}

// trimProcSuffix drops the trailing -N GOMAXPROCS marker go test appends
// to benchmark names, so artifact keys are stable across runner shapes.
func trimProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
