// Command figures regenerates the data behind every figure of the paper as
// text tables (the position paper has no numeric tables; these quantify
// each figure's claim). See EXPERIMENTS.md for interpretation.
package main

import (
	"fmt"
	"log"
	"time"

	"mocca"
	"mocca/internal/interop"
	"mocca/internal/odp"
	"mocca/internal/trader"
	"mocca/internal/transparency"
)

func main() {
	figure1()
	figure2and3()
	figure4()
	ablation()
}

// figure1 demonstrates one environment hosting all four quadrants.
func figure1() {
	fmt.Println("== Figure 1: the groupware time-space matrix ==")
	fmt.Println("one environment instance, one application per quadrant")
	fmt.Println()

	dep := mocca.NewDeployment(mocca.WithSeed(1))
	env := dep.Env()

	quadrants := []struct{ name, quadrant string }{
		{"meeting-room", "same-time/same-place"},
		{"desktop-conference", "same-time/different-place"},
		{"team-room", "different-time/same-place"},
		{"message-system", "different-time/different-place"},
	}
	for _, q := range quadrants {
		if err := env.RegisterApplication(mocca.Application{Name: q.name, Quadrant: q.quadrant}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-22s %-32s\n", "application", "quadrant")
	for _, q := range quadrants {
		fmt.Printf("%-22s %-32s\n", q.name, q.quadrant)
	}
	fmt.Printf("quadrants covered by one environment: %d/4\n\n", len(env.Quadrants()))
}

// figure2and3 prints the adapter-count and success-rate comparison.
func figure2and3() {
	fmt.Println("== Figures 2 & 3: isolated vs environment-mediated interop ==")
	fmt.Printf("%-6s %-18s %-18s %-18s %-18s\n",
		"apps", "fig2 adapters", "fig3 converters", "fig2 success", "fig3 success")
	for _, n := range []int{2, 4, 8, 16} {
		cmp, err := interop.Compare(n, 1.0, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-18d %-18d %-18.2f %-18.2f\n",
			cmp.Apps, cmp.IsolatedAdapters, cmp.EnvironmentAdapters,
			cmp.IsolatedSuccess, cmp.EnvironmentSuccess)
	}
	fmt.Println()
	fmt.Println("with only 50% of pairwise adapters written (realistic figure-2 effort):")
	fmt.Printf("%-6s %-18s %-18s %-18s %-18s\n",
		"apps", "fig2 adapters", "fig3 converters", "fig2 success", "fig3 success")
	for _, n := range []int{4, 8, 16} {
		cmp, err := interop.Compare(n, 0.5, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-18d %-18d %-18.2f %-18.2f\n",
			cmp.Apps, cmp.IsolatedAdapters, cmp.EnvironmentAdapters,
			cmp.IsolatedSuccess, cmp.EnvironmentSuccess)
	}
	fmt.Println()
}

// figure4 measures the layering overhead in simulated time.
func figure4() {
	fmt.Println("== Figure 4: CSCW environment layered on the ODP environment ==")
	fmt.Println("simulated end-to-end latency of one interaction (20ms links)")
	fmt.Println()

	run := func(name string, viaEnv bool) {
		dep := mocca.NewDeployment(mocca.WithSeed(1))
		if err := dep.RegisterTradingService("echo", "o1", "mcu", nil); err != nil {
			log.Fatal(err)
		}
		start := dep.Clock().Now()
		if viaEnv {
			// Environment path: transparency check + trader lookup + the
			// same conference-server interaction.
			sel := dep.Env().Transparency()
			if !sel.For("client").Has(odp.Time) {
				log.Fatal("transparency missing")
			}
			if _, err := dep.Env().Trader().Import(trader.ImportRequest{
				ServiceType: "echo", Importer: "client",
			}); err != nil {
				log.Fatal(err)
			}
		}
		cid, err := dep.Conferencing().CreateConference("f4", mocca.ConferenceOpen)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := dep.JoinConference(cid, "client")
		if err != nil {
			log.Fatal(err)
		}
		if err := dep.Do(func() error { return sess.Set("k", "v") }); err != nil {
			log.Fatal(err)
		}
		dep.Run()
		elapsed := dep.Clock().Now().Sub(start)
		fmt.Printf("%-28s %v simulated\n", name, elapsed.Round(time.Millisecond))
	}
	run("raw ODP interaction", false)
	run("via CSCW environment", true)
	fmt.Println("(the CSCW environment adds local checks only: same wire latency)")
	fmt.Println()
}

// ablation shows temporal transparency on/off.
func ablation() {
	fmt.Println("== Ablation A1: temporal transparency bridge ==")
	sel := transparency.NewSelector()
	router := func() *transparency.TimeRouter {
		return &transparency.TimeRouter{
			Selector: sel,
			Presence: func(string) bool { return false },
			Sync:     func(string, any) error { return nil },
			Async:    func(string, any) error { return nil },
		}
	}
	if mode, err := router().Route("a", "offline-user", "x"); err == nil {
		fmt.Printf("bridge on:  delivery to offline user -> %s\n", mode)
	}
	sel.Set("a", 0)
	if _, err := router().Route("a", "offline-user", "x"); err != nil {
		fmt.Printf("bridge off: delivery to offline user -> error (%v)\n", err)
	}
}
