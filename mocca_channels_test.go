package mocca

import (
	"testing"

	"mocca/internal/netsim"
)

// TestChannelStatsSurfaceAndReconcile drives mail and conference traffic
// through a deployment and checks that (a) the engineering fabric saw every
// channel the deployment opened, (b) per-channel stats are surfaced through
// the Deployment API, and (c) the fabric's totals reconcile exactly with
// the network's own counters — i.e. no traffic bypassed the channel stack.
func TestChannelStatsSurfaceAndReconcile(t *testing.T) {
	dep := NewDeployment(WithSeed(3))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")
	prinz := gmd.AddUser("prinz")
	navarro := upc.AddUser("navarro")

	if _, err := prinz.Send([]ORName{navarro.Name}, "channels", "everywhere"); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if navarro.Unread() != 1 {
		t.Fatalf("mail not delivered: unread = %d", navarro.Unread())
	}

	cid, err := dep.Conferencing().CreateConference("standup", ConferenceOpen)
	if err != nil {
		t.Fatal(err)
	}
	ada, err := dep.JoinConference(cid, "ada")
	if err != nil {
		t.Fatal(err)
	}
	ben, err := dep.JoinConference(cid, "ben")
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Do(func() error { return ada.Set("topic", "odp") }); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if ben.Get("topic") != "odp" {
		t.Fatalf("conference replica = %q", ben.Get("topic"))
	}

	stats := dep.ChannelStats()
	if len(stats) == 0 {
		t.Fatal("no channels recorded")
	}
	// The MTA hop gmd→upc must appear as a live channel with traffic.
	var sawRelay bool
	for _, c := range stats {
		if c.Local == "mta-gmd" && c.Remote == "mta-upc" && c.FramesOut > 0 && c.BytesOut > 0 {
			sawRelay = true
		}
	}
	if !sawRelay {
		t.Fatalf("mta-gmd→mta-upc channel missing from %+v", stats)
	}

	// Engineering bookkeeping agrees exactly with the network counters.
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
	ns := dep.Network().Stats()
	if totals := dep.Fabric().Totals(); totals.FramesOut != ns.Sent {
		t.Fatalf("fabric frames out %d, network sent %d", totals.FramesOut, ns.Sent)
	}

	// Rejoining a user reuses the cached endpoint rather than stealing the
	// node's channel stack, and detaches the superseded session so its
	// callbacks stop firing.
	if err := dep.Do(ada.Leave); err != nil {
		t.Fatal(err)
	}
	again, err := dep.JoinConference(cid, "ada")
	if err != nil {
		t.Fatal(err)
	}
	if again.Seq() == 0 {
		t.Fatal("rejoined session got no snapshot")
	}
	oldSeq := ada.Seq()
	if err := dep.Do(func() error { return ben.Set("topic", "post-supersede") }); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if again.Get("topic") != "post-supersede" {
		t.Fatalf("new session replica = %q", again.Get("topic"))
	}
	if ada.Seq() != oldSeq {
		t.Fatal("superseded session still applying events")
	}
	if _, ok := dep.Network().Node(netsim.Address("user-ada")); !ok {
		t.Fatal("user node vanished")
	}
	if err := dep.ReconcileChannels(); err != nil {
		t.Fatalf("reconcile after rejoin: %v", err)
	}
}
