package mocca

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"mocca/internal/observe"
	"mocca/internal/placement"
)

// TestTraceLinksWriteAcrossSites is the telemetry plane's acceptance
// test: one trace id follows a write from a non-placed site through the
// placement forward rpc, the holder's WAL commit, and the anti-entropy
// delivery at a second placed site — with every span parented onto the
// hop that caused it.
func TestTraceLinksWriteAcrossSites(t *testing.T) {
	dep := NewDeployment(
		WithSeed(29),
		WithTelemetry(),
		WithDurableStore(t.TempDir()),
		WithPlacement(placement.ByField("context", "vault", "s0", "s2")),
	)
	s0 := dep.AddSite("s0", "s0.net")
	s1 := dep.AddSite("s1", "s1.net")
	s2 := dep.AddSite("s2", "s2.net")

	// The write lands at s1, which the policy does not place for the
	// space: it must forward to a placed holder and keep no copy.
	obj, err := s1.Space().Put("ada", SharedSchemaName, map[string]string{
		"title": "routed secret", "context": "vault",
	})
	if err != nil {
		t.Fatal(err)
	}
	dep.Run()

	if n := s1.Space().Len(); n != 0 {
		t.Fatalf("writer site still holds %d foreign rows", n)
	}
	for _, s := range []*Site{s0, s2} {
		if _, err := s.Space().Get("ada", obj.ID); err != nil {
			t.Fatalf("holder %s missing the object: %v", s.Name, err)
		}
	}

	// Find the root: the write:put span at s1 for this object.
	spans := dep.Traces()
	byName := func(name, site string) *observe.Span {
		for i := range spans {
			if spans[i].Name == name && (site == "" || spans[i].Site == site) {
				return &spans[i]
			}
		}
		return nil
	}
	root := byName("write:put", "s1")
	if root == nil {
		t.Fatalf("no write root span; spans: %v", spanNames(spans))
	}
	trace := root.TraceID

	// Every hop of the chain is in the same trace.
	forward := byName("placement.forward", "s1")
	call := byName("rpc.call:"+placement.MethodWrite, "")
	serve := byName("rpc.serve:"+placement.MethodWrite, "")
	commit := byName("wal.commit", "s0")
	apply := byName("sync.apply", "s2")
	for _, tc := range []struct {
		what string
		sp   *observe.Span
	}{
		{"placement.forward", forward},
		{"rpc.call", call},
		{"rpc.serve", serve},
		{"wal.commit@s0", commit},
		{"sync.apply@s2", apply},
	} {
		if tc.sp == nil {
			t.Fatalf("missing %s span; spans: %v", tc.what, spanNames(spans))
		}
		if tc.sp.TraceID != trace {
			t.Fatalf("%s span in trace %x, want %x", tc.what, tc.sp.TraceID, trace)
		}
	}

	// And the parenting mirrors causality: put → forward → call → serve,
	// with the holder-side WAL commit and the second site's apply both
	// children of the serve span that carried the object in.
	if forward.Parent != root.SpanID {
		t.Fatalf("forward parent = %x, want write root %x", forward.Parent, root.SpanID)
	}
	if call.Parent != forward.SpanID {
		t.Fatalf("call parent = %x, want forward %x", call.Parent, forward.SpanID)
	}
	if serve.Parent != call.SpanID {
		t.Fatalf("serve parent = %x, want call %x", serve.Parent, call.SpanID)
	}
	if commit.Parent != serve.SpanID {
		t.Fatalf("wal.commit parent = %x, want serve %x", commit.Parent, serve.SpanID)
	}
	if apply.Parent != serve.SpanID {
		t.Fatalf("sync.apply parent = %x, want serve %x", apply.Parent, serve.SpanID)
	}

	// The Chrome export of the run is a single valid JSON object with
	// one complete event per span.
	var buf bytes.Buffer
	if err := dep.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	complete := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			complete++
		}
	}
	if complete != len(spans) {
		t.Fatalf("chrome export has %d complete events for %d spans", complete, len(spans))
	}
}

// TestTelemetryMetricsProjectSubsystemStats: the adapter collectors
// surface the run's existing counters under stable dotted names, and
// the registry's text exposition carries them.
func TestTelemetryMetricsProjectSubsystemStats(t *testing.T) {
	dep := NewDeployment(WithSeed(7), WithTelemetry(), WithDurableStore(t.TempDir()))
	s0 := dep.AddSite("s0", "s0.net")
	dep.AddSite("s1", "s1.net")
	if _, err := s0.Space().Put("ada", SharedSchemaName, map[string]string{"title": "x"}); err != nil {
		t.Fatal(err)
	}
	dep.Run()

	snap := dep.Metrics().Snapshot()
	if v := snap.Value("mocca.sync.rounds", observe.L("site", "s0")...); v == 0 {
		t.Fatalf("no sync rounds projected: %+v", snap.Points)
	}
	if v := snap.Value("mocca.store.appends", observe.L("site", "s0")...); v == 0 {
		t.Fatalf("no WAL appends projected")
	}
	if v := snap.Value("mocca.net.delivered"); v == 0 {
		t.Fatalf("no network counters projected")
	}
	// The projection must agree with the source snapshot — the adapter
	// reads the same counters, it does not double-count.
	if want := s0.Replicator().Stats().Rounds; snap.Value("mocca.sync.rounds", observe.L("site", "s0")...) != want {
		t.Fatalf("sync.rounds diverged from replica.Stats")
	}

	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE mocca_sync_rounds counter",
		`mocca_sync_rounds{site="s0"}`,
		"mocca_net_delivered",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestStatsSnapshotsRaceWithTraffic is the torn-read hammer (run under
// -race): every Stats surface in the deployment — replica, placement,
// store, gossip, rpc, network, fabric, tracer — is snapshotted
// concurrently with live traffic via the registry collectors, plus the
// span ring via Traces(). Lock-protected snapshots make this silent;
// any torn read trips the race detector.
func TestStatsSnapshotsRaceWithTraffic(t *testing.T) {
	dep := NewDeployment(
		WithSeed(11),
		WithTelemetry(),
		WithDurableStore(t.TempDir()),
		WithGossip(),
	)
	sites := []*Site{
		dep.AddSite("s0", "s0.net"),
		dep.AddSite("s1", "s1.net"),
		dep.AddSite("s2", "s2.net"),
	}
	dep.Run()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap := dep.Metrics().Snapshot()
				_ = snap.Value("mocca.sync.rounds", observe.L("site", "s0")...)
				_ = dep.Traces()
				_ = dep.Fabric().Totals()
				_ = dep.Network().Stats()
				for _, s := range sites {
					_ = s.Replicator().Stats()
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := sites[i%len(sites)].Space().Put("ada", SharedSchemaName,
			map[string]string{"title": "hammer " + string(rune('a'+i))}); err != nil {
			t.Fatal(err)
		}
		dep.Run()
	}
	close(done)
	wg.Wait()

	if err := dep.ReconcileChannels(); err != nil {
		t.Fatal(err)
	}
}

func spanNames(spans []observe.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Site + "/" + sp.Name
	}
	return out
}
