module mocca

go 1.24
