package mocca

import (
	"testing"

	"mocca/internal/information"
	"mocca/internal/transparency"
)

func TestDeploymentEndToEnd(t *testing.T) {
	dep := NewDeployment(WithSeed(7))
	gmd := dep.AddSite("gmd", "gmd.de")
	upc := dep.AddSite("upc", "upc.es")

	prinz := gmd.AddUser("prinz")
	navarro := upc.AddUser("navarro")

	// Cross-site asynchronous mail works out of the box.
	if _, err := prinz.Send([]ORName{navarro.Name}, "hello", "from bonn"); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if navarro.Unread() != 1 {
		t.Fatalf("navarro unread = %d", navarro.Unread())
	}

	// The communication hub routes with temporal transparency.
	mode, err := dep.Env().Hub().Send(Message{From: "prinz", To: "navarro", Subject: "via hub", Body: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if mode != transparency.ModeAsync {
		t.Fatalf("mode = %v", mode)
	}
	dep.Run()
	if navarro.Unread() != 2 {
		t.Fatalf("navarro unread after hub send = %d", navarro.Unread())
	}
}

func TestDeploymentConference(t *testing.T) {
	dep := NewDeployment()
	cid, err := dep.Conferencing().CreateConference("standup", ConferenceOpen)
	if err != nil {
		t.Fatal(err)
	}
	a, err := dep.JoinConference(cid, "ada")
	if err != nil {
		t.Fatal(err)
	}
	b, err := dep.JoinConference(cid, "ben")
	if err != nil {
		t.Fatal(err)
	}
	if err := dep.Do(func() error { return a.Set("topic", "blockers") }); err != nil {
		t.Fatal(err)
	}
	dep.Run()
	if b.Get("topic") != "blockers" {
		t.Fatalf("replica = %q", b.Get("topic"))
	}
}

func TestDeploymentAppRegistration(t *testing.T) {
	dep := NewDeployment()
	err := dep.Env().RegisterApplication(Application{
		Name:     "notes",
		Quadrant: "different-time/different-place",
		Schema: information.Schema{Name: "note", Fields: []information.Field{
			{Name: "head", Type: information.FieldText, Required: true},
		}},
		ToShared: func(in map[string]string) (map[string]string, error) {
			return map[string]string{"title": in["head"]}, nil
		},
		FromShared: func(in map[string]string) (map[string]string, error) {
			return map[string]string{"head": in["title"]}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := dep.Env().Space().Put("ada", "note", map[string]string{"head": "try odp"})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := dep.Env().Space().GetAs("ada", obj.ID, SharedSchemaName)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Fields["title"] != "try odp" {
		t.Fatalf("shared = %v", shared.Fields)
	}
}

func TestRegisterTradingService(t *testing.T) {
	dep := NewDeployment()
	if err := dep.RegisterTradingService("printing", "o1", "ps-node", map[string]string{"ppm": "10"}); err != nil {
		t.Fatal(err)
	}
	// Second offer reuses the registered type.
	if err := dep.RegisterTradingService("printing", "o2", "ps-node-2", nil); err != nil {
		t.Fatal(err)
	}
	if dep.Env().Trader().Len() != 2 {
		t.Fatalf("offers = %d", dep.Env().Trader().Len())
	}
}
