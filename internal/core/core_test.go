package core

import (
	"errors"
	"testing"

	"mocca/internal/directory"
	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/odp"
	"mocca/internal/org"
	"mocca/internal/policy"
	"mocca/internal/trader"
	"mocca/internal/transparency"
	"mocca/internal/vclock"
)

func newEnv(t *testing.T) *Environment {
	t.Helper()
	return New(vclock.NewSimulated(netsim.DefaultEpoch))
}

// editorApp and mailApp are two figure-3 applications with different
// native schemas.
func editorApp() Application {
	rename := func(m map[string]string) func(map[string]string) (map[string]string, error) {
		return func(in map[string]string) (map[string]string, error) {
			out := make(map[string]string)
			for k, v := range in {
				if nk, ok := m[k]; ok {
					out[nk] = v
				}
			}
			return out, nil
		}
	}
	return Application{
		Name:       "group-editor",
		Quadrant:   "same-time/different-place",
		Schema:     information.Schema{Name: "editor-doc", Fields: []information.Field{{Name: "heading", Type: information.FieldText, Required: true}, {Name: "text", Type: information.FieldText}, {Name: "writer", Type: information.FieldText}}},
		ToShared:   rename(map[string]string{"heading": "title", "text": "body", "writer": "author"}),
		FromShared: rename(map[string]string{"title": "heading", "body": "text", "author": "writer"}),
	}
}

func mailApp() Application {
	rename := func(m map[string]string) func(map[string]string) (map[string]string, error) {
		return func(in map[string]string) (map[string]string, error) {
			out := make(map[string]string)
			for k, v := range in {
				if nk, ok := m[k]; ok {
					out[nk] = v
				}
			}
			return out, nil
		}
	}
	return Application{
		Name:       "message-system",
		Quadrant:   "different-time/different-place",
		Schema:     information.Schema{Name: "mail-memo", Fields: []information.Field{{Name: "subject", Type: information.FieldText, Required: true}, {Name: "content", Type: information.FieldText}, {Name: "from", Type: information.FieldText}}},
		ToShared:   rename(map[string]string{"subject": "title", "content": "body", "from": "author"}),
		FromShared: rename(map[string]string{"title": "subject", "body": "content", "author": "from"}),
	}
}

func TestApplicationRegistration(t *testing.T) {
	env := newEnv(t)
	if err := env.RegisterApplication(editorApp()); err != nil {
		t.Fatal(err)
	}
	if err := env.RegisterApplication(mailApp()); err != nil {
		t.Fatal(err)
	}
	if err := env.RegisterApplication(editorApp()); !errors.Is(err, ErrAppExists) {
		t.Fatalf("dup registration: %v", err)
	}
	apps := env.Applications()
	if len(apps) != 2 || apps[0] != "group-editor" {
		t.Fatalf("apps = %v", apps)
	}
	quads := env.Quadrants()
	if len(quads) != 2 {
		t.Fatalf("quadrants = %v", quads)
	}
	schemas := env.Space().Registry().Schemas()
	if len(schemas) != 3 { // 2 native + shared
		t.Fatalf("schemas = %v", schemas)
	}
}

func TestFigure3InteropAcrossApps(t *testing.T) {
	env := newEnv(t)
	if err := env.RegisterApplication(editorApp()); err != nil {
		t.Fatal(err)
	}
	if err := env.RegisterApplication(mailApp()); err != nil {
		t.Fatal(err)
	}
	// The editor authors a document...
	obj, err := env.Space().Put("ada", "editor-doc", map[string]string{
		"heading": "Tunnel progress", "text": "on schedule", "writer": "ada",
	})
	if err != nil {
		t.Fatal(err)
	}
	// ...shares it with the mail system's user...
	if err := env.Space().Share("ada", obj.ID, "ben", false); err != nil {
		t.Fatal(err)
	}
	// ...who reads it in the mail system's native schema, two conversion
	// hops away (editor-doc -> shared -> mail-memo).
	memo, err := env.ShareAcross("ben", obj.ID, "message-system")
	if err != nil {
		t.Fatal(err)
	}
	if memo.Fields["subject"] != "Tunnel progress" || memo.Fields["from"] != "ada" {
		t.Fatalf("memo = %+v", memo.Fields)
	}
	if _, err := env.ShareAcross("ben", obj.ID, "ghost-app"); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("ghost app: %v", err)
	}
}

func TestTradingPolicyWiredToOrgKB(t *testing.T) {
	env := newEnv(t)
	kb := env.Org()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(kb.AddObject(org.Object{ID: "gmd", Kind: org.KindOrg}))
	must(kb.AddObject(org.Object{ID: "rival", Kind: org.KindOrg}))
	must(kb.AddObject(org.Object{ID: "prinz", Kind: org.KindPerson, Org: "gmd"}))
	kb.SetPolicy("gmd", "data-sharing", "open")
	kb.SetPolicy("rival", "data-sharing", "closed")

	tr := env.Trader()
	must(tr.RegisterType("conferencing"))
	must(tr.Export(trader.Offer{ID: "own", ServiceType: "conferencing",
		Properties: directory.NewAttributes("org", "gmd")}))
	must(tr.Export(trader.Offer{ID: "blocked", ServiceType: "conferencing",
		Properties: directory.NewAttributes("org", "rival")}))

	got, err := tr.Import(trader.ImportRequest{ServiceType: "conferencing", Importer: "prinz"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "own" {
		t.Fatalf("policy-filtered import = %v", got)
	}
}

func TestModelEventsReachPolicyEngine(t *testing.T) {
	env := newEnv(t)
	var fired []string
	env.Policies().RegisterAction("log", func(ev policy.Event, args map[string]string) error {
		fired = append(fired, ev.Kind+":"+ev.Attr("name")+ev.Attr("schema"))
		return nil
	}, true)
	if err := env.Policies().AddRule(policy.Rule{Name: "log-activity", On: "activity.created", ActionName: "log"}); err != nil {
		t.Fatal(err)
	}
	if err := env.Policies().AddRule(policy.Rule{Name: "log-info", On: "info.put", ActionName: "log"}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Activities().Create("ada", "progress-meetings", "weekly"); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Space().Put("ada", SharedSchemaName, map[string]string{"title": "minutes"}); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if fired[0] != "activity.created:progress-meetings" || fired[1] != "info.put:mocca-interchange" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestConformanceCoversAllViewpoints(t *testing.T) {
	env := newEnv(t)
	reg := env.Conformance()
	for _, v := range odp.Viewpoints() {
		if len(reg.ByViewpoint(v)) == 0 {
			t.Errorf("no requirement mapped at the %s viewpoint", v)
		}
	}
	// The three §6.1 headline mappings exist.
	names := map[string]bool{}
	for _, r := range reg.All() {
		names[r.Name] = true
	}
	for _, want := range []string{"organisational-modelling", "selective-transparency", "trading-policy-from-org-kb"} {
		if !names[want] {
			t.Errorf("missing conformance requirement %q", want)
		}
	}
}

func TestSyncOrgToDirectory(t *testing.T) {
	env := newEnv(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(env.Org().AddObject(org.Object{ID: "gmd", Kind: org.KindOrg, Name: "GMD"}))
	must(env.Org().AddObject(org.Object{ID: "prinz", Kind: org.KindPerson, Name: "Prinz", Org: "gmd"}))
	must(env.SyncOrgToDirectory())
	entry, err := env.Directory().Read(directory.MustParseDN("cn=prinz,ou=person,o=gmd"))
	if err != nil {
		t.Fatal(err)
	}
	if entry.Attrs.First("cn") != "Prinz" {
		t.Fatalf("entry = %v", entry.Attrs)
	}
}

func TestImportExpertise(t *testing.T) {
	env := newEnv(t)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(env.Org().AddObject(org.Object{ID: "gmd", Kind: org.KindOrg}))
	must(env.Org().AddObject(org.Object{ID: "prinz", Kind: org.KindPerson, Org: "gmd"}))
	must(env.Org().AddObject(org.Object{ID: "leader", Kind: org.KindRole, Org: "gmd"}))
	must(env.Org().Relate("prinz", org.RelFills, "leader"))
	env.ImportExpertise()
	p, err := env.Expertise().Profile("prinz")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Responsibilities) != 1 || p.Responsibilities[0].Name != "leader" {
		t.Fatalf("profile = %+v", p)
	}
}

func TestSnapshot(t *testing.T) {
	env := newEnv(t)
	if err := env.RegisterApplication(editorApp()); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Space().Put("ada", SharedSchemaName, map[string]string{"title": "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := env.Activities().Create("ada", "a", ""); err != nil {
		t.Fatal(err)
	}
	rep := env.Snapshot()
	if len(rep.Applications) != 1 || rep.Objects != 1 || rep.Activities != 1 || rep.Requirements == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSiteEnvReplicasShareRegistryAndACL(t *testing.T) {
	env := newEnv(t)
	gmd := env.SiteEnv("gmd")
	upc := env.SiteEnv("upc")
	if env.SiteEnv("gmd") != gmd {
		t.Fatal("SiteEnv not idempotent")
	}
	if got := env.Sites(); len(got) != 2 || got[0] != "gmd" || got[1] != "upc" {
		t.Fatalf("Sites = %v", got)
	}

	// One registry: a schema registered through any face is visible to all.
	if err := gmd.RegisterApplication(Application{
		Name: "notes",
		Schema: information.Schema{Name: "note", Fields: []information.Field{
			{Name: "head", Type: information.FieldText, Required: true},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	obj, err := upc.Space().Put("ada", "note", map[string]string{"head": "multi-site"})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Site != "upc" || obj.VV.Counter("upc") != 1 {
		t.Fatalf("replica metadata: %+v", obj)
	}

	// One ACL: a grant issued at upc admits the reader at gmd once the
	// object replicates there.
	if err := upc.Space().Share("ada", obj.ID, "ben", false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := gmd.Space().ApplyRemote(obj); err != nil {
		t.Fatal(err)
	}
	got, err := gmd.Get("ben", obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields["head"] != "multi-site" {
		t.Fatalf("fields = %v", got.Fields)
	}
	// Default replication transparency: no replica annotations.
	if _, ok := got.Fields[transparency.ReplicaSiteField]; ok {
		t.Fatal("transparent read leaked replica detail")
	}

	// Deselect replication transparency: the read is annotated with the
	// serving replica and the writing site.
	env.Transparency().Disable("ben", odp.Replication)
	got, err = gmd.Get("ben", obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields[transparency.ReplicaSiteField] != "gmd" ||
		got.Fields[transparency.ReplicaWriterField] != "upc" {
		t.Fatalf("annotations = %v", got.Fields)
	}

	// Site replica events reach the tailorability engine tagged with the
	// site (the policy engine saw info.put with site=upc via dispatch) —
	// verified indirectly: conflict resolution events carry winner/loser.
	if env.Space().Len() != 0 {
		t.Fatal("root space must not absorb site writes")
	}
}
