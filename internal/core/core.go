// Package core implements the CSCW Environment of figures 3 and 4: the
// layer "located between the basic ODP environment and CSCW applications"
// that "augments ODP with CSCW specific functions and requirements".
//
// An Environment instance wires the five MOCCA models (org, activity,
// information, comm, expertise) over the substrates (directory, trader,
// mhs, rtc) and exposes them as common services. Applications register with
// the environment (figure 3) instead of integrating pairwise with each
// other (figure 2); each registration contributes the application's native
// schema and its converters to/from shared representations, after which
// every registered application can exchange information objects with every
// other.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mocca/internal/access"
	"mocca/internal/activity"
	"mocca/internal/comm"
	"mocca/internal/directory"
	"mocca/internal/expertise"
	"mocca/internal/id"
	"mocca/internal/information"
	"mocca/internal/odp"
	"mocca/internal/org"
	"mocca/internal/placement"
	"mocca/internal/policy"
	"mocca/internal/trader"
	"mocca/internal/transparency"
	"mocca/internal/vclock"
)

// Errors of the environment.
var (
	ErrAppExists  = errors.New("core: application already registered")
	ErrUnknownApp = errors.New("core: unknown application")
)

// Application describes a registering CSCW application (figure 3).
type Application struct {
	// Name identifies the application, e.g. "desktop-conference".
	Name string
	// Quadrant places it in the figure-1 time-space matrix, e.g.
	// "same-time/different-place". Informational.
	Quadrant string
	// Schema is the application's native information schema.
	Schema information.Schema
	// ToShared/FromShared convert between the native schema and the
	// environment's shared interchange schema. Optional for applications
	// that use the interchange schema natively.
	ToShared   func(map[string]string) (map[string]string, error)
	FromShared func(map[string]string) (map[string]string, error)
}

// SharedSchemaName is the environment's interchange representation.
const SharedSchemaName = "mocca-interchange"

// Environment is the open CSCW environment.
type Environment struct {
	clock vclock.Clock
	ids   *id.Generator

	// The five MOCCA models plus supporting services.
	orgKB      *org.KnowledgeBase
	activities *activity.Registry
	space      *information.Space
	hub        *comm.Hub
	expertise  *expertise.Model
	acl        *access.System
	engine     *policy.Engine
	selector   *transparency.Selector
	trading    *trader.Trader
	dit        *directory.DIT
	conform    *odp.Registry

	siteBackend func(site string) information.Backend
	placing     *placement.Policy

	mu          sync.RWMutex
	apps        map[string]*Application
	siteEnvs    map[string]*SiteEnv
	readThrough ReadThrough
}

// ReadThrough resolves an object a site's replica does not hold: given
// the asking site, the reading principal and the object id, it returns
// the object and the name of the site whose replica served it. The
// deployment layer installs a trader-mediated implementation
// (placement.Reader) via SetReadThrough; without one, a local miss stays
// a miss.
type ReadThrough func(fromSite, actor, objID string) (*information.Object, string, error)

// Option configures an Environment.
type Option func(*Environment)

// WithIDs sets the id generator used across services.
func WithIDs(g *id.Generator) Option {
	return func(e *Environment) { e.ids = g }
}

// WithHub injects an externally-constructed communication hub (one bound
// to a real MHS deployment). Without it, Send is unavailable.
func WithHub(h *comm.Hub) Option {
	return func(e *Environment) { e.hub = h }
}

// WithTrader injects an externally-hosted trader (e.g. one served over
// rpc); by default the environment embeds a local trading function.
func WithTrader(t *trader.Trader) Option {
	return func(e *Environment) { e.trading = t }
}

// WithPlacement injects an externally-constructed placement policy (e.g.
// one the deployment layer also hands to every replicator); by default
// the environment embeds a fresh replicate-everywhere policy.
func WithPlacement(p *placement.Policy) Option {
	return func(e *Environment) { e.placing = p }
}

// WithSiteBackend supplies per-site information storage: the factory is
// called once per site when its replica is first materialised (and again
// on ResetSiteSpace), returning the backend the site's Space runs over —
// e.g. a durable logstore so the replica survives a crash. A nil factory
// (the default) keeps every replica in memory.
func WithSiteBackend(fn func(site string) information.Backend) Option {
	return func(e *Environment) { e.siteBackend = fn }
}

// New creates an environment over the given clock, with all five models
// wired together:
//
//   - the org knowledge base dictates the trader's admission policy (§6.1)
//   - filled org roles become expertise responsibilities
//   - activity and information events feed the tailorability engine
//   - the transparency selector guards communication and sharing
func New(clock vclock.Clock, opts ...Option) *Environment {
	e := &Environment{
		clock:    clock,
		orgKB:    org.NewKnowledgeBase(),
		acl:      access.NewSystem(),
		engine:   policy.NewEngine(),
		dit:      directory.NewDIT(),
		conform:  odp.NewRegistry(),
		apps:     make(map[string]*Application),
		siteEnvs: make(map[string]*SiteEnv),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.ids == nil {
		e.ids = id.New()
	}
	if e.trading == nil {
		e.trading = trader.New()
	}
	if e.placing == nil {
		e.placing = placement.NewPolicy()
	}
	e.selector = transparency.NewSelector()
	e.expertise = expertise.NewModel()
	e.activities = activity.NewRegistry(clock, activity.WithIDs(e.ids))

	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{
		Name: SharedSchemaName,
		Fields: []information.Field{
			{Name: "title", Type: information.FieldText, Required: true},
			{Name: "body", Type: information.FieldText},
			{Name: "author", Type: information.FieldText},
			{Name: "context", Type: information.FieldText},
		},
	}); err != nil {
		panic(err) // static schema; cannot fail
	}
	e.space = information.NewSpace(registry, e.acl, clock, information.WithIDs(e.ids))

	if e.hub == nil {
		e.hub = comm.NewHub(clock, e.selector)
	}

	// §6.1: the organisational knowledge base dictates the trading policy.
	e.trading.AddPolicy(org.TradingPolicy(e.orgKB))

	// Model events feed the tailorability engine.
	e.activities.Subscribe(func(ev activity.Event) {
		e.engine.Dispatch(policy.Event{Kind: "activity." + string(ev.Kind), Attrs: map[string]string{
			"activity": ev.Activity.ID,
			"name":     ev.Activity.Name,
			"actor":    ev.Actor,
			"detail":   ev.Detail,
			"state":    ev.Activity.State.String(),
		}})
	})
	e.space.Subscribe("", func(ev information.Event) {
		attrs := map[string]string{"actor": ev.Actor, "kind": ev.Kind}
		if ev.Object != nil {
			attrs["object"] = ev.Object.ID
			attrs["schema"] = ev.Object.Schema
		}
		e.engine.Dispatch(policy.Event{Kind: "info." + ev.Kind, Attrs: attrs})
	})

	e.publishConformance()
	return e
}

// publishConformance records the §6 requirement -> viewpoint -> function
// mapping in machine-readable form.
func (e *Environment) publishConformance() {
	reqs := []odp.Requirement{
		{Name: "organisational-modelling", Viewpoint: odp.Enterprise, Function: "org.KnowledgeBase"},
		{Name: "activity-support", Viewpoint: odp.Enterprise, Function: "activity.Registry"},
		{Name: "trading-policy-from-org-kb", Viewpoint: odp.Enterprise, Function: "org.TradingPolicy"},
		{Name: "information-sharing", Viewpoint: odp.Information, Function: "information.Space"},
		{Name: "standard-repositories", Viewpoint: odp.Information, Function: "directory.DIT"},
		{Name: "schema-interchange", Viewpoint: odp.Information, Function: "information.SchemaRegistry"},
		{Name: "replicated-information-spaces", Viewpoint: odp.Information, Function: "replica.Replicator"},
		{Name: "placement-policy", Viewpoint: odp.Enterprise, Function: "placement.Policy"},
		{Name: "partial-replication", Viewpoint: odp.Information, Function: "placement.Policy + replica interest filtering"},
		{Name: "location-transparency", Viewpoint: odp.Computation, Function: "transparency.FilterLocation"},
		{Name: "trader-read-through", Viewpoint: odp.Engineering, Function: "placement.Reader"},
		{Name: "selective-transparency", Viewpoint: odp.Computation, Function: "transparency.Selector"},
		{Name: "replication-transparency", Viewpoint: odp.Computation, Function: "transparency.FilterReplica"},
		{Name: "user-tailorability", Viewpoint: odp.Computation, Function: "policy.Engine"},
		{Name: "communication-integration", Viewpoint: odp.Computation, Function: "comm.Hub"},
		{Name: "invocation", Viewpoint: odp.Engineering, Function: "rpc.Endpoint"},
		{Name: "message-transfer", Viewpoint: odp.Engineering, Function: "mhs.MTA"},
		{Name: "conferencing", Viewpoint: odp.Engineering, Function: "rtc.Server"},
		{Name: "simulated-network", Viewpoint: odp.Technology, Function: "netsim.Network"},
	}
	for _, r := range reqs {
		if err := e.conform.Add(r); err != nil {
			panic(err) // static table; cannot fail
		}
	}
}

// Accessors for the common services (the environment's "common functions",
// with applications keeping "task-specific functions" to themselves).

// Clock returns the environment time base.
func (e *Environment) Clock() vclock.Clock { return e.clock }

// Org returns the organisational model.
func (e *Environment) Org() *org.KnowledgeBase { return e.orgKB }

// Activities returns the inter-activity model.
func (e *Environment) Activities() *activity.Registry { return e.activities }

// Space returns the information model.
func (e *Environment) Space() *information.Space { return e.space }

// Hub returns the communication model.
func (e *Environment) Hub() *comm.Hub { return e.hub }

// Expertise returns the user-expertise model.
func (e *Environment) Expertise() *expertise.Model { return e.expertise }

// Access returns the role-based access control system.
func (e *Environment) Access() *access.System { return e.acl }

// Policies returns the tailorability engine.
func (e *Environment) Policies() *policy.Engine { return e.engine }

// Transparency returns the per-principal transparency selector.
func (e *Environment) Transparency() *transparency.Selector { return e.selector }

// Trader returns the trading function.
func (e *Environment) Trader() *trader.Trader { return e.trading }

// Placement returns the placement policy deciding which sites hold which
// information spaces. With no rules installed it is the deterministic
// replicate-everywhere default.
func (e *Environment) Placement() *placement.Policy { return e.placing }

// SetReadThrough installs the resolver SiteEnv.Get falls back to when the
// local replica does not hold an object — the trader-mediated remote
// read of partial replication.
func (e *Environment) SetReadThrough(fn ReadThrough) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.readThrough = fn
}

// Directory returns the environment's X.500 DIT.
func (e *Environment) Directory() *directory.DIT { return e.dit }

// Conformance returns the ODP requirement registry (§6 mapping).
func (e *Environment) Conformance() *odp.Registry { return e.conform }

// RegisterApplication admits an application into the environment (figure
// 3): its schema joins the registry together with converters to/from the
// shared representation, after which it interoperates with every other
// registered application through the information model.
func (e *Environment) RegisterApplication(app Application) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.apps[app.Name]; ok {
		return fmt.Errorf("%w: %q", ErrAppExists, app.Name)
	}
	registry := e.space.Registry()
	if app.Schema.Name != "" && app.Schema.Name != SharedSchemaName {
		if err := registry.Register(app.Schema); err != nil {
			return fmt.Errorf("core: register %q: %w", app.Name, err)
		}
		if app.ToShared != nil {
			if err := registry.AddConverter(information.Converter{
				From: app.Schema.Name, To: SharedSchemaName, Fn: app.ToShared,
			}); err != nil {
				return err
			}
		}
		if app.FromShared != nil {
			if err := registry.AddConverter(information.Converter{
				From: SharedSchemaName, To: app.Schema.Name, Fn: app.FromShared,
			}); err != nil {
				return err
			}
		}
	}
	stored := app
	e.apps[app.Name] = &stored
	e.engine.Dispatch(policy.Event{Kind: "env.app-registered", Attrs: map[string]string{
		"app": app.Name, "quadrant": app.Quadrant,
	}})
	return nil
}

// Applications lists registered application names, sorted.
func (e *Environment) Applications() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.apps))
	for name := range e.apps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Quadrants returns the set of figure-1 quadrants covered by registered
// applications — the environment hosting "a multiplicity of approaches".
func (e *Environment) Quadrants() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	set := map[string]bool{}
	for _, app := range e.apps {
		if app.Quadrant != "" {
			set[app.Quadrant] = true
		}
	}
	out := make([]string, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

// ShareAcross converts an information object authored by one application
// into another application's native schema — the figure-3 interop path.
// The reader principal must hold read access (share first).
func (e *Environment) ShareAcross(reader, objID, targetApp string) (*information.Object, error) {
	e.mu.RLock()
	app, ok := e.apps[targetApp]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownApp, targetApp)
	}
	schema := app.Schema.Name
	if schema == "" {
		schema = SharedSchemaName
	}
	return e.space.GetAs(reader, objID, schema)
}

// --- per-site environments ------------------------------------------------

// SiteEnv is the per-site face of the environment: one site's replica of
// the information model layered over the SAME schema registry, ACL
// system, org knowledge base, policy engine and transparency selector as
// every other site. Applications hosted at a site bind to their SiteEnv,
// so their writes land on the local replica and propagate asynchronously,
// while everything that must be globally consistent (schemas, grants,
// policies) stays shared.
type SiteEnv struct {
	parent *Environment
	site   string
	space  *information.Space
}

// SiteEnv returns the per-site environment for the named site, creating
// its information replica on first use (over the WithSiteBackend storage,
// if configured). The replica's events feed the tailorability engine
// tagged with the site, so conflicts and remote applies are scriptable
// like any other environment event.
func (e *Environment) SiteEnv(site string) *SiteEnv {
	e.mu.Lock()
	defer e.mu.Unlock()
	if se, ok := e.siteEnvs[site]; ok {
		return se
	}
	var backend information.Backend
	if e.siteBackend != nil {
		backend = e.siteBackend(site)
	}
	se := &SiteEnv{parent: e, site: site, space: e.newSiteSpace(site, backend)}
	e.siteEnvs[site] = se
	return se
}

// newSiteSpace builds one site's information replica over the given
// backend (nil = in-memory) and feeds its events to the policy engine.
func (e *Environment) newSiteSpace(site string, backend information.Backend) *information.Space {
	sp := information.NewSpace(e.space.Registry(), e.acl, e.clock,
		information.WithIDs(e.ids), information.WithSite(site),
		information.WithBackend(backend))
	sp.Subscribe("", func(ev information.Event) {
		attrs := map[string]string{"actor": ev.Actor, "kind": ev.Kind, "site": site}
		if ev.Object != nil {
			attrs["object"] = ev.Object.ID
			attrs["schema"] = ev.Object.Schema
		}
		if ev.Conflict != nil {
			attrs["winner"] = ev.Conflict.WinnerSite
			attrs["loser"] = ev.Conflict.LoserSite
		}
		e.engine.Dispatch(policy.Event{Kind: "info." + ev.Kind, Attrs: attrs})
	})
	return sp
}

// ResetSiteSpace rebuilds the named site's information replica over the
// given backend — the crash/restart path: the site's in-memory replica
// died with the site, and a durable backend arrives here freshly
// recovered from its log. The existing SiteEnv is kept (applications and
// other sites hold references to it) and its space is swapped, so
// everything bound through the SiteEnv sees the recovered replica.
func (e *Environment) ResetSiteSpace(site string, backend information.Backend) *SiteEnv {
	e.mu.Lock()
	defer e.mu.Unlock()
	se, ok := e.siteEnvs[site]
	if !ok {
		se = &SiteEnv{parent: e, site: site}
		e.siteEnvs[site] = se
	}
	se.space = e.newSiteSpace(site, backend)
	return se
}

// Sites lists the sites with materialised per-site environments, sorted.
func (e *Environment) Sites() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.siteEnvs))
	for s := range e.siteEnvs {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Site returns the site name.
func (s *SiteEnv) Site() string { return s.site }

// Parent returns the shared environment.
func (s *SiteEnv) Parent() *Environment { return s.parent }

// Space returns the site's information replica. The read is guarded by
// the environment lock because ResetSiteSpace swaps the replica on the
// crash/restart path.
func (s *SiteEnv) Space() *information.Space {
	s.parent.mu.RLock()
	defer s.parent.mu.RUnlock()
	return s.space
}

// RegisterApplication admits an application through the shared
// environment — schemas and converters are global, so an application
// registered at one site interoperates at every site.
func (s *SiteEnv) RegisterApplication(app Application) error {
	return s.parent.RegisterApplication(app)
}

// Get reads an object from the site replica under the reader's
// replication-transparency selection: with the transparency selected
// (the default) the replica set looks like one information space; with it
// deselected, the returned fields are annotated with which replica served
// the read, the writing site and the version vector — replica lag in the
// user's face.
//
// Under partial replication the local replica legitimately does not hold
// every space: an unknown object falls through to the environment's
// read-through resolver (SetReadThrough), which finds a holder via the
// trader and reads remotely over the channel stack. Location
// transparency governs what the reader sees of that: selected (the
// default), the remote read is indistinguishable from a local one;
// deselected, the fields are annotated with the holding site and the
// resolution path.
func (s *SiteEnv) Get(actor, objID string) (*information.Object, error) {
	obj, err := s.Space().Get(actor, objID)
	if err != nil {
		e := s.parent
		e.mu.RLock()
		rt := e.readThrough
		e.mu.RUnlock()
		// Remote resolution only makes sense when placement is selective:
		// with the replicate-everywhere default a local miss is
		// authoritative, and the pre-placement contract (an immediate
		// information.ErrUnknownObject, no network traffic) is preserved.
		if rt == nil || !errors.Is(err, information.ErrUnknownObject) || !e.placing.Selective() {
			return nil, err
		}
		remote, servedBy, rerr := rt(s.site, actor, objID)
		if rerr != nil {
			// Both causes stay matchable: the local miss
			// (information.ErrUnknownObject) and the resolution failure
			// (e.g. placement.ErrNoHolder).
			return nil, fmt.Errorf("core: site %q read-through for %q: %w (local: %w)", s.site, objID, rerr, err)
		}
		if !e.selector.For(actor).Has(odp.Location) {
			remote.Fields = transparency.FilterLocation(e.selector, actor, transparency.LocationMeta{
				Holder: servedBy,
				Reader: s.site,
				Via:    "trader",
			}, remote.Fields)
		}
		return remote, nil
	}
	// Build the annotation metadata (vector formatting allocates) only on
	// the non-default, transparency-deselected path.
	if !s.parent.selector.For(actor).Has(odp.Replication) {
		obj.Fields = transparency.FilterReplica(s.parent.selector, actor, transparency.ReplicaMeta{
			Site:    s.site,
			Writer:  obj.Site,
			Version: obj.VV.String(),
		}, obj.Fields)
	}
	return obj, nil
}

// SyncOrgToDirectory exports the organisational knowledge base into the
// environment's X.500 DIT.
func (e *Environment) SyncOrgToDirectory() error {
	return org.ExportToDirectory(e.orgKB, e.dit)
}

// ImportExpertise derives responsibilities from filled org roles.
func (e *Environment) ImportExpertise() {
	e.expertise.ImportResponsibilities(e.orgKB)
}

// Report summarises the environment state (for cmd/moccad and examples).
type Report struct {
	Applications []string
	Quadrants    []string
	Schemas      []string
	Objects      int
	Activities   int
	OrgObjects   int
	Requirements int
}

// Snapshot builds a Report.
func (e *Environment) Snapshot() Report {
	return Report{
		Applications: e.Applications(),
		Quadrants:    e.Quadrants(),
		Schemas:      e.space.Registry().Schemas(),
		Objects:      e.space.Len(),
		Activities:   len(e.activities.List()),
		OrgObjects:   e.orgKB.Len(),
		Requirements: len(e.conform.All()),
	}
}
