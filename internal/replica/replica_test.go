package replica

import (
	"fmt"
	"testing"
	"time"

	"mocca/internal/id"
	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

type fixture struct {
	clk    *vclock.Simulated
	net    *netsim.Network
	spaces []*information.Space
	reps   []*Replicator
}

// newFixture builds n site replicas ("s0".."s<n-1>") of one logical space
// over one simulated network, full-mesh peered, with auto-sync armed.
func newFixture(t *testing.T, n int, opts ...Option) *fixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(7))
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "doc", Fields: []information.Field{
		{Name: "title", Type: information.FieldText, Required: true},
		{Name: "body", Type: information.FieldText},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := id.New()
	f := &fixture{clk: clk, net: net}
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("s%d", i)
		sp := information.NewSpace(registry, nil, clk,
			information.WithSite(site), information.WithIDs(ids))
		ep := rpc.NewEndpoint(net.MustAddNode(netsim.Address("repl-"+site)), clk, rpc.WithIDs(ids))
		f.spaces = append(f.spaces, sp)
		f.reps = append(f.reps, New(ep, clk, sp, opts...))
	}
	for i, r := range f.reps {
		for j, o := range f.reps {
			if i != j {
				r.AddPeer(o.Addr())
			}
		}
		r.AutoSync(time.Second)
	}
	return f
}

func (f *fixture) assertConverged(t *testing.T, objID string) *information.Object {
	t.Helper()
	ref, err := f.spaces[0].Get("anyone", objID)
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range f.spaces[1:] {
		obj, err := sp.Get("anyone", objID)
		if err != nil {
			t.Fatalf("site %d: %v", i+1, err)
		}
		if obj.VV.Compare(ref.VV) != vclock.Equal || obj.Version != ref.Version ||
			obj.Site != ref.Site || obj.Fields["title"] != ref.Fields["title"] {
			t.Fatalf("site %d diverged: %+v vs %+v", i+1, obj, ref)
		}
	}
	return ref
}

func TestAutoSyncConvergesAndGoesDormant(t *testing.T) {
	f := newFixture(t, 2)
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	f.assertConverged(t, obj.ID)

	// Converged and dormant: nothing left on the event queue.
	if fired := f.clk.RunUntilIdle(); fired != 0 {
		t.Fatalf("dormant replicators still fired %d events", fired)
	}
	st := f.reps[0].Stats()
	if st.Rounds == 0 || st.Pushed == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// A later write re-arms and propagates again.
	if _, err := f.spaces[0].Update("prinz", obj.ID, obj.Version, map[string]string{"title": "v2"}); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	got := f.assertConverged(t, obj.ID)
	if got.Fields["title"] != "v2" {
		t.Fatalf("update not propagated: %v", got.Fields)
	}
}

func TestThreeSiteConcurrentUpdateConverges(t *testing.T) {
	f := newFixture(t, 3)
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	f.assertConverged(t, obj.ID)

	// Concurrent updates on s0 and s1 at the same instant: site order
	// decides ("s1" > "s0").
	if _, err := f.spaces[0].Update("prinz", obj.ID, 1, map[string]string{"title": "s0-edit"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.spaces[1].Update("prinz", obj.ID, 1, map[string]string{"title": "s1-edit"}); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	got := f.assertConverged(t, obj.ID)
	if got.Fields["title"] != "s1-edit" || got.Site != "s1" || got.Version != 3 {
		t.Fatalf("winner = %+v", got)
	}
	var conflicts int64
	for _, r := range f.reps {
		conflicts += r.Stats().Conflicts
	}
	if conflicts == 0 {
		t.Fatal("no replicator recorded the conflict")
	}
}

func TestPartitionFailureCapAndHeal(t *testing.T) {
	f := newFixture(t, 2, WithFailureCap(3))
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	f.assertConverged(t, obj.ID)

	f.net.Partition([]netsim.Address{"repl-s0"}, []netsim.Address{"repl-s1"})
	if _, err := f.spaces[0].Update("prinz", obj.ID, 1, map[string]string{"title": "lonely"}); err != nil {
		t.Fatal(err)
	}
	// The failure cap bounds retries: the run drains instead of spinning.
	f.clk.RunUntilIdle()
	st := f.reps[0].Stats()
	if st.PeerFailures == 0 {
		t.Fatalf("expected peer failures under partition: %+v", st)
	}
	if other, _ := f.spaces[1].Get("anyone", obj.ID); other.Fields["title"] == "lonely" {
		t.Fatal("write crossed a partition")
	}

	f.net.Heal()
	f.reps[0].SyncNow()
	f.clk.RunUntilIdle()
	got := f.assertConverged(t, obj.ID)
	if got.Fields["title"] != "lonely" {
		t.Fatalf("heal did not converge: %v", got.Fields)
	}
}

// TestManualSyncNowWithoutAutoSync covers replicators that never call
// AutoSync: rounds run only on explicit SyncNow requests, and a request
// is honoured even when it lands while a round is armed or in flight.
func TestManualSyncNowWithoutAutoSync(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(11))
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "doc", Fields: []information.Field{
		{Name: "title", Type: information.FieldText, Required: true},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := id.New()
	mk := func(site string) *Replicator {
		sp := information.NewSpace(registry, nil, clk,
			information.WithSite(site), information.WithIDs(ids))
		ep := rpc.NewEndpoint(net.MustAddNode(netsim.Address("repl-"+site)), clk, rpc.WithIDs(ids))
		return New(ep, clk, sp)
	}
	a, b := mk("s0"), mk("s1")
	a.AddPeer(b.Addr())
	b.AddPeer(a.Addr())

	obj, err := a.Space().Put("ada", "doc", map[string]string{"title": "one"})
	if err != nil {
		t.Fatal(err)
	}
	// No AutoSync: the write alone moves nothing.
	if fired := clk.RunUntilIdle(); fired != 0 {
		t.Fatalf("manual replicator scheduled %d events on its own", fired)
	}
	// A request issued while a round is in flight must still be honoured
	// (one extra round), even without AutoSync.
	a.SyncNow()
	a.SyncNow() // absorbed into the pending round
	clk.RunUntilIdle()
	got, err := b.Space().Get("ada", obj.ID)
	if err != nil || got.Fields["title"] != "one" {
		t.Fatalf("manual sync failed: %v %v", got, err)
	}
	if a.Stats().Rounds == 0 {
		t.Fatal("no round ran")
	}
	// Dormant again afterwards.
	if fired := clk.RunUntilIdle(); fired != 0 {
		t.Fatalf("manual replicator kept running: %d events", fired)
	}
}
