package replica

import (
	"fmt"
	"testing"

	"mocca/internal/id"
	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/placement"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// newScopedBench builds one standalone replicator under a selective
// placement policy (body=scoped rows live only at {s0, s1}) with no
// peers — enough to exercise treeFor's per-peer scoped-tree cache
// without network traffic.
func newScopedRig(tb testing.TB) (*information.Space, *Replicator, *placement.Policy) {
	tb.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(7))
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "doc", Fields: []information.Field{
		{Name: "title", Type: information.FieldText, Required: true},
		{Name: "body", Type: information.FieldText},
	}}); err != nil {
		tb.Fatal(err)
	}
	ids := id.New()
	pol := placement.NewPolicy()
	pol.Use(placement.ByField("body", "scoped", "s0", "s1"))
	sp := information.NewSpace(registry, nil, clk,
		information.WithSite("s0"), information.WithIDs(ids))
	ep := rpc.NewEndpoint(net.MustAddNode("scoped-s0"), clk, rpc.WithIDs(ids))
	return sp, New(ep, clk, sp, WithPlacement(pol)), pol
}

// scopedRootOf builds the reference answer the cache must match: a
// fresh digest tree over exactly the rows placement puts at site.
func scopedRootOf(r *Replicator, site string) uint64 {
	t := information.NewDigestTree()
	r.space.Range(func(o *information.Object) bool {
		if r.placedAt(site, o) {
			t.Update(o.ID, o.VV)
		}
		return true
	})
	return t.Root()
}

// TestScopedTreeIncrementalMaintenance: after treeFor builds a per-peer
// tree once, further commits must be fanned into the cached tree by the
// commit-path subscriber — same pointer back (no rescan), content equal
// to a fresh placement-scoped build, including rows whose update moves
// them across the placement boundary and evicted rows.
func TestScopedTreeIncrementalMaintenance(t *testing.T) {
	sp, rep, pol := newScopedRig(t)
	var open, scoped *information.Object
	var err error
	for i := 0; i < 8; i++ {
		body := ""
		if i%2 == 0 {
			body = "scoped"
		}
		o, perr := sp.Put("ada", "doc", map[string]string{"title": fmt.Sprintf("doc %d", i), "body": body})
		if perr != nil {
			t.Fatal(perr)
		}
		if i == 0 {
			scoped = o
		}
		if i == 1 {
			open = o
		}
	}
	_ = scoped

	t1 := rep.treeFor("s2") // s2 holds only the open rows
	if got, want := t1.Root(), scopedRootOf(rep, "s2"); got != want {
		t.Fatalf("initial scoped root = %x, want %x", got, want)
	}

	// New commits on both sides of the placement boundary.
	if _, err = sp.Put("ada", "doc", map[string]string{"title": "late open"}); err != nil {
		t.Fatal(err)
	}
	if _, err = sp.Put("ada", "doc", map[string]string{"title": "late scoped", "body": "scoped"}); err != nil {
		t.Fatal(err)
	}
	// An update that moves a row INTO the scoped set (out of s2's view)...
	if open, err = sp.Update("ada", open.ID, open.Version, map[string]string{"title": "now secret", "body": "scoped"}); err != nil {
		t.Fatal(err)
	}
	// ...and an eviction.
	if _, err = sp.Drop(open.ID); err != nil {
		t.Fatal(err)
	}

	t2 := rep.treeFor("s2")
	if t1 != t2 {
		t.Fatal("treeFor rebuilt the scoped tree; commits should maintain the cached one")
	}
	if got, want := t2.Root(), scopedRootOf(rep, "s2"); got != want {
		t.Fatalf("maintained scoped root = %x, want %x", got, want)
	}
	// The ScopeFiltered gauge tracks what the maintained tree excludes.
	if s := rep.Stats(); s.ScopeFiltered == 0 {
		t.Fatalf("ScopeFiltered gauge empty after maintenance: %+v", s)
	}

	// A policy change must force a full rescan under the new rules.
	pol.Use(placement.ByField("body", "scoped", "s0", "s2"))
	t3 := rep.treeFor("s2")
	if t3 == t2 {
		t.Fatal("policy change did not invalidate the scoped tree")
	}
	if got, want := t3.Root(), scopedRootOf(rep, "s2"); got != want {
		t.Fatalf("post-policy scoped root = %x, want %x", got, want)
	}
}

// BenchmarkScopedTreeAfterCommit prices treeFor right after a local
// commit — the steady-state of a writing replica under selective
// placement. "incremental" is the shipped path: the commit was fanned
// into the cached tree, treeFor is a cache hit. "rebuild" simulates the
// previous design by discarding the cache entry each round, forcing the
// O(rows) full-store rescan the incremental path replaces.
func BenchmarkScopedTreeAfterCommit(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for _, mode := range []string{"incremental", "rebuild"} {
			b.Run(fmt.Sprintf("%s/rows=%d", mode, n), func(b *testing.B) {
				sp, rep, _ := newScopedRig(b)
				for i := 0; i < n; i++ {
					body := ""
					if i%2 == 0 {
						body = "scoped"
					}
					if _, err := sp.Put("ada", "doc", map[string]string{"title": fmt.Sprintf("doc %d", i), "body": body}); err != nil {
						b.Fatal(err)
					}
				}
				rep.treeFor("s2")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sp.Put("ada", "doc", map[string]string{"title": fmt.Sprintf("hot %d", i)}); err != nil {
						b.Fatal(err)
					}
					if mode == "rebuild" {
						rep.mu.Lock()
						delete(rep.scoped, "s2")
						rep.mu.Unlock()
					}
					rep.treeFor("s2")
				}
			})
		}
	}
}
