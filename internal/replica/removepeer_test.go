package replica

import (
	"fmt"
	"testing"
)

// TestRemovePeerReleasesScopedTree: dropping a peer (gossip view churn)
// must release the placement-scoped digest tree cached for its site —
// unless another peer still shares the site.
func TestRemovePeerReleasesScopedTree(t *testing.T) {
	sp, rep, _ := newScopedRig(t)
	for i := 0; i < 4; i++ {
		if _, err := sp.Put("ada", "doc", map[string]string{
			"title": fmt.Sprintf("doc %d", i), "body": "scoped"}); err != nil {
			t.Fatal(err)
		}
	}
	rep.AddPeerNamed("s1", "repl-s1")
	rep.AddPeerNamed("s2", "repl-s2")
	rep.treeFor("s1")
	rep.treeFor("s2")
	if got := rep.Stats().ScopedTrees; got != 2 {
		t.Fatalf("ScopedTrees = %d after serving two peers, want 2", got)
	}

	if !rep.RemovePeer("repl-s2") {
		t.Fatal("RemovePeer(repl-s2) = false for a live peer")
	}
	if got := rep.Stats().ScopedTrees; got != 1 {
		t.Fatalf("ScopedTrees = %d after dropping s2, want 1 — the tree leaked", got)
	}
	if got := len(rep.Peers()); got != 1 {
		t.Fatalf("Peers() = %d after removal, want 1", got)
	}
	if rep.RemovePeer("repl-s2") {
		t.Fatal("RemovePeer(repl-s2) = true for an already-removed peer")
	}
}

// TestRemovePeerKeepsSharedSiteTree: two peer addresses for one site —
// removing one must keep the site's tree; removing the last releases it.
func TestRemovePeerKeepsSharedSiteTree(t *testing.T) {
	sp, rep, _ := newScopedRig(t)
	if _, err := sp.Put("ada", "doc", map[string]string{
		"title": "one", "body": "scoped"}); err != nil {
		t.Fatal(err)
	}
	rep.AddPeerNamed("s1", "repl-s1a")
	rep.AddPeerNamed("s1", "repl-s1b")
	rep.treeFor("s1")
	if got := rep.Stats().ScopedTrees; got != 1 {
		t.Fatalf("ScopedTrees = %d, want 1", got)
	}
	rep.RemovePeer("repl-s1a")
	if got := rep.Stats().ScopedTrees; got != 1 {
		t.Fatalf("ScopedTrees = %d after dropping one of two s1 peers, want 1", got)
	}
	rep.RemovePeer("repl-s1b")
	if got := rep.Stats().ScopedTrees; got != 0 {
		t.Fatalf("ScopedTrees = %d after dropping the last s1 peer, want 0", got)
	}
}

// TestScopedTreeCacheBoundedByPeers: digest requests from sites that are
// not peers must not grow the cache past the peer count plus slack —
// strangers are served by uncached scans instead.
func TestScopedTreeCacheBoundedByPeers(t *testing.T) {
	sp, rep, _ := newScopedRig(t)
	if _, err := sp.Put("ada", "doc", map[string]string{
		"title": "one", "body": "scoped"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*scopedSlack; i++ {
		rep.treeFor(fmt.Sprintf("stranger-%d", i))
	}
	if got := rep.Stats().ScopedTrees; got > scopedSlack {
		t.Fatalf("ScopedTrees = %d from stranger requests, want ≤ %d", got, scopedSlack)
	}
}
