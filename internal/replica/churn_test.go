package replica

import (
	"testing"
	"time"
)

// TestRemovePeerDuringInFlightRound removes peers from a replicator while
// its anti-entropy round is mid-exchange — the gossip overlay does exactly
// this when view churn lands during a sync. The in-flight round runs
// against its snapshot and must complete without wedging the clock; later
// rounds must honor the shrunken peer set.
func TestRemovePeerDuringInFlightRound(t *testing.T) {
	f := newFixture(t, 3)
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "churn"})
	if err != nil {
		t.Fatal(err)
	}

	// Fire s0's round: at the interval boundary the round has started and
	// its first exchange (sorted order: s1) is in flight, replies still
	// queued behind network latency.
	f.clk.Advance(time.Second)

	// Churn both kinds of peer out from under the running round: s1 (the
	// exchange in progress) and s2 (still pending in the round snapshot).
	if !f.reps[0].RemovePeer(f.reps[1].Addr()) {
		t.Fatal("s1 was not a peer")
	}
	if !f.reps[0].RemovePeer(f.reps[2].Addr()) {
		t.Fatal("s2 was not a peer")
	}
	f.clk.RunUntilIdle()

	// The snapshot round completed (and may well have delivered the
	// object); the peer set is what matters.
	if got := f.reps[0].Peers(); len(got) != 0 {
		t.Fatalf("s0 peers after removal = %v, want none", got)
	}

	// s0 no longer initiates rounds toward anyone, but s1 and s2 still
	// peer with s0, so their exchanges must converge the object anyway.
	f.assertConverged(t, obj.ID)

	// And the drained system stays drained: a peerless replicator must
	// not keep arming rounds at nobody.
	rounds0 := f.reps[0].Stats().Rounds
	f.reps[0].SyncNow()
	f.clk.RunUntilIdle()
	if got := f.reps[0].Stats().Rounds; got > rounds0+1 {
		t.Fatalf("peerless s0 kept running rounds: %d -> %d", rounds0, got)
	}
}

// TestRemovePeerMidRoundKeepsConvergence is the three-site variant where
// only one link churns: s0 drops s1 mid-round, but s0↔s2 and s1↔s2
// remain, so the triangle still converges through s2.
func TestRemovePeerMidRoundKeepsConvergence(t *testing.T) {
	f := newFixture(t, 3)
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "via-s2"})
	if err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(time.Second) // s0's round in flight against s1
	f.reps[0].RemovePeer(f.reps[1].Addr())
	f.clk.RunUntilIdle()
	f.assertConverged(t, obj.ID)

	// A second write after the churn must also converge — the removed
	// link stays removed, the s2 relay does the work.
	if _, err := f.spaces[0].Update("prinz", obj.ID, obj.Version, map[string]string{"title": "again"}); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	ref := f.assertConverged(t, obj.ID)
	if ref.Fields["title"] != "again" {
		t.Fatalf("converged on %q, want the post-churn update", ref.Fields["title"])
	}
	for _, addr := range f.reps[0].Peers() {
		if addr == f.reps[1].Addr() {
			t.Fatal("removed peer reappeared in s0's sync set")
		}
	}
}
