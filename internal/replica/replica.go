// Package replica makes the information model genuinely multi-site: each
// site hosts its own information.Space replica, and Replicators keep the
// replicas convergent with a push-pull anti-entropy protocol (digest
// exchange → delta pull → apply) run as an rpc service.
//
// Because every exchange is an rpc interrogation, sync traffic traverses
// the engineering channel stack like all other traffic in the repository:
// it is traced, counted in the fabric's per-channel statistics, and
// fault-injectable through channel interceptors. Nothing about
// replication bypasses the engineering viewpoint.
//
// Rounds are idle-aware so a simulation drains to quiescence: a
// replicator goes dormant once a round moves no data and re-arms on local
// writes (via a Space subscription), on SyncNow (e.g. after a partition
// heals), and while rounds keep failing — up to a failure cap, so an
// unreachable peer cannot keep the event loop spinning forever.
//
// In the viewpoint map (ARCHITECTURE.md) this package belongs to the
// information viewpoint — it defines what replica convergence means —
// while borrowing all of its machinery from the engineering viewpoint.
// It is storage-agnostic: digests and deltas come from whatever
// information.Backend the space runs over, so a site recovered from the
// durable logstore re-enters anti-entropy with correct digests and pulls
// only the writes it missed.
package replica

import (
	"sort"
	"sync"
	"time"

	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// RPC method names of the anti-entropy protocol.
const (
	// MethodSync is the digest exchange: the caller sends its digest, the
	// peer answers with its own digest plus every object the caller has
	// not fully seen (the delta pull, folded into the same interrogation).
	MethodSync = "replica.sync"
	// MethodPush delivers objects the caller holds that the peer's digest
	// had not seen — the push half that lets one round converge a pair.
	MethodPush = "replica.push"
)

// Tunables.
const (
	// DefaultInterval separates anti-entropy rounds while armed.
	DefaultInterval = time.Second
	// DefaultSyncTimeout bounds each peer exchange so a dead peer degrades
	// the round instead of stalling it; anti-entropy itself is the retry.
	DefaultSyncTimeout = 800 * time.Millisecond
	// DefaultFailureCap is how many consecutive all-failing rounds a
	// replicator attempts before going dormant until re-armed.
	DefaultFailureCap = 8
)

// wireObject is the JSON form of an information.Object on the sync wire.
// The replica-local Version is not carried: it is recomputed as VV.Sum().
type wireObject struct {
	ID      string            `json:"id"`
	Schema  string            `json:"schema"`
	Owner   string            `json:"owner"`
	Site    string            `json:"site"`
	Fields  map[string]string `json:"fields,omitempty"`
	VV      vclock.Version    `json:"vv"`
	Created int64             `json:"created"`
	Updated int64             `json:"updated"`
}

func toWire(o *information.Object) wireObject {
	return wireObject{
		ID:      o.ID,
		Schema:  o.Schema,
		Owner:   o.Owner,
		Site:    o.Site,
		Fields:  o.Fields,
		VV:      o.VV,
		Created: o.Created.UnixNano(),
		Updated: o.Updated.UnixNano(),
	}
}

func fromWire(w wireObject) *information.Object {
	return &information.Object{
		ID:      w.ID,
		Schema:  w.Schema,
		Owner:   w.Owner,
		Site:    w.Site,
		Fields:  w.Fields,
		Version: w.VV.Sum(),
		VV:      w.VV,
		Created: time.Unix(0, w.Created).UTC(),
		Updated: time.Unix(0, w.Updated).UTC(),
	}
}

type syncReq struct {
	Site   string                    `json:"site"`
	Digest map[string]vclock.Version `json:"digest"`
}

type syncResp struct {
	Digest map[string]vclock.Version `json:"digest"`
	Deltas []wireObject              `json:"deltas,omitempty"`
}

type pushReq struct {
	Site    string       `json:"site"`
	Objects []wireObject `json:"objects"`
}

type pushResp struct {
	Applied   int `json:"applied"`
	Conflicts int `json:"conflicts"`
}

// Stats counts a replicator's activity.
type Stats struct {
	Rounds        int64 // anti-entropy rounds initiated
	PeerSyncs     int64 // successful peer exchanges
	PeerFailures  int64 // peer exchanges that timed out or errored
	Applied       int64 // remote objects merged in by rounds we initiated
	Pushed        int64 // objects pushed to peers
	Conflicts     int64 // concurrent updates this replica resolved
	ServedDigests int64 // replica.sync requests served
	ServedApplied int64 // objects applied on behalf of pushing peers
}

// Option configures a Replicator.
type Option func(*Replicator)

// WithSyncTimeout bounds each peer exchange.
func WithSyncTimeout(d time.Duration) Option {
	return func(r *Replicator) { r.timeout = d }
}

// WithFailureCap sets how many consecutive failing rounds run before the
// replicator goes dormant until re-armed.
func WithFailureCap(n int) Option {
	return func(r *Replicator) { r.failureCap = n }
}

// Replicator binds one Space replica to the network: it serves the
// anti-entropy protocol for peers and initiates its own sync rounds
// against the configured peer set.
type Replicator struct {
	ep      *rpc.Endpoint
	clock   vclock.Clock
	space   *information.Space
	site    string
	timeout time.Duration

	mu             sync.Mutex
	peers          []netsim.Address
	interval       time.Duration
	failureCap     int
	auto           bool
	subscribed     bool
	armed          bool // a round is scheduled
	running        bool // a round is in flight
	wantSync       bool // re-arm requested (write or SyncNow) since round start
	wantNow        bool // the pending request asked for an immediate round
	consecFailures int
	stats          Stats
}

// New binds a replicator to the endpoint, registers the protocol methods,
// and takes the replica's site name from the space.
func New(ep *rpc.Endpoint, clock vclock.Clock, space *information.Space, opts ...Option) *Replicator {
	r := &Replicator{
		ep:         ep,
		clock:      clock,
		space:      space,
		site:       space.Site(),
		timeout:    DefaultSyncTimeout,
		interval:   DefaultInterval,
		failureCap: DefaultFailureCap,
	}
	for _, opt := range opts {
		opt(r)
	}
	r.register()
	return r
}

// Site returns the replica's site name.
func (r *Replicator) Site() string { return r.site }

// Space returns the replica this replicator keeps in sync.
func (r *Replicator) Space() *information.Space { return r.space }

// Addr returns the network address sync traffic originates from.
func (r *Replicator) Addr() netsim.Address { return r.ep.Addr() }

// Stats returns a snapshot of the counters.
func (r *Replicator) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// AddPeer adds a peer replicator's address to the sync set.
func (r *Replicator) AddPeer(addr netsim.Address) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.peers {
		if p == addr {
			return
		}
	}
	r.peers = append(r.peers, addr)
}

// Peers returns the peer set, sorted.
func (r *Replicator) Peers() []netsim.Address {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]netsim.Address(nil), r.peers...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AutoSync arms idle-aware anti-entropy: local writes to the space
// schedule a round interval later, rounds repeat while they move data (or
// keep failing, up to the failure cap), and the replicator goes dormant
// when converged. interval <= 0 keeps the current interval.
func (r *Replicator) AutoSync(interval time.Duration) {
	r.mu.Lock()
	r.auto = true
	if interval > 0 {
		r.interval = interval
	}
	subscribe := !r.subscribed
	r.subscribed = true
	r.mu.Unlock()
	if subscribe {
		r.space.Subscribe("", func(ev information.Event) {
			// Only local writes arm a round: "apply"/"conflict" come from
			// a peer whose own round is already spreading the state, and
			// "share"/"relate" do not change replicated object rows.
			if ev.Kind == "put" || ev.Kind == "update" {
				r.SyncSoon()
			}
		})
	}
}

// SyncSoon requests a round one interval from now (the steady-state write
// coalescing path). Already-scheduled or running rounds absorb the
// request.
func (r *Replicator) SyncSoon() { r.schedule(-1) }

// SyncNow requests a round at the next simulation instant — e.g. right
// after a partition heals.
func (r *Replicator) SyncNow() { r.schedule(0) }

// schedule arms the round timer; d < 0 means one interval. A request
// arriving while a round is armed or in flight is absorbed: roundDone
// re-arms (immediately, if the request was SyncNow).
func (r *Replicator) schedule(d time.Duration) {
	r.mu.Lock()
	r.wantSync = true
	if d == 0 {
		r.wantNow = true
	}
	if r.armed || r.running {
		r.mu.Unlock()
		return
	}
	r.armed = true
	if d < 0 {
		d = r.interval
	}
	r.mu.Unlock()
	r.clock.AfterFunc(d, r.fire)
}

// roundState accumulates one round's outcome across its peer exchanges.
type roundState struct {
	moved    bool // any delta applied or pushed
	failures int  // peers that could not be exchanged with
}

// fire initiates a round. Runs on the clock's event goroutine.
func (r *Replicator) fire() {
	r.mu.Lock()
	r.armed = false
	if r.running {
		r.mu.Unlock()
		return
	}
	r.running = true
	r.wantSync = false
	r.wantNow = false
	r.stats.Rounds++
	peers := append([]netsim.Address(nil), r.peers...)
	r.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	r.syncPeer(peers, 0, roundState{})
}

// syncPeer exchanges with peers[i] and chains to the next peer; exchanges
// run sequentially in sorted order so rounds are deterministic.
func (r *Replicator) syncPeer(peers []netsim.Address, i int, st roundState) {
	if i >= len(peers) {
		r.roundDone(st)
		return
	}
	peer := peers[i]
	next := func(st roundState) { r.syncPeer(peers, i+1, st) }

	r.ep.GoJSON(peer, MethodSync, syncReq{Site: r.site, Digest: r.space.Digest()}, func(res rpc.Result) {
		var resp syncResp
		if err := res.Decode(&resp); err != nil {
			r.bump(func(s *Stats) { s.PeerFailures++ })
			st.failures++
			next(st)
			return
		}
		applied := 0
		for _, w := range resp.Deltas {
			changed, conflict, err := r.space.ApplyRemote(fromWire(w))
			if err != nil {
				continue
			}
			if changed {
				applied++
			}
			if conflict {
				r.bump(func(s *Stats) { s.Conflicts++ })
			}
		}
		r.bump(func(s *Stats) { s.PeerSyncs++; s.Applied += int64(applied) })
		if applied > 0 {
			st.moved = true
		}

		// Push half: everything the peer's digest had not seen — which,
		// after applying its deltas, includes merged conflict resolutions.
		push := r.space.NewerThan(resp.Digest)
		if len(push) == 0 {
			next(st)
			return
		}
		wires := make([]wireObject, len(push))
		for j, obj := range push {
			wires[j] = toWire(obj)
		}
		r.ep.GoJSON(peer, MethodPush, pushReq{Site: r.site, Objects: wires}, func(res rpc.Result) {
			var pr pushResp
			if err := res.Decode(&pr); err != nil {
				r.bump(func(s *Stats) { s.PeerFailures++ })
				st.failures++
			} else {
				r.bump(func(s *Stats) { s.Pushed += int64(len(wires)) })
				// Progress only if the peer actually changed state — it may
				// have received the same objects from another site already.
				if pr.Applied > 0 {
					st.moved = true
				}
			}
			next(st)
		}, rpc.CallTimeout(r.timeout))
	}, rpc.CallTimeout(r.timeout))
}

// roundDone closes a round and decides whether to re-arm: an explicit
// request (write or SyncNow) arrived mid-round — honoured even without
// AutoSync — or, under AutoSync, data moved or the round failed with
// failure budget remaining (so partitions are retried, but not forever).
func (r *Replicator) roundDone(st roundState) {
	r.mu.Lock()
	r.running = false
	if st.failures > 0 {
		r.consecFailures++
	} else {
		r.consecFailures = 0
	}
	rearm := r.wantSync || (r.auto && (st.moved ||
		(st.failures > 0 && r.consecFailures < r.failureCap)))
	now := r.wantNow
	r.mu.Unlock()
	if !rearm {
		return
	}
	if now {
		r.SyncNow()
	} else {
		r.SyncSoon()
	}
}

func (r *Replicator) bump(fn func(*Stats)) {
	r.mu.Lock()
	fn(&r.stats)
	r.mu.Unlock()
}

// register installs the protocol handlers. Both are pure local compute,
// so the synchronous handler form is safe under the simulated clock.
func (r *Replicator) register() {
	r.ep.MustRegister(MethodSync, rpc.HandleJSON(func(_ netsim.Address, req syncReq) (syncResp, error) {
		r.bump(func(s *Stats) { s.ServedDigests++ })
		deltas := r.space.NewerThan(req.Digest)
		resp := syncResp{Digest: r.space.Digest()}
		if len(deltas) > 0 {
			resp.Deltas = make([]wireObject, len(deltas))
			for i, obj := range deltas {
				resp.Deltas[i] = toWire(obj)
			}
		}
		return resp, nil
	}))
	r.ep.MustRegister(MethodPush, rpc.HandleJSON(func(_ netsim.Address, req pushReq) (pushResp, error) {
		var resp pushResp
		for _, w := range req.Objects {
			changed, conflict, err := r.space.ApplyRemote(fromWire(w))
			if err != nil {
				continue
			}
			if changed {
				resp.Applied++
			}
			if conflict {
				resp.Conflicts++
			}
		}
		r.bump(func(s *Stats) {
			s.ServedApplied += int64(resp.Applied)
			s.Conflicts += int64(resp.Conflicts)
		})
		return resp, nil
	}))
}
