// Package replica makes the information model genuinely multi-site: each
// site hosts its own information.Space replica, and Replicators keep the
// replicas convergent with a push-pull anti-entropy protocol run as an
// rpc service.
//
// Digest exchange is a Merkle negotiation, not a full-digest ship: each
// round opens with a root-hash compare over the space's incremental
// digest tree (information.DigestTree) plus per-site high-water marks.
// A converged pair exchanges one tiny message; a divergent pair first
// repairs whatever the high-water marks explain (the single-writer fast
// path), then descends only the mismatched subtrees and exchanges
// id→version-vector digests for the divergent leaves alone — so digest
// bytes are O(1) when converged and O(log n · changed) when not, instead
// of O(n) every round. A peer that does not speak the negotiation (old
// binary, or one built WithFullDigest) is detected on the first round
// and served through the original full-digest exchange, which remains
// the wire-compatible fallback.
//
// Because every exchange is an rpc interrogation, sync traffic traverses
// the engineering channel stack like all other traffic in the repository:
// it is traced, counted in the fabric's per-channel statistics, and
// fault-injectable through channel interceptors. Nothing about
// replication bypasses the engineering viewpoint.
//
// Rounds are idle-aware so a simulation drains to quiescence: a
// replicator goes dormant once a round moves no data and re-arms on local
// writes (via a Space subscription), on SyncNow (e.g. after a partition
// heals), and while rounds keep failing — up to a failure cap, so an
// unreachable peer cannot keep the event loop spinning forever.
//
// In the viewpoint map (ARCHITECTURE.md) this package belongs to the
// information viewpoint — it defines what replica convergence means —
// while borrowing all of its machinery from the engineering viewpoint.
// It is storage-agnostic: digests and deltas come from whatever
// information.Backend the space runs over, so a site recovered from the
// durable logstore re-enters anti-entropy with correct digests and pulls
// only the writes it missed.
package replica

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/placement"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// RPC method names of the anti-entropy protocol.
const (
	// MethodSync is the digest exchange: the caller sends its digest, the
	// peer answers with its own digest plus every object the caller has
	// not fully seen (the delta pull, folded into the same interrogation).
	// With a Scope, both digests cover only the named Merkle leaf buckets
	// — the final, narrow step of a digest negotiation; without one it is
	// the legacy full-digest exchange.
	MethodSync = "replica.sync"
	// MethodPush delivers objects the caller holds that the peer's digest
	// had not seen — the push half that lets one round converge a pair.
	MethodPush = "replica.push"
	// MethodDigest is the Merkle negotiation: the caller offers tree-node
	// frames (root first), the peer answers with the children of every
	// frame that mismatches its own tree — plus, on the opening frame,
	// its high-water marks and the rows the caller's marks prove missing.
	MethodDigest = "replica.digest"
)

// Tunables.
const (
	// DefaultInterval separates anti-entropy rounds while armed.
	DefaultInterval = time.Second
	// DefaultSyncTimeout bounds each peer exchange so a dead peer degrades
	// the round instead of stalling it; anti-entropy itself is the retry.
	DefaultSyncTimeout = 800 * time.Millisecond
	// DefaultFailureCap is how many consecutive all-failing rounds a
	// replicator attempts before going dormant until re-armed.
	DefaultFailureCap = 8
)

// wireObject is the JSON form of an information.Object on the sync wire
// (shared with the placement remote-read protocol).
type wireObject = information.WireObject

func toWire(o *information.Object) wireObject   { return information.ToWire(o) }
func fromWire(w wireObject) *information.Object { return information.FromWire(w) }

type syncReq struct {
	Site   string                    `json:"site"`
	Digest map[string]vclock.Version `json:"digest"`
	// Scope restricts the exchange to the named Merkle leaf buckets: the
	// digest covers only rows filed under them and the responder answers
	// with its own scoped digest and deltas. Empty means the legacy
	// full-digest exchange over the whole id space.
	Scope []uint32 `json:"scope,omitempty"`
}

type syncResp struct {
	// Site names the responding replica, so the caller can filter its
	// push half by the responder's placement interest set.
	Site   string                    `json:"site"`
	Digest map[string]vclock.Version `json:"digest"`
	Deltas []wireObject              `json:"deltas,omitempty"`
}

// wireRelation is one relationship edge on the wire. Migration pushes
// carry the edges touching the migrated rows, so a de-placed replica's
// share of the relationship graph moves with its rows.
type wireRelation struct {
	From string `json:"from"`
	Kind string `json:"kind"`
	To   string `json:"to"`
}

type pushReq struct {
	Site    string       `json:"site"`
	Objects []wireObject `json:"objects"`
	// Relations rides along on migration pushes only; ordinary sync
	// pushes leave it empty.
	Relations []wireRelation `json:"relations,omitempty"`
}

// digestReq opens or continues a Merkle digest negotiation. Frames is a
// wire.AppendTreeFrames encoding of the caller's tree nodes at the
// current frontier (the root on the opening call). HW carries the
// caller's per-site high-water marks on the opening call only.
type digestReq struct {
	Site   string `json:"site"`
	Frames []byte `json:"frames"`
	// HW is present (possibly empty, but non-nil) exactly on the opening
	// call — deliberately NOT omitempty, because an empty-replica caller
	// sends an empty map and still needs the responder's marks and
	// fast-path deltas (the bulk late-join repair). A nil HW marks a
	// follow-up step (verify/descent).
	HW map[string]uint64 `json:"hw"`
}

// digestResp answers a negotiation step: Match reports that every
// offered frame agreed; otherwise Frames carries the responder's
// children of each mismatched internal node. On the opening call the
// responder also returns its high-water marks and — when the roots
// differ — the rows the caller's marks prove it has never seen (the
// fast-path delta, placement-scoped like any other delta).
type digestResp struct {
	Site   string            `json:"site"`
	Match  bool              `json:"match"`
	Frames []byte            `json:"frames,omitempty"`
	HW     map[string]uint64 `json:"hw,omitempty"`
	Deltas []wireObject      `json:"deltas,omitempty"`
}

type pushResp struct {
	Applied   int `json:"applied"`
	Conflicts int `json:"conflicts"`
	// Refused lists object ids the receiver did not accept (not placed
	// there, or the apply failed). A migrating pusher must keep its copy
	// of these rows.
	Refused []string `json:"refused,omitempty"`
}

// Stats counts a replicator's activity. The digest/delta counters make
// the cost of every round — and the savings of partial replication —
// observable without packet inspection: FilteredDeltas/FilteredPushes
// count objects placement withheld from peers, RefusedApplies counts
// objects peers offered that this site is not placed for.
type Stats struct {
	Rounds        int64 // anti-entropy rounds initiated
	PeerSyncs     int64 // successful peer exchanges
	PeerFailures  int64 // peer exchanges that timed out or errored
	Applied       int64 // remote objects merged in by rounds we initiated
	Pushed        int64 // objects pushed to peers
	Conflicts     int64 // concurrent updates this replica resolved
	ServedDigests int64 // replica.sync requests served
	ServedApplied int64 // objects applied on behalf of pushing peers

	DigestEntriesSent int64 // digest entries shipped in sync requests
	DeltasServed      int64 // objects shipped in sync responses
	FilteredDeltas    int64 // delta objects withheld from peers by placement
	FilteredPushes    int64 // push objects withheld from peers by placement
	RefusedApplies    int64 // offered objects this site is not placed for
	Migrated          int64 // rows pushed off this replica by migration
	Evicted           int64 // rows dropped locally after migration

	// Merkle negotiation counters. DigestBytes is the digest payload cost
	// this replicator initiated, both directions: tree frames, high-water
	// maps and id→version-vector entries (full or scoped) — data deltas
	// and pushes are not digest bytes. ConvergedRoots counts opening root
	// compares that matched outright (the O(1) converged round).
	MerkleExchanges int64 // peer exchanges that ran the digest negotiation
	LegacyExchanges int64 // peer exchanges that used the full-digest path
	ConvergedRoots  int64 // opening root compares that matched
	DescentCalls    int64 // subtree-descent negotiation steps sent
	HWFastDeltas    int64 // rows repaired straight off the high-water marks
	DigestBytes     int64 // digest payload bytes exchanged (sent + received)
	// ScopeFiltered is a gauge, not a counter: the rows placement is
	// currently keeping out of the cached per-peer digest trees (summed
	// over peers), recomputed at each Stats snapshot.
	ScopeFiltered int64
	// ScopedTrees is a gauge: how many per-site scoped digest trees are
	// cached right now — bounded by the peer set plus a little slack.
	ScopedTrees int

	// Per-round observability: the last completed round's digest size and
	// data movement (sum over its peer exchanges).
	LastRoundDigestEntries int
	LastRoundDigestBytes   int
	LastRoundDescentDepth  int
	LastRoundDeltas        int
	LastRoundPushed        int
}

// Option configures a Replicator.
type Option func(*Replicator)

// WithSyncTimeout bounds each peer exchange.
func WithSyncTimeout(d time.Duration) Option {
	return func(r *Replicator) { r.timeout = d }
}

// WithFailureCap sets how many consecutive failing rounds run before the
// replicator goes dormant until re-armed.
func WithFailureCap(n int) Option {
	return func(r *Replicator) { r.failureCap = n }
}

// WithPlacement installs the placement policy that scopes this replica's
// sync traffic: deltas and pushes toward a peer are filtered to the
// objects the peer's site is placed for, and applies of objects this
// site is not placed for are refused. A nil policy (the default) means
// full replication.
func WithPlacement(p *placement.Policy) Option {
	return func(r *Replicator) { r.policy = p }
}

// WithTelemetry attaches the deployment telemetry plane: every sync
// round runs under its own root span whose context rides the digest,
// push and descent rpcs, and each delta that changes local state emits
// a sync.apply span under the originating write's trace (looked up by
// object id in the shared tag table) — the hop that lets one trace run
// from a put at site A to the replica apply at site B.
func WithTelemetry(tel *observe.Telemetry) Option {
	return func(r *Replicator) {
		if tel != nil {
			r.tracer = tel.Tracer
			r.objects = tel.Objects
		}
	}
}

// WithFullDigest disables the Merkle digest negotiation entirely: the
// replicator neither initiates it nor serves MethodDigest, behaving like
// a pre-negotiation binary. Peers detect the missing method on their
// first round and fall back to the full-digest exchange — this option
// exists for that compatibility path (and for measuring the negotiation
// against the O(n) baseline it replaces).
func WithFullDigest() Option {
	return func(r *Replicator) { r.fullDigest = true }
}

// peer is one sync partner: its address plus (when known) its site name,
// which is what placement filters the push half by.
type peer struct {
	addr netsim.Address
	site string
}

// scopedTree caches a placement-scoped digest tree toward one peer site,
// tagged with the full tree's generation and the policy version it was
// current under. Entries are built by one full-store scan in treeFor and
// then kept current incrementally: every commit fans into them through
// maintainScoped, so the generation stamp advances with the full tree
// and the scan never repeats while the entry lives. A policy change
// (policy version) still discards the entry wholesale — placement rules
// can re-scope arbitrary subsets, which only a rescan can recover.
type scopedTree struct {
	tree      *information.DigestTree
	gen       uint64
	policyVer uint64
	excluded  int64 // rows placement is currently keeping out of this tree
}

// Replicator binds one Space replica to the network: it serves the
// anti-entropy protocol for peers and initiates its own sync rounds
// against the configured peer set.
type Replicator struct {
	ep         *rpc.Endpoint
	clock      vclock.Clock
	space      *information.Space
	site       string
	timeout    time.Duration
	policy     *placement.Policy
	fullDigest bool
	tracer     *observe.Tracer
	objects    *observe.ObjectTraces

	onRoundFail func() // membership-layer hook: a sync round saw peer failures

	mu             sync.Mutex
	peers          []peer
	legacyPeers    map[netsim.Address]bool // peers that don't serve MethodDigest
	scoped         map[string]scopedTree   // per-peer-site placement-scoped trees
	commitEvents   uint64                  // row-changing space events seen by maintainScoped
	interval       time.Duration
	failureCap     int
	auto           bool
	subscribed     bool
	armed          bool // a round is scheduled
	running        bool // a round is in flight
	wantSync       bool // re-arm requested (write or SyncNow) since round start
	wantNow        bool // the pending request asked for an immediate round
	consecFailures int
	stats          Stats
}

// New binds a replicator to the endpoint, registers the protocol methods,
// and takes the replica's site name from the space.
func New(ep *rpc.Endpoint, clock vclock.Clock, space *information.Space, opts ...Option) *Replicator {
	r := &Replicator{
		ep:          ep,
		clock:       clock,
		space:       space,
		site:        space.Site(),
		timeout:     DefaultSyncTimeout,
		interval:    DefaultInterval,
		failureCap:  DefaultFailureCap,
		legacyPeers: make(map[netsim.Address]bool),
		scoped:      make(map[string]scopedTree),
	}
	for _, opt := range opts {
		opt(r)
	}
	if r.policy != nil {
		// Keep the per-peer scoped trees current from the commit path:
		// space callbacks run synchronously on the mutating goroutine,
		// after the full tree has absorbed the commit.
		r.space.Subscribe("", r.maintainScoped)
	}
	r.register()
	return r
}

// OnRoundFailure installs a callback fired after any sync round that hit
// peer failures. The gossip overlay hooks it to re-probe its views: a
// partition is invisible to a dormant membership layer, but the sync
// layer trips over it immediately.
func (r *Replicator) OnRoundFailure(fn func()) {
	r.mu.Lock()
	r.onRoundFail = fn
	r.mu.Unlock()
}

// Site returns the replica's site name.
func (r *Replicator) Site() string { return r.site }

// Space returns the replica this replicator keeps in sync.
func (r *Replicator) Space() *information.Space { return r.space }

// Addr returns the network address sync traffic originates from.
func (r *Replicator) Addr() netsim.Address { return r.ep.Addr() }

// Stats returns a snapshot of the counters. ScopeFiltered is computed
// here as a gauge over the cached per-peer trees.
func (r *Replicator) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.stats
	out.ScopeFiltered = 0
	for _, c := range r.scoped {
		out.ScopeFiltered += c.excluded
	}
	out.ScopedTrees = len(r.scoped)
	return out
}

// AddPeer adds a peer replicator's address to the sync set with no site
// name: placement cannot scope the push half toward it (everything is
// offered), and its digest requests arrive with its own site name anyway.
// Prefer AddPeerNamed where the site is known.
func (r *Replicator) AddPeer(addr netsim.Address) { r.AddPeerNamed("", addr) }

// AddPeerNamed adds a peer replicator with its site name, enabling
// placement-scoped pushes and targeted migration toward it.
func (r *Replicator) AddPeerNamed(site string, addr netsim.Address) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, p := range r.peers {
		if p.addr == addr {
			if p.site == "" && site != "" {
				r.peers[i].site = site
			}
			return
		}
	}
	r.peers = append(r.peers, peer{addr: addr, site: site})
}

// RemovePeer drops a peer from the sync set — view churn under the
// gossip overlay, or an operator retiring a site. The peer's cached
// placement-scoped digest tree is released with it (unless another peer
// still shares the site), so the per-peer tree cache is bounded by the
// live peer set instead of growing with every site ever seen. Reports
// whether the address was a peer.
func (r *Replicator) RemovePeer(addr netsim.Address) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := -1
	for i, p := range r.peers {
		if p.addr == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	site := r.peers[idx].site
	r.peers = append(r.peers[:idx], r.peers[idx+1:]...)
	delete(r.legacyPeers, addr)
	if site != "" && !r.peerSiteLocked(site) {
		delete(r.scoped, site)
	}
	return true
}

// tagPeerSite records a site name learned mid-exchange for a peer that
// is still in the sync set. Unlike AddPeerNamed it never inserts: a
// reply that outlives a concurrent RemovePeer must not undo the removal.
func (r *Replicator) tagPeerSite(addr netsim.Address, site string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, p := range r.peers {
		if p.addr == addr {
			if p.site == "" {
				r.peers[i].site = site
			}
			return
		}
	}
}

// peerSiteLocked reports whether any current peer carries the site name.
func (r *Replicator) peerSiteLocked(site string) bool {
	for _, p := range r.peers {
		if p.site == site {
			return true
		}
	}
	return false
}

// Peers returns the peer addresses, sorted.
func (r *Replicator) Peers() []netsim.Address {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]netsim.Address, len(r.peers))
	for i, p := range r.peers {
		out[i] = p.addr
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// placedAt reports whether placement allows the object at the site. A nil
// policy or an unknown site ("" — an untagged peer) admits everything:
// filtering is an optimisation, never a correctness gate for untagged
// peers, while the receiving side still refuses objects it is not placed
// for.
func (r *Replicator) placedAt(site string, o *information.Object) bool {
	if r.policy == nil || site == "" {
		return true
	}
	return r.policy.PlacedAt(site, placement.Describe(o))
}

// maintainScoped fans one committed row into every cached per-peer
// scoped tree, replacing the full-store rescan treeFor used to pay on
// the round after any commit. The callback runs synchronously on the
// mutating goroutine after the full tree absorbed the commit, so
// stamping entries with the full tree's current generation keeps
// treeFor's cache check passing: once writes quiesce, every commit's
// callback has run and the cached trees match a fresh scoped build
// exactly. A row whose new fields move it out of the peer's placement is
// removed from that peer's tree — placement is re-evaluated per commit,
// not only at build time.
func (r *Replicator) maintainScoped(ev information.Event) {
	switch ev.Kind {
	case "put", "update", "apply", "conflict", "evict":
	default:
		return // "share"/"relate" do not change replicated object rows
	}
	full := r.space.Tree()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.commitEvents++ // invalidates any treeFor scan in flight
	if len(r.scoped) == 0 {
		return
	}
	gen, pv := full.Generation(), r.policy.Version()
	for site, c := range r.scoped {
		if c.policyVer != pv {
			delete(r.scoped, site) // policy changed under the entry; rescan
			continue
		}
		if ev.Kind == "evict" || !r.placedAt(site, ev.Object) {
			c.tree.Remove(ev.Object.ID)
		} else {
			c.tree.Update(ev.Object.ID, ev.Object.VV)
		}
		c.gen = gen
		c.excluded = int64(full.Count() - c.tree.Count())
		r.scoped[site] = c
	}
}

// AutoSync arms idle-aware anti-entropy: local writes to the space
// schedule a round interval later, rounds repeat while they move data (or
// keep failing, up to the failure cap), and the replicator goes dormant
// when converged. interval <= 0 keeps the current interval.
func (r *Replicator) AutoSync(interval time.Duration) {
	r.mu.Lock()
	r.auto = true
	if interval > 0 {
		r.interval = interval
	}
	subscribe := !r.subscribed
	r.subscribed = true
	r.mu.Unlock()
	if subscribe {
		r.space.Subscribe("", func(ev information.Event) {
			// Only local writes arm a round: "apply"/"conflict" come from
			// a peer whose own round is already spreading the state, and
			// "share"/"relate" do not change replicated object rows.
			if ev.Kind == "put" || ev.Kind == "update" {
				r.SyncSoon()
			}
		})
	}
}

// SyncSoon requests a round one interval from now (the steady-state write
// coalescing path). Already-scheduled or running rounds absorb the
// request.
func (r *Replicator) SyncSoon() { r.schedule(-1) }

// SyncNow requests a round at the next simulation instant — e.g. right
// after a partition heals.
func (r *Replicator) SyncNow() { r.schedule(0) }

// schedule arms the round timer; d < 0 means one interval. A request
// arriving while a round is armed or in flight is absorbed: roundDone
// re-arms (immediately, if the request was SyncNow).
func (r *Replicator) schedule(d time.Duration) {
	r.mu.Lock()
	r.wantSync = true
	if d == 0 {
		r.wantNow = true
	}
	if r.armed || r.running {
		r.mu.Unlock()
		return
	}
	r.armed = true
	if d < 0 {
		d = r.interval
	}
	r.mu.Unlock()
	r.clock.AfterFunc(d, r.fire)
}

// roundState accumulates one round's outcome across its peer exchanges.
type roundState struct {
	moved         bool // any delta applied or pushed
	failures      int  // peers that could not be exchanged with
	digestEntries int  // digest entries shipped across the round's requests
	digestBytes   int  // digest payload bytes exchanged across the round
	descentDepth  int  // deepest subtree descent any peer exchange needed
	applied       int  // deltas merged in across the round
	pushed        int  // objects pushed across the round

	// Round tracing: span is the round's root span (inactive when the
	// tracer is off) and trace its context, stamped on every rpc the
	// round issues. roundState copies share the same recorded span; only
	// roundDone ends it.
	span  observe.ActiveSpan
	trace wire.TraceContext
}

// fire initiates a round. Runs on the clock's event goroutine.
func (r *Replicator) fire() {
	r.mu.Lock()
	r.armed = false
	if r.running {
		r.mu.Unlock()
		return
	}
	r.running = true
	r.wantSync = false
	r.wantNow = false
	r.stats.Rounds++
	peers := append([]peer(nil), r.peers...)
	r.mu.Unlock()
	sort.Slice(peers, func(i, j int) bool { return peers[i].addr < peers[j].addr })
	var st roundState
	if r.tracer.On() {
		st.span = r.tracer.StartRoot("sync.round", r.site)
		st.trace = st.span.Context()
	}
	r.syncPeer(peers, 0, st)
}

// syncPeer exchanges with peers[i] and chains to the next peer; exchanges
// run sequentially in sorted order so rounds are deterministic. The
// Merkle negotiation is the default; peers known not to serve it (and
// replicators built WithFullDigest) take the legacy full-digest path.
func (r *Replicator) syncPeer(peers []peer, i int, st roundState) {
	if i >= len(peers) {
		r.roundDone(st)
		return
	}
	p := peers[i]
	next := func(st roundState) { r.syncPeer(peers, i+1, st) }
	r.mu.Lock()
	legacy := r.fullDigest || r.legacyPeers[p.addr]
	r.mu.Unlock()
	if legacy {
		r.legacySync(p, st, next)
		return
	}
	(&merkleExchange{r: r, p: p, st: st, next: next}).open()
}

// legacySync is the original full-digest exchange: ship the whole
// id→version-vector digest, pull deltas, push what the peer's digest had
// not seen. It remains the path peers without MethodDigest converge by.
func (r *Replicator) legacySync(p peer, st roundState, next func(roundState)) {
	r.bump(func(s *Stats) { s.LegacyExchanges++ })
	digest := r.space.Digest()
	st.digestEntries += len(digest)
	st.digestBytes += digestMapBytes(digest)
	r.bump(func(s *Stats) {
		s.DigestEntriesSent += int64(len(digest))
		s.DigestBytes += int64(digestMapBytes(digest))
	})
	r.ep.GoJSON(p.addr, MethodSync, syncReq{Site: r.site, Digest: digest}, func(res rpc.Result) {
		var resp syncResp
		if err := res.Decode(&resp); err != nil {
			r.bump(func(s *Stats) { s.PeerFailures++ })
			st.failures++
			next(st)
			return
		}
		st.digestBytes += digestMapBytes(resp.Digest)
		r.bump(func(s *Stats) { s.DigestBytes += int64(digestMapBytes(resp.Digest)) })
		applied := r.applyDeltas(resp.Deltas)
		r.bump(func(s *Stats) { s.PeerSyncs++; s.Applied += int64(applied) })
		st.applied += applied
		if applied > 0 {
			st.moved = true
		}

		// Push half: everything the peer's digest had not seen — which,
		// after applying its deltas, includes merged conflict resolutions —
		// scoped to the peer's placement interest set.
		peerSite := resp.Site
		if peerSite == "" {
			peerSite = p.site
		}
		push := r.space.NewerThan(resp.Digest)
		if r.policy != nil {
			kept := push[:0]
			for _, obj := range push {
				if r.placedAt(peerSite, obj) {
					kept = append(kept, obj)
				}
			}
			if filtered := len(push) - len(kept); filtered > 0 {
				r.bump(func(s *Stats) { s.FilteredPushes += int64(filtered) })
			}
			push = kept
		}
		if len(push) == 0 {
			next(st)
			return
		}
		wires := make([]wireObject, len(push))
		for j, obj := range push {
			wires[j] = toWire(obj)
		}
		r.ep.GoJSON(p.addr, MethodPush, pushReq{Site: r.site, Objects: wires}, func(res rpc.Result) {
			var pr pushResp
			if err := res.Decode(&pr); err != nil {
				r.bump(func(s *Stats) { s.PeerFailures++ })
				st.failures++
			} else {
				r.bump(func(s *Stats) { s.Pushed += int64(len(wires)) })
				st.pushed += len(wires)
				// Progress only if the peer actually changed state — it may
				// have received the same objects from another site already.
				if pr.Applied > 0 {
					st.moved = true
				}
			}
			next(st)
		}, rpc.CallTimeout(r.timeout), rpc.CallTrace(st.trace))
	}, rpc.CallTimeout(r.timeout), rpc.CallTrace(st.trace))
}

// roundDone closes a round and decides whether to re-arm: an explicit
// request (write or SyncNow) arrived mid-round — honoured even without
// AutoSync — or, under AutoSync, data moved or the round failed with
// failure budget remaining (so partitions are retried, but not forever).
func (r *Replicator) roundDone(st roundState) {
	if st.span.Active() {
		st.span.SetAttr("applied", strconv.Itoa(st.applied))
		st.span.SetAttr("pushed", strconv.Itoa(st.pushed))
		if st.failures > 0 {
			st.span.EndStatus("failures")
		} else {
			st.span.End()
		}
	}
	r.mu.Lock()
	r.running = false
	r.stats.LastRoundDigestEntries = st.digestEntries
	r.stats.LastRoundDigestBytes = st.digestBytes
	r.stats.LastRoundDescentDepth = st.descentDepth
	r.stats.LastRoundDeltas = st.applied
	r.stats.LastRoundPushed = st.pushed
	if st.failures > 0 {
		r.consecFailures++
	} else {
		r.consecFailures = 0
	}
	rearm := r.wantSync || (r.auto && (st.moved ||
		(st.failures > 0 && r.consecFailures < r.failureCap)))
	now := r.wantNow
	onFail := r.onRoundFail
	r.mu.Unlock()
	if st.failures > 0 && onFail != nil {
		onFail()
	}
	if !rearm {
		return
	}
	if now {
		r.SyncNow()
	} else {
		r.SyncSoon()
	}
}

func (r *Replicator) bump(fn func(*Stats)) {
	r.mu.Lock()
	fn(&r.stats)
	r.mu.Unlock()
}

// applyDeltas merges peer-supplied rows into the local replica, refusing
// rows this site is not placed for; returns how many changed local state.
func (r *Replicator) applyDeltas(deltas []wireObject) (applied int) {
	for _, w := range deltas {
		obj := fromWire(w)
		if !r.placedAt(r.site, obj) {
			// The peer offered an object of a space this site is no
			// longer placed in (e.g. de-placed mid-sync).
			r.bump(func(s *Stats) { s.RefusedApplies++ })
			continue
		}
		changed, conflict, err := r.space.ApplyRemote(obj)
		if err != nil {
			continue
		}
		if changed {
			applied++
			// Anti-entropy delivery closes the causal chain: the apply is
			// a span of the trace that wrote the object, not of the sync
			// round that happened to carry it.
			if r.tracer.On() {
				if parent, ok := r.objects.Lookup(obj.ID); ok {
					r.tracer.Event("sync.apply", r.site, parent, "",
						observe.Attr{Key: "object", Value: obj.ID})
				}
			}
		}
		if conflict {
			r.bump(func(s *Stats) { s.Conflicts++ })
		}
	}
	return applied
}

// --- gossip-overlay surface ------------------------------------------------
//
// These three methods plus SyncSoon are what internal/gossip's Replica
// interface needs: rumor staleness checks and the pull half of rumor
// mongering. They keep gossip decoupled from this package — the overlay
// sees an interface, the deployment hands it a *Replicator.

// HasSeen reports whether the local replica already holds id at a
// version dominating vv — a rumor for it carries no news.
func (r *Replicator) HasSeen(id string, vv vclock.Version) bool {
	obj, ok := r.space.Fetch(id)
	return ok && obj.VV.Dominates(vv)
}

// FetchWire returns the named rows in wire form, placement-scoped to the
// requesting site like any other delta.
func (r *Replicator) FetchWire(forSite string, ids []string) []information.WireObject {
	var out []information.WireObject
	for _, id := range ids {
		if obj, ok := r.space.Fetch(id); ok && r.placedAt(forSite, obj) {
			out = append(out, toWire(obj))
		}
	}
	return out
}

// ApplyWire merges rumor-fetched rows through the ordinary delta-apply
// path (placement refusals, conflict resolution, stats), returning how
// many changed local state.
func (r *Replicator) ApplyWire(objs []information.WireObject) int {
	applied := r.applyDeltas(objs)
	r.bump(func(s *Stats) { s.Applied += int64(applied) })
	return applied
}

// treeFor returns the digest tree this replicator compares with the
// named peer site: the space's own incremental tree when placement is
// non-selective (or the peer is untagged), otherwise a cached tree
// scoped to the rows placed at that site — the per-peer view that lets
// partially-replicated pairs compare equal once converged. An entry is
// built by one full-store scan and thereafter maintained incrementally
// from the commit path (maintainScoped), so steady writes cost O(1) per
// peer per commit instead of an O(rows) rescan per changed round. The
// scan itself is guarded by the commit-event counter: if a commit lands
// while the scan runs, the result may miss it, so it is returned for
// this round but not cached — the next call rebuilds from a consistent
// view. A policy change (version bump) always forces a rescan.
func (r *Replicator) treeFor(site string) *information.DigestTree {
	full := r.space.Tree()
	if r.policy == nil || site == "" || !r.policy.Selective() {
		return full
	}
	gen, pv := full.Generation(), r.policy.Version()
	r.mu.Lock()
	if c, ok := r.scoped[site]; ok && c.gen == gen && c.policyVer == pv {
		r.mu.Unlock()
		return c.tree
	}
	ev0 := r.commitEvents
	r.mu.Unlock()
	t := information.NewDigestTree()
	excluded := int64(0)
	r.space.Range(func(o *information.Object) bool {
		if r.policy.PlacedAt(site, placement.Describe(o)) {
			t.Update(o.ID, o.VV)
		} else {
			excluded++
		}
		return true
	})
	r.mu.Lock()
	if r.commitEvents == ev0 && r.mayCacheScopedLocked(site) {
		// No commit raced the scan: the entry is complete, and from here
		// maintainScoped keeps it current — this site never rescans
		// again until the placement policy changes.
		r.scoped[site] = scopedTree{tree: t, gen: gen, policyVer: pv, excluded: excluded}
	}
	r.mu.Unlock()
	return t
}

// scopedSlack is how many scoped trees beyond the peer set the cache
// admits — callers serving digests for sites that are not (yet) peers.
const scopedSlack = 4

// mayCacheScopedLocked bounds the scoped-tree cache: peer sites always
// cache (RemovePeer releases them on churn); non-peer callers — arbitrary
// sites whose digest requests we serve — only while the cache stays
// within the peer count plus a little slack. Past that, a stranger's
// request is served from an uncached scan rather than growing the cache
// (and the per-commit maintainScoped fan-in) without bound.
func (r *Replicator) mayCacheScopedLocked(site string) bool {
	if r.peerSiteLocked(site) {
		return true
	}
	return len(r.scoped) < len(r.peers)+scopedSlack
}

// newerThanHW resolves the tree's past-high-water ids to placement-scoped
// rows — what a replica with those marks has certainly never seen.
func (r *Replicator) newerThanHW(tree *information.DigestTree, hw map[string]uint64, peerSite string) []*information.Object {
	var out []*information.Object
	for _, id := range tree.NewerThanHW(hw) {
		obj, ok := r.space.Fetch(id)
		if !ok || !r.placedAt(peerSite, obj) {
			continue
		}
		out = append(out, obj)
	}
	return out
}

// The digest-byte counters measure the canonical binary size of digest
// payloads (tree frames, high-water maps, id→version-vector entries) —
// a codec-independent yardstick for comparing digest schemes. Data
// deltas and pushes are never digest bytes.

func vvBytes(vv vclock.Version) int {
	n := 8
	for s := range vv {
		n += len(s) + 12
	}
	return n
}

func digestMapBytes(d map[string]vclock.Version) int {
	n := 8
	//lint:allow determinism commutative byte-sum; the total is identical under any iteration order
	for id, vv := range d {
		n += len(id) + 4 + vvBytes(vv)
	}
	return n
}

func hwBytes(hw map[string]uint64) int {
	n := 8
	for s := range hw {
		n += len(s) + 12
	}
	return n
}

// isNoSuchMethod detects the fallback signal: the peer's endpoint does
// not register MethodDigest, so it predates the Merkle negotiation.
func isNoSuchMethod(err error) bool {
	var re *rpc.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "no such method")
}

// --- Merkle digest negotiation (caller side) -------------------------------

// merkleExchange drives one peer exchange through the digest
// negotiation: root compare (+ high-water fast path) → optional verify →
// subtree descent → scoped digest exchange over the divergent leaves.
type merkleExchange struct {
	r         *Replicator
	p         peer
	st        roundState
	next      func(roundState)
	depth     int      // descent steps taken
	divergent []uint32 // divergent leaf buckets found
}

func (m *merkleExchange) fail() {
	m.r.bump(func(s *Stats) { s.PeerFailures++ })
	m.st.failures++
	m.next(m.st)
}

func (m *merkleExchange) finish(synced bool) {
	if synced {
		m.r.bump(func(s *Stats) { s.PeerSyncs++ })
	}
	m.next(m.st)
}

// count records digest payload bytes for this exchange, both directions.
func (m *merkleExchange) count(n int) {
	m.st.digestBytes += n
	m.r.bump(func(s *Stats) { s.DigestBytes += int64(n) })
}

// open sends the root frame plus high-water marks. A matching root ends
// the exchange at one tiny message pair — the converged steady state.
func (m *merkleExchange) open() {
	r := m.r
	r.bump(func(s *Stats) { s.MerkleExchanges++ })
	tree := r.treeFor(m.p.site)
	frames := wire.AppendTreeFrames(nil, []wire.TreeFrame{{Path: wire.PackTreePath(0, 0), Hash: tree.Root()}})
	hw := tree.HighWater()
	m.count(len(frames) + hwBytes(hw))
	r.ep.GoJSON(m.p.addr, MethodDigest, digestReq{Site: r.site, Frames: frames, HW: hw}, func(res rpc.Result) {
		var resp digestResp
		if err := res.Decode(&resp); err != nil {
			if isNoSuchMethod(err) {
				// The peer predates the negotiation: remember that and
				// converge via the full-digest path, now and from then on.
				r.mu.Lock()
				r.legacyPeers[m.p.addr] = true
				r.mu.Unlock()
				r.legacySync(m.p, m.st, m.next)
				return
			}
			m.fail()
			return
		}
		m.count(len(resp.Frames) + hwBytes(resp.HW))
		if m.p.site == "" && resp.Site != "" {
			// An untagged peer introduced itself: future rounds can scope
			// placement (and trees) by its site. Tag-only — inserting here
			// would resurrect a peer RemovePeer dropped while this reply
			// was in flight.
			r.tagPeerSite(m.p.addr, resp.Site)
			m.p.site = resp.Site
		}
		if resp.Match {
			r.bump(func(s *Stats) { s.ConvergedRoots++ })
			m.finish(true)
			return
		}
		// High-water fast path: merge the rows the peer's marks prove we
		// lack, push the rows our marks prove it lacks.
		applied := r.applyDeltas(resp.Deltas)
		if applied > 0 {
			m.st.moved = true
			m.st.applied += applied
			r.bump(func(s *Stats) { s.HWFastDeltas += int64(applied); s.Applied += int64(applied) })
		}
		peerSite := resp.Site
		if peerSite == "" {
			peerSite = m.p.site
		}
		push := r.newerThanHW(tree, resp.HW, peerSite)
		if len(push) == 0 {
			if applied > 0 {
				// State moved: one cheap root recompare before descending.
				m.verify()
			} else {
				// Nothing the marks explain: descend from the root's
				// children the mismatch response already carried.
				m.descend(resp.Frames)
			}
			return
		}
		wires := make([]wireObject, len(push))
		for i, obj := range push {
			wires[i] = toWire(obj)
		}
		r.ep.GoJSON(m.p.addr, MethodPush, pushReq{Site: r.site, Objects: wires}, func(res rpc.Result) {
			var pr pushResp
			if err := res.Decode(&pr); err != nil {
				m.fail()
				return
			}
			r.bump(func(s *Stats) { s.Pushed += int64(len(wires)) })
			m.st.pushed += len(wires)
			if pr.Applied > 0 {
				m.st.moved = true
			}
			m.verify()
		}, rpc.CallTimeout(r.timeout), rpc.CallTrace(m.st.trace))
	}, rpc.CallTimeout(r.timeout), rpc.CallTrace(m.st.trace))
}

// verify recompares roots after the fast path moved state; a mismatch
// descends from the children the response carries.
func (m *merkleExchange) verify() {
	r := m.r
	tree := r.treeFor(m.p.site)
	frames := wire.AppendTreeFrames(nil, []wire.TreeFrame{{Path: wire.PackTreePath(0, 0), Hash: tree.Root()}})
	m.count(len(frames))
	r.ep.GoJSON(m.p.addr, MethodDigest, digestReq{Site: r.site, Frames: frames}, func(res rpc.Result) {
		var resp digestResp
		if err := res.Decode(&resp); err != nil {
			m.fail()
			return
		}
		m.count(len(resp.Frames))
		if resp.Match {
			m.finish(true)
			return
		}
		m.descend(resp.Frames)
	}, rpc.CallTimeout(r.timeout), rpc.CallTrace(m.st.trace))
}

// descend compares the peer's frames against the local tree: mismatched
// internal nodes form the next negotiation frontier, mismatched leaves
// join the divergent set. An empty frontier ends the descent and moves
// to the scoped digest exchange.
func (m *merkleExchange) descend(framesEnc []byte) {
	r := m.r
	if len(framesEnc) == 0 {
		// The peer reported no mismatched children — it may have
		// converged mid-negotiation (a third replicator pushed it the
		// missing state between steps). Close out over whatever
		// divergent leaves were already found; none means done.
		m.scopedSync(r.treeFor(m.p.site))
		return
	}
	peerFrames, err := wire.DecodeTreeFrames(framesEnc)
	if err != nil {
		m.fail()
		return
	}
	tree := r.treeFor(m.p.site)
	var frontier []wire.TreeFrame
	for _, f := range peerFrames {
		level, index := wire.TreePathParts(f.Path)
		local, ok := tree.NodeHash(level, index)
		if !ok || local == f.Hash {
			continue
		}
		if int(level) >= information.MerkleDepth {
			m.divergent = append(m.divergent, index)
			continue
		}
		frontier = append(frontier, wire.TreeFrame{Path: f.Path, Hash: local})
	}
	if len(frontier) == 0 || m.depth >= information.MerkleDepth {
		m.scopedSync(tree)
		return
	}
	m.depth++
	if m.depth > m.st.descentDepth {
		m.st.descentDepth = m.depth
	}
	enc := wire.AppendTreeFrames(nil, frontier)
	m.count(len(enc))
	r.bump(func(s *Stats) { s.DescentCalls++ })
	r.ep.GoJSON(m.p.addr, MethodDigest, digestReq{Site: r.site, Frames: enc}, func(res rpc.Result) {
		var resp digestResp
		if err := res.Decode(&resp); err != nil {
			m.fail()
			return
		}
		m.count(len(resp.Frames))
		if resp.Match {
			// Every offered frame now agrees: the peer converged while
			// the negotiation was in flight.
			m.scopedSync(r.treeFor(m.p.site))
			return
		}
		m.descend(resp.Frames)
	}, rpc.CallTimeout(r.timeout), rpc.CallTrace(m.st.trace))
}

// scopedSync runs the classic digest exchange narrowed to the divergent
// leaf buckets: digest entries for O(changed) leaves instead of the
// whole id space, then the usual delta apply and push.
func (m *merkleExchange) scopedSync(tree *information.DigestTree) {
	r := m.r
	if len(m.divergent) == 0 {
		// Hash descent found nothing concrete (e.g. the peer converged
		// mid-negotiation): the exchange is over.
		m.finish(true)
		return
	}
	sort.Slice(m.divergent, func(i, j int) bool { return m.divergent[i] < m.divergent[j] })
	digest := make(map[string]vclock.Version)
	for _, b := range m.divergent {
		for id, vv := range tree.LeafDigest(b) {
			digest[id] = vv
		}
	}
	m.st.digestEntries += len(digest)
	m.count(digestMapBytes(digest))
	r.bump(func(s *Stats) { s.DigestEntriesSent += int64(len(digest)) })
	scope := append([]uint32(nil), m.divergent...)
	r.ep.GoJSON(m.p.addr, MethodSync, syncReq{Site: r.site, Digest: digest, Scope: scope}, func(res rpc.Result) {
		var resp syncResp
		if err := res.Decode(&resp); err != nil {
			m.fail()
			return
		}
		m.count(digestMapBytes(resp.Digest))
		applied := r.applyDeltas(resp.Deltas)
		r.bump(func(s *Stats) { s.Applied += int64(applied) })
		m.st.applied += applied
		if applied > 0 {
			m.st.moved = true
		}
		// Push half: our rows in the divergent buckets the peer's scoped
		// digest has not fully seen. The tree is already scoped to the
		// peer's placement interest, so no further filtering is needed.
		var push []*information.Object
		for id, vv := range digest {
			if seen, ok := resp.Digest[id]; ok && seen.Dominates(vv) {
				continue
			}
			if obj, ok := r.space.Fetch(id); ok {
				push = append(push, obj)
			}
		}
		if len(push) == 0 {
			m.finish(true)
			return
		}
		sort.Slice(push, func(i, j int) bool { return push[i].ID < push[j].ID })
		wires := make([]wireObject, len(push))
		for i, obj := range push {
			wires[i] = toWire(obj)
		}
		r.ep.GoJSON(m.p.addr, MethodPush, pushReq{Site: r.site, Objects: wires}, func(res rpc.Result) {
			var pr pushResp
			if err := res.Decode(&pr); err != nil {
				m.fail()
				return
			}
			r.bump(func(s *Stats) { s.Pushed += int64(len(wires)) })
			m.st.pushed += len(wires)
			if pr.Applied > 0 {
				m.st.moved = true
			}
			m.finish(true)
		}, rpc.CallTimeout(r.timeout), rpc.CallTrace(m.st.trace))
	}, rpc.CallTimeout(r.timeout), rpc.CallTrace(m.st.trace))
}

// register installs the protocol handlers. All are pure local compute,
// so the synchronous handler form is safe under the simulated clock.
func (r *Replicator) register() {
	r.ep.MustRegister(MethodSync, rpc.HandleJSON(func(_ netsim.Address, req syncReq) (syncResp, error) {
		r.bump(func(s *Stats) { s.ServedDigests++ })
		if len(req.Scope) > 0 {
			return r.serveScopedSync(req), nil
		}
		deltas := r.space.NewerThan(req.Digest)
		if r.policy != nil {
			// The caller only sees deltas of spaces it is placed in — the
			// partial-replication cut, applied where the data would leave.
			kept := deltas[:0]
			for _, obj := range deltas {
				if r.placedAt(req.Site, obj) {
					kept = append(kept, obj)
				}
			}
			if filtered := len(deltas) - len(kept); filtered > 0 {
				r.bump(func(s *Stats) { s.FilteredDeltas += int64(filtered) })
			}
			deltas = kept
		}
		resp := syncResp{Site: r.site, Digest: r.space.Digest()}
		if len(deltas) > 0 {
			r.bump(func(s *Stats) { s.DeltasServed += int64(len(deltas)) })
			resp.Deltas = make([]wireObject, len(deltas))
			for i, obj := range deltas {
				resp.Deltas[i] = toWire(obj)
			}
		}
		return resp, nil
	}))
	if !r.fullDigest {
		r.ep.MustRegister(MethodDigest, rpc.HandleJSON(func(_ netsim.Address, req digestReq) (digestResp, error) {
			return r.serveDigest(req)
		}))
	}
	r.ep.MustRegister(MethodPush, rpc.HandleJSON(func(_ netsim.Address, req pushReq) (pushResp, error) {
		var resp pushResp
		notPlaced := 0
		for _, w := range req.Objects {
			obj := fromWire(w)
			if !r.placedAt(r.site, obj) {
				notPlaced++
				resp.Refused = append(resp.Refused, obj.ID)
				continue
			}
			changed, conflict, err := r.space.ApplyRemote(obj)
			if err != nil {
				resp.Refused = append(resp.Refused, obj.ID)
				continue
			}
			if changed {
				resp.Applied++
			}
			if conflict {
				resp.Conflicts++
			}
		}
		// Migrated edges: recorded best-effort AFTER the rows, so edges
		// between rows of the same batch land. An edge whose other
		// endpoint is not held here cannot be recorded (cross-site edges
		// are the relationship-graph-replication open item) and is
		// skipped.
		for _, rel := range req.Relations {
			_ = r.space.Relate(rel.From, information.RelKind(rel.Kind), rel.To)
		}
		r.bump(func(s *Stats) {
			s.ServedApplied += int64(resp.Applied)
			s.Conflicts += int64(resp.Conflicts)
			s.RefusedApplies += int64(notPlaced)
		})
		if resp.Applied > 0 {
			// Infected becomes infectious: on a sparse peering graph the
			// rows just applied must keep flooding, and only this replica's
			// own round reaches ITS peers. On a full mesh this costs at most
			// one no-op round — the re-armed round moves nothing and the
			// replicator goes dormant again.
			r.SyncSoon()
		}
		return resp, nil
	}))
}

// serveScopedSync answers a digest exchange narrowed to the caller's
// divergent Merkle leaf buckets: the responder's scoped digest for those
// buckets plus the rows the caller's scoped digest has not fully seen.
// The per-caller tree is already placement-scoped, so the partial-
// replication cut is built in.
func (r *Replicator) serveScopedSync(req syncReq) syncResp {
	tree := r.treeFor(req.Site)
	scopedDigest := make(map[string]vclock.Version)
	var deltas []*information.Object
	for _, b := range req.Scope {
		for id, vv := range tree.LeafDigest(b) {
			scopedDigest[id] = vv
			if seen, ok := req.Digest[id]; ok && seen.Dominates(vv) {
				continue
			}
			if obj, ok := r.space.Fetch(id); ok {
				deltas = append(deltas, obj)
			}
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].ID < deltas[j].ID })
	resp := syncResp{Site: r.site, Digest: scopedDigest}
	if len(deltas) > 0 {
		r.bump(func(s *Stats) { s.DeltasServed += int64(len(deltas)) })
		resp.Deltas = make([]wireObject, len(deltas))
		for i, obj := range deltas {
			resp.Deltas[i] = toWire(obj)
		}
	}
	return resp
}

// serveDigest answers one Merkle negotiation step: for every offered
// frame that mismatches the responder's tree, the node's children; on
// the opening call (HW present) also the responder's high-water marks
// and the fast-path rows the caller's marks prove it lacks.
func (r *Replicator) serveDigest(req digestReq) (digestResp, error) {
	r.bump(func(s *Stats) { s.ServedDigests++ })
	tree := r.treeFor(req.Site)
	frames, err := wire.DecodeTreeFrames(req.Frames)
	if err != nil {
		return digestResp{}, err
	}
	resp := digestResp{Site: r.site, Match: true}
	var children []wire.TreeFrame
	for _, f := range frames {
		level, index := wire.TreePathParts(f.Path)
		local, ok := tree.NodeHash(level, index)
		if !ok || local == f.Hash {
			continue
		}
		resp.Match = false
		base := index * information.MerkleFanout
		for j, h := range tree.Children(level, index) {
			children = append(children, wire.TreeFrame{
				Path: wire.PackTreePath(level+1, base+uint32(j)),
				Hash: h,
			})
		}
	}
	if len(children) > 0 {
		resp.Frames = wire.AppendTreeFrames(nil, children)
	}
	if req.HW != nil {
		resp.HW = tree.HighWater()
		if !resp.Match {
			deltas := r.newerThanHW(tree, req.HW, req.Site)
			if len(deltas) > 0 {
				r.bump(func(s *Stats) { s.DeltasServed += int64(len(deltas)) })
				resp.Deltas = make([]wireObject, len(deltas))
				for i, obj := range deltas {
					resp.Deltas[i] = toWire(obj)
				}
			}
		}
	}
	return resp, nil
}

// --- placement migration ---------------------------------------------------

// MigrationReport summarises one MigrateForeign run.
type MigrationReport struct {
	Foreign  int // rows found that this site is not placed for
	Moved    int // rows pushed to a placed peer
	Dropped  int // rows evicted locally after a successful push
	Kept     int // rows retained (no reachable placed peer — never drop data)
	Failures int // push exchanges that failed
}

// MigrateForeign moves rows of spaces this site is no longer placed in
// off this replica: each foreign row is pushed (MethodPush) to the first
// placed site among the named peers together with the relationship edges
// touching it, and only rows the target ACCEPTED (absent from the
// response's Refused list) are dropped locally. Rows whose placement
// names no reachable peer, whose push fails, that the target refuses
// (e.g. the policy moved again mid-flight), or that a local write
// touched after the migration snapshot (the push did not cover the new
// state) are kept — migration never destroys the only copy. Edges whose other endpoint the target does not
// hold cannot be recorded there (cross-site edges are an open item) and
// are lost with the local drop. done (optional) receives the report when
// every push has completed; under a simulated clock, drain the clock to
// let the pushes run.
func (r *Replicator) MigrateForeign(done func(MigrationReport)) {
	if done == nil {
		done = func(MigrationReport) {}
	}
	policy := r.policy
	if policy == nil {
		done(MigrationReport{})
		return
	}
	r.mu.Lock()
	siteAddr := make(map[string]netsim.Address, len(r.peers))
	for _, p := range r.peers {
		if p.site != "" {
			siteAddr[p.site] = p.addr
		}
	}
	r.mu.Unlock()

	var rep MigrationReport
	groups := make(map[netsim.Address][]*information.Object)
	for _, obj := range r.space.NewerThan(nil) { // nil digest = every row
		pl := policy.SitesFor(placement.Describe(obj))
		if pl.At(r.site) {
			continue
		}
		rep.Foreign++
		var target netsim.Address
		found := false
		for _, site := range pl.Sites { // sorted: deterministic target
			if addr, ok := siteAddr[site]; ok {
				target, found = addr, true
				break
			}
		}
		if !found {
			rep.Kept++
			continue
		}
		groups[target] = append(groups[target], obj)
	}
	targets := make([]netsim.Address, 0, len(groups))
	for addr := range groups {
		targets = append(targets, addr)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })

	var step func(int)
	step = func(i int) {
		if i >= len(targets) {
			r.bump(func(s *Stats) {
				s.Migrated += int64(rep.Moved)
				s.Evicted += int64(rep.Dropped)
			})
			done(rep)
			return
		}
		batch := groups[targets[i]]
		wires := make([]wireObject, len(batch))
		ids := make([]string, len(batch))
		for j, obj := range batch {
			wires[j] = toWire(obj)
			ids[j] = obj.ID
		}
		req := pushReq{Site: r.site, Objects: wires, Relations: r.edgesTouching(ids)}
		r.ep.GoJSON(targets[i], MethodPush, req, func(res rpc.Result) {
			var pr pushResp
			if err := res.Decode(&pr); err != nil {
				// Unreachable target: the rows stay here until the next
				// migration attempt.
				rep.Failures++
				rep.Kept += len(batch)
			} else {
				refused := make(map[string]bool, len(pr.Refused))
				for _, id := range pr.Refused {
					refused[id] = true
				}
				for _, obj := range batch {
					if refused[obj.ID] {
						// The target would not take it (the policy may have
						// moved again mid-flight): this copy stays.
						rep.Kept++
						continue
					}
					rep.Moved++
					// Evict only what the push covered: a local write that
					// landed after the migration snapshot keeps the row for
					// the next pass instead of being destroyed.
					removed, derr := r.space.DropCovered(obj.ID, obj.VV)
					if derr == nil && removed != nil {
						rep.Dropped++
					} else if derr == nil {
						rep.Kept++
					}
				}
			}
			step(i + 1)
		}, rpc.CallTimeout(r.timeout))
	}
	step(0)
}

// edgesTouching collects every relationship edge with an endpoint among
// ids, deduplicated — the graph share that must travel with migrating
// rows.
func (r *Replicator) edgesTouching(ids []string) []wireRelation {
	kinds := []information.RelKind{
		information.RelComposedOf, information.RelDependsOn, information.RelDerivedFrom,
	}
	seen := make(map[wireRelation]bool)
	var out []wireRelation
	for _, id := range ids {
		for _, k := range kinds {
			for _, to := range r.space.Related(id, k) {
				e := wireRelation{From: id, Kind: string(k), To: to}
				if !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
			for _, from := range r.space.Dependents(id, k) {
				e := wireRelation{From: from, Kind: string(k), To: id}
				if !seen[e] {
					seen[e] = true
					out = append(out, e)
				}
			}
		}
	}
	return out
}
