package replica

import (
	"fmt"
	"testing"
	"time"

	"mocca/internal/id"
	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/placement"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// seedConverged fills site 0 with n objects and drains the mesh to
// convergence, returning the object ids.
func seedConverged(t *testing.T, f *fixture, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": fmt.Sprintf("doc %d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = obj.ID
	}
	f.clk.RunUntilIdle()
	for i, sp := range f.spaces {
		if sp.Len() != n {
			t.Fatalf("site %d holds %d rows, want %d", i, sp.Len(), n)
		}
	}
	return ids
}

// TestMerkleConvergedRoundIsConstant: once replicas converge, a sync
// round is one root compare per peer — digest cost independent of the
// number of stored objects.
func TestMerkleConvergedRoundIsConstant(t *testing.T) {
	f := newFixture(t, 2)
	seedConverged(t, f, 300)

	before := f.reps[0].Stats()
	f.reps[0].SyncNow()
	f.clk.RunUntilIdle()
	after := f.reps[0].Stats()

	if after.ConvergedRoots <= before.ConvergedRoots {
		t.Fatalf("converged round did not match roots: %+v", after)
	}
	if after.DigestEntriesSent != before.DigestEntriesSent {
		t.Fatalf("converged round shipped %d digest entries",
			after.DigestEntriesSent-before.DigestEntriesSent)
	}
	// One root frame + high-water marks each way: well under 200 bytes
	// for a 2-site mesh, regardless of the 300 stored objects.
	if got := after.LastRoundDigestBytes; got == 0 || got > 200 {
		t.Fatalf("converged round digest bytes = %d, want (0, 200]", got)
	}
	if after.Rounds <= before.Rounds {
		t.Fatal("no round ran")
	}
}

// TestMerkleHighWaterFastPath: a fresh write advances the writer site's
// high-water mark, so the next round repairs it straight off the marks —
// no subtree descent, no digest entries.
func TestMerkleHighWaterFastPath(t *testing.T) {
	f := newFixture(t, 2)
	ids := seedConverged(t, f, 50)

	before := f.reps[0].Stats()
	if _, err := f.spaces[0].Update("prinz", ids[7], 1, map[string]string{"title": "v2"}); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	after := f.reps[0].Stats()
	got := f.assertConverged(t, ids[7])
	if got.Fields["title"] != "v2" {
		t.Fatalf("update not propagated: %v", got.Fields)
	}
	if after.DescentCalls != before.DescentCalls {
		t.Fatalf("fast-path round descended the tree: %+v", after)
	}
	if after.DigestEntriesSent != before.DigestEntriesSent {
		t.Fatal("fast-path round shipped digest entries")
	}
	if after.Pushed <= before.Pushed {
		t.Fatal("the updated row was not pushed")
	}
}

// TestMerkleDescentRepairsHighWaterBlindSpot: an update whose counter
// stays below the site's global high-water mark is invisible to the fast
// path — the negotiation must descend the tree and repair it through a
// scoped digest exchange covering only the divergent leaves.
func TestMerkleDescentRepairsHighWaterBlindSpot(t *testing.T) {
	// Manual rounds (no AutoSync): the round that descends stays the last
	// round, so its per-round stats remain observable.
	f := newManualFixture(t, 2)
	ids := make([]string, 400)
	for i := range ids {
		obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": fmt.Sprintf("doc %d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = obj.ID
	}
	f.reps[0].SyncNow()
	f.clk.RunUntilIdle()
	if f.spaces[1].Len() != len(ids) {
		t.Fatalf("seeding did not converge: s1 holds %d rows", f.spaces[1].Len())
	}

	// Raise s0's high-water mark far above any other object's counter.
	hot := ids[0]
	version := uint64(1)
	for i := 0; i < 6; i++ {
		upd, err := f.spaces[0].Update("prinz", hot, version, map[string]string{"title": fmt.Sprintf("hot v%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		version = upd.Version
	}
	f.reps[0].SyncNow()
	f.clk.RunUntilIdle()
	f.assertConverged(t, hot)

	// Now a first update of a cold object: counter 2, far below the mark.
	before := f.reps[0].Stats()
	cold := ids[123]
	if _, err := f.spaces[0].Update("prinz", cold, 1, map[string]string{"title": "cold v2"}); err != nil {
		t.Fatal(err)
	}
	f.reps[0].SyncNow()
	f.clk.RunUntilIdle()
	after := f.reps[0].Stats()

	got := f.assertConverged(t, cold)
	if got.Fields["title"] != "cold v2" {
		t.Fatalf("blind-spot update not propagated: %v", got.Fields)
	}
	if after.DescentCalls <= before.DescentCalls {
		t.Fatalf("no descent ran: %+v", after)
	}
	entries := after.DigestEntriesSent - before.DigestEntriesSent
	if entries == 0 {
		t.Fatal("descent ended without a scoped digest exchange")
	}
	// The scoped exchange covers one leaf bucket (~400/4096 ids), not the
	// whole 400-object digest.
	if entries > 20 {
		t.Fatalf("scoped exchange shipped %d digest entries, want a leaf's worth", entries)
	}
	if d := after.LastRoundDescentDepth; d == 0 || d > 3 {
		t.Fatalf("descent depth = %d, want 1..3", d)
	}
}

// TestMerkleLegacyPeerFallback: a peer built WithFullDigest neither
// serves nor initiates the negotiation. Its partner detects the missing
// method on the first round, falls back to the full-digest exchange, and
// the pair still converges — in both directions.
func TestMerkleLegacyPeerFallback(t *testing.T) {
	g := newFixtureOpts(t, []Option{}, []Option{WithFullDigest()})
	obj, err := g.spaces[0].Put("prinz", "doc", map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	g.clk.RunUntilIdle()
	g.assertConverged(t, obj.ID)

	s0 := g.reps[0].Stats()
	if s0.LegacyExchanges == 0 {
		t.Fatalf("modern replicator never fell back: %+v", s0)
	}
	if s0.DigestEntriesSent == 0 {
		t.Fatal("fallback shipped no full digest")
	}
	// The fallback is sticky: later rounds go straight to the legacy path
	// (exactly one failed negotiation attempt).
	if s0.MerkleExchanges != 1 {
		t.Fatalf("negotiation attempts = %d, want 1", s0.MerkleExchanges)
	}

	// The legacy side initiates its own rounds natively.
	if _, err := g.spaces[1].Update("prinz", obj.ID, 1, map[string]string{"title": "v2"}); err != nil {
		t.Fatal(err)
	}
	g.clk.RunUntilIdle()
	got := g.assertConverged(t, obj.ID)
	if got.Fields["title"] != "v2" {
		t.Fatalf("legacy-initiated round failed: %v", got.Fields)
	}
	if g.reps[1].Stats().MerkleExchanges != 0 {
		t.Fatal("WithFullDigest replicator initiated a negotiation")
	}
}

// newManualFixture is newFixture without AutoSync: rounds run only on
// explicit SyncNow, so a test can pin down exactly which round did what.
func newManualFixture(t *testing.T, n int) *fixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(7))
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "doc", Fields: []information.Field{
		{Name: "title", Type: information.FieldText, Required: true},
		{Name: "body", Type: information.FieldText},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := id.New()
	f := &fixture{clk: clk, net: net}
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("s%d", i)
		sp := information.NewSpace(registry, nil, clk,
			information.WithSite(site), information.WithIDs(ids))
		ep := rpc.NewEndpoint(net.MustAddNode(netsim.Address("repl-"+site)), clk, rpc.WithIDs(ids))
		f.spaces = append(f.spaces, sp)
		f.reps = append(f.reps, New(ep, clk, sp))
	}
	for i, r := range f.reps {
		for j, o := range f.reps {
			if i != j {
				r.AddPeerNamed(o.Site(), o.Addr())
			}
		}
	}
	return f
}

// newFixtureOpts is newFixture with per-site replicator options — the
// mixed-version mesh builder (e.g. one modern site, one WithFullDigest).
func newFixtureOpts(t *testing.T, siteOpts ...[]Option) *fixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(7))
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "doc", Fields: []information.Field{
		{Name: "title", Type: information.FieldText, Required: true},
		{Name: "body", Type: information.FieldText},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := id.New()
	f := &fixture{clk: clk, net: net}
	for i, opts := range siteOpts {
		site := fmt.Sprintf("s%d", i)
		sp := information.NewSpace(registry, nil, clk,
			information.WithSite(site), information.WithIDs(ids))
		ep := rpc.NewEndpoint(net.MustAddNode(netsim.Address("repl-"+site)), clk, rpc.WithIDs(ids))
		f.spaces = append(f.spaces, sp)
		f.reps = append(f.reps, New(ep, clk, sp, opts...))
	}
	for i, r := range f.reps {
		for j, o := range f.reps {
			if i != j {
				r.AddPeerNamed(o.Site(), o.Addr())
			}
		}
		r.AutoSync(time.Second)
	}
	return f
}

// TestMerkleScopedTreesConvergeUnderPlacement: with a selective policy,
// per-peer trees compare equal once each pair holds its shared subset —
// converged rounds stay O(1) even though the replicas legitimately store
// different rows.
func TestMerkleScopedTreesConvergeUnderPlacement(t *testing.T) {
	pol := placement.NewPolicy()
	pol.Use(placement.ByField("body", "scoped", "s0", "s1"))
	f := newPlacedFixture(t, 3, pol)

	if _, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "secret", "body": "scoped"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "memo"}); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	if f.spaces[2].Len() != 1 {
		t.Fatalf("s2 holds %d rows, want 1", f.spaces[2].Len())
	}

	before := f.reps[0].Stats()
	f.reps[0].SyncNow()
	f.clk.RunUntilIdle()
	after := f.reps[0].Stats()
	// Both peers — the co-placed s1 and the excluded s2 — compare equal
	// at the root despite holding different row sets.
	if after.ConvergedRoots-before.ConvergedRoots != 2 {
		t.Fatalf("converged roots delta = %d, want 2 (stats %+v)", after.ConvergedRoots-before.ConvergedRoots, after)
	}
	if after.DigestEntriesSent != before.DigestEntriesSent {
		t.Fatal("converged scoped round shipped digest entries")
	}
}
