package replica

import (
	"fmt"
	"testing"
	"time"

	"mocca/internal/id"
	"mocca/internal/information"
	"mocca/internal/netsim"
	"mocca/internal/placement"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// newPlacedFixture is newFixture with a shared placement policy and
// site-tagged peers, so pushes are placement-scoped and migration can
// target placed peers.
func newPlacedFixture(t *testing.T, n int, pol *placement.Policy) *fixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(7))
	registry := information.NewSchemaRegistry()
	if err := registry.Register(information.Schema{Name: "doc", Fields: []information.Field{
		{Name: "title", Type: information.FieldText, Required: true},
		{Name: "body", Type: information.FieldText},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := id.New()
	f := &fixture{clk: clk, net: net}
	for i := 0; i < n; i++ {
		site := fmt.Sprintf("s%d", i)
		sp := information.NewSpace(registry, nil, clk,
			information.WithSite(site), information.WithIDs(ids))
		ep := rpc.NewEndpoint(net.MustAddNode(netsim.Address("repl-"+site)), clk, rpc.WithIDs(ids))
		f.spaces = append(f.spaces, sp)
		f.reps = append(f.reps, New(ep, clk, sp, WithPlacement(pol)))
	}
	for i, r := range f.reps {
		for j, o := range f.reps {
			if i != j {
				r.AddPeerNamed(o.Site(), o.Addr())
			}
		}
		r.AutoSync(time.Second)
	}
	return f
}

// TestPlacementScopedSync: with a rule scoping body=scoped objects to
// {s0, s1}, site s2 converges on everything else but never receives a
// scoped row — and the filtering is visible in the replicator stats.
func TestPlacementScopedSync(t *testing.T) {
	pol := placement.NewPolicy()
	pol.Use(placement.ByField("body", "scoped", "s0", "s1"))
	f := newPlacedFixture(t, 3, pol)

	scoped, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "secret", "body": "scoped"})
	if err != nil {
		t.Fatal(err)
	}
	open, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "memo"})
	if err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()

	// The open object reached every site; the scoped one only s0 and s1.
	for i, sp := range f.spaces {
		if _, err := sp.Get("anyone", open.ID); err != nil {
			t.Fatalf("site %d missing open object: %v", i, err)
		}
	}
	if got, err := f.spaces[1].Get("anyone", scoped.ID); err != nil || got.Fields["title"] != "secret" {
		t.Fatalf("s1 scoped read: %v %v", got, err)
	}
	if _, err := f.spaces[2].Get("anyone", scoped.ID); err == nil {
		t.Fatal("scoped object leaked to non-placed site s2")
	}
	if n := f.spaces[2].Len(); n != 1 {
		t.Fatalf("s2 holds %d rows, want 1", n)
	}

	// The savings are observable without packet inspection. Under the
	// Merkle negotiation the placement cut is structural — rows stay out
	// of the per-peer digest trees (ScopeFiltered) — while the legacy
	// counters still cover the full-digest fallback path.
	var filtered int64
	for _, r := range f.reps {
		s := r.Stats()
		filtered += s.FilteredDeltas + s.FilteredPushes + s.ScopeFiltered
	}
	if filtered == 0 {
		t.Fatal("no filtering recorded in stats")
	}
	if s := f.reps[0].Stats(); s.MerkleExchanges == 0 || s.DigestBytes == 0 || s.LastRoundDigestBytes == 0 {
		t.Fatalf("digest stats missing: %+v", s)
	}
}

// TestDeplacementMigratesRowsOff: a site loses its placement for a space
// at runtime; MigrateForeign pushes its rows to a placed peer and drops
// them locally, after which sync does not bring them back.
func TestDeplacementMigratesRowsOff(t *testing.T) {
	pol := placement.NewPolicy() // no rules: everywhere
	f := newPlacedFixture(t, 3, pol)
	obj, err := f.spaces[2].Put("prinz", "doc", map[string]string{"title": "draft", "body": "scoped"})
	if err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	f.assertConverged(t, obj.ID)

	// De-place s2: the space now lives at {s0, s1} only.
	pol.Use(placement.ByField("body", "scoped", "s0", "s1"))
	var rep MigrationReport
	gotReport := false
	f.reps[2].MigrateForeign(func(r MigrationReport) { rep = r; gotReport = true })
	f.clk.RunUntilIdle()

	if !gotReport {
		t.Fatal("migration never completed")
	}
	if rep.Foreign != 1 || rep.Moved != 1 || rep.Dropped != 1 || rep.Kept != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := f.spaces[2].Get("anyone", obj.ID); err == nil {
		t.Fatal("row still on de-placed site")
	}
	if s := f.reps[2].Stats(); s.Migrated != 1 || s.Evicted != 1 {
		t.Fatalf("migration stats = %+v", s)
	}

	// Later rounds must not re-deliver the row to s2.
	f.reps[2].SyncNow()
	f.clk.RunUntilIdle()
	if _, err := f.spaces[2].Get("anyone", obj.ID); err == nil {
		t.Fatal("sync re-delivered a de-placed row")
	}
	// The placed sites keep the full history.
	if got, err := f.spaces[0].Get("anyone", obj.ID); err != nil || got.Fields["title"] != "draft" {
		t.Fatalf("s0 lost the migrated row: %v %v", got, err)
	}
}

// TestMigrationNeverDropsSoleCopy: when placement names no reachable
// peer, the row is kept — migration must not destroy the only copy.
func TestMigrationNeverDropsSoleCopy(t *testing.T) {
	pol := placement.NewPolicy()
	f := newPlacedFixture(t, 2, pol)
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "orphan", "body": "scoped"})
	if err != nil {
		t.Fatal(err)
	}
	// Scope the space to a site that does not exist in the mesh.
	pol.Use(placement.ByField("body", "scoped", "s9"))
	var rep MigrationReport
	f.reps[0].MigrateForeign(func(r MigrationReport) { rep = r })
	f.clk.RunUntilIdle()
	if rep.Foreign != 1 || rep.Kept != 1 || rep.Dropped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := f.spaces[0].Get("anyone", obj.ID); err != nil {
		t.Fatalf("sole copy destroyed: %v", err)
	}
}

// TestMigrationKeepsRowsWhenTargetUnreachable: the placed peer exists but
// is down — the push fails and the rows stay, reported as kept.
func TestMigrationKeepsRowsWhenTargetUnreachable(t *testing.T) {
	pol := placement.NewPolicy()
	f := newPlacedFixture(t, 2, pol)
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "stuck", "body": "scoped"})
	if err != nil {
		t.Fatal(err)
	}
	pol.Use(placement.ByField("body", "scoped", "s1"))
	if node, ok := f.net.Node("repl-s1"); ok {
		node.SetDown(true)
	} else {
		t.Fatal("repl-s1 missing")
	}
	var rep MigrationReport
	f.reps[0].MigrateForeign(func(r MigrationReport) { rep = r })
	f.clk.RunUntilIdle()
	if rep.Failures != 1 || rep.Kept != 1 || rep.Dropped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := f.spaces[0].Get("anyone", obj.ID); err != nil {
		t.Fatalf("row dropped despite failed push: %v", err)
	}
}

// TestMigrationKeepsRowWhenTargetRefuses: the policy moves again while a
// migration push is in flight, so the chosen target is no longer placed
// and refuses the row — the migrating site must keep its copy instead of
// destroying the last one.
func TestMigrationKeepsRowWhenTargetRefuses(t *testing.T) {
	sites := []string{"s1"}
	pol := placement.NewPolicy()
	f := newPlacedFixture(t, 2, pol)
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "volatile", "body": "scoped"})
	if err != nil {
		t.Fatal(err)
	}
	pol.Use(placement.NewRule("flip", "flip", func(d placement.Descriptor) bool {
		return d.Fields["body"] == "scoped"
	}, func() []string { return sites }))

	var rep MigrationReport
	f.reps[0].MigrateForeign(func(r MigrationReport) { rep = r })
	// The push toward s1 is now in flight; the space moves again before it
	// lands, so s1's handler refuses the row.
	sites = []string{"s9"}
	f.clk.RunUntilIdle()

	if rep.Foreign != 1 || rep.Kept != 1 || rep.Moved != 0 || rep.Dropped != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := f.spaces[0].Get("anyone", obj.ID); err != nil {
		t.Fatalf("sole copy destroyed by refused migration: %v", err)
	}
	if _, err := f.spaces[1].Get("anyone", obj.ID); err == nil {
		t.Fatal("refused row materialised at the target anyway")
	}
}

// TestMigrationCarriesRelations: edges between migrating rows travel
// with them, so the target holds the graph the de-placed site drops.
func TestMigrationCarriesRelations(t *testing.T) {
	pol := placement.NewPolicy()
	f := newPlacedFixture(t, 2, pol)
	parent, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "design", "body": "scoped"})
	if err != nil {
		t.Fatal(err)
	}
	part, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "appendix", "body": "scoped"})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.spaces[0].Relate(parent.ID, information.RelComposedOf, part.ID); err != nil {
		t.Fatal(err)
	}
	pol.Use(placement.ByField("body", "scoped", "s1"))
	var rep MigrationReport
	f.reps[0].MigrateForeign(func(r MigrationReport) { rep = r })
	f.clk.RunUntilIdle()

	if rep.Moved != 2 || rep.Dropped != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if f.spaces[0].Len() != 0 {
		t.Fatalf("rows left on de-placed site: %d", f.spaces[0].Len())
	}
	if got := f.spaces[1].Related(parent.ID, information.RelComposedOf); len(got) != 1 || got[0] != part.ID {
		t.Fatalf("edge did not migrate: %v", got)
	}
}

// TestMigrationKeepsLocallyUpdatedRow: a write lands on a foreign row
// after the migration snapshot but before the push is acknowledged — the
// eviction must not destroy the newer state.
func TestMigrationKeepsLocallyUpdatedRow(t *testing.T) {
	pol := placement.NewPolicy()
	f := newPlacedFixture(t, 2, pol)
	obj, err := f.spaces[0].Put("prinz", "doc", map[string]string{"title": "v1", "body": "scoped"})
	if err != nil {
		t.Fatal(err)
	}
	pol.Use(placement.ByField("body", "scoped", "s1"))
	var rep MigrationReport
	f.reps[0].MigrateForeign(func(r MigrationReport) { rep = r })
	// The push (carrying v1) is in flight; v2 lands locally before the
	// acknowledgement comes back.
	if _, err := f.spaces[0].Update("prinz", obj.ID, obj.Version, map[string]string{"title": "v2"}); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()

	if rep.Dropped != 0 || rep.Kept != 1 {
		t.Fatalf("report = %+v", rep)
	}
	got, err := f.spaces[0].Get("anyone", obj.ID)
	if err != nil {
		t.Fatalf("newer state destroyed by migration: %v", err)
	}
	if got.Fields["title"] != "v2" {
		t.Fatalf("kept state = %v", got.Fields)
	}
}
