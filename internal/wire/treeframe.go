package wire

import (
	"errors"
	"fmt"
)

// TreeFrame is one node of a Merkle digest tree on the wire: the node's
// packed position plus its hash. The anti-entropy digest negotiation
// (internal/replica) ships lists of these frames instead of full
// id→version-vector digests — a converged round is one root frame, a
// divergent round descends mismatched subtrees frame by frame.
type TreeFrame struct {
	Path uint64 // PackTreePath(level, index)
	Hash uint64
}

// PackTreePath packs a tree position (level from the root, index within
// the level) into one uint64 path word.
func PackTreePath(level, index uint32) uint64 {
	return uint64(level)<<32 | uint64(index)
}

// TreePathParts unpacks a path word produced by PackTreePath.
func TreePathParts(path uint64) (level, index uint32) {
	return uint32(path >> 32), uint32(path & 0xFFFFFFFF)
}

// ErrBadTreeFrames reports a malformed tree-frame encoding.
var ErrBadTreeFrames = errors.New("wire: bad tree frame encoding")

// treeFrameSize is the encoded size of one frame: path + hash.
const treeFrameSize = 16

// AppendTreeFrames appends a deterministic binary encoding of the frames
// to dst: a uint64 frame count, then per frame the packed path and the
// hash, in the shared codec layout. The encoding is what digest requests
// carry (and what the digest-byte counters measure), so its size — 8 +
// 16·frames — is the true wire cost of a negotiation step.
func AppendTreeFrames(dst []byte, frames []TreeFrame) []byte {
	dst = AppendUint64(dst, uint64(len(frames)))
	for _, f := range frames {
		dst = AppendUint64(dst, f.Path)
		dst = AppendUint64(dst, f.Hash)
	}
	return dst
}

// DecodeTreeFrames decodes a frame list produced by AppendTreeFrames.
func DecodeTreeFrames(data []byte) ([]TreeFrame, error) {
	n, rest, err := ConsumeUint64(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTreeFrames, err)
	}
	// Divide instead of multiplying: a hostile count like 2^60 would
	// overflow n*treeFrameSize to a small value, slip past an equality
	// check, and panic the frames allocation below.
	if uint64(len(rest))%treeFrameSize != 0 || uint64(len(rest))/treeFrameSize != n {
		return nil, fmt.Errorf("%w: %d frames in %d bytes", ErrBadTreeFrames, n, len(rest))
	}
	frames := make([]TreeFrame, 0, n)
	for i := uint64(0); i < n; i++ {
		var f TreeFrame
		if f.Path, rest, err = ConsumeUint64(rest); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTreeFrames, err)
		}
		if f.Hash, rest, err = ConsumeUint64(rest); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTreeFrames, err)
		}
		frames = append(frames, f)
	}
	return frames, nil
}
