package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to Unmarshal (which must error or parse,
// never panic) and, when the input parses, re-encodes and re-decodes to
// check the format round-trips losslessly.
func FuzzDecode(f *testing.F) {
	seed := NewEnvelope("rpc.req", "call-1-deadbeef", []byte(`{"x":1}`))
	seed.SetHeader("method", "svc.echo")
	seed.SetHeader("ch.epoch", "2")
	data, err := Marshal(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	traced := NewEnvelope("rpc.req", "call-2-cafef00d", []byte(`{"y":2}`))
	traced.SetHeader("method", "svc.echo")
	traced.Trace = TraceContext{TraceID: 0xfeedface, SpanID: 7, Parent: 3}
	tdata, err := Marshal(traced)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(tdata)
	f.Add(tdata[:len(tdata)-8]) // truncated trace block
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xd9, 0x01})
	f.Add([]byte{0x00, 0xd9, 0x02})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, in []byte) {
		e, err := Unmarshal(in)
		if err != nil {
			return // malformed input rejected cleanly
		}
		out, err := Marshal(e)
		if err != nil {
			t.Fatalf("decoded envelope failed to re-encode: %v", err)
		}
		e2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		if e2.Kind != e.Kind || e2.Corr != e.Corr || !bytes.Equal(e2.Body, e.Body) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", e, e2)
		}
		if e2.Trace != e.Trace {
			t.Fatalf("trace context changed: %+v vs %+v", e.Trace, e2.Trace)
		}
		if len(e.Headers) != len(e2.Headers) {
			t.Fatalf("header count changed: %v vs %v", e.Headers, e2.Headers)
		}
		for k, v := range e.Headers {
			if e2.Headers[k] != v {
				t.Fatalf("header %q changed: %q vs %q", k, v, e2.Headers[k])
			}
		}
	})
}

// TestTruncatedEnvelopeNeverPanics decodes every prefix of a fully-featured
// envelope: each must return an error (or, for the full frame, succeed) and
// none may panic.
func TestTruncatedEnvelopeNeverPanics(t *testing.T) {
	for _, traced := range []bool{false, true} {
		e := NewEnvelope("rpc.req", "call-7", []byte("0123456789abcdef"))
		e.SetHeader("method", "x500.search")
		e.SetHeader("error", "boom")
		if traced {
			e.Trace = TraceContext{TraceID: 1, SpanID: 2, Parent: 3}
		}
		data, err := Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(data); i++ {
			if _, err := Unmarshal(data[:i]); err == nil {
				t.Fatalf("traced=%v: prefix of %d/%d bytes decoded without error", traced, i, len(data))
			}
		}
		if _, err := Unmarshal(data); err != nil {
			t.Fatalf("traced=%v: full envelope failed: %v", traced, err)
		}
	}
}
