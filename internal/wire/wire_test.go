package wire

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		env  *Envelope
	}{
		{"minimal", NewEnvelope("ping", "c1", nil)},
		{"with body", NewEnvelope("rpc.req", "c2", []byte(`{"x":1}`))},
		{"empty strings", NewEnvelope("", "", nil)},
		{"unicode", NewEnvelope("kïnd", "çorr", []byte("héllo wörld"))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tt.env.SetHeader("from", "node-a")
			tt.env.SetHeader("to", "node-b")
			data, err := Marshal(tt.env)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Unmarshal(data)
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != tt.env.Kind || got.Corr != tt.env.Corr {
				t.Fatalf("got %+v, want %+v", got, tt.env)
			}
			if !bytes.Equal(got.Body, tt.env.Body) {
				t.Fatalf("body %q, want %q", got.Body, tt.env.Body)
			}
			if !reflect.DeepEqual(got.Headers, tt.env.Headers) {
				t.Fatalf("headers %v, want %v", got.Headers, tt.env.Headers)
			}
		})
	}
}

func TestMarshalDeterministic(t *testing.T) {
	e := NewEnvelope("k", "c", []byte("b"))
	for _, h := range []string{"z", "a", "m", "b", "q"} {
		e.SetHeader(h, h+"-value")
	}
	first, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("Marshal is not deterministic across calls")
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := Marshal(NewEnvelope("k", "c", []byte("body")))
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad magic", []byte{0xFF, 0xFF, 1}, ErrBadMagic},
		{"truncated mid-envelope", good[:len(good)-3], ErrTruncated},
		{"version zero", append([]byte{good[0], good[1], 0}, good[3:]...), ErrBadVersion},
		{"future version", append([]byte{good[0], good[1], 99}, good[3:]...), ErrBadVersion},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Unmarshal(tt.data)
			if !errors.Is(err, tt.want) {
				t.Fatalf("Unmarshal error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	good, err := Marshal(NewEnvelope("k", "c", nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(good, 0x00)); err == nil {
		t.Fatal("envelope with trailing bytes accepted")
	}
}

func TestOversizeRejected(t *testing.T) {
	e := NewEnvelope(strings.Repeat("k", maxStringLen), "c", nil)
	if _, err := Marshal(e); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize kind: err = %v, want ErrOversize", err)
	}
	e2 := NewEnvelope("k", "c", make([]byte, maxBodyLen))
	if _, err := Marshal(e2); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize body: err = %v, want ErrOversize", err)
	}
}

func TestVersionDefaulted(t *testing.T) {
	data, err := Marshal(&Envelope{Kind: "k"})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != Version {
		t.Fatalf("Version = %d, want %d", e.Version, Version)
	}
}

func TestBodyHelpers(t *testing.T) {
	type payload struct {
		Name  string   `json:"name"`
		Count int      `json:"count"`
		Tags  []string `json:"tags"`
	}
	in := payload{Name: "report", Count: 3, Tags: []string{"draft", "shared"}}
	b, err := EncodeBody(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := DecodeBody(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round-trip = %+v, want %+v", out, in)
	}
	if err := DecodeBody([]byte("{not json"), &out); err == nil {
		t.Fatal("DecodeBody accepted invalid JSON")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(kind, corr string, hk, hv string, body []byte) bool {
		if len(kind) >= maxStringLen || len(corr) >= maxStringLen ||
			len(hk) >= maxStringLen || len(hv) >= maxStringLen || len(body) >= maxBodyLen {
			return true // out of scope
		}
		e := NewEnvelope(kind, corr, body)
		e.SetHeader(hk, hv)
		data, err := Marshal(e)
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		v, _ := got.Header(hk)
		return got.Kind == kind && got.Corr == corr && bytes.Equal(got.Body, body) && v == hv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Any input must either parse or error; never panic.
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("first"), {}, []byte("third record")}
	for _, p := range payloads {
		var err error
		if buf, err = AppendRecord(buf, p); err != nil {
			t.Fatal(err)
		}
	}
	rest := buf
	for i, want := range payloads {
		payload, next, err := NextRecord(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("record %d = %q, want %q", i, payload, want)
		}
		rest = next
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestRecordTruncationAndCorruption(t *testing.T) {
	buf, err := AppendRecord(nil, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := NextRecord(buf[:len(buf)-2]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn record: %v, want ErrTruncated", err)
	}
	if _, _, err := NextRecord(buf[:RecordOverhead-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn header: %v, want ErrTruncated", err)
	}
	flipped := append([]byte(nil), buf...)
	flipped[len(flipped)-1] ^= 1
	if _, _, err := NextRecord(flipped); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("bit rot: %v, want ErrBadCRC", err)
	}
	badMagic := append([]byte(nil), buf...)
	badMagic[0] ^= 0xFF
	if _, _, err := NextRecord(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v, want ErrBadMagic", err)
	}
}

func TestCodecHelpers(t *testing.T) {
	buf := AppendString(nil, "hello")
	buf = AppendUint64(buf, 42)
	s, rest, err := ConsumeString(buf)
	if err != nil || s != "hello" {
		t.Fatalf("ConsumeString = %q, %v", s, err)
	}
	v, rest, err := ConsumeUint64(rest)
	if err != nil || v != 42 || len(rest) != 0 {
		t.Fatalf("ConsumeUint64 = %d, rest %d, %v", v, len(rest), err)
	}
	if _, _, err := ConsumeString([]byte{0, 0}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short string: %v", err)
	}
	if _, _, err := ConsumeUint64([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short uint64: %v", err)
	}
}
