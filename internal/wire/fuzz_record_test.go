package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// recordCorpus builds fuzz seeds from real AppendRecord output: single
// records, concatenated streams, the empty payload, and corrupted or
// truncated variants — the shapes WAL recovery actually sees.
func recordCorpus(f *testing.F) {
	one, err := AppendRecord(nil, []byte("hello record"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(one)

	var stream []byte
	for _, p := range [][]byte{[]byte("first"), {}, []byte("third payload, longer than the others")} {
		if stream, err = AppendRecord(stream, p); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(stream)
	f.Add(stream[:len(stream)-3]) // torn tail
	f.Add(stream[:RecordOverhead-1])

	flipped := append([]byte(nil), one...)
	flipped[len(flipped)-1] ^= 0x40 // payload bit rot: CRC must catch it
	f.Add(flipped)
	badMagic := append([]byte(nil), one...)
	badMagic[0] ^= 0xFF
	f.Add(badMagic)

	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
}

// FuzzNextRecord walks arbitrary bytes record by record. The decoder must
// never panic, must always make progress on success, and every payload it
// accepts must survive an AppendRecord/NextRecord round-trip unchanged.
func FuzzNextRecord(f *testing.F) {
	recordCorpus(f)

	f.Fuzz(func(t *testing.T, in []byte) {
		rest := in
		for {
			payload, next, err := NextRecord(rest)
			if err != nil {
				// Recovery semantics: an error leaves the input untouched
				// so the caller can mark the end of the intact prefix.
				if !bytes.Equal(next, rest) {
					t.Fatalf("error %v but rest changed: %d -> %d bytes", err, len(rest), len(next))
				}
				return
			}
			if len(next) > len(rest)-RecordOverhead {
				t.Fatalf("decode consumed only %d bytes, less than the header", len(rest)-len(next))
			}
			reenc, err := AppendRecord(nil, payload)
			if err != nil {
				t.Fatalf("accepted payload failed to re-encode: %v", err)
			}
			back, tail, err := NextRecord(reenc)
			if err != nil || len(tail) != 0 || !bytes.Equal(back, payload) {
				t.Fatalf("round-trip mismatch: %q -> %q (err %v, %d tail bytes)", payload, back, err, len(tail))
			}
			rest = next
		}
	})
}

// FuzzReadRecord runs the streaming decoder and the in-memory decoder over
// the same bytes in lockstep: both must accept the same payloads in the
// same order and then fail the same way (modulo ReadRecord reporting a
// clean end of stream as io.EOF where NextRecord says ErrTruncated).
func FuzzReadRecord(f *testing.F) {
	recordCorpus(f)

	f.Fuzz(func(t *testing.T, in []byte) {
		r := bytes.NewReader(in)
		var scratch []byte
		rest := in
		for {
			payload, next, memErr := NextRecord(rest)
			var streamed []byte
			var err error
			streamed, scratch, err = ReadRecord(r, scratch)
			if memErr != nil {
				wantEOF := len(rest) == 0 && errors.Is(memErr, ErrTruncated)
				switch {
				case wantEOF && !errors.Is(err, io.EOF):
					t.Fatalf("empty tail: NextRecord %v, ReadRecord %v (want io.EOF)", memErr, err)
				case !wantEOF && !sameRecordError(memErr, err):
					t.Fatalf("decoders disagree on failure: NextRecord %v, ReadRecord %v", memErr, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("NextRecord accepted %q but ReadRecord failed: %v", payload, err)
			}
			if !bytes.Equal(streamed, payload) {
				t.Fatalf("decoders disagree on payload: %q vs %q", payload, streamed)
			}
			rest = next
		}
	})
}

// sameRecordError reports whether two decode failures are the same class
// of framing error.
func sameRecordError(a, b error) bool {
	for _, sentinel := range []error{ErrTruncated, ErrBadMagic, ErrOversize, ErrBadCRC} {
		if errors.Is(a, sentinel) {
			return errors.Is(b, sentinel)
		}
	}
	return false
}

// FuzzTreeFrames decodes arbitrary bytes as a Merkle digest frame list;
// anything accepted must re-encode to the identical bytes (the encoding is
// canonical — digest-byte accounting depends on that).
func FuzzTreeFrames(f *testing.F) {
	f.Add(AppendTreeFrames(nil, nil))
	f.Add(AppendTreeFrames(nil, []TreeFrame{{Path: PackTreePath(0, 0), Hash: 0x9e3779b97f4a7c15}}))
	f.Add(AppendTreeFrames(nil, []TreeFrame{
		{Path: PackTreePath(3, 5), Hash: 1},
		{Path: PackTreePath(3, 6), Hash: 0},
		{Path: PackTreePath(4, 12), Hash: ^uint64(0)},
	}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 24))

	f.Fuzz(func(t *testing.T, in []byte) {
		frames, err := DecodeTreeFrames(in)
		if err != nil {
			if !errors.Is(err, ErrBadTreeFrames) {
				t.Fatalf("decode failed outside ErrBadTreeFrames: %v", err)
			}
			return
		}
		out := AppendTreeFrames(nil, frames)
		if !bytes.Equal(out, in) {
			t.Fatalf("accepted %d bytes but canonical re-encoding is %d bytes", len(in), len(out))
		}
		again, err := DecodeTreeFrames(out)
		if err != nil {
			t.Fatalf("re-encoded frames failed to decode: %v", err)
		}
		for i := range frames {
			if again[i] != frames[i] {
				t.Fatalf("frame %d changed across round-trip: %+v vs %+v", i, frames[i], again[i])
			}
		}
	})
}
