// Package wire defines the on-the-wire envelope format shared by every
// protocol in the repository (rpc, mhs, rtc). An envelope carries a version,
// a kind discriminator, a correlation identifier, free-form headers, and an
// opaque body.
//
// The binary layout is deliberately simple and self-contained:
//
//	magic    uint16 = 0x0D9 ("ODP" truncated)
//	version  uint8
//	kind     lenString
//	corr     lenString
//	nheaders uint16, then nheaders × (lenString key, lenString value)
//	body     lenBytes
//
// where lenString/lenBytes is a uint32 length prefix followed by raw bytes.
// All integers are big-endian. Bodies are typically JSON produced by
// EncodeBody, keeping payloads debuggable; the envelope itself stays binary
// so framing is unambiguous.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Version is the current envelope format version.
const Version = 1

const magic uint16 = 0x0D9

// Maximum sizes guard against corrupt length prefixes.
const (
	maxStringLen = 1 << 16
	maxBodyLen   = 1 << 26 // 64 MiB
	maxHeaders   = 1 << 12
)

// Envelope is the unit framed onto the simulated network.
type Envelope struct {
	Version byte
	Kind    string
	Corr    string
	Headers map[string]string
	Body    []byte
}

// Errors returned by Unmarshal.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrTruncated  = errors.New("wire: truncated envelope")
	ErrOversize   = errors.New("wire: field exceeds size limit")
)

// NewEnvelope builds an envelope of the current version.
func NewEnvelope(kind, corr string, body []byte) *Envelope {
	return &Envelope{Version: Version, Kind: kind, Corr: corr, Body: body}
}

// SetHeader sets a header, allocating the map on first use.
func (e *Envelope) SetHeader(k, v string) {
	if e.Headers == nil {
		e.Headers = make(map[string]string)
	}
	e.Headers[k] = v
}

// Header returns the header value and whether it was present.
func (e *Envelope) Header(k string) (string, bool) {
	v, ok := e.Headers[k]
	return v, ok
}

// Marshal encodes the envelope to bytes. Headers are written in sorted key
// order so encoding is deterministic.
func Marshal(e *Envelope) ([]byte, error) {
	if len(e.Kind) >= maxStringLen || len(e.Corr) >= maxStringLen {
		return nil, fmt.Errorf("%w: kind or corr too long", ErrOversize)
	}
	if len(e.Body) >= maxBodyLen {
		return nil, fmt.Errorf("%w: body %d bytes", ErrOversize, len(e.Body))
	}
	if len(e.Headers) >= maxHeaders {
		return nil, fmt.Errorf("%w: %d headers", ErrOversize, len(e.Headers))
	}
	var buf bytes.Buffer
	writeU16 := func(v uint16) {
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], v)
		buf.Write(b[:])
	}
	writeU32 := func(v uint32) {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		buf.Write(b[:])
	}
	writeStr := func(s string) {
		writeU32(uint32(len(s)))
		buf.WriteString(s)
	}
	writeU16(magic)
	version := e.Version
	if version == 0 {
		version = Version
	}
	buf.WriteByte(version)
	writeStr(e.Kind)
	writeStr(e.Corr)
	keys := make([]string, 0, len(e.Headers))
	for k := range e.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	writeU16(uint16(len(keys)))
	for _, k := range keys {
		if len(k) >= maxStringLen || len(e.Headers[k]) >= maxStringLen {
			return nil, fmt.Errorf("%w: header %q", ErrOversize, k)
		}
		writeStr(k)
		writeStr(e.Headers[k])
	}
	writeU32(uint32(len(e.Body)))
	buf.Write(e.Body)
	return buf.Bytes(), nil
}

// Unmarshal decodes an envelope from bytes.
func Unmarshal(data []byte) (*Envelope, error) {
	r := &reader{data: data}
	m, err := r.u16()
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver == 0 || ver > Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	e := &Envelope{Version: ver}
	if e.Kind, err = r.str(); err != nil {
		return nil, err
	}
	if e.Corr, err = r.str(); err != nil {
		return nil, err
	}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		if n >= maxHeaders {
			return nil, fmt.Errorf("%w: %d headers", ErrOversize, n)
		}
		e.Headers = make(map[string]string, n)
		for i := 0; i < int(n); i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			v, err := r.str()
			if err != nil {
				return nil, err
			}
			e.Headers[k] = v
		}
	}
	body, err := r.bytes(maxBodyLen)
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		e.Body = body
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(r.data)-r.pos)
	}
	return e, nil
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) byte() (byte, error) {
	if r.pos+1 > len(r.data) {
		return 0, ErrTruncated
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	if r.pos+2 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.pos+4 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytesLimited(maxStringLen)
	return string(b), err
}

func (r *reader) bytes(limit int) ([]byte, error) {
	return r.bytesLimited(limit)
}

func (r *reader) bytesLimited(limit int) ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(n) >= limit {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, n)
	}
	if r.pos+int(n) > len(r.data) {
		return nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, r.data[r.pos:r.pos+int(n)])
	r.pos += int(n)
	return out, nil
}

// EncodeBody marshals v as JSON for use as an envelope body.
func EncodeBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: encode body: %w", err)
	}
	return b, nil
}

// DecodeBody unmarshals an envelope body produced by EncodeBody into v.
func DecodeBody(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: decode body: %w", err)
	}
	return nil
}
