// Package wire defines the on-the-wire envelope format shared by every
// protocol in the repository (rpc, mhs, rtc). An envelope carries a version,
// a kind discriminator, a correlation identifier, free-form headers, and an
// opaque body.
//
// The binary layout is deliberately simple and self-contained:
//
//	magic    uint16 = 0x0D9 ("ODP" truncated)
//	version  uint8
//	kind     lenString
//	corr     lenString
//	nheaders uint16, then nheaders × (lenString key, lenString value)
//	body     lenBytes
//
// where lenString/lenBytes is a uint32 length prefix followed by raw bytes.
// All integers are big-endian. Bodies are typically JSON produced by
// EncodeBody, keeping payloads debuggable; the envelope itself stays binary
// so framing is unambiguous.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"sync"
)

// Version is the base envelope format version. Envelopes that carry no
// trace context marshal as this version, byte-identical to every build
// before trace support existed.
const Version = 1

// TracedVersion is the envelope version that appends a fixed 24-byte
// trace block (trace id, span id, parent span id) after the body. An
// envelope marshals as TracedVersion exactly when its Trace field is
// set, so deployments with telemetry disabled emit version-1 bytes and
// old decoders never see a version they cannot parse unless a trace is
// actually present.
const TracedVersion = 2

// traceBlockLen is the encoded size of the trace block: three uint64s.
const traceBlockLen = 24

const magic uint16 = 0x0D9

// Maximum sizes guard against corrupt length prefixes.
const (
	maxStringLen = 1 << 16
	maxBodyLen   = 1 << 26 // 64 MiB
	maxHeaders   = 1 << 12
)

// MaxStringLen is the exclusive upper bound on encoded string length:
// strings must be strictly shorter than this to marshal. Writers that
// persist strings (e.g. the durable log) must enforce it up front —
// anything at or past the bound would encode but fail ConsumeString on
// the way back.
const MaxStringLen = maxStringLen

// TraceContext is the causal-tracing context an envelope can carry
// across a hop: which trace the frame belongs to, the span covering
// this hop, and that span's parent. A zero TraceContext means the frame
// is untraced.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Parent  uint64
}

// IsZero reports whether the context carries no trace.
func (tc TraceContext) IsZero() bool { return tc == TraceContext{} }

// Child returns a context for a new span under this one: same trace,
// the given span id, parented to this context's span.
func (tc TraceContext) Child(spanID uint64) TraceContext {
	return TraceContext{TraceID: tc.TraceID, SpanID: spanID, Parent: tc.SpanID}
}

// Envelope is the unit framed onto the simulated network.
type Envelope struct {
	Version byte
	Kind    string
	Corr    string
	Headers map[string]string
	Body    []byte
	Trace   TraceContext
}

// Errors returned by Unmarshal.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrTruncated  = errors.New("wire: truncated envelope")
	ErrOversize   = errors.New("wire: field exceeds size limit")
)

// NewEnvelope builds an envelope of the current version.
func NewEnvelope(kind, corr string, body []byte) *Envelope {
	return &Envelope{Version: Version, Kind: kind, Corr: corr, Body: body}
}

// SetHeader sets a header, allocating the map on first use.
func (e *Envelope) SetHeader(k, v string) {
	if e.Headers == nil {
		e.Headers = make(map[string]string)
	}
	e.Headers[k] = v
}

// Header returns the header value and whether it was present.
func (e *Envelope) Header(k string) (string, bool) {
	v, ok := e.Headers[k]
	return v, ok
}

// keyScratch pools the sorted-key slices used by Marshal so the hot path
// does not allocate per encode. The frame buffer itself cannot be pooled:
// netsim retains the payload until (possibly much later) simulated
// delivery, so ownership transfers to the network on Send.
var keyScratch = sync.Pool{
	New: func() any {
		s := make([]string, 0, 16)
		return &s
	},
}

// Marshal encodes the envelope to bytes. Headers are written in sorted key
// order so encoding is deterministic. The output is produced with a single
// exact-size allocation.
func Marshal(e *Envelope) ([]byte, error) {
	return AppendMarshal(nil, e)
}

// AppendMarshal appends the encoded envelope to dst and returns the
// extended slice, growing dst at most once.
func AppendMarshal(dst []byte, e *Envelope) ([]byte, error) {
	if len(e.Kind) >= maxStringLen || len(e.Corr) >= maxStringLen {
		return nil, fmt.Errorf("%w: kind or corr too long", ErrOversize)
	}
	if len(e.Body) >= maxBodyLen {
		return nil, fmt.Errorf("%w: body %d bytes", ErrOversize, len(e.Body))
	}
	if len(e.Headers) >= maxHeaders {
		return nil, fmt.Errorf("%w: %d headers", ErrOversize, len(e.Headers))
	}
	version := e.Version
	if version == 0 {
		version = Version
	}
	if !e.Trace.IsZero() && version < TracedVersion {
		version = TracedVersion
	}
	traced := version >= TracedVersion

	keysp := keyScratch.Get().(*[]string)
	keys := (*keysp)[:0]
	size := 2 + 1 + 4 + len(e.Kind) + 4 + len(e.Corr) + 2 + 4 + len(e.Body)
	if traced {
		size += traceBlockLen
	}
	for k, v := range e.Headers {
		if len(k) >= maxStringLen || len(v) >= maxStringLen {
			keyScratch.Put(keysp)
			return nil, fmt.Errorf("%w: header %q", ErrOversize, k)
		}
		keys = append(keys, k)
		size += 8 + len(k) + len(v)
	}
	slices.Sort(keys)

	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	buf := dst
	buf = binary.BigEndian.AppendUint16(buf, magic)
	buf = append(buf, version)
	buf = appendStr(buf, e.Kind)
	buf = appendStr(buf, e.Corr)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(keys)))
	for _, k := range keys {
		buf = appendStr(buf, k)
		buf = appendStr(buf, e.Headers[k])
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Body)))
	buf = append(buf, e.Body...)
	if traced {
		buf = binary.BigEndian.AppendUint64(buf, e.Trace.TraceID)
		buf = binary.BigEndian.AppendUint64(buf, e.Trace.SpanID)
		buf = binary.BigEndian.AppendUint64(buf, e.Trace.Parent)
	}

	*keysp = keys
	keyScratch.Put(keysp)
	return buf, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// Unmarshal decodes an envelope from bytes. The returned envelope's Body
// aliases data — the caller owns the input buffer and must not mutate it
// while the envelope is live. (Every producer in this repository hands the
// buffer over exactly once, so decode stays copy-free.)
func Unmarshal(data []byte) (*Envelope, error) {
	r := &reader{data: data}
	m, err := r.u16()
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver == 0 || ver > TracedVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	e := &Envelope{Version: ver}
	if e.Kind, err = r.str(); err != nil {
		return nil, err
	}
	if e.Corr, err = r.str(); err != nil {
		return nil, err
	}
	n, err := r.u16()
	if err != nil {
		return nil, err
	}
	if n > 0 {
		if n >= maxHeaders {
			return nil, fmt.Errorf("%w: %d headers", ErrOversize, n)
		}
		e.Headers = make(map[string]string, n)
		for i := 0; i < int(n); i++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			v, err := r.str()
			if err != nil {
				return nil, err
			}
			e.Headers[k] = v
		}
	}
	body, err := r.bytes(maxBodyLen)
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		e.Body = body
	}
	if ver >= TracedVersion {
		if e.Trace.TraceID, err = r.u64(); err != nil {
			return nil, err
		}
		if e.Trace.SpanID, err = r.u64(); err != nil {
			return nil, err
		}
		if e.Trace.Parent, err = r.u64(); err != nil {
			return nil, err
		}
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("wire: %d trailing bytes", len(r.data)-r.pos)
	}
	return e, nil
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) byte() (byte, error) {
	if r.pos+1 > len(r.data) {
		return 0, ErrTruncated
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	if r.pos+2 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint16(r.data[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.pos+8 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.pos+4 > len(r.data) {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	b, err := r.bytes(maxStringLen)
	return string(b), err
}

// bytes returns a sub-slice aliasing the input buffer; str converts (and so
// copies) immediately, while body bytes stay aliased per Unmarshal's
// contract.
func (r *reader) bytes(limit int) ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	// uint64 comparison so a corrupt length cannot overflow int on 32-bit.
	if uint64(n) >= uint64(limit) {
		return nil, fmt.Errorf("%w: %d bytes", ErrOversize, n)
	}
	if r.pos+int(n) > len(r.data) {
		return nil, ErrTruncated
	}
	out := r.data[r.pos : r.pos+int(n) : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// --- CRC-framed records ---------------------------------------------------
//
// Records are the framing unit of durable logs (the log-structured
// information store's WAL and snapshot files): a fixed header carrying the
// payload length and a CRC-32 checksum, then the payload bytes. Unlike
// envelopes, records never cross the network — the checksum exists so a
// torn write or bit rot at the tail of a log is detected and recovery can
// stop at the last intact record instead of replaying garbage.

// recordMagic distinguishes record framing from envelope framing, so a log
// file misread as an envelope stream (or vice versa) fails immediately.
const recordMagic uint16 = 0x0DA

// RecordOverhead is the number of framing bytes AppendRecord adds to a
// payload: magic, length, checksum.
const RecordOverhead = 2 + 4 + 4

// ErrBadCRC reports a record whose payload does not match its checksum.
var ErrBadCRC = errors.New("wire: record checksum mismatch")

// AppendRecord appends one CRC-framed record carrying payload to dst and
// returns the extended slice.
func AppendRecord(dst, payload []byte) ([]byte, error) {
	if len(payload) >= maxBodyLen {
		return nil, fmt.Errorf("%w: record payload %d bytes", ErrOversize, len(payload))
	}
	dst = binary.BigEndian.AppendUint16(dst, recordMagic)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...), nil
}

// NextRecord decodes the first record in data, returning its payload
// (aliasing data) and the remaining bytes. A short buffer returns
// ErrTruncated, a corrupted header ErrBadMagic or ErrOversize, and a
// payload failing its checksum ErrBadCRC — log recovery treats any of
// these as the end of the intact prefix.
func NextRecord(data []byte) (payload, rest []byte, err error) {
	if len(data) < RecordOverhead {
		return nil, data, ErrTruncated
	}
	if binary.BigEndian.Uint16(data) != recordMagic {
		return nil, data, ErrBadMagic
	}
	// Bounds-check in uint64: a corrupt length with the high bit set must
	// not overflow int on 32-bit platforms and dodge the checks.
	n := binary.BigEndian.Uint32(data[2:])
	if uint64(n) >= maxBodyLen {
		return nil, data, fmt.Errorf("%w: %d-byte record", ErrOversize, n)
	}
	if uint64(len(data)) < RecordOverhead+uint64(n) {
		return nil, data, ErrTruncated
	}
	sum := binary.BigEndian.Uint32(data[6:])
	payload = data[RecordOverhead : RecordOverhead+int(n) : RecordOverhead+int(n)]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, data, ErrBadCRC
	}
	return payload, data[RecordOverhead+int(n):], nil
}

// ReadRecord reads the next record from r into scratch (grown as needed)
// and returns the payload plus the possibly-reallocated scratch buffer —
// the streaming counterpart of NextRecord for callers iterating a log too
// large to hold in memory. A clean end of stream returns io.EOF; a stream
// ending inside a record returns ErrTruncated; framing and checksum
// failures return the same errors as NextRecord. The payload aliases
// scratch and is only valid until the next call.
func ReadRecord(r io.Reader, scratch []byte) (payload, newScratch []byte, err error) {
	var hdr [RecordOverhead]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, scratch, io.EOF
		}
		return nil, scratch, ErrTruncated
	}
	if binary.BigEndian.Uint16(hdr[:]) != recordMagic {
		return nil, scratch, ErrBadMagic
	}
	n := binary.BigEndian.Uint32(hdr[2:])
	if uint64(n) >= maxBodyLen {
		return nil, scratch, fmt.Errorf("%w: %d-byte record", ErrOversize, n)
	}
	if cap(scratch) < int(n) {
		scratch = make([]byte, n)
	}
	scratch = scratch[:n]
	if _, err := io.ReadFull(r, scratch); err != nil {
		return nil, scratch, ErrTruncated
	}
	if crc32.ChecksumIEEE(scratch) != binary.BigEndian.Uint32(hdr[6:]) {
		return nil, scratch, ErrBadCRC
	}
	return scratch, scratch, nil
}

// --- codec helpers --------------------------------------------------------
//
// Length-prefixed primitives shared by record payload codecs. They use the
// same layout as envelope fields (big-endian, uint32 length prefixes) so
// every byte format in the repository reads the same way.

// AppendString appends a length-prefixed string.
func AppendString(dst []byte, s string) []byte { return appendStr(dst, s) }

// ConsumeString decodes a length-prefixed string from data, returning it
// and the remaining bytes.
func ConsumeString(data []byte) (string, []byte, error) {
	if len(data) < 4 {
		return "", data, ErrTruncated
	}
	// uint64 comparisons, for the same 32-bit overflow reason as NextRecord.
	n := binary.BigEndian.Uint32(data)
	if uint64(n) >= maxStringLen {
		return "", data, fmt.Errorf("%w: %d-byte string", ErrOversize, n)
	}
	if uint64(len(data)) < 4+uint64(n) {
		return "", data, ErrTruncated
	}
	return string(data[4 : 4+int(n)]), data[4+int(n):], nil
}

// AppendUint64 appends a big-endian uint64.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// ConsumeUint64 decodes a big-endian uint64 from data, returning it and
// the remaining bytes.
func ConsumeUint64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, data, ErrTruncated
	}
	return binary.BigEndian.Uint64(data), data[8:], nil
}

// EncodeBody marshals v as JSON for use as an envelope body.
func EncodeBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: encode body: %w", err)
	}
	return b, nil
}

// DecodeBody unmarshals an envelope body produced by EncodeBody into v.
func DecodeBody(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("wire: decode body: %w", err)
	}
	return nil
}
