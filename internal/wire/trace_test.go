package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// TestUntracedMarshalIsVersion1 pins the compatibility contract: an
// envelope with no trace context must marshal byte-identically to the
// pre-trace format, so a telemetry-disabled deployment interops with
// (and is indistinguishable from) an old peer.
func TestUntracedMarshalIsVersion1(t *testing.T) {
	e := NewEnvelope("rpc.req", "call-9", []byte(`{"n":1}`))
	e.SetHeader("method", "svc.get")
	data, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if data[2] != Version {
		t.Fatalf("untraced envelope marshalled as version %d, want %d", data[2], Version)
	}

	// Hand-build the legacy frame and compare byte for byte.
	var legacy []byte
	legacy = binary.BigEndian.AppendUint16(legacy, 0x0D9)
	legacy = append(legacy, 1)
	legacy = AppendString(legacy, "rpc.req")
	legacy = AppendString(legacy, "call-9")
	legacy = binary.BigEndian.AppendUint16(legacy, 1)
	legacy = AppendString(legacy, "method")
	legacy = AppendString(legacy, "svc.get")
	legacy = binary.BigEndian.AppendUint32(legacy, 7)
	legacy = append(legacy, `{"n":1}`...)
	if !bytes.Equal(data, legacy) {
		t.Fatalf("untraced marshal diverged from legacy layout:\n got %x\nwant %x", data, legacy)
	}
}

// TestLegacyEnvelopeDecodesWithZeroTrace covers the backward direction:
// version-1 frames (from an old peer or a pre-trace log) decode cleanly
// and report a zero trace context.
func TestLegacyEnvelopeDecodesWithZeroTrace(t *testing.T) {
	e := NewEnvelope("replica.sync", "sync-1", []byte("payload"))
	data, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if !got.Trace.IsZero() {
		t.Fatalf("legacy envelope decoded with trace %+v", got.Trace)
	}
	if got.Version != Version {
		t.Fatalf("version = %d, want %d", got.Version, Version)
	}
}

// TestTracedRoundTrip checks the forward direction: the trace block
// survives marshal/unmarshal exactly and bumps the version to 2.
func TestTracedRoundTrip(t *testing.T) {
	e := NewEnvelope("rpc.req", "call-3", []byte(`{"x":true}`))
	e.SetHeader("method", "placement.write")
	e.Trace = TraceContext{TraceID: 0x0123456789abcdef, SpanID: 42, Parent: 41}
	data, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if data[2] != TracedVersion {
		t.Fatalf("traced envelope marshalled as version %d, want %d", data[2], TracedVersion)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != e.Trace {
		t.Fatalf("trace = %+v, want %+v", got.Trace, e.Trace)
	}
	if got.Kind != e.Kind || got.Corr != e.Corr || !bytes.Equal(got.Body, e.Body) {
		t.Fatalf("payload changed across traced round-trip")
	}
	if got.Headers["method"] != "placement.write" {
		t.Fatalf("headers changed across traced round-trip: %v", got.Headers)
	}
}

// TestTracedVersionWithoutBlockRejected: a version-2 frame whose trace
// block is missing or short must fail, never mis-parse.
func TestTracedVersionWithoutBlockRejected(t *testing.T) {
	e := NewEnvelope("k", "c", nil)
	e.Trace = TraceContext{TraceID: 1, SpanID: 2, Parent: 3}
	data, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut <= traceBlockLen; cut++ {
		if _, err := Unmarshal(data[:len(data)-cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestFutureVersionRejected: versions past TracedVersion stay rejected
// so a future format bump cannot be silently mis-decoded.
func TestFutureVersionRejected(t *testing.T) {
	e := NewEnvelope("k", "c", nil)
	data, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	data[2] = TracedVersion + 1
	if _, err := Unmarshal(data); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

// TestTraceContextChild pins the parenting rule used at every hop.
func TestTraceContextChild(t *testing.T) {
	root := TraceContext{TraceID: 10, SpanID: 11}
	child := root.Child(12)
	want := TraceContext{TraceID: 10, SpanID: 12, Parent: 11}
	if child != want {
		t.Fatalf("child = %+v, want %+v", child, want)
	}
	if (TraceContext{}).Child(5).TraceID != 0 {
		t.Fatalf("zero parent should produce zero trace id")
	}
	if !(TraceContext{}).IsZero() || root.IsZero() {
		t.Fatalf("IsZero misbehaves")
	}
}
