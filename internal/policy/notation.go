package policy

import (
	"fmt"
	"strings"
)

// ParseRule parses the user-facing rule notation:
//
//	rule <name> [priority <n>]
//	on <event-kind>
//	[when <attr> == <value> [and <attr> != <value> ...]]
//	do <action> [key=value ...]
//
// Example:
//
//	rule urgent-mail priority 10
//	on mhs.delivered
//	when priority == urgent and folder != spam
//	do notify channel=popup
//
// Clauses may be separated by newlines or semicolons. Values containing
// spaces are double-quoted. The operators == != and contains are supported.
func ParseRule(text string, author AuthorLevel) (Rule, error) {
	r := Rule{Author: author, Args: map[string]string{}}
	clauses := splitClauses(text)
	if len(clauses) == 0 {
		return r, fmt.Errorf("%w: empty rule", ErrBadRule)
	}
	var conds []Condition
	for _, clause := range clauses {
		fields := tokenize(clause)
		if len(fields) == 0 {
			continue
		}
		switch strings.ToLower(fields[0]) {
		case "rule":
			if len(fields) < 2 {
				return r, fmt.Errorf("%w: rule clause needs a name", ErrBadRule)
			}
			r.Name = fields[1]
			if len(fields) >= 4 && strings.EqualFold(fields[2], "priority") {
				var p int
				if _, err := fmt.Sscanf(fields[3], "%d", &p); err != nil {
					return r, fmt.Errorf("%w: bad priority %q", ErrBadRule, fields[3])
				}
				r.Priority = p
			}
		case "on":
			if len(fields) != 2 {
				return r, fmt.Errorf("%w: on clause needs one event kind", ErrBadRule)
			}
			r.On = fields[1]
		case "when":
			cs, err := parseConditions(fields[1:])
			if err != nil {
				return r, err
			}
			conds = append(conds, cs...)
		case "do":
			if len(fields) < 2 {
				return r, fmt.Errorf("%w: do clause needs an action", ErrBadRule)
			}
			r.ActionName = fields[1]
			for _, kv := range fields[2:] {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return r, fmt.Errorf("%w: bad action arg %q", ErrBadRule, kv)
				}
				r.Args[parts[0]] = parts[1]
			}
		default:
			return r, fmt.Errorf("%w: unknown clause %q", ErrBadRule, fields[0])
		}
	}
	if r.Name == "" {
		return r, fmt.Errorf("%w: missing rule clause", ErrBadRule)
	}
	if r.On == "" {
		return r, fmt.Errorf("%w: missing on clause", ErrBadRule)
	}
	if r.ActionName == "" {
		return r, fmt.Errorf("%w: missing do clause", ErrBadRule)
	}
	switch len(conds) {
	case 0:
		r.Condition = True()
	case 1:
		r.Condition = conds[0]
	default:
		r.Condition = AllOf(conds...)
	}
	return r, nil
}

// parseConditions parses "<attr> <op> <value> [and ...]" token runs.
func parseConditions(fields []string) ([]Condition, error) {
	var out []Condition
	i := 0
	for i < len(fields) {
		if strings.EqualFold(fields[i], "and") {
			i++
			continue
		}
		if i+2 >= len(fields) {
			return nil, fmt.Errorf("%w: incomplete condition near %q", ErrBadRule, strings.Join(fields[i:], " "))
		}
		attr, op, val := fields[i], fields[i+1], fields[i+2]
		switch op {
		case "==":
			out = append(out, AttrEq(attr, val))
		case "!=":
			out = append(out, AttrNe(attr, val))
		case "contains":
			out = append(out, AttrContains(attr, val))
		default:
			return nil, fmt.Errorf("%w: unknown operator %q", ErrBadRule, op)
		}
		i += 3
	}
	return out, nil
}

// splitClauses breaks rule text on newlines and semicolons.
func splitClauses(text string) []string {
	var out []string
	for _, line := range strings.FieldsFunc(text, func(r rune) bool { return r == '\n' || r == ';' }) {
		line = strings.TrimSpace(line)
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}

// tokenize splits a clause on spaces, honouring double quotes.
func tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
		case c == ' ' || c == '\t':
			if inQuote {
				cur.WriteByte(c)
				continue
			}
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// InstallRuleText parses and installs a rule in one step.
func (e *Engine) InstallRuleText(text string, author AuthorLevel) (string, error) {
	r, err := ParseRule(text, author)
	if err != nil {
		return "", err
	}
	if err := e.AddRule(r); err != nil {
		return "", err
	}
	return r.Name, nil
}
