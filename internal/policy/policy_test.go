package policy

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newEngineWithActions(t *testing.T) (*Engine, *[]string) {
	t.Helper()
	e := NewEngine()
	var log []string
	e.RegisterAction("notify", func(ev Event, args map[string]string) error {
		log = append(log, "notify:"+ev.Kind+":"+args["channel"])
		return nil
	}, true)
	e.RegisterAction("archive", func(ev Event, args map[string]string) error {
		log = append(log, "archive:"+ev.Attr("id"))
		return nil
	}, true)
	e.RegisterAction("purge", func(ev Event, args map[string]string) error {
		log = append(log, "purge")
		return nil
	}, false) // developer-only
	e.RegisterAction("fail", func(ev Event, args map[string]string) error {
		return errors.New("boom")
	}, true)
	return e, &log
}

func TestBasicDispatch(t *testing.T) {
	e, log := newEngineWithActions(t)
	err := e.AddRule(Rule{
		Name:       "mail-popup",
		On:         "mhs.delivered",
		Condition:  AttrEq("priority", "urgent"),
		ActionName: "notify",
		Args:       map[string]string{"channel": "popup"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := e.Dispatch(Event{Kind: "mhs.delivered", Attrs: map[string]string{"priority": "urgent"}})
	if n != 1 || len(*log) != 1 || (*log)[0] != "notify:mhs.delivered:popup" {
		t.Fatalf("fired %d, log %v", n, *log)
	}
	// Non-matching condition.
	n = e.Dispatch(Event{Kind: "mhs.delivered", Attrs: map[string]string{"priority": "normal"}})
	if n != 0 {
		t.Fatalf("fired %d for non-matching event", n)
	}
	// Non-matching kind.
	n = e.Dispatch(Event{Kind: "rtc.joined"})
	if n != 0 {
		t.Fatalf("fired %d for wrong kind", n)
	}
}

func TestWildcardAndPriorityOrder(t *testing.T) {
	e, log := newEngineWithActions(t)
	if err := e.AddRule(Rule{Name: "low", On: "*", ActionName: "archive", Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{Name: "high", On: "*", ActionName: "notify", Priority: 10}); err != nil {
		t.Fatal(err)
	}
	e.Dispatch(Event{Kind: "anything", Attrs: map[string]string{"id": "7"}})
	if len(*log) != 2 || (*log)[0][:6] != "notify" || (*log)[1] != "archive:7" {
		t.Fatalf("order = %v", *log)
	}
}

func TestUserLevelActionRestrictions(t *testing.T) {
	e, _ := newEngineWithActions(t)
	err := e.AddRule(Rule{Name: "u1", On: "x", ActionName: "purge", Author: LevelUser})
	if !errors.Is(err, ErrActionDenied) {
		t.Fatalf("user purge rule: %v", err)
	}
	if err := e.AddRule(Rule{Name: "u2", On: "x", ActionName: "notify", Author: LevelUser}); err != nil {
		t.Fatalf("user notify rule: %v", err)
	}
	// Developers may use anything.
	if err := e.AddRule(Rule{Name: "d1", On: "x", ActionName: "purge", Author: LevelDeveloper}); err != nil {
		t.Fatal(err)
	}
}

func TestEnableDisableRemove(t *testing.T) {
	e, log := newEngineWithActions(t)
	if err := e.AddRule(Rule{Name: "r", On: "x", ActionName: "notify"}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetEnabled("r", false); err != nil {
		t.Fatal(err)
	}
	e.Dispatch(Event{Kind: "x"})
	if len(*log) != 0 {
		t.Fatal("disabled rule fired")
	}
	if err := e.SetEnabled("r", true); err != nil {
		t.Fatal(err)
	}
	e.Dispatch(Event{Kind: "x"})
	if len(*log) != 1 {
		t.Fatal("re-enabled rule did not fire")
	}
	if err := e.RemoveRule("r"); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveRule("r"); !errors.Is(err, ErrUnknownRule) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestActionErrorsAreContained(t *testing.T) {
	e, _ := newEngineWithActions(t)
	if err := e.AddRule(Rule{Name: "bad", On: "x", ActionName: "fail"}); err != nil {
		t.Fatal(err)
	}
	n := e.Dispatch(Event{Kind: "x"})
	if n != 1 {
		t.Fatalf("fired = %d", n)
	}
	st := e.Stats()
	if st.Errors != 1 || st.Fired != 1 {
		t.Fatalf("stats = %+v", st)
	}
	trace := e.Trace()
	if len(trace) != 1 || trace[0].Err == nil {
		t.Fatalf("trace = %+v", trace)
	}
}

func TestDuplicateAndUnknownAction(t *testing.T) {
	e, _ := newEngineWithActions(t)
	if err := e.AddRule(Rule{Name: "r", On: "x", ActionName: "notify"}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{Name: "r", On: "x", ActionName: "notify"}); !errors.Is(err, ErrRuleExists) {
		t.Fatalf("dup: %v", err)
	}
	if err := e.AddRule(Rule{Name: "r2", On: "x", ActionName: "ghost"}); !errors.Is(err, ErrUnknownAction) {
		t.Fatalf("ghost action: %v", err)
	}
}

func TestConditions(t *testing.T) {
	ev := Event{Kind: "k", Attrs: map[string]string{"a": "hello world", "b": "2"}}
	tests := []struct {
		cond Condition
		want bool
	}{
		{True(), true},
		{AttrEq("a", "hello world"), true},
		{AttrEq("a", "x"), false},
		{AttrNe("a", "x"), true},
		{AttrContains("a", "lo wo"), true},
		{AttrContains("a", "xyz"), false},
		{AllOf(AttrEq("b", "2"), AttrContains("a", "hello")), true},
		{AllOf(AttrEq("b", "2"), AttrEq("a", "no")), false},
		{AttrEq("missing", ""), true}, // absent attr reads as ""
	}
	for _, tt := range tests {
		if got := tt.cond.Eval(ev); got != tt.want {
			t.Errorf("%s = %v, want %v", tt.cond, got, tt.want)
		}
	}
}

func TestParseRuleNotation(t *testing.T) {
	text := `rule urgent-mail priority 10
on mhs.delivered
when priority == urgent and folder != spam
do notify channel=popup`
	r, err := ParseRule(text, LevelUser)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "urgent-mail" || r.Priority != 10 || r.On != "mhs.delivered" || r.ActionName != "notify" {
		t.Fatalf("parsed = %+v", r)
	}
	if r.Args["channel"] != "popup" {
		t.Fatalf("args = %v", r.Args)
	}
	if !r.Condition.Eval(Event{Kind: "mhs.delivered", Attrs: map[string]string{"priority": "urgent", "folder": "inbox"}}) {
		t.Fatal("condition should match")
	}
	if r.Condition.Eval(Event{Kind: "mhs.delivered", Attrs: map[string]string{"priority": "urgent", "folder": "spam"}}) {
		t.Fatal("condition should reject spam folder")
	}
}

func TestParseRuleSemicolonsAndQuotes(t *testing.T) {
	r, err := ParseRule(`rule q; on ev; when subject contains "project review"; do archive`, LevelDeveloper)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Condition.Eval(Event{Kind: "ev", Attrs: map[string]string{"subject": "the project review friday"}}) {
		t.Fatal("quoted substring condition failed")
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		"",
		"on x; do a",                      // missing rule
		"rule r; do a",                    // missing on
		"rule r; on x",                    // missing do
		"rule r; on x; when a ~ b; do n",  // bad operator
		"rule r; on x; when a ==; do n",   // incomplete condition
		"rule r; on x; do n badarg",       // malformed arg
		"rule r priority abc; on x; do n", // bad priority
		"rule r; on x y; do n",            // extra token in on
		"rule r; banana; do n",            // unknown clause
	}
	for _, text := range bad {
		if _, err := ParseRule(text, LevelDeveloper); !errors.Is(err, ErrBadRule) {
			t.Errorf("ParseRule(%q) err = %v, want ErrBadRule", text, err)
		}
	}
}

func TestInstallRuleText(t *testing.T) {
	e, log := newEngineWithActions(t)
	name, err := e.InstallRuleText("rule auto-archive; on info.put; do archive", LevelUser)
	if err != nil {
		t.Fatal(err)
	}
	if name != "auto-archive" {
		t.Fatalf("name = %q", name)
	}
	e.Dispatch(Event{Kind: "info.put", Attrs: map[string]string{"id": "42"}})
	if len(*log) != 1 || (*log)[0] != "archive:42" {
		t.Fatalf("log = %v", *log)
	}
	// User rules with privileged actions rejected at install.
	if _, err := e.InstallRuleText("rule p; on x; do purge", LevelUser); !errors.Is(err, ErrActionDenied) {
		t.Fatalf("user purge: %v", err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = ParseRule(s, LevelUser)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceBounded(t *testing.T) {
	e, _ := newEngineWithActions(t)
	if err := e.AddRule(Rule{Name: "r", On: "*", ActionName: "notify"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		e.Dispatch(Event{Kind: fmt.Sprintf("k%d", i)})
	}
	if n := len(e.Trace()); n != 512 {
		t.Fatalf("trace len = %d, want cap 512", n)
	}
}
