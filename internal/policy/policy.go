// Package policy is the tailorability toolkit the paper requires:
// "systems and the environment need to be tailorable both by developers and
// users... the environment need to provide a set of services akin to a
// developers toolkit to enable this tailorability... possible notations,
// languages, or services to support this tailorability will be an important
// area of research."
//
// It provides an event-condition-action (ECA) rule engine with a small
// textual notation, so both developers (Go API) and users (notation) can
// customise environment behaviour. Rules carry an author level; user rules
// can be restricted to a subset of actions — the paper's observation that
// "the traditional divide between users and developers becomes less clear"
// with guard rails.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event is an environment occurrence the engine reacts to: a kind plus
// free-form attributes.
type Event struct {
	Kind  string
	Attrs map[string]string
}

// Attr returns an attribute ("" when absent).
func (e Event) Attr(key string) string { return e.Attrs[key] }

// Condition guards a rule.
type Condition interface {
	// Eval reports whether the rule should fire for the event.
	Eval(ev Event) bool
	// String renders the condition in the notation.
	String() string
}

// Action is invoked when a rule fires. Implementations are registered with
// the engine by name so the notation can reference them.
type Action func(ev Event, args map[string]string) error

// AuthorLevel separates developer-installed from user-installed rules.
type AuthorLevel int

// Author levels.
const (
	LevelDeveloper AuthorLevel = iota + 1
	LevelUser
)

// String implements fmt.Stringer.
func (l AuthorLevel) String() string {
	switch l {
	case LevelDeveloper:
		return "developer"
	case LevelUser:
		return "user"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Rule is one ECA rule.
type Rule struct {
	Name       string
	On         string // event kind ("*" = all)
	Condition  Condition
	ActionName string
	Args       map[string]string
	Author     AuthorLevel
	Enabled    bool
	Priority   int // higher fires first
}

// Errors of the engine.
var (
	ErrUnknownAction = errors.New("policy: unknown action")
	ErrRuleExists    = errors.New("policy: rule already exists")
	ErrUnknownRule   = errors.New("policy: unknown rule")
	ErrActionDenied  = errors.New("policy: action not permitted at author level")
	ErrBadRule       = errors.New("policy: malformed rule")
)

// Firing records one rule execution for diagnostics.
type Firing struct {
	Rule  string
	Event string
	Err   error
}

// Engine evaluates rules against dispatched events.
type Engine struct {
	mu          sync.RWMutex
	rules       map[string]*Rule
	actions     map[string]Action
	userAllowed map[string]bool // actions permitted for user-level rules
	trace       []Firing
	stats       Stats
}

// Stats counts engine activity.
type Stats struct {
	Dispatched int64
	Fired      int64
	Errors     int64
}

// NewEngine creates an empty engine.
func NewEngine() *Engine {
	return &Engine{
		rules:       make(map[string]*Rule),
		actions:     make(map[string]Action),
		userAllowed: make(map[string]bool),
	}
}

// RegisterAction makes an action available to rules. userInstallable
// permits user-level rules to reference it.
func (e *Engine) RegisterAction(name string, fn Action, userInstallable bool) {
	name = strings.ToLower(name)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.actions[name] = fn
	if userInstallable {
		e.userAllowed[name] = true
	}
}

// AddRule installs a rule. User-level rules may only use user-installable
// actions.
func (e *Engine) AddRule(r Rule) error {
	r.ActionName = strings.ToLower(r.ActionName)
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[r.Name]; ok {
		return fmt.Errorf("%w: %q", ErrRuleExists, r.Name)
	}
	if _, ok := e.actions[r.ActionName]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownAction, r.ActionName)
	}
	if r.Author == LevelUser && !e.userAllowed[r.ActionName] {
		return fmt.Errorf("%w: %q", ErrActionDenied, r.ActionName)
	}
	if r.Author == 0 {
		r.Author = LevelDeveloper
	}
	r.Enabled = true
	if r.Condition == nil {
		r.Condition = True()
	}
	e.rules[r.Name] = &r
	return nil
}

// RemoveRule deletes a rule.
func (e *Engine) RemoveRule(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
	delete(e.rules, name)
	return nil
}

// SetEnabled toggles a rule.
func (e *Engine) SetEnabled(name string, enabled bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.rules[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRule, name)
	}
	r.Enabled = enabled
	return nil
}

// Rules lists installed rule names, sorted.
func (e *Engine) Rules() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.rules))
	for name := range e.rules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.stats
}

// Trace returns recent firings.
func (e *Engine) Trace() []Firing {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]Firing(nil), e.trace...)
}

// Dispatch evaluates the event against all rules; matching enabled rules
// fire in (priority desc, name) order. Action errors are recorded, not
// propagated — tailoring must not break the environment.
func (e *Engine) Dispatch(ev Event) int {
	e.mu.Lock()
	e.stats.Dispatched++
	matched := make([]*Rule, 0, 4)
	for _, r := range e.rules {
		if !r.Enabled {
			continue
		}
		if r.On != "*" && r.On != ev.Kind {
			continue
		}
		if !r.Condition.Eval(ev) {
			continue
		}
		matched = append(matched, r)
	}
	sort.Slice(matched, func(i, j int) bool {
		if matched[i].Priority != matched[j].Priority {
			return matched[i].Priority > matched[j].Priority
		}
		return matched[i].Name < matched[j].Name
	})
	type firing struct {
		rule *Rule
		fn   Action
	}
	firings := make([]firing, len(matched))
	for i, r := range matched {
		firings[i] = firing{rule: r, fn: e.actions[r.ActionName]}
	}
	e.mu.Unlock()

	fired := 0
	for _, f := range firings {
		err := f.fn(ev, f.rule.Args)
		fired++
		e.mu.Lock()
		e.stats.Fired++
		if err != nil {
			e.stats.Errors++
		}
		e.trace = append(e.trace, Firing{Rule: f.rule.Name, Event: ev.Kind, Err: err})
		if len(e.trace) > 512 {
			e.trace = e.trace[len(e.trace)-512:]
		}
		e.mu.Unlock()
	}
	return fired
}

// Conditions

// True always fires.
func True() Condition { return trueCond{} }

type trueCond struct{}

func (trueCond) Eval(Event) bool { return true }
func (trueCond) String() string  { return "true" }

// AttrEq fires when the event attribute equals value.
func AttrEq(key, value string) Condition { return attrEq{key, value} }

type attrEq struct{ key, value string }

func (c attrEq) Eval(ev Event) bool { return ev.Attr(c.key) == c.value }
func (c attrEq) String() string     { return c.key + " == " + quoteIfNeeded(c.value) }

// AttrNe fires when the event attribute differs from value.
func AttrNe(key, value string) Condition { return attrNe{key, value} }

type attrNe struct{ key, value string }

func (c attrNe) Eval(ev Event) bool { return ev.Attr(c.key) != c.value }
func (c attrNe) String() string     { return c.key + " != " + quoteIfNeeded(c.value) }

// AttrContains fires when the event attribute contains the substring.
func AttrContains(key, sub string) Condition { return attrContains{key, sub} }

type attrContains struct{ key, sub string }

func (c attrContains) Eval(ev Event) bool {
	return strings.Contains(ev.Attr(c.key), c.sub)
}
func (c attrContains) String() string { return c.key + " contains " + quoteIfNeeded(c.sub) }

// AllOf fires when every sub-condition fires.
func AllOf(cs ...Condition) Condition { return allOf(cs) }

type allOf []Condition

func (c allOf) Eval(ev Event) bool {
	for _, sub := range c {
		if !sub.Eval(ev) {
			return false
		}
	}
	return true
}

func (c allOf) String() string {
	parts := make([]string, len(c))
	for i, sub := range c {
		parts[i] = sub.String()
	}
	return strings.Join(parts, " and ")
}

func quoteIfNeeded(s string) string {
	if strings.ContainsAny(s, " \t'\"") || s == "" {
		return fmt.Sprintf("%q", s)
	}
	return s
}
