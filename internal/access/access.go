// Package access provides the role-based access control the paper's
// information-sharing requirement names: "appropriate access control
// mechanisms. (Traditionally, roles have been used to signify different
// access rights of users.)"
//
// Principals hold roles, globally or scoped to an organisation or activity;
// roles inherit from parent roles; permissions grant operations over
// resource patterns. The information model and activity model consult a
// Checker before every guarded operation.
package access

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op is a guarded operation.
type Op string

// Operations used across the environment.
const (
	OpRead       Op = "read"
	OpWrite      Op = "write"
	OpShare      Op = "share"
	OpJoin       Op = "join"
	OpCoordinate Op = "coordinate"
	OpAdmin      Op = "admin"
)

// GlobalScope is the scope value meaning "everywhere".
const GlobalScope = ""

// Errors returned by the system.
var (
	ErrUnknownRole = errors.New("access: unknown role")
	ErrRoleExists  = errors.New("access: role already defined")
	ErrRoleCycle   = errors.New("access: role inheritance cycle")
)

// permission grants op over resources matching pattern ('*' wildcards).
type permission struct {
	op      Op
	pattern string
}

// Decision records one authorisation check, for auditing.
type Decision struct {
	Principal string
	Op        Op
	Resource  string
	Scope     string
	Allowed   bool
}

// auditLimit bounds the in-memory audit trail.
const auditLimit = 1024

// System is an RBAC database. Safe for concurrent use.
type System struct {
	mu          sync.RWMutex
	roles       map[string][]string // role -> parent roles
	rolePerms   map[string][]permission
	principals  map[string][]permission               // direct grants
	assignments map[string]map[string]map[string]bool // principal -> scope -> roles
	audit       []Decision
}

// NewSystem creates an empty RBAC system.
func NewSystem() *System {
	return &System{
		roles:       make(map[string][]string),
		rolePerms:   make(map[string][]permission),
		principals:  make(map[string][]permission),
		assignments: make(map[string]map[string]map[string]bool),
	}
}

// DefineRole declares a role, optionally inheriting from parents (which
// must already exist). Inheritance must stay acyclic.
func (s *System) DefineRole(name string, parents ...string) error {
	name = strings.ToLower(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roles[name]; ok {
		return fmt.Errorf("%w: %q", ErrRoleExists, name)
	}
	lowered := make([]string, len(parents))
	for i, p := range parents {
		p = strings.ToLower(p)
		if _, ok := s.roles[p]; !ok {
			return fmt.Errorf("%w: parent %q", ErrUnknownRole, p)
		}
		lowered[i] = p
	}
	s.roles[name] = lowered
	return nil
}

// HasRole reports whether the role exists.
func (s *System) HasRole(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.roles[strings.ToLower(name)]
	return ok
}

// Grant gives a role permission to perform op on resources matching
// pattern.
func (s *System) Grant(role string, op Op, pattern string) error {
	role = strings.ToLower(role)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roles[role]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	s.rolePerms[role] = append(s.rolePerms[role], permission{op: op, pattern: pattern})
	return nil
}

// GrantPrincipal gives one principal a direct permission.
func (s *System) GrantPrincipal(principal string, op Op, pattern string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.principals[principal] = append(s.principals[principal], permission{op: op, pattern: pattern})
}

// Assign gives the principal a role within a scope (GlobalScope for
// everywhere).
func (s *System) Assign(principal, role, scope string) error {
	role = strings.ToLower(role)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.roles[role]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRole, role)
	}
	if s.assignments[principal] == nil {
		s.assignments[principal] = make(map[string]map[string]bool)
	}
	if s.assignments[principal][scope] == nil {
		s.assignments[principal][scope] = make(map[string]bool)
	}
	s.assignments[principal][scope][role] = true
	return nil
}

// Revoke removes a role assignment.
func (s *System) Revoke(principal, role, scope string) {
	role = strings.ToLower(role)
	s.mu.Lock()
	defer s.mu.Unlock()
	if scopes, ok := s.assignments[principal]; ok {
		if roles, ok := scopes[scope]; ok {
			delete(roles, role)
		}
	}
}

// RolesOf returns the principal's effective roles in the scope (scoped +
// global + inherited), sorted.
func (s *System) RolesOf(principal, scope string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := s.effectiveRolesLocked(principal, scope)
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// effectiveRolesLocked expands assignments with inheritance.
func (s *System) effectiveRolesLocked(principal, scope string) map[string]bool {
	out := make(map[string]bool)
	var expand func(role string, depth int)
	expand = func(role string, depth int) {
		if out[role] || depth > 32 {
			return
		}
		out[role] = true
		for _, parent := range s.roles[role] {
			expand(parent, depth+1)
		}
	}
	if scopes, ok := s.assignments[principal]; ok {
		for r := range scopes[GlobalScope] {
			expand(r, 0)
		}
		if scope != GlobalScope {
			for r := range scopes[scope] {
				expand(r, 0)
			}
		}
	}
	return out
}

// Can reports whether the principal may perform op on resource, considering
// global-scope roles and direct grants.
func (s *System) Can(principal string, op Op, resource string) bool {
	return s.CanInScope(principal, op, resource, GlobalScope)
}

// CanInScope is Can with scoped role assignments also in force.
func (s *System) CanInScope(principal string, op Op, resource, scope string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	allowed := s.checkLocked(principal, op, resource, scope)
	s.audit = append(s.audit, Decision{
		Principal: principal, Op: op, Resource: resource, Scope: scope, Allowed: allowed,
	})
	if len(s.audit) > auditLimit {
		s.audit = s.audit[len(s.audit)-auditLimit:]
	}
	return allowed
}

func (s *System) checkLocked(principal string, op Op, resource, scope string) bool {
	for _, p := range s.principals[principal] {
		if p.op == op && globMatch(p.pattern, resource) {
			return true
		}
	}
	for role := range s.effectiveRolesLocked(principal, scope) {
		for _, p := range s.rolePerms[role] {
			if p.op == op && globMatch(p.pattern, resource) {
				return true
			}
		}
	}
	return false
}

// Audit returns a copy of the recent decision trail.
func (s *System) Audit() []Decision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Decision(nil), s.audit...)
}

// DeniedCount counts denials in the audit trail (test/diagnostic helper).
func (s *System) DeniedCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, d := range s.audit {
		if !d.Allowed {
			n++
		}
	}
	return n
}

// globMatch matches pattern with '*' wildcards against s.
func globMatch(pattern, s string) bool {
	var pi, si int
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && pattern[pi] == '*':
			star, mark = pi, si
			pi++
		case pi < len(pattern) && pattern[pi] == s[si]:
			pi++
			si++
		case star >= 0:
			mark++
			si = mark
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '*' {
		pi++
	}
	return pi == len(pattern)
}
