package access

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

// newProjectSystem models the paper's Channel-Tunnel example: a project
// with managers, engineers, and external reviewers.
func newProjectSystem(t *testing.T) *System {
	t.Helper()
	s := NewSystem()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.DefineRole("member"))
	must(s.DefineRole("engineer", "member"))
	must(s.DefineRole("manager", "engineer"))
	must(s.DefineRole("reviewer"))

	must(s.Grant("member", OpRead, "info/*"))
	must(s.Grant("engineer", OpWrite, "info/drawings/*"))
	must(s.Grant("manager", OpCoordinate, "activity/*"))
	must(s.Grant("manager", OpShare, "info/*"))
	must(s.Grant("reviewer", OpRead, "info/reports/*"))
	return s
}

func TestRoleInheritance(t *testing.T) {
	s := newProjectSystem(t)
	if err := s.Assign("ada", "manager", GlobalScope); err != nil {
		t.Fatal(err)
	}
	// Manager inherits engineer and member permissions.
	tests := []struct {
		op   Op
		res  string
		want bool
	}{
		{OpRead, "info/reports/q1", true},         // via member
		{OpWrite, "info/drawings/tunnel-7", true}, // via engineer
		{OpCoordinate, "activity/progress", true}, // direct
		{OpWrite, "info/reports/q1", false},       // engineers write drawings only
		{OpAdmin, "info/reports/q1", false},
	}
	for _, tt := range tests {
		if got := s.Can("ada", tt.op, tt.res); got != tt.want {
			t.Errorf("Can(ada, %s, %s) = %v, want %v", tt.op, tt.res, got, tt.want)
		}
	}
}

func TestScopedAssignment(t *testing.T) {
	s := newProjectSystem(t)
	// bob is an engineer only within the "tunnel" activity scope.
	if err := s.Assign("bob", "engineer", "activity/tunnel"); err != nil {
		t.Fatal(err)
	}
	if s.Can("bob", OpWrite, "info/drawings/x") {
		t.Fatal("scoped role leaked into global scope")
	}
	if !s.CanInScope("bob", OpWrite, "info/drawings/x", "activity/tunnel") {
		t.Fatal("scoped role not effective in its scope")
	}
	if s.CanInScope("bob", OpWrite, "info/drawings/x", "activity/bridge") {
		t.Fatal("scoped role effective in wrong scope")
	}
}

func TestGlobalRoleWorksInAnyScope(t *testing.T) {
	s := newProjectSystem(t)
	if err := s.Assign("carol", "member", GlobalScope); err != nil {
		t.Fatal(err)
	}
	if !s.CanInScope("carol", OpRead, "info/x", "activity/anything") {
		t.Fatal("global role not effective in scoped check")
	}
}

func TestRevoke(t *testing.T) {
	s := newProjectSystem(t)
	if err := s.Assign("dan", "manager", GlobalScope); err != nil {
		t.Fatal(err)
	}
	if !s.Can("dan", OpShare, "info/doc") {
		t.Fatal("grant not effective")
	}
	s.Revoke("dan", "manager", GlobalScope)
	if s.Can("dan", OpShare, "info/doc") {
		t.Fatal("revoked role still effective")
	}
}

func TestDirectPrincipalGrant(t *testing.T) {
	s := newProjectSystem(t)
	s.GrantPrincipal("eve", OpRead, "info/public/*")
	if !s.Can("eve", OpRead, "info/public/readme") {
		t.Fatal("direct grant not effective")
	}
	if s.Can("eve", OpRead, "info/secret") {
		t.Fatal("direct grant over-broad")
	}
}

func TestUnknownRoleErrors(t *testing.T) {
	s := NewSystem()
	if err := s.Assign("x", "ghost", GlobalScope); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("Assign ghost: %v", err)
	}
	if err := s.Grant("ghost", OpRead, "*"); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("Grant ghost: %v", err)
	}
	if err := s.DefineRole("a", "ghost"); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("DefineRole with ghost parent: %v", err)
	}
	if err := s.DefineRole("b"); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineRole("b"); !errors.Is(err, ErrRoleExists) {
		t.Fatalf("duplicate DefineRole: %v", err)
	}
}

func TestRolesOf(t *testing.T) {
	s := newProjectSystem(t)
	if err := s.Assign("ada", "manager", GlobalScope); err != nil {
		t.Fatal(err)
	}
	if err := s.Assign("ada", "reviewer", "activity/audit"); err != nil {
		t.Fatal(err)
	}
	global := s.RolesOf("ada", GlobalScope)
	want := []string{"engineer", "manager", "member"}
	if fmt.Sprint(global) != fmt.Sprint(want) {
		t.Fatalf("RolesOf global = %v, want %v", global, want)
	}
	scoped := s.RolesOf("ada", "activity/audit")
	if len(scoped) != 4 {
		t.Fatalf("RolesOf scoped = %v", scoped)
	}
}

func TestAuditTrail(t *testing.T) {
	s := newProjectSystem(t)
	if err := s.Assign("ada", "member", GlobalScope); err != nil {
		t.Fatal(err)
	}
	s.Can("ada", OpRead, "info/x")  // allowed
	s.Can("ada", OpWrite, "info/x") // denied
	audit := s.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit has %d entries", len(audit))
	}
	if !audit[0].Allowed || audit[1].Allowed {
		t.Fatalf("audit = %+v", audit)
	}
	if s.DeniedCount() != 1 {
		t.Fatalf("DeniedCount = %d", s.DeniedCount())
	}
}

func TestAuditBounded(t *testing.T) {
	s := newProjectSystem(t)
	for i := 0; i < auditLimit+100; i++ {
		s.Can("nobody", OpRead, "info/x")
	}
	if n := len(s.Audit()); n != auditLimit {
		t.Fatalf("audit grew to %d, want cap %d", n, auditLimit)
	}
}

func TestNoPermissionsByDefault(t *testing.T) {
	s := NewSystem()
	f := func(principal, resource string) bool {
		return !s.Can(principal, OpRead, resource) &&
			!s.Can(principal, OpAdmin, resource)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGrantImpliesCan(t *testing.T) {
	f := func(raw string) bool {
		// Any concrete resource (no '*') that is granted exactly is
		// allowed exactly.
		if len(raw) > 60 {
			raw = raw[:60]
		}
		s := NewSystem()
		if err := s.DefineRole("r"); err != nil {
			return false
		}
		if err := s.Grant("r", OpRead, raw); err != nil {
			return false
		}
		if err := s.Assign("p", "r", GlobalScope); err != nil {
			return false
		}
		return s.Can("p", OpRead, raw) == !containsStar(raw) || s.Can("p", OpRead, raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func containsStar(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '*' {
			return true
		}
	}
	return false
}

func TestGlobPatterns(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"info/*", "info/doc", true},
		{"info/*", "activity/doc", false},
		{"*", "anything", true},
		{"info/*/draft", "info/reports/draft", true},
		{"info/*/draft", "info/reports/final", false},
	}
	for _, tt := range tests {
		if got := globMatch(tt.pattern, tt.s); got != tt.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}
