package observe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry in the Chrome trace-event format
// (chrome://tracing, Perfetto). Complete events ("ph":"X") carry a
// start timestamp and duration in microseconds; metadata events
// ("ph":"M") name the rows.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports spans as Chrome trace-event JSON. Each site
// becomes a named row (tid); timestamps are microseconds relative to
// the earliest span so the viewer opens at t=0. The output is a single
// JSON object with a traceEvents array, loadable in chrome://tracing or
// Perfetto.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sites := make([]string, 0, 8)
	seen := make(map[string]bool)
	for _, sp := range spans {
		if !seen[sp.Site] {
			seen[sp.Site] = true
			sites = append(sites, sp.Site)
		}
	}
	sort.Strings(sites)
	tids := make(map[string]int, len(sites))
	for i, s := range sites {
		tids[s] = i + 1
	}

	events := make([]chromeEvent, 0, len(spans)+len(sites))
	for _, s := range sites {
		name := s
		if name == "" {
			name = "(unattributed)"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[s],
			Args: map[string]any{"name": name},
		})
	}

	var epoch int64
	for i, sp := range spans {
		us := sp.Start.UnixNano() / 1e3
		if i == 0 || us < epoch {
			epoch = us
		}
	}
	for _, sp := range spans {
		args := map[string]any{
			"trace": fmt.Sprintf("%016x", sp.TraceID),
			"span":  fmt.Sprintf("%016x", sp.SpanID),
		}
		if sp.Parent != 0 {
			args["parent"] = fmt.Sprintf("%016x", sp.Parent)
		}
		if sp.Status != "" {
			args["status"] = sp.Status
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Value
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   sp.Start.UnixNano()/1e3 - epoch,
			Dur:  sp.End.Sub(sp.Start).Microseconds(),
			Pid:  1,
			Tid:  tids[sp.Site],
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
