package observe

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mocca/internal/wire"
)

// Span is one completed unit of traced work: a named interval on the
// simulated clock, attributed to a site (or node address), linked into
// its trace by (TraceID, SpanID, Parent).
type Span struct {
	TraceID uint64 `json:"traceId"`
	SpanID  uint64 `json:"spanId"`
	Parent  uint64 `json:"parent,omitempty"`
	Name    string `json:"name"`
	Site    string `json:"site,omitempty"`

	Start time.Time `json:"start"`
	End   time.Time `json:"end"`

	// Status is "" for ok; non-empty values ("drop", "timeout", "error:…")
	// mark spans that did not complete normally.
	Status string `json:"status,omitempty"`
	Attrs  []Attr `json:"attrs,omitempty"`
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Context returns the span's wire trace context, for stamping onto
// envelopes or parenting further spans.
func (s *Span) Context() wire.TraceContext {
	return wire.TraceContext{TraceID: s.TraceID, SpanID: s.SpanID, Parent: s.Parent}
}

// Duration is the span's length on the simulated clock.
func (s *Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// Tracer records spans into a bounded ring buffer. It runs zero
// goroutines, takes its timestamps from an injected clock (the
// deployment's simulated clock), and allocates ids from a seeded
// sequence so runs are deterministic. A nil *Tracer is valid and makes
// every operation a cheap no-op — that is the "telemetry disabled"
// path.
type Tracer struct {
	now     func() time.Time
	enabled atomic.Bool
	idSeed  uint64
	idSeq   atomic.Uint64

	traces  atomic.Int64
	started atomic.Int64

	mu      sync.Mutex
	ring    []Span // allocated on first record, so disabled tracers stay heap-free
	cap     int
	next    int // ring write cursor
	filled  bool
	dropped int64 // spans overwritten after the ring wrapped

	slowThresh time.Duration
	slow       []Span
}

// Tunables for NewTracer.
const (
	defaultSpanCapacity = 8192
	slowLogCapacity     = 256
)

// NewTracer builds a tracer recording at most capacity completed spans
// (older spans are overwritten once the ring wraps). now supplies
// timestamps — pass the deployment clock's Now. seed makes span/trace
// ids reproducible across runs.
func NewTracer(seed int64, capacity int, now func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = defaultSpanCapacity
	}
	if now == nil {
		//lint:allow determinism explicit wall-clock fallback for callers outside a simulated deployment; simulated runs always pass the deployment clock
		now = time.Now
	}
	t := &Tracer{
		now:    now,
		idSeed: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
		cap:    capacity,
	}
	t.enabled.Store(true)
	return t
}

// SetEnabled flips span recording. While disabled the tracer behaves
// like a nil tracer: Start* return inactive spans and nothing records.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// SetSlowThreshold arms the slow-op log: any completed span whose
// duration meets or exceeds d is retained (up to a fixed cap) in a
// separate log regardless of ring-buffer wrap. d <= 0 disables it.
func (t *Tracer) SetSlowThreshold(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.slowThresh = d
	t.mu.Unlock()
}

// On reports whether the tracer is recording. Callers use it to skip
// building span names on the disabled path.
func (t *Tracer) On() bool { return t != nil && t.enabled.Load() }

// nextID allocates the next id in the seeded sequence, mixed so ids
// look unique-ish in exports but remain a pure function of (seed, seq).
func (t *Tracer) nextID() uint64 {
	z := t.idSeed + t.idSeq.Add(1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// ActiveSpan is an in-flight span. The zero ActiveSpan is inactive:
// every method is a no-op, so untraced and telemetry-disabled paths
// cost a nil check and nothing else.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// StartRoot opens a new trace with a root span.
func (t *Tracer) StartRoot(name, site string) ActiveSpan {
	if !t.On() {
		return ActiveSpan{}
	}
	id := t.nextID()
	t.traces.Add(1)
	t.started.Add(1)
	return ActiveSpan{t: t, span: Span{
		TraceID: id,
		SpanID:  id,
		Name:    name,
		Site:    site,
		Start:   t.now(),
	}}
}

// StartChild opens a span under parent. A zero parent context yields an
// inactive span: work outside any trace records nothing.
func (t *Tracer) StartChild(name, site string, parent wire.TraceContext) ActiveSpan {
	if !t.On() || parent.IsZero() {
		return ActiveSpan{}
	}
	t.started.Add(1)
	return ActiveSpan{t: t, span: Span{
		TraceID: parent.TraceID,
		SpanID:  t.nextID(),
		Parent:  parent.SpanID,
		Name:    name,
		Site:    site,
		Start:   t.now(),
	}}
}

// Event records an instantaneous child span (start == end) under
// parent — used for point-in-time hops like a frame crossing the
// channel stack.
func (t *Tracer) Event(name, site string, parent wire.TraceContext, status string, attrs ...Attr) {
	if !t.On() || parent.IsZero() {
		return
	}
	t.started.Add(1)
	now := t.now()
	t.record(Span{
		TraceID: parent.TraceID,
		SpanID:  t.nextID(),
		Parent:  parent.SpanID,
		Name:    name,
		Site:    site,
		Start:   now,
		End:     now,
		Status:  status,
		Attrs:   attrs,
	})
}

// Active reports whether the span is recording.
func (s *ActiveSpan) Active() bool { return s.t != nil }

// Context returns the span's trace context for propagation. Inactive
// spans return the zero context, which downstream treats as untraced.
func (s *ActiveSpan) Context() wire.TraceContext {
	if s.t == nil {
		return wire.TraceContext{}
	}
	return s.span.Context()
}

// SetAttr annotates the span.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s.t != nil {
		s.span.Attrs = append(s.span.Attrs, Attr{Key: k, Value: v})
	}
}

// End completes the span with ok status.
func (s *ActiveSpan) End() { s.EndStatus("") }

// EndStatus completes the span with an explicit status. Ending an
// inactive or already-ended span is a no-op.
func (s *ActiveSpan) EndStatus(status string) {
	t := s.t
	if t == nil {
		return
	}
	s.t = nil
	s.span.End = t.now()
	s.span.Status = status
	t.record(s.span)
}

func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	if t.ring == nil {
		t.ring = make([]Span, t.cap)
	}
	if t.filled {
		t.dropped++
	}
	t.ring[t.next] = sp
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.filled = true
	}
	if t.slowThresh > 0 && sp.End.Sub(sp.Start) >= t.slowThresh && len(t.slow) < slowLogCapacity {
		t.slow = append(t.slow, sp)
	}
	t.mu.Unlock()
}

// Spans returns the retained spans ordered by start time (ties broken
// by span id so the order is deterministic).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []Span
	if t.filled {
		out = make([]Span, 0, len(t.ring))
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.next]...)
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// SlowOps returns the slow-op log: spans at or over the configured
// threshold, in completion order.
func (t *Tracer) SlowOps() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.slow...)
}

// TraceCounts summarises tracer volume for reports.
type TraceCounts struct {
	Traces    int64 `json:"traces"`    // root spans started
	Spans     int64 `json:"spans"`     // spans started (incl. events)
	Retained  int   `json:"retained"`  // spans currently in the ring
	Evicted   int64 `json:"evicted"`   // spans overwritten after wrap
	SlowSpans int   `json:"slowSpans"` // spans in the slow-op log
}

// Counts returns the tracer's volume counters.
func (t *Tracer) Counts() TraceCounts {
	if t == nil {
		return TraceCounts{}
	}
	t.mu.Lock()
	retained := t.next
	if t.filled {
		retained = len(t.ring)
	}
	c := TraceCounts{
		Traces:    t.traces.Load(),
		Spans:     t.started.Load(),
		Retained:  retained,
		Evicted:   t.dropped,
		SlowSpans: len(t.slow),
	}
	t.mu.Unlock()
	return c
}

// ObjectTraces is a bounded table linking object ids to the trace
// context of the last traced operation that touched them. It is how a
// trace survives async gaps — a write tags its object; the WAL commit,
// rumor delivery, and anti-entropy apply that later move the same
// object look the context up and parent their spans under it. A nil
// *ObjectTraces is valid and always misses.
type ObjectTraces struct {
	mu    sync.Mutex
	cap   int
	m     map[string]wire.TraceContext
	order []string // insertion order, for FIFO eviction
}

const defaultObjectCapacity = 4096

// NewObjectTraces builds a tag table bounded to capacity entries.
func NewObjectTraces(capacity int) *ObjectTraces {
	if capacity <= 0 {
		capacity = defaultObjectCapacity
	}
	// No size hint: the map grows with actual traced traffic, so a
	// present-but-disabled plane keeps the heap untouched.
	return &ObjectTraces{cap: capacity, m: make(map[string]wire.TraceContext)}
}

// Tag associates id with tc, replacing any previous context. Zero
// contexts are ignored so untraced writes never evict live tags.
func (o *ObjectTraces) Tag(id string, tc wire.TraceContext) {
	if o == nil || tc.IsZero() {
		return
	}
	o.mu.Lock()
	if _, ok := o.m[id]; !ok {
		if len(o.order) >= o.cap {
			evict := o.order[0]
			o.order = o.order[1:]
			delete(o.m, evict)
		}
		o.order = append(o.order, id)
	}
	o.m[id] = tc
	o.mu.Unlock()
}

// Lookup returns the context tagged for id.
func (o *ObjectTraces) Lookup(id string) (wire.TraceContext, bool) {
	if o == nil {
		return wire.TraceContext{}, false
	}
	o.mu.Lock()
	tc, ok := o.m[id]
	o.mu.Unlock()
	return tc, ok
}
