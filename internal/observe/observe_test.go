package observe

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"mocca/internal/wire"
)

// fakeClock is a hand-advanced clock for span timing tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time { return c.t }
func (c *fakeClock) advance(d time.Duration) {
	c.t = c.t.Add(d)
}

func TestTracerParentingAndDeterminism(t *testing.T) {
	mk := func() []Span {
		clk := &fakeClock{t: time.Unix(0, 0)}
		tr := NewTracer(42, 16, clk.now)
		root := tr.StartRoot("write", "gmd")
		clk.advance(time.Millisecond)
		child := tr.StartChild("forward", "gmd", root.Context())
		clk.advance(time.Millisecond)
		child.End()
		root.End()
		return tr.Spans()
	}
	a, b := mk(), mk()
	if len(a) != 2 {
		t.Fatalf("got %d spans, want 2", len(a))
	}
	if a[0].Name != "write" || a[1].Name != "forward" {
		t.Fatalf("span order: %s, %s", a[0].Name, a[1].Name)
	}
	if a[1].TraceID != a[0].TraceID {
		t.Fatalf("child left the trace: %x vs %x", a[1].TraceID, a[0].TraceID)
	}
	if a[1].Parent != a[0].SpanID {
		t.Fatalf("child parent = %x, want %x", a[1].Parent, a[0].SpanID)
	}
	if a[1].Duration() != time.Millisecond {
		t.Fatalf("child duration = %v", a[1].Duration())
	}
	for i := range a {
		if a[i].SpanID != b[i].SpanID || a[i].TraceID != b[i].TraceID {
			t.Fatalf("same seed produced different ids: %+v vs %+v", a[i], b[i])
		}
	}
	if c := NewTracer(43, 16, time.Now); c.nextID() == NewTracer(42, 16, time.Now).nextID() {
		t.Fatalf("different seeds produced the same first id")
	}
}

func TestTracerNilAndDisabled(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x", "s")
	sp.SetAttr("k", "v")
	sp.End() // must not panic
	if tr.On() || sp.Active() || !sp.Context().IsZero() {
		t.Fatalf("nil tracer produced an active span")
	}
	if tr.Spans() != nil || tr.SlowOps() != nil {
		t.Fatalf("nil tracer returned spans")
	}

	tr2 := NewTracer(1, 4, time.Now)
	tr2.SetEnabled(false)
	if sp := tr2.StartRoot("x", "s"); sp.Active() {
		t.Fatalf("disabled tracer produced an active span")
	}
	tr2.SetEnabled(true)
	if sp := tr2.StartRoot("x", "s"); !sp.Active() {
		t.Fatalf("re-enabled tracer stayed inert")
	}
	// A zero parent context never records.
	if sp := tr2.StartChild("x", "s", wire.TraceContext{}); sp.Active() {
		t.Fatalf("zero parent produced an active span")
	}
}

func TestTracerRingBoundAndCounts(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := NewTracer(7, 4, clk.now)
	for i := 0; i < 10; i++ {
		sp := tr.StartRoot("r", "s")
		clk.advance(time.Second)
		sp.End()
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	c := tr.Counts()
	if c.Traces != 10 || c.Spans != 10 || c.Retained != 4 || c.Evicted != 6 {
		t.Fatalf("counts = %+v", c)
	}
	// The ring keeps the most recent spans.
	if !spans[len(spans)-1].Start.After(spans[0].Start) {
		t.Fatalf("spans out of order")
	}
}

func TestSlowOpLog(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := NewTracer(7, 16, clk.now)
	tr.SetSlowThreshold(100 * time.Millisecond)
	fast := tr.StartRoot("fast", "s")
	clk.advance(10 * time.Millisecond)
	fast.End()
	slow := tr.StartRoot("slow", "s")
	clk.advance(200 * time.Millisecond)
	slow.EndStatus("")
	ops := tr.SlowOps()
	if len(ops) != 1 || ops[0].Name != "slow" {
		t.Fatalf("slow ops = %+v", ops)
	}
	if tr.Counts().SlowSpans != 1 {
		t.Fatalf("slow count = %d", tr.Counts().SlowSpans)
	}
}

func TestEventRecordsInstantSpan(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	tr := NewTracer(3, 8, clk.now)
	root := tr.StartRoot("r", "a")
	tr.Event("frame.drop", "a", root.Context(), "drop", Attr{Key: "interceptor", Value: "chaos"})
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	var ev *Span
	for i := range spans {
		if spans[i].Name == "frame.drop" {
			ev = &spans[i]
		}
	}
	if ev == nil || ev.Status != "drop" || ev.Duration() != 0 || ev.Parent == 0 {
		t.Fatalf("event span = %+v", ev)
	}
}

func TestObjectTraces(t *testing.T) {
	var nilTable *ObjectTraces
	nilTable.Tag("x", wire.TraceContext{TraceID: 1, SpanID: 1})
	if _, ok := nilTable.Lookup("x"); ok {
		t.Fatalf("nil table hit")
	}

	o := NewObjectTraces(2)
	o.Tag("a", wire.TraceContext{TraceID: 1, SpanID: 1})
	o.Tag("b", wire.TraceContext{TraceID: 2, SpanID: 2})
	o.Tag("a", wire.TraceContext{TraceID: 3, SpanID: 3}) // retag, no new slot
	o.Tag("c", wire.TraceContext{TraceID: 4, SpanID: 4}) // evicts a (FIFO)
	if _, ok := o.Lookup("a"); ok {
		t.Fatalf("a should have been evicted")
	}
	if tc, ok := o.Lookup("b"); !ok || tc.TraceID != 2 {
		t.Fatalf("b = %+v ok=%v", tc, ok)
	}
	o.Tag("d", wire.TraceContext{}) // zero context ignored
	if _, ok := o.Lookup("d"); ok {
		t.Fatalf("zero context was stored")
	}
}

func TestRegistryInstrumentsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("mocca.x.ops", L("site", "a")...).Add(3)
	r.Counter("mocca.x.ops", L("site", "b")...).Inc()
	r.Gauge("mocca.x.depth").Set(7)
	h := r.Histogram("mocca.x.lat", []float64{1, 10}, L("site", "a")...)
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	s := r.Snapshot()
	if got := s.Value("mocca.x.ops", L("site", "a")...); got != 3 {
		t.Fatalf("counter a = %d", got)
	}
	if got := s.Value("mocca.x.ops", L("site", "b")...); got != 1 {
		t.Fatalf("counter b = %d", got)
	}
	if got := s.Value("mocca.x.depth"); got != 7 {
		t.Fatalf("gauge = %d", got)
	}
	p, ok := s.Get("mocca.x.lat", L("site", "a")...)
	if !ok || p.Value != 3 || p.Sum != 55.5 {
		t.Fatalf("hist point = %+v ok=%v", p, ok)
	}
	if len(p.Buckets) != 3 || p.Buckets[0] != 1 || p.Buckets[1] != 1 || p.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", p.Buckets)
	}

	// Snapshots are sorted and stable.
	s2 := r.Snapshot()
	for i := range s.Points {
		if s.Points[i].identity() != s2.Points[i].identity() {
			t.Fatalf("snapshot order unstable at %d", i)
		}
	}

	// Same instrument handle on repeat lookup.
	if r.Counter("mocca.x.ops", L("site", "a")...).Value() != 3 {
		t.Fatalf("counter identity lost")
	}
}

func TestRegistryCollectorAndDiff(t *testing.T) {
	r := NewRegistry()
	backing := int64(10)
	r.Register(CollectorFunc(func(emit func(Point)) {
		emit(Point{Name: "mocca.sub.total", Kind: KindCounter, Value: backing})
		emit(Point{Name: "mocca.sub.size", Kind: KindGauge, Value: 5})
	}))
	before := r.Snapshot()
	backing = 25
	after := r.Snapshot()
	d := after.Diff(before)
	if got := d.Value("mocca.sub.total"); got != 15 {
		t.Fatalf("counter delta = %d", got)
	}
	if got := d.Value("mocca.sub.size"); got != 5 {
		t.Fatalf("gauge should keep current value, got %d", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z", []float64{1}).Observe(2)
	r.Register(CollectorFunc(func(func(Point)) {}))
	if s := r.Snapshot(); len(s.Points) != 0 {
		t.Fatalf("nil registry snapshot non-empty")
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("mocca.replica.rounds", L("site", "gmd")...).Add(4)
	r.Histogram("mocca.rpc.latency_ms", []float64{1, 5}, L("site", "gmd")...).Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mocca_replica_rounds counter",
		`mocca_replica_rounds{site="gmd"} 4`,
		"# TYPE mocca_rpc_latency_ms histogram",
		`mocca_rpc_latency_ms_bucket{le="5",site="gmd"} 1`,
		`mocca_rpc_latency_ms_bucket{le="+Inf",site="gmd"} 1`,
		`mocca_rpc_latency_ms_count{site="gmd"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceExport(t *testing.T) {
	clk := &fakeClock{t: time.Unix(100, 0)}
	tr := NewTracer(9, 16, clk.now)
	root := tr.StartRoot("write", "gmd")
	clk.advance(2 * time.Millisecond)
	child := tr.StartChild("apply", "upc", root.Context())
	clk.advance(time.Millisecond)
	child.EndStatus("")
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	if complete != 2 || meta != 2 {
		t.Fatalf("events: %d complete, %d metadata (want 2, 2)\n%s", complete, meta, buf.String())
	}
}

func TestTelemetryBundle(t *testing.T) {
	var off *Telemetry
	if off.On() {
		t.Fatalf("nil telemetry reported on")
	}
	tel := New(5, time.Now, WithSpanCapacity(8), WithObjectCapacity(4), WithSlowThreshold(time.Second))
	if !tel.On() || tel.Metrics == nil || tel.Objects == nil {
		t.Fatalf("telemetry incomplete: %+v", tel)
	}
	if tel.Tracer.slowThresh != time.Second {
		t.Fatalf("slow threshold not applied")
	}
}

// TestConcurrentUse hammers tracer and registry from many goroutines —
// meaningful under -race.
func TestConcurrentUse(t *testing.T) {
	tr := NewTracer(11, 64, time.Now)
	r := NewRegistry()
	o := NewObjectTraces(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartRoot("work", "site")
				child := tr.StartChild("inner", "site", sp.Context())
				o.Tag("obj", child.Context())
				o.Lookup("obj")
				child.End()
				sp.End()
				r.Counter("c", L("g", string(rune('a'+g)))...).Inc()
				r.Gauge("g").Set(int64(i))
				r.Histogram("h", []float64{10, 100}).Observe(float64(i))
				if i%50 == 0 {
					tr.Spans()
					tr.Counts()
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Snapshot().Value("c", L("g", "a")...); got != 200 {
		t.Fatalf("counter = %d", got)
	}
}
