package observe

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric naming convention: stable dotted names ("mocca.replica.rounds"),
// lower-case, with dimensions carried in labels rather than the name.
// The text exposition rewrites dots to underscores for Prometheus
// compatibility; the dotted form is canonical everywhere else.

// Kind discriminates instrument types.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Label is one name dimension, e.g. {site, gmd}.
type Label struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// L builds a sorted label set from alternating key/value pairs. Odd
// trailing arguments are dropped.
func L(kv ...string) []Label {
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	sortLabels(out)
	return out
}

func sortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
}

// labelKey canonicalises a label set for map identity. Labels must be
// sorted first.
func labelKey(name string, ls []Label) string {
	if len(ls) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// Counter is a monotonically-increasing instrument.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. Negative deltas are ignored.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instrument.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []int64   // len(bounds)+1
	sum    float64
	n      int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Point is one exported sample: an instrument's identity and value at
// snapshot time. For histograms Value is the observation count, Sum the
// total, and Bounds/Buckets the per-bucket breakdown (Buckets is
// non-cumulative; the slice is one longer than Bounds for the overflow
// bucket).
type Point struct {
	Name    string    `json:"name"`
	Labels  []Label   `json:"labels,omitempty"`
	Kind    Kind      `json:"kind"`
	Value   int64     `json:"value"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

func (p Point) identity() string { return labelKey(p.Name, p.Labels) }

// Collector projects externally-owned counters (the per-subsystem Stats
// structs) into the registry at snapshot time. Adapters emit gauges and
// counters from a live snapshot of the underlying struct, so values are
// never double-counted: the subsystem remains the single owner.
type Collector interface {
	Collect(emit func(Point))
}

// CollectorFunc adapts a function to Collector.
type CollectorFunc func(emit func(Point))

// Collect implements Collector.
func (f CollectorFunc) Collect(emit func(Point)) { f(emit) }

// Registry holds direct instruments and adapter collectors, and
// produces deterministic snapshots. A nil *Registry is valid: every
// lookup returns nil instruments whose methods are no-ops.
type Registry struct {
	mu          sync.Mutex
	instruments map[string]*instrument
	collectors  []Collector
}

type instrument struct {
	name   string
	labels []Label
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{instruments: make(map[string]*instrument)}
}

// Counter returns the counter for (name, labels), creating it on first
// use. Reusing a name with a different kind panics: names are a schema.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	in := r.instrument(name, labels, KindCounter)
	return in.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	in := r.instrument(name, labels, KindGauge)
	return in.g
}

// Histogram returns the histogram for (name, labels) with the given
// upper bounds (ascending), creating it on first use. Bounds are fixed
// at creation; later calls may pass nil bounds to fetch the existing
// instrument.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	in := r.instrument(name, labels, KindHistogram)
	if in.h.bounds == nil && len(bounds) > 0 {
		in.h.bounds = append([]float64(nil), bounds...)
		in.h.counts = make([]int64, len(bounds)+1)
	}
	return in.h
}

func (r *Registry) instrument(name string, labels []Label, kind Kind) *instrument {
	ls := append([]Label(nil), labels...)
	sortLabels(ls)
	key := labelKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.instruments[key]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("observe: instrument %q re-registered as %s (was %s)", key, kind, in.kind))
		}
		return in
	}
	in := &instrument{name: name, labels: ls, kind: kind}
	switch kind {
	case KindCounter:
		in.c = &Counter{}
	case KindGauge:
		in.g = &Gauge{}
	case KindHistogram:
		in.h = &Histogram{counts: make([]int64, 1)}
	}
	r.instruments[key] = in
	return in
}

// Register adds an adapter collector consulted at snapshot time.
func (r *Registry) Register(c Collector) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Snapshot is a deterministic point-in-time view: points sorted by
// (name, labels), suitable for diffing in tests and for fingerprinted
// reports.
type Snapshot struct {
	Points []Point `json:"points"`
}

// Snapshot gathers direct instruments and all collectors. If two
// sources emit the same (name, labels) identity, later values replace
// earlier ones — collectors own their names, so a clash is a schema bug
// surfaced deterministically rather than summed silently.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.instruments))
	for _, in := range r.instruments {
		ins = append(ins, in)
	}
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	byID := make(map[string]Point, len(ins))
	for _, in := range ins {
		p := Point{Name: in.name, Labels: in.labels, Kind: in.kind}
		switch in.kind {
		case KindCounter:
			p.Value = in.c.Value()
		case KindGauge:
			p.Value = in.g.Value()
		case KindHistogram:
			in.h.mu.Lock()
			p.Value = in.h.n
			p.Sum = in.h.sum
			p.Bounds = append([]float64(nil), in.h.bounds...)
			p.Buckets = append([]int64(nil), in.h.counts...)
			in.h.mu.Unlock()
		}
		byID[p.identity()] = p
	}
	for _, c := range collectors {
		c.Collect(func(p Point) {
			sortLabels(p.Labels)
			if p.Kind == "" {
				p.Kind = KindGauge
			}
			byID[p.identity()] = p
		})
	}
	out := Snapshot{Points: make([]Point, 0, len(byID))}
	for _, p := range byID {
		out.Points = append(out.Points, p)
	}
	sort.Slice(out.Points, func(i, j int) bool {
		return out.Points[i].identity() < out.Points[j].identity()
	})
	return out
}

// Get returns the point for (name, labels) if present.
func (s Snapshot) Get(name string, labels ...Label) (Point, bool) {
	ls := append([]Label(nil), labels...)
	sortLabels(ls)
	want := labelKey(name, ls)
	i := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].identity() >= want })
	if i < len(s.Points) && s.Points[i].identity() == want {
		return s.Points[i], true
	}
	return Point{}, false
}

// Value returns the point's value for (name, labels), or 0 if absent.
func (s Snapshot) Value(name string, labels ...Label) int64 {
	p, _ := s.Get(name, labels...)
	return p.Value
}

// Diff subtracts prev from s: counters and histograms become deltas,
// gauges keep their current value. Points absent from prev pass through
// unchanged; points only in prev are dropped.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	old := make(map[string]Point, len(prev.Points))
	for _, p := range prev.Points {
		old[p.identity()] = p
	}
	out := Snapshot{Points: make([]Point, 0, len(s.Points))}
	for _, p := range s.Points {
		if q, ok := old[p.identity()]; ok && p.Kind != KindGauge {
			p.Value -= q.Value
			p.Sum -= q.Sum
			if len(p.Buckets) == len(q.Buckets) {
				p.Buckets = append([]int64(nil), p.Buckets...)
				for i := range p.Buckets {
					p.Buckets[i] -= q.Buckets[i]
				}
			}
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// WriteText renders the snapshot in the Prometheus text exposition
// format: dotted names flattened to underscores, one # TYPE line per
// family, histogram buckets cumulative with +Inf last.
func (s Snapshot) WriteText(w io.Writer) error {
	typed := make(map[string]bool)
	for _, p := range s.Points {
		flat := strings.Map(func(r rune) rune {
			if r == '.' || r == '-' {
				return '_'
			}
			return r
		}, p.Name)
		if !typed[flat] {
			typed[flat] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", flat, p.Kind); err != nil {
				return err
			}
		}
		switch p.Kind {
		case KindHistogram:
			cum := int64(0)
			for i, b := range p.Buckets {
				cum += b
				le := "+Inf"
				if i < len(p.Bounds) {
					le = fmt.Sprintf("%g", p.Bounds[i])
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", flat, renderLabels(p.Labels, Label{Key: "le", Value: le}), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", flat, renderLabels(p.Labels), p.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", flat, renderLabels(p.Labels), p.Value); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", flat, renderLabels(p.Labels), p.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderLabels(ls []Label, extra ...Label) string {
	if len(ls)+len(extra) == 0 {
		return ""
	}
	all := append(append([]Label(nil), ls...), extra...)
	sortLabels(all)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}
