// Package observe is the deployment-wide telemetry plane: causal
// tracing across rpc hops and a typed metrics registry with export.
//
// The tracing half carries a compact context (trace id, span id, parent
// span) in the wire envelope across every hop and through async
// continuations, so one trace stitches together a write at site A, the
// placement forward, the WAL group-commit window, rumor mongering, the
// replica digest negotiation, and the delta apply at site B. Spans are
// recorded on the simulated clock into a bounded ring buffer — zero
// goroutines, ids from a seeded sequence, and a nil tracer (telemetry
// off) costs a pointer check per call site.
//
// The metrics half is a registry of typed counters, gauges and
// histograms under stable dotted names with labels. Subsystems keep
// their existing Stats structs as the single source of truth; adapter
// collectors project those snapshots into the registry at scrape time,
// so nothing is double-counted. Snapshots are deterministically sorted
// for diffing in tests and fingerprinted reports, and render in the
// Prometheus text exposition format.
package observe

import "time"

// Telemetry bundles one deployment's tracer, registry, and object-trace
// tag table. A nil *Telemetry means telemetry is disabled; all three
// components degrade the same way.
type Telemetry struct {
	Tracer  *Tracer
	Metrics *Registry
	Objects *ObjectTraces
}

// Option configures New.
type Option func(*config)

type config struct {
	spanCapacity   int
	objectCapacity int
	slowThreshold  time.Duration
}

// WithSpanCapacity bounds the span ring buffer (default 8192).
func WithSpanCapacity(n int) Option { return func(c *config) { c.spanCapacity = n } }

// WithObjectCapacity bounds the object-trace tag table (default 4096).
func WithObjectCapacity(n int) Option { return func(c *config) { c.objectCapacity = n } }

// WithSlowThreshold arms the slow-op log: completed spans at or over d
// are retained separately from the ring buffer.
func WithSlowThreshold(d time.Duration) Option { return func(c *config) { c.slowThreshold = d } }

// New builds a telemetry plane. now supplies span timestamps — pass the
// deployment clock's Now so traces land on simulated time.
func New(seed int64, now func() time.Time, opts ...Option) *Telemetry {
	var c config
	for _, o := range opts {
		o(&c)
	}
	t := &Telemetry{
		Tracer:  NewTracer(seed, c.spanCapacity, now),
		Metrics: NewRegistry(),
		Objects: NewObjectTraces(c.objectCapacity),
	}
	if c.slowThreshold > 0 {
		t.Tracer.SetSlowThreshold(c.slowThreshold)
	}
	return t
}

// On reports whether tracing is live — nil-safe, so call sites can skip
// building span names when telemetry is off.
func (t *Telemetry) On() bool { return t != nil && t.Tracer.On() }
