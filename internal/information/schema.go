// Package information implements the paper's Information Model: "The Mocca
// information model aims to allow information used within different CSCW
// systems to be represented externally and to be shared between systems.
// The model is expressed in terms of information objects, the relationships
// between these objects (e.g. composition, dependencies) and the access to
// these objects."
//
// The load-bearing mechanism is the schema/converter registry: each
// application registers its native schema plus a conversion to a shared
// representation, and the Space finds multi-hop conversion paths between
// any two schemas. This is what turns figure 2 (N² pairwise adapters) into
// figure 3 (N registrations against the environment).
//
// In the ODP viewpoint map (see ARCHITECTURE.md) this package is the
// information viewpoint: the Space is the engine (schemas, access,
// events, replica merge policy) and the Backend interface is the seam to
// the engineering realisation of storage — information.Store keeps rows
// in memory, information/logstore keeps them in a write-ahead log with
// snapshots so a site's replica survives a crash. Objects carry per-site
// version vectors (vclock.Version); internal/replica keeps replicas of
// one logical space convergent by anti-entropy.
package information

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FieldType constrains a schema field.
type FieldType string

// Field types.
const (
	FieldText FieldType = "text"
	FieldInt  FieldType = "int"
	FieldRef  FieldType = "ref" // reference to another information object
)

// Field describes one schema field.
type Field struct {
	Name     string
	Type     FieldType
	Required bool
}

// Schema is a named external representation of information.
type Schema struct {
	Name   string
	Fields []Field
}

// Validate checks fields against the schema.
func (s Schema) Validate(fields map[string]string) error {
	known := make(map[string]Field, len(s.Fields))
	for _, f := range s.Fields {
		known[f.Name] = f
	}
	for _, f := range s.Fields {
		v, ok := fields[f.Name]
		if !ok || v == "" {
			if f.Required {
				return fmt.Errorf("%w: missing required field %q", ErrSchemaViolation, f.Name)
			}
			continue
		}
		if f.Type == FieldInt {
			for _, c := range v {
				if c < '0' && c != '-' || c > '9' && c != '-' {
					return fmt.Errorf("%w: field %q is not an int: %q", ErrSchemaViolation, f.Name, v)
				}
			}
		}
	}
	for name := range fields {
		if _, ok := known[name]; !ok {
			return fmt.Errorf("%w: unknown field %q", ErrSchemaViolation, name)
		}
	}
	return nil
}

// Converter translates fields from one schema to another.
type Converter struct {
	From string
	To   string
	Fn   func(map[string]string) (map[string]string, error)
}

// Errors of the schema layer.
var (
	ErrSchemaViolation = errors.New("information: schema violation")
	ErrUnknownSchema   = errors.New("information: unknown schema")
	ErrSchemaExists    = errors.New("information: schema already registered")
	ErrNoConversion    = errors.New("information: no conversion path")
)

// SchemaRegistry holds schemas and converters, and finds conversion paths.
type SchemaRegistry struct {
	mu         sync.RWMutex
	schemas    map[string]Schema
	converters map[string][]Converter // from -> converters
	stats      RegistryStats
}

// RegistryStats counts registry activity.
type RegistryStats struct {
	Conversions  int64
	PathSearches int64
}

// NewSchemaRegistry creates an empty registry.
func NewSchemaRegistry() *SchemaRegistry {
	return &SchemaRegistry{
		schemas:    make(map[string]Schema),
		converters: make(map[string][]Converter),
	}
}

// Register adds a schema.
func (r *SchemaRegistry) Register(s Schema) error {
	name := strings.ToLower(s.Name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.schemas[name]; ok {
		return fmt.Errorf("%w: %q", ErrSchemaExists, s.Name)
	}
	s.Name = name
	r.schemas[name] = s
	return nil
}

// Schema returns a registered schema.
func (r *SchemaRegistry) Schema(name string) (Schema, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.schemas[strings.ToLower(name)]
	if !ok {
		return Schema{}, fmt.Errorf("%w: %q", ErrUnknownSchema, name)
	}
	return s, nil
}

// Schemas lists registered schema names, sorted.
func (r *SchemaRegistry) Schemas() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.schemas))
	for name := range r.schemas {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AddConverter registers a conversion; both schemas must exist.
func (r *SchemaRegistry) AddConverter(c Converter) error {
	from, to := strings.ToLower(c.From), strings.ToLower(c.To)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.schemas[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSchema, c.From)
	}
	if _, ok := r.schemas[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSchema, c.To)
	}
	c.From, c.To = from, to
	r.converters[from] = append(r.converters[from], c)
	return nil
}

// ConverterCount returns the number of registered converters (for the
// figure-2/figure-3 adapter-count experiment).
func (r *SchemaRegistry) ConverterCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, cs := range r.converters {
		n += len(cs)
	}
	return n
}

// Stats returns a snapshot of the counters.
func (r *SchemaRegistry) Stats() RegistryStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// FindPath returns the shortest converter chain from one schema to another
// (BFS). A same-schema request yields an empty path.
func (r *SchemaRegistry) FindPath(from, to string) ([]Converter, error) {
	from, to = strings.ToLower(from), strings.ToLower(to)
	r.mu.Lock()
	r.stats.PathSearches++
	r.mu.Unlock()

	r.mu.RLock()
	defer r.mu.RUnlock()
	if _, ok := r.schemas[from]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSchema, from)
	}
	if _, ok := r.schemas[to]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSchema, to)
	}
	if from == to {
		return nil, nil
	}
	type node struct {
		schema string
		path   []Converter
	}
	seen := map[string]bool{from: true}
	queue := []node{{schema: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range r.converters[cur.schema] {
			if seen[c.To] {
				continue
			}
			path := append(append([]Converter(nil), cur.path...), c)
			if c.To == to {
				return path, nil
			}
			seen[c.To] = true
			queue = append(queue, node{schema: c.To, path: path})
		}
	}
	return nil, fmt.Errorf("%w: %s -> %s", ErrNoConversion, from, to)
}

// Convert translates fields along the shortest path between schemas,
// validating the result against the target schema.
func (r *SchemaRegistry) Convert(fields map[string]string, from, to string) (map[string]string, error) {
	path, err := r.FindPath(from, to)
	if err != nil {
		return nil, err
	}
	cur := cloneFields(fields)
	for _, c := range path {
		cur, err = c.Fn(cur)
		if err != nil {
			return nil, fmt.Errorf("information: convert %s->%s: %w", c.From, c.To, err)
		}
		r.mu.Lock()
		r.stats.Conversions++
		r.mu.Unlock()
	}
	target, err := r.Schema(to)
	if err != nil {
		return nil, err
	}
	if err := target.Validate(cur); err != nil {
		return nil, fmt.Errorf("information: conversion output invalid: %w", err)
	}
	return cur, nil
}

func cloneFields(fields map[string]string) map[string]string {
	out := make(map[string]string, len(fields))
	for k, v := range fields {
		out[k] = v
	}
	return out
}
