package information

import (
	"fmt"
	"sort"
	"sync"

	"mocca/internal/vclock"
)

// Store is the storage engine beneath a Space: object rows and the
// relationship graph, guarded by one lock. It knows nothing about schemas,
// access control, events or replication policy — the Space (the engine)
// layers those on top. The split is what lets one site host its Space over
// a local replica store while a future backend swaps the in-memory maps
// for persistence without touching the engine.
//
// Reads (Get, Snapshot, NewerThan) and every value Exec returns are deep
// copies, so no caller retains an alias to a stored row. The one
// deliberate exception is the Exec callback itself: here it operates on
// the live row under the store's lock — that is what makes it the atomic
// read-modify-write primitive — and must not retain the pointer past its
// return. Other Backend implementations may hand the callback a copy
// instead (see the Backend contract), so callbacks must signal a
// mutation by returning the row, never by in-place edits alone.
type Store struct {
	mu        sync.RWMutex
	objects   map[string]*Object
	relations map[string]map[RelKind][]string // from -> kind -> to ids
}

// NewStore creates an empty in-memory store.
func NewStore() *Store {
	return &Store{
		objects:   make(map[string]*Object),
		relations: make(map[string]map[RelKind][]string),
	}
}

// Len returns the number of stored objects.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.objects)
}

// Get returns a copy of the row for id.
func (st *Store) Get(id string) (*Object, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	obj, ok := st.objects[id]
	if !ok {
		return nil, false
	}
	return obj.clone(), true
}

// Exec runs fn against the live row for id under the store's write lock —
// the atomic read-modify-write primitive every engine mutation builds on.
// fn receives the stored row (nil if absent) and returns the row to store
// in its place; returning nil stores nothing (read-only or aborted). The
// returned snapshot is a deep copy of whatever fn stored, or nil.
func (st *Store) Exec(id string, fn func(cur *Object) (*Object, error)) (*Object, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	next, err := fn(st.objects[id])
	if err != nil {
		return nil, err
	}
	if next == nil {
		return nil, nil
	}
	st.objects[id] = next
	return next.clone(), nil
}

// Snapshot returns copies of every row matching pred (nil pred = all),
// in unspecified order.
func (st *Store) Snapshot(pred func(*Object) bool) []*Object {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []*Object
	for _, obj := range st.objects {
		if pred == nil || pred(obj) {
			out = append(out, obj.clone())
		}
	}
	return out
}

// Has reports whether a row for id is stored, without copying it.
func (st *Store) Has(id string) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	_, ok := st.objects[id]
	return ok
}

// Remove deletes the row for id and every relationship edge touching it,
// returning a copy of the removed row; (nil, nil) when absent. Edges are
// stripped because a dangling edge would fail the endpoint check when a
// durable snapshot of the graph is replayed.
func (st *Store) Remove(id string) (*Object, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	obj, ok := st.objects[id]
	if !ok {
		return nil, nil
	}
	delete(st.objects, id)
	delete(st.relations, id)
	for from, kinds := range st.relations {
		for kind, tos := range kinds {
			kept := tos[:0]
			for _, to := range tos {
				if to != id {
					kept = append(kept, to)
				}
			}
			if len(kept) == 0 {
				delete(kinds, kind)
			} else {
				kinds[kind] = kept
			}
		}
		if len(kinds) == 0 {
			delete(st.relations, from)
		}
	}
	return obj.clone(), nil
}

// Range calls fn for every stored row under the store's read lock, in
// unspecified order, stopping early when fn returns false. fn receives
// the LIVE row — this is the streaming alternative to Snapshot for
// callers (like a durable backend writing a snapshot file) that must not
// materialise a copy of every row at once. fn must treat the row as
// read-only, must not retain it past its return, and must not call back
// into the store.
func (st *Store) Range(fn func(*Object) bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for _, obj := range st.objects {
		if !fn(obj) {
			return
		}
	}
}

// IDs returns all stored object ids, sorted.
func (st *Store) IDs() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.objects))
	for id := range st.objects {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Digest summarises every row's version vector — the anti-entropy
// exchange unit: small enough to ship every round, sufficient for a peer
// to compute exactly which rows the other side is missing.
func (st *Store) Digest() map[string]vclock.Version {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make(map[string]vclock.Version, len(st.objects))
	for id, obj := range st.objects {
		out[id] = obj.VV.Clone()
	}
	return out
}

// NewerThan returns copies of rows the given digest has not fully seen —
// rows absent from the digest, or whose version vector the digest entry
// does not dominate (strictly newer or concurrent). This is the delta a
// peer with that digest needs to pull.
func (st *Store) NewerThan(digest map[string]vclock.Version) []*Object {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []*Object
	for id, obj := range st.objects {
		if seen, ok := digest[id]; !ok || !seen.Dominates(obj.VV) {
			out = append(out, obj.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- relationships -------------------------------------------------------

// Relate records a typed relationship; composition and dependency must
// stay acyclic. Both endpoints must exist.
func (st *Store) Relate(from string, kind RelKind, to string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.objects[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, from)
	}
	if _, ok := st.objects[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, to)
	}
	if st.reachableLocked(to, kind, from) || from == to {
		return fmt.Errorf("%w: %s -[%s]-> %s", ErrCycle, from, kind, to)
	}
	if st.relations[from] == nil {
		st.relations[from] = make(map[RelKind][]string)
	}
	for _, existing := range st.relations[from][kind] {
		if existing == to {
			return nil
		}
	}
	st.relations[from][kind] = append(st.relations[from][kind], to)
	return nil
}

// Related returns directly related object ids, sorted.
func (st *Store) Related(from string, kind RelKind) []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := append([]string(nil), st.relations[from][kind]...)
	sort.Strings(out)
	return out
}

// Relation is one edge of the relationship graph in dump form.
type Relation struct {
	From string
	Kind RelKind
	To   string
}

// Relations dumps every relationship edge, sorted by (from, kind, to) —
// the unit a durable backend persists alongside object rows when it
// snapshots the store.
func (st *Store) Relations() []Relation {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Relation
	for from, kinds := range st.relations {
		for kind, tos := range kinds {
			for _, to := range tos {
				out = append(out, Relation{From: from, Kind: kind, To: to})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.To < b.To
	})
	return out
}

// Dependents returns ids of objects that relate TO the given id over kind.
func (st *Store) Dependents(to string, kind RelKind) []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []string
	for from, kinds := range st.relations {
		for _, t := range kinds[kind] {
			if t == to {
				out = append(out, from)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Closure returns all ids transitively reachable from id over kind.
func (st *Store) Closure(from string, kind RelKind) []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []string
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := append([]string(nil), st.relations[cur][kind]...)
		sort.Strings(next)
		for _, n := range next {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
				queue = append(queue, n)
			}
		}
	}
	return out
}

// reachableLocked reports whether target is reachable from start over kind.
func (st *Store) reachableLocked(start string, kind RelKind, target string) bool {
	seen := map[string]bool{}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		queue = append(queue, st.relations[cur][kind]...)
	}
	return false
}
