package logstore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mocca/internal/information"
	"mocca/internal/vclock"
)

// TestRemoveDurable: an evicted row stays gone across recovery, with the
// edges that touched it stripped, whether or not a snapshot intervenes.
func TestRemoveDurable(t *testing.T) {
	for _, snapshot := range []bool{false, true} {
		t.Run(fmt.Sprintf("snapshot=%v", snapshot), func(t *testing.T) {
			st, err := Open(t.TempDir(), WithCompactEvery(0))
			if err != nil {
				t.Fatal(err)
			}
			ids := seedStore(t, st, 8, 42)
			removed, err := st.Remove(ids[3])
			if err != nil || removed == nil || removed.ID != ids[3] {
				t.Fatalf("remove = %v, %v", removed, err)
			}
			if again, err := st.Remove(ids[3]); err != nil || again != nil {
				t.Fatalf("second remove = %v, %v", again, err)
			}
			if st.Len() != 7 {
				t.Fatalf("len = %d", st.Len())
			}
			// The dependency chain crossed ids[3]; edges touching it are gone.
			if deps := st.Related(ids[4], information.RelDependsOn); len(deps) != 0 {
				t.Fatalf("dangling edge from %s: %v", ids[4], deps)
			}
			if snapshot {
				if err := st.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			re := reopen(t, st)
			defer re.Close()
			if re.Len() != 7 {
				t.Fatalf("recovered len = %d", re.Len())
			}
			if _, ok := re.Get(ids[3]); ok {
				t.Fatal("removed row resurrected by recovery")
			}
			if deps := re.Related(ids[4], information.RelDependsOn); len(deps) != 0 {
				t.Fatalf("recovered dangling edge: %v", deps)
			}
		})
	}
}

// TestGroupCommitRoundTrip: a store in group-commit mode recovers to the
// same digest as the default mode, including relations and removals.
func TestGroupCommitRoundTrip(t *testing.T) {
	inline, err := Open(t.TempDir(), WithCompactEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := Open(t.TempDir(), WithGroupCommit(true), WithCompactEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []*Store{inline, grouped} {
		ids := seedStore(t, st, 20, 7)
		if _, err := st.Remove(ids[5]); err != nil {
			t.Fatal(err)
		}
	}
	reInline, reGrouped := reopen(t, inline), reopen(t, grouped, WithGroupCommit(true))
	defer reInline.Close()
	defer reGrouped.Close()

	a, b := digestBinary(reInline), digestBinary(reGrouped)
	if len(a) != len(b) || len(a) != 19 {
		t.Fatalf("digest sizes: %d vs %d", len(a), len(b))
	}
	for id, av := range a {
		if string(b[id]) != string(av) {
			t.Fatalf("digest mismatch at %s", id)
		}
	}
}

// TestGroupCommitConcurrentAppends hammers a group-commit store from many
// goroutines and verifies every acknowledged write is durable after
// recovery — and that batching actually happened (fewer flushes than
// records).
func TestGroupCommitConcurrentAppends(t *testing.T) {
	const writers, perWriter = 8, 25
	st, err := Open(t.TempDir(), WithGroupCommit(true), WithFsync(true), WithCompactEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("obj-%d-%03d", w, i)
				vv := vclock.NewVersion(fmt.Sprintf("s%d", w))
				if _, err := st.Exec(id, func(*information.Object) (*information.Object, error) {
					return &information.Object{
						ID: id, Schema: "doc", Owner: "ada",
						Fields:  map[string]string{"title": id},
						Version: vv.Sum(), VV: vv, Site: "gmd", Created: t0, Updated: t1,
					}, nil
				}); err != nil {
					t.Errorf("exec %s: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats := st.Stats()
	if stats.Appends != writers*perWriter {
		t.Fatalf("appends = %d", stats.Appends)
	}
	if stats.Flushes == 0 || stats.FlushedRecords != stats.Appends {
		t.Fatalf("flush accounting: %+v", stats)
	}
	t.Logf("group commit: %d records in %d flushes (%d fsyncs)",
		stats.FlushedRecords, stats.Flushes, stats.Fsyncs)

	re := reopen(t, st)
	defer re.Close()
	if re.Len() != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d", re.Len(), writers*perWriter)
	}
}

// TestGroupCommitCompactionCoversPending: compaction while records sit in
// the batch buffer must still leave a fully recoverable state (the
// snapshot covers the pending records) and must not deadlock waiters.
func TestGroupCommitCompactionCoversPending(t *testing.T) {
	st, err := Open(t.TempDir(), WithGroupCommit(true), WithCompactEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	ids := seedStore(t, st, 30, 3)
	if st.Stats().Compactions == 0 {
		t.Fatal("no automatic compaction ran")
	}
	want := digestBinary(st)
	re := reopen(t, st, WithGroupCommit(true))
	defer re.Close()
	got := digestBinary(re)
	if len(got) != len(ids) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(ids))
	}
	for id, w := range want {
		if string(got[id]) != string(w) {
			t.Fatalf("digest mismatch at %s", id)
		}
	}
}

// TestGroupCommitClosedStore: mutations after Close fail with ErrClosed
// in group mode too, and Close drains pending batches.
func TestGroupCommitClosedStore(t *testing.T) {
	st, err := Open(t.TempDir(), WithGroupCommit(true), WithCompactEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st, 4, 9)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Remove("obj-000"); !errors.Is(err, ErrClosed) {
		t.Fatalf("remove after close: %v", err)
	}
	re, err := Open(st.Dir(), WithGroupCommit(true))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 4 {
		t.Fatalf("recovered %d rows", re.Len())
	}
}

// TestGroupCommitCompactVsExecNoDeadlock: the explicit Compact path in
// group-commit mode must not hold the group mutex across the merge phase.
// Merging drops and re-takes the store mutex, so a writer holding the
// store mutex while blocked on the group mutex (enqueueLocked) deadlocked
// both — this is the s.mu-before-g.mu lock-order regression test.
func TestGroupCommitCompactVsExecNoDeadlock(t *testing.T) {
	st, err := Open(t.TempDir(), WithGroupCommit(true), WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	seedStore(t, st, 8, 17)

	writerDone := make(chan error, 1)
	compactDone := make(chan error, 1)
	var stop atomic.Bool
	go func() {
		// Write until the compactor is done, so every merge window has a
		// concurrent writer contending for the mutexes.
		for i := 0; !stop.Load(); i++ {
			id := fmt.Sprintf("row-%03d", i%32)
			vv := vclock.NewVersion("gmd")
			if _, err := st.Exec(id, func(*information.Object) (*information.Object, error) {
				return &information.Object{
					ID: id, Schema: "doc", Owner: "ada",
					Version: vv.Sum(), VV: vv, Site: "gmd", Created: t0, Updated: t1,
				}, nil
			}); err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()
	go func() {
		defer stop.Store(true)
		for i := 0; i < 200; i++ {
			if err := st.Compact(); err != nil {
				compactDone <- err
				return
			}
		}
		compactDone <- nil
	}()

	timeout := time.After(60 * time.Second)
	for _, ch := range []chan error{writerDone, compactDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("deadlock: Compact vs Exec under group commit")
		}
	}
}
