package logstore

import (
	"fmt"
	"sync/atomic"
	"testing"

	"mocca/internal/information"
	"mocca/internal/vclock"
)

// benchObject builds the row stored by append benchmarks; i varies the
// fields so records are not trivially compressible.
func benchObject(id string, i int, vv vclock.Version) *information.Object {
	return &information.Object{
		ID: id, Schema: "doc", Owner: "ada",
		Fields:  map[string]string{"title": fmt.Sprintf("rev %d", i), "body": "the quick brown fox"},
		Version: vv.Sum(), VV: vv, Site: "gmd", Created: t0, Updated: t1,
	}
}

// BenchmarkLogstoreAppend measures WAL append throughput: one Exec
// storing a full row per iteration. The serial cases measure the inline
// path; the parallel cases run concurrent writers with and without group
// commit — under fsync, group commit coalesces the writers of a window
// into one sync (the fsyncs/op metric shows the collapse).
func BenchmarkLogstoreAppend(b *testing.B) {
	type mode struct {
		name     string
		fsync    bool
		group    bool
		parallel bool
	}
	modes := []mode{
		{name: "nosync", fsync: false},
		{name: "fsync", fsync: true},
		{name: "fsync-parallel", fsync: true, parallel: true},
		{name: "fsync-parallel-group", fsync: true, group: true, parallel: true},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			st, err := Open(b.TempDir(), WithFsync(m.fsync), WithGroupCommit(m.group), WithCompactEvery(0))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			write := func(id string, i int, vv vclock.Version) {
				obj := benchObject(id, i, vv)
				if _, err := st.Exec(obj.ID, func(*information.Object) (*information.Object, error) {
					return obj, nil
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			if m.parallel {
				// Force a writer pool even on small CPU counts: group commit
				// batches whatever piles up behind the in-flight fsync, which
				// needs more than GOMAXPROCS=1 goroutines to happen at all.
				b.SetParallelism(8)
				var writer atomic.Int64
				b.RunParallel(func(pb *testing.PB) {
					id := fmt.Sprintf("obj-w%02d", writer.Add(1))
					vv := vclock.Version{}
					i := 0
					for pb.Next() {
						vv = vv.Tick("gmd")
						write(id, i, vv.Clone())
						i++
					}
				})
			} else {
				vv := vclock.Version{}
				for i := 0; i < b.N; i++ {
					vv = vv.Tick("gmd")
					write("obj-hot", i, vv.Clone())
				}
			}
			b.StopTimer()
			s := st.Stats()
			b.SetBytes(s.AppendedBytes / s.Appends)
			if m.fsync {
				b.ReportMetric(float64(s.Fsyncs)/float64(b.N), "fsyncs/op")
			}
		})
	}
}

// BenchmarkRecovery measures Open over a populated directory — the
// crash-restart path. "wal" recovers from full log replay — the
// O(data) baseline every pre-tiered design pays, whether it decodes a
// full snapshot or the log itself. "snapshot" recovers from the segment
// manifest plus an empty log: O(segment metadata), independent of row
// count, which is the tiered store's acceptance claim at 10⁵–10⁶ rows.
func BenchmarkRecovery(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		for _, mode := range []string{"wal", "snapshot"} {
			b.Run(fmt.Sprintf("%s/objects=%d", mode, n), func(b *testing.B) {
				dir := b.TempDir()
				st, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
				if err != nil {
					b.Fatal(err)
				}
				vv := vclock.Version{}
				for i := 0; i < n; i++ {
					vv = vv.Tick("gmd")
					obj := benchObject(fmt.Sprintf("obj-%07d", i), i, vv.Clone())
					if _, err := st.Exec(obj.ID, func(*information.Object) (*information.Object, error) {
						return obj, nil
					}); err != nil {
						b.Fatal(err)
					}
				}
				if mode == "snapshot" {
					if err := st.Compact(); err != nil {
						b.Fatal(err)
					}
				}
				if err := st.Close(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					re, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
					if err != nil {
						b.Fatal(err)
					}
					if re.Len() != n {
						b.Fatalf("recovered %d objects, want %d", re.Len(), n)
					}
					if err := re.Close(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "objects/s")
				b.ReportMetric(b.Elapsed().Seconds()*1000/float64(b.N), "ms/recovery")
			})
		}
	}
}

// BenchmarkLogstorePointRead measures Get against a fully-flushed store
// — every row lives in segment files, the memtable is empty, so this is
// the on-disk read path. "hit" reads existing rows; "miss" reads ids
// inside the key range that were never written, where the bloom filters
// must answer from memory: segprobes/op reports how many reads actually
// touched a segment file (the bloom false-positive rate, ~1% at 10
// bits/key).
func BenchmarkLogstorePointRead(b *testing.B) {
	for _, n := range []int{100000, 1000000} {
		dir := b.TempDir()
		st, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
		if err != nil {
			b.Fatal(err)
		}
		vv := vclock.Version{}
		for i := 0; i < n; i++ {
			vv = vv.Tick("gmd")
			obj := benchObject(fmt.Sprintf("obj-%07d", i*2), i, vv.Clone())
			if _, err := st.Exec(obj.ID, func(*information.Object) (*information.Object, error) {
				return obj, nil
			}); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Compact(); err != nil {
			b.Fatal(err)
		}
		for _, mode := range []string{"hit", "miss"} {
			b.Run(fmt.Sprintf("%s/objects=%d", mode, n), func(b *testing.B) {
				before := st.Stats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// Hits read even suffixes (written); misses read odd
					// suffixes (inside the key range, never written).
					id := fmt.Sprintf("obj-%07d", (i%n)*2)
					if mode == "miss" {
						id = fmt.Sprintf("obj-%07d", (i%n)*2+1)
					}
					_, ok := st.Get(id)
					if ok != (mode == "hit") {
						b.Fatalf("Get(%s) = %v in %s mode", id, ok, mode)
					}
				}
				b.StopTimer()
				after := st.Stats()
				b.ReportMetric(float64(after.SegmentProbes-before.SegmentProbes)/float64(b.N), "segprobes/op")
				b.ReportMetric(float64(after.BloomFiltered-before.BloomFiltered)/float64(b.N), "bloomfiltered/op")
			})
		}
		st.Close()
	}
}

// BenchmarkLogstoreFsyncPolicy compares the three durability policies on
// the same concurrent write load: "none" (page-cache durability, the
// crash-model default), "per-op" (every append fsyncs before returning),
// and "group" (concurrent appends share one write+fsync window). The
// fsyncs/op metric shows the group window collapsing N writers into one
// sync; ns/op prices each policy.
func BenchmarkLogstoreFsyncPolicy(b *testing.B) {
	type policy struct {
		name  string
		fsync bool
		group bool
	}
	policies := []policy{
		{name: "none"},
		{name: "per-op", fsync: true},
		{name: "group", fsync: true, group: true},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			st, err := Open(b.TempDir(), WithFsync(p.fsync), WithGroupCommit(p.group), WithCompactEvery(0))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ResetTimer()
			b.SetParallelism(8)
			var writer atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				id := fmt.Sprintf("obj-w%02d", writer.Add(1))
				vv := vclock.Version{}
				i := 0
				for pb.Next() {
					vv = vv.Tick("gmd")
					obj := benchObject(id, i, vv.Clone())
					if _, err := st.Exec(obj.ID, func(*information.Object) (*information.Object, error) {
						return obj, nil
					}); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
			b.StopTimer()
			s := st.Stats()
			b.ReportMetric(float64(s.Fsyncs)/float64(b.N), "fsyncs/op")
		})
	}
}
