package logstore

import (
	"fmt"
	"sort"
	"sync"

	"mocca/internal/information"
)

// memtable is the in-memory tier of the store: the rows written since the
// last flush, tombstones for rows removed since the last flush (a removal
// must mask any older version still sitting in a segment), and the full
// relationship graph. Rows migrate to immutable segment files when the
// memtable flushes; the graph never does — it is small (edges, not rows),
// consulted on every Relate for cycle checks, and persisted through the
// manifest instead.
//
// The memtable has its own lock so reads can be served while the store
// mutex serialises mutations; writers hold both (store mutex for
// ordering, this lock for the map writes).
type memtable struct {
	mu    sync.RWMutex
	rows  map[string]*information.Object
	tombs map[string]struct{}
	rels  map[string]map[information.RelKind][]string // from -> kind -> to ids
}

func newMemtable() *memtable {
	return &memtable{
		rows:  make(map[string]*information.Object),
		tombs: make(map[string]struct{}),
		rels:  make(map[string]map[information.RelKind][]string),
	}
}

// get returns the live row for id, or reports a tombstone. found means
// the memtable answers for this id (row or tombstone) and the segments
// must not be consulted.
func (m *memtable) get(id string) (obj *information.Object, tomb, found bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if obj, ok := m.rows[id]; ok {
		return obj, false, true
	}
	if _, ok := m.tombs[id]; ok {
		return nil, true, true
	}
	return nil, false, false
}

// put stores the row, clearing any tombstone for its id.
func (m *memtable) put(obj *information.Object) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows[obj.ID] = obj
	delete(m.tombs, obj.ID)
}

// kill removes the row for id, records a tombstone when the id may still
// exist in a segment, and strips every relationship edge touching it —
// a dangling edge would fail the endpoint check when the graph is
// reloaded.
func (m *memtable) kill(id string, tomb bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.rows, id)
	if tomb {
		m.tombs[id] = struct{}{}
	}
	delete(m.rels, id)
	for from, kinds := range m.rels {
		for kind, tos := range kinds {
			kept := tos[:0]
			for _, to := range tos {
				if to != id {
					kept = append(kept, to)
				}
			}
			if len(kept) == 0 {
				delete(kinds, kind)
			} else {
				kinds[kind] = kept
			}
		}
		if len(kinds) == 0 {
			delete(m.rels, from)
		}
	}
}

// pending reports how many row mutations (rows + tombstones) a flush
// would have to write.
func (m *memtable) pending() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.rows) + len(m.tombs)
}

// flushEntry is one sorted unit of a flush or merge: a live row, or a
// tombstone when obj is nil.
type flushEntry struct {
	id  string
	obj *information.Object
}

// entries returns every row and tombstone sorted by id — the input of a
// segment write and of merged iteration. Row pointers are the live rows;
// callers must respect the read-only contract.
func (m *memtable) entries() []flushEntry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]flushEntry, 0, len(m.rows)+len(m.tombs))
	for id, obj := range m.rows {
		out = append(out, flushEntry{id: id, obj: obj})
	}
	for id := range m.tombs {
		out = append(out, flushEntry{id: id})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// clear drops all rows and tombstones after a successful flush (the
// caller holds the store mutex, so nothing was written concurrently).
// The relation graph stays.
func (m *memtable) clear() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = make(map[string]*information.Object)
	m.tombs = make(map[string]struct{})
}

// --- relationships -------------------------------------------------------

// relate records a typed relationship edge. has answers whether an id
// exists anywhere in the store (memtable or segments) — the endpoint
// check spans tiers even though the graph itself is memory-resident.
// Composition and dependency must stay acyclic, exactly as in
// information.Store.
func (m *memtable) relate(from string, kind information.RelKind, to string, has func(string) bool) error {
	if !has(from) {
		return fmt.Errorf("%w: %q", information.ErrUnknownObject, from)
	}
	if !has(to) {
		return fmt.Errorf("%w: %q", information.ErrUnknownObject, to)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.reachableLocked(to, kind, from) || from == to {
		return fmt.Errorf("%w: %s -[%s]-> %s", information.ErrCycle, from, kind, to)
	}
	if m.rels[from] == nil {
		m.rels[from] = make(map[information.RelKind][]string)
	}
	for _, existing := range m.rels[from][kind] {
		if existing == to {
			return nil
		}
	}
	m.rels[from][kind] = append(m.rels[from][kind], to)
	return nil
}

// reachableLocked reports whether target is reachable from start over kind.
func (m *memtable) reachableLocked(start string, kind information.RelKind, target string) bool {
	seen := map[string]bool{}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		queue = append(queue, m.rels[cur][kind]...)
	}
	return false
}

// loadRelation installs one edge without validation — the recovery path
// for manifest-persisted edges, which were validated when written.
func (m *memtable) loadRelation(rel information.Relation) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.rels[rel.From] == nil {
		m.rels[rel.From] = make(map[information.RelKind][]string)
	}
	m.rels[rel.From][rel.Kind] = append(m.rels[rel.From][rel.Kind], rel.To)
}

// related returns directly related object ids, sorted.
func (m *memtable) related(from string, kind information.RelKind) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := append([]string(nil), m.rels[from][kind]...)
	sort.Strings(out)
	return out
}

// Relations dumps every relationship edge, sorted by (from, kind, to) —
// the unit the manifest persists alongside the segment list.
func (m *memtable) Relations() []information.Relation {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []information.Relation
	for from, kinds := range m.rels {
		for kind, tos := range kinds {
			for _, to := range tos {
				out = append(out, information.Relation{From: from, Kind: kind, To: to})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.To < b.To
	})
	return out
}

// dependents returns ids of objects that relate TO the given id over kind.
func (m *memtable) dependents(to string, kind information.RelKind) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for from, kinds := range m.rels {
		for _, t := range kinds[kind] {
			if t == to {
				out = append(out, from)
			}
		}
	}
	sort.Strings(out)
	return out
}

// closure returns all ids transitively reachable from id over kind.
func (m *memtable) closure(from string, kind information.RelKind) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := append([]string(nil), m.rels[cur][kind]...)
		sort.Strings(next)
		for _, n := range next {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
				queue = append(queue, n)
			}
		}
	}
	return out
}
