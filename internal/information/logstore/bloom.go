package logstore

import "hash/fnv"

// bloomBitsPerKey and bloomHashes size the per-segment bloom filters:
// 10 bits and 7 probes per key give a ~0.8% false-positive rate, so a
// point read for an absent id is answered from memory for ~99% of the
// segments it would otherwise have to touch on disk.
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// bloomFilter is a standard split-and-mix double-hashing bloom filter
// over object ids. The hash base is FNV-1a — a stable, seedless function,
// which matters because filters are persisted in segment files and must
// answer identically in every later process.
type bloomFilter struct {
	bits []byte
	k    int
}

// newBloomFilter sizes a filter for n keys.
func newBloomFilter(n int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	nbytes := (n*bloomBitsPerKey + 7) / 8
	return &bloomFilter{bits: make([]byte, nbytes), k: bloomHashes}
}

// bloomHash returns the two independent hash streams for key: the FNV-1a
// digest and a splitmix64 remix of it. Probe i uses h1 + i*h2 (Kirsch &
// Mitzenmacher double hashing).
func bloomHash(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	// splitmix64 finalizer.
	z := h1 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	h2 := z ^ (z >> 31)
	return h1, h2 | 1
}

// add records key in the filter.
func (b *bloomFilter) add(key string) {
	h1, h2 := bloomHash(key)
	nbits := uint64(len(b.bits)) * 8
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		b.bits[bit/8] |= 1 << (bit % 8)
	}
}

// may reports whether key might be in the filter; false means the key is
// definitely absent.
func (b *bloomFilter) may(key string) bool {
	if len(b.bits) == 0 {
		return false
	}
	h1, h2 := bloomHash(key)
	nbits := uint64(len(b.bits)) * 8
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}
