package logstore

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"mocca/internal/information"
	"mocca/internal/wire"
)

// A segment is one sorted, immutable run of rows on disk — the persistent
// tier beneath the memtable. The file is a sequence of CRC-framed records
// (wire.AppendRecord, the same framing as the WAL, so torn writes and bit
// rot are detected the same way):
//
//	data region:   recSegRow / recSegTomb records, sorted by id
//	meta region:   recSegMeta (count, seq range, key range, index stride)
//	               recSegIdx chunks  (sparse key index: every indexEvery-th
//	               id and its byte offset in the data region)
//	               recSegBloom chunks (bloom filter bits)
//	footer:        recSegFoot, a fixed-size record whose payload is the
//	               meta region's byte offset
//
// Opening a segment reads the footer and the meta region only — O(filter +
// index), never O(rows) — which is what keeps recovery proportional to
// metadata instead of data. A point read consults the in-memory key range,
// then the bloom filter, and only then issues one bounded pread of the
// index chunk that can hold the id.
//
// Segments are immutable once written: compaction replaces them wholesale
// and deletes the inputs. Readers pin a segment with a reference count so
// a file can be unlinked while a concurrent read still holds it open.
const (
	segIndexEvery = 32      // rows per sparse-index entry (pread granularity)
	bloomChunk    = 1 << 15 // bloom bytes per recSegBloom record (< wire string cap)
	idxChunk      = 4096    // index entries per recSegIdx record
)

// segFooterSize is the exact on-disk size of the footer record: framing
// plus a 9-byte payload (type byte + meta offset). Fixed size is what
// lets openSegment find the metadata with a single tail pread.
const segFooterSize = wire.RecordOverhead + 1 + 8

type segIndexEntry struct {
	key string
	off int64 // byte offset of the entry's record in the file
}

type segment struct {
	id      uint64
	level   int
	path    string
	f       *os.File
	count   int    // data records (rows + tombstones)
	seqLo   uint64 // WAL sequence range the segment's rows came from
	seqHi   uint64
	minKey  string
	maxKey  string
	bloom   *bloomFilter
	index   []segIndexEntry
	metaOff int64 // end of the data region

	// Lifecycle: compaction drops a segment while readers may still hold
	// it; the last reference out closes and unlinks the file.
	refMu   sync.Mutex
	refs    int
	dropped bool
}

// acquire pins the segment against concurrent drop.
func (g *segment) acquire() { g.refMu.Lock(); g.refs++; g.refMu.Unlock() }

// release unpins; the last release of a dropped segment closes and
// deletes the file.
func (g *segment) release() {
	g.refMu.Lock()
	g.refs--
	reap := g.dropped && g.refs == 0
	g.refMu.Unlock()
	if reap {
		//lint:allow errdrop reaping a read-only fd of a segment the manifest no longer references; nothing durable depends on the close
		g.f.Close()
		//lint:allow errdrop best-effort unlink of a superseded segment; a leftover file is garbage the next Open ignores
		os.Remove(g.path)
	}
}

// drop marks the segment dead; it is reaped when the last reader leaves.
func (g *segment) drop() {
	g.refMu.Lock()
	g.dropped = true
	reap := g.refs == 0
	g.refMu.Unlock()
	if reap {
		//lint:allow errdrop reaping a read-only fd of a segment the manifest no longer references; nothing durable depends on the close
		g.f.Close()
		//lint:allow errdrop best-effort unlink of a superseded segment; a leftover file is garbage the next Open ignores
		os.Remove(g.path)
	}
}

// closeFile closes the fd without unlinking — store shutdown.
//
//lint:allow errdrop the fd is read-only after finish; there are no buffered writes a failed close could lose
func (g *segment) closeFile() { g.f.Close() }

// segWriter streams sorted entries into a new segment file: data records
// as they arrive, then the meta region and footer on finish. expect sizes
// the bloom filter — an overestimate (a merge before deduplication) only
// lowers the false-positive rate. The file is fsynced before finish
// returns, so a manifest can reference it immediately.
type segWriter struct {
	seg     *segment
	f       *os.File
	w       *bufio.Writer
	off     int64
	lastKey string
	payload []byte
	frame   []byte
}

func newSegWriter(path string, id uint64, level int, seqLo, seqHi uint64, expect int) (*segWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &segWriter{
		seg: &segment{
			id: id, level: level, path: path,
			seqLo: seqLo, seqHi: seqHi,
			bloom: newBloomFilter(expect),
		},
		f: f,
		w: bufio.NewWriterSize(f, 1<<16),
	}, nil
}

// emit frames w.payload and writes it.
func (w *segWriter) emit() error {
	frame, err := wire.AppendRecord(w.frame[:0], w.payload)
	if err != nil {
		return err
	}
	w.frame = frame
	if _, err := w.w.Write(frame); err != nil {
		return err
	}
	w.off += int64(len(frame))
	return nil
}

// add appends one entry; entries must arrive in strictly ascending id
// order.
func (w *segWriter) add(e flushEntry) error {
	seg := w.seg
	if seg.count == 0 {
		seg.minKey = e.id
	}
	seg.maxKey = e.id
	if seg.count%segIndexEvery == 0 {
		seg.index = append(seg.index, segIndexEntry{key: e.id, off: w.off})
	}
	seg.bloom.add(e.id)
	seg.count++
	w.lastKey = e.id
	if e.obj != nil {
		w.payload = append(w.payload[:0], recSegRow)
		w.payload = appendObject(w.payload, e.obj)
	} else {
		w.payload = append(w.payload[:0], recSegTomb)
		w.payload = wire.AppendString(w.payload, e.id)
	}
	return w.emit()
}

// abort discards the partial file.
func (w *segWriter) abort() {
	//lint:allow errdrop abort is already the failure path; the partial file was never referenced by a manifest
	w.f.Close()
	//lint:allow errdrop best-effort unlink of an aborted partial segment; a leftover file is garbage the next Open ignores
	os.Remove(w.seg.path)
}

// finish writes the meta region and footer, fsyncs, and reopens the
// completed segment for reading.
func (w *segWriter) finish() (*segment, error) {
	seg := w.seg
	seg.metaOff = w.off

	w.payload = append(w.payload[:0], recSegMeta)
	w.payload = wire.AppendUint64(w.payload, seg.id)
	w.payload = wire.AppendUint64(w.payload, uint64(seg.count))
	w.payload = wire.AppendUint64(w.payload, seg.seqLo)
	w.payload = wire.AppendUint64(w.payload, seg.seqHi)
	w.payload = wire.AppendUint64(w.payload, segIndexEvery)
	w.payload = wire.AppendString(w.payload, seg.minKey)
	w.payload = wire.AppendString(w.payload, seg.maxKey)
	if err := w.emit(); err != nil {
		w.abort()
		return nil, err
	}
	for start := 0; start < len(seg.index); start += idxChunk {
		end := min(start+idxChunk, len(seg.index))
		w.payload = append(w.payload[:0], recSegIdx)
		w.payload = wire.AppendUint64(w.payload, uint64(end-start))
		for _, ent := range seg.index[start:end] {
			w.payload = wire.AppendString(w.payload, ent.key)
			w.payload = wire.AppendUint64(w.payload, uint64(ent.off))
		}
		if err := w.emit(); err != nil {
			w.abort()
			return nil, err
		}
	}
	bits := seg.bloom.bits
	for start := 0; start < len(bits); start += bloomChunk {
		end := min(start+bloomChunk, len(bits))
		w.payload = append(w.payload[:0], recSegBloom)
		w.payload = wire.AppendUint64(w.payload, uint64(len(bits)))
		w.payload = wire.AppendUint64(w.payload, uint64(start))
		w.payload = wire.AppendString(w.payload, string(bits[start:end]))
		if err := w.emit(); err != nil {
			w.abort()
			return nil, err
		}
	}
	w.payload = append(w.payload[:0], recSegFoot)
	w.payload = wire.AppendUint64(w.payload, uint64(seg.metaOff))
	if err := w.emit(); err != nil {
		w.abort()
		return nil, err
	}

	if err := w.w.Flush(); err != nil {
		w.abort()
		return nil, err
	}
	if err := w.f.Sync(); err != nil {
		w.abort()
		return nil, err
	}
	if err := w.f.Close(); err != nil {
		//lint:allow errdrop best-effort unlink after a failed close that is already being returned; the segment was never installed
		os.Remove(seg.path)
		return nil, err
	}
	r, err := os.Open(seg.path)
	if err != nil {
		return nil, err
	}
	seg.f = r
	return seg, nil
}

// openSegment opens an existing segment file reading only its footer and
// meta region — the recovery fast path.
func openSegment(path string, id uint64, level int) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*segment, error) {
		//lint:allow errdrop cleanup of a read-only fd on the open-failure path; the wrapped err carries the real failure
		f.Close()
		return nil, fmt.Errorf("segment %s: %w", path, err)
	}
	info, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if info.Size() < segFooterSize {
		return fail(ErrCorrupt)
	}
	foot := make([]byte, segFooterSize)
	if _, err := f.ReadAt(foot, info.Size()-segFooterSize); err != nil {
		return fail(err)
	}
	payload, _, err := wire.NextRecord(foot)
	if err != nil {
		return fail(err)
	}
	if len(payload) < 1 || payload[0] != recSegFoot {
		return fail(ErrCorrupt)
	}
	metaOff, _, err := wire.ConsumeUint64(payload[1:])
	if err != nil {
		return fail(err)
	}
	if int64(metaOff) > info.Size()-segFooterSize {
		return fail(ErrCorrupt)
	}
	meta := make([]byte, info.Size()-segFooterSize-int64(metaOff))
	if _, err := f.ReadAt(meta, int64(metaOff)); err != nil {
		return fail(err)
	}

	seg := &segment{id: id, level: level, path: path, f: f, metaOff: int64(metaOff)}
	rest := meta
	var bloomTotal uint64
	for len(rest) > 0 {
		payload, next, err := wire.NextRecord(rest)
		if err != nil {
			return fail(err)
		}
		rest = next
		if len(payload) < 1 {
			return fail(ErrCorrupt)
		}
		p := payload[1:]
		switch payload[0] {
		case recSegMeta:
			var segID, count, indexEvery uint64
			if segID, p, err = wire.ConsumeUint64(p); err != nil {
				return fail(err)
			}
			if segID != id {
				return fail(fmt.Errorf("%w: segment id %d, manifest says %d", ErrCorrupt, segID, id))
			}
			if count, p, err = wire.ConsumeUint64(p); err != nil {
				return fail(err)
			}
			if seg.seqLo, p, err = wire.ConsumeUint64(p); err != nil {
				return fail(err)
			}
			if seg.seqHi, p, err = wire.ConsumeUint64(p); err != nil {
				return fail(err)
			}
			if indexEvery, p, err = wire.ConsumeUint64(p); err != nil {
				return fail(err)
			}
			if indexEvery != segIndexEvery {
				return fail(fmt.Errorf("%w: index stride %d", ErrCorrupt, indexEvery))
			}
			if seg.minKey, p, err = wire.ConsumeString(p); err != nil {
				return fail(err)
			}
			if seg.maxKey, _, err = wire.ConsumeString(p); err != nil {
				return fail(err)
			}
			seg.count = int(count)
		case recSegIdx:
			var n uint64
			if n, p, err = wire.ConsumeUint64(p); err != nil {
				return fail(err)
			}
			for i := uint64(0); i < n; i++ {
				var key string
				var off uint64
				if key, p, err = wire.ConsumeString(p); err != nil {
					return fail(err)
				}
				if off, p, err = wire.ConsumeUint64(p); err != nil {
					return fail(err)
				}
				seg.index = append(seg.index, segIndexEntry{key: key, off: int64(off)})
			}
		case recSegBloom:
			var off uint64
			var chunk string
			if bloomTotal, p, err = wire.ConsumeUint64(p); err != nil {
				return fail(err)
			}
			if off, p, err = wire.ConsumeUint64(p); err != nil {
				return fail(err)
			}
			if chunk, _, err = wire.ConsumeString(p); err != nil {
				return fail(err)
			}
			if seg.bloom == nil {
				seg.bloom = &bloomFilter{bits: make([]byte, bloomTotal), k: bloomHashes}
			}
			if off+uint64(len(chunk)) > uint64(len(seg.bloom.bits)) {
				return fail(ErrCorrupt)
			}
			copy(seg.bloom.bits[off:], chunk)
		default:
			return fail(fmt.Errorf("%w: meta record type %d", ErrCorrupt, payload[0]))
		}
	}
	if seg.bloom == nil {
		seg.bloom = newBloomFilter(1)
	}
	return seg, nil
}

// segProbe is the outcome of a point read against one segment.
type segProbe int

const (
	probeSkipRange segProbe = iota // id outside the segment's key range
	probeSkipBloom                 // bloom filter proved the id absent
	probeMiss                      // disk touched, id not there (false positive)
	probeRow                       // row found
	probeTomb                      // tombstone found
)

// get answers a point read. Only probeRow returns an object. The key
// range and bloom checks are pure memory; only past both does the
// segment issue a single bounded pread of one index chunk.
func (g *segment) get(id string) (*information.Object, segProbe, error) {
	if g.count == 0 || id < g.minKey || id > g.maxKey {
		return nil, probeSkipRange, nil
	}
	if !g.bloom.may(id) {
		return nil, probeSkipBloom, nil
	}
	// Last index entry with key <= id bounds the only chunk that can hold it.
	j := sort.Search(len(g.index), func(i int) bool { return g.index[i].key > id }) - 1
	if j < 0 {
		return nil, probeMiss, nil
	}
	start := g.index[j].off
	end := g.metaOff
	if j+1 < len(g.index) {
		end = g.index[j+1].off
	}
	buf := make([]byte, end-start)
	if _, err := g.f.ReadAt(buf, start); err != nil {
		return nil, probeMiss, err
	}
	rest := buf
	for len(rest) > 0 {
		payload, next, err := wire.NextRecord(rest)
		if err != nil {
			return nil, probeMiss, err
		}
		rest = next
		if len(payload) < 1 {
			return nil, probeMiss, ErrCorrupt
		}
		switch payload[0] {
		case recSegRow:
			rowID, _, err := wire.ConsumeString(payload[1:])
			if err != nil {
				return nil, probeMiss, err
			}
			if rowID > id {
				return nil, probeMiss, nil
			}
			if rowID == id {
				obj, _, err := decodeObject(payload[1:])
				if err != nil {
					return nil, probeMiss, err
				}
				return obj, probeRow, nil
			}
		case recSegTomb:
			rowID, _, err := wire.ConsumeString(payload[1:])
			if err != nil {
				return nil, probeMiss, err
			}
			if rowID > id {
				return nil, probeMiss, nil
			}
			if rowID == id {
				return nil, probeTomb, nil
			}
		default:
			return nil, probeMiss, ErrCorrupt
		}
	}
	return nil, probeMiss, nil
}

// iter returns a streaming iterator over the segment's data region in
// sorted id order, reading through a small buffer — never the whole file.
func (g *segment) iter() *segIter {
	return &segIter{
		r:       bufio.NewReaderSize(io.NewSectionReader(g.f, 0, g.metaOff), 1<<16),
		remain:  g.count,
		scratch: make([]byte, 0, 1<<10),
	}
}

// segIter yields flushEntry values (obj == nil for tombstones).
type segIter struct {
	r       *bufio.Reader
	remain  int
	scratch []byte
}

// next returns the next entry, or ok == false at the end of the data
// region. Decode failures end the iteration with err set — segments are
// written and fsynced before being referenced, so this is bit rot, not a
// torn tail, and the caller surfaces it.
func (it *segIter) next() (flushEntry, bool, error) {
	if it.remain == 0 {
		return flushEntry{}, false, nil
	}
	payload, scratch, err := wire.ReadRecord(it.r, it.scratch)
	it.scratch = scratch
	if err != nil {
		if errors.Is(err, io.EOF) {
			// remain > 0 here (the guard above returned otherwise), so the
			// data region ended before yielding every record the metadata
			// promised: the file was truncated at a record boundary. That
			// is corruption, not a clean end — reporting it as one would
			// silently drop the missing rows from merged iteration and
			// from compaction output.
			return flushEntry{}, false, fmt.Errorf("%w: segment truncated mid-data", ErrCorrupt)
		}
		return flushEntry{}, false, err
	}
	it.remain--
	if len(payload) < 1 {
		return flushEntry{}, false, ErrCorrupt
	}
	switch payload[0] {
	case recSegRow:
		obj, _, err := decodeObject(payload[1:])
		if err != nil {
			return flushEntry{}, false, err
		}
		return flushEntry{id: obj.ID, obj: obj}, true, nil
	case recSegTomb:
		id, _, err := wire.ConsumeString(payload[1:])
		if err != nil {
			return flushEntry{}, false, err
		}
		return flushEntry{id: id}, true, nil
	default:
		return flushEntry{}, false, ErrCorrupt
	}
}
