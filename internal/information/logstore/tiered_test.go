package logstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mocca/internal/information"
	"mocca/internal/vclock"
)

// TestFlushEvictsMemtable: past the flush threshold, rows move from the
// memtable into a level-0 segment file and stay readable from disk.
func TestFlushEvictsMemtable(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithCompactEvery(10), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 25; i++ {
		put(t, st, fmt.Sprintf("row-%03d", i), vclock.NewVersion("gmd"), "gmd", nil)
	}
	if got := st.mem.pending(); got != 5 {
		t.Fatalf("memtable holds %d rows after flushes, want the 5 unflushed", got)
	}
	stats := st.Stats()
	if stats.Segments == 0 {
		t.Fatalf("no segment files after %d flushes: %+v", stats.Compactions, stats)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if len(segs) != stats.Segments {
		t.Fatalf("stats report %d segments, disk has %d", stats.Segments, len(segs))
	}
	if st.Len() != 25 {
		t.Fatalf("Len = %d, want 25", st.Len())
	}
	// Every row — flushed or not — must resolve.
	for i := 0; i < 25; i++ {
		id := fmt.Sprintf("row-%03d", i)
		if _, ok := st.Get(id); !ok {
			t.Fatalf("row %s unreadable after flush", id)
		}
	}
}

// TestBloomFiltersKeepMissesInMemory: a point read for an absent id is
// answered by the key range or the bloom filter, almost never by disk.
func TestBloomFiltersKeepMissesInMemory(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 500; i++ {
		put(t, st, fmt.Sprintf("row-%04d", i*2), vclock.NewVersion("gmd"), "gmd", nil)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.mem.pending() != 0 {
		t.Fatalf("memtable not empty after Compact")
	}

	before := st.Stats()
	const misses = 200
	for i := 0; i < misses; i++ {
		// Odd suffixes sit inside the segment's key range but were never
		// written, so only the bloom filter can keep them off disk.
		if _, ok := st.Get(fmt.Sprintf("row-%04d", i*2+1)); ok {
			t.Fatalf("phantom row found")
		}
	}
	if _, ok := st.Get("zzz-out-of-range"); ok {
		t.Fatalf("phantom row found")
	}
	after := st.Stats()

	if got := after.KeyRangeFiltered - before.KeyRangeFiltered; got < 1 {
		t.Fatalf("out-of-range miss not filtered by key range (delta %d)", got)
	}
	filtered := after.BloomFiltered - before.BloomFiltered
	probed := after.SegmentProbes - before.SegmentProbes
	if filtered < misses*9/10 {
		t.Fatalf("bloom filtered only %d of %d in-range misses", filtered, misses)
	}
	// 10 bits/key puts the false-positive rate near 1%; 10% is a generous
	// ceiling that still proves misses are not touching disk.
	if probed > misses/10 {
		t.Fatalf("%d of %d misses touched segment files", probed, misses)
	}
	if after.BloomFalsePositives-before.BloomFalsePositives != probed {
		t.Fatalf("probe/false-positive counters disagree: %d probes, %d fps",
			probed, after.BloomFalsePositives-before.BloomFalsePositives)
	}
}

// TestCompactMergesLevels: explicit Compact folds every segment into one
// without changing the merged view.
func TestCompactMergesLevels(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(5), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 30; i++ {
		put(t, st, fmt.Sprintf("row-%03d", i), vclock.NewVersion("gmd"), "gmd", nil)
	}
	if got := st.Stats().Segments; got < 3 {
		t.Fatalf("want several level-0 segments before the merge, got %d", got)
	}
	want := st.Digest()
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Segments != 1 {
		t.Fatalf("Compact left %d segments, want 1", stats.Segments)
	}
	if stats.Merges == 0 {
		t.Fatalf("no merge counted: %+v", stats)
	}
	if got := st.Digest(); !reflect.DeepEqual(got, want) {
		t.Fatalf("digest changed across merge")
	}
}

// TestSupersededVersionDroppedOnMerge: updating a row already flushed to
// a segment leaves two on-disk versions; the merge keeps only the newest.
func TestSupersededVersionDroppedOnMerge(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	put(t, st, "doc", vclock.NewVersion("gmd"), "gmd", map[string]string{"rev": "1"})
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// The update's Exec callback must see the segment-resident version.
	if _, err := st.Exec("doc", func(cur *information.Object) (*information.Object, error) {
		if cur == nil || cur.Fields["rev"] != "1" {
			t.Fatalf("Exec callback got %+v, want segment row rev 1", cur)
		}
		next := cur.Clone()
		next.Fields["rev"] = "2"
		next.VV = next.VV.Clone()
		next.VV.Tick("gmd")
		return next, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil { // flush v2, then merge both segments
		t.Fatal(err)
	}
	if got := st.Stats().Segments; got != 1 {
		t.Fatalf("%d segments after merge, want 1", got)
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	obj, ok := st.Get("doc")
	if !ok || obj.Fields["rev"] != "2" {
		t.Fatalf("merged row = %+v, want rev 2", obj)
	}
}

// TestTombstoneMasksSegmentRow: removing a row whose only copy lives in a
// segment must hide it immediately, across a flush, and across recovery.
func TestTombstoneMasksSegmentRow(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	put(t, st, "keep", vclock.NewVersion("gmd"), "gmd", nil)
	put(t, st, "gone", vclock.NewVersion("gmd"), "gmd", nil)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	removed, err := st.Remove("gone")
	if err != nil || removed == nil {
		t.Fatalf("Remove = %v, %v", removed, err)
	}
	if _, ok := st.Get("gone"); ok {
		t.Fatalf("removed row still visible over its segment copy")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery replays the recRemove over the manifest state.
	st2, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.Get("gone"); ok {
		t.Fatalf("removed row resurrected by recovery")
	}
	if st2.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1", st2.Len())
	}
	// Merging everything (tombstone + masked row are the whole store)
	// drops both for good.
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get("gone"); ok {
		t.Fatalf("removed row resurrected by compaction")
	}
	if st2.Len() != 1 {
		t.Fatalf("Len after merge = %d, want 1", st2.Len())
	}
}

// TestBackgroundMergeConverges: with merges enabled, a burst of flushes
// settles below the fanout without data loss.
func TestBackgroundMergeConverges(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(4), WithMergeFanout(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 64; i++ {
		put(t, st, fmt.Sprintf("row-%03d", i), vclock.NewVersion("gmd"), "gmd", nil)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Converged: no level holds fanout segments (at fanout 2, that
		// means at most one segment per level; 64 rows / 4 per flush = 16
		// flushes collapse into a handful of levels).
		if st.Stats().Segments <= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background merge never converged: %d segments", st.Stats().Segments)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Len() != 64 {
		t.Fatalf("Len = %d, want 64", st.Len())
	}
	for i := 0; i < 64; i++ {
		if _, ok := st.Get(fmt.Sprintf("row-%03d", i)); !ok {
			t.Fatalf("row %d lost during merges", i)
		}
	}
}

// TestRecoveryIgnoresOrphanSegments: a crash between writing a segment
// and renaming the manifest leaves an unreferenced segment file; Open
// must delete it and recover from the referenced state alone.
func TestRecoveryIgnoresOrphanSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	ids := seedStore(t, st, 8, 77)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	want := st.Digest()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	orphan := filepath.Join(dir, "seg-99999999.seg")
	if err := os.WriteFile(orphan, []byte("torn segment from a crashed flush"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, snapTmpName), []byte("torn manifest"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan segment survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, snapTmpName)); !os.IsNotExist(err) {
		t.Fatalf("temporary manifest survived recovery")
	}
	if got := st2.Digest(); !reflect.DeepEqual(got, want) {
		t.Fatalf("digest diverged after orphan cleanup")
	}
	if st2.Len() != len(ids) {
		t.Fatalf("Len = %d, want %d", st2.Len(), len(ids))
	}
}

// TestRecoveryIsMetadataBound: reopening a fully-flushed store must not
// read segment data regions — replay applies zero records and the live
// count comes from the manifest header.
func TestRecoveryIsMetadataBound(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st, 50, 13)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	want := st.Digest()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.ReplayedRecords != 0 {
		t.Fatalf("replayed %d WAL records over a covering manifest", stats.ReplayedRecords)
	}
	if stats.RecoveredObjects != 50 {
		t.Fatalf("RecoveredObjects = %d, want 50 (from manifest header)", stats.RecoveredObjects)
	}
	if stats.RecoveredRelations != 49 {
		t.Fatalf("RecoveredRelations = %d, want 49", stats.RecoveredRelations)
	}
	// The digest rebuild streams the segments — same bytes as before.
	if got := st2.Digest(); !reflect.DeepEqual(got, want) {
		t.Fatalf("digest diverged across metadata-bound recovery")
	}
}

// TestTruncatedSegmentSurfacesCorrupt: a segment file cut exactly at a
// record boundary (external truncation / bit rot) must end iteration with
// ErrCorrupt — a clean end would silently drop the missing rows from
// Range/Digest/Snapshot and from compaction output.
func TestTruncatedSegmentSurfacesCorrupt(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 2*segIndexEvery; i++ {
		put(t, st, fmt.Sprintf("row-%03d", i), vclock.NewVersion("gmd"), "gmd", nil)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	segs := st.acquireSegs()
	defer releaseSegs(segs)
	if len(segs) != 1 {
		t.Fatalf("%d segments after Compact, want 1", len(segs))
	}
	g := segs[0]
	if len(g.index) < 2 {
		t.Fatalf("segment index has %d entries, want >= 2", len(g.index))
	}
	// g.index[1].off is the byte offset of row segIndexEvery — an exact
	// record boundary inside the data region.
	if err := os.Truncate(g.path, g.index[1].off); err != nil {
		t.Fatal(err)
	}
	it := g.iter()
	var iterErr error
	rows := 0
	for {
		_, ok, err := it.next()
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			break
		}
		rows++
	}
	if !errors.Is(iterErr, ErrCorrupt) {
		t.Fatalf("truncated segment ended cleanly after %d/%d rows (err = %v), want ErrCorrupt", rows, g.count, iterErr)
	}
}

// TestSegmentReadErrorAbortsLookup: bit rot in a segment's data region
// must abort the newest-first scan and surface as an Exec/Remove error —
// not decode as a miss that hands Exec a nil row (which would recreate it
// with a fresh version vector) or fall through to an older segment.
func TestSegmentReadErrorAbortsLookup(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(0), WithBackgroundMerge(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 8; i++ {
		put(t, st, fmt.Sprintf("row-%03d", i), vclock.NewVersion("gmd"), "gmd", nil)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	segs := st.acquireSegs()
	path := segs[0].path
	releaseSegs(segs)
	// Rot the first data record's framing in place.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := st.Exec("row-000", func(cur *information.Object) (*information.Object, error) {
		t.Error("Exec callback ran against a corrupt segment probe")
		return nil, nil
	}); err == nil {
		t.Fatal("Exec over a corrupt segment chunk succeeded")
	}
	if _, err := st.Remove("row-000"); err == nil {
		t.Fatal("Remove over a corrupt segment chunk succeeded")
	}
	if _, ok := st.Get("row-000"); ok {
		t.Fatal("Get returned a row decoded from a corrupt chunk")
	}
	if got := st.Stats().SegmentReadFailures; got == 0 {
		t.Fatal("segment read failures not counted in Stats")
	}
}
