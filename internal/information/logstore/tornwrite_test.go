package logstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mocca/internal/wire"
)

// walBoundaries parses the WAL's record frame boundaries: boundaries[i]
// is the byte offset where record i starts, with a final entry at the
// end of the intact log.
func walBoundaries(walBytes []byte) []int {
	boundaries := []int{0}
	rest := walBytes
	for len(rest) > 0 {
		_, r2, err := wire.NextRecord(rest)
		if err != nil {
			break
		}
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+(len(rest)-len(r2)))
		rest = r2
	}
	return boundaries
}

// recordsWithin counts the records fully contained in the first n bytes.
func recordsWithin(boundaries []int, n int) int {
	count := 0
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= n {
			count++
		}
	}
	return count
}

// openPrefix writes the first n WAL bytes into a fresh directory and
// recovers a store from it.
func openPrefix(t *testing.T, walBytes []byte, n int) *Store {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walName), walBytes[:n], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open with %d-byte WAL prefix: %v", n, err)
	}
	return st
}

// TestTornWriteRecoveryAtArbitraryOffsets models a crash tearing the
// last write at EVERY byte offset of its frame (and a sample of earlier
// offsets): recovery must succeed at each, keep exactly the records
// fully on disk, and be idempotent — reopening the recovered store
// yields the identical state.
func TestTornWriteRecoveryAtArbitraryOffsets(t *testing.T) {
	src := t.TempDir()
	st, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st, 12, 1992)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(src, walName))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := walBoundaries(walBytes)
	if len(boundaries) < 3 || boundaries[len(boundaries)-1] != len(walBytes) {
		t.Fatalf("unexpected WAL layout: %d boundaries over %d bytes", len(boundaries), len(walBytes))
	}

	// Every offset within the final record's frame, plus a stride across
	// the whole log.
	offsets := map[int]bool{0: true, len(walBytes): true}
	for n := boundaries[len(boundaries)-2]; n <= len(walBytes); n++ {
		offsets[n] = true
	}
	for n := 0; n < len(walBytes); n += 13 {
		offsets[n] = true
	}

	for n := range offsets {
		st2 := openPrefix(t, walBytes, n)
		want := recordsWithin(boundaries, n)
		if got := st2.Stats().ReplayedRecords; got != want {
			t.Fatalf("prefix %d: replayed %d records, want %d", n, got, want)
		}
		// Idempotent recovery: the truncated-and-recovered store reopens
		// byte-identically.
		before := digestBinary(st2)
		beforeRels := st2.mem.Relations()
		st3 := reopen(t, st2)
		if !reflect.DeepEqual(digestBinary(st3), before) {
			t.Fatalf("prefix %d: second recovery changed the digest", n)
		}
		if !reflect.DeepEqual(st3.mem.Relations(), beforeRels) {
			t.Fatalf("prefix %d: second recovery changed the graph", n)
		}
		if err := st3.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBitRotRecoveryAtArbitraryOffsets flips one byte at a sample of
// offsets: the CRC must end the replay at the rotted record, keeping the
// intact prefix, and the store must accept appends again afterwards.
func TestBitRotRecoveryAtArbitraryOffsets(t *testing.T) {
	src := t.TempDir()
	st, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st, 12, 41)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	walBytes, err := os.ReadFile(filepath.Join(src, walName))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := walBoundaries(walBytes)

	for n := 0; n < len(walBytes); n += 29 {
		rotted := bytes.Clone(walBytes)
		rotted[n] ^= 0x40
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), rotted, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir)
		if err != nil {
			t.Fatalf("rot at %d: %v", n, err)
		}
		// Everything strictly before the rotted record survives; the rot
		// and whatever followed it is gone.
		want := recordsWithin(boundaries, n)
		if got := st2.Stats().ReplayedRecords; got != want {
			t.Fatalf("rot at %d: replayed %d records, want %d", n, got, want)
		}
		if st2.Stats().DiscardedBytes == 0 {
			t.Fatalf("rot at %d: nothing discarded", n)
		}
		// The recovered store is writable again.
		put(t, st2, "post-rot", map[string]uint64{"gmd": 9}, "gmd", map[string]string{"title": "alive"})
		if _, ok := st2.Get("post-rot"); !ok {
			t.Fatalf("rot at %d: store not writable after recovery", n)
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
