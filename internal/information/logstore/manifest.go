package logstore

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"mocca/internal/information"
	"mocca/internal/wire"
)

// The manifest is the store's incremental snapshot: instead of rewriting
// every row (the pre-tiered design), it records WHERE the rows are — the
// live segment list — plus the small state that never leaves memory. It
// keeps the historical snapshot.snap name and the same atomic discipline
// (stream to snapshot.tmp, fsync, rename), so a crash at any point leaves
// either the old manifest or the new one, never a torn in-between.
//
// Layout (CRC-framed records):
//
//	header:     recSnapHeader, carrying the covered WAL sequence, the live
//	            row count at that sequence, the next segment id, and the
//	            segment/relation counts
//	segments:   one recManSeg per live segment (id, level, file name)
//	relations:  one record per relationship edge
//
// Recovery cost is O(segments + relations + WAL tail): segment rows are
// never read, only each segment's footer and meta region.

// manifest is the decoded on-disk state.
type manifest struct {
	coveredSeq uint64 // WAL records with seq <= this are in the segments
	liveRows   int    // live row count at coveredSeq
	nextSegID  uint64
	segs       []manifestSeg
	rels       []information.Relation
}

type manifestSeg struct {
	id    uint64
	level int
	file  string
}

// loadManifest reads the manifest, or returns nil when none exists yet.
// A manifest that fails its checksums is a hard error: the WAL was
// truncated when it was written, so nothing can reconstruct the covered
// prefix.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, snapName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	payload, rest, err := wire.NextRecord(data)
	if err != nil {
		return nil, fmt.Errorf("manifest header: %w", err)
	}
	if len(payload) < 1 || payload[0] != recSnapHeader {
		return nil, fmt.Errorf("manifest header: %w", ErrCorrupt)
	}
	m := &manifest{}
	var live, nSegs, nRels uint64
	p := payload[1:]
	if m.coveredSeq, p, err = wire.ConsumeUint64(p); err != nil {
		return nil, fmt.Errorf("manifest header: %w", err)
	}
	if live, p, err = wire.ConsumeUint64(p); err != nil {
		return nil, fmt.Errorf("manifest header: %w", err)
	}
	if m.nextSegID, p, err = wire.ConsumeUint64(p); err != nil {
		return nil, fmt.Errorf("manifest header: %w", err)
	}
	if nSegs, p, err = wire.ConsumeUint64(p); err != nil {
		return nil, fmt.Errorf("manifest header: %w", err)
	}
	if nRels, _, err = wire.ConsumeUint64(p); err != nil {
		return nil, fmt.Errorf("manifest header: %w", err)
	}
	m.liveRows = int(live)
	for i := uint64(0); i < nSegs; i++ {
		if payload, rest, err = wire.NextRecord(rest); err != nil {
			return nil, fmt.Errorf("manifest segment %d: %w", i, err)
		}
		if len(payload) < 1 || payload[0] != recManSeg {
			return nil, fmt.Errorf("manifest segment %d: %w", i, ErrCorrupt)
		}
		var ms manifestSeg
		var level uint64
		p := payload[1:]
		if ms.id, p, err = wire.ConsumeUint64(p); err != nil {
			return nil, fmt.Errorf("manifest segment %d: %w", i, err)
		}
		if level, p, err = wire.ConsumeUint64(p); err != nil {
			return nil, fmt.Errorf("manifest segment %d: %w", i, err)
		}
		if ms.file, _, err = wire.ConsumeString(p); err != nil {
			return nil, fmt.Errorf("manifest segment %d: %w", i, err)
		}
		ms.level = int(level)
		m.segs = append(m.segs, ms)
	}
	for i := uint64(0); i < nRels; i++ {
		if payload, rest, err = wire.NextRecord(rest); err != nil {
			return nil, fmt.Errorf("manifest relation %d: %w", i, err)
		}
		rel, _, err := decodeRelation(payload)
		if err != nil {
			return nil, fmt.Errorf("manifest relation %d: %w", i, err)
		}
		m.rels = append(m.rels, rel)
	}
	return m, nil
}

// writeManifestLocked streams the current manifest (segment list segs,
// covered sequence s.snapSeq, live count s.liveCovered, and the full
// relation graph) through snapshot.tmp and renames it into place. Caller
// holds s.mu, which serialises manifest writers (flush and compaction
// install).
func (s *Store) writeManifestLocked(segs []*segment) error {
	rels := s.mem.Relations()
	tmp := filepath.Join(s.dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<16)

	s.payload = append(s.payload[:0], recSnapHeader)
	s.payload = wire.AppendUint64(s.payload, s.snapSeq)
	s.payload = wire.AppendUint64(s.payload, uint64(s.liveCovered))
	s.payload = wire.AppendUint64(s.payload, s.nextSegID)
	s.payload = wire.AppendUint64(s.payload, uint64(len(segs)))
	s.payload = wire.AppendUint64(s.payload, uint64(len(rels)))
	werr := s.writeFrame(w)
	for _, seg := range segs {
		if werr != nil {
			break
		}
		s.payload = append(s.payload[:0], recManSeg)
		s.payload = wire.AppendUint64(s.payload, seg.id)
		s.payload = wire.AppendUint64(s.payload, uint64(seg.level))
		s.payload = wire.AppendString(s.payload, filepath.Base(seg.path))
		werr = s.writeFrame(w)
	}
	for _, rel := range rels {
		if werr != nil {
			break
		}
		s.payload = appendRelation(s.payload[:0], rel)
		werr = s.writeFrame(w)
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if werr != nil {
		//lint:allow errdrop the write already failed and werr carries the real error; close is cleanup of a temp file that rename never published
		f.Close()
		return werr
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(s.dir, snapName))
}
