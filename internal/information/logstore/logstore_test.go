package logstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mocca/internal/information"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

var (
	t0 = time.Unix(0, 700000000000000000).UTC()
	t1 = t0.Add(time.Minute)
)

// put stores one fully-specified row through the backend's Exec primitive.
func put(t testing.TB, st *Store, id string, vv vclock.Version, site string, fields map[string]string) {
	t.Helper()
	_, err := st.Exec(id, func(*information.Object) (*information.Object, error) {
		return &information.Object{
			ID: id, Schema: "doc", Owner: "ada", Fields: fields,
			Version: vv.Sum(), VV: vv, Site: site, Created: t0, Updated: t1,
		}, nil
	})
	if err != nil {
		t.Fatalf("put %s: %v", id, err)
	}
}

// seedStore writes n seeded, reproducible rows (multi-site version
// vectors) plus a chain of relations, and returns the row ids.
func seedStore(t testing.TB, st *Store, n int, seed int64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("obj-%03d", i)
		vv := vclock.Version{}
		for _, site := range []string{"gmd", "upc", "nott"} {
			if c := rng.Intn(4); c > 0 {
				vv[site] = uint64(c)
			}
		}
		if len(vv) == 0 {
			vv = vclock.NewVersion("gmd")
		}
		put(t, st, ids[i], vv, "gmd", map[string]string{
			"title": fmt.Sprintf("row %d", i),
			"body":  fmt.Sprintf("%x", rng.Uint64()),
		})
	}
	for i := 1; i < n; i++ {
		if err := st.Relate(ids[i], information.RelDependsOn, ids[i-1]); err != nil {
			t.Fatalf("relate: %v", err)
		}
	}
	return ids
}

// digestBinary renders a digest as canonical per-object bytes, for
// byte-for-byte comparison of version vectors across recovery.
func digestBinary(b information.Backend) map[string][]byte {
	out := make(map[string][]byte)
	for id, vv := range b.Digest() {
		out[id] = vv.AppendBinary(nil)
	}
	return out
}

// reopen closes st and opens the directory again.
func reopen(t testing.TB, st *Store, opts ...Option) *Store {
	t.Helper()
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := Open(st.Dir(), opts...)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return re
}

func TestRecoveryRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ids := seedStore(t, st, 25, 1992)
	before := st.Snapshot(nil)
	beforeDigest := digestBinary(st)

	re := reopen(t, st)
	defer re.Close()
	if re.Len() != len(ids) {
		t.Fatalf("recovered %d objects, want %d", re.Len(), len(ids))
	}
	after := re.Snapshot(nil)
	sortObjs := func(objs []*information.Object) {
		for i := range objs {
			for j := i + 1; j < len(objs); j++ {
				if objs[j].ID < objs[i].ID {
					objs[i], objs[j] = objs[j], objs[i]
				}
			}
		}
	}
	sortObjs(before)
	sortObjs(after)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("recovered rows differ from pre-crash rows")
	}
	// Version vectors byte-for-byte.
	afterDigest := digestBinary(re)
	if len(afterDigest) != len(beforeDigest) {
		t.Fatalf("digest size %d, want %d", len(afterDigest), len(beforeDigest))
	}
	for id, b := range beforeDigest {
		if !bytes.Equal(afterDigest[id], b) {
			t.Fatalf("object %s: version vector changed across recovery", id)
		}
	}
	// Relationship graph survived.
	if got := re.Related(ids[5], information.RelDependsOn); len(got) != 1 || got[0] != ids[4] {
		t.Fatalf("relations lost: %v", got)
	}
	if got := re.Closure(ids[len(ids)-1], information.RelDependsOn); len(got) != len(ids)-1 {
		t.Fatalf("closure = %d edges, want %d", len(got), len(ids)-1)
	}
	if s := re.Stats(); s.RecoveredObjects != len(ids) {
		t.Fatalf("RecoveredObjects = %d, want %d", s.RecoveredObjects, len(ids))
	}
}

// TestRecoveryIsReproducible runs the same seeded workload twice and
// demands identical recovered state.
func TestRecoveryIsReproducible(t *testing.T) {
	run := func() map[string][]byte {
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		seedStore(t, st, 40, 4711)
		re := reopen(t, st)
		defer re.Close()
		return digestBinary(re)
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("seeded recovery not reproducible")
	}
}

func TestSpaceOverLogstore(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := information.NewSchemaRegistry()
	if err := reg.Register(information.Schema{Name: "note", Fields: []information.Field{
		{Name: "text", Type: information.FieldText, Required: true},
	}}); err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewSimulated(t0)
	sp := information.NewSpace(reg, nil, clk,
		information.WithSite("gmd"), information.WithBackend(st))
	obj, err := sp.Put("ada", "note", map[string]string{"text": "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Update("ada", obj.ID, obj.Version, map[string]string{"text": "v2"}); err != nil {
		t.Fatal(err)
	}
	want := digestBinary(st)

	re := reopen(t, st)
	defer re.Close()
	sp2 := information.NewSpace(reg, nil, clk,
		information.WithSite("gmd"), information.WithBackend(re))
	got, err := sp2.Get("ada", obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields["text"] != "v2" || got.Version != 2 || got.Site != "gmd" {
		t.Fatalf("recovered object %+v", got)
	}
	if !reflect.DeepEqual(digestBinary(re), want) {
		t.Fatal("space digest changed across recovery")
	}
}

func TestRecoveryTruncatedTail(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st, 10, 7)
	walPath := filepath.Join(st.Dir(), walName)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record: chop a few bytes off the file.
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := Open(st.Dir())
	if err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	defer re.Close()
	// The torn record was a relation (relations are appended last); all 10
	// objects and all-but-one relation survive.
	if re.Len() != 10 {
		t.Fatalf("recovered %d objects, want 10", re.Len())
	}
	if s := re.Stats(); s.DiscardedBytes == 0 || s.RecoveredRelations != 8 {
		t.Fatalf("stats after torn tail: %+v", s)
	}
	// The log is clean again: appends extend it and a further recovery
	// sees them.
	put(t, re, "post-crash", vclock.NewVersion("gmd"), "gmd", map[string]string{"title": "new"})
	re2 := reopen(t, re)
	defer re2.Close()
	if re2.Len() != 11 {
		t.Fatalf("post-truncation append lost: %d objects", re2.Len())
	}
	if s := re2.Stats(); s.DiscardedBytes != 0 {
		t.Fatalf("second recovery discarded %d bytes from a clean log", s.DiscardedBytes)
	}
}

func TestRecoveryCorruptTailCRC(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put(t, st, "a", vclock.NewVersion("gmd"), "gmd", map[string]string{"title": "keep"})
	put(t, st, "b", vclock.NewVersion("gmd"), "gmd", map[string]string{"title": "rot"})
	walPath := filepath.Join(st.Dir(), walName)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the last record's payload.
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(st.Dir())
	if err != nil {
		t.Fatalf("recovery over corrupt tail: %v", err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("recovered %d objects, want 1 (corrupt record dropped)", re.Len())
	}
	if _, ok := re.Get("a"); !ok {
		t.Fatal("intact prefix lost")
	}
	if s := re.Stats(); s.DiscardedBytes == 0 {
		t.Fatalf("corruption not accounted: %+v", s)
	}
}

func TestRecoveryMidCompactionCrash(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, WithCompactEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st, 12, 99)
	// Save the pre-compaction WAL: this is what the log looks like if a
	// crash hits after the snapshot rename but before the truncation.
	walPath := filepath.Join(dir, walName)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	want := digestBinary(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash window 1: snapshot renamed, WAL not yet truncated. Replay must
	// skip every covered record instead of double-applying or regressing.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(digestBinary(re), want) {
		t.Fatal("state diverged when replaying a snapshot-covered WAL")
	}
	if s := re.Stats(); s.ReplayedRecords != 0 || s.SkippedRecords == 0 {
		t.Fatalf("covered records not skipped: %+v", s)
	}
	// New writes sequence past the snapshot and survive another recovery.
	put(t, re, "after", vclock.NewVersion("upc"), "upc", map[string]string{"title": "fresh"})
	re2 := reopen(t, re)
	if re2.Len() != 13 {
		t.Fatalf("write after covered replay lost: %d objects", re2.Len())
	}
	if err := re2.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash window 2: a torn snapshot.tmp left behind is discarded.
	if err := os.WriteFile(filepath.Join(dir, snapTmpName), []byte("torn snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	re3, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery with leftover snapshot.tmp: %v", err)
	}
	defer re3.Close()
	if re3.Len() != 13 {
		t.Fatalf("leftover tmp corrupted recovery: %d objects", re3.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, snapTmpName)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("snapshot.tmp not cleaned up")
	}
}

func TestAutomaticCompaction(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(10))
	if err != nil {
		t.Fatal(err)
	}
	seedStore(t, st, 25, 3)
	if s := st.Stats(); s.Compactions == 0 {
		t.Fatalf("no automatic compaction after %d appends", s.Appends)
	}
	// Everything is still there after the WAL was truncated underneath.
	re := reopen(t, st)
	defer re.Close()
	if re.Len() != 25 {
		t.Fatalf("recovered %d objects, want 25", re.Len())
	}
	if s := re.Stats(); s.RecoveredRelations != 24 {
		t.Fatalf("recovered %d relations, want 24", s.RecoveredRelations)
	}
}

func TestClosedStoreRejectsMutations(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put(t, st, "a", vclock.NewVersion("gmd"), "gmd", nil)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec("b", func(*information.Object) (*information.Object, error) {
		return &information.Object{ID: "b"}, nil
	}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after Close = %v, want ErrClosed", err)
	}
	if err := st.Relate("a", information.RelDependsOn, "a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Relate after Close = %v, want ErrClosed", err)
	}
	// Reads keep serving from memory.
	if _, ok := st.Get("a"); !ok {
		t.Fatal("read after Close failed")
	}
}

// An oversize field value must be rejected up front: accepting it would
// acknowledge a write that recovery later discards (the decode-side
// string limit would treat it, and every later record, as a torn tail).
func TestOversizeFieldRejectedNotDestroyedLater(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put(t, st, "before", vclock.NewVersion("gmd"), "gmd", map[string]string{"title": "ok"})
	huge := strings.Repeat("x", 1<<16)
	_, err = st.Exec("big", func(*information.Object) (*information.Object, error) {
		return &information.Object{ID: "big", Schema: "doc", Owner: "ada",
			Fields: map[string]string{"body": huge},
			VV:     vclock.NewVersion("gmd"), Version: 1, Site: "gmd", Created: t0, Updated: t1}, nil
	})
	if !errors.Is(err, wire.ErrOversize) {
		t.Fatalf("oversize field: err = %v, want wire.ErrOversize", err)
	}
	if _, ok := st.Get("big"); ok {
		t.Fatal("rejected row is live in memory")
	}
	put(t, st, "after", vclock.NewVersion("gmd"), "gmd", map[string]string{"title": "ok too"})
	re := reopen(t, st)
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("recovered %d objects, want 2 (before + after)", re.Len())
	}
	if s := re.Stats(); s.DiscardedBytes != 0 {
		t.Fatalf("clean log discarded %d bytes", s.DiscardedBytes)
	}
	if err := re.Relate("before", information.RelKind(strings.Repeat("k", 1<<16)), "after"); !errors.Is(err, wire.ErrOversize) {
		t.Fatalf("oversize relation kind: err = %v, want wire.ErrOversize", err)
	}
}

// A WAL append failure must fail the write without committing it to
// memory: a row served from memory but absent from the log would vanish
// on recovery while peers replicated it.
func TestAppendFailureDoesNotCommitToMemory(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	put(t, st, "good", vclock.NewVersion("gmd"), "gmd", nil)
	st.wal.Close() // simulate the disk going away beneath the store
	_, err = st.Exec("doomed", func(*information.Object) (*information.Object, error) {
		return &information.Object{ID: "doomed", Schema: "doc", Owner: "ada",
			VV: vclock.NewVersion("gmd"), Version: 1, Site: "gmd", Created: t0, Updated: t1}, nil
	})
	if err == nil {
		t.Fatal("append onto a dead WAL reported success")
	}
	if _, ok := st.Get("doomed"); ok {
		t.Fatal("failed write is live in memory")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
}

// A relation the graph rejects (cycle) must not survive in the log: a
// replay of the refused edge would fail recovery.
func TestRejectedRelationRolledOffLog(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put(t, st, "a", vclock.NewVersion("gmd"), "gmd", nil)
	put(t, st, "b", vclock.NewVersion("gmd"), "gmd", nil)
	if err := st.Relate("a", information.RelDependsOn, "b"); err != nil {
		t.Fatal(err)
	}
	if err := st.Relate("b", information.RelDependsOn, "a"); err == nil {
		t.Fatal("cycle accepted")
	}
	re := reopen(t, st)
	defer re.Close()
	if s := re.Stats(); s.RecoveredRelations != 1 || s.DiscardedBytes != 0 {
		t.Fatalf("refused edge leaked into the log: %+v", s)
	}
}

// A refused relation record stuck in the log (crash between the append
// and the rollback truncate) must not brick recovery: replay skips it
// and keeps applying later records.
func TestReplaySkipsRefusedRelation(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put(t, st, "a", vclock.NewVersion("gmd"), "gmd", nil)
	put(t, st, "b", vclock.NewVersion("gmd"), "gmd", nil)
	if err := st.Relate("a", information.RelDependsOn, "b"); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(st.Dir(), walName)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a CRC-valid record for an edge the graph refuses (cycle),
	// followed by a good object record that must still be applied.
	payload := appendWALPayload(nil, recRelate, 1000)
	payload = appendRelation(payload, information.Relation{From: "b", Kind: information.RelDependsOn, To: "a"})
	frame, err := wire.AppendRecord(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	payload = appendWALPayload(nil, recExec, 1001)
	payload = appendObject(payload, &information.Object{ID: "c", Schema: "doc", Owner: "ada",
		VV: vclock.NewVersion("upc"), Version: 1, Site: "upc", Created: t0, Updated: t1})
	if frame, err = wire.AppendRecord(frame, payload); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(st.Dir())
	if err != nil {
		t.Fatalf("refused relation record bricked recovery: %v", err)
	}
	defer re.Close()
	if re.Len() != 3 {
		t.Fatalf("recovered %d objects, want 3 (record after the refused edge applied)", re.Len())
	}
	if got := re.Related("b", information.RelDependsOn); len(got) != 0 {
		t.Fatalf("refused edge materialised: %v", got)
	}
	if s := re.Stats(); s.RecoveredRelations != 1 || s.SkippedRecords != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// A failed durable Update must not leave a phantom write in memory: the
// engine's Update path mutates the row it is handed in place, so the
// backend must isolate the live row from the callback until the WAL
// append succeeds.
func TestFailedUpdateLeavesLiveRowUntouched(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reg := information.NewSchemaRegistry()
	if err := reg.Register(information.Schema{Name: "note", Fields: []information.Field{
		{Name: "text", Type: information.FieldText, Required: true},
	}}); err != nil {
		t.Fatal(err)
	}
	sp := information.NewSpace(reg, nil, vclock.NewSimulated(t0),
		information.WithSite("gmd"), information.WithBackend(st))
	obj, err := sp.Put("ada", "note", map[string]string{"text": "v1"})
	if err != nil {
		t.Fatal(err)
	}

	// Oversize update: rejected by the durable backend mid-Exec, after the
	// engine has already mutated the row it was handed.
	huge := strings.Repeat("x", 1<<16)
	if _, err := sp.Update("ada", obj.ID, obj.Version, map[string]string{"text": huge}); !errors.Is(err, wire.ErrOversize) {
		t.Fatalf("oversize update: %v, want wire.ErrOversize", err)
	}
	got, err := sp.Get("ada", obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.Fields["text"] != "v1" || got.VV.Counter("gmd") != 1 {
		t.Fatalf("failed update leaked into memory: v%d %q vv=%s", got.Version, got.Fields["text"], got.VV)
	}

	// Same with the WAL dead: the update fails and the row stays at v1.
	st.wal.Close()
	if _, err := sp.Update("ada", obj.ID, obj.Version, map[string]string{"text": "v2"}); err == nil {
		t.Fatal("update over dead WAL reported success")
	}
	if got, _ := sp.Get("ada", obj.ID); got.Version != 1 || got.Fields["text"] != "v1" {
		t.Fatalf("failed update leaked into memory: v%d %q", got.Version, got.Fields["text"])
	}
}
