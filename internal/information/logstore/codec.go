package logstore

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mocca/internal/information"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// Record types. A WAL record is [type byte][seq uint64][type-specific
// payload]; snapshot files reuse the object and relation encodings with a
// header record in front (see snapshot layout in logstore.go).
const (
	recExec       byte = 1 // full post-state of one Exec mutation
	recRelate     byte = 2 // one relationship edge
	recSnapHeader byte = 3 // manifest file header (historically: snapshot)
	recRemove     byte = 4 // eviction of one row (placement migration)

	// Segment-file records (see segment.go for the file layout).
	recSegRow   byte = 5  // one object row in a segment's data region
	recSegTomb  byte = 6  // one tombstone in a segment's data region
	recSegMeta  byte = 7  // segment metadata header (count, seq + key ranges)
	recSegIdx   byte = 8  // a chunk of the sparse key index
	recSegBloom byte = 9  // a chunk of the bloom filter bits
	recSegFoot  byte = 10 // fixed-size footer pointing at the metadata

	// Manifest records (see manifest.go).
	recManSeg byte = 11 // one live segment reference
)

// ErrCorrupt reports a record whose framing was intact but whose payload
// did not decode — same recovery treatment as a CRC failure.
var ErrCorrupt = errors.New("logstore: corrupt record payload")

// appendObject appends the canonical binary encoding of one object row:
// length-prefixed strings, big-endian integers, the version vector in
// vclock's canonical sorted form, and fields in sorted key order. Equal
// rows encode to equal bytes, which is what lets recovery be verified
// byte-for-byte.
func appendObject(dst []byte, o *information.Object) []byte {
	dst = wire.AppendString(dst, o.ID)
	dst = wire.AppendString(dst, o.Schema)
	dst = wire.AppendString(dst, o.Owner)
	dst = wire.AppendString(dst, o.Site)
	dst = wire.AppendUint64(dst, o.Version)
	dst = o.VV.AppendBinary(dst)
	dst = wire.AppendUint64(dst, uint64(o.Created.UnixNano()))
	dst = wire.AppendUint64(dst, uint64(o.Updated.UnixNano()))
	dst = wire.AppendUint64(dst, uint64(len(o.Fields)))
	keys := make([]string, 0, len(o.Fields))
	for k := range o.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = wire.AppendString(dst, k)
		dst = wire.AppendString(dst, o.Fields[k])
	}
	return dst
}

// decodeObject decodes one object row, returning it and the remaining
// bytes.
func decodeObject(data []byte) (*information.Object, []byte, error) {
	o := &information.Object{}
	var err error
	if o.ID, data, err = wire.ConsumeString(data); err != nil {
		return nil, data, err
	}
	if o.Schema, data, err = wire.ConsumeString(data); err != nil {
		return nil, data, err
	}
	if o.Owner, data, err = wire.ConsumeString(data); err != nil {
		return nil, data, err
	}
	if o.Site, data, err = wire.ConsumeString(data); err != nil {
		return nil, data, err
	}
	if o.Version, data, err = wire.ConsumeUint64(data); err != nil {
		return nil, data, err
	}
	if o.VV, data, err = vclock.DecodeVersion(data); err != nil {
		return nil, data, err
	}
	var created, updated, nfields uint64
	if created, data, err = wire.ConsumeUint64(data); err != nil {
		return nil, data, err
	}
	if updated, data, err = wire.ConsumeUint64(data); err != nil {
		return nil, data, err
	}
	o.Created = time.Unix(0, int64(created)).UTC()
	o.Updated = time.Unix(0, int64(updated)).UTC()
	if nfields, data, err = wire.ConsumeUint64(data); err != nil {
		return nil, data, err
	}
	if nfields > 0 {
		o.Fields = make(map[string]string, nfields)
		for i := uint64(0); i < nfields; i++ {
			var k, v string
			if k, data, err = wire.ConsumeString(data); err != nil {
				return nil, data, err
			}
			if v, data, err = wire.ConsumeString(data); err != nil {
				return nil, data, err
			}
			o.Fields[k] = v
		}
	}
	return o, data, nil
}

// appendRelation appends one relationship edge.
func appendRelation(dst []byte, r information.Relation) []byte {
	dst = wire.AppendString(dst, r.From)
	dst = wire.AppendString(dst, string(r.Kind))
	dst = wire.AppendString(dst, r.To)
	return dst
}

// decodeRelation decodes one relationship edge.
func decodeRelation(data []byte) (information.Relation, []byte, error) {
	var r information.Relation
	var kind string
	var err error
	if r.From, data, err = wire.ConsumeString(data); err != nil {
		return r, data, err
	}
	if kind, data, err = wire.ConsumeString(data); err != nil {
		return r, data, err
	}
	r.Kind = information.RelKind(kind)
	if r.To, data, err = wire.ConsumeString(data); err != nil {
		return r, data, err
	}
	return r, data, nil
}

// walRecord is a decoded WAL record.
type walRecord struct {
	typ byte
	seq uint64
	obj *information.Object  // recExec
	rel information.Relation // recRelate
	id  string               // recRemove
}

// appendWALPayload encodes a WAL record payload (unframed).
func appendWALPayload(dst []byte, typ byte, seq uint64) []byte {
	dst = append(dst, typ)
	return wire.AppendUint64(dst, seq)
}

// decodeWALRecord decodes a framed record's payload into a walRecord.
func decodeWALRecord(payload []byte) (walRecord, error) {
	var rec walRecord
	if len(payload) < 1 {
		return rec, fmt.Errorf("%w: empty", ErrCorrupt)
	}
	rec.typ = payload[0]
	var err error
	if rec.seq, payload, err = wire.ConsumeUint64(payload[1:]); err != nil {
		return rec, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	switch rec.typ {
	case recExec:
		if rec.obj, _, err = decodeObject(payload); err != nil {
			return rec, fmt.Errorf("%w: object: %v", ErrCorrupt, err)
		}
	case recRelate:
		if rec.rel, _, err = decodeRelation(payload); err != nil {
			return rec, fmt.Errorf("%w: relation: %v", ErrCorrupt, err)
		}
	case recRemove:
		if rec.id, _, err = wire.ConsumeString(payload); err != nil {
			return rec, fmt.Errorf("%w: remove: %v", ErrCorrupt, err)
		}
	default:
		return rec, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, rec.typ)
	}
	return rec, nil
}
