package logstore

import (
	"strings"
	"testing"

	"mocca/internal/vclock"
)

// TestFlushBytesTriggersBeforeCompactEvery: a few huge rows must cross
// the size trigger and flush the memtable long before the record-count
// trigger would fire.
func TestFlushBytesTriggersBeforeCompactEvery(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(1000), WithFlushBytes(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	huge := strings.Repeat("x", 32<<10)
	for i, id := range []string{"big-a", "big-b", "big-c"} {
		put(t, st, id, vclock.NewVersion("gmd"), "gmd", map[string]string{
			"title": id, "body": huge})
		if i == 0 && st.Stats().Compactions != 0 {
			t.Fatal("one 32KiB row already flushed — threshold misapplied")
		}
	}
	stats := st.Stats()
	if stats.Compactions == 0 {
		t.Fatalf("3 × 32KiB rows stayed in the WAL under a 64KiB flush threshold (appended %d bytes)",
			stats.AppendedBytes)
	}
	if stats.Segments == 0 {
		t.Fatal("size-triggered flush wrote no segment")
	}

	// The rows remain readable across the flush.
	for _, id := range []string{"big-a", "big-b", "big-c"} {
		obj, ok := st.Get(id)
		if !ok || obj == nil {
			t.Fatalf("Get(%s) after size flush: missing", id)
		}
		if len(obj.Fields["body"]) != 32<<10 {
			t.Fatalf("row %s body truncated to %d bytes", id, len(obj.Fields["body"]))
		}
	}
}

// TestFlushBytesDisabledByDefault: without WithFlushBytes, bulky rows
// alone must not flush — only the record-count trigger applies.
func TestFlushBytesDisabledByDefault(t *testing.T) {
	st, err := Open(t.TempDir(), WithCompactEvery(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	huge := strings.Repeat("y", 40<<10)
	for _, id := range []string{"big-a", "big-b"} {
		put(t, st, id, vclock.NewVersion("gmd"), "gmd", map[string]string{
			"title": id, "body": huge})
	}
	if got := st.Stats().Compactions; got != 0 {
		t.Fatalf("Compactions = %d with no size trigger configured, want 0", got)
	}
}

// TestFlushBytesCountsGroupCommit: the size trigger must see bytes that
// went through the group-commit queue too.
func TestFlushBytesCountsGroupCommit(t *testing.T) {
	st, err := Open(t.TempDir(), WithGroupCommit(true),
		WithCompactEvery(1000), WithFlushBytes(32<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	huge := strings.Repeat("z", 24<<10)
	put(t, st, "big-a", vclock.NewVersion("gmd"), "gmd", map[string]string{
		"title": "big-a", "body": huge})
	put(t, st, "big-b", vclock.NewVersion("gmd"), "gmd", map[string]string{
		"title": "big-b", "body": huge})
	if st.Stats().Compactions == 0 {
		t.Fatal("group-commit bytes never tripped the size flush")
	}
	if obj, ok := st.Get("big-a"); !ok || obj == nil {
		t.Fatal("Get(big-a) missing after size flush")
	}
}
