// Package logstore is the durable engineering realisation of the
// information store: an information.Backend whose replica survives a site
// crash. It keeps the same in-memory row map as information.Store for
// serving reads, and makes every mutation durable with a log-structured
// layout on disk:
//
//   - wal.log — an append-only write-ahead log. Every Exec that stores a
//     row and every Relate appends one CRC-framed record (wire.AppendRecord)
//     carrying a monotonic sequence number and the full post-state of the
//     mutation — object rows round-trip with their version vectors and
//     writer-site metadata intact, so a recovered replica re-enters
//     anti-entropy with correct digests.
//   - snapshot.snap — a periodic full-state snapshot (all rows plus the
//     relationship graph) written to a temporary file, fsynced, and
//     atomically renamed. Its header records the sequence number it
//     covers; after a successful snapshot the WAL is truncated.
//
// Recovery (Open) loads the snapshot, then replays the WAL tail, skipping
// records the snapshot already covers — which is exactly what makes a
// crash between the snapshot rename and the WAL truncation harmless. A
// torn or corrupt record ends the replay: everything before it is intact
// (the CRC guarantees it), the garbage suffix is truncated away, and the
// store resumes appending from the last good record — the standard WAL
// discipline.
//
// The store inherits information.Store's copying contract and adds one
// serialisation point: mutations are ordered by the store's own mutex so
// the WAL's record order always equals the in-memory commit order.
package logstore

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"mocca/internal/information"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// On-disk file names within a store directory.
const (
	walName     = "wal.log"
	snapName    = "snapshot.snap"
	snapTmpName = "snapshot.tmp"
)

// DefaultCompactEvery is how many WAL records accumulate before an
// automatic snapshot-and-truncate cycle.
const DefaultCompactEvery = 4096

// ErrClosed reports a mutation attempted after Close.
var ErrClosed = errors.New("logstore: store closed")

// ErrReadOnly reports a mutation after the store failed: a WAL write
// tore a frame mid-log and the compensating truncate also failed, so
// further appends would land behind bytes the next recovery discards.
// Reads keep working; the disk state up to the last intact record is
// recoverable.
var ErrReadOnly = errors.New("logstore: store failed, mutations disabled")

// Stats counts store activity, including what recovery found.
type Stats struct {
	Appends            int64 // WAL records appended this process
	AppendedBytes      int64 // WAL bytes appended this process
	Compactions        int64 // snapshot-and-truncate cycles run
	CompactionFailures int64 // failed automatic compactions (write stays durable in the WAL)

	// Group-commit counters: Flushes is how many write(+fsync) windows
	// drained the batch buffer, FlushedRecords how many records they
	// covered — FlushedRecords/Flushes is the realised batching factor.
	// Fsyncs counts every WAL fsync in either mode.
	Flushes        int64
	FlushedRecords int64
	Fsyncs         int64

	RecoveredObjects   int   // rows loaded by Open (snapshot + replay)
	RecoveredRelations int   // edges loaded by Open
	ReplayedRecords    int   // WAL records applied by Open
	SkippedRecords     int   // WAL records the snapshot already covered
	DiscardedBytes     int64 // corrupt/torn WAL suffix truncated by Open
}

// Option configures a Store.
type Option func(*Store)

// WithFsync makes every append (and the snapshot) fsync before returning.
// Off by default: the simulated crash model is process death, for which
// reaching the OS page cache suffices.
func WithFsync(on bool) Option {
	return func(s *Store) { s.fsync = on }
}

// WithCompactEvery sets how many WAL records accumulate before automatic
// compaction; 0 disables automatic compaction (Compact can still be
// called explicitly).
func WithCompactEvery(n int) Option {
	return func(s *Store) { s.compactEvery = n }
}

// WithGroupCommit batches concurrent WAL appends into one write-and-fsync
// window: each mutation commits in memory and enqueues its framed record
// under the store mutex, then waits OUTSIDE it for a group flush to make
// the record durable — the first waiter drains the whole queue with a
// single write (and, under WithFsync, a single fsync), so N concurrent
// writers cost one sync instead of N.
//
// The trade against the default (append-then-commit under one mutex) is
// the failure mode: a batch that cannot be written leaves memory ahead of
// disk for the writers already committed, so the store turns read-only
// (ErrReadOnly) instead of rolling back. No acknowledged write is ever
// lost in either mode — waiters only return success once their record is
// durable (or covered by a snapshot).
func WithGroupCommit(on bool) Option {
	return func(s *Store) { s.group = on }
}

// Store is the disk-backed information.Backend. Reads are served from the
// embedded in-memory store; mutations commit in memory and append to the
// WAL before returning.
type Store struct {
	mem          *information.Store
	dir          string
	fsync        bool
	group        bool
	compactEvery int

	mu        sync.Mutex // orders mutations; WAL order == commit order
	wal       *os.File
	walSize   int64  // bytes of intact records on disk (inline mode)
	seq       uint64 // last assigned record sequence number
	snapSeq   uint64 // sequence covered by the snapshot on disk
	sinceSnap int    // records appended since the last snapshot
	closed    bool
	broken    bool   // torn frame stuck mid-log; see ErrReadOnly
	payload   []byte // scratch: record payload
	frame     []byte // scratch: framed record
	stats     Stats

	// Group-commit state. Lock order: s.mu before g.mu; the flusher holds
	// neither while writing (it owns the file through g.flushing). In
	// group mode the WAL file and durability watermark are governed here,
	// not by s.walSize.
	g groupState
}

// groupState is the group-commit machinery: the batch buffer, the
// durability watermark and the flush-leader latch. Everything in it is
// guarded by its own mutex so the flusher and the waiters never need
// s.mu.
type groupState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte // framed records enqueued, not yet written
	bufRecs  int    // records in buf
	hiEnq    uint64 // highest seq enqueued
	hiDur    uint64 // highest seq durable (written + fsynced/covered)
	durSize  int64  // bytes of wal.log that are durable
	flushing bool   // a leader is writing the current batch
	err      error  // sticky batch failure; mutations are disabled

	flushes        int64
	flushedRecords int64
	fsyncs         int64
}

// Store implements information.Backend.
var _ information.Backend = (*Store)(nil)

// Open opens (or creates) the store rooted at dir and recovers its state:
// snapshot load, WAL tail replay, torn-suffix truncation. A leftover
// temporary snapshot from a crash mid-compaction is discarded — the
// previous snapshot plus the un-truncated WAL is a complete state.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		mem:          information.NewStore(),
		dir:          dir,
		compactEvery: DefaultCompactEvery,
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	// A snapshot.tmp can only exist if a compaction died before its atomic
	// rename; it is unreferenced garbage.
	if err := os.Remove(filepath.Join(dir, snapTmpName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	s.wal = wal
	s.g.cond = sync.NewCond(&s.g.mu)
	s.g.hiEnq, s.g.hiDur = s.seq, s.seq
	s.g.durSize = s.walSize
	s.stats.RecoveredObjects = s.mem.Len()
	s.stats.RecoveredRelations = len(s.mem.Relations())
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the counters, folding in the group-commit
// flush counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	s.g.mu.Lock()
	out.Flushes += s.g.flushes
	out.FlushedRecords += s.g.flushedRecords
	out.Fsyncs += s.g.fsyncs
	s.g.mu.Unlock()
	return out
}

// Close flushes (draining any group-commit batch) and closes the WAL.
// Reads keep working from memory; further mutations fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.group {
		if err := s.drainGroupLocked(); err != nil {
			s.wal.Close()
			return fmt.Errorf("logstore: close: %w", err)
		}
	}
	if s.fsync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("logstore: %w", err)
		}
	}
	return s.wal.Close()
}

// Sync forces the WAL to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.wal.Sync()
}

// --- recovery -------------------------------------------------------------

// loadSnapshot reads snapshot.snap (if present) into the memory store. A
// snapshot that fails its checksums is a hard error: the WAL was truncated
// when it was written, so nothing can reconstruct the covered prefix.
func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	payload, rest, err := wire.NextRecord(data)
	if err != nil {
		return fmt.Errorf("logstore: snapshot header: %w", err)
	}
	if len(payload) < 1 || payload[0] != recSnapHeader {
		return fmt.Errorf("logstore: snapshot header: %w", ErrCorrupt)
	}
	var snapSeq, nObjects, nRelations uint64
	p := payload[1:]
	if snapSeq, p, err = wire.ConsumeUint64(p); err != nil {
		return fmt.Errorf("logstore: snapshot header: %w", err)
	}
	if nObjects, p, err = wire.ConsumeUint64(p); err != nil {
		return fmt.Errorf("logstore: snapshot header: %w", err)
	}
	if nRelations, _, err = wire.ConsumeUint64(p); err != nil {
		return fmt.Errorf("logstore: snapshot header: %w", err)
	}
	for i := uint64(0); i < nObjects; i++ {
		if payload, rest, err = wire.NextRecord(rest); err != nil {
			return fmt.Errorf("logstore: snapshot object %d: %w", i, err)
		}
		obj, _, err := decodeObject(payload)
		if err != nil {
			return fmt.Errorf("logstore: snapshot object %d: %w", i, err)
		}
		if _, err := s.mem.Exec(obj.ID, func(*information.Object) (*information.Object, error) {
			return obj, nil
		}); err != nil {
			return fmt.Errorf("logstore: snapshot object %d: %w", i, err)
		}
	}
	for i := uint64(0); i < nRelations; i++ {
		if payload, rest, err = wire.NextRecord(rest); err != nil {
			return fmt.Errorf("logstore: snapshot relation %d: %w", i, err)
		}
		rel, _, err := decodeRelation(payload)
		if err != nil {
			return fmt.Errorf("logstore: snapshot relation %d: %w", i, err)
		}
		if err := s.mem.Relate(rel.From, rel.Kind, rel.To); err != nil {
			return fmt.Errorf("logstore: snapshot relation %d: %w", i, err)
		}
	}
	s.seq = snapSeq
	s.snapSeq = snapSeq
	return nil
}

// replayWAL applies the WAL tail over the snapshot state. Records the
// snapshot already covers (seq <= snapSeq) are skipped; the first record
// that fails framing or decoding ends the intact prefix and the torn
// suffix is truncated so future appends extend a clean log.
func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walName)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	rest := data
	good := 0 // bytes of intact, applied prefix
	for len(rest) > 0 {
		payload, next, err := wire.NextRecord(rest)
		if err != nil {
			break
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			break
		}
		if rec.seq > s.seq {
			s.seq = rec.seq
		}
		if rec.seq <= s.snapSeq {
			s.stats.SkippedRecords++
		} else {
			switch rec.typ {
			case recExec:
				obj := rec.obj
				if _, err := s.mem.Exec(obj.ID, func(*information.Object) (*information.Object, error) {
					return obj, nil
				}); err != nil {
					return fmt.Errorf("logstore: replay seq %d: %w", rec.seq, err)
				}
			case recRelate:
				// Replaying an existing edge is a no-op. A refused edge
				// (cycle, missing endpoint) is skipped, not fatal: Relate
				// logs the edge before the graph validates it, so a crash in
				// that window legitimately leaves a refused record behind —
				// failing here would brick every future recovery.
				if err := s.mem.Relate(rec.rel.From, rec.rel.Kind, rec.rel.To); err != nil {
					s.stats.SkippedRecords++
					rest = next
					good = len(data) - len(next)
					continue
				}
			case recRemove:
				// Removing an absent row is a no-op, which makes replay
				// idempotent over snapshot-covered evictions.
				if _, err := s.mem.Remove(rec.id); err != nil {
					return fmt.Errorf("logstore: replay seq %d: %w", rec.seq, err)
				}
			}
			s.stats.ReplayedRecords++
		}
		good = len(data) - len(next)
		rest = next
	}
	if good < len(data) {
		s.stats.DiscardedBytes = int64(len(data) - good)
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("logstore: truncate torn tail: %w", err)
		}
	}
	s.walSize = int64(good)
	return nil
}

// --- mutations ------------------------------------------------------------

// Exec runs fn against the live row under the backend's write exclusion.
// If fn stores a row, its full post-state is made durable before Exec
// returns success. In the default (inline) mode the WAL append precedes
// the in-memory commit, so a write that cannot be made durable (append
// failure, or a row the codec cannot round-trip) fails without changing
// any state, in memory or on disk. In group-commit mode the record is
// enqueued (and memory committed) under the mutex, and Exec then waits
// outside it for the group flush — see WithGroupCommit for the batching
// and failure semantics.
func (s *Store) Exec(id string, fn func(cur *information.Object) (*information.Object, error)) (*information.Object, error) {
	obj, waitSeq, err := s.execLocked(id, fn)
	if err != nil || obj == nil {
		return obj, err
	}
	if waitSeq > 0 {
		if werr := s.waitDurable(waitSeq); werr != nil {
			return nil, werr
		}
	}
	return obj, nil
}

// writableLocked reports whether mutations are admitted. Caller holds
// s.mu. The inline path records failure in s.broken; a failed group
// batch records it in g.err.
func (s *Store) writableLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.broken {
		return ErrReadOnly
	}
	if s.group {
		s.g.mu.Lock()
		err := s.g.err
		s.g.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// execLocked is Exec's under-mutex half; the durability wait happens
// outside the mutex so group-commit batches can form. waitSeq is
// non-zero when a group-mode caller must wait for that sequence.
func (s *Store) execLocked(id string, fn func(cur *information.Object) (*information.Object, error)) (*information.Object, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, 0, err
	}
	logged := false
	var waitSeq uint64
	obj, err := s.mem.Exec(id, func(cur *information.Object) (*information.Object, error) {
		// fn gets a clone, not the live row: engine mutation paths edit
		// their argument in place, and a mutation that fails validation or
		// the WAL append below must leave the stored row untouched.
		if cur != nil {
			cur = cur.Clone()
		}
		next, err := fn(cur)
		if err != nil || next == nil {
			return next, err
		}
		if err := validateDurable(next); err != nil {
			return nil, err
		}
		s.seq++
		s.payload = appendWALPayload(s.payload[:0], recExec, s.seq)
		s.payload = appendObject(s.payload, next)
		if s.group {
			if err := s.enqueueLocked(); err != nil {
				return nil, err
			}
			waitSeq = s.seq
		} else if err := s.appendLocked(); err != nil {
			return nil, err
		}
		logged = true
		return next, nil
	})
	if err == nil && obj != nil && logged {
		s.compactIfDueLocked()
	}
	return obj, waitSeq, err
}

// Relate records a typed relationship. Inline mode logs the edge before
// the in-memory commit; a deterministic rejection by the graph (unknown
// endpoint, cycle) rolls the just-appended record back off the log.
// Group mode validates through the in-memory commit FIRST — a rejected
// edge then never reaches the log, which matters because a batched
// record cannot be truncated back out.
func (s *Store) Relate(from string, kind information.RelKind, to string) error {
	waitSeq, err := s.relateLocked(from, kind, to)
	if err != nil || waitSeq == 0 {
		return err
	}
	return s.waitDurable(waitSeq)
}

// relateLocked is Relate's under-mutex half; see execLocked.
func (s *Store) relateLocked(from string, kind information.RelKind, to string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return 0, err
	}
	rel := information.Relation{From: from, Kind: kind, To: to}
	for _, str := range []string{from, string(kind), to} {
		if len(str) >= wire.MaxStringLen {
			return 0, fmt.Errorf("logstore: relation endpoint %d bytes: %w", len(str), wire.ErrOversize)
		}
	}
	if s.group {
		if err := s.mem.Relate(from, kind, to); err != nil {
			return 0, err
		}
		s.seq++
		s.payload = appendWALPayload(s.payload[:0], recRelate, s.seq)
		s.payload = appendRelation(s.payload, rel)
		if err := s.enqueueLocked(); err != nil {
			return 0, err
		}
		seq := s.seq
		s.compactIfDueLocked()
		return seq, nil
	}
	preSize, preSince := s.walSize, s.sinceSnap
	s.seq++
	s.payload = appendWALPayload(s.payload[:0], recRelate, s.seq)
	s.payload = appendRelation(s.payload, rel)
	if err := s.appendLocked(); err != nil {
		return 0, err
	}
	if err := s.mem.Relate(from, kind, to); err != nil {
		// The graph rejected the edge after it hit the log: truncate the
		// record away. Best-effort — replay skips refused edges anyway, so
		// a leftover (crash in this window, or a failed truncate) is noise
		// in the log, not a recovery hazard.
		if terr := os.Truncate(filepath.Join(s.dir, walName), preSize); terr == nil {
			s.stats.Appends--
			s.stats.AppendedBytes -= s.walSize - preSize
			s.walSize, s.sinceSnap = preSize, preSince
		}
		return 0, err
	}
	s.compactIfDueLocked()
	return 0, nil
}

// Remove deletes the row for id (and edges touching it), logging the
// eviction so recovery replays it — the placement-migration path on a
// durable replica. A missing id is a no-op and logs nothing.
func (s *Store) Remove(id string) (*information.Object, error) {
	removed, waitSeq, err := s.removeLocked(id)
	if err != nil || waitSeq == 0 {
		return removed, err
	}
	if werr := s.waitDurable(waitSeq); werr != nil {
		return nil, werr
	}
	return removed, nil
}

// removeLocked is Remove's under-mutex half; see execLocked.
func (s *Store) removeLocked(id string) (*information.Object, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, 0, err
	}
	if s.group {
		removed, err := s.mem.Remove(id)
		if err != nil || removed == nil {
			return removed, 0, err
		}
		s.seq++
		s.payload = appendWALPayload(s.payload[:0], recRemove, s.seq)
		s.payload = wire.AppendString(s.payload, id)
		if err := s.enqueueLocked(); err != nil {
			return nil, 0, err
		}
		seq := s.seq
		s.compactIfDueLocked()
		return removed, seq, nil
	}
	// Inline: log the eviction before removing from memory; a failed
	// append leaves the row in place, matching Exec's discipline. The
	// existence check keeps no-op removes off the log without cloning.
	if !s.mem.Has(id) {
		return nil, 0, nil
	}
	s.seq++
	s.payload = appendWALPayload(s.payload[:0], recRemove, s.seq)
	s.payload = wire.AppendString(s.payload, id)
	if err := s.appendLocked(); err != nil {
		return nil, 0, err
	}
	removed, err := s.mem.Remove(id)
	if err == nil && removed != nil {
		s.compactIfDueLocked()
	}
	return removed, 0, err
}

// appendLocked frames s.payload and writes it to the WAL. On a write
// failure the log is truncated back to its last intact length so a torn
// frame cannot sit in front of future appends; if that rollback also
// fails, the store goes read-only — appending past a torn frame would be
// acknowledging writes the next recovery silently discards.
func (s *Store) appendLocked() error {
	frame, err := wire.AppendRecord(s.frame[:0], s.payload)
	if err != nil {
		return err
	}
	s.frame = frame
	if _, err := s.wal.Write(frame); err != nil {
		if terr := os.Truncate(filepath.Join(s.dir, walName), s.walSize); terr != nil {
			s.broken = true
			return fmt.Errorf("logstore: append failed (%v), rollback failed (%v): %w", err, terr, ErrReadOnly)
		}
		return fmt.Errorf("logstore: append: %w", err)
	}
	if s.fsync {
		if err := s.wal.Sync(); err != nil {
			// The frame is on the file but not durable: roll it back out,
			// exactly like a failed write — leaving it would resurrect a
			// write the caller was told failed, and leave walSize behind
			// the real file end so a later rollback could tear a
			// committed record.
			if terr := os.Truncate(filepath.Join(s.dir, walName), s.walSize); terr != nil {
				s.broken = true
				return fmt.Errorf("logstore: fsync failed (%v), rollback failed (%v): %w", err, terr, ErrReadOnly)
			}
			return fmt.Errorf("logstore: append: %w", err)
		}
		s.stats.Fsyncs++
	}
	s.walSize += int64(len(frame))
	s.sinceSnap++
	s.stats.Appends++
	s.stats.AppendedBytes += int64(len(frame))
	return nil
}

// --- group commit ----------------------------------------------------------

// enqueueLocked frames s.payload into the group buffer. Caller holds
// s.mu; the memory commit that follows (under the same s.mu hold) keeps
// WAL record order equal to commit order. The record becomes durable
// when a flush covers its sequence — callers wait via waitDurable after
// releasing s.mu.
func (s *Store) enqueueLocked() error {
	frame, err := wire.AppendRecord(s.frame[:0], s.payload)
	if err != nil {
		return err
	}
	s.frame = frame
	g := &s.g
	g.mu.Lock()
	if g.err != nil {
		g.mu.Unlock()
		return g.err
	}
	g.buf = append(g.buf, frame...)
	g.bufRecs++
	g.hiEnq = s.seq
	g.mu.Unlock()
	s.sinceSnap++
	s.stats.Appends++
	s.stats.AppendedBytes += int64(len(frame))
	return nil
}

// waitDurable blocks until seq is durable: covered by a completed flush
// or by a snapshot. The first waiter that finds no flush in flight
// becomes the leader and drains the whole queue with one write (and one
// fsync, if enabled) — that window is the group commit.
func (s *Store) waitDurable(seq uint64) error {
	g := &s.g
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return g.err
		}
		if g.hiDur >= seq {
			return nil
		}
		if !g.flushing {
			s.flushLeaderLocked()
			continue
		}
		g.cond.Wait()
	}
}

// flushLeaderLocked drains the group buffer as the flush leader. Caller
// holds g.mu with g.flushing false; on return g.mu is held again, the
// batch outcome is recorded and waiters have been broadcast.
func (s *Store) flushLeaderLocked() {
	g := &s.g
	g.flushing = true
	batch := g.buf
	recs := g.bufRecs
	hi := g.hiEnq
	durSize := g.durSize
	g.buf = nil
	g.bufRecs = 0
	g.mu.Unlock()

	var err error
	var fsynced bool
	if len(batch) > 0 {
		if _, werr := s.wal.Write(batch); werr != nil {
			// Roll the torn batch back out so recovery sees a clean log; if
			// even that fails the bytes stay, but g.err below disables
			// mutations either way.
			_ = os.Truncate(filepath.Join(s.dir, walName), durSize)
			err = fmt.Errorf("logstore: group append: %w (%v)", ErrReadOnly, werr)
		} else if s.fsync {
			if serr := s.wal.Sync(); serr != nil {
				_ = os.Truncate(filepath.Join(s.dir, walName), durSize)
				err = fmt.Errorf("logstore: group fsync: %w (%v)", ErrReadOnly, serr)
			} else {
				fsynced = true
			}
		}
	}

	g.mu.Lock()
	g.flushing = false
	if err != nil {
		// Writers in this batch (and any batch after it) already committed
		// to memory; the disk cannot follow, so the store goes read-only.
		g.err = err
	} else if len(batch) > 0 {
		g.durSize += int64(len(batch))
		if hi > g.hiDur {
			g.hiDur = hi
		}
		g.stats(recs, fsynced)
	}
	g.cond.Broadcast()
}

// stats records one completed flush. Caller holds g.mu; the counters live
// in gstats so the flusher never needs s.mu.
func (g *groupState) stats(recs int, fsynced bool) {
	g.flushes++
	g.flushedRecords += int64(recs)
	if fsynced {
		g.fsyncs++
	}
}

// drainGroupLocked flushes every enqueued record. Caller holds s.mu (so
// no new records can be enqueued).
func (s *Store) drainGroupLocked() error {
	g := &s.g
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return g.err
		}
		if !g.flushing && len(g.buf) == 0 {
			return nil
		}
		if !g.flushing {
			s.flushLeaderLocked()
			continue
		}
		g.cond.Wait()
	}
}

// validateDurable rejects rows the WAL codec cannot round-trip: a string
// at or past wire's length limit would be acknowledged as durable yet
// fail to decode on recovery, taking every later record with it.
func validateDurable(o *information.Object) error {
	for _, str := range []string{o.ID, o.Schema, o.Owner, o.Site} {
		if len(str) >= wire.MaxStringLen {
			return fmt.Errorf("logstore: object metadata %d bytes: %w", len(str), wire.ErrOversize)
		}
	}
	for k, v := range o.Fields {
		if len(k) >= wire.MaxStringLen || len(v) >= wire.MaxStringLen {
			return fmt.Errorf("logstore: field %.32q value %d bytes: %w", k, len(v), wire.ErrOversize)
		}
	}
	return nil
}

// compactIfDueLocked runs automatic compaction. A compaction failure is
// counted, not surfaced: the triggering write is already committed and
// durable in the WAL, and the next append retries the snapshot.
func (s *Store) compactIfDueLocked() {
	if s.compactEvery <= 0 || s.sinceSnap < s.compactEvery {
		return
	}
	if err := s.compactLocked(); err != nil {
		s.stats.CompactionFailures++
	}
}

// Compact writes a full-state snapshot and truncates the WAL.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

// compactLocked snapshots atomically: stream snapshot.tmp row by row,
// fsync, rename over snapshot.snap, then truncate the WAL. A crash at
// any point leaves a recoverable state — before the rename the old
// snapshot plus the full WAL stands, after it the new snapshot's
// covered-sequence header makes the not-yet-truncated WAL records no-ops
// on replay.
//
// Rows are encoded one at a time through the scratch buffers into a
// buffered writer: the snapshot's memory cost is one row plus the write
// buffer, independent of store size, instead of a second full copy of
// every row.
func (s *Store) compactLocked() error {
	if s.group {
		// Park the flusher and discard the pending batch: every enqueued
		// record's mutation is already committed in memory, so the snapshot
		// about to be written covers it — waiters become durable through
		// the snapshot instead of the WAL.
		s.g.mu.Lock()
		for s.g.flushing {
			s.g.cond.Wait()
		}
		defer func() {
			s.g.cond.Broadcast()
			s.g.mu.Unlock()
		}()
	}

	rels := s.mem.Relations()
	tmp := filepath.Join(s.dir, snapTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("logstore: snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)

	s.payload = append(s.payload[:0], recSnapHeader)
	s.payload = wire.AppendUint64(s.payload, s.seq)
	s.payload = wire.AppendUint64(s.payload, uint64(s.mem.Len()))
	s.payload = wire.AppendUint64(s.payload, uint64(len(rels)))
	werr := s.writeFrame(w)
	if werr == nil {
		s.mem.Range(func(obj *information.Object) bool {
			s.payload = appendObject(s.payload[:0], obj)
			werr = s.writeFrame(w)
			return werr == nil
		})
	}
	for _, rel := range rels {
		if werr != nil {
			break
		}
		s.payload = appendRelation(s.payload[:0], rel)
		werr = s.writeFrame(w)
	}
	if werr == nil {
		werr = w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if werr != nil {
		f.Close()
		return fmt.Errorf("logstore: snapshot: %w", werr)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("logstore: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("logstore: snapshot: %w", err)
	}
	// The WAL handle is O_APPEND, so writes after the truncate start at
	// the new (zero) end of file.
	if err := os.Truncate(filepath.Join(s.dir, walName), 0); err != nil {
		return fmt.Errorf("logstore: snapshot: %w", err)
	}
	if s.group {
		s.g.buf = nil
		s.g.bufRecs = 0
		s.g.hiDur = s.seq
		s.g.durSize = 0
	}
	s.walSize = 0
	s.snapSeq = s.seq
	s.sinceSnap = 0
	s.stats.Compactions++
	return nil
}

// writeFrame frames s.payload into the scratch frame buffer and writes it
// to w.
func (s *Store) writeFrame(w *bufio.Writer) error {
	frame, err := wire.AppendRecord(s.frame[:0], s.payload)
	if err != nil {
		return err
	}
	s.frame = frame
	_, err = w.Write(frame)
	return err
}

// --- reads (served from the embedded memory store) ------------------------

// Len returns the number of stored objects.
func (s *Store) Len() int { return s.mem.Len() }

// Get returns a copy of the row for id.
func (s *Store) Get(id string) (*information.Object, bool) { return s.mem.Get(id) }

// Snapshot returns copies of every row matching pred (nil pred = all).
func (s *Store) Snapshot(pred func(*information.Object) bool) []*information.Object {
	return s.mem.Snapshot(pred)
}

// Range streams the live rows under the memory store's read lock — the
// recovery path a Space rebuilds its Merkle digest tree from.
func (s *Store) Range(fn func(*information.Object) bool) { s.mem.Range(fn) }

// Digest summarises every row's version vector for anti-entropy exchange.
func (s *Store) Digest() map[string]vclock.Version { return s.mem.Digest() }

// NewerThan returns copies of rows the given digest has not fully seen.
func (s *Store) NewerThan(digest map[string]vclock.Version) []*information.Object {
	return s.mem.NewerThan(digest)
}

// Related returns directly related object ids, sorted.
func (s *Store) Related(from string, kind information.RelKind) []string {
	return s.mem.Related(from, kind)
}

// Dependents returns ids of objects that relate TO the given id.
func (s *Store) Dependents(to string, kind information.RelKind) []string {
	return s.mem.Dependents(to, kind)
}

// Closure returns all ids transitively reachable from id over kind.
func (s *Store) Closure(from string, kind information.RelKind) []string {
	return s.mem.Closure(from, kind)
}
