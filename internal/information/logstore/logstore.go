// Package logstore is the durable engineering realisation of the
// information store: an information.Backend whose replica survives a site
// crash. It is a tiered, log-structured store:
//
//   - wal.log — an append-only write-ahead log. Every Exec that stores a
//     row, every Relate and every Remove appends one CRC-framed record
//     (wire.AppendRecord) carrying a monotonic sequence number and the
//     full post-state of the mutation — object rows round-trip with their
//     version vectors and writer-site metadata intact, so a recovered
//     replica re-enters anti-entropy with correct digests.
//   - memtable — the rows written since the last flush, plus the whole
//     relationship graph (small: edges, not rows). Reads consult it first.
//   - seg-*.seg — sorted, immutable segment files. When the memtable
//     grows past the flush threshold it streams into a new level-0
//     segment; a background compactor merges over-full levels into the
//     next level, dropping superseded row versions and removed rows.
//     Each segment carries a bloom filter and key-range metadata, so a
//     point read touches at most the one or two segments that can hold
//     the id and a miss is usually answered without touching disk at all.
//   - snapshot.snap — the manifest, an incremental snapshot: the live
//     segment list, the covered WAL sequence and the relationship graph,
//     written to a temporary file, fsynced, and atomically renamed.
//     After a successful flush the WAL is truncated.
//
// Recovery (Open) loads the manifest, opens each segment's footer and
// metadata (never its rows), and replays the WAL tail, skipping records
// the manifest already covers — O(manifest + WAL tail), not O(data).
// A torn or corrupt record ends the replay: everything before it is
// intact (the CRC guarantees it), the garbage suffix is truncated away,
// and the store resumes appending from the last good record — the
// standard WAL discipline.
//
// The store inherits information.Store's copying contract and adds one
// serialisation point: mutations are ordered by the store's own mutex so
// the WAL's record order always equals the in-memory commit order.
package logstore

import (
	"bufio"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"mocca/internal/information"
	"mocca/internal/observe"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// On-disk file names within a store directory. snapshot.snap holds the
// manifest (see manifest.go); segment files are named by segName.
const (
	walName     = "wal.log"
	snapName    = "snapshot.snap"
	snapTmpName = "snapshot.tmp"
)

// DefaultCompactEvery is how many WAL records accumulate before an
// automatic flush (memtable -> segment, manifest rewrite, WAL truncate).
const DefaultCompactEvery = 4096

// ErrClosed reports a mutation attempted after Close.
var ErrClosed = errors.New("logstore: store closed")

// ErrReadOnly reports a mutation after the store failed: a WAL write
// tore a frame mid-log and the compensating truncate also failed, so
// further appends would land behind bytes the next recovery discards.
// Reads keep working; the disk state up to the last intact record is
// recoverable.
var ErrReadOnly = errors.New("logstore: store failed, mutations disabled")

// Stats counts store activity, including what recovery found.
type Stats struct {
	Appends            int64 // WAL records appended this process
	AppendedBytes      int64 // WAL bytes appended this process
	Compactions        int64 // flushes + level merges completed
	CompactionFailures int64 // failed flushes/merges (writes stay durable in the WAL)
	Merges             int64 // level merges completed (subset of Compactions)
	Segments           int   // live segment files right now (gauge)

	// Group-commit counters: Flushes is how many write(+fsync) windows
	// drained the batch buffer, FlushedRecords how many records they
	// covered — FlushedRecords/Flushes is the realised batching factor.
	// Fsyncs counts every WAL fsync in either mode.
	Flushes        int64
	FlushedRecords int64
	Fsyncs         int64

	// Point-read probe counters. A read that misses the memtable walks the
	// segments newest-first; KeyRangeFiltered and BloomFiltered count the
	// segments dismissed without touching disk, SegmentProbes the bounded
	// preads actually issued, and BloomFalsePositives the probes the bloom
	// filter admitted that found nothing.
	SegmentProbes       int64
	BloomFiltered       int64
	BloomFalsePositives int64
	KeyRangeFiltered    int64

	// SegmentReadFailures counts point reads aborted by a segment I/O or
	// decode error. Exec/Remove surface the error to the caller; Get's
	// signature has no error slot, so this counter is where those
	// failures become visible.
	SegmentReadFailures int64

	// IterationFailures counts merged-view scans (Range, Snapshot,
	// Digest, NewerThan) cut short by a segment I/O or decode error.
	// Those Backend signatures have no error slot either — the caller
	// sees a truncated view, so the failure must at least be visible
	// here (a silently partial digest would ship an incomplete
	// anti-entropy summary and a partial Range would rebuild a wrong
	// Merkle tree without anyone knowing).
	IterationFailures int64

	RecoveredObjects   int   // rows live after Open (manifest + replay)
	RecoveredRelations int   // edges loaded by Open
	ReplayedRecords    int   // WAL records applied by Open
	SkippedRecords     int   // WAL records the manifest already covered
	DiscardedBytes     int64 // corrupt/torn WAL suffix truncated by Open
}

// Option configures a Store.
type Option func(*Store)

// WithFsync makes every append (and every segment/manifest write) fsync
// before returning. Off by default: the simulated crash model is process
// death, for which reaching the OS page cache suffices.
func WithFsync(on bool) Option {
	return func(s *Store) { s.fsync = on }
}

// WithCompactEvery sets how many WAL records accumulate before the
// memtable automatically flushes to a segment; 0 disables automatic
// flushing (Compact can still be called explicitly).
func WithCompactEvery(n int) Option {
	return func(s *Store) { s.compactEvery = n }
}

// WithFlushBytes sets how many WAL bytes accumulate before the memtable
// automatically flushes to a segment, independently of the record-count
// trigger — a handful of huge rows fills the WAL long before
// WithCompactEvery records accumulate. 0 (the default) disables the
// size trigger; whichever enabled trigger fires first flushes.
func WithFlushBytes(n int64) Option {
	return func(s *Store) { s.flushBytes = n }
}

// WithMergeFanout sets how many segments accumulate on a level before
// the background compactor merges them into the next level. Lower values
// mean fewer segments per read but more write amplification.
func WithMergeFanout(n int) Option {
	return func(s *Store) {
		if n >= 2 {
			s.fanout = n
		}
	}
}

// WithBackgroundMerge enables or disables the background level
// compactor. On by default; with it off, segments still merge on an
// explicit Compact call.
func WithBackgroundMerge(on bool) Option {
	return func(s *Store) { s.bgMerge = on }
}

// WithGroupCommit batches concurrent WAL appends into one write-and-fsync
// window: each mutation commits in memory and enqueues its framed record
// under the store mutex, then waits OUTSIDE it for a group flush to make
// the record durable — the first waiter drains the whole queue with a
// single write (and, under WithFsync, a single fsync), so N concurrent
// writers cost one sync instead of N.
//
// The trade against the default (append-then-commit under one mutex) is
// the failure mode: a batch that cannot be written leaves memory ahead of
// disk for the writers already committed, so the store turns read-only
// (ErrReadOnly) instead of rolling back. No acknowledged write is ever
// lost in either mode — waiters only return success once their record is
// durable (or covered by a flush).
func WithGroupCommit(on bool) Option {
	return func(s *Store) { s.group = on }
}

// Store is the disk-backed information.Backend. Reads resolve across the
// tiers (memtable, then segments newest-first); mutations append to the
// WAL and commit to the memtable before returning.
type Store struct {
	mem          *memtable
	dir          string
	fsync        bool
	group        bool
	compactEvery int
	flushBytes   int64
	fanout       int
	bgMerge      bool

	// Telemetry, set once at wiring time before any traffic (see
	// SetTelemetry); both are nil-safe when absent.
	tracer  *observe.Tracer
	objects *observe.ObjectTraces
	site    string

	mu          sync.Mutex // orders mutations; WAL order == commit order
	wal         *os.File
	walSize     int64  // bytes of intact records on disk (inline mode)
	seq         uint64 // last assigned record sequence number
	snapSeq     uint64 // sequence covered by the manifest on disk
	sinceSnap   int    // records appended since the last flush
	bytesSnap   int64  // record bytes appended since the last flush
	liveCovered int    // live row count at snapSeq (manifest header field)
	nextSegID   uint64 // next segment file id
	closed      bool
	broken      bool   // torn frame stuck mid-log; see ErrReadOnly
	payload     []byte // scratch: record payload
	frame       []byte // scratch: framed record
	stats       Stats

	// live is the row count across all tiers, maintained on every commit
	// so Len never has to merge the store.
	live atomic.Int64

	// segMu guards the segment list; the list itself is copy-on-write
	// (install swaps the slice) so readers pin a consistent snapshot.
	segMu sync.RWMutex
	segs  []*segment // newest first (descending seqHi)

	// Point-read probe counters (see Stats). Atomic: reads don't hold s.mu.
	segProbes     atomic.Int64
	bloomFiltered atomic.Int64
	bloomFalse    atomic.Int64
	rangeFiltered atomic.Int64
	readFailures  atomic.Int64
	iterFailures  atomic.Int64

	// Background compactor plumbing. Lock order: mergeMu before s.mu.
	mergeMu   sync.Mutex // serialises level merges (background vs Compact)
	mergeKick chan struct{}
	closing   chan struct{}
	mergeWG   sync.WaitGroup

	// Group-commit state. Lock order: s.mu before g.mu; the flusher holds
	// neither while writing (it owns the file through g.flushing). In
	// group mode the WAL file and durability watermark are governed here,
	// not by s.walSize.
	g groupState
}

// groupState is the group-commit machinery: the batch buffer, the
// durability watermark and the flush-leader latch. Everything in it is
// guarded by its own mutex so the flusher and the waiters never need
// s.mu.
type groupState struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      []byte // framed records enqueued, not yet written
	bufRecs  int    // records in buf
	hiEnq    uint64 // highest seq enqueued
	hiDur    uint64 // highest seq durable (written + fsynced/covered)
	durSize  int64  // bytes of wal.log that are durable
	flushing bool   // a leader is writing the current batch
	err      error  // sticky batch failure; mutations are disabled

	flushes        int64
	flushedRecords int64
	fsyncs         int64
}

// Store implements information.Backend.
var _ information.Backend = (*Store)(nil)

// Open opens (or creates) the store rooted at dir and recovers its state:
// manifest load, segment metadata load, WAL tail replay, torn-suffix
// truncation. A leftover temporary manifest or an orphaned segment file
// from a crash mid-flush is discarded — the previous manifest plus the
// un-truncated WAL is a complete state.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		mem:          newMemtable(),
		dir:          dir,
		compactEvery: DefaultCompactEvery,
		fanout:       DefaultMergeFanout,
		bgMerge:      true,
		nextSegID:    1,
		mergeKick:    make(chan struct{}, 1),
		closing:      make(chan struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	// A snapshot.tmp can only exist if a flush died before its atomic
	// rename; it is unreferenced garbage.
	if err := os.Remove(filepath.Join(dir, snapTmpName)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	if err := s.loadManifestState(); err != nil {
		for _, g := range s.segs {
			g.closeFile()
		}
		return nil, err
	}
	s.live.Store(int64(s.liveCovered))
	if err := s.replayWAL(); err != nil {
		for _, g := range s.segs {
			g.closeFile()
		}
		return nil, err
	}
	wal, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("logstore: %w", err)
	}
	s.wal = wal
	s.g.cond = sync.NewCond(&s.g.mu)
	s.g.hiEnq, s.g.hiDur = s.seq, s.seq
	s.g.durSize = s.walSize
	s.stats.RecoveredObjects = int(s.live.Load())
	s.stats.RecoveredRelations = len(s.mem.Relations())
	if s.bgMerge {
		s.mergeWG.Add(1)
		go s.mergerLoop()
		s.kickMerger() // a crash may have left a level over-full
	}
	return s, nil
}

// loadManifestState loads the manifest and opens every segment it
// references (footer + metadata only). Segment files the manifest does
// not reference are orphans of a crashed flush or merge and are removed.
func (s *Store) loadManifestState() error {
	m, err := loadManifest(s.dir)
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	known := map[string]bool{}
	if m != nil {
		s.seq, s.snapSeq = m.coveredSeq, m.coveredSeq
		s.liveCovered = m.liveRows
		if m.nextSegID > 0 {
			s.nextSegID = m.nextSegID
		}
		for _, ms := range m.segs {
			known[ms.file] = true
			seg, err := openSegment(filepath.Join(s.dir, ms.file), ms.id, ms.level)
			if err != nil {
				return fmt.Errorf("logstore: %w", err)
			}
			s.segs = append(s.segs, seg)
		}
		sort.Slice(s.segs, func(i, j int) bool { return s.segs[i].seqHi > s.segs[j].seqHi })
		for _, rel := range m.rels {
			s.mem.loadRelation(rel)
		}
	}
	orphans, err := filepath.Glob(filepath.Join(s.dir, "seg-*.seg"))
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	for _, path := range orphans {
		if !known[filepath.Base(path)] {
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("logstore: %w", err)
			}
		}
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the counters, folding in the group-commit
// flush counters, the probe counters and the live segment gauge.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	s.g.mu.Lock()
	out.Flushes += s.g.flushes
	out.FlushedRecords += s.g.flushedRecords
	out.Fsyncs += s.g.fsyncs
	s.g.mu.Unlock()
	s.segMu.RLock()
	out.Segments = len(s.segs)
	s.segMu.RUnlock()
	out.SegmentProbes = s.segProbes.Load()
	out.BloomFiltered = s.bloomFiltered.Load()
	out.BloomFalsePositives = s.bloomFalse.Load()
	out.KeyRangeFiltered = s.rangeFiltered.Load()
	out.SegmentReadFailures = s.readFailures.Load()
	out.IterationFailures = s.iterFailures.Load()
	return out
}

// Close flushes (draining any group-commit batch), closes the WAL and
// stops the background compactor. Reads keep working across the tiers
// (segment file handles stay open); further mutations fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.group {
		if derr := s.drainGroupLocked(); derr != nil {
			err = fmt.Errorf("logstore: close: %w", derr)
		}
	}
	if err == nil && s.fsync {
		if serr := s.wal.Sync(); serr != nil {
			err = fmt.Errorf("logstore: %w", serr)
		}
	}
	if cerr := s.wal.Close(); err == nil && cerr != nil {
		err = cerr
	}
	s.mu.Unlock()
	close(s.closing)
	s.mergeWG.Wait()
	return err
}

// Sync forces the WAL to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.wal.Sync()
}

// --- recovery -------------------------------------------------------------

// replayWAL applies the WAL tail over the manifest state. Records the
// manifest already covers (seq <= snapSeq) are skipped; the first record
// that fails framing or decoding ends the intact prefix and the torn
// suffix is truncated so future appends extend a clean log.
func (s *Store) replayWAL() error {
	path := filepath.Join(s.dir, walName)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("logstore: %w", err)
	}
	rest := data
	good := 0 // bytes of intact, applied prefix
	for len(rest) > 0 {
		payload, next, err := wire.NextRecord(rest)
		if err != nil {
			break
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			break
		}
		if rec.seq > s.seq {
			s.seq = rec.seq
		}
		if rec.seq <= s.snapSeq {
			s.stats.SkippedRecords++
		} else {
			switch rec.typ {
			case recExec:
				existed := s.hasAny(rec.obj.ID)
				s.mem.put(rec.obj)
				if !existed {
					s.live.Add(1)
				}
			case recRelate:
				// Replaying an existing edge is a no-op. A refused edge
				// (cycle, missing endpoint) is skipped, not fatal: Relate
				// logs the edge before the graph validates it, so a crash in
				// that window legitimately leaves a refused record behind —
				// failing here would brick every future recovery.
				if err := s.mem.relate(rec.rel.From, rec.rel.Kind, rec.rel.To, s.hasAny); err != nil {
					s.stats.SkippedRecords++
					rest = next
					good = len(data) - len(next)
					continue
				}
			case recRemove:
				// Removing an absent row is a no-op, which makes replay
				// idempotent over manifest-covered evictions.
				if s.hasAny(rec.id) {
					s.mem.kill(rec.id, len(s.segs) > 0)
					s.live.Add(-1)
				}
			}
			s.stats.ReplayedRecords++
		}
		good = len(data) - len(next)
		rest = next
	}
	if good < len(data) {
		s.stats.DiscardedBytes = int64(len(data) - good)
		if err := os.Truncate(path, int64(good)); err != nil {
			return fmt.Errorf("logstore: truncate torn tail: %w", err)
		}
	}
	s.walSize = int64(good)
	return nil
}

// --- mutations ------------------------------------------------------------

// Exec runs fn against the row for id under the backend's write
// exclusion. fn receives a private copy (or a freshly decoded segment
// row), never live state — a mutation takes effect only by returning the
// row to store. If fn stores a row, its full post-state is made durable
// before Exec returns success. In the default (inline) mode the WAL
// append precedes the in-memory commit, so a write that cannot be made
// durable (append failure, or a row the codec cannot round-trip) fails
// without changing any state, in memory or on disk. In group-commit mode
// the record is enqueued (and memory committed) under the mutex, and Exec
// then waits outside it for the group flush — see WithGroupCommit for the
// batching and failure semantics.
func (s *Store) Exec(id string, fn func(cur *information.Object) (*information.Object, error)) (*information.Object, error) {
	// When the id carries a trace tag (the write-path layers above tag
	// objects as traffic enters the site), the durable commit — WAL
	// append, or enqueue + group-flush wait — is a span of that trace.
	var span observe.ActiveSpan
	if s.tracer.On() {
		if parent, ok := s.objects.Lookup(id); ok {
			span = s.tracer.StartChild("wal.commit", s.site, parent)
			span.SetAttr("object", id)
		}
	}
	obj, waitSeq, err := s.execLocked(id, fn)
	if err != nil {
		span.EndStatus("error")
		return obj, err
	}
	if obj == nil {
		span.EndStatus("noop")
		return obj, nil
	}
	if waitSeq > 0 {
		span.SetAttr("mode", "group")
		if werr := s.waitDurable(waitSeq); werr != nil {
			span.EndStatus("error")
			return nil, werr
		}
	}
	span.End()
	return obj, nil
}

// SetTelemetry attaches the deployment telemetry plane: Exec emits a
// wal.commit span under the originating write's trace (looked up by
// object id in the shared tag table) covering the append — or, in
// group-commit mode, the enqueue and the wait for the flush window.
// Must be called before the store sees traffic; nil disables tracing.
func (s *Store) SetTelemetry(tel *observe.Telemetry, site string) {
	if tel == nil {
		return
	}
	s.tracer = tel.Tracer
	s.objects = tel.Objects
	s.site = site
}

// writableLocked reports whether mutations are admitted. Caller holds
// s.mu. The inline path records failure in s.broken; a failed group
// batch records it in g.err.
func (s *Store) writableLocked() error {
	if s.closed {
		return ErrClosed
	}
	if s.broken {
		return ErrReadOnly
	}
	if s.group {
		s.g.mu.Lock()
		err := s.g.err
		s.g.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// execLocked is Exec's under-mutex half; the durability wait happens
// outside the mutex so group-commit batches can form. waitSeq is
// non-zero when a group-mode caller must wait for that sequence.
func (s *Store) execLocked(id string, fn func(cur *information.Object) (*information.Object, error)) (*information.Object, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, 0, err
	}
	cur, live, fromMem, err := s.lookup(id)
	if err != nil {
		return nil, 0, err
	}
	if live && fromMem {
		// fn gets a clone, not the live row: engine mutation paths edit
		// their argument in place, and a mutation that fails validation or
		// the WAL append below must leave the stored row untouched.
		// Segment rows are freshly decoded and need no copy.
		cur = cur.Clone()
	}
	next, err := fn(cur)
	if err != nil || next == nil {
		return next, 0, err
	}
	if err := validateDurable(next); err != nil {
		return nil, 0, err
	}
	s.seq++
	s.payload = appendWALPayload(s.payload[:0], recExec, s.seq)
	s.payload = appendObject(s.payload, next)
	var waitSeq uint64
	if s.group {
		if err := s.enqueueLocked(); err != nil {
			return nil, 0, err
		}
		waitSeq = s.seq
	} else if err := s.appendLocked(); err != nil {
		return nil, 0, err
	}
	s.mem.put(next)
	if !live {
		s.live.Add(1)
	}
	s.compactIfDueLocked()
	return next.Clone(), waitSeq, nil
}

// Relate records a typed relationship. Inline mode logs the edge before
// the in-memory commit; a deterministic rejection by the graph (unknown
// endpoint, cycle) rolls the just-appended record back off the log.
// Group mode validates through the in-memory commit FIRST — a rejected
// edge then never reaches the log, which matters because a batched
// record cannot be truncated back out.
func (s *Store) Relate(from string, kind information.RelKind, to string) error {
	waitSeq, err := s.relateLocked(from, kind, to)
	if err != nil || waitSeq == 0 {
		return err
	}
	return s.waitDurable(waitSeq)
}

// relateLocked is Relate's under-mutex half; see execLocked.
func (s *Store) relateLocked(from string, kind information.RelKind, to string) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return 0, err
	}
	rel := information.Relation{From: from, Kind: kind, To: to}
	for _, str := range []string{from, string(kind), to} {
		if len(str) >= wire.MaxStringLen {
			return 0, fmt.Errorf("logstore: relation endpoint %d bytes: %w", len(str), wire.ErrOversize)
		}
	}
	if s.group {
		if err := s.mem.relate(from, kind, to, s.hasAny); err != nil {
			return 0, err
		}
		s.seq++
		s.payload = appendWALPayload(s.payload[:0], recRelate, s.seq)
		s.payload = appendRelation(s.payload, rel)
		if err := s.enqueueLocked(); err != nil {
			return 0, err
		}
		seq := s.seq
		s.compactIfDueLocked()
		return seq, nil
	}
	preSize, preSince, preBytes := s.walSize, s.sinceSnap, s.bytesSnap
	s.seq++
	s.payload = appendWALPayload(s.payload[:0], recRelate, s.seq)
	s.payload = appendRelation(s.payload, rel)
	if err := s.appendLocked(); err != nil {
		return 0, err
	}
	if err := s.mem.relate(from, kind, to, s.hasAny); err != nil {
		// The graph rejected the edge after it hit the log: truncate the
		// record away. Best-effort — replay skips refused edges anyway, so
		// a leftover (crash in this window, or a failed truncate) is noise
		// in the log, not a recovery hazard.
		if terr := os.Truncate(filepath.Join(s.dir, walName), preSize); terr == nil {
			s.stats.Appends--
			s.stats.AppendedBytes -= s.walSize - preSize
			s.walSize, s.sinceSnap, s.bytesSnap = preSize, preSince, preBytes
		}
		return 0, err
	}
	s.compactIfDueLocked()
	return 0, nil
}

// Remove deletes the row for id (and edges touching it), logging the
// eviction so recovery replays it — the placement-migration path on a
// durable replica. When an older version of the row may still sit in a
// segment, the memtable records a tombstone to mask it until compaction
// drops both. A missing id is a no-op and logs nothing.
func (s *Store) Remove(id string) (*information.Object, error) {
	removed, waitSeq, err := s.removeLocked(id)
	if err != nil || waitSeq == 0 {
		return removed, err
	}
	if werr := s.waitDurable(waitSeq); werr != nil {
		return nil, werr
	}
	return removed, nil
}

// removeLocked is Remove's under-mutex half; see execLocked.
func (s *Store) removeLocked(id string) (*information.Object, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.writableLocked(); err != nil {
		return nil, 0, err
	}
	cur, live, fromMem, err := s.lookup(id)
	if err != nil {
		return nil, 0, err
	}
	if !live {
		return nil, 0, nil
	}
	if fromMem {
		cur = cur.Clone()
	}
	if s.group {
		s.mem.kill(id, s.tombNeededLocked())
		s.live.Add(-1)
		s.seq++
		s.payload = appendWALPayload(s.payload[:0], recRemove, s.seq)
		s.payload = wire.AppendString(s.payload, id)
		if err := s.enqueueLocked(); err != nil {
			return nil, 0, err
		}
		seq := s.seq
		s.compactIfDueLocked()
		return cur, seq, nil
	}
	// Inline: log the eviction before removing from memory; a failed
	// append leaves the row in place, matching Exec's discipline.
	s.seq++
	s.payload = appendWALPayload(s.payload[:0], recRemove, s.seq)
	s.payload = wire.AppendString(s.payload, id)
	if err := s.appendLocked(); err != nil {
		return nil, 0, err
	}
	s.mem.kill(id, s.tombNeededLocked())
	s.live.Add(-1)
	s.compactIfDueLocked()
	return cur, 0, nil
}

// tombNeededLocked reports whether a removal must leave a tombstone: only
// when segments exist that could hold an older version of the row.
func (s *Store) tombNeededLocked() bool {
	s.segMu.RLock()
	defer s.segMu.RUnlock()
	return len(s.segs) > 0
}

// appendLocked frames s.payload and writes it to the WAL. On a write
// failure the log is truncated back to its last intact length so a torn
// frame cannot sit in front of future appends; if that rollback also
// fails, the store goes read-only — appending past a torn frame would be
// acknowledging writes the next recovery silently discards.
func (s *Store) appendLocked() error {
	frame, err := wire.AppendRecord(s.frame[:0], s.payload)
	if err != nil {
		return err
	}
	s.frame = frame
	if _, err := s.wal.Write(frame); err != nil {
		if terr := os.Truncate(filepath.Join(s.dir, walName), s.walSize); terr != nil {
			s.broken = true
			return fmt.Errorf("logstore: append failed (%v), rollback failed (%v): %w", err, terr, ErrReadOnly)
		}
		return fmt.Errorf("logstore: append: %w", err)
	}
	if s.fsync {
		if err := s.wal.Sync(); err != nil {
			// The frame is on the file but not durable: roll it back out,
			// exactly like a failed write — leaving it would resurrect a
			// write the caller was told failed, and leave walSize behind
			// the real file end so a later rollback could tear a
			// committed record.
			if terr := os.Truncate(filepath.Join(s.dir, walName), s.walSize); terr != nil {
				s.broken = true
				return fmt.Errorf("logstore: fsync failed (%v), rollback failed (%v): %w", err, terr, ErrReadOnly)
			}
			return fmt.Errorf("logstore: append: %w", err)
		}
		s.stats.Fsyncs++
	}
	s.walSize += int64(len(frame))
	s.sinceSnap++
	s.bytesSnap += int64(len(frame))
	s.stats.Appends++
	s.stats.AppendedBytes += int64(len(frame))
	return nil
}

// --- group commit ----------------------------------------------------------

// enqueueLocked frames s.payload into the group buffer. Caller holds
// s.mu; the memory commit that follows (under the same s.mu hold) keeps
// WAL record order equal to commit order. The record becomes durable
// when a flush covers its sequence — callers wait via waitDurable after
// releasing s.mu.
func (s *Store) enqueueLocked() error {
	frame, err := wire.AppendRecord(s.frame[:0], s.payload)
	if err != nil {
		return err
	}
	s.frame = frame
	g := &s.g
	g.mu.Lock()
	if g.err != nil {
		g.mu.Unlock()
		return g.err
	}
	g.buf = append(g.buf, frame...)
	g.bufRecs++
	g.hiEnq = s.seq
	g.mu.Unlock()
	s.sinceSnap++
	s.bytesSnap += int64(len(frame))
	s.stats.Appends++
	s.stats.AppendedBytes += int64(len(frame))
	return nil
}

// waitDurable blocks until seq is durable: covered by a completed flush
// or by a memtable flush's manifest. The first waiter that finds no
// flush in flight becomes the leader and drains the whole queue with one
// write (and one fsync, if enabled) — that window is the group commit.
func (s *Store) waitDurable(seq uint64) error {
	g := &s.g
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return g.err
		}
		if g.hiDur >= seq {
			return nil
		}
		if !g.flushing {
			s.flushLeaderLocked()
			continue
		}
		g.cond.Wait()
	}
}

// flushLeaderLocked drains the group buffer as the flush leader. Caller
// holds g.mu with g.flushing false; on return g.mu is held again, the
// batch outcome is recorded and waiters have been broadcast.
func (s *Store) flushLeaderLocked() {
	g := &s.g
	g.flushing = true
	batch := g.buf
	recs := g.bufRecs
	hi := g.hiEnq
	durSize := g.durSize
	g.buf = nil
	g.bufRecs = 0
	g.mu.Unlock()

	var err error
	var fsynced bool
	if len(batch) > 0 {
		if _, werr := s.wal.Write(batch); werr != nil {
			// Roll the torn batch back out so recovery sees a clean log; if
			// even that fails the bytes stay, but g.err below disables
			// mutations either way.
			//lint:allow errdrop rollback of a torn batch is best-effort; a failed truncate leaves bytes the CRC scan rejects, and g.err disables mutations regardless
			_ = os.Truncate(filepath.Join(s.dir, walName), durSize)
			err = fmt.Errorf("logstore: group append: %w (%v)", ErrReadOnly, werr)
		} else if s.fsync {
			if serr := s.wal.Sync(); serr != nil {
				//lint:allow errdrop rollback of an unsynced batch is best-effort; a failed truncate leaves bytes the CRC scan rejects, and g.err disables mutations regardless
				_ = os.Truncate(filepath.Join(s.dir, walName), durSize)
				err = fmt.Errorf("logstore: group fsync: %w (%v)", ErrReadOnly, serr)
			} else {
				fsynced = true
			}
		}
	}

	g.mu.Lock()
	g.flushing = false
	if err != nil {
		// Writers in this batch (and any batch after it) already committed
		// to memory; the disk cannot follow, so the store goes read-only.
		g.err = err
	} else if len(batch) > 0 {
		g.durSize += int64(len(batch))
		if hi > g.hiDur {
			g.hiDur = hi
		}
		g.stats(recs, fsynced)
	}
	g.cond.Broadcast()
}

// stats records one completed flush. Caller holds g.mu; the counters live
// in gstats so the flusher never needs s.mu.
func (g *groupState) stats(recs int, fsynced bool) {
	g.flushes++
	g.flushedRecords += int64(recs)
	if fsynced {
		g.fsyncs++
	}
}

// drainGroupLocked flushes every enqueued record. Caller holds s.mu (so
// no new records can be enqueued).
func (s *Store) drainGroupLocked() error {
	g := &s.g
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.err != nil {
			return g.err
		}
		if !g.flushing && len(g.buf) == 0 {
			return nil
		}
		if !g.flushing {
			s.flushLeaderLocked()
			continue
		}
		g.cond.Wait()
	}
}

// validateDurable rejects rows the WAL codec cannot round-trip: a string
// at or past wire's length limit would be acknowledged as durable yet
// fail to decode on recovery, taking every later record with it.
func validateDurable(o *information.Object) error {
	for _, str := range []string{o.ID, o.Schema, o.Owner, o.Site} {
		if len(str) >= wire.MaxStringLen {
			return fmt.Errorf("logstore: object metadata %d bytes: %w", len(str), wire.ErrOversize)
		}
	}
	for k, v := range o.Fields {
		if len(k) >= wire.MaxStringLen || len(v) >= wire.MaxStringLen {
			return fmt.Errorf("logstore: field %.32q value %d bytes: %w", k, len(v), wire.ErrOversize)
		}
	}
	return nil
}

// compactIfDueLocked runs an automatic memtable flush. A flush failure is
// counted, not surfaced: the triggering write is already committed and
// durable in the WAL, and the next append retries.
func (s *Store) compactIfDueLocked() {
	countDue := s.compactEvery > 0 && s.sinceSnap >= s.compactEvery
	sizeDue := s.flushBytes > 0 && s.bytesSnap >= s.flushBytes
	if !countDue && !sizeDue {
		return
	}
	if err := s.compactLocked(false); err != nil {
		s.stats.CompactionFailures++
	}
}

// Compact synchronously flushes the memtable to a segment, truncates the
// WAL, and merges every segment into one.
func (s *Store) Compact() error {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked(true)
}

// writeFrame frames s.payload into the scratch frame buffer and writes it
// to w.
func (s *Store) writeFrame(w *bufio.Writer) error {
	frame, err := wire.AppendRecord(s.frame[:0], s.payload)
	if err != nil {
		return err
	}
	s.frame = frame
	_, err = w.Write(frame)
	return err
}

// --- reads (resolved across the tiers) ------------------------------------

// Len returns the number of stored objects.
func (s *Store) Len() int { return int(s.live.Load()) }

// Get returns a copy of the row for id. A segment read failure reads as
// absent without falling through to older segments; it is counted in
// Stats.SegmentReadFailures (the Backend signature has no error slot).
func (s *Store) Get(id string) (*information.Object, bool) {
	obj, live, fromMem, err := s.lookup(id)
	if err != nil || !live {
		return nil, false
	}
	if fromMem {
		return obj.Clone(), true
	}
	return obj, true
}

// noteIterFailure records a merged-view scan cut short by a segment
// error; the Backend read signatures have no error slot, so the counter
// (Stats.IterationFailures) is where the truncation becomes visible.
func (s *Store) noteIterFailure(err error) {
	if err != nil {
		s.iterFailures.Add(1)
	}
}

// Snapshot returns copies of every row matching pred (nil pred = all).
func (s *Store) Snapshot(pred func(*information.Object) bool) []*information.Object {
	var out []*information.Object
	s.noteIterFailure(s.iterate(func(obj *information.Object, fromMem bool) bool {
		if pred == nil || pred(obj) {
			if fromMem {
				obj = obj.Clone()
			}
			out = append(out, obj)
		}
		return true
	}))
	return out
}

// Range streams the merged live view — memtable over segments — in
// sorted id order. fn may receive a live memtable row and must honour
// the read-only contract. This is the recovery path a Space rebuilds its
// Merkle digest tree from: segment rows stream through a fixed-size
// buffer, so the rebuild never materialises the store in memory.
func (s *Store) Range(fn func(*information.Object) bool) {
	s.noteIterFailure(s.iterate(func(obj *information.Object, _ bool) bool { return fn(obj) }))
}

// Digest summarises every row's version vector for anti-entropy exchange.
func (s *Store) Digest() map[string]vclock.Version {
	out := make(map[string]vclock.Version, s.Len())
	s.noteIterFailure(s.iterate(func(obj *information.Object, _ bool) bool {
		out[obj.ID] = obj.VV.Clone()
		return true
	}))
	return out
}

// NewerThan returns copies of rows the given digest has not fully seen —
// already sorted by id, which the merged iteration yields for free.
func (s *Store) NewerThan(digest map[string]vclock.Version) []*information.Object {
	var out []*information.Object
	s.noteIterFailure(s.iterate(func(obj *information.Object, fromMem bool) bool {
		if seen, ok := digest[obj.ID]; !ok || !seen.Dominates(obj.VV) {
			if fromMem {
				obj = obj.Clone()
			}
			out = append(out, obj)
		}
		return true
	}))
	return out
}

// Related returns directly related object ids, sorted.
func (s *Store) Related(from string, kind information.RelKind) []string {
	return s.mem.related(from, kind)
}

// Dependents returns ids of objects that relate TO the given id.
func (s *Store) Dependents(to string, kind information.RelKind) []string {
	return s.mem.dependents(to, kind)
}

// Closure returns all ids transitively reachable from id over kind.
func (s *Store) Closure(from string, kind information.RelKind) []string {
	return s.mem.closure(from, kind)
}
