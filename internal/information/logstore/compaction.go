package logstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mocca/internal/information"
)

// This file is the tiering machinery: memtable flushes, the merged
// cross-tier iterator, and level compaction.
//
// Flush (synchronous, under the store mutex): the memtable's rows and
// tombstones stream into one new level-0 segment, the manifest is
// rewritten to cover the entire WAL, the WAL truncates to zero, and the
// memtable empties. Cost is O(memtable), regardless of how much data the
// older segments hold — the win over the pre-tiered full-store snapshot.
//
// Compaction (background goroutine): when a level accumulates fanout
// segments, they merge into one segment at the next level. Invariants:
//   - segments cover disjoint WAL-sequence ranges, so "newer" is a total
//     order (seqHi) and the newest version of a row is simply the first
//     one found scanning newest-to-oldest;
//   - merging a whole level preserves that disjointness (the inputs are
//     contiguous in sequence space);
//   - a superseded row version is dropped as soon as a newer segment
//     version merges past it; a tombstone is dropped only when nothing
//     older than the merge inputs remains to mask.
// Write amplification is O(log_fanout n) per row, against the O(n) of the
// old design's every-4096-records full rewrite.

// DefaultMergeFanout is how many segments accumulate on a level before
// the background compactor merges them into the next level.
const DefaultMergeFanout = 4

// segName returns the file name for segment id.
func segName(id uint64) string { return fmt.Sprintf("seg-%08d.seg", id) }

// --- flush ----------------------------------------------------------------

// compactLocked flushes the memtable and, for the explicit Compact call,
// merges every segment into one. Caller holds s.mu. In group mode the
// flusher is parked and the pending batch discarded — every enqueued
// record's mutation is already committed in memory, so the manifest about
// to be written covers it and waiters become durable through the segments
// instead of the WAL. g.mu is held across the flush only and released
// before any merging: mergeAllLocked drops and re-takes s.mu, and holding
// g.mu through that inverts the documented s.mu-before-g.mu order against
// a writer that took s.mu and is blocked on g.mu in enqueueLocked —
// a deadlock.
func (s *Store) compactLocked(mergeAll bool) error {
	if s.group {
		s.g.mu.Lock()
		for s.g.flushing {
			s.g.cond.Wait()
		}
		err := s.flushLocked()
		if err == nil {
			s.g.buf = nil
			s.g.bufRecs = 0
			s.g.hiDur = s.seq
			s.g.durSize = 0
		}
		s.g.cond.Broadcast()
		s.g.mu.Unlock()
		if err != nil {
			return err
		}
	} else if err := s.flushLocked(); err != nil {
		return err
	}
	if mergeAll {
		return s.mergeAllLocked()
	}
	s.kickMerger()
	return nil
}

// flushLocked writes the memtable to a new level-0 segment, rewrites the
// manifest to cover the whole WAL, truncates the WAL, and empties the
// memtable. Caller holds s.mu. A failure before the manifest rename
// leaves the previous manifest + full WAL standing — a complete state.
func (s *Store) flushLocked() error {
	entries := s.mem.entries()
	if len(s.segs) == 0 {
		// No older tier to mask: tombstones have nothing to suppress.
		kept := entries[:0]
		for _, e := range entries {
			if e.obj != nil {
				kept = append(kept, e)
			}
		}
		entries = kept
	}

	var newSeg *segment
	newSegs := s.segs
	if len(entries) > 0 {
		id := s.nextSegID
		s.nextSegID++
		w, err := newSegWriter(filepath.Join(s.dir, segName(id)), id, 0, s.snapSeq+1, s.seq, len(entries))
		if err != nil {
			return fmt.Errorf("logstore: flush: %w", err)
		}
		for _, e := range entries {
			if err := w.add(e); err != nil {
				w.abort()
				return fmt.Errorf("logstore: flush: %w", err)
			}
		}
		if newSeg, err = w.finish(); err != nil {
			return fmt.Errorf("logstore: flush: %w", err)
		}
		newSegs = append([]*segment{newSeg}, s.segs...)
	}

	prevSnapSeq, prevLive := s.snapSeq, s.liveCovered
	s.snapSeq = s.seq
	s.liveCovered = int(s.live.Load())
	if err := s.writeManifestLocked(newSegs); err != nil {
		s.snapSeq, s.liveCovered = prevSnapSeq, prevLive
		if newSeg != nil {
			newSeg.closeFile()
			//lint:allow errdrop best-effort cleanup of an orphan segment; the manifest never referenced it, so a leftover file is garbage, not data loss
			os.Remove(newSeg.path)
		}
		return fmt.Errorf("logstore: flush: %w", err)
	}
	// The WAL handle is O_APPEND, so writes after the truncate start at
	// the new (zero) end of file. A crash between the manifest rename and
	// this truncate is harmless: every WAL record is now covered and
	// replay skips it.
	if err := os.Truncate(filepath.Join(s.dir, walName), 0); err != nil {
		return fmt.Errorf("logstore: flush: %w", err)
	}
	s.walSize = 0
	s.sinceSnap = 0
	s.bytesSnap = 0
	s.installSegsLocked(newSegs)
	s.mem.clear()
	s.stats.Compactions++
	return nil
}

// installSegsLocked publishes a new segment list to readers. Caller holds
// s.mu; the brief write lock on segMu orders against in-flight reads.
func (s *Store) installSegsLocked(segs []*segment) {
	s.segMu.Lock()
	s.segs = segs
	s.segMu.Unlock()
}

// acquireSegs snapshots the live segment list newest-first, pinning each
// segment against concurrent compaction drops.
func (s *Store) acquireSegs() []*segment {
	s.segMu.RLock()
	segs := make([]*segment, len(s.segs))
	copy(segs, s.segs)
	for _, g := range segs {
		g.acquire()
	}
	s.segMu.RUnlock()
	return segs
}

func releaseSegs(segs []*segment) {
	for _, g := range segs {
		g.release()
	}
}

// --- merged iteration -----------------------------------------------------

// mergeCursor is one sorted source feeding the cross-tier merge: the
// memtable snapshot, or a segment's streaming iterator.
type mergeCursor struct {
	cur  flushEntry
	ok   bool
	next func() (flushEntry, bool, error)
}

func (c *mergeCursor) advance() error {
	e, ok, err := c.next()
	c.cur, c.ok = e, ok
	return err
}

// iterate streams the merged live view — memtable over segments, newest
// first — in sorted id order, calling fn once per live row. fromMem marks
// rows aliased to the live memtable (callers needing to retain them must
// clone); segment rows are freshly decoded. Tombstones and superseded
// versions are filtered out. This is how Range, Digest, NewerThan and
// Snapshot see one coherent store without materialising it: memory cost
// is one row per source.
func (s *Store) iterate(fn func(obj *information.Object, fromMem bool) bool) error {
	// Memtable snapshot BEFORE pinning segments: a flush between the two
	// moves rows memtable->segment, and this order sees them (twice at
	// worst, deduplicated by the merge; the reverse order would see them
	// nowhere).
	mem := s.mem.entries()
	segs := s.acquireSegs()
	defer releaseSegs(segs)

	srcs := make([]*mergeCursor, 0, len(segs)+1)
	memIdx := 0
	srcs = append(srcs, &mergeCursor{next: func() (flushEntry, bool, error) {
		if memIdx >= len(mem) {
			return flushEntry{}, false, nil
		}
		e := mem[memIdx]
		memIdx++
		return e, true, nil
	}})
	for _, g := range segs {
		it := g.iter()
		srcs = append(srcs, &mergeCursor{next: it.next})
	}
	for _, c := range srcs {
		if err := c.advance(); err != nil {
			return err
		}
	}
	for {
		minID, any := "", false
		for _, c := range srcs {
			if c.ok && (!any || c.cur.id < minID) {
				minID, any = c.cur.id, true
			}
		}
		if !any {
			return nil
		}
		// Sources are ordered newest first, so the first holder of minID
		// is the authoritative version; every other holder is superseded.
		emitted := false
		for i, c := range srcs {
			if !c.ok || c.cur.id != minID {
				continue
			}
			if !emitted {
				emitted = true
				if c.cur.obj != nil { // winner may be a tombstone: emit nothing
					if !fn(c.cur.obj, i == 0) {
						return nil
					}
				}
			}
			if err := c.advance(); err != nil {
				return err
			}
		}
	}
}

// --- level compaction -----------------------------------------------------

// kickMerger nudges the background compactor; no-op when it is disabled
// or already signalled.
func (s *Store) kickMerger() {
	if !s.bgMerge {
		return
	}
	select {
	case s.mergeKick <- struct{}{}:
	default:
	}
}

// mergerLoop is the background compactor: woken after each flush, it
// merges over-full levels until none remain, then sleeps.
func (s *Store) mergerLoop() {
	defer s.mergeWG.Done()
	for {
		select {
		case <-s.closing:
			return
		case <-s.mergeKick:
		}
		for {
			select {
			case <-s.closing:
				return
			default:
			}
			s.mergeMu.Lock()
			did := s.mergeOnce()
			s.mergeMu.Unlock()
			if !did {
				break
			}
		}
	}
}

// pickMergeLocked finds the lowest level holding at least fanout
// segments. Caller holds s.mu. dropTombs is true when nothing older than
// the inputs exists (no higher level), so tombstones have nothing left
// to mask.
func (s *Store) pickMergeLocked() (inputs []*segment, level int, dropTombs bool) {
	byLevel := map[int][]*segment{}
	maxLevel := 0
	for _, g := range s.segs {
		byLevel[g.level] = append(byLevel[g.level], g)
		if g.level > maxLevel {
			maxLevel = g.level
		}
	}
	for l := 0; l <= maxLevel; l++ {
		if len(byLevel[l]) >= s.fanout {
			return byLevel[l], l, l == maxLevel
		}
	}
	return nil, 0, false
}

// mergeOnce performs one level merge if any level is over-full,
// reporting whether it did work. Failures are counted, never surfaced:
// the inputs stay live and the next cycle retries.
func (s *Store) mergeOnce() bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	inputs, level, dropTombs := s.pickMergeLocked()
	var outID uint64
	if inputs != nil {
		outID = s.nextSegID
		s.nextSegID++
	}
	s.mu.Unlock()
	if inputs == nil {
		return false
	}
	if err := s.mergeSegments(inputs, outID, level+1, dropTombs); err != nil {
		s.mu.Lock()
		s.stats.CompactionFailures++
		s.mu.Unlock()
		return false
	}
	return true
}

// mergeAllLocked synchronously merges every segment into one — the
// explicit Compact path. Caller holds s.mu (see mergeSegments for why
// that is safe here: it re-locks only in its install step, so this caller
// must release around it).
func (s *Store) mergeAllLocked() error {
	if len(s.segs) < 2 {
		return nil
	}
	inputs := append([]*segment(nil), s.segs...)
	maxLevel := 0
	for _, g := range inputs {
		if g.level > maxLevel {
			maxLevel = g.level
		}
	}
	outID := s.nextSegID
	s.nextSegID++
	s.mu.Unlock()
	err := s.mergeSegments(inputs, outID, maxLevel+1, true)
	s.mu.Lock()
	if err != nil {
		s.stats.CompactionFailures++
		return fmt.Errorf("logstore: merge: %w", err)
	}
	return nil
}

// mergeSegments streams the inputs (newest first) through the winner-
// takes-newest merge into one segment at outLevel, installs it in the
// manifest, and drops the inputs. Inputs are immutable, so the merge body
// runs without the store mutex; only the install step takes it.
func (s *Store) mergeSegments(inputs []*segment, outID uint64, outLevel int, dropTombs bool) error {
	expect := 0
	seqLo, seqHi := inputs[0].seqLo, inputs[0].seqHi
	for _, g := range inputs {
		expect += g.count
		if g.seqLo < seqLo {
			seqLo = g.seqLo
		}
		if g.seqHi > seqHi {
			seqHi = g.seqHi
		}
	}
	srcs := make([]*mergeCursor, 0, len(inputs))
	ordered := append([]*segment(nil), inputs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seqHi > ordered[j].seqHi })
	for _, g := range ordered {
		it := g.iter()
		srcs = append(srcs, &mergeCursor{next: it.next})
	}
	for _, c := range srcs {
		if err := c.advance(); err != nil {
			return err
		}
	}

	path := filepath.Join(s.dir, segName(outID))
	w, err := newSegWriter(path, outID, outLevel, seqLo, seqHi, expect)
	if err != nil {
		return err
	}
	for {
		minID, any := "", false
		for _, c := range srcs {
			if c.ok && (!any || c.cur.id < minID) {
				minID, any = c.cur.id, true
			}
		}
		if !any {
			break
		}
		emitted := false
		for _, c := range srcs {
			if !c.ok || c.cur.id != minID {
				continue
			}
			if !emitted {
				emitted = true
				if c.cur.obj != nil || !dropTombs {
					if err := w.add(c.cur); err != nil {
						w.abort()
						return err
					}
				}
			}
			if err := c.advance(); err != nil {
				w.abort()
				return err
			}
		}
	}
	out, err := w.finish()
	if err != nil {
		return err
	}

	// Install: replace the inputs with the output in the live list and
	// the manifest. An empty output (everything superseded or tombstoned
	// away) installs nothing.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		out.closeFile()
		//lint:allow errdrop best-effort cleanup of an uninstalled merge output; it was never in the manifest, so a leftover file is garbage, not data loss
		os.Remove(out.path)
		return nil
	}
	inSet := make(map[*segment]bool, len(inputs))
	for _, g := range inputs {
		inSet[g] = true
	}
	var newSegs []*segment
	for _, g := range s.segs {
		if !inSet[g] {
			newSegs = append(newSegs, g)
		}
	}
	if out.count > 0 {
		newSegs = append(newSegs, out)
		sort.Slice(newSegs, func(i, j int) bool { return newSegs[i].seqHi > newSegs[j].seqHi })
	}
	if err := s.writeManifestLocked(newSegs); err != nil {
		s.mu.Unlock()
		out.closeFile()
		//lint:allow errdrop best-effort cleanup of an uninstalled merge output; the manifest write already failed and carries the real error
		os.Remove(out.path)
		return err
	}
	s.installSegsLocked(newSegs)
	s.stats.Compactions++
	s.stats.Merges++
	s.mu.Unlock()
	if out.count == 0 {
		out.closeFile()
		//lint:allow errdrop best-effort cleanup of an empty merge output that was never installed; a leftover file is garbage, not data loss
		os.Remove(out.path)
	}
	for _, g := range inputs {
		g.drop()
	}
	return nil
}

// segLookup probes the segments newest-first for id, maintaining the
// probe counters. ok distinguishes a live row from absence (including a
// tombstone masking older versions). A probe that fails (pread error,
// corrupt chunk) aborts the scan: treating it as a miss and falling
// through would let an older segment answer with a stale version, or
// report a tombstoned row as absent so a caller recreates it with a
// fresh version vector.
func (s *Store) segLookup(id string) (*information.Object, bool, error) {
	segs := s.acquireSegs()
	defer releaseSegs(segs)
	for _, g := range segs {
		obj, probe, err := g.get(id)
		if err != nil {
			s.readFailures.Add(1)
			return nil, false, fmt.Errorf("logstore: segment %s: read %q: %w", filepath.Base(g.path), id, err)
		}
		switch probe {
		case probeSkipRange:
			s.rangeFiltered.Add(1)
		case probeSkipBloom:
			s.bloomFiltered.Add(1)
		case probeMiss:
			s.segProbes.Add(1)
			s.bloomFalse.Add(1)
		case probeRow:
			s.segProbes.Add(1)
			return obj, true, nil
		case probeTomb:
			s.segProbes.Add(1)
			return nil, false, nil
		}
	}
	return nil, false, nil
}

// lookup resolves id across every tier: memtable first (rows and
// tombstones both answer authoritatively), then segments newest-first.
// fromMem rows alias live memtable state.
func (s *Store) lookup(id string) (obj *information.Object, live, fromMem bool, err error) {
	if obj, tomb, found := s.mem.get(id); found {
		if tomb {
			return nil, false, false, nil
		}
		return obj, true, true, nil
	}
	obj, ok, err := s.segLookup(id)
	return obj, ok, false, err
}

// hasAny reports whether id is live in any tier — the endpoint-existence
// check behind Relate and WAL replay. A failed segment probe reads as
// absent (counted in Stats): Relate then refuses the edge rather than
// building on a row it cannot see, and replay's idempotence makes the
// miscount self-correcting on the next recovery.
func (s *Store) hasAny(id string) bool {
	//lint:allow errdrop a failed probe reads as absent by design (see doc comment); the error is already counted in Stats.ReadFailures by lookup
	_, live, _, _ := s.lookup(id)
	return live
}
