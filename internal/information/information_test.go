package information

import (
	"errors"
	"fmt"
	"testing"

	"mocca/internal/access"
	"mocca/internal/netsim"
	"mocca/internal/vclock"
)

// newDocRegistry registers three application schemas plus the shared
// interchange schema, each app converting only to/from the interchange —
// the figure-3 pattern.
func newDocRegistry(t *testing.T) *SchemaRegistry {
	t.Helper()
	r := NewSchemaRegistry()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(r.Register(Schema{Name: "interchange", Fields: []Field{
		{Name: "title", Type: FieldText, Required: true},
		{Name: "body", Type: FieldText},
		{Name: "author", Type: FieldText},
	}}))
	must(r.Register(Schema{Name: "editor-doc", Fields: []Field{
		{Name: "heading", Type: FieldText, Required: true},
		{Name: "text", Type: FieldText},
		{Name: "writer", Type: FieldText},
	}}))
	must(r.Register(Schema{Name: "mail-memo", Fields: []Field{
		{Name: "subject", Type: FieldText, Required: true},
		{Name: "content", Type: FieldText},
		{Name: "from", Type: FieldText},
	}}))
	must(r.Register(Schema{Name: "minutes", Fields: []Field{
		{Name: "title", Type: FieldText, Required: true},
		{Name: "body", Type: FieldText},
		{Name: "author", Type: FieldText},
		{Name: "meeting", Type: FieldText},
	}}))

	rename := func(mapping map[string]string) func(map[string]string) (map[string]string, error) {
		return func(in map[string]string) (map[string]string, error) {
			out := make(map[string]string, len(in))
			for k, v := range in {
				if nk, ok := mapping[k]; ok {
					out[nk] = v
				}
			}
			return out, nil
		}
	}
	must(r.AddConverter(Converter{From: "editor-doc", To: "interchange",
		Fn: rename(map[string]string{"heading": "title", "text": "body", "writer": "author"})}))
	must(r.AddConverter(Converter{From: "interchange", To: "editor-doc",
		Fn: rename(map[string]string{"title": "heading", "body": "text", "author": "writer"})}))
	must(r.AddConverter(Converter{From: "mail-memo", To: "interchange",
		Fn: rename(map[string]string{"subject": "title", "content": "body", "from": "author"})}))
	must(r.AddConverter(Converter{From: "interchange", To: "mail-memo",
		Fn: rename(map[string]string{"title": "subject", "body": "content", "author": "from"})}))
	must(r.AddConverter(Converter{From: "minutes", To: "interchange",
		Fn: rename(map[string]string{"title": "title", "body": "body", "author": "author"})}))
	must(r.AddConverter(Converter{From: "interchange", To: "minutes",
		Fn: func(in map[string]string) (map[string]string, error) {
			out := map[string]string{"title": in["title"], "body": in["body"], "author": in["author"], "meeting": "unknown"}
			return out, nil
		}}))
	return r
}

func newTestSpace(t *testing.T) (*Space, *access.System) {
	t.Helper()
	acl := access.NewSystem()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	return NewSpace(newDocRegistry(t), acl, clk), acl
}

func TestSchemaValidate(t *testing.T) {
	s := Schema{Name: "x", Fields: []Field{
		{Name: "title", Type: FieldText, Required: true},
		{Name: "count", Type: FieldInt},
	}}
	tests := []struct {
		name    string
		fields  map[string]string
		wantErr bool
	}{
		{"ok", map[string]string{"title": "t", "count": "42"}, false},
		{"ok negative int", map[string]string{"title": "t", "count": "-3"}, false},
		{"missing required", map[string]string{"count": "1"}, true},
		{"bad int", map[string]string{"title": "t", "count": "4x"}, true},
		{"unknown field", map[string]string{"title": "t", "bogus": "y"}, true},
		{"optional absent", map[string]string{"title": "t"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := s.Validate(tt.fields)
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate(%v) err = %v, wantErr %v", tt.fields, err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrSchemaViolation) {
				t.Fatalf("error does not wrap ErrSchemaViolation: %v", err)
			}
		})
	}
}

func TestConversionDirect(t *testing.T) {
	r := newDocRegistry(t)
	out, err := r.Convert(map[string]string{"heading": "Plan", "text": "dig", "writer": "ada"},
		"editor-doc", "interchange")
	if err != nil {
		t.Fatal(err)
	}
	if out["title"] != "Plan" || out["body"] != "dig" || out["author"] != "ada" {
		t.Fatalf("converted = %v", out)
	}
}

func TestConversionMultiHop(t *testing.T) {
	r := newDocRegistry(t)
	// editor-doc -> interchange -> mail-memo: two hops found automatically.
	out, err := r.Convert(map[string]string{"heading": "Plan", "text": "dig", "writer": "ada"},
		"editor-doc", "mail-memo")
	if err != nil {
		t.Fatal(err)
	}
	if out["subject"] != "Plan" || out["content"] != "dig" || out["from"] != "ada" {
		t.Fatalf("converted = %v", out)
	}
	path, err := r.FindPath("editor-doc", "mail-memo")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2", len(path))
	}
}

func TestConversionIdentity(t *testing.T) {
	r := newDocRegistry(t)
	in := map[string]string{"title": "x"}
	out, err := r.Convert(in, "interchange", "interchange")
	if err != nil {
		t.Fatal(err)
	}
	if out["title"] != "x" {
		t.Fatalf("identity conversion = %v", out)
	}
}

func TestNoConversionPath(t *testing.T) {
	r := NewSchemaRegistry()
	if err := r.Register(Schema{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(Schema{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FindPath("a", "b"); !errors.Is(err, ErrNoConversion) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.FindPath("a", "ghost"); !errors.Is(err, ErrUnknownSchema) {
		t.Fatalf("err = %v", err)
	}
}

func TestPutGetUpdate(t *testing.T) {
	space, _ := newTestSpace(t)
	obj, err := space.Put("ada", "editor-doc", map[string]string{"heading": "Draft", "text": "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Version != 1 || obj.Owner != "ada" {
		t.Fatalf("obj = %+v", obj)
	}
	got, err := space.Get("ada", obj.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fields["heading"] != "Draft" {
		t.Fatalf("got = %+v", got)
	}
	updated, err := space.Update("ada", obj.ID, 1, map[string]string{"text": "v2"})
	if err != nil {
		t.Fatal(err)
	}
	if updated.Version != 2 || updated.Fields["text"] != "v2" || updated.Fields["heading"] != "Draft" {
		t.Fatalf("updated = %+v", updated)
	}
}

func TestOptimisticConcurrency(t *testing.T) {
	space, _ := newTestSpace(t)
	obj, err := space.Put("ada", "editor-doc", map[string]string{"heading": "Draft"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := space.Update("ada", obj.ID, 1, map[string]string{"text": "a"}); err != nil {
		t.Fatal(err)
	}
	// Stale writer loses.
	if _, err := space.Update("ada", obj.ID, 1, map[string]string{"text": "b"}); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale update err = %v", err)
	}
}

func TestAccessControlEnforced(t *testing.T) {
	space, _ := newTestSpace(t)
	obj, err := space.Put("ada", "editor-doc", map[string]string{"heading": "Secret"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := space.Get("mallory", obj.ID); !errors.Is(err, ErrDenied) {
		t.Fatalf("unauthorised read err = %v", err)
	}
	if _, err := space.Update("mallory", obj.ID, 1, nil); !errors.Is(err, ErrDenied) {
		t.Fatalf("unauthorised write err = %v", err)
	}
	if err := space.Share("mallory", obj.ID, "mallory", false); !errors.Is(err, ErrDenied) {
		t.Fatalf("unauthorised share err = %v", err)
	}
	if st := space.Stats(); st.Denials != 3 {
		t.Fatalf("Denials = %d", st.Denials)
	}
}

func TestShareGrantsAccess(t *testing.T) {
	space, _ := newTestSpace(t)
	obj, err := space.Put("ada", "editor-doc", map[string]string{"heading": "Shared"})
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Share("ada", obj.ID, "ben", false); err != nil {
		t.Fatal(err)
	}
	if _, err := space.Get("ben", obj.ID); err != nil {
		t.Fatalf("ben read after share: %v", err)
	}
	// Read-only share: write still denied.
	if _, err := space.Update("ben", obj.ID, 1, map[string]string{"text": "x"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("ben write err = %v", err)
	}
	if err := space.Share("ada", obj.ID, "carol", true); err != nil {
		t.Fatal(err)
	}
	if _, err := space.Update("carol", obj.ID, 1, map[string]string{"text": "by carol"}); err != nil {
		t.Fatalf("carol write after writable share: %v", err)
	}
}

func TestGetAsCrossSchema(t *testing.T) {
	space, _ := newTestSpace(t)
	obj, err := space.Put("ada", "editor-doc", map[string]string{"heading": "Plan", "text": "dig", "writer": "ada"})
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Share("ada", obj.ID, "mailapp", false); err != nil {
		t.Fatal(err)
	}
	memo, err := space.GetAs("mailapp", obj.ID, "mail-memo")
	if err != nil {
		t.Fatal(err)
	}
	if memo.Fields["subject"] != "Plan" || memo.Schema != "mail-memo" {
		t.Fatalf("memo = %+v", memo)
	}
	// Original object untouched.
	orig, _ := space.Get("ada", obj.ID)
	if orig.Schema != "editor-doc" {
		t.Fatal("GetAs mutated the stored object")
	}
}

func TestRelationshipsAndCycles(t *testing.T) {
	space, _ := newTestSpace(t)
	mk := func(h string) string {
		t.Helper()
		obj, err := space.Put("ada", "editor-doc", map[string]string{"heading": h})
		if err != nil {
			t.Fatal(err)
		}
		return obj.ID
	}
	report, chapter, figure := mk("report"), mk("chapter"), mk("figure")
	if err := space.Relate(report, RelComposedOf, chapter); err != nil {
		t.Fatal(err)
	}
	if err := space.Relate(chapter, RelComposedOf, figure); err != nil {
		t.Fatal(err)
	}
	if err := space.Relate(figure, RelComposedOf, report); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle err = %v", err)
	}
	if err := space.Relate(report, RelComposedOf, report); !errors.Is(err, ErrCycle) {
		t.Fatalf("self-cycle err = %v", err)
	}
	closure := space.Closure(report, RelComposedOf)
	if len(closure) != 2 {
		t.Fatalf("closure = %v", closure)
	}
	deps := space.Dependents(figure, RelComposedOf)
	if len(deps) != 1 || deps[0] != chapter {
		t.Fatalf("dependents = %v", deps)
	}
}

func TestQuery(t *testing.T) {
	space, _ := newTestSpace(t)
	for i := 0; i < 5; i++ {
		status := "draft"
		if i%2 == 0 {
			status = "final"
		}
		_, err := space.Put("ada", "minutes", map[string]string{
			"title": fmt.Sprintf("meeting-%d", i), "meeting": status,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := space.Query("ada", "minutes", map[string]string{"meeting": "final"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("query found %d, want 3", len(got))
	}
	// Other principals see nothing (no read grants).
	got, err = space.Query("mallory", "minutes", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("mallory sees %d objects", len(got))
	}
}

func TestSubscriptions(t *testing.T) {
	space, _ := newTestSpace(t)
	var events []string
	space.Subscribe("editor-doc", func(ev Event) {
		events = append(events, ev.Kind)
	})
	var all []string
	space.Subscribe("", func(ev Event) { all = append(all, ev.Kind) })

	obj, err := space.Put("ada", "editor-doc", map[string]string{"heading": "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := space.Update("ada", obj.ID, 1, map[string]string{"text": "y"}); err != nil {
		t.Fatal(err)
	}
	if _, err := space.Put("ada", "minutes", map[string]string{"title": "m"}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(events) != "[put update]" {
		t.Fatalf("schema-filtered events = %v", events)
	}
	if fmt.Sprint(all) != "[put update put]" {
		t.Fatalf("all events = %v", all)
	}
}

func TestNilACLAllowsAll(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	space := NewSpace(newDocRegistry(t), nil, clk)
	obj, err := space.Put("a", "editor-doc", map[string]string{"heading": "open"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := space.Get("anyone", obj.ID); err != nil {
		t.Fatalf("nil-ACL read: %v", err)
	}
}
