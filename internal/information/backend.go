package information

import "mocca/internal/vclock"

// Backend is the storage surface a Space drives: the keeping of object
// rows and the relationship graph, with one atomic read-modify-write
// primitive (Exec) and the two replication queries (Digest, NewerThan).
// It is the seam between the information viewpoint and its engineering
// realisation — the engine, anti-entropy replication and the groupware
// applications are all written against this interface and cannot tell
// backends apart.
//
// Two implementations exist: the in-memory Store (the default, rows live
// only as long as the process) and logstore.Store (a disk-backed tiered
// log-structured store — memtable over sorted segment files — whose
// replica survives a site crash). Every implementation must honour the
// Store's copying contract: reads and Exec return values are deep
// copies. The Exec callback's argument may be the live row (in-memory
// Store) or a private copy (logstore, which must be able to abandon a
// mutation whose log append fails, and whose segment-resident rows are
// decoded fresh from disk per call) — so a mutation takes effect only by
// RETURNING the row to store; callbacks must never rely on in-place
// edits of their argument persisting.
//
// A tiered backend need not hold all rows in memory. The interface is
// written so it never has to materialise more than the caller asked
// for: Range and Snapshot stream rows one at a time (a disk-backed
// implementation may merge memtable and segment cursors under the
// hood), Get/Exec are point lookups, and only Digest/NewerThan are
// inherently O(rows) — they summarise every version vector, which is
// exactly the anti-entropy exchange they exist for.
type Backend interface {
	// Len returns the number of stored objects.
	Len() int
	// Get returns a copy of the row for id.
	Get(id string) (*Object, bool)
	// Exec runs fn against the live row for id under the backend's write
	// exclusion — the atomic read-modify-write primitive every engine
	// mutation builds on. fn receives the stored row (nil if absent) and
	// returns the row to store in its place; returning nil stores nothing.
	Exec(id string, fn func(cur *Object) (*Object, error)) (*Object, error)
	// Snapshot returns copies of every row matching pred (nil pred = all).
	Snapshot(pred func(*Object) bool) []*Object
	// Remove deletes the row for id, together with relationship edges
	// touching it (a dangling edge would poison a later snapshot replay),
	// returning a copy of the removed row. A missing id is not an error:
	// (nil, nil). This is the placement-migration eviction primitive — a
	// replica dropping rows of a space it is no longer placed in.
	Remove(id string) (*Object, error)
	// Range calls fn for every stored row under the backend's read
	// exclusion, in unspecified order, stopping early when fn returns
	// false. fn may receive the live row (in-memory Store) or a
	// transient decode of an on-disk row (tiered logstore): either way
	// it must treat the row as read-only, must not retain it past its
	// return, and must not call back into the backend. This is the
	// streaming primitive the Space uses to rebuild its Merkle digest
	// tree over recovered state — it must work without the backend ever
	// materialising the full row set in memory.
	Range(fn func(*Object) bool)
	// Digest summarises every row's version vector for anti-entropy
	// exchange.
	Digest() map[string]vclock.Version
	// NewerThan returns copies of rows the given digest has not fully
	// seen — the delta a peer with that digest needs to pull.
	NewerThan(digest map[string]vclock.Version) []*Object

	// Relate records a typed relationship; composition and dependency must
	// stay acyclic. Both endpoints must exist.
	Relate(from string, kind RelKind, to string) error
	// Related returns directly related object ids, sorted.
	Related(from string, kind RelKind) []string
	// Dependents returns ids of objects that relate TO the given id.
	Dependents(to string, kind RelKind) []string
	// Closure returns all ids transitively reachable from id over kind.
	Closure(from string, kind RelKind) []string
}

// Store implements Backend.
var _ Backend = (*Store)(nil)
