package information

import (
	"hash/fnv"
	"sort"
	"sync"

	"mocca/internal/vclock"
)

// The Merkle digest tree summarises a replica's id→version-vector digest
// so anti-entropy rounds stop shipping the full digest: converged
// replicas compare one root hash, divergent ones descend only the
// mismatched subtrees. The tree structure is a protocol constant — every
// replica buckets ids the same way — so hashes compare across sites.
const (
	// MerkleFanout is the number of children per internal node.
	MerkleFanout = 16
	// MerkleDepth is the number of levels below the root; nodes at level
	// MerkleDepth are the leaves.
	MerkleDepth = 3
	// MerkleLeaves is the leaf count, MerkleFanout^MerkleDepth.
	MerkleLeaves = 4096
)

// MerkleBucket maps an object id to its leaf bucket. The assignment is a
// pure function of the id, so every replica files the same object under
// the same leaf.
func MerkleBucket(id string) uint32 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return uint32(h.Sum64() & (MerkleLeaves - 1))
}

// merkleEntry is one object's contribution to its leaf: the entry hash
// (folded into the leaf by XOR) plus the version vector it was computed
// from, kept so updates can be ordered and high-water scans need no
// store access.
type merkleEntry struct {
	hash uint64
	vv   vclock.Version
}

// entryHash hashes one (id, version-vector) pair. The vector is encoded
// canonically (vclock.AppendBinary, sorted sites), so equal object states
// hash equally at every replica.
func entryHash(id string, vv vclock.Version) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write(vv.AppendBinary(nil))
	return h.Sum64()
}

// DigestTree is the incremental Merkle summary of a replica's digest.
// Leaves fold their entries with XOR (so an entry update is O(1) on the
// leaf), internal nodes hash their children, and every mutation
// recomputes only the root path — O(MerkleDepth·MerkleFanout) hash work
// per commit. It also tracks per-site high-water marks (the maximum
// counter any entry records per site), the fast path the sync protocol
// uses to spot single-writer progress without descending the tree.
//
// The tree is storage-agnostic and rebuilt from Backend.Range when a
// Space opens over recovered state, so a durable replica re-enters
// anti-entropy with the exact root it crashed with.
type DigestTree struct {
	mu      sync.RWMutex
	buckets [MerkleLeaves]map[string]merkleEntry
	levels  [][]uint64 // levels[0] = [root], levels[MerkleDepth] = leaves
	hw      map[string]uint64
	count   int
	gen     uint64
}

// NewDigestTree creates an empty tree with all internal hashes computed,
// so two empty replicas compare equal from the first round.
func NewDigestTree() *DigestTree {
	t := &DigestTree{hw: make(map[string]uint64)}
	t.levels = make([][]uint64, MerkleDepth+1)
	size := 1
	for l := 0; l <= MerkleDepth; l++ {
		t.levels[l] = make([]uint64, size)
		size *= MerkleFanout
	}
	for l := MerkleDepth - 1; l >= 0; l-- {
		for i := range t.levels[l] {
			t.levels[l][i] = t.hashChildrenLocked(l, uint32(i))
		}
	}
	return t
}

// hashChildrenLocked hashes the MerkleFanout children of node (level,
// index) into the node's hash. Internal nodes use a positional hash (not
// XOR) so a change in any leaf avalanches up to the root.
func (t *DigestTree) hashChildrenLocked(level int, index uint32) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	base := index * MerkleFanout
	for j := uint32(0); j < MerkleFanout; j++ {
		c := t.levels[level+1][base+j]
		buf[0] = byte(c >> 56)
		buf[1] = byte(c >> 48)
		buf[2] = byte(c >> 40)
		buf[3] = byte(c >> 32)
		buf[4] = byte(c >> 24)
		buf[5] = byte(c >> 16)
		buf[6] = byte(c >> 8)
		buf[7] = byte(c)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// recomputePathLocked recomputes every internal node on the path from
// leaf bucket b up to the root.
func (t *DigestTree) recomputePathLocked(b uint32) {
	idx := b
	for l := MerkleDepth - 1; l >= 0; l-- {
		idx /= MerkleFanout
		t.levels[l][idx] = t.hashChildrenLocked(l, idx)
	}
	t.gen++
}

// Update records the object's current version vector. A call whose
// vector the stored entry already dominates is ignored — the commit it
// describes lost a store-level race to a newer one — so tree state can
// never regress behind the store under concurrent writers.
func (t *DigestTree) Update(id string, vv vclock.Version) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := MerkleBucket(id)
	if t.buckets[b] == nil {
		t.buckets[b] = make(map[string]merkleEntry)
	}
	if cur, ok := t.buckets[b][id]; ok {
		switch cur.vv.Compare(vv) {
		case vclock.After, vclock.Equal:
			return
		}
		t.levels[MerkleDepth][b] ^= cur.hash
	} else {
		t.count++
	}
	e := merkleEntry{hash: entryHash(id, vv), vv: vv.Clone()}
	t.buckets[b][id] = e
	t.levels[MerkleDepth][b] ^= e.hash
	for s, c := range vv {
		if c > t.hw[s] {
			t.hw[s] = c
		}
	}
	t.recomputePathLocked(b)
}

// Remove drops the object's entry (a no-op for unknown ids). High-water
// marks are deliberately monotone and survive removals: they are a
// fast-path heuristic the root hash verifies, never a correctness gate.
func (t *DigestTree) Remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := MerkleBucket(id)
	cur, ok := t.buckets[b][id]
	if !ok {
		return
	}
	delete(t.buckets[b], id)
	t.count--
	t.levels[MerkleDepth][b] ^= cur.hash
	t.recomputePathLocked(b)
}

// Root returns the root hash — equal roots mean (up to hash collision)
// equal digests.
func (t *DigestTree) Root() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.levels[0][0]
}

// NodeHash returns the hash of node (level, index); ok is false for
// positions outside the tree.
func (t *DigestTree) NodeHash(level, index uint32) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(level) >= len(t.levels) || int(index) >= len(t.levels[level]) {
		return 0, false
	}
	return t.levels[level][index], true
}

// Children returns the hashes of the MerkleFanout children of internal
// node (level, index), or nil when the node is a leaf or out of range.
func (t *DigestTree) Children(level, index uint32) []uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(level) >= MerkleDepth || int(index) >= len(t.levels[level]) {
		return nil
	}
	base := index * MerkleFanout
	out := make([]uint64, MerkleFanout)
	copy(out, t.levels[level+1][base:base+MerkleFanout])
	return out
}

// LeafDigest returns the id→version-vector digest of one leaf bucket —
// the scoped digest a divergent leaf exchanges instead of the full one.
func (t *DigestTree) LeafDigest(bucket uint32) map[string]vclock.Version {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if bucket >= MerkleLeaves || len(t.buckets[bucket]) == 0 {
		return nil
	}
	out := make(map[string]vclock.Version, len(t.buckets[bucket]))
	for id, e := range t.buckets[bucket] {
		out[id] = e.vv.Clone()
	}
	return out
}

// HighWater returns a copy of the per-site high-water marks: for each
// site, the maximum counter any entry's vector records.
func (t *DigestTree) HighWater() map[string]uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]uint64, len(t.hw))
	for s, c := range t.hw {
		out[s] = c
	}
	return out
}

// NewerThanHW returns the ids (sorted, deterministic) whose vectors
// record a counter past the given high-water marks — rows a replica with
// those marks has certainly not seen. The converse does not hold (a row
// below the marks can still be missing), which is why the protocol
// verifies with a root compare afterwards.
func (t *DigestTree) NewerThanHW(hw map[string]uint64) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for b := range t.buckets {
		for id, e := range t.buckets[b] {
			for s, c := range e.vv {
				if c > hw[s] {
					out = append(out, id)
					break
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// Count returns the number of entries.
func (t *DigestTree) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.count
}

// Generation returns a counter bumped by every structural change — the
// cheap staleness check for caches derived from this tree.
func (t *DigestTree) Generation() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.gen
}
