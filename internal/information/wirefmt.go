package information

import (
	"time"

	"mocca/internal/vclock"
)

// WireObject is the JSON form of an Object on the network — used by the
// anti-entropy sync protocol (internal/replica) and the trader-mediated
// remote read protocol (internal/placement). The replica-local Version is
// not carried: it is recomputed as VV.Sum(), so converged replicas agree
// on it by construction.
type WireObject struct {
	ID      string            `json:"id"`
	Schema  string            `json:"schema"`
	Owner   string            `json:"owner"`
	Site    string            `json:"site"`
	Fields  map[string]string `json:"fields,omitempty"`
	VV      vclock.Version    `json:"vv"`
	Created int64             `json:"created"`
	Updated int64             `json:"updated"`
}

// ToWire converts an object to its wire form.
func ToWire(o *Object) WireObject {
	return WireObject{
		ID:      o.ID,
		Schema:  o.Schema,
		Owner:   o.Owner,
		Site:    o.Site,
		Fields:  o.Fields,
		VV:      o.VV,
		Created: o.Created.UnixNano(),
		Updated: o.Updated.UnixNano(),
	}
}

// FromWire converts a wire object back to an Object.
func FromWire(w WireObject) *Object {
	return &Object{
		ID:      w.ID,
		Schema:  w.Schema,
		Owner:   w.Owner,
		Site:    w.Site,
		Fields:  w.Fields,
		Version: w.VV.Sum(),
		VV:      w.VV,
		Created: time.Unix(0, w.Created).UTC(),
		Updated: time.Unix(0, w.Updated).UTC(),
	}
}
