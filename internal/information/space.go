package information

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mocca/internal/access"
	"mocca/internal/id"
	"mocca/internal/vclock"
)

// Object is a shared information object.
type Object struct {
	ID     string
	Schema string
	Owner  string
	Fields map[string]string
	// Version is the replica-local optimistic-concurrency number: the
	// total count of writes this replica has observed on the object
	// (VV.Sum()). Converged replicas agree on it.
	Version uint64
	// VV is the object's per-site version vector — the causal record that
	// lets replicas order or detect concurrent cross-site updates.
	VV vclock.Version
	// Site names the replica that performed the object's latest write.
	Site    string
	Created time.Time
	Updated time.Time
}

// clone deep-copies the object.
func (o *Object) clone() *Object {
	out := *o
	out.Fields = cloneFields(o.Fields)
	out.VV = o.VV.Clone()
	return &out
}

// Clone returns a deep copy of the object. Backends use it to isolate a
// mutation callback from the live row, so a mutation they cannot commit
// (e.g. a failed log append) leaves stored state untouched.
func (o *Object) Clone() *Object { return o.clone() }

// RelKind is an inter-object relationship, per the paper's "composition,
// dependencies".
type RelKind string

// Relationship kinds.
const (
	RelComposedOf  RelKind = "composed-of" // parent -> part
	RelDependsOn   RelKind = "depends-on"  // dependent -> dependency
	RelDerivedFrom RelKind = "derived-from"
)

// Errors of the space layer.
var (
	ErrUnknownObject = errors.New("information: unknown object")
	ErrDenied        = errors.New("information: access denied")
	ErrConflict      = errors.New("information: version conflict")
	ErrCycle         = errors.New("information: relationship cycle")
)

// Conflict describes a concurrent cross-site update that was resolved
// deterministically (site-ordered last-writer-wins).
type Conflict struct {
	ObjectID   string
	WinnerSite string
	LoserSite  string
	// LoserFields is the overwritten state, so applications (or a human)
	// can recover what the losing write said.
	LoserFields map[string]string
}

// Event notifies subscribers of a change.
type Event struct {
	// Kind is "put", "update", "share", "relate" for local writes,
	// "apply" / "conflict" for state arriving from a peer replica, and
	// "evict" for rows migrated off this replica by placement.
	Kind   string
	Object *Object
	Actor  string
	At     time.Time
	// Conflict carries resolution detail on "conflict" events only.
	Conflict *Conflict
}

// Space is the engine of the shared information space: schema validation,
// access guards, change notification and replica merge policy, layered
// over a Store that does the actual keeping of rows.
//
// A Space is one site's replica. Writes land locally (ticking the site's
// version-vector entry); the replica layer propagates them to peers and
// feeds remote writes back in through ApplyRemote.
type Space struct {
	registry *SchemaRegistry
	acl      *access.System
	clock    vclock.Clock
	ids      *id.Generator
	site     string
	store    Backend
	tree     *DigestTree

	mu    sync.RWMutex
	subs  []subscription
	stats SpaceStats
}

// SpaceStats counts space activity.
type SpaceStats struct {
	Puts     int64
	Updates  int64
	Reads    int64
	Denials  int64
	Notifies int64
	// Applied and Conflicts count remote state merged in by replication.
	Applied   int64
	Conflicts int64
	// Evictions counts rows dropped off this replica by placement
	// migration (Drop).
	Evictions int64
}

type subscription struct {
	schema string // "" = all
	fn     func(Event)
}

// SpaceOption configures a Space.
type SpaceOption func(*Space)

// WithIDs sets the id generator.
func WithIDs(g *id.Generator) SpaceOption {
	return func(s *Space) { s.ids = g }
}

// WithSite names the replica this space embodies; the name keys the
// object version vectors and breaks last-writer-wins ties, so it must be
// unique across the replica set. Defaults to "local".
func WithSite(site string) SpaceOption {
	return func(s *Space) { s.site = site }
}

// WithBackend selects the storage backend beneath the engine — e.g. a
// disk-backed logstore.Store so the replica survives a site crash. A nil
// backend keeps the in-memory default.
func WithBackend(b Backend) SpaceOption {
	return func(s *Space) {
		if b != nil {
			s.store = b
		}
	}
}

// NewSpace creates a space over the given schema registry and ACL system.
// A nil acl disables access control (everything allowed). Replicas of one
// logical space share the registry and the ACL and differ only by site.
func NewSpace(registry *SchemaRegistry, acl *access.System, clock vclock.Clock, opts ...SpaceOption) *Space {
	s := &Space{
		registry: registry,
		acl:      acl,
		clock:    clock,
		site:     "local",
		store:    NewStore(),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ids == nil {
		s.ids = id.New()
	}
	// Build the Merkle digest summary over whatever the backend already
	// holds: empty for a fresh in-memory store, the recovered replica for
	// a durable backend re-opened after a crash — so a recovered site
	// re-enters anti-entropy with the exact root it crashed with.
	s.tree = NewDigestTree()
	s.store.Range(func(o *Object) bool {
		s.tree.Update(o.ID, o.VV)
		return true
	})
	return s
}

// Registry exposes the schema registry.
func (s *Space) Registry() *SchemaRegistry { return s.registry }

// Site returns the replica's site name.
func (s *Space) Site() string { return s.site }

// Stats returns a snapshot of the counters.
func (s *Space) Stats() SpaceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// resource names the guarded resource for an object id.
func resource(objID string) string { return "info/" + objID }

// can checks the ACL (nil ACL admits everything).
func (s *Space) can(principal string, op access.Op, objID string) bool {
	if s.acl == nil {
		return true
	}
	return s.acl.Can(principal, op, resource(objID))
}

// Put creates an object owned by actor, validating against its schema. The
// owner receives read/write/share grants on it.
func (s *Space) Put(actor, schemaName string, fields map[string]string) (*Object, error) {
	schema, err := s.registry.Schema(schemaName)
	if err != nil {
		return nil, err
	}
	if err := schema.Validate(fields); err != nil {
		return nil, err
	}
	now := s.clock.Now()
	obj := &Object{
		ID:      s.ids.Next("info"),
		Schema:  schema.Name,
		Owner:   actor,
		Fields:  cloneFields(fields),
		Version: 1,
		VV:      vclock.NewVersion(s.site),
		Site:    s.site,
		Created: now,
		Updated: now,
	}
	stored, err := s.store.Exec(obj.ID, func(*Object) (*Object, error) { return obj, nil })
	if err != nil {
		return nil, err
	}
	s.tree.Update(stored.ID, stored.VV)
	s.bump(func(st *SpaceStats) { st.Puts++ })

	if s.acl != nil {
		s.acl.GrantPrincipal(actor, access.OpRead, resource(obj.ID))
		s.acl.GrantPrincipal(actor, access.OpWrite, resource(obj.ID))
		s.acl.GrantPrincipal(actor, access.OpShare, resource(obj.ID))
	}
	// Subscribers get their own clone: a callback mutating ev.Object must
	// not corrupt the caller's copy.
	s.notify(Event{Kind: "put", Object: stored.clone(), Actor: actor, At: now})
	return stored, nil
}

// Get reads an object, enforcing OpRead.
func (s *Space) Get(actor, objID string) (*Object, error) {
	if !s.can(actor, access.OpRead, objID) {
		s.deny()
		return nil, fmt.Errorf("%w: %s read %s", ErrDenied, actor, objID)
	}
	obj, ok := s.store.Get(objID)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, objID)
	}
	s.bump(func(st *SpaceStats) { st.Reads++ })
	return obj, nil
}

// GetAs reads an object converted into the requested schema — the
// cross-application sharing primitive.
func (s *Space) GetAs(actor, objID, schemaName string) (*Object, error) {
	obj, err := s.Get(actor, objID)
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(obj.Schema, schemaName) {
		return obj, nil
	}
	fields, err := s.registry.Convert(obj.Fields, obj.Schema, schemaName)
	if err != nil {
		return nil, err
	}
	out := obj.clone()
	out.Schema = strings.ToLower(schemaName)
	out.Fields = fields
	return out, nil
}

// Update modifies fields with optimistic concurrency: expectedVersion must
// match or ErrConflict returns. Enforces OpWrite. The write lands on this
// replica only; replication propagates it asynchronously.
func (s *Space) Update(actor, objID string, expectedVersion uint64, fields map[string]string) (*Object, error) {
	if !s.can(actor, access.OpWrite, objID) {
		s.deny()
		return nil, fmt.Errorf("%w: %s write %s", ErrDenied, actor, objID)
	}
	updated, err := s.store.Exec(objID, func(obj *Object) (*Object, error) {
		if obj == nil {
			return nil, fmt.Errorf("%w: %q", ErrUnknownObject, objID)
		}
		if obj.Version != expectedVersion {
			return nil, fmt.Errorf("%w: object at v%d, expected v%d", ErrConflict, obj.Version, expectedVersion)
		}
		schema, err := s.registry.Schema(obj.Schema)
		if err != nil {
			return nil, err
		}
		merged := cloneFields(obj.Fields)
		for k, v := range fields {
			if v == "" {
				delete(merged, k)
				continue
			}
			merged[k] = v
		}
		if err := schema.Validate(merged); err != nil {
			return nil, err
		}
		obj.Fields = merged
		obj.VV = obj.VV.Tick(s.site)
		obj.Version = obj.VV.Sum()
		obj.Site = s.site
		obj.Updated = s.clock.Now()
		return obj, nil
	})
	if err != nil {
		return nil, err
	}
	s.tree.Update(updated.ID, updated.VV)
	s.bump(func(st *SpaceStats) { st.Updates++ })
	s.notify(Event{Kind: "update", Object: updated.clone(), Actor: actor, At: updated.Updated})
	return updated, nil
}

// Share grants another principal read access (and optionally write),
// enforcing OpShare on the actor. With replicas sharing one ACL system,
// a grant made at any site is effective at every site.
func (s *Space) Share(actor, objID, grantee string, writable bool) error {
	if !s.can(actor, access.OpShare, objID) {
		s.deny()
		return fmt.Errorf("%w: %s share %s", ErrDenied, actor, objID)
	}
	snapshot, ok := s.store.Get(objID)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, objID)
	}
	if s.acl != nil {
		s.acl.GrantPrincipal(grantee, access.OpRead, resource(objID))
		if writable {
			s.acl.GrantPrincipal(grantee, access.OpWrite, resource(objID))
		}
	}
	s.notify(Event{Kind: "share", Object: snapshot, Actor: actor, At: s.clock.Now()})
	return nil
}

// Relate records a typed relationship; composition and dependency must stay
// acyclic.
func (s *Space) Relate(from string, kind RelKind, to string) error {
	return s.store.Relate(from, kind, to)
}

// Related returns directly related object ids.
func (s *Space) Related(from string, kind RelKind) []string {
	return s.store.Related(from, kind)
}

// Dependents returns ids of objects that relate TO the given id over kind
// (e.g. everything that depends-on it).
func (s *Space) Dependents(to string, kind RelKind) []string {
	return s.store.Dependents(to, kind)
}

// Closure returns all objects transitively reachable from id over kind.
func (s *Space) Closure(from string, kind RelKind) []string {
	return s.store.Closure(from, kind)
}

// Query returns copies of objects of the given schema whose fields contain
// all the given key/value pairs (empty filter = all of that schema).
func (s *Space) Query(actor, schemaName string, filter map[string]string) ([]*Object, error) {
	candidates := s.store.Snapshot(func(obj *Object) bool {
		if !strings.EqualFold(obj.Schema, schemaName) {
			return false
		}
		for k, v := range filter {
			if obj.Fields[k] != v {
				return false
			}
		}
		return true
	})
	out := candidates[:0]
	for _, obj := range candidates {
		if s.can(actor, access.OpRead, obj.ID) {
			out = append(out, obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Drop evicts the row for id from THIS replica only — the placement
// migration path: a site no longer placed for an object's space pushes
// the row to a placed site and drops its local copy. It bypasses the ACL
// (the caller is the replication layer, not a principal) and publishes an
// "evict" event; other replicas are untouched. Returns the removed row,
// or nil when the id was not stored.
func (s *Space) Drop(id string) (*Object, error) {
	removed, err := s.store.Remove(id)
	if err != nil || removed == nil {
		return nil, err
	}
	s.tree.Remove(id)
	s.bump(func(st *SpaceStats) { st.Evictions++ })
	s.notify(Event{Kind: "evict", Object: removed, Actor: "placement/" + s.site, At: s.clock.Now()})
	return removed, nil
}

// DropCovered evicts the row only if its current state is covered by vv
// — the version vector a migration push carried. A write that landed
// after the push snapshot leaves the row in place (returning nil), so
// eviction can never destroy state no other replica has seen; the next
// migration pass picks the row up again. The check and the removal are
// two store operations: mutations of one replica are serialised by the
// simulation's event loop, so no writer can slip between them.
func (s *Space) DropCovered(id string, vv vclock.Version) (*Object, error) {
	cur, ok := s.store.Get(id)
	if !ok {
		return nil, nil
	}
	if !vv.Dominates(cur.VV) {
		return nil, nil
	}
	return s.Drop(id)
}

// Subscribe registers fn for events on objects of the schema ("" = all).
// Callbacks run synchronously on the mutating goroutine.
func (s *Space) Subscribe(schemaName string, fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, subscription{schema: strings.ToLower(schemaName), fn: fn})
}

// Len returns the number of stored objects.
func (s *Space) Len() int { return s.store.Len() }

// --- replication ---------------------------------------------------------

// Digest summarises every object's version vector for anti-entropy
// exchange.
func (s *Space) Digest() map[string]vclock.Version { return s.store.Digest() }

// Tree returns the replica's incremental Merkle digest summary, kept in
// lockstep with every commit. The sync layer compares roots instead of
// shipping the full digest and descends only mismatched subtrees.
func (s *Space) Tree() *DigestTree { return s.tree }

// Range streams the stored rows through fn (see Backend.Range for the
// aliasing contract) — the replication layer's bulk scan that avoids
// materialising a copy of every row.
func (s *Space) Range(fn func(*Object) bool) { s.store.Range(fn) }

// Fetch reads a row without access control — the replication layer's
// read, symmetric to NewerThan/Digest which also bypass the ACL:
// authorisation happened where the read request is served, not here.
func (s *Space) Fetch(id string) (*Object, bool) { return s.store.Get(id) }

// NewerThan returns objects the given digest has not fully seen — the
// delta a peer with that digest needs.
func (s *Space) NewerThan(digest map[string]vclock.Version) []*Object {
	return s.store.NewerThan(digest)
}

// lwwWins reports whether a beats b under site-ordered last-writer-wins:
// the later Updated timestamp wins; equal timestamps fall back to the
// higher site name. Both inputs replicate byte-identically, so every
// replica picks the same winner.
func lwwWins(a, b *Object) bool {
	if !a.Updated.Equal(b.Updated) {
		return a.Updated.After(b.Updated)
	}
	return a.Site > b.Site
}

// ApplyRemote merges an object received from a peer replica into this
// replica. It is the replication layer's entry point and bypasses the
// ACL — authorisation happened where the write was issued, and the ACL
// system is shared across replicas anyway.
//
//   - unknown object: adopted as-is
//   - remote causally newer (VV dominates): remote state adopted
//   - remote causally older or equal: no change
//   - concurrent: deterministic site-ordered last-writer-wins; version
//     vectors merge either way and a "conflict" event is published
//
// changed reports whether local state moved; conflict whether a
// concurrent update was resolved.
func (s *Space) ApplyRemote(remote *Object) (changed, conflict bool, err error) {
	if remote == nil || remote.ID == "" {
		return false, false, fmt.Errorf("%w: empty remote object", ErrUnknownObject)
	}
	var conflictInfo *Conflict
	stored, err := s.store.Exec(remote.ID, func(cur *Object) (*Object, error) {
		if cur == nil {
			return remote.clone(), nil
		}
		switch cur.VV.Compare(remote.VV) {
		case vclock.After, vclock.Equal:
			return nil, nil // nothing the remote knows that we don't
		case vclock.Before:
			adopted := remote.clone()
			if cur.Created.Before(adopted.Created) {
				adopted.Created = cur.Created
			}
			return adopted, nil
		default: // concurrent: resolve deterministically, merge histories
			winner, loser := cur, remote
			if lwwWins(remote, cur) {
				winner, loser = remote, cur
			}
			merged := winner.clone()
			merged.VV = cur.VV.Merge(remote.VV)
			merged.Version = merged.VV.Sum()
			// Created converges to the minimum over BOTH sides, independent
			// of who won — an asymmetric rule would leave replicas with
			// equal vectors but diverged timestamps, which no further sync
			// round could ever repair.
			if cur.Created.Before(merged.Created) {
				merged.Created = cur.Created
			}
			if remote.Created.Before(merged.Created) {
				merged.Created = remote.Created
			}
			conflictInfo = &Conflict{
				ObjectID:    cur.ID,
				WinnerSite:  winner.Site,
				LoserSite:   loser.Site,
				LoserFields: cloneFields(loser.Fields),
			}
			return merged, nil
		}
	})
	if err != nil {
		return false, false, err
	}
	if stored == nil {
		return false, false, nil
	}
	s.tree.Update(stored.ID, stored.VV)
	if conflictInfo != nil {
		s.bump(func(st *SpaceStats) { st.Applied++; st.Conflicts++ })
		s.notify(Event{
			Kind: "conflict", Object: stored, Actor: "replica/" + remote.Site,
			At: s.clock.Now(), Conflict: conflictInfo,
		})
		return true, true, nil
	}
	s.bump(func(st *SpaceStats) { st.Applied++ })
	s.notify(Event{Kind: "apply", Object: stored, Actor: "replica/" + remote.Site, At: s.clock.Now()})
	return true, false, nil
}

// --- internals -----------------------------------------------------------

func (s *Space) notify(ev Event) {
	s.mu.RLock()
	subs := append([]subscription(nil), s.subs...)
	s.mu.RUnlock()
	for _, sub := range subs {
		if sub.schema == "" || (ev.Object != nil && sub.schema == ev.Object.Schema) {
			s.bump(func(st *SpaceStats) { st.Notifies++ })
			sub.fn(ev)
		}
	}
}

func (s *Space) deny() {
	s.bump(func(st *SpaceStats) { st.Denials++ })
}

func (s *Space) bump(fn func(*SpaceStats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}
