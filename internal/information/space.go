package information

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mocca/internal/access"
	"mocca/internal/id"
	"mocca/internal/vclock"
)

// Object is a shared information object.
type Object struct {
	ID      string
	Schema  string
	Owner   string
	Fields  map[string]string
	Version uint64
	Created time.Time
	Updated time.Time
}

// clone deep-copies the object.
func (o *Object) clone() *Object {
	out := *o
	out.Fields = cloneFields(o.Fields)
	return &out
}

// RelKind is an inter-object relationship, per the paper's "composition,
// dependencies".
type RelKind string

// Relationship kinds.
const (
	RelComposedOf  RelKind = "composed-of" // parent -> part
	RelDependsOn   RelKind = "depends-on"  // dependent -> dependency
	RelDerivedFrom RelKind = "derived-from"
)

// Errors of the space layer.
var (
	ErrUnknownObject = errors.New("information: unknown object")
	ErrDenied        = errors.New("information: access denied")
	ErrConflict      = errors.New("information: version conflict")
	ErrCycle         = errors.New("information: relationship cycle")
)

// Event notifies subscribers of a change.
type Event struct {
	Kind   string // "put", "update", "share", "relate"
	Object *Object
	Actor  string
	At     time.Time
}

// Space is the shared information space: guarded storage, relationships,
// schema conversion, and change notification.
type Space struct {
	registry *SchemaRegistry
	acl      *access.System
	clock    vclock.Clock
	ids      *id.Generator

	mu        sync.RWMutex
	objects   map[string]*Object
	relations map[string]map[RelKind][]string // from -> kind -> to ids
	subs      []subscription
	stats     SpaceStats
}

// SpaceStats counts space activity.
type SpaceStats struct {
	Puts     int64
	Updates  int64
	Reads    int64
	Denials  int64
	Notifies int64
}

type subscription struct {
	schema string // "" = all
	fn     func(Event)
}

// SpaceOption configures a Space.
type SpaceOption func(*Space)

// WithIDs sets the id generator.
func WithIDs(g *id.Generator) SpaceOption {
	return func(s *Space) { s.ids = g }
}

// NewSpace creates a space over the given schema registry and ACL system.
// A nil acl disables access control (everything allowed).
func NewSpace(registry *SchemaRegistry, acl *access.System, clock vclock.Clock, opts ...SpaceOption) *Space {
	s := &Space{
		registry:  registry,
		acl:       acl,
		clock:     clock,
		objects:   make(map[string]*Object),
		relations: make(map[string]map[RelKind][]string),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ids == nil {
		s.ids = id.New()
	}
	return s
}

// Registry exposes the schema registry.
func (s *Space) Registry() *SchemaRegistry { return s.registry }

// Stats returns a snapshot of the counters.
func (s *Space) Stats() SpaceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// resource names the guarded resource for an object id.
func resource(objID string) string { return "info/" + objID }

// can checks the ACL (nil ACL admits everything).
func (s *Space) can(principal string, op access.Op, objID string) bool {
	if s.acl == nil {
		return true
	}
	return s.acl.Can(principal, op, resource(objID))
}

// Put creates an object owned by actor, validating against its schema. The
// owner receives read/write/share grants on it.
func (s *Space) Put(actor, schemaName string, fields map[string]string) (*Object, error) {
	schema, err := s.registry.Schema(schemaName)
	if err != nil {
		return nil, err
	}
	if err := schema.Validate(fields); err != nil {
		return nil, err
	}
	now := s.clock.Now()
	obj := &Object{
		ID:      s.ids.Next("info"),
		Schema:  schema.Name,
		Owner:   actor,
		Fields:  cloneFields(fields),
		Version: 1,
		Created: now,
		Updated: now,
	}
	s.mu.Lock()
	s.objects[obj.ID] = obj
	s.stats.Puts++
	s.mu.Unlock()

	if s.acl != nil {
		s.acl.GrantPrincipal(actor, access.OpRead, resource(obj.ID))
		s.acl.GrantPrincipal(actor, access.OpWrite, resource(obj.ID))
		s.acl.GrantPrincipal(actor, access.OpShare, resource(obj.ID))
	}
	s.notify(Event{Kind: "put", Object: obj.clone(), Actor: actor, At: now})
	return obj.clone(), nil
}

// Get reads an object, enforcing OpRead.
func (s *Space) Get(actor, objID string) (*Object, error) {
	if !s.can(actor, access.OpRead, objID) {
		s.deny()
		return nil, fmt.Errorf("%w: %s read %s", ErrDenied, actor, objID)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[objID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, objID)
	}
	s.stats.Reads++
	return obj.clone(), nil
}

// GetAs reads an object converted into the requested schema — the
// cross-application sharing primitive.
func (s *Space) GetAs(actor, objID, schemaName string) (*Object, error) {
	obj, err := s.Get(actor, objID)
	if err != nil {
		return nil, err
	}
	if strings.EqualFold(obj.Schema, schemaName) {
		return obj, nil
	}
	fields, err := s.registry.Convert(obj.Fields, obj.Schema, schemaName)
	if err != nil {
		return nil, err
	}
	out := obj.clone()
	out.Schema = strings.ToLower(schemaName)
	out.Fields = fields
	return out, nil
}

// Update modifies fields with optimistic concurrency: expectedVersion must
// match or ErrConflict returns. Enforces OpWrite.
func (s *Space) Update(actor, objID string, expectedVersion uint64, fields map[string]string) (*Object, error) {
	if !s.can(actor, access.OpWrite, objID) {
		s.deny()
		return nil, fmt.Errorf("%w: %s write %s", ErrDenied, actor, objID)
	}
	s.mu.Lock()
	obj, ok := s.objects[objID]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, objID)
	}
	if obj.Version != expectedVersion {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: object at v%d, expected v%d", ErrConflict, obj.Version, expectedVersion)
	}
	schema, err := s.registry.Schema(obj.Schema)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	merged := cloneFields(obj.Fields)
	for k, v := range fields {
		if v == "" {
			delete(merged, k)
			continue
		}
		merged[k] = v
	}
	if err := schema.Validate(merged); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	obj.Fields = merged
	obj.Version++
	obj.Updated = s.clock.Now()
	s.stats.Updates++
	updated := obj.clone()
	s.mu.Unlock()

	s.notify(Event{Kind: "update", Object: updated, Actor: actor, At: updated.Updated})
	return updated, nil
}

// Share grants another principal read access (and optionally write),
// enforcing OpShare on the actor.
func (s *Space) Share(actor, objID, grantee string, writable bool) error {
	if !s.can(actor, access.OpShare, objID) {
		s.deny()
		return fmt.Errorf("%w: %s share %s", ErrDenied, actor, objID)
	}
	s.mu.RLock()
	obj, ok := s.objects[objID]
	var snapshot *Object
	if ok {
		snapshot = obj.clone()
	}
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, objID)
	}
	if s.acl != nil {
		s.acl.GrantPrincipal(grantee, access.OpRead, resource(objID))
		if writable {
			s.acl.GrantPrincipal(grantee, access.OpWrite, resource(objID))
		}
	}
	s.notify(Event{Kind: "share", Object: snapshot, Actor: actor, At: s.clock.Now()})
	return nil
}

// Relate records a typed relationship; composition and dependency must stay
// acyclic.
func (s *Space) Relate(from string, kind RelKind, to string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[from]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, from)
	}
	if _, ok := s.objects[to]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, to)
	}
	if s.reachableLocked(to, kind, from) || from == to {
		return fmt.Errorf("%w: %s -[%s]-> %s", ErrCycle, from, kind, to)
	}
	if s.relations[from] == nil {
		s.relations[from] = make(map[RelKind][]string)
	}
	for _, existing := range s.relations[from][kind] {
		if existing == to {
			return nil
		}
	}
	s.relations[from][kind] = append(s.relations[from][kind], to)
	return nil
}

// Related returns directly related object ids.
func (s *Space) Related(from string, kind RelKind) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]string(nil), s.relations[from][kind]...)
	sort.Strings(out)
	return out
}

// Dependents returns ids of objects that relate TO the given id over kind
// (e.g. everything that depends-on it).
func (s *Space) Dependents(to string, kind RelKind) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for from, kinds := range s.relations {
		for _, t := range kinds[kind] {
			if t == to {
				out = append(out, from)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Closure returns all objects transitively reachable from id over kind.
func (s *Space) Closure(from string, kind RelKind) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := append([]string(nil), s.relations[cur][kind]...)
		sort.Strings(next)
		for _, n := range next {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
				queue = append(queue, n)
			}
		}
	}
	return out
}

// reachableLocked reports whether target is reachable from start over kind.
func (s *Space) reachableLocked(start string, kind RelKind, target string) bool {
	seen := map[string]bool{}
	queue := []string{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == target {
			return true
		}
		if seen[cur] {
			continue
		}
		seen[cur] = true
		queue = append(queue, s.relations[cur][kind]...)
	}
	return false
}

// Query returns copies of objects of the given schema whose fields contain
// all the given key/value pairs (empty filter = all of that schema).
func (s *Space) Query(actor, schemaName string, filter map[string]string) ([]*Object, error) {
	s.mu.RLock()
	var candidates []*Object
	for _, obj := range s.objects {
		if !strings.EqualFold(obj.Schema, schemaName) {
			continue
		}
		match := true
		for k, v := range filter {
			if obj.Fields[k] != v {
				match = false
				break
			}
		}
		if match {
			candidates = append(candidates, obj.clone())
		}
	}
	s.mu.RUnlock()

	out := candidates[:0]
	for _, obj := range candidates {
		if s.can(actor, access.OpRead, obj.ID) {
			out = append(out, obj)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Subscribe registers fn for events on objects of the schema ("" = all).
// Callbacks run synchronously on the mutating goroutine.
func (s *Space) Subscribe(schemaName string, fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, subscription{schema: strings.ToLower(schemaName), fn: fn})
}

// Len returns the number of stored objects.
func (s *Space) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

func (s *Space) notify(ev Event) {
	s.mu.RLock()
	subs := append([]subscription(nil), s.subs...)
	s.mu.RUnlock()
	for _, sub := range subs {
		if sub.schema == "" || (ev.Object != nil && sub.schema == ev.Object.Schema) {
			s.mu.Lock()
			s.stats.Notifies++
			s.mu.Unlock()
			sub.fn(ev)
		}
	}
}

func (s *Space) deny() {
	s.mu.Lock()
	s.stats.Denials++
	s.mu.Unlock()
}
