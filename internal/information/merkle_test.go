package information

import (
	"fmt"
	"testing"
	"time"

	"mocca/internal/vclock"
)

// rebuildTree builds a fresh tree from scratch over the same entries —
// the recovery-equivalence oracle for the incremental maintenance.
func rebuildTree(entries map[string]vclock.Version) *DigestTree {
	t := NewDigestTree()
	for id, vv := range entries {
		t.Update(id, vv)
	}
	return t
}

func TestDigestTreeIncrementalMatchesRebuild(t *testing.T) {
	tree := NewDigestTree()
	state := make(map[string]vclock.Version)
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("info-%04d", i)
		vv := vclock.Version{"s0": uint64(i%3 + 1), "s1": uint64(i % 2)}
		tree.Update(id, vv)
		state[id] = vv.Clone()
	}
	// Mutate some, remove some.
	for i := 0; i < 500; i += 7 {
		id := fmt.Sprintf("info-%04d", i)
		vv := state[id].Clone().Tick("s1")
		tree.Update(id, vv)
		state[id] = vv
	}
	for i := 0; i < 500; i += 13 {
		id := fmt.Sprintf("info-%04d", i)
		tree.Remove(id)
		delete(state, id)
	}
	if got, want := tree.Count(), len(state); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if tree.Root() != rebuildTree(state).Root() {
		t.Fatal("incremental root diverged from rebuild")
	}
}

func TestDigestTreeOrderIndependence(t *testing.T) {
	a, b := NewDigestTree(), NewDigestTree()
	vvs := map[string]vclock.Version{
		"x": {"s0": 2}, "y": {"s1": 1}, "z": {"s0": 1, "s1": 3},
	}
	for _, id := range []string{"x", "y", "z"} {
		a.Update(id, vvs[id])
	}
	for _, id := range []string{"z", "x", "y"} {
		b.Update(id, vvs[id])
	}
	if a.Root() != b.Root() {
		t.Fatal("insertion order changed the root")
	}
	// A stale update (dominated vector) must not regress the tree.
	b.Update("x", vclock.Version{"s0": 1})
	if a.Root() != b.Root() {
		t.Fatal("dominated update regressed the root")
	}
	// Divergence is visible; re-convergence restores equality.
	b.Update("x", vclock.Version{"s0": 3})
	if a.Root() == b.Root() {
		t.Fatal("divergent trees compare equal")
	}
	a.Update("x", vclock.Version{"s0": 3})
	if a.Root() != b.Root() {
		t.Fatal("re-converged trees differ")
	}
}

func TestDigestTreeEmptyTreesAgree(t *testing.T) {
	if NewDigestTree().Root() != NewDigestTree().Root() {
		t.Fatal("empty roots differ")
	}
	tr := NewDigestTree()
	tr.Update("a", vclock.Version{"s0": 1})
	tr.Remove("a")
	if tr.Root() != NewDigestTree().Root() {
		t.Fatal("emptied tree differs from fresh tree")
	}
}

func TestDigestTreeDescentFindsDivergentLeaf(t *testing.T) {
	a, b := NewDigestTree(), NewDigestTree()
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("obj-%04d", i)
		a.Update(id, vclock.Version{"s0": 1})
		b.Update(id, vclock.Version{"s0": 1})
	}
	changed := "obj-0042"
	a.Update(changed, vclock.Version{"s0": 2})

	// Walk the mismatch from the root: exactly one child per level
	// differs, ending at the changed id's bucket.
	level, index := uint32(0), uint32(0)
	for int(level) < MerkleDepth {
		ca, cb := a.Children(level, index), b.Children(level, index)
		diff := -1
		for j := range ca {
			if ca[j] != cb[j] {
				if diff >= 0 {
					t.Fatalf("level %d: more than one divergent child", level)
				}
				diff = j
			}
		}
		if diff < 0 {
			t.Fatalf("level %d node %d: no divergent child under a root mismatch", level, index)
		}
		index = index*MerkleFanout + uint32(diff)
		level++
	}
	if index != MerkleBucket(changed) {
		t.Fatalf("descent ended at bucket %d, want %d", index, MerkleBucket(changed))
	}
	if _, ok := a.LeafDigest(index)[changed]; !ok {
		t.Fatal("leaf digest misses the changed id")
	}
}

func TestDigestTreeHighWater(t *testing.T) {
	tr := NewDigestTree()
	tr.Update("a", vclock.Version{"s0": 3})
	tr.Update("b", vclock.Version{"s0": 1, "s1": 5})
	hw := tr.HighWater()
	if hw["s0"] != 3 || hw["s1"] != 5 {
		t.Fatalf("hw = %v", hw)
	}
	ids := tr.NewerThanHW(map[string]uint64{"s0": 2, "s1": 5})
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("NewerThanHW = %v, want [a]", ids)
	}
	if got := tr.NewerThanHW(hw); len(got) != 0 {
		t.Fatalf("NewerThanHW(own hw) = %v, want none", got)
	}
}

func TestSpaceTreeFollowsCommitsAndRecovery(t *testing.T) {
	registry := NewSchemaRegistry()
	if err := registry.Register(Schema{Name: "doc", Fields: []Field{
		{Name: "title", Type: FieldText, Required: true},
	}}); err != nil {
		t.Fatal(err)
	}
	clk := vclock.NewSimulated(time.Unix(0, 0))
	a := NewSpace(registry, nil, clk, WithSite("s0"))
	b := NewSpace(registry, nil, clk, WithSite("s1"))

	obj, err := a.Put("ada", "doc", map[string]string{"title": "one"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tree().Root() == b.Tree().Root() {
		t.Fatal("write did not move the root")
	}
	if _, _, err := b.ApplyRemote(obj); err != nil {
		t.Fatal(err)
	}
	if a.Tree().Root() != b.Tree().Root() {
		t.Fatal("converged replicas disagree on the root")
	}

	// A Space opened over the same backend state rebuilds the same tree —
	// the recovery contract.
	reopened := NewSpace(registry, nil, clk, WithSite("s0"), WithBackend(backendOf(a)))
	if reopened.Tree().Root() != a.Tree().Root() {
		t.Fatal("rebuilt tree differs from the incremental one")
	}

	// Drop removes the entry from the tree.
	if _, err := a.Drop(obj.ID); err != nil {
		t.Fatal(err)
	}
	if a.Tree().Count() != 0 || a.Tree().Root() != NewDigestTree().Root() {
		t.Fatal("drop left tree state behind")
	}
}

// backendOf exposes a space's backend for the reopen test.
func backendOf(s *Space) Backend { return s.store }
