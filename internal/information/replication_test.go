package information

import (
	"testing"
	"time"

	"mocca/internal/id"
	"mocca/internal/vclock"
)

// twoReplicas builds two site replicas of one logical space: shared
// registry, no ACL (replication tests exercise merge policy, not guards).
func twoReplicas(t *testing.T) (*Space, *Space, *vclock.Simulated) {
	t.Helper()
	clk := vclock.NewSimulated(time.Date(1992, 6, 9, 9, 0, 0, 0, time.UTC))
	registry := NewSchemaRegistry()
	if err := registry.Register(Schema{Name: "doc", Fields: []Field{
		{Name: "title", Type: FieldText, Required: true},
		{Name: "body", Type: FieldText},
	}}); err != nil {
		t.Fatal(err)
	}
	ids := id.New()
	a := NewSpace(registry, nil, clk, WithSite("gmd"), WithIDs(ids))
	b := NewSpace(registry, nil, clk, WithSite("upc"), WithIDs(ids))
	return a, b, clk
}

// syncPair runs one bidirectional anti-entropy exchange directly against
// the space API (the replica package does the same over rpc).
func syncPair(t *testing.T, a, b *Space) {
	t.Helper()
	for _, obj := range b.NewerThan(a.Digest()) {
		if _, _, err := a.ApplyRemote(obj); err != nil {
			t.Fatal(err)
		}
	}
	for _, obj := range a.NewerThan(b.Digest()) {
		if _, _, err := b.ApplyRemote(obj); err != nil {
			t.Fatal(err)
		}
	}
}

func assertConverged(t *testing.T, a, b *Space, objID string) *Object {
	t.Helper()
	oa, err := a.Get("anyone", objID)
	if err != nil {
		t.Fatal(err)
	}
	ob, err := b.Get("anyone", objID)
	if err != nil {
		t.Fatal(err)
	}
	if oa.VV.Compare(ob.VV) != vclock.Equal {
		t.Fatalf("version vectors diverge: %v vs %v", oa.VV, ob.VV)
	}
	if oa.Version != ob.Version || oa.Site != ob.Site ||
		!oa.Updated.Equal(ob.Updated) || !oa.Created.Equal(ob.Created) {
		t.Fatalf("metadata diverges: %+v vs %+v", oa, ob)
	}
	if len(oa.Fields) != len(ob.Fields) {
		t.Fatalf("fields diverge: %v vs %v", oa.Fields, ob.Fields)
	}
	for k, v := range oa.Fields {
		if ob.Fields[k] != v {
			t.Fatalf("field %q diverges: %q vs %q", k, v, ob.Fields[k])
		}
	}
	return oa
}

func TestApplyRemoteAdoptsAndIgnores(t *testing.T) {
	a, b, _ := twoReplicas(t)
	obj, err := a.Put("prinz", "doc", map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	if obj.VV.Counter("gmd") != 1 || obj.Site != "gmd" {
		t.Fatalf("put metadata: %+v", obj)
	}

	// b adopts the unknown object.
	changed, conflict, err := b.ApplyRemote(obj)
	if err != nil || !changed || conflict {
		t.Fatalf("adopt: changed=%v conflict=%v err=%v", changed, conflict, err)
	}
	// Re-applying the same state is a no-op.
	changed, conflict, err = b.ApplyRemote(obj)
	if err != nil || changed || conflict {
		t.Fatalf("idempotent apply: changed=%v conflict=%v err=%v", changed, conflict, err)
	}

	// A newer update on a flows to b as a clean apply.
	upd, err := a.Update("prinz", obj.ID, obj.Version, map[string]string{"title": "v2"})
	if err != nil {
		t.Fatal(err)
	}
	changed, conflict, err = b.ApplyRemote(upd)
	if err != nil || !changed || conflict {
		t.Fatalf("newer apply: changed=%v conflict=%v err=%v", changed, conflict, err)
	}
	// The stale original no longer changes b.
	if changed, _, _ = b.ApplyRemote(obj); changed {
		t.Fatal("stale state must not regress the replica")
	}
	assertConverged(t, a, b, obj.ID)
}

func TestApplyRemoteConcurrentSiteOrderedLWW(t *testing.T) {
	a, b, _ := twoReplicas(t)
	obj, err := a.Put("prinz", "doc", map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	syncPair(t, a, b)

	var conflicts []Event
	a.Subscribe("", func(ev Event) {
		if ev.Kind == "conflict" {
			conflicts = append(conflicts, ev)
		}
	})

	// Concurrent updates at the same instant: site order breaks the tie,
	// and "upc" > "gmd".
	if _, err := a.Update("prinz", obj.ID, 1, map[string]string{"title": "gmd-edit"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Update("prinz", obj.ID, 1, map[string]string{"title": "upc-edit"}); err != nil {
		t.Fatal(err)
	}
	syncPair(t, a, b)
	syncPair(t, a, b) // a second round must be a no-op

	winner := assertConverged(t, a, b, obj.ID)
	if winner.Fields["title"] != "upc-edit" || winner.Site != "upc" {
		t.Fatalf("winner = %+v, want upc-edit by site order", winner)
	}
	if winner.VV.Counter("gmd") != 2 || winner.VV.Counter("upc") != 1 || winner.Version != 3 {
		t.Fatalf("merged history wrong: %+v", winner)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflict events on a = %d, want 1", len(conflicts))
	}
	c := conflicts[0].Conflict
	if c == nil || c.WinnerSite != "upc" || c.LoserSite != "gmd" || c.LoserFields["title"] != "gmd-edit" {
		t.Fatalf("conflict detail = %+v", c)
	}
	if st := a.Stats(); st.Conflicts != 1 || st.Applied == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestApplyRemoteConcurrentLaterWriterWins(t *testing.T) {
	a, b, clk := twoReplicas(t)
	obj, err := a.Put("prinz", "doc", map[string]string{"title": "draft"})
	if err != nil {
		t.Fatal(err)
	}
	syncPair(t, a, b)

	// upc writes first; gmd writes one second later. Despite the lower
	// site name, gmd wins on timestamp.
	if _, err := b.Update("prinz", obj.ID, 1, map[string]string{"title": "upc-edit"}); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	if _, err := a.Update("prinz", obj.ID, 1, map[string]string{"title": "gmd-edit"}); err != nil {
		t.Fatal(err)
	}
	syncPair(t, a, b)
	winner := assertConverged(t, a, b, obj.ID)
	if winner.Fields["title"] != "gmd-edit" || winner.Site != "gmd" {
		t.Fatalf("winner = %+v, want gmd-edit by timestamp", winner)
	}
}

func TestDigestAndNewerThan(t *testing.T) {
	a, b, _ := twoReplicas(t)
	o1, err := a.Put("prinz", "doc", map[string]string{"title": "one"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Put("prinz", "doc", map[string]string{"title": "two"}); err != nil {
		t.Fatal(err)
	}
	// b knows nothing: the whole space is the delta, sorted by id.
	delta := a.NewerThan(b.Digest())
	if len(delta) != 2 {
		t.Fatalf("delta = %d objects", len(delta))
	}
	if delta[0].ID >= delta[1].ID {
		t.Fatal("delta not sorted")
	}
	syncPair(t, a, b)
	if len(a.NewerThan(b.Digest())) != 0 || len(b.NewerThan(a.Digest())) != 0 {
		t.Fatal("converged replicas must exchange nothing")
	}
	// One more write makes exactly that object the delta.
	if _, err := a.Update("prinz", o1.ID, 1, map[string]string{"title": "one'"}); err != nil {
		t.Fatal(err)
	}
	delta = a.NewerThan(b.Digest())
	if len(delta) != 1 || delta[0].ID != o1.ID {
		t.Fatalf("delta = %+v", delta)
	}
}

// TestApplyRemoteConcurrentCreatedConverges covers replicas that Put the
// SAME object id independently (reachable when sites run separate seeded
// id generators, which emit identical id streams) at different times:
// after crossing applies — each side merging the other's original — the
// Created timestamp must converge to the minimum on both, regardless of
// which side won the field conflict.
func TestApplyRemoteConcurrentCreatedConverges(t *testing.T) {
	clk := vclock.NewSimulated(time.Date(1992, 6, 9, 9, 0, 0, 0, time.UTC))
	registry := NewSchemaRegistry()
	if err := registry.Register(Schema{Name: "doc", Fields: []Field{
		{Name: "title", Type: FieldText, Required: true},
	}}); err != nil {
		t.Fatal(err)
	}
	a := NewSpace(registry, nil, clk, WithSite("gmd"), WithIDs(id.New()))
	b := NewSpace(registry, nil, clk, WithSite("upc"), WithIDs(id.New()))

	oa, err := a.Put("prinz", "doc", map[string]string{"title": "from-gmd"})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	ob, err := b.Put("navarro", "doc", map[string]string{"title": "from-upc"})
	if err != nil {
		t.Fatal(err)
	}
	if oa.ID != ob.ID {
		t.Fatalf("independent generators diverged: %s vs %s", oa.ID, ob.ID)
	}

	// Crossing rounds: each side applies the other's ORIGINAL, so each
	// resolves the conflict locally with a different winner orientation.
	if _, conflict, err := a.ApplyRemote(ob); err != nil || !conflict {
		t.Fatalf("a apply: conflict=%v err=%v", conflict, err)
	}
	if _, conflict, err := b.ApplyRemote(oa); err != nil || !conflict {
		t.Fatalf("b apply: conflict=%v err=%v", conflict, err)
	}
	got := assertConverged(t, a, b, oa.ID)
	if !got.Created.Equal(oa.Created) {
		t.Fatalf("Created = %v, want the earlier instant %v", got.Created, oa.Created)
	}
	if got.Fields["title"] != "from-upc" {
		t.Fatalf("winner = %v, want later writer", got.Fields)
	}
}
