package org

import (
	"errors"
	"testing"

	"mocca/internal/directory"
	"mocca/internal/trader"
)

// newTunnelKB models the paper's §3 example: "the management of a large
// scale engineering project (e.g. building the Channel Tunnel)".
func newTunnelKB(t *testing.T) *KnowledgeBase {
	t.Helper()
	kb := NewKnowledgeBase()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(kb.AddObject(Object{ID: "tml", Kind: KindOrg, Name: "TransManche Link"}))
	must(kb.AddObject(Object{ID: "eurotunnel", Kind: KindOrg, Name: "Eurotunnel"}))
	must(kb.AddObject(Object{ID: "eng-uk", Kind: KindUnit, Name: "UK Engineering", Org: "tml"}))
	must(kb.AddObject(Object{ID: "eng-fr", Kind: KindUnit, Name: "FR Engineering", Org: "tml"}))
	must(kb.AddObject(Object{ID: "ada", Kind: KindPerson, Name: "Ada", Org: "tml"}))
	must(kb.AddObject(Object{ID: "ben", Kind: KindPerson, Name: "Ben", Org: "tml"}))
	must(kb.AddObject(Object{ID: "chief-engineer", Kind: KindRole, Name: "Chief Engineer", Org: "tml"}))
	must(kb.AddObject(Object{ID: "tunnel-project", Kind: KindProject, Name: "Channel Tunnel", Org: "tml"}))
	must(kb.AddObject(Object{ID: "tbm-1", Kind: KindResource, Name: "Boring Machine 1", Org: "tml"}))

	must(kb.Relate("eng-uk", RelPartOf, "tml"))
	must(kb.Relate("eng-fr", RelPartOf, "tml"))
	must(kb.Relate("ada", RelMemberOf, "eng-uk"))
	must(kb.Relate("ben", RelMemberOf, "eng-fr"))
	must(kb.Relate("ben", RelReportsTo, "ada"))
	must(kb.Relate("ada", RelFills, "chief-engineer"))
	must(kb.Relate("chief-engineer", RelResponsibleFor, "tunnel-project"))
	must(kb.Relate("tbm-1", RelAllocatedTo, "tunnel-project"))
	return kb
}

func TestObjectLifecycle(t *testing.T) {
	kb := newTunnelKB(t)
	o, err := kb.Object("ada")
	if err != nil {
		t.Fatal(err)
	}
	if o.Kind != KindPerson || o.Name != "Ada" {
		t.Fatalf("object = %+v", o)
	}
	// Returned object is a copy.
	o.Attrs.Add("tampered", "yes")
	again, _ := kb.Object("ada")
	if again.Attrs.Has("tampered", "") {
		t.Fatal("Object returned aliased storage")
	}
	if err := kb.AddObject(Object{ID: "ada", Kind: KindPerson}); !errors.Is(err, ErrObjectExists) {
		t.Fatalf("duplicate add: %v", err)
	}
	if _, err := kb.Object("ghost"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("read ghost: %v", err)
	}
}

func TestRelations(t *testing.T) {
	kb := newTunnelKB(t)
	if got := kb.Related("ada", RelFills); len(got) != 1 || got[0] != "chief-engineer" {
		t.Fatalf("Related(fills) = %v", got)
	}
	if got := kb.MembersOf("eng-uk"); len(got) != 1 || got[0] != "ada" {
		t.Fatalf("MembersOf = %v", got)
	}
	if err := kb.Relate("ada", RelMemberOf, "ghost"); !errors.Is(err, ErrBadRelation) {
		t.Fatalf("relate to ghost: %v", err)
	}
	// Idempotent.
	if err := kb.Relate("ada", RelFills, "chief-engineer"); err != nil {
		t.Fatal(err)
	}
	if got := kb.Related("ada", RelFills); len(got) != 1 {
		t.Fatalf("duplicate relation stored: %v", got)
	}
}

func TestUnrelate(t *testing.T) {
	kb := newTunnelKB(t)
	kb.Unrelate("ada", RelFills, "chief-engineer")
	if got := kb.RolesFilledBy("ada"); len(got) != 0 {
		t.Fatalf("after Unrelate: %v", got)
	}
}

func TestRemoveObjectCleansRelations(t *testing.T) {
	kb := newTunnelKB(t)
	if err := kb.RemoveObject("ada"); err != nil {
		t.Fatal(err)
	}
	if got := kb.RelatedInverse("chief-engineer", RelFills); len(got) != 0 {
		t.Fatalf("dangling relation to removed object: %v", got)
	}
	if got := kb.MembersOf("eng-uk"); len(got) != 0 {
		t.Fatalf("dangling membership: %v", got)
	}
}

func TestTransitiveClosure(t *testing.T) {
	kb := NewKnowledgeBase()
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := kb.AddObject(Object{ID: id, Kind: KindUnit}); err != nil {
			t.Fatal(err)
		}
	}
	_ = kb.Relate("a", RelPartOf, "b")
	_ = kb.Relate("b", RelPartOf, "c")
	_ = kb.Relate("c", RelPartOf, "d")
	got := kb.TransitiveClosure("a", RelPartOf)
	if len(got) != 3 || got[0] != "b" || got[2] != "d" {
		t.Fatalf("closure = %v", got)
	}
}

func TestPolicyCompatibility(t *testing.T) {
	kb := newTunnelKB(t)
	kb.SetPolicy("tml", "data-sharing", "open")
	kb.SetPolicy("eurotunnel", "data-sharing", "open")
	if !kb.Compatible("tml", "eurotunnel") {
		t.Fatal("matching policies reported incompatible")
	}
	kb.SetPolicy("eurotunnel", "data-sharing", "restricted")
	if kb.Compatible("tml", "eurotunnel") {
		t.Fatal("conflicting policies reported compatible")
	}
	// Keys only one side declares do not conflict.
	kb.SetPolicy("eurotunnel", "data-sharing", "open")
	kb.SetPolicy("eurotunnel", "security", "high")
	if !kb.Compatible("tml", "eurotunnel") {
		t.Fatal("one-sided policy key caused incompatibility")
	}
}

func TestRules(t *testing.T) {
	kb := newTunnelKB(t)
	kb.AddRule(MaxRolesRule{Max: 1})
	kb.AddRule(SingleAllocationRule{})
	kb.AddRule(RoleCoverageRule{})
	kb.AddRule(ReportingCycleRule{})

	if got := kb.CheckRules(); len(got) != 0 {
		t.Fatalf("clean KB reports violations: %v", got)
	}

	// Over-commit ada, double-allocate the TBM, orphan a role, and close
	// a reporting cycle.
	if err := kb.AddObject(Object{ID: "safety-officer", Kind: KindRole, Org: "tml"}); err != nil {
		t.Fatal(err)
	}
	if err := kb.AddObject(Object{ID: "auditor", Kind: KindRole, Org: "tml"}); err != nil {
		t.Fatal(err)
	}
	if err := kb.AddObject(Object{ID: "bridge-project", Kind: KindProject, Org: "tml"}); err != nil {
		t.Fatal(err)
	}
	_ = kb.Relate("ada", RelFills, "safety-officer")
	_ = kb.Relate("ada", RelFills, "auditor")
	_ = kb.Relate("tbm-1", RelAllocatedTo, "bridge-project")
	_ = kb.Relate("auditor", RelResponsibleFor, "bridge-project")
	kb.Unrelate("ada", RelFills, "auditor")
	_ = kb.Relate("ada", RelReportsTo, "ben") // ben already reports to ada

	violations := kb.CheckRules()
	byRule := map[string]int{}
	for _, v := range violations {
		byRule[v.Rule]++
	}
	if byRule["max-roles-1"] != 1 {
		t.Errorf("max-roles violations = %d, want 1 (%v)", byRule["max-roles-1"], violations)
	}
	if byRule["single-allocation"] != 1 {
		t.Errorf("single-allocation violations = %d, want 1", byRule["single-allocation"])
	}
	if byRule["role-coverage"] != 1 {
		t.Errorf("role-coverage violations = %d, want 1", byRule["role-coverage"])
	}
	if byRule["reporting-cycle"] != 2 {
		t.Errorf("reporting-cycle violations = %d, want 2 (both ada and ben)", byRule["reporting-cycle"])
	}
}

func TestTradingPolicyFromKB(t *testing.T) {
	kb := newTunnelKB(t)
	kb.SetPolicy("tml", "data-sharing", "open")
	kb.SetPolicy("eurotunnel", "data-sharing", "restricted")

	tr := trader.New()
	if err := tr.RegisterType("printing"); err != nil {
		t.Fatal(err)
	}
	tr.AddPolicy(TradingPolicy(kb))

	offers := []trader.Offer{
		{ID: "o-tml", ServiceType: "printing", Properties: directory.NewAttributes("org", "tml")},
		{ID: "o-euro", ServiceType: "printing", Properties: directory.NewAttributes("org", "eurotunnel")},
		{ID: "o-open", ServiceType: "printing"}, // unmodelled provider
	}
	for _, o := range offers {
		if err := tr.Export(o); err != nil {
			t.Fatal(err)
		}
	}

	// ada belongs to tml: sees tml's offer and the unmodelled one, but not
	// eurotunnel's (incompatible data-sharing policy).
	got, err := tr.Import(trader.ImportRequest{ServiceType: "printing", Importer: "ada"})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, o := range got {
		ids[o.ID] = true
	}
	if !ids["o-tml"] || !ids["o-open"] || ids["o-euro"] {
		t.Fatalf("ada sees %v", ids)
	}

	// An importer unknown to the KB sees only unmodelled providers.
	got, err = tr.Import(trader.ImportRequest{ServiceType: "printing", Importer: "stranger"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "o-open" {
		t.Fatalf("stranger sees %v", got)
	}
}

func TestExportToDirectory(t *testing.T) {
	kb := newTunnelKB(t)
	dit := directory.NewDIT()
	if err := ExportToDirectory(kb, dit); err != nil {
		t.Fatal(err)
	}
	// Organisation entry exists.
	if _, err := dit.Read(directory.MustParseDN("o=tml")); err != nil {
		t.Fatal(err)
	}
	// Person entry under its kind subtree.
	e, err := dit.Read(directory.MustParseDN("cn=ada,ou=person,o=tml"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Attrs.First("orgobjectid") != "ada" {
		t.Fatalf("entry attrs = %v", e.Attrs)
	}
	// Search by class finds people.
	found, err := dit.Search(directory.SearchRequest{
		Base:   directory.MustParseDN("o=tml"),
		Scope:  directory.ScopeSubtree,
		Filter: directory.MustParseFilter("(objectclass=person)"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 2 {
		t.Fatalf("found %d persons", len(found))
	}
	// Idempotent re-export.
	if err := ExportToDirectory(kb, dit); err != nil {
		t.Fatalf("re-export: %v", err)
	}
}
