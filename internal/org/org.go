// Package org implements the paper's Organisational Model: "the aim of the
// organisational model is to make explicit the sharing of organisational
// resources, policies and regulations. The model is constructed from a set
// of organisational objects (e.g. resources, projects, people, roles),
// organisational relations and rules."
//
// The central artefact is the KnowledgeBase — the "organisational knowledge
// base" that §6.1 proposes to associate with the ODP trader ("containing or
// dictating among other the trading policy"). The bridge in this package
// derives a trader admission policy from inter-organisational policy
// compatibility, and exports the knowledge base into the X.500 directory.
package org

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mocca/internal/directory"
)

// Kind classifies organisational objects, per the paper's enumeration.
type Kind string

// Organisational object kinds.
const (
	KindPerson   Kind = "person"
	KindRole     Kind = "role"
	KindResource Kind = "resource"
	KindProject  Kind = "project"
	KindUnit     Kind = "unit"         // organisational unit
	KindOrg      Kind = "organisation" // a whole enterprise
)

// Object is an organisational object.
type Object struct {
	ID    string
	Kind  Kind
	Name  string
	Org   string // owning organisation id ("" for the org object itself)
	Attrs directory.Attributes
}

// clone deep-copies the object.
func (o *Object) clone() *Object {
	out := *o
	if o.Attrs != nil {
		out.Attrs = o.Attrs.Clone()
	}
	return &out
}

// RelationKind names an organisational relation.
type RelationKind string

// Standard relations. Applications may add their own kinds freely.
const (
	RelMemberOf       RelationKind = "member-of"       // person -> unit/project/org
	RelReportsTo      RelationKind = "reports-to"      // person -> person
	RelFills          RelationKind = "fills"           // person -> role
	RelResponsibleFor RelationKind = "responsible-for" // role -> project/resource
	RelAllocatedTo    RelationKind = "allocated-to"    // resource -> project
	RelPartOf         RelationKind = "part-of"         // unit -> unit/org
)

// Relation is a directed, typed edge between two organisational objects.
type Relation struct {
	From string
	Kind RelationKind
	To   string
}

// Errors returned by the knowledge base.
var (
	ErrUnknownObject = errors.New("org: unknown object")
	ErrObjectExists  = errors.New("org: object already exists")
	ErrBadRelation   = errors.New("org: relation endpoint missing")
)

// KnowledgeBase stores organisational objects, relations and per-
// organisation policies. Safe for concurrent use.
type KnowledgeBase struct {
	mu        sync.RWMutex
	objects   map[string]*Object
	relations []Relation
	outIndex  map[string][]int // object id -> relation indices (as From)
	inIndex   map[string][]int // object id -> relation indices (as To)
	policies  map[string]map[string]string
	rules     []Rule
}

// NewKnowledgeBase creates an empty knowledge base.
func NewKnowledgeBase() *KnowledgeBase {
	return &KnowledgeBase{
		objects:  make(map[string]*Object),
		outIndex: make(map[string][]int),
		inIndex:  make(map[string][]int),
		policies: make(map[string]map[string]string),
	}
}

// AddObject inserts an organisational object.
func (kb *KnowledgeBase) AddObject(o Object) error {
	if o.ID == "" {
		return fmt.Errorf("org: object needs an id")
	}
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if _, ok := kb.objects[o.ID]; ok {
		return fmt.Errorf("%w: %q", ErrObjectExists, o.ID)
	}
	if o.Attrs == nil {
		o.Attrs = make(directory.Attributes)
	}
	kb.objects[o.ID] = o.clone()
	return nil
}

// Object returns a copy of the object.
func (kb *KnowledgeBase) Object(id string) (*Object, error) {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	o, ok := kb.objects[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	return o.clone(), nil
}

// RemoveObject deletes an object and its incident relations.
func (kb *KnowledgeBase) RemoveObject(id string) error {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if _, ok := kb.objects[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	delete(kb.objects, id)
	keep := kb.relations[:0]
	for _, r := range kb.relations {
		if r.From != id && r.To != id {
			keep = append(keep, r)
		}
	}
	kb.relations = keep
	kb.reindexLocked()
	return nil
}

// Relate adds a typed relation; both endpoints must exist.
func (kb *KnowledgeBase) Relate(from string, kind RelationKind, to string) error {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if _, ok := kb.objects[from]; !ok {
		return fmt.Errorf("%w: from %q", ErrBadRelation, from)
	}
	if _, ok := kb.objects[to]; !ok {
		return fmt.Errorf("%w: to %q", ErrBadRelation, to)
	}
	for _, r := range kb.relations {
		if r.From == from && r.Kind == kind && r.To == to {
			return nil // idempotent
		}
	}
	kb.relations = append(kb.relations, Relation{From: from, Kind: kind, To: to})
	idx := len(kb.relations) - 1
	kb.outIndex[from] = append(kb.outIndex[from], idx)
	kb.inIndex[to] = append(kb.inIndex[to], idx)
	return nil
}

// Unrelate removes a relation.
func (kb *KnowledgeBase) Unrelate(from string, kind RelationKind, to string) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	keep := kb.relations[:0]
	for _, r := range kb.relations {
		if r.From == from && r.Kind == kind && r.To == to {
			continue
		}
		keep = append(keep, r)
	}
	kb.relations = keep
	kb.reindexLocked()
}

func (kb *KnowledgeBase) reindexLocked() {
	kb.outIndex = make(map[string][]int, len(kb.objects))
	kb.inIndex = make(map[string][]int, len(kb.objects))
	for i, r := range kb.relations {
		kb.outIndex[r.From] = append(kb.outIndex[r.From], i)
		kb.inIndex[r.To] = append(kb.inIndex[r.To], i)
	}
}

// Related returns ids of objects reachable from id over one hop of kind.
func (kb *KnowledgeBase) Related(id string, kind RelationKind) []string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	var out []string
	for _, idx := range kb.outIndex[id] {
		r := kb.relations[idx]
		if r.Kind == kind {
			out = append(out, r.To)
		}
	}
	sort.Strings(out)
	return out
}

// RelatedInverse returns ids of objects that point at id over kind.
func (kb *KnowledgeBase) RelatedInverse(id string, kind RelationKind) []string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	var out []string
	for _, idx := range kb.inIndex[id] {
		r := kb.relations[idx]
		if r.Kind == kind {
			out = append(out, r.From)
		}
	}
	sort.Strings(out)
	return out
}

// TransitiveClosure walks kind edges from id (e.g. the unit hierarchy via
// part-of), returning every reachable id in BFS order.
func (kb *KnowledgeBase) TransitiveClosure(id string, kind RelationKind) []string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	var out []string
	seen := map[string]bool{id: true}
	queue := []string{id}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := make([]string, 0, 4)
		for _, idx := range kb.outIndex[cur] {
			r := kb.relations[idx]
			if r.Kind == kind && !seen[r.To] {
				seen[r.To] = true
				next = append(next, r.To)
			}
		}
		sort.Strings(next)
		out = append(out, next...)
		queue = append(queue, next...)
	}
	return out
}

// ObjectsByKind returns copies of all objects of the kind, sorted by id.
func (kb *KnowledgeBase) ObjectsByKind(kind Kind) []*Object {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	var out []*Object
	for _, o := range kb.objects {
		if o.Kind == kind {
			out = append(out, o.clone())
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of objects.
func (kb *KnowledgeBase) Len() int {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return len(kb.objects)
}

// SetPolicy records a policy attribute of an organisation, e.g.
// ("gmd", "data-sharing", "open").
func (kb *KnowledgeBase) SetPolicy(orgID, key, value string) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	if kb.policies[orgID] == nil {
		kb.policies[orgID] = make(map[string]string)
	}
	kb.policies[orgID][strings.ToLower(key)] = strings.ToLower(value)
}

// Policy returns an organisation's policy attribute ("" if unset).
func (kb *KnowledgeBase) Policy(orgID, key string) string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	return kb.policies[orgID][strings.ToLower(key)]
}

// Compatible decides inter-organisational policy compatibility: two
// organisations interact when no policy key both declare has conflicting
// values. This realises the paper's "sometimes, interaction is not
// possible due to incompatible policies".
func (kb *KnowledgeBase) Compatible(orgA, orgB string) bool {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	a, b := kb.policies[orgA], kb.policies[orgB]
	for k, va := range a {
		if vb, ok := b[k]; ok && va != vb {
			return false
		}
	}
	return true
}

// OrgOf returns the organisation an object belongs to: its Org field, or
// the object itself when it is an organisation.
func (kb *KnowledgeBase) OrgOf(id string) string {
	kb.mu.RLock()
	defer kb.mu.RUnlock()
	o, ok := kb.objects[id]
	if !ok {
		return ""
	}
	if o.Kind == KindOrg {
		return o.ID
	}
	return o.Org
}

// MembersOf returns the person ids that are member-of the given target.
func (kb *KnowledgeBase) MembersOf(target string) []string {
	return kb.RelatedInverse(target, RelMemberOf)
}

// RolesFilledBy returns the role ids the person fills.
func (kb *KnowledgeBase) RolesFilledBy(person string) []string {
	return kb.Related(person, RelFills)
}
