package org

import (
	"fmt"
	"sort"
)

// Violation reports a rule breach.
type Violation struct {
	Rule    string
	Subject string
	Detail  string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (%s)", v.Rule, v.Subject, v.Detail)
}

// Rule is an organisational regulation checked against the knowledge base.
// The paper warns against rules that are "too rigid and procedural"; rules
// here are advisory — Check reports violations, it never blocks operations.
// (The paper's aside applies: "employees do often not behave as it is
// prescribed in the organisational handbook. Some people are convinced that
// this is the only reason why large companies survive.")
type Rule interface {
	Name() string
	Check(kb *KnowledgeBase) []Violation
}

// AddRule installs a rule for CheckRules.
func (kb *KnowledgeBase) AddRule(r Rule) {
	kb.mu.Lock()
	defer kb.mu.Unlock()
	kb.rules = append(kb.rules, r)
}

// CheckRules evaluates every installed rule, returning all violations
// sorted by (rule, subject).
func (kb *KnowledgeBase) CheckRules() []Violation {
	kb.mu.RLock()
	rules := append([]Rule(nil), kb.rules...)
	kb.mu.RUnlock()
	var out []Violation
	for _, r := range rules {
		out = append(out, r.Check(kb)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Subject < out[j].Subject
	})
	return out
}

// RuleFunc adapts a function to Rule.
type RuleFunc struct {
	ID string
	Fn func(kb *KnowledgeBase) []Violation
}

// Name implements Rule.
func (r RuleFunc) Name() string { return r.ID }

// Check implements Rule.
func (r RuleFunc) Check(kb *KnowledgeBase) []Violation { return r.Fn(kb) }

// MaxRolesRule flags persons filling more than Max roles — the classic
// over-commitment regulation.
type MaxRolesRule struct {
	Max int
}

// Name implements Rule.
func (r MaxRolesRule) Name() string { return fmt.Sprintf("max-roles-%d", r.Max) }

// Check implements Rule.
func (r MaxRolesRule) Check(kb *KnowledgeBase) []Violation {
	var out []Violation
	for _, p := range kb.ObjectsByKind(KindPerson) {
		roles := kb.RolesFilledBy(p.ID)
		if len(roles) > r.Max {
			out = append(out, Violation{
				Rule:    r.Name(),
				Subject: p.ID,
				Detail:  fmt.Sprintf("fills %d roles, max %d", len(roles), r.Max),
			})
		}
	}
	return out
}

// SingleAllocationRule flags resources allocated to more than one project
// simultaneously.
type SingleAllocationRule struct{}

// Name implements Rule.
func (SingleAllocationRule) Name() string { return "single-allocation" }

// Check implements Rule.
func (SingleAllocationRule) Check(kb *KnowledgeBase) []Violation {
	var out []Violation
	for _, res := range kb.ObjectsByKind(KindResource) {
		projects := kb.Related(res.ID, RelAllocatedTo)
		if len(projects) > 1 {
			out = append(out, Violation{
				Rule:    "single-allocation",
				Subject: res.ID,
				Detail:  fmt.Sprintf("allocated to %d projects", len(projects)),
			})
		}
	}
	return out
}

// RoleCoverageRule flags roles responsible for something that nobody fills
// — work with no owner.
type RoleCoverageRule struct{}

// Name implements Rule.
func (RoleCoverageRule) Name() string { return "role-coverage" }

// Check implements Rule.
func (RoleCoverageRule) Check(kb *KnowledgeBase) []Violation {
	var out []Violation
	for _, role := range kb.ObjectsByKind(KindRole) {
		if len(kb.Related(role.ID, RelResponsibleFor)) == 0 {
			continue // role carries no responsibility; vacancy is fine
		}
		if len(kb.RelatedInverse(role.ID, RelFills)) == 0 {
			out = append(out, Violation{
				Rule:    "role-coverage",
				Subject: role.ID,
				Detail:  "responsible role is unfilled",
			})
		}
	}
	return out
}

// ReportingCycleRule flags cycles in reports-to (a person transitively
// reporting to themselves).
type ReportingCycleRule struct{}

// Name implements Rule.
func (ReportingCycleRule) Name() string { return "reporting-cycle" }

// Check implements Rule.
func (ReportingCycleRule) Check(kb *KnowledgeBase) []Violation {
	var out []Violation
	for _, p := range kb.ObjectsByKind(KindPerson) {
		// The closure never re-lists its start node, so test reachability
		// of p from each direct manager instead.
		cyclic := false
		for _, mgr := range kb.Related(p.ID, RelReportsTo) {
			if mgr == p.ID {
				cyclic = true
				break
			}
			for _, reachable := range kb.TransitiveClosure(mgr, RelReportsTo) {
				if reachable == p.ID {
					cyclic = true
					break
				}
			}
			if cyclic {
				break
			}
		}
		if cyclic {
			out = append(out, Violation{
				Rule:    "reporting-cycle",
				Subject: p.ID,
				Detail:  "transitively reports to self",
			})
		}
	}
	return out
}
