package org

import (
	"fmt"

	"mocca/internal/directory"
	"mocca/internal/trader"
)

// TradingPolicy derives a trader admission policy from the knowledge base,
// realising §6.1: "the organisational knowledge base considered in the
// Mocca environment will be associated to the trader, containing or
// dictating among other the trading policy."
//
// The derived policy admits an offer when the importer's organisation and
// the provider's organisation have compatible policies. Offers whose
// provider is not modelled in the knowledge base are admitted (the paper:
// open systems must tolerate non-conforming participants). The importer is
// resolved as an organisational object id; unknown importers only see
// offers from unmodelled providers.
func TradingPolicy(kb *KnowledgeBase) trader.Policy {
	return trader.PolicyFunc{
		ID: "org-compatibility",
		Fn: func(importer string, offer trader.Offer) bool {
			providerOrg := offer.Properties.First("org")
			if providerOrg == "" {
				return true // unmodelled provider: admit
			}
			importerOrg := kb.OrgOf(importer)
			if importerOrg == "" {
				// Unknown importer: admit only unmodelled providers (not
				// reached — providerOrg != "" here), so deny.
				return false
			}
			return kb.Compatible(importerOrg, providerOrg)
		},
	}
}

// ExportToDirectory publishes the knowledge base into an X.500 DIT under
// per-organisation subtrees (o=<org>/ou=<kind>/cn=<id>), fulfilling the
// requirement of "smooth integration and utilization of standard
// information repositories".
func ExportToDirectory(kb *KnowledgeBase, dit *directory.DIT) error {
	orgs := kb.ObjectsByKind(KindOrg)
	for _, o := range orgs {
		dn := directory.DN{}.Child("o", o.ID)
		attrs := o.Attrs.Clone()
		attrs.Replace("objectclass", directory.ClassOrganization)
		attrs.Replace("cn", o.Name)
		if err := addIfAbsent(dit, dn, attrs); err != nil {
			return err
		}
	}
	kinds := []Kind{KindPerson, KindRole, KindResource, KindProject, KindUnit}
	for _, kind := range kinds {
		for _, o := range kb.ObjectsByKind(kind) {
			if o.Org == "" {
				continue // not placed under an organisation
			}
			parent := directory.DN{}.Child("o", o.Org).Child("ou", string(kind))
			parentAttrs := directory.NewAttributes("objectclass", directory.ClassOrgUnit, "ou", string(kind))
			if err := addIfAbsent(dit, parent, parentAttrs); err != nil {
				return err
			}
			dn := parent.Child("cn", o.ID)
			attrs := o.Attrs.Clone()
			attrs.Replace("objectclass", objectClassFor(kind))
			attrs.Replace("cn", o.Name)
			attrs.Replace("orgobjectid", o.ID)
			if err := addIfAbsent(dit, dn, attrs); err != nil {
				return err
			}
		}
	}
	return nil
}

func addIfAbsent(dit *directory.DIT, dn directory.DN, attrs directory.Attributes) error {
	err := dit.Add(dn, attrs)
	if err == nil {
		return nil
	}
	if _, readErr := dit.Read(dn); readErr == nil {
		return nil // already present
	}
	return fmt.Errorf("org: export %s: %w", dn, err)
}

func objectClassFor(kind Kind) string {
	switch kind {
	case KindPerson:
		return directory.ClassPerson
	case KindRole:
		return directory.ClassRole
	case KindResource:
		return directory.ClassResource
	case KindProject, KindUnit:
		return directory.ClassOrgUnit
	default:
		return "top"
	}
}
