// Package rpc implements the invocation layer of the simulated ODP
// infrastructure: interrogations (request/reply) and announcements (one-way)
// between computational objects, carried over netsim in wire envelopes.
//
// The ODP computational viewpoint names exactly these two interaction
// kinds; higher layers (trader, directory, mhs, the CSCW environment) are
// all expressed in terms of them.
//
// Because the substrate may run under a simulated clock, the primary call
// API is asynchronous (Go with a completion callback). A blocking Call is
// provided for use under the real clock or when another goroutine drives
// the simulation.
//
// Transport is the engineering-viewpoint channel of internal/channel: the
// endpoint never touches the network node directly — every request, reply
// and announcement goes through the channel stack (stubs, binder, protocol
// object), where interceptors observe all traffic.
package rpc

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"mocca/internal/channel"
	"mocca/internal/id"
	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// Envelope kinds used on the wire.
const (
	kindRequest  = "rpc.req"
	kindReply    = "rpc.rep"
	kindAnnounce = "rpc.ann"
)

// Errors surfaced to callers.
var (
	ErrTimeout       = errors.New("rpc: call timed out")
	ErrNoSuchMethod  = errors.New("rpc: no such method")
	ErrEndpointReuse = errors.New("rpc: method already registered")
)

// RemoteError is an application error returned by the remote handler.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

// Request is an inbound invocation as seen by a handler. Trace is the
// live trace context at the handler boundary: the serve span's context
// when the endpoint has a tracer, otherwise the context the request
// envelope carried (zero if untraced). Handlers propagate it into
// downstream calls via CallTrace and into their own spans as the
// parent.
type Request struct {
	From   netsim.Address
	Method string
	Body   []byte
	Trace  wire.TraceContext
}

// Handler services an invocation. Returning an error sends a RemoteError to
// the caller. For announcements the returned body is discarded.
type Handler func(req Request) ([]byte, error)

// AsyncHandler services an invocation that completes later: the handler
// must call reply exactly once (possibly from a different event). Handlers
// that fan out to other services over the network MUST use this form —
// blocking inside a Handler stalls the event loop under a simulated clock.
type AsyncHandler func(req Request, reply func(body []byte, err error))

// Interceptor wraps inbound handlers (logging, access checks, metering).
type Interceptor func(next Handler) Handler

// Result is the outcome of an asynchronous call.
type Result struct {
	Body []byte
	Err  error
}

// Decode unmarshals the JSON reply body into v. It propagates the call
// error and rejects empty bodies, so callbacks need exactly one check.
func (r Result) Decode(v any) error {
	if r.Err != nil {
		return r.Err
	}
	if len(r.Body) == 0 {
		return errors.New("rpc: empty reply body")
	}
	return wire.DecodeBody(r.Body, v)
}

// Stats counts endpoint activity.
type Stats struct {
	CallsSent     int64
	CallsServed   int64
	Announcements int64
	Timeouts      int64
	RemoteErrors  int64
}

// Option configures an Endpoint.
type Option func(*Endpoint)

// WithTimeout sets the default per-call timeout. Zero keeps the 2s default.
func WithTimeout(d time.Duration) Option {
	return func(e *Endpoint) { e.timeout = d }
}

// WithInterceptor appends a server-side interceptor; interceptors run in
// registration order, outermost first.
func WithInterceptor(i Interceptor) Option {
	return func(e *Endpoint) { e.interceptors = append(e.interceptors, i) }
}

// WithIDs sets the identifier generator (for deterministic correlation ids).
func WithIDs(g *id.Generator) Option {
	return func(e *Endpoint) { e.ids = g }
}

// WithChannel passes options through to the endpoint's channel stack
// (interceptors, observers, transparency declarations).
func WithChannel(opts ...channel.Option) Option {
	return func(e *Endpoint) { e.chOpts = append(e.chOpts, opts...) }
}

// WithTelemetry attaches the deployment telemetry plane: traced calls
// record client spans (each retry attempt becomes its own child span),
// served requests record server spans, and the trace context propagates
// through the wire envelope on requests, replies and announcements.
func WithTelemetry(tel *observe.Telemetry) Option {
	return func(e *Endpoint) {
		if tel != nil {
			e.tracer = tel.Tracer
		}
	}
}

// Endpoint binds RPC behaviour to a network node: it can both serve methods
// and invoke remote ones. All traffic flows through the endpoint's channel
// stack.
type Endpoint struct {
	ch     *channel.Stack
	clock  vclock.Clock
	ids    *id.Generator
	tracer *observe.Tracer

	timeout      time.Duration
	interceptors []Interceptor
	chOpts       []channel.Option

	mu           sync.Mutex
	methods      map[string]Handler
	asyncMethods map[string]AsyncHandler
	pending      map[string]*pendingCall
	stats        Stats
	closed       bool

	// layerMu guards layerState separately from mu so LayerValue init
	// functions may call back into the endpoint (e.g. Register).
	layerMu    sync.Mutex
	layerState map[string]any
}

type pendingCall struct {
	done  func(Result)
	timer vclock.Timer
	span  observe.ActiveSpan // the attempt's client span, if traced
}

// NewEndpoint attaches an endpoint to the node by building a channel stack
// over it and installing the endpoint as the stack's receiver. One
// endpoint per node.
func NewEndpoint(node *netsim.Node, clock vclock.Clock, opts ...Option) *Endpoint {
	e := &Endpoint{
		clock:        clock,
		timeout:      2 * time.Second,
		methods:      make(map[string]Handler),
		asyncMethods: make(map[string]AsyncHandler),
		pending:      make(map[string]*pendingCall),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.ids == nil {
		e.ids = id.New()
	}
	e.ch = channel.New(node, e.chOpts...)
	e.ch.Handle(e.onEnvelope)
	return e
}

// Addr returns the underlying node address.
func (e *Endpoint) Addr() netsim.Address { return e.ch.Addr() }

// Channel exposes the endpoint's channel stack (per-channel stats,
// explicit rebinding after migration/failure).
func (e *Endpoint) Channel() *channel.Stack { return e.ch }

// LayerValue returns per-endpoint state owned by a higher layer, creating
// it with init on first use. It exists so layers that multiplex several
// logical sessions onto one endpoint (e.g. rtc's event demultiplexer) can
// anchor their state to the endpoint's lifetime instead of a package-level
// registry.
func (e *Endpoint) LayerValue(key string, init func() any) any {
	e.layerMu.Lock()
	defer e.layerMu.Unlock()
	if e.layerState == nil {
		e.layerState = make(map[string]any)
	}
	v, ok := e.layerState[key]
	if !ok {
		v = init()
		e.layerState[key] = v
	}
	return v
}

// Register installs a handler for a method name.
func (e *Endpoint) Register(method string, h Handler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.methods[method]; ok {
		return fmt.Errorf("%w: %q", ErrEndpointReuse, method)
	}
	if _, ok := e.asyncMethods[method]; ok {
		return fmt.Errorf("%w: %q", ErrEndpointReuse, method)
	}
	e.methods[method] = h
	return nil
}

// RegisterAsync installs an asynchronous handler for a method name.
func (e *Endpoint) RegisterAsync(method string, h AsyncHandler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.methods[method]; ok {
		return fmt.Errorf("%w: %q", ErrEndpointReuse, method)
	}
	if _, ok := e.asyncMethods[method]; ok {
		return fmt.Errorf("%w: %q", ErrEndpointReuse, method)
	}
	e.asyncMethods[method] = h
	return nil
}

// MustRegisterAsync is RegisterAsync panicking on error.
func (e *Endpoint) MustRegisterAsync(method string, h AsyncHandler) {
	if err := e.RegisterAsync(method, h); err != nil {
		panic(err)
	}
}

// MustRegister is Register panicking on error.
func (e *Endpoint) MustRegister(method string, h Handler) {
	if err := e.Register(method, h); err != nil {
		panic(err)
	}
}

// Stats returns a snapshot of the endpoint counters.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close cancels all pending calls with ErrTimeout and stops accepting work.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pending := e.pending
	e.pending = make(map[string]*pendingCall)
	e.mu.Unlock()
	for _, pc := range pending {
		pc.timer.Stop()
		pc.span.EndStatus("closed")
		pc.done(Result{Err: ErrTimeout})
	}
}

// CallOption adjusts a single invocation.
type CallOption func(*callSettings)

type callSettings struct {
	timeout time.Duration
	retries int
	backoff []time.Duration
	onRetry func(attempt int)
	tries   int               // attempts already made
	trace   wire.TraceContext // parent context for the call's spans
}

// CallTimeout overrides the endpoint default timeout for one call.
func CallTimeout(d time.Duration) CallOption {
	return func(s *callSettings) { s.timeout = d }
}

// CallRetries retries a timed-out call up to n additional times,
// immediately.
func CallRetries(n int) CallOption {
	return func(s *callSettings) { s.retries = n }
}

// CallBackoff retries a timed-out call once per schedule entry, waiting
// the entry's duration before each retry — the store-and-forward retry
// discipline layers like mhs used to hand-roll.
func CallBackoff(schedule ...time.Duration) CallOption {
	return func(s *callSettings) {
		s.backoff = schedule
		if s.retries < len(schedule) {
			s.retries = len(schedule)
		}
	}
}

// CallOnRetry registers a callback invoked before each retry attempt
// (attempt counts from 1), letting callers keep their own retry
// accounting.
func CallOnRetry(fn func(attempt int)) CallOption {
	return func(s *callSettings) { s.onRetry = fn }
}

// CallTrace links the call into a trace: the request envelope carries a
// context parented under tc, and — when the endpoint has a tracer —
// each attempt (the first and every retry) records its own client span.
// A zero tc is a no-op, so callers can pass their request's Trace field
// unconditionally.
func CallTrace(tc wire.TraceContext) CallOption {
	return func(s *callSettings) { s.trace = tc }
}

// Go invokes method on the remote address asynchronously; done is called
// exactly once with the outcome. Safe to call from within handlers.
func (e *Endpoint) Go(to netsim.Address, method string, body []byte, done func(Result), opts ...CallOption) {
	settings := callSettings{timeout: e.timeout}
	for _, opt := range opts {
		opt(&settings)
	}
	e.attempt(to, method, body, done, settings)
}

func (e *Endpoint) attempt(to netsim.Address, method string, body []byte, done func(Result), s callSettings) {
	// Each attempt — the first and every retry — records its own client
	// span under the caller's context, so a trace shows the retry
	// schedule, not just the surviving attempt.
	var span observe.ActiveSpan
	callCtx := s.trace
	if !s.trace.IsZero() && e.tracer.On() {
		span = e.tracer.StartChild("rpc.call:"+method, string(e.Addr()), s.trace)
		span.SetAttr("peer", string(to))
		if s.tries > 0 {
			span.SetAttr("attempt", strconv.Itoa(s.tries+1))
		}
		callCtx = span.Context()
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		span.EndStatus("closed")
		done(Result{Err: ErrTimeout})
		return
	}
	corr := e.ids.Next("call")
	e.stats.CallsSent++
	pc := &pendingCall{done: done, span: span}
	pc.timer = e.clock.AfterFunc(s.timeout, func() {
		e.expire(corr, to, method, body, done, s)
	})
	e.pending[corr] = pc
	e.mu.Unlock()

	env := wire.NewEnvelope(kindRequest, corr, body)
	env.SetHeader("method", method)
	env.Trace = callCtx
	if err := e.ch.Send(to, env); err != nil {
		pc, ok := e.takePending(corr)
		if !ok {
			return
		}
		pc.timer.Stop()
		pc.span.EndStatus("senderr")
		// A transient local failure (node down, interceptor veto) consumes
		// the same retry budget as a timeout: the condition may clear
		// before the schedule runs out. A deterministic one (the envelope
		// violates wire size limits) can never succeed — fail now instead
		// of burning the whole backoff schedule on it.
		if permanentSendError(err) {
			done(Result{Err: err})
			return
		}
		e.retryOrFail(to, method, body, done, s, err)
	}
}

// permanentSendError reports whether a local send failure is deterministic:
// the same envelope will fail the same way on every attempt, so retrying
// is pure waste. Today that is exactly the wire marshalling limits — an
// oversize body, header or method name is a property of the request, not
// of the network.
func permanentSendError(err error) bool {
	return errors.Is(err, wire.ErrOversize)
}

// takePending removes and returns the pending call for corr; exactly one
// of the completion paths (reply, timeout, send failure, Close) wins it.
func (e *Endpoint) takePending(corr string) (*pendingCall, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pc, ok := e.pending[corr]
	if ok {
		delete(e.pending, corr)
	}
	return pc, ok
}

// expire handles a call timeout, retrying if budget remains.
func (e *Endpoint) expire(corr string, to netsim.Address, method string, body []byte, done func(Result), s callSettings) {
	pc, ok := e.takePending(corr)
	if !ok {
		return // reply won the race
	}
	pc.span.EndStatus("timeout")
	e.mu.Lock()
	e.stats.Timeouts++
	e.mu.Unlock()
	e.retryOrFail(to, method, body, done, s,
		fmt.Errorf("%w: %s on %s", ErrTimeout, method, to))
}

// retryOrFail re-attempts a failed call — immediately, or after the
// configured backoff delay — and completes it with cause once the budget
// is spent.
func (e *Endpoint) retryOrFail(to netsim.Address, method string, body []byte, done func(Result), s callSettings, cause error) {
	if s.retries <= 0 {
		done(Result{Err: cause})
		return
	}
	s.retries--
	var delay time.Duration
	if len(s.backoff) > 0 {
		idx := s.tries
		if idx >= len(s.backoff) {
			idx = len(s.backoff) - 1
		}
		delay = s.backoff[idx]
	}
	s.tries++
	if s.onRetry != nil {
		s.onRetry(s.tries)
	}
	if delay > 0 {
		e.clock.AfterFunc(delay, func() {
			e.attempt(to, method, body, done, s)
		})
		return
	}
	e.attempt(to, method, body, done, s)
}

// complete resolves a pending call if still outstanding.
func (e *Endpoint) complete(corr string, r Result) {
	pc, ok := e.takePending(corr)
	if !ok {
		return
	}
	if _, isRemote := r.Err.(*RemoteError); isRemote {
		e.mu.Lock()
		e.stats.RemoteErrors++
		e.mu.Unlock()
	}
	pc.timer.Stop()
	if r.Err != nil {
		pc.span.EndStatus("error")
	} else {
		pc.span.End()
	}
	pc.done(r)
}

// Call is the blocking form of Go. Under a simulated clock the caller must
// not be the goroutine driving the clock.
func (e *Endpoint) Call(to netsim.Address, method string, body []byte, opts ...CallOption) ([]byte, error) {
	ch := make(chan Result, 1)
	e.Go(to, method, body, func(r Result) { ch <- r }, opts...)
	r := <-ch
	return r.Body, r.Err
}

// Announce sends a one-way invocation: no reply, no timeout, no
// outcome. CallTrace is the only option that applies; it links the
// announcement into a trace with an instantaneous span.
func (e *Endpoint) Announce(to netsim.Address, method string, body []byte, opts ...CallOption) error {
	var s callSettings
	for _, opt := range opts {
		opt(&s)
	}
	env := wire.NewEnvelope(kindAnnounce, "", body)
	env.SetHeader("method", method)
	if !s.trace.IsZero() {
		env.Trace = s.trace
		if e.tracer.On() {
			sp := e.tracer.StartChild("rpc.ann:"+method, string(e.Addr()), s.trace)
			sp.SetAttr("peer", string(to))
			env.Trace = sp.Context()
			defer sp.End()
		}
	}
	e.mu.Lock()
	e.stats.Announcements++
	e.mu.Unlock()
	return e.ch.Send(to, env)
}

// AnnounceJSON sends a one-way invocation with a JSON-encoded body.
func (e *Endpoint) AnnounceJSON(to netsim.Address, method string, v any, opts ...CallOption) error {
	body, err := wire.EncodeBody(v)
	if err != nil {
		return err
	}
	return e.Announce(to, method, body, opts...)
}

// onEnvelope dispatches envelopes delivered by the channel stack.
func (e *Endpoint) onEnvelope(from netsim.Address, env *wire.Envelope) {
	switch env.Kind {
	case kindRequest:
		e.serve(from, env, true)
	case kindAnnounce:
		e.serve(from, env, false)
	case kindReply:
		e.onReply(env)
	}
}

// serve runs the registered handler and, for interrogations, replies.
func (e *Endpoint) serve(from netsim.Address, env *wire.Envelope, reply bool) {
	method, _ := env.Header("method")
	e.mu.Lock()
	h, ok := e.methods[method]
	ah, aok := e.asyncMethods[method]
	interceptors := e.interceptors
	e.stats.CallsServed++
	e.mu.Unlock()

	req := Request{From: from, Method: method, Body: env.Body, Trace: env.Trace}
	var ssp observe.ActiveSpan
	if !env.Trace.IsZero() && e.tracer.On() {
		ssp = e.tracer.StartChild("rpc.serve:"+method, string(e.Addr()), env.Trace)
		ssp.SetAttr("peer", string(from))
		// Continuations inside the handler parent under the serve span.
		req.Trace = ssp.Context()
	}
	sendReply := func(body []byte, herr error) {
		status := ""
		if herr != nil {
			status = "error"
		}
		ssp.EndStatus(status)
		if !reply {
			return
		}
		rep := wire.NewEnvelope(kindReply, env.Corr, body)
		rep.SetHeader("method", method)
		if herr != nil {
			rep.SetHeader("error", herr.Error())
		}
		// The reply carries the serve span's context so the returning
		// frame stays inside the trace.
		rep.Trace = req.Trace
		// Best effort: if the reply cannot be sent the caller times out.
		_ = e.ch.Send(from, rep)
	}

	switch {
	case aok:
		// Async path: interceptors wrap a synthetic handler boundary is
		// not meaningful here; async handlers receive the raw request and
		// own the reply.
		ah(req, sendReply)
		if !reply {
			// Announcements never call sendReply; close the serve span at
			// the dispatch boundary.
			ssp.End()
		}
	case ok:
		wrapped := h
		for i := len(interceptors) - 1; i >= 0; i-- {
			wrapped = interceptors[i](wrapped)
		}
		body, herr := wrapped(req)
		sendReply(body, herr)
	default:
		sendReply(nil, fmt.Errorf("%w: %q", ErrNoSuchMethod, method))
	}
}

// onReply resolves the matching pending call.
func (e *Endpoint) onReply(env *wire.Envelope) {
	if msg, ok := env.Header("error"); ok {
		method, _ := env.Header("method")
		e.complete(env.Corr, Result{Err: &RemoteError{Method: method, Msg: msg}})
		return
	}
	e.complete(env.Corr, Result{Body: env.Body})
}

// CallJSON invokes method encoding req as JSON and decoding the reply into
// resp (which may be nil to discard).
func (e *Endpoint) CallJSON(to netsim.Address, method string, req, resp any, opts ...CallOption) error {
	body, err := wire.EncodeBody(req)
	if err != nil {
		return err
	}
	out, err := e.Call(to, method, body, opts...)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return wire.DecodeBody(out, resp)
}

// GoJSON is the asynchronous form of CallJSON; decode is deferred to the
// caller via the raw Result.
func (e *Endpoint) GoJSON(to netsim.Address, method string, req any, done func(Result), opts ...CallOption) {
	body, err := wire.EncodeBody(req)
	if err != nil {
		done(Result{Err: err})
		return
	}
	e.Go(to, method, body, done, opts...)
}

// HandleJSON adapts a typed handler into a Handler. The adapter decodes the
// request body into a fresh Req and encodes the returned value as JSON.
func HandleJSON[Req any, Resp any](f func(from netsim.Address, req Req) (Resp, error)) Handler {
	return func(r Request) ([]byte, error) {
		var req Req
		if len(r.Body) > 0 {
			if err := wire.DecodeBody(r.Body, &req); err != nil {
				return nil, err
			}
		}
		resp, err := f(r.From, req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeBody(resp)
	}
}

// HandleJSONCtx is HandleJSON for handlers that continue the request's
// trace — the handler receives the live trace context alongside the
// decoded request, for tagging objects and parenting downstream spans.
func HandleJSONCtx[Req any, Resp any](f func(from netsim.Address, tc wire.TraceContext, req Req) (Resp, error)) Handler {
	return func(r Request) ([]byte, error) {
		var req Req
		if len(r.Body) > 0 {
			if err := wire.DecodeBody(r.Body, &req); err != nil {
				return nil, err
			}
		}
		resp, err := f(r.From, r.Trace, req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeBody(resp)
	}
}
