// Package rpc implements the invocation layer of the simulated ODP
// infrastructure: interrogations (request/reply) and announcements (one-way)
// between computational objects, carried over netsim in wire envelopes.
//
// The ODP computational viewpoint names exactly these two interaction
// kinds; higher layers (trader, directory, mhs, the CSCW environment) are
// all expressed in terms of them.
//
// Because the substrate may run under a simulated clock, the primary call
// API is asynchronous (Go with a completion callback). A blocking Call is
// provided for use under the real clock or when another goroutine drives
// the simulation.
package rpc

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mocca/internal/id"
	"mocca/internal/netsim"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// Envelope kinds used on the wire.
const (
	kindRequest  = "rpc.req"
	kindReply    = "rpc.rep"
	kindAnnounce = "rpc.ann"
)

// Errors surfaced to callers.
var (
	ErrTimeout       = errors.New("rpc: call timed out")
	ErrNoSuchMethod  = errors.New("rpc: no such method")
	ErrEndpointReuse = errors.New("rpc: method already registered")
)

// RemoteError is an application error returned by the remote handler.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

// Request is an inbound invocation as seen by a handler.
type Request struct {
	From   netsim.Address
	Method string
	Body   []byte
}

// Handler services an invocation. Returning an error sends a RemoteError to
// the caller. For announcements the returned body is discarded.
type Handler func(req Request) ([]byte, error)

// AsyncHandler services an invocation that completes later: the handler
// must call reply exactly once (possibly from a different event). Handlers
// that fan out to other services over the network MUST use this form —
// blocking inside a Handler stalls the event loop under a simulated clock.
type AsyncHandler func(req Request, reply func(body []byte, err error))

// Interceptor wraps inbound handlers (logging, access checks, metering).
type Interceptor func(next Handler) Handler

// Result is the outcome of an asynchronous call.
type Result struct {
	Body []byte
	Err  error
}

// Stats counts endpoint activity.
type Stats struct {
	CallsSent     int64
	CallsServed   int64
	Announcements int64
	Timeouts      int64
	RemoteErrors  int64
}

// Option configures an Endpoint.
type Option func(*Endpoint)

// WithTimeout sets the default per-call timeout. Zero keeps the 2s default.
func WithTimeout(d time.Duration) Option {
	return func(e *Endpoint) { e.timeout = d }
}

// WithInterceptor appends a server-side interceptor; interceptors run in
// registration order, outermost first.
func WithInterceptor(i Interceptor) Option {
	return func(e *Endpoint) { e.interceptors = append(e.interceptors, i) }
}

// WithIDs sets the identifier generator (for deterministic correlation ids).
func WithIDs(g *id.Generator) Option {
	return func(e *Endpoint) { e.ids = g }
}

// Endpoint binds RPC behaviour to a network node: it can both serve methods
// and invoke remote ones.
type Endpoint struct {
	node  *netsim.Node
	clock vclock.Clock
	ids   *id.Generator

	timeout      time.Duration
	interceptors []Interceptor

	mu           sync.Mutex
	methods      map[string]Handler
	asyncMethods map[string]AsyncHandler
	pending      map[string]*pendingCall
	stats        Stats
	closed       bool
}

type pendingCall struct {
	done  func(Result)
	timer vclock.Timer
}

// NewEndpoint attaches an endpoint to the node and installs its network
// handler. One endpoint per node.
func NewEndpoint(node *netsim.Node, clock vclock.Clock, opts ...Option) *Endpoint {
	e := &Endpoint{
		node:         node,
		clock:        clock,
		timeout:      2 * time.Second,
		methods:      make(map[string]Handler),
		asyncMethods: make(map[string]AsyncHandler),
		pending:      make(map[string]*pendingCall),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.ids == nil {
		e.ids = id.New()
	}
	node.Handle(e.onMessage)
	return e
}

// Addr returns the underlying node address.
func (e *Endpoint) Addr() netsim.Address { return e.node.Addr() }

// Register installs a handler for a method name.
func (e *Endpoint) Register(method string, h Handler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.methods[method]; ok {
		return fmt.Errorf("%w: %q", ErrEndpointReuse, method)
	}
	if _, ok := e.asyncMethods[method]; ok {
		return fmt.Errorf("%w: %q", ErrEndpointReuse, method)
	}
	e.methods[method] = h
	return nil
}

// RegisterAsync installs an asynchronous handler for a method name.
func (e *Endpoint) RegisterAsync(method string, h AsyncHandler) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.methods[method]; ok {
		return fmt.Errorf("%w: %q", ErrEndpointReuse, method)
	}
	if _, ok := e.asyncMethods[method]; ok {
		return fmt.Errorf("%w: %q", ErrEndpointReuse, method)
	}
	e.asyncMethods[method] = h
	return nil
}

// MustRegisterAsync is RegisterAsync panicking on error.
func (e *Endpoint) MustRegisterAsync(method string, h AsyncHandler) {
	if err := e.RegisterAsync(method, h); err != nil {
		panic(err)
	}
}

// MustRegister is Register panicking on error.
func (e *Endpoint) MustRegister(method string, h Handler) {
	if err := e.Register(method, h); err != nil {
		panic(err)
	}
}

// Stats returns a snapshot of the endpoint counters.
func (e *Endpoint) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Close cancels all pending calls with ErrTimeout and stops accepting work.
func (e *Endpoint) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	pending := e.pending
	e.pending = make(map[string]*pendingCall)
	e.mu.Unlock()
	for _, pc := range pending {
		pc.timer.Stop()
		pc.done(Result{Err: ErrTimeout})
	}
}

// CallOption adjusts a single invocation.
type CallOption func(*callSettings)

type callSettings struct {
	timeout time.Duration
	retries int
}

// CallTimeout overrides the endpoint default timeout for one call.
func CallTimeout(d time.Duration) CallOption {
	return func(s *callSettings) { s.timeout = d }
}

// CallRetries retries a timed-out call up to n additional times.
func CallRetries(n int) CallOption {
	return func(s *callSettings) { s.retries = n }
}

// Go invokes method on the remote address asynchronously; done is called
// exactly once with the outcome. Safe to call from within handlers.
func (e *Endpoint) Go(to netsim.Address, method string, body []byte, done func(Result), opts ...CallOption) {
	settings := callSettings{timeout: e.timeout}
	for _, opt := range opts {
		opt(&settings)
	}
	e.attempt(to, method, body, done, settings)
}

func (e *Endpoint) attempt(to netsim.Address, method string, body []byte, done func(Result), s callSettings) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		done(Result{Err: ErrTimeout})
		return
	}
	corr := e.ids.Next("call")
	e.stats.CallsSent++
	pc := &pendingCall{done: done}
	pc.timer = e.clock.AfterFunc(s.timeout, func() {
		e.expire(corr, to, method, body, done, s)
	})
	e.pending[corr] = pc
	e.mu.Unlock()

	env := wire.NewEnvelope(kindRequest, corr, body)
	env.SetHeader("method", method)
	data, err := wire.Marshal(env)
	if err != nil {
		e.complete(corr, Result{Err: err})
		return
	}
	if err := e.node.Send(netsim.Message{To: to, Kind: kindRequest, Payload: data}); err != nil {
		e.complete(corr, Result{Err: err})
	}
}

// expire handles a call timeout, retrying if budget remains.
func (e *Endpoint) expire(corr string, to netsim.Address, method string, body []byte, done func(Result), s callSettings) {
	e.mu.Lock()
	_, ok := e.pending[corr]
	if !ok {
		e.mu.Unlock()
		return // reply won the race
	}
	delete(e.pending, corr)
	e.stats.Timeouts++
	retry := s.retries > 0
	e.mu.Unlock()
	if retry {
		s.retries--
		e.attempt(to, method, body, done, s)
		return
	}
	done(Result{Err: fmt.Errorf("%w: %s on %s", ErrTimeout, method, to)})
}

// complete resolves a pending call if still outstanding.
func (e *Endpoint) complete(corr string, r Result) {
	e.mu.Lock()
	pc, ok := e.pending[corr]
	if ok {
		delete(e.pending, corr)
		if _, isRemote := r.Err.(*RemoteError); isRemote {
			e.stats.RemoteErrors++
		}
	}
	e.mu.Unlock()
	if !ok {
		return
	}
	pc.timer.Stop()
	pc.done(r)
}

// Call is the blocking form of Go. Under a simulated clock the caller must
// not be the goroutine driving the clock.
func (e *Endpoint) Call(to netsim.Address, method string, body []byte, opts ...CallOption) ([]byte, error) {
	ch := make(chan Result, 1)
	e.Go(to, method, body, func(r Result) { ch <- r }, opts...)
	r := <-ch
	return r.Body, r.Err
}

// Announce sends a one-way invocation: no reply, no timeout, no outcome.
func (e *Endpoint) Announce(to netsim.Address, method string, body []byte) error {
	env := wire.NewEnvelope(kindAnnounce, "", body)
	env.SetHeader("method", method)
	data, err := wire.Marshal(env)
	if err != nil {
		return err
	}
	e.mu.Lock()
	e.stats.Announcements++
	e.mu.Unlock()
	return e.node.Send(netsim.Message{To: to, Kind: kindAnnounce, Payload: data})
}

// onMessage dispatches inbound network traffic.
func (e *Endpoint) onMessage(msg netsim.Message) {
	env, err := wire.Unmarshal(msg.Payload)
	if err != nil {
		return // drop undecodable traffic, as a real stack would
	}
	switch env.Kind {
	case kindRequest:
		e.serve(msg.From, env, true)
	case kindAnnounce:
		e.serve(msg.From, env, false)
	case kindReply:
		e.onReply(env)
	}
}

// serve runs the registered handler and, for interrogations, replies.
func (e *Endpoint) serve(from netsim.Address, env *wire.Envelope, reply bool) {
	method, _ := env.Header("method")
	e.mu.Lock()
	h, ok := e.methods[method]
	ah, aok := e.asyncMethods[method]
	interceptors := e.interceptors
	e.stats.CallsServed++
	e.mu.Unlock()

	req := Request{From: from, Method: method, Body: env.Body}
	sendReply := func(body []byte, herr error) {
		if !reply {
			return
		}
		rep := wire.NewEnvelope(kindReply, env.Corr, body)
		rep.SetHeader("method", method)
		if herr != nil {
			rep.SetHeader("error", herr.Error())
		}
		data, err := wire.Marshal(rep)
		if err != nil {
			return
		}
		// Best effort: if the reply cannot be sent the caller times out.
		_ = e.node.Send(netsim.Message{To: from, Kind: kindReply, Payload: data})
	}

	switch {
	case aok:
		// Async path: interceptors wrap a synthetic handler boundary is
		// not meaningful here; async handlers receive the raw request and
		// own the reply.
		ah(req, sendReply)
	case ok:
		wrapped := h
		for i := len(interceptors) - 1; i >= 0; i-- {
			wrapped = interceptors[i](wrapped)
		}
		body, herr := wrapped(req)
		sendReply(body, herr)
	default:
		sendReply(nil, fmt.Errorf("%w: %q", ErrNoSuchMethod, method))
	}
}

// onReply resolves the matching pending call.
func (e *Endpoint) onReply(env *wire.Envelope) {
	if msg, ok := env.Header("error"); ok {
		method, _ := env.Header("method")
		e.complete(env.Corr, Result{Err: &RemoteError{Method: method, Msg: msg}})
		return
	}
	e.complete(env.Corr, Result{Body: env.Body})
}

// CallJSON invokes method encoding req as JSON and decoding the reply into
// resp (which may be nil to discard).
func (e *Endpoint) CallJSON(to netsim.Address, method string, req, resp any, opts ...CallOption) error {
	body, err := wire.EncodeBody(req)
	if err != nil {
		return err
	}
	out, err := e.Call(to, method, body, opts...)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return wire.DecodeBody(out, resp)
}

// GoJSON is the asynchronous form of CallJSON; decode is deferred to the
// caller via the raw Result.
func (e *Endpoint) GoJSON(to netsim.Address, method string, req any, done func(Result), opts ...CallOption) {
	body, err := wire.EncodeBody(req)
	if err != nil {
		done(Result{Err: err})
		return
	}
	e.Go(to, method, body, done, opts...)
}

// HandleJSON adapts a typed handler into a Handler. The adapter decodes the
// request body into a fresh Req and encodes the returned value as JSON.
func HandleJSON[Req any, Resp any](f func(from netsim.Address, req Req) (Resp, error)) Handler {
	return func(r Request) ([]byte, error) {
		var req Req
		if len(r.Body) > 0 {
			if err := wire.DecodeBody(r.Body, &req); err != nil {
				return nil, err
			}
		}
		resp, err := f(r.From, req)
		if err != nil {
			return nil, err
		}
		return wire.EncodeBody(resp)
	}
}
