package rpc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mocca/internal/channel"
	"mocca/internal/netsim"
	"mocca/internal/wire"
)

func TestCallBackoffSpacing(t *testing.T) {
	f := newFixture(t)
	f.b.MustRegister("echo", func(r Request) ([]byte, error) { return r.Body, nil })
	f.net.Partition([]netsim.Address{"a"}, []netsim.Address{"b"})

	var retries []int
	var got Result
	done := false
	f.a.Go("b", "echo", []byte("x"), func(r Result) { got = r; done = true },
		CallTimeout(time.Second),
		CallBackoff(2*time.Second, 10*time.Second),
		CallOnRetry(func(n int) { retries = append(retries, n) }))

	// t=1s: first timeout; retry waits until t=3s.
	f.clk.Advance(2500 * time.Millisecond)
	if len(retries) != 1 {
		t.Fatalf("retries after 2.5s = %v, want 1", retries)
	}
	if done {
		t.Fatal("completed while first backoff pending")
	}
	// Heal before the second retry (t=3s attempt times out at t=4s, next
	// retry at t=14s) so the final attempt succeeds.
	f.clk.Advance(2 * time.Second) // t=4.5s: second timeout recorded
	f.net.Heal()
	f.clk.RunUntilIdle()
	if !done || got.Err != nil {
		t.Fatalf("call after heal: done=%v err=%v", done, got.Err)
	}
	if len(retries) != 2 || retries[0] != 1 || retries[1] != 2 {
		t.Fatalf("retries = %v", retries)
	}
}

func TestCallBackoffExhausted(t *testing.T) {
	f := newFixture(t)
	f.net.Partition([]netsim.Address{"a"}, []netsim.Address{"b"})
	var got Result
	f.a.Go("b", "echo", nil, func(r Result) { got = r },
		CallTimeout(time.Second), CallBackoff(time.Second))
	f.clk.RunUntilIdle()
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", got.Err)
	}
	if st := f.a.Stats(); st.Timeouts != 2 {
		t.Fatalf("Timeouts = %d, want 2 (initial + 1 backoff retry)", st.Timeouts)
	}
}

// TestSendFailureConsumesRetryBudget: a local transmission error (source
// node down when the attempt fires) must burn a retry instead of failing
// the call outright, so the call survives the node recovering mid-schedule.
func TestSendFailureConsumesRetryBudget(t *testing.T) {
	f := newFixture(t)
	f.b.MustRegister("echo", func(r Request) ([]byte, error) { return r.Body, nil })
	nodeA, _ := f.net.Node("a")
	nodeA.SetDown(true)

	var got Result
	done := false
	f.a.Go("b", "echo", []byte("x"), func(r Result) { got = r; done = true },
		CallTimeout(time.Second), CallBackoff(2*time.Second, 2*time.Second))

	// First attempt fails locally (node down) and schedules a retry at
	// t=2s; recover before it fires.
	f.clk.Advance(time.Second)
	if done {
		t.Fatalf("call failed without consuming retry budget: %v", got.Err)
	}
	nodeA.SetDown(false)
	f.clk.RunUntilIdle()
	if !done || got.Err != nil {
		t.Fatalf("call after recovery: done=%v err=%v", done, got.Err)
	}
	if string(got.Body) != "x" {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestResultDecode(t *testing.T) {
	type payload struct {
		N int `json:"n"`
	}
	b, err := wire.EncodeBody(payload{N: 7})
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := (Result{Body: b}).Decode(&out); err != nil || out.N != 7 {
		t.Fatalf("decode = %+v, %v", out, err)
	}
	if err := (Result{Err: ErrTimeout}).Decode(&out); !errors.Is(err, ErrTimeout) {
		t.Fatalf("call error not propagated: %v", err)
	}
	if err := (Result{}).Decode(&out); err == nil {
		t.Fatal("empty body accepted")
	}
}

// TestAllTrafficTraversesChannel registers a counting interceptor on both
// endpoints' channel stacks and checks that every wire message of a full
// interrogation (request + reply) and an announcement is observed — the
// acceptance criterion that interceptors see 100% of traffic.
func TestAllTrafficTraversesChannel(t *testing.T) {
	outbound, inbound := 0, 0
	count := channel.WithInterceptor(func(fr *channel.Frame) error {
		switch fr.Dir {
		case channel.Outbound:
			outbound++
		case channel.Inbound:
			inbound++
		}
		return nil
	})
	f := newFixture(t, WithChannel(count))
	f.b.MustRegister("echo", func(r Request) ([]byte, error) { return r.Body, nil })

	var got Result
	f.a.Go("b", "echo", []byte("x"), func(r Result) { got = r })
	f.clk.RunUntilIdle()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if err := f.a.Announce("b", "notify", nil); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()

	// request + reply + announce = 3 wire messages, each seen once
	// outbound (sender stack) and once inbound (receiver stack).
	if outbound != 3 || inbound != 3 {
		t.Fatalf("interceptor saw %d outbound / %d inbound, want 3/3", outbound, inbound)
	}
	ns := f.net.Stats()
	if ns.Sent != 3 || ns.Delivered != 3 {
		t.Fatalf("network stats = %+v", ns)
	}
}

// A deterministic local send failure — here a method name violating the
// wire size limit — must short-circuit the retry/backoff schedule: the
// same envelope fails identically on every attempt, so a call that can
// never succeed must not burn simulated hours walking the schedule.
func TestPermanentSendErrorShortCircuitsBackoff(t *testing.T) {
	f := newFixture(t)
	oversize := strings.Repeat("m", 1<<16) // method header exceeds maxStringLen

	var retries []int
	var got Result
	done := false
	f.a.Go("b", oversize, nil, func(r Result) { got = r; done = true },
		CallTimeout(time.Second),
		CallBackoff(2*time.Second, 10*time.Second, 60*time.Second),
		CallOnRetry(func(n int) { retries = append(retries, n) }))

	// The failure is synchronous: no timeout, no backoff timer, no retry.
	if !done {
		t.Fatal("oversize call did not complete immediately")
	}
	if !errors.Is(got.Err, wire.ErrOversize) {
		t.Fatalf("err = %v, want wire.ErrOversize", got.Err)
	}
	if len(retries) != 0 {
		t.Fatalf("retried %v times; permanent errors must not retry", retries)
	}
	if pending := f.clk.Pending(); pending != 0 {
		t.Fatalf("%d timers left armed by a dead-on-arrival call", pending)
	}
	if st := f.a.Stats(); st.Timeouts != 0 {
		t.Fatalf("Timeouts = %d, want 0", st.Timeouts)
	}

	// Transient failures keep the old behaviour: the full schedule runs.
	f.net.Partition([]netsim.Address{"a"}, []netsim.Address{"b"})
	retries, done = nil, false
	f.a.Go("b", "echo", nil, func(r Result) { done = true },
		CallTimeout(time.Second), CallBackoff(time.Second, time.Second),
		CallOnRetry(func(n int) { retries = append(retries, n) }))
	f.clk.RunUntilIdle()
	if !done || len(retries) != 2 {
		t.Fatalf("transient failure: done=%v retries=%v, want full schedule", done, retries)
	}
}
