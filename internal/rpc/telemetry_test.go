package rpc

import (
	"errors"
	"testing"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// TestCallTracePropagatesAndParents: a traced call produces a client
// span at the caller, a serve span at the callee parented under it, and
// the handler sees the live context in Request.Trace.
func TestCallTracePropagatesAndParents(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(3))
	tel := observe.New(9, clk.Now)
	a := NewEndpoint(net.MustAddNode("a"), clk, WithTelemetry(tel))
	b := NewEndpoint(net.MustAddNode("b"), clk, WithTelemetry(tel))

	var handlerCtx wire.TraceContext
	b.MustRegister("echo", func(r Request) ([]byte, error) {
		handlerCtx = r.Trace
		return r.Body, nil
	})

	root := tel.Tracer.StartRoot("op", "a")
	rootCtx := root.Context()
	var got Result
	a.Go("b", "echo", []byte("hi"), func(r Result) { got = r }, CallTrace(rootCtx))
	clk.RunUntilIdle()
	root.End()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if handlerCtx.IsZero() || handlerCtx.TraceID != rootCtx.TraceID {
		t.Fatalf("handler context = %+v, want trace %x", handlerCtx, rootCtx.TraceID)
	}

	var call, serve *observe.Span
	for _, sp := range tel.Tracer.Spans() {
		sp := sp
		switch sp.Name {
		case "rpc.call:echo":
			call = &sp
		case "rpc.serve:echo":
			serve = &sp
		}
	}
	if call == nil || serve == nil {
		t.Fatalf("missing spans: call=%v serve=%v", call, serve)
	}
	if call.Parent != rootCtx.SpanID {
		t.Fatalf("call span parent = %x, want root %x", call.Parent, rootCtx.SpanID)
	}
	if serve.Parent != call.SpanID {
		t.Fatalf("serve span parent = %x, want call %x", serve.Parent, call.SpanID)
	}
	if serve.Site != "b" || call.Site != "a" {
		t.Fatalf("span sites: call=%s serve=%s", call.Site, serve.Site)
	}
	// The serve span context is what the handler saw.
	if handlerCtx.SpanID != serve.SpanID {
		t.Fatalf("handler saw %x, serve span is %x", handlerCtx.SpanID, serve.SpanID)
	}
}

// TestRetriesBecomeChildSpans: with a partitioned peer, every retry
// attempt records its own client span (status timeout), all siblings
// under the caller's context.
func TestRetriesBecomeChildSpans(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(3))
	tel := observe.New(9, clk.Now)
	a := NewEndpoint(net.MustAddNode("a"), clk, WithTelemetry(tel))
	NewEndpoint(net.MustAddNode("b"), clk, WithTelemetry(tel))
	net.Partition([]netsim.Address{"a"}, []netsim.Address{"b"})

	root := tel.Tracer.StartRoot("op", "a")
	rootCtx := root.Context()
	var got Result
	a.Go("b", "ping", nil, func(r Result) { got = r },
		CallTrace(rootCtx), CallTimeout(100*time.Millisecond), CallRetries(2))
	clk.RunUntilIdle()
	root.End()
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want timeout", got.Err)
	}

	var attempts []observe.Span
	for _, sp := range tel.Tracer.Spans() {
		if sp.Name == "rpc.call:ping" {
			attempts = append(attempts, sp)
		}
	}
	if len(attempts) != 3 {
		t.Fatalf("got %d attempt spans, want 3 (1 + 2 retries)", len(attempts))
	}
	for i, sp := range attempts {
		if sp.Parent != rootCtx.SpanID {
			t.Fatalf("attempt %d parent = %x, want root", i, sp.Parent)
		}
		if sp.Status != "timeout" {
			t.Fatalf("attempt %d status = %q, want timeout", i, sp.Status)
		}
	}
}

// TestTracedPeerInteropsWithUntraced is the mixed-deployment
// compatibility check (wire forward/backward compat, satellite): a peer
// without telemetry serves traced requests, and its traced counterpart
// handles the untraced peer's version-1 envelopes — both directions
// complete normally.
func TestTracedPeerInteropsWithUntraced(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(3))
	tel := observe.New(9, clk.Now)
	traced := NewEndpoint(net.MustAddNode("a"), clk, WithTelemetry(tel))
	plain := NewEndpoint(net.MustAddNode("b"), clk) // no telemetry at all

	var plainSawCtx wire.TraceContext
	plain.MustRegister("echo", func(r Request) ([]byte, error) {
		plainSawCtx = r.Trace // envelope context passes through untouched
		return r.Body, nil
	})
	traced.MustRegister("echo", func(r Request) ([]byte, error) { return r.Body, nil })

	// Traced → untraced: the version-2 envelope decodes at the plain
	// peer, the handler runs, and the reply resolves the call.
	root := tel.Tracer.StartRoot("op", "a")
	rootCtx := root.Context()
	var got Result
	traced.Go("b", "echo", []byte("x"), func(r Result) { got = r }, CallTrace(rootCtx))
	clk.RunUntilIdle()
	root.End()
	if got.Err != nil || string(got.Body) != "x" {
		t.Fatalf("traced→plain call failed: %+v", got)
	}
	if plainSawCtx.IsZero() || plainSawCtx.TraceID != rootCtx.TraceID {
		t.Fatalf("plain peer lost the envelope context: %+v", plainSawCtx)
	}

	// Untraced → traced: version-1 envelopes from the plain peer decode
	// at the traced endpoint with a zero context and serve normally,
	// recording no spans.
	before := tel.Tracer.Counts().Spans
	var got2 Result
	plain.Go("a", "echo", []byte("y"), func(r Result) { got2 = r })
	clk.RunUntilIdle()
	if got2.Err != nil || string(got2.Body) != "y" {
		t.Fatalf("plain→traced call failed: %+v", got2)
	}
	if after := tel.Tracer.Counts().Spans; after != before {
		t.Fatalf("untraced request recorded %d spans", after-before)
	}
}

// TestAnnounceTraced: announcements carry the context and record an
// instantaneous span.
func TestAnnounceTraced(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(3))
	tel := observe.New(9, clk.Now)
	a := NewEndpoint(net.MustAddNode("a"), clk, WithTelemetry(tel))
	b := NewEndpoint(net.MustAddNode("b"), clk, WithTelemetry(tel))

	var seen wire.TraceContext
	b.MustRegister("note", func(r Request) ([]byte, error) {
		seen = r.Trace
		return nil, nil
	})
	root := tel.Tracer.StartRoot("op", "a")
	rootCtx := root.Context()
	if err := a.Announce("b", "note", nil, CallTrace(rootCtx)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	root.End()
	if seen.IsZero() || seen.TraceID != rootCtx.TraceID {
		t.Fatalf("announcement lost trace: %+v", seen)
	}
	var annSpan bool
	for _, sp := range tel.Tracer.Spans() {
		if sp.Name == "rpc.ann:note" && sp.Parent == rootCtx.SpanID {
			annSpan = true
		}
	}
	if !annSpan {
		t.Fatalf("no announcement span recorded")
	}
}
