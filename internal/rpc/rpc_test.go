package rpc

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/vclock"
)

type fixture struct {
	clk *vclock.Simulated
	net *netsim.Network
	a   *Endpoint
	b   *Endpoint
}

func newFixture(t *testing.T, opts ...Option) *fixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(3))
	a := NewEndpoint(net.MustAddNode("a"), clk, opts...)
	b := NewEndpoint(net.MustAddNode("b"), clk, opts...)
	return &fixture{clk: clk, net: net, a: a, b: b}
}

func TestRequestReply(t *testing.T) {
	f := newFixture(t)
	f.b.MustRegister("echo", func(r Request) ([]byte, error) {
		return append([]byte("echo:"), r.Body...), nil
	})
	var got Result
	f.a.Go("b", "echo", []byte("hi"), func(r Result) { got = r })
	f.clk.RunUntilIdle()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if string(got.Body) != "echo:hi" {
		t.Fatalf("body = %q, want %q", got.Body, "echo:hi")
	}
}

func TestRemoteError(t *testing.T) {
	f := newFixture(t)
	f.b.MustRegister("fail", func(r Request) ([]byte, error) {
		return nil, errors.New("boom")
	})
	var got Result
	f.a.Go("b", "fail", nil, func(r Result) { got = r })
	f.clk.RunUntilIdle()
	var remote *RemoteError
	if !errors.As(got.Err, &remote) {
		t.Fatalf("err = %v, want *RemoteError", got.Err)
	}
	if remote.Msg != "boom" || remote.Method != "fail" {
		t.Fatalf("remote = %+v", remote)
	}
	if st := f.a.Stats(); st.RemoteErrors != 1 {
		t.Fatalf("RemoteErrors = %d, want 1", st.RemoteErrors)
	}
}

func TestNoSuchMethod(t *testing.T) {
	f := newFixture(t)
	var got Result
	f.a.Go("b", "missing", nil, func(r Result) { got = r })
	f.clk.RunUntilIdle()
	var remote *RemoteError
	if !errors.As(got.Err, &remote) {
		t.Fatalf("err = %v, want *RemoteError", got.Err)
	}
	if !strings.Contains(remote.Msg, "no such method") {
		t.Fatalf("msg = %q", remote.Msg)
	}
}

func TestTimeoutOnPartition(t *testing.T) {
	f := newFixture(t)
	f.b.MustRegister("echo", func(r Request) ([]byte, error) { return r.Body, nil })
	f.net.Partition([]netsim.Address{"a"}, []netsim.Address{"b"})
	var got Result
	f.a.Go("b", "echo", nil, func(r Result) { got = r }, CallTimeout(time.Second))
	f.clk.Advance(999 * time.Millisecond)
	if got.Err != nil || got.Body != nil {
		if got.Err != nil {
			t.Fatalf("completed before timeout: %v", got.Err)
		}
	}
	f.clk.Advance(time.Millisecond)
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", got.Err)
	}
	if st := f.a.Stats(); st.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", st.Timeouts)
	}
}

func TestRetrySucceedsAfterHeal(t *testing.T) {
	f := newFixture(t)
	f.b.MustRegister("echo", func(r Request) ([]byte, error) { return r.Body, nil })
	f.net.Partition([]netsim.Address{"a"}, []netsim.Address{"b"})
	var got Result
	done := false
	f.a.Go("b", "echo", []byte("x"), func(r Result) { got = r; done = true },
		CallTimeout(time.Second), CallRetries(2))
	f.clk.Advance(1500 * time.Millisecond) // first attempt timed out, retry in flight
	f.net.Heal()
	f.clk.RunUntilIdle()
	if !done {
		t.Fatal("call never completed")
	}
	if got.Err != nil {
		t.Fatalf("err = %v after heal+retry, want nil", got.Err)
	}
	if string(got.Body) != "x" {
		t.Fatalf("body = %q", got.Body)
	}
}

func TestRetriesExhausted(t *testing.T) {
	f := newFixture(t)
	f.net.Partition([]netsim.Address{"a"}, []netsim.Address{"b"})
	var got Result
	f.a.Go("b", "echo", nil, func(r Result) { got = r }, CallTimeout(time.Second), CallRetries(2))
	f.clk.RunUntilIdle()
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", got.Err)
	}
	if st := f.a.Stats(); st.Timeouts != 3 {
		t.Fatalf("Timeouts = %d, want 3 (initial + 2 retries)", st.Timeouts)
	}
}

func TestAnnounceIsOneWay(t *testing.T) {
	f := newFixture(t)
	var seen []string
	f.b.MustRegister("notify", func(r Request) ([]byte, error) {
		seen = append(seen, string(r.Body))
		return []byte("ignored"), nil
	})
	if err := f.a.Announce("b", "notify", []byte("n1")); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	if len(seen) != 1 || seen[0] != "n1" {
		t.Fatalf("seen = %v", seen)
	}
	if st := f.a.Stats(); st.Announcements != 1 {
		t.Fatalf("Announcements = %d", st.Announcements)
	}
	// No pending call should remain (announcements expect no reply).
	if st := f.a.Stats(); st.Timeouts != 0 {
		t.Fatalf("Timeouts = %d after announce", st.Timeouts)
	}
}

func TestInterceptorOrderAndVeto(t *testing.T) {
	var trace []string
	logging := func(name string) Interceptor {
		return func(next Handler) Handler {
			return func(r Request) ([]byte, error) {
				trace = append(trace, name+":in")
				out, err := next(r)
				trace = append(trace, name+":out")
				return out, err
			}
		}
	}
	veto := func(next Handler) Handler {
		return func(r Request) ([]byte, error) {
			if r.Method == "secret" {
				return nil, errors.New("access denied")
			}
			return next(r)
		}
	}

	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk))
	a := NewEndpoint(net.MustAddNode("a"), clk)
	b := NewEndpoint(net.MustAddNode("b"), clk,
		WithInterceptor(logging("outer")), WithInterceptor(veto), WithInterceptor(logging("inner")))
	b.MustRegister("open", func(r Request) ([]byte, error) { return []byte("ok"), nil })
	b.MustRegister("secret", func(r Request) ([]byte, error) { return []byte("leak"), nil })

	var got Result
	a.Go("b", "open", nil, func(r Result) { got = r })
	clk.RunUntilIdle()
	if got.Err != nil || string(got.Body) != "ok" {
		t.Fatalf("open: %v %q", got.Err, got.Body)
	}
	wantTrace := []string{"outer:in", "inner:in", "inner:out", "outer:out"}
	if fmt.Sprint(trace) != fmt.Sprint(wantTrace) {
		t.Fatalf("trace = %v, want %v", trace, wantTrace)
	}

	a.Go("b", "secret", nil, func(r Result) { got = r })
	clk.RunUntilIdle()
	var remote *RemoteError
	if !errors.As(got.Err, &remote) || remote.Msg != "access denied" {
		t.Fatalf("secret: err = %v, want access denied", got.Err)
	}
}

func TestDuplicateRegister(t *testing.T) {
	f := newFixture(t)
	f.a.MustRegister("m", func(r Request) ([]byte, error) { return nil, nil })
	if err := f.a.Register("m", func(r Request) ([]byte, error) { return nil, nil }); !errors.Is(err, ErrEndpointReuse) {
		t.Fatalf("err = %v, want ErrEndpointReuse", err)
	}
}

func TestCloseFailsPending(t *testing.T) {
	f := newFixture(t)
	f.net.Partition([]netsim.Address{"a"}, []netsim.Address{"b"})
	var got Result
	f.a.Go("b", "x", nil, func(r Result) { got = r }, CallTimeout(time.Hour))
	f.a.Close()
	if !errors.Is(got.Err, ErrTimeout) {
		t.Fatalf("err = %v after Close, want ErrTimeout", got.Err)
	}
	// Idempotent.
	f.a.Close()
}

func TestJSONHelpers(t *testing.T) {
	type sumReq struct{ A, B int }
	type sumResp struct{ Total int }
	f := newFixture(t)
	f.b.MustRegister("sum", HandleJSON(func(from netsim.Address, req sumReq) (sumResp, error) {
		return sumResp{Total: req.A + req.B}, nil
	}))
	var got Result
	f.a.GoJSON("b", "sum", sumReq{A: 2, B: 3}, func(r Result) { got = r })
	f.clk.RunUntilIdle()
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if !strings.Contains(string(got.Body), "5") {
		t.Fatalf("body = %s", got.Body)
	}
}

func TestConcurrentCallsDistinctCorrelation(t *testing.T) {
	f := newFixture(t)
	f.b.MustRegister("id", func(r Request) ([]byte, error) { return r.Body, nil })
	const n = 50
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		i := i
		f.a.Go("b", "id", []byte{byte(i)}, func(r Result) { results[i] = r })
	}
	f.clk.RunUntilIdle()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("call %d: %v", i, r.Err)
		}
		if len(r.Body) != 1 || r.Body[0] != byte(i) {
			t.Fatalf("call %d got body %v: replies crossed", i, r.Body)
		}
	}
}

func TestLateReplyAfterTimeoutIgnored(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk))
	// Slow link: reply arrives after the timeout.
	net.SetLink("a", "b", netsim.LinkProfile{Latency: 800 * time.Millisecond})
	a := NewEndpoint(net.MustAddNode("a"), clk)
	b := NewEndpoint(net.MustAddNode("b"), clk)
	b.MustRegister("echo", func(r Request) ([]byte, error) { return r.Body, nil })

	completions := 0
	a.Go("b", "echo", nil, func(r Result) { completions++ }, CallTimeout(time.Second))
	clk.RunUntilIdle()
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
}
