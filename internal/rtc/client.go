package rtc

import (
	"sort"
	"sync"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// Session is a participant's client-side view of one conference: a state
// replica kept consistent by applying server-sequenced events in order.
type Session struct {
	Member     string
	Conference string

	endpoint *rpc.Endpoint
	mux      *sessionMux
	server   netsim.Address
	clock    vclock.Clock

	mu        sync.Mutex
	seq       uint64
	state     map[string]string
	members   map[string]bool
	floor     string
	onEvent   func(Event)
	pending   map[uint64]Event // out-of-order buffer
	joined    bool
	hbTimer   vclock.Timer
	hbPeriod  time.Duration
	gapsFixed int64
}

// SessionOption configures a Session.
type SessionOption func(*Session)

// WithHeartbeat makes the session heartbeat at the given period.
func WithHeartbeat(period time.Duration) SessionOption {
	return func(s *Session) { s.hbPeriod = period }
}

// OnEvent registers the application callback for delivered events. Events
// arrive in sequence order.
func OnEvent(fn func(Event)) SessionOption {
	return func(s *Session) { s.onEvent = fn }
}

// NewSession prepares (but does not join) a session for member on the
// conference hosted at server. The session registers the one-way event
// handler on the endpoint; one endpoint supports many sessions.
func NewSession(endpoint *rpc.Endpoint, clock vclock.Clock, server netsim.Address, conference, member string, opts ...SessionOption) *Session {
	s := &Session{
		Member:     member,
		Conference: conference,
		endpoint:   endpoint,
		server:     server,
		clock:      clock,
		state:      make(map[string]string),
		members:    make(map[string]bool),
		pending:    make(map[uint64]Event),
	}
	for _, opt := range opts {
		opt(s)
	}
	registerSessionMux(endpoint, s)
	return s
}

// sessionMux demultiplexes rtc.event announcements to sessions sharing an
// endpoint. The mux lives on the endpoint itself (rpc.LayerValue), so its
// lifetime is the endpoint's: sessions cannot leak across deployments and
// no package-level registry of endpoints exists.
type sessionMux struct {
	mu       sync.Mutex
	sessions map[string][]*Session // conference id -> sessions
}

// sessionMuxKey names the rtc layer's slot on an endpoint.
const sessionMuxKey = "rtc.sessionMux"

func registerSessionMux(ep *rpc.Endpoint, s *Session) {
	mux := ep.LayerValue(sessionMuxKey, func() any {
		mux := &sessionMux{sessions: make(map[string][]*Session)}
		ep.MustRegister(MethodEvent, func(req rpc.Request) ([]byte, error) {
			var ev Event
			if err := wire.DecodeBody(req.Body, &ev); err != nil {
				return nil, err
			}
			mux.mu.Lock()
			targets := append([]*Session(nil), mux.sessions[ev.Conference]...)
			mux.mu.Unlock()
			for _, sess := range targets {
				sess.apply(ev)
			}
			return nil, nil
		})
		return mux
	}).(*sessionMux)

	mux.mu.Lock()
	mux.sessions[s.Conference] = append(mux.sessions[s.Conference], s)
	mux.mu.Unlock()
	s.mux = mux
}

// reregister re-attaches a session that previously left, so Leave then
// Join keeps receiving fan-out events. No-op while still registered.
func (s *Session) reregister() {
	mux := s.mux
	if mux == nil {
		return
	}
	mux.mu.Lock()
	defer mux.mu.Unlock()
	for _, sess := range mux.sessions[s.Conference] {
		if sess == s {
			return
		}
	}
	mux.sessions[s.Conference] = append(mux.sessions[s.Conference], s)
}

// Detach removes the session from its endpoint's event demultiplexer
// without telling the server — for abandoning a session that cannot (or
// should not) Leave, e.g. when a client is superseded by a new session
// after a crash. A detached session can re-attach by calling Join.
func (s *Session) Detach() {
	s.mu.Lock()
	s.joined = false
	if s.hbTimer != nil {
		s.hbTimer.Stop()
	}
	s.mu.Unlock()
	s.unregister()
}

// unregister removes the session from its endpoint's mux so a departed
// session stops consuming (and buffering) fan-out events.
func (s *Session) unregister() {
	mux := s.mux
	if mux == nil {
		return
	}
	mux.mu.Lock()
	defer mux.mu.Unlock()
	list := mux.sessions[s.Conference]
	for i, sess := range list {
		if sess == s {
			mux.sessions[s.Conference] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(mux.sessions[s.Conference]) == 0 {
		delete(mux.sessions, s.Conference)
	}
}

// Join enters the conference, initialising the replica from the server
// snapshot. Blocking; see package rpc for simulated-clock usage.
func (s *Session) Join() error {
	s.reregister()
	var resp joinResp
	err := s.endpoint.CallJSON(s.server, MethodJoin, joinReq{
		Conference: s.Conference,
		Member:     s.Member,
		Addr:       string(s.endpoint.Addr()),
	}, &resp)
	if err != nil {
		// A session that failed to join must not stay in the mux
		// buffering the conference's events unboundedly; a retried Join
		// re-registers it.
		s.unregister()
		return err
	}
	s.finishJoin(resp)
	return nil
}

// GoJoin is Join's asynchronous form: safe to call from a simulated-clock
// callback, where the blocking Join would deadlock the event loop. done
// (may be nil) fires on the event goroutine once the snapshot installs or
// the join fails.
func (s *Session) GoJoin(done func(error)) {
	s.reregister()
	s.endpoint.GoJSON(s.server, MethodJoin, joinReq{
		Conference: s.Conference,
		Member:     s.Member,
		Addr:       string(s.endpoint.Addr()),
	}, func(r rpc.Result) {
		var resp joinResp
		if err := r.Decode(&resp); err != nil {
			s.unregister()
			if done != nil {
				done(err)
			}
			return
		}
		s.finishJoin(resp)
		if done != nil {
			done(nil)
		}
	})
}

// finishJoin installs the server snapshot after a successful join reply.
func (s *Session) finishJoin(resp joinResp) {
	s.mu.Lock()
	s.seq = resp.Seq
	s.state = resp.State
	if s.state == nil {
		s.state = make(map[string]string)
	}
	s.members = make(map[string]bool, len(resp.Members))
	for _, m := range resp.Members {
		s.members[m] = true
	}
	s.joined = true
	// Events can outrun the join reply (the server broadcasts the joined
	// event before replying): discard any that the snapshot already
	// covers, then drain the rest in order.
	for seq := range s.pending {
		if seq <= s.seq {
			delete(s.pending, seq)
		}
	}
	deliver := s.drainPendingLocked()
	cb := s.onEvent
	s.mu.Unlock()

	if cb != nil {
		for _, d := range deliver {
			cb(d)
		}
	}
	if s.hbPeriod > 0 {
		s.scheduleHeartbeat()
	}
}

// drainPendingLocked applies consecutively-sequenced buffered events and
// returns them for callback delivery. Caller holds s.mu.
func (s *Session) drainPendingLocked() []Event {
	var deliver []Event
	for {
		next, ok := s.pending[s.seq+1]
		if !ok {
			return deliver
		}
		delete(s.pending, s.seq+1)
		s.gapsFixed++
		s.applyLocked(next)
		deliver = append(deliver, next)
	}
}

// Leave exits the conference, stops heartbeats, and detaches the session
// from its endpoint's event demultiplexer.
func (s *Session) Leave() error {
	s.mu.Lock()
	s.joined = false
	if s.hbTimer != nil {
		s.hbTimer.Stop()
	}
	s.mu.Unlock()
	s.unregister()
	var resp okResp
	return s.endpoint.CallJSON(s.server, MethodLeave, leaveReq{Conference: s.Conference, Member: s.Member}, &resp)
}

// Set publishes a shared-state mutation (WYSIWIS write).
func (s *Session) Set(key, value string) error {
	var resp updateResp
	return s.endpoint.CallJSON(s.server, MethodUpdate, updateReq{
		Conference: s.Conference, Member: s.Member, Kind: EventState, Key: key, Value: value,
	}, &resp)
}

// GoSet is Set's asynchronous form for simulated-clock callbacks. done
// (may be nil) fires on the event goroutine with the server's verdict.
func (s *Session) GoSet(key, value string, done func(error)) {
	s.endpoint.GoJSON(s.server, MethodUpdate, updateReq{
		Conference: s.Conference, Member: s.Member, Kind: EventState, Key: key, Value: value,
	}, func(r rpc.Result) {
		var resp updateResp
		err := r.Decode(&resp)
		if done != nil {
			done(err)
		}
	})
}

// Point publishes a telepointer position.
func (s *Session) Point(position string) error {
	var resp updateResp
	return s.endpoint.CallJSON(s.server, MethodUpdate, updateReq{
		Conference: s.Conference, Member: s.Member, Kind: EventPointer, Value: position,
	}, &resp)
}

// RequestFloor asks for the floor; returns the resulting holder.
func (s *Session) RequestFloor() (string, error) {
	var resp floorResp
	err := s.endpoint.CallJSON(s.server, MethodFloorRequest, floorReq{Conference: s.Conference, Member: s.Member}, &resp)
	return resp.Holder, err
}

// ReleaseFloor gives the floor back.
func (s *Session) ReleaseFloor() error {
	var resp floorResp
	return s.endpoint.CallJSON(s.server, MethodFloorRelease, floorReq{Conference: s.Conference, Member: s.Member}, &resp)
}

// Resync pulls events the session missed (e.g. across a partition) and
// applies them.
func (s *Session) Resync() error {
	s.mu.Lock()
	from := s.seq
	s.mu.Unlock()
	var resp syncResp
	if err := s.endpoint.CallJSON(s.server, MethodSync, syncReq{Conference: s.Conference, FromSeq: from}, &resp); err != nil {
		return err
	}
	for _, ev := range resp.Events {
		s.apply(ev)
	}
	return nil
}

// State returns a copy of the replica state.
func (s *Session) State() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string, len(s.state))
	for k, v := range s.state {
		out[k] = v
	}
	return out
}

// Get returns one replica value.
func (s *Session) Get(key string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state[key]
}

// Seq returns the highest applied sequence number.
func (s *Session) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Members returns the locally-known member list, sorted.
func (s *Session) Members() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.members))
	for m := range s.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Floor returns the locally-known floor holder ("" if free).
func (s *Session) Floor() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.floor
}

// GapsRepaired counts out-of-order events buffered then applied; a health
// signal for the transport.
func (s *Session) GapsRepaired() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gapsFixed
}

// apply folds a server event into the replica, buffering out-of-order
// arrivals until the gap closes.
func (s *Session) apply(ev Event) {
	s.mu.Lock()
	if !s.joined {
		// Events can outrun the join reply; hold everything until the
		// snapshot installs, then Join drains the buffer.
		s.pending[ev.Seq] = ev
		s.mu.Unlock()
		return
	}
	if ev.Seq <= s.seq {
		s.mu.Unlock()
		return // duplicate
	}
	if ev.Seq != s.seq+1 {
		s.pending[ev.Seq] = ev
		s.mu.Unlock()
		return
	}
	deliver := []Event{ev}
	s.applyLocked(ev)
	deliver = append(deliver, s.drainPendingLocked()...)
	cb := s.onEvent
	s.mu.Unlock()

	if cb != nil {
		for _, d := range deliver {
			cb(d)
		}
	}
}

// applyLocked mutates the replica for one in-order event.
func (s *Session) applyLocked(ev Event) {
	s.seq = ev.Seq
	switch ev.Kind {
	case EventState:
		s.state[ev.Key] = ev.Value
	case EventJoined:
		s.members[ev.From] = true
	case EventLeft, EventEvicted:
		delete(s.members, ev.From)
		if s.floor == ev.From {
			s.floor = ""
		}
	case EventFloor:
		if ev.Value == "granted" {
			s.floor = ev.From
		} else {
			s.floor = ""
		}
	}
}

func (s *Session) scheduleHeartbeat() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.joined {
		return
	}
	s.hbTimer = s.clock.AfterFunc(s.hbPeriod, func() {
		s.mu.Lock()
		joined := s.joined
		s.mu.Unlock()
		if !joined {
			return
		}
		s.endpoint.GoJSON(s.server, MethodHeartbeat, leaveReq{Conference: s.Conference, Member: s.Member}, func(rpc.Result) {})
		s.scheduleHeartbeat()
	})
}
