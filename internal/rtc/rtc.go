// Package rtc is the synchronous-interaction substrate: desktop
// conferencing in the style the paper cites (Shared X [6], Rapport [11]).
// A conference server sequences updates from participants and fans them out
// so every member sees the same state in the same order (WYSIWIS — "what
// you see is what I see"), with floor control for moderated sessions and
// presence tracking with heartbeat eviction.
//
// The CSCW environment's communication model builds its real-time medium on
// this package, and the temporal-transparency bridge replays conference
// output into the MHS for absent members.
package rtc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mocca/internal/id"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// RPC methods of the conferencing protocol.
const (
	MethodJoin         = "rtc.join"
	MethodLeave        = "rtc.leave"
	MethodUpdate       = "rtc.update"
	MethodSync         = "rtc.sync"
	MethodFloorRequest = "rtc.floor.request"
	MethodFloorRelease = "rtc.floor.release"
	MethodHeartbeat    = "rtc.heartbeat"
	// MethodEvent is the one-way fan-out announcement to members.
	MethodEvent = "rtc.event"
)

// Errors surfaced by the conference server.
var (
	ErrNoConference = errors.New("rtc: no such conference")
	ErrNotMember    = errors.New("rtc: not a member")
	ErrFloorHeld    = errors.New("rtc: floor held by another member")
	ErrFloorDenied  = errors.New("rtc: updates require the floor")
	ErrConfExists   = errors.New("rtc: conference already exists")
)

// Mode selects the conference's concurrency discipline.
type Mode int

// Conference modes.
const (
	// ModeOpen lets any member update (brainstorming whiteboard).
	ModeOpen Mode = iota + 1
	// ModeFloor requires holding the floor to update (moderated talk).
	ModeFloor
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOpen:
		return "open"
	case ModeFloor:
		return "floor"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// EventKind discriminates fan-out events.
type EventKind string

// Event kinds.
const (
	EventState    EventKind = "state"    // shared-state mutation
	EventPointer  EventKind = "pointer"  // telepointer move
	EventJoined   EventKind = "joined"   // presence: member arrived
	EventLeft     EventKind = "left"     // presence: member departed
	EventEvicted  EventKind = "evicted"  // presence: member timed out
	EventFloor    EventKind = "floor"    // floor changed hands
	EventSnapshot EventKind = "snapshot" // full state for late joiners
)

// Event is the unit of fan-out. Seq is a per-conference total order
// assigned by the server.
type Event struct {
	Conference string            `json:"conference"`
	Seq        uint64            `json:"seq"`
	Kind       EventKind         `json:"kind"`
	From       string            `json:"from,omitempty"`
	Key        string            `json:"key,omitempty"`
	Value      string            `json:"value,omitempty"`
	State      map[string]string `json:"state,omitempty"`
	At         time.Time         `json:"at"`
}

// member is a joined participant.
type member struct {
	name     string
	addr     netsim.Address
	lastSeen time.Time
}

// conference is the server-side session state.
type conference struct {
	id      string
	title   string
	mode    Mode
	seq     uint64
	state   map[string]string
	members map[string]*member
	floor   string // member holding the floor; "" = free
	log     []Event
}

// Option configures a Server.
type Option func(*Server)

// WithHeartbeatTimeout sets how long a silent member survives before
// eviction. Zero disables eviction.
func WithHeartbeatTimeout(d time.Duration) Option {
	return func(s *Server) { s.heartbeatTimeout = d }
}

// WithIDs sets the identifier generator.
func WithIDs(g *id.Generator) Option {
	return func(s *Server) { s.ids = g }
}

// Stats counts server activity.
type Stats struct {
	Updates    int64
	Broadcasts int64
	Joins      int64
	Leaves     int64
	Evictions  int64
	FloorOps   int64
}

// Server hosts conferences on a network node (the MCU role).
type Server struct {
	endpoint         *rpc.Endpoint
	clock            vclock.Clock
	ids              *id.Generator
	heartbeatTimeout time.Duration

	mu    sync.Mutex
	confs map[string]*conference
	stats Stats
	done  bool
}

// NewServer binds a conference server to the endpoint.
func NewServer(endpoint *rpc.Endpoint, clock vclock.Clock, opts ...Option) *Server {
	s := &Server{
		endpoint: endpoint,
		clock:    clock,
		confs:    make(map[string]*conference),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.ids == nil {
		s.ids = id.New()
	}
	s.register()
	if s.heartbeatTimeout > 0 {
		s.scheduleSweep()
	}
	return s
}

// Close stops background sweeps.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CreateConference registers a conference and returns its id.
func (s *Server) CreateConference(title string, mode Mode) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cid := s.ids.Next("conf")
	if _, ok := s.confs[cid]; ok {
		return "", fmt.Errorf("%w: %q", ErrConfExists, cid)
	}
	s.confs[cid] = &conference{
		id:      cid,
		title:   title,
		mode:    mode,
		state:   make(map[string]string),
		members: make(map[string]*member),
	}
	return cid, nil
}

// Members lists current member names of a conference, sorted.
func (s *Server) Members(cid string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	conf, ok := s.confs[cid]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoConference, cid)
	}
	out := make([]string, 0, len(conf.members))
	for name := range conf.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// History returns the event log of a conference (for temporal bridging).
func (s *Server) History(cid string) ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	conf, ok := s.confs[cid]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoConference, cid)
	}
	return append([]Event(nil), conf.log...), nil
}

// request/response bodies

type joinReq struct {
	Conference string `json:"conference"`
	Member     string `json:"member"`
	Addr       string `json:"addr"`
}

type joinResp struct {
	Seq     uint64            `json:"seq"`
	State   map[string]string `json:"state"`
	Members []string          `json:"members"`
	Mode    int               `json:"mode"`
	Title   string            `json:"title"`
}

type leaveReq struct {
	Conference string `json:"conference"`
	Member     string `json:"member"`
}

type updateReq struct {
	Conference string    `json:"conference"`
	Member     string    `json:"member"`
	Kind       EventKind `json:"kind"`
	Key        string    `json:"key"`
	Value      string    `json:"value"`
}

type updateResp struct {
	Seq uint64 `json:"seq"`
}

type floorReq struct {
	Conference string `json:"conference"`
	Member     string `json:"member"`
}

type floorResp struct {
	Holder string `json:"holder"`
}

type syncReq struct {
	Conference string `json:"conference"`
	FromSeq    uint64 `json:"fromSeq"`
}

type syncResp struct {
	Events []Event `json:"events"`
}

type okResp struct {
	OK bool `json:"ok"`
}

func (s *Server) register() {
	ep := s.endpoint
	ep.MustRegister(MethodJoin, rpc.HandleJSON(func(from netsim.Address, req joinReq) (joinResp, error) {
		return s.join(from, req)
	}))
	ep.MustRegister(MethodLeave, rpc.HandleJSON(func(_ netsim.Address, req leaveReq) (okResp, error) {
		if err := s.leave(req.Conference, req.Member, EventLeft); err != nil {
			return okResp{}, err
		}
		return okResp{OK: true}, nil
	}))
	ep.MustRegister(MethodUpdate, rpc.HandleJSON(func(_ netsim.Address, req updateReq) (updateResp, error) {
		seq, err := s.update(req)
		if err != nil {
			return updateResp{}, err
		}
		return updateResp{Seq: seq}, nil
	}))
	ep.MustRegister(MethodFloorRequest, rpc.HandleJSON(func(_ netsim.Address, req floorReq) (floorResp, error) {
		holder, err := s.floorRequest(req.Conference, req.Member)
		if err != nil {
			return floorResp{}, err
		}
		return floorResp{Holder: holder}, nil
	}))
	ep.MustRegister(MethodFloorRelease, rpc.HandleJSON(func(_ netsim.Address, req floorReq) (floorResp, error) {
		holder, err := s.floorRelease(req.Conference, req.Member)
		if err != nil {
			return floorResp{}, err
		}
		return floorResp{Holder: holder}, nil
	}))
	ep.MustRegister(MethodHeartbeat, rpc.HandleJSON(func(_ netsim.Address, req leaveReq) (okResp, error) {
		s.heartbeat(req.Conference, req.Member)
		return okResp{OK: true}, nil
	}))
	ep.MustRegister(MethodSync, rpc.HandleJSON(func(_ netsim.Address, req syncReq) (syncResp, error) {
		events, err := s.eventsSince(req.Conference, req.FromSeq)
		if err != nil {
			return syncResp{}, err
		}
		return syncResp{Events: events}, nil
	}))
}

func (s *Server) join(from netsim.Address, req joinReq) (joinResp, error) {
	s.mu.Lock()
	conf, ok := s.confs[req.Conference]
	if !ok {
		s.mu.Unlock()
		return joinResp{}, fmt.Errorf("%w: %q", ErrNoConference, req.Conference)
	}
	addr := netsim.Address(req.Addr)
	if addr == "" {
		addr = from
	}
	conf.members[req.Member] = &member{name: req.Member, addr: addr, lastSeen: s.clock.Now()}
	s.stats.Joins++
	state := make(map[string]string, len(conf.state))
	for k, v := range conf.state {
		state[k] = v
	}
	names := make([]string, 0, len(conf.members))
	for n := range conf.members {
		names = append(names, n)
	}
	sort.Strings(names)
	resp := joinResp{Seq: conf.seq, State: state, Members: names, Mode: int(conf.mode), Title: conf.title}
	s.mu.Unlock()

	s.broadcast(req.Conference, Event{Kind: EventJoined, From: req.Member})
	return resp, nil
}

func (s *Server) leave(cid, memberName string, kind EventKind) error {
	s.mu.Lock()
	conf, ok := s.confs[cid]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoConference, cid)
	}
	if _, ok := conf.members[memberName]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotMember, memberName)
	}
	delete(conf.members, memberName)
	if conf.floor == memberName {
		conf.floor = "" // the floor frees when its holder leaves
	}
	if kind == EventLeft {
		s.stats.Leaves++
	} else {
		s.stats.Evictions++
	}
	s.mu.Unlock()

	s.broadcast(cid, Event{Kind: kind, From: memberName})
	return nil
}

func (s *Server) update(req updateReq) (uint64, error) {
	s.mu.Lock()
	conf, ok := s.confs[req.Conference]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNoConference, req.Conference)
	}
	mem, ok := conf.members[req.Member]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNotMember, req.Member)
	}
	if conf.mode == ModeFloor && conf.floor != req.Member {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w (holder %q)", ErrFloorDenied, conf.floor)
	}
	mem.lastSeen = s.clock.Now()
	kind := req.Kind
	if kind == "" {
		kind = EventState
	}
	s.stats.Updates++
	// Sequence, mutate, and snapshot the fan-out set under ONE critical
	// section: the order in which updates hit the state map must be the
	// order replicas see, or WYSIWIS breaks.
	seq, addrs, ev := s.sequenceLocked(conf, Event{Kind: kind, From: req.Member, Key: req.Key, Value: req.Value})
	s.mu.Unlock()

	for _, addr := range addrs {
		s.announceEvent(addr, ev)
	}
	return seq, nil
}

func (s *Server) floorRequest(cid, memberName string) (string, error) {
	s.mu.Lock()
	conf, ok := s.confs[cid]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrNoConference, cid)
	}
	if _, ok := conf.members[memberName]; !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrNotMember, memberName)
	}
	if conf.floor != "" && conf.floor != memberName {
		holder := conf.floor
		s.mu.Unlock()
		return holder, fmt.Errorf("%w: %q", ErrFloorHeld, holder)
	}
	conf.floor = memberName
	s.stats.FloorOps++
	s.mu.Unlock()

	s.broadcast(cid, Event{Kind: EventFloor, From: memberName, Value: "granted"})
	return memberName, nil
}

func (s *Server) floorRelease(cid, memberName string) (string, error) {
	s.mu.Lock()
	conf, ok := s.confs[cid]
	if !ok {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: %q", ErrNoConference, cid)
	}
	if conf.floor != memberName {
		holder := conf.floor
		s.mu.Unlock()
		return holder, fmt.Errorf("%w: %q", ErrFloorHeld, holder)
	}
	conf.floor = ""
	s.stats.FloorOps++
	s.mu.Unlock()

	s.broadcast(cid, Event{Kind: EventFloor, From: memberName, Value: "released"})
	return "", nil
}

func (s *Server) heartbeat(cid, memberName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if conf, ok := s.confs[cid]; ok {
		if mem, ok := conf.members[memberName]; ok {
			mem.lastSeen = s.clock.Now()
		}
	}
}

func (s *Server) eventsSince(cid string, fromSeq uint64) ([]Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	conf, ok := s.confs[cid]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoConference, cid)
	}
	var out []Event
	for _, ev := range conf.log {
		if ev.Seq > fromSeq {
			out = append(out, ev)
		}
	}
	return out, nil
}

// sequenceLocked assigns the next sequence number, applies state-kind
// events to the conference state, logs the event, and snapshots the
// fan-out address set. Caller must hold s.mu.
func (s *Server) sequenceLocked(conf *conference, ev Event) (uint64, []netsim.Address, Event) {
	conf.seq++
	ev.Conference = conf.id
	ev.Seq = conf.seq
	ev.At = s.clock.Now()
	if ev.Kind == EventState {
		conf.state[ev.Key] = ev.Value
	}
	conf.log = append(conf.log, ev)
	addrs := make([]netsim.Address, 0, len(conf.members))
	for _, m := range conf.members {
		addrs = append(addrs, m.addr)
	}
	s.stats.Broadcasts++
	return conf.seq, addrs, ev
}

// broadcast sequences the event, logs it, and announces it to all members.
func (s *Server) broadcast(cid string, ev Event) {
	s.mu.Lock()
	conf, ok := s.confs[cid]
	if !ok {
		s.mu.Unlock()
		return
	}
	_, addrs, sequenced := s.sequenceLocked(conf, ev)
	s.mu.Unlock()

	for _, addr := range addrs {
		s.announceEvent(addr, sequenced)
	}
}

func (s *Server) announceEvent(addr netsim.Address, ev Event) {
	_ = s.endpoint.AnnounceJSON(addr, MethodEvent, ev)
}

// scheduleSweep evicts members whose heartbeat lapsed.
func (s *Server) scheduleSweep() {
	s.clock.AfterFunc(s.heartbeatTimeout/2, func() {
		s.mu.Lock()
		if s.done {
			s.mu.Unlock()
			return
		}
		type evict struct{ cid, member string }
		var evictions []evict
		cutoff := s.clock.Now().Add(-s.heartbeatTimeout)
		for cid, conf := range s.confs {
			for name, mem := range conf.members {
				if mem.lastSeen.Before(cutoff) {
					evictions = append(evictions, evict{cid, name})
				}
			}
		}
		s.mu.Unlock()
		for _, e := range evictions {
			_ = s.leave(e.cid, e.member, EventEvicted)
		}
		s.scheduleSweep()
	})
}
