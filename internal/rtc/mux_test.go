package rtc

import (
	"testing"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
)

// TestSessionsShareEndpointWithoutGlobalState verifies that the event
// demultiplexer lives on the endpoint (not in a package-level registry):
// two sessions for different conferences share one endpoint, each sees
// only its own conference's events, and a departed session is detached.
func TestSessionsShareEndpointWithoutGlobalState(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	cid2, err := f.server.CreateConference("second", ModeOpen)
	if err != nil {
		t.Fatal(err)
	}

	ep := rpc.NewEndpoint(f.net.MustAddNode("shared"), f.clk)
	var got1, got2 []Event
	s1 := NewSession(ep, f.clk, "mcu", f.cid, "ada", OnEvent(func(ev Event) { got1 = append(got1, ev) }))
	s2 := NewSession(ep, f.clk, "mcu", cid2, "ada", OnEvent(func(ev Event) { got2 = append(got2, ev) }))
	f.mustDrive(t, s1.Join)
	f.mustDrive(t, s2.Join)

	f.mustDrive(t, func() error { return s1.Set("k", "conference-one") })
	f.mustDrive(t, func() error { return s2.Set("k", "conference-two") })
	f.clk.RunUntilIdle()

	if s1.Get("k") != "conference-one" || s2.Get("k") != "conference-two" {
		t.Fatalf("cross-conference bleed: s1=%q s2=%q", s1.Get("k"), s2.Get("k"))
	}
	for _, ev := range got1 {
		if ev.Conference != f.cid {
			t.Fatalf("s1 received foreign event %+v", ev)
		}
	}
	for _, ev := range got2 {
		if ev.Conference != cid2 {
			t.Fatalf("s2 received foreign event %+v", ev)
		}
	}

	// After leaving, s1 must be detached from the mux: further events for
	// its conference are not buffered into the dead session.
	f.mustDrive(t, s1.Leave)
	mux := ep.LayerValue(sessionMuxKey, func() any { t.Fatal("mux vanished"); return nil }).(*sessionMux)
	mux.mu.Lock()
	remaining := len(mux.sessions[f.cid])
	mux.mu.Unlock()
	if remaining != 0 {
		t.Fatalf("%d sessions still registered for %s after Leave", remaining, f.cid)
	}
}

// TestFailedJoinUnregisters: a session whose Join fails (first join or
// re-join) must not stay in the endpoint mux buffering conference events;
// a retried Join re-attaches it.
func TestFailedJoinUnregisters(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	ep := rpc.NewEndpoint(f.net.MustAddNode("carol"), f.clk)
	carol := NewSession(ep, f.clk, "mcu", f.cid, "carol")

	f.net.Partition([]netsim.Address{"carol"}, []netsim.Address{"mcu"})
	if err := f.drive(t, carol.Join); err == nil {
		t.Fatal("join succeeded across a partition")
	}
	mux := ep.LayerValue(sessionMuxKey, func() any { t.Fatal("mux missing"); return nil }).(*sessionMux)
	mux.mu.Lock()
	registered := len(mux.sessions[f.cid])
	mux.mu.Unlock()
	if registered != 0 {
		t.Fatalf("%d sessions registered after failed join", registered)
	}

	f.net.Heal()
	f.mustDrive(t, carol.Join)
	other := f.session(t, "dave")
	f.mustDrive(t, other.Join)
	f.mustDrive(t, func() error { return other.Set("k", "v") })
	f.clk.RunUntilIdle()
	if carol.Get("k") != "v" {
		t.Fatalf("retried join not receiving events: k=%q", carol.Get("k"))
	}
}

// TestDetachStopsDelivery: a detached session's callbacks stop firing and
// it no longer buffers events.
func TestDetachStopsDelivery(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	events := 0
	alice := f.session(t, "alice", OnEvent(func(Event) { events++ }))
	bob := f.session(t, "bob")
	f.mustDrive(t, alice.Join)
	f.mustDrive(t, bob.Join)

	alice.Detach()
	before := events
	f.mustDrive(t, func() error { return bob.Set("k", "after-detach") })
	f.clk.RunUntilIdle()
	if events != before {
		t.Fatalf("detached session received %d events", events-before)
	}
	if alice.Get("k") != "" {
		t.Fatalf("detached replica mutated: %q", alice.Get("k"))
	}
}

// TestLeaveThenRejoinSameSession: a session that left and re-joins must
// re-attach to the endpoint's mux and resume receiving events.
func TestLeaveThenRejoinSameSession(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	alice := f.session(t, "alice")
	bob := f.session(t, "bob")
	f.mustDrive(t, alice.Join)
	f.mustDrive(t, bob.Join)

	f.mustDrive(t, alice.Leave)
	f.mustDrive(t, alice.Join)

	f.mustDrive(t, func() error { return bob.Set("k", "after-rejoin") })
	f.clk.RunUntilIdle()
	if got := alice.Get("k"); got != "after-rejoin" {
		t.Fatalf("rejoined session replica = %q (stale: not receiving events)", got)
	}
}
