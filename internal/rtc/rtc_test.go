package rtc

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

type rtcFixture struct {
	clk    *vclock.Simulated
	net    *netsim.Network
	server *Server
	cid    string
}

func newRTCFixture(t *testing.T, mode Mode, opts ...Option) *rtcFixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(21))
	srvEP := rpc.NewEndpoint(net.MustAddNode("mcu"), clk)
	server := NewServer(srvEP, clk, opts...)
	cid, err := server.CreateConference("design meeting", mode)
	if err != nil {
		t.Fatal(err)
	}
	return &rtcFixture{clk: clk, net: net, server: server, cid: cid}
}

// session creates a participant on its own node.
func (f *rtcFixture) session(t *testing.T, name string, opts ...SessionOption) *Session {
	t.Helper()
	ep := rpc.NewEndpoint(f.net.MustAddNode(netsim.Address(name)), f.clk)
	return NewSession(ep, f.clk, "mcu", f.cid, name, opts...)
}

// drive runs a blocking session op while the test goroutine advances time.
func (f *rtcFixture) drive(t *testing.T, op func() error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- op() }()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case err := <-done:
			return err
		case <-deadline:
			t.Fatal("simulated op did not complete")
		default:
			time.Sleep(200 * time.Microsecond)
			f.clk.Advance(20 * time.Millisecond)
		}
	}
}

func (f *rtcFixture) mustDrive(t *testing.T, op func() error) {
	t.Helper()
	if err := f.drive(t, op); err != nil {
		t.Fatal(err)
	}
}

func TestJoinUpdatePropagates(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	alice := f.session(t, "alice")
	bob := f.session(t, "bob")
	f.mustDrive(t, alice.Join)
	f.mustDrive(t, bob.Join)

	f.mustDrive(t, func() error { return alice.Set("agenda", "1. models 2. odp") })
	f.clk.RunUntilIdle()

	if got := bob.Get("agenda"); got != "1. models 2. odp" {
		t.Fatalf("bob replica agenda = %q", got)
	}
	if got := alice.Get("agenda"); got != "1. models 2. odp" {
		t.Fatalf("alice replica agenda = %q", got)
	}
}

func TestWYSIWISConvergence(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	names := []string{"a", "b", "c", "d"}
	sessions := make([]*Session, len(names))
	for i, n := range names {
		sessions[i] = f.session(t, n)
		f.mustDrive(t, sessions[i].Join)
	}
	// Everyone writes the same key concurrently, many times.
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				_ = s.Set("doc", names[i]+"-"+string(rune('0'+j)))
			}
		}(i, s)
	}
	fin := make(chan struct{})
	go func() { wg.Wait(); close(fin) }()
	deadline := time.After(10 * time.Second)
loop:
	for {
		select {
		case <-fin:
			break loop
		case <-deadline:
			t.Fatal("writers did not finish")
		default:
			time.Sleep(200 * time.Microsecond)
			f.clk.Advance(20 * time.Millisecond)
		}
	}
	f.clk.RunUntilIdle()
	// All replicas converge to the same value and sequence.
	want := sessions[0].Get("doc")
	wantSeq := sessions[0].Seq()
	for _, s := range sessions[1:] {
		if s.Get("doc") != want {
			t.Fatalf("replica %s diverged: %q vs %q", s.Member, s.Get("doc"), want)
		}
		if s.Seq() != wantSeq {
			t.Fatalf("replica %s at seq %d, want %d", s.Member, s.Seq(), wantSeq)
		}
	}
}

func TestEventsDeliveredInOrder(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	var got []uint64
	watcher := f.session(t, "watcher", OnEvent(func(ev Event) { got = append(got, ev.Seq) }))
	f.mustDrive(t, watcher.Join)
	writer := f.session(t, "writer")
	f.mustDrive(t, writer.Join)
	for i := 0; i < 20; i++ {
		f.mustDrive(t, func() error { return writer.Set("k", "v") })
	}
	f.clk.RunUntilIdle()
	if len(got) < 20 {
		t.Fatalf("watcher saw %d events", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("events out of order: %v", got)
		}
	}
}

func TestFloorControl(t *testing.T) {
	f := newRTCFixture(t, ModeFloor)
	speaker := f.session(t, "speaker")
	heckler := f.session(t, "heckler")
	f.mustDrive(t, speaker.Join)
	f.mustDrive(t, heckler.Join)

	// Updates without the floor are denied.
	err := f.drive(t, func() error { return heckler.Set("slide", "1") })
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "floor") {
		t.Fatalf("floorless update err = %v", err)
	}

	f.mustDrive(t, func() error {
		_, err := speaker.RequestFloor()
		return err
	})
	f.mustDrive(t, func() error { return speaker.Set("slide", "2") })

	// Heckler cannot steal the floor.
	err = f.drive(t, func() error {
		_, err := heckler.RequestFloor()
		return err
	})
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "held") {
		t.Fatalf("steal floor err = %v", err)
	}

	// Release passes it on.
	f.mustDrive(t, speaker.ReleaseFloor)
	f.mustDrive(t, func() error {
		_, err := heckler.RequestFloor()
		return err
	})
	f.mustDrive(t, func() error { return heckler.Set("slide", "3") })
	f.clk.RunUntilIdle()
	if speaker.Get("slide") != "3" {
		t.Fatalf("speaker slide = %q", speaker.Get("slide"))
	}
	if speaker.Floor() != "heckler" {
		t.Fatalf("speaker sees floor = %q", speaker.Floor())
	}
}

func TestFloorFreesWhenHolderLeaves(t *testing.T) {
	f := newRTCFixture(t, ModeFloor)
	a := f.session(t, "a")
	b := f.session(t, "b")
	f.mustDrive(t, a.Join)
	f.mustDrive(t, b.Join)
	f.mustDrive(t, func() error { _, err := a.RequestFloor(); return err })
	f.mustDrive(t, a.Leave)
	f.mustDrive(t, func() error { _, err := b.RequestFloor(); return err })
	f.clk.RunUntilIdle()
	if b.Floor() != "b" {
		t.Fatalf("floor = %q, want b", b.Floor())
	}
}

func TestLateJoinerGetsSnapshot(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	early := f.session(t, "early")
	f.mustDrive(t, early.Join)
	f.mustDrive(t, func() error { return early.Set("minutes", "draft-7") })
	f.mustDrive(t, func() error { return early.Set("actions", "review models") })

	late := f.session(t, "late")
	f.mustDrive(t, late.Join)
	if late.Get("minutes") != "draft-7" || late.Get("actions") != "review models" {
		t.Fatalf("late joiner state = %v", late.State())
	}
	members := late.Members()
	if len(members) != 2 {
		t.Fatalf("late joiner members = %v", members)
	}
}

func TestPresencePropagates(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	a := f.session(t, "a")
	f.mustDrive(t, a.Join)
	b := f.session(t, "b")
	f.mustDrive(t, b.Join)
	f.clk.RunUntilIdle()
	if got := a.Members(); len(got) != 2 {
		t.Fatalf("a sees members %v", got)
	}
	f.mustDrive(t, b.Leave)
	f.clk.RunUntilIdle()
	if got := a.Members(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("after leave, a sees %v", got)
	}
}

func TestHeartbeatEviction(t *testing.T) {
	f := newRTCFixture(t, ModeOpen, WithHeartbeatTimeout(30*time.Second))
	defer f.server.Close()
	// "quiet" heartbeats properly; "ghost" joins then goes silent.
	quiet := f.session(t, "quiet", WithHeartbeat(5*time.Second))
	ghost := f.session(t, "ghost")
	f.mustDrive(t, quiet.Join)
	f.mustDrive(t, ghost.Join)

	f.clk.Advance(2 * time.Minute)
	members, err := f.server.Members(f.cid)
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0] != "quiet" {
		t.Fatalf("members after eviction sweep = %v", members)
	}
	if st := f.server.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d", st.Evictions)
	}
	// The survivor heard about the eviction. (Bounded Advance, not
	// RunUntilIdle: heartbeat timers reschedule themselves forever.)
	f.clk.Advance(10 * time.Second)
	if got := quiet.Members(); len(got) != 1 {
		t.Fatalf("quiet sees %v", got)
	}
}

func TestResyncAfterPartition(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	a := f.session(t, "a")
	b := f.session(t, "b")
	f.mustDrive(t, a.Join)
	f.mustDrive(t, b.Join)

	// Partition b away; a keeps writing.
	f.net.Partition([]netsim.Address{"mcu", "a"}, []netsim.Address{"b"})
	for i := 0; i < 5; i++ {
		f.mustDrive(t, func() error { return a.Set("k", "during-partition") })
	}
	f.clk.RunUntilIdle()
	if b.Get("k") == "during-partition" {
		t.Fatal("partitioned replica received updates")
	}
	f.net.Heal()
	f.mustDrive(t, b.Resync)
	if b.Get("k") != "during-partition" {
		t.Fatalf("after resync b.k = %q", b.Get("k"))
	}
	if b.Seq() != a.Seq() {
		t.Fatalf("seqs diverged after resync: %d vs %d", b.Seq(), a.Seq())
	}
}

func TestTelepointer(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	var pointer string
	a := f.session(t, "a", OnEvent(func(ev Event) {
		if ev.Kind == EventPointer {
			pointer = ev.From + "@" + ev.Value
		}
	}))
	b := f.session(t, "b")
	f.mustDrive(t, a.Join)
	f.mustDrive(t, b.Join)
	f.mustDrive(t, func() error { return b.Point("120,45") })
	f.clk.RunUntilIdle()
	if pointer != "b@120,45" {
		t.Fatalf("pointer = %q", pointer)
	}
	// Telepointer must not pollute shared state.
	if len(a.State()) != 0 {
		t.Fatalf("state = %v", a.State())
	}
}

func TestUpdateFromNonMemberRejected(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	outsider := f.session(t, "outsider")
	err := f.drive(t, func() error { return outsider.Set("k", "v") })
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "not a member") {
		t.Fatalf("outsider update err = %v", err)
	}
}

func TestJoinUnknownConference(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	ep := rpc.NewEndpoint(f.net.MustAddNode("x"), f.clk)
	s := NewSession(ep, f.clk, "mcu", "conf-bogus", "x")
	err := f.drive(t, s.Join)
	var remote *rpc.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "no such conference") {
		t.Fatalf("join bogus err = %v", err)
	}
}

func TestHistoryForTemporalBridge(t *testing.T) {
	f := newRTCFixture(t, ModeOpen)
	a := f.session(t, "a")
	f.mustDrive(t, a.Join)
	f.mustDrive(t, func() error { return a.Set("decision", "adopt ODP viewpoints") })
	f.mustDrive(t, a.Leave)
	f.clk.RunUntilIdle()

	hist, err := f.server.History(f.cid)
	if err != nil {
		t.Fatal(err)
	}
	// join + state + leave
	if len(hist) != 3 {
		t.Fatalf("history = %d events", len(hist))
	}
	kinds := []EventKind{hist[0].Kind, hist[1].Kind, hist[2].Kind}
	if kinds[0] != EventJoined || kinds[1] != EventState || kinds[2] != EventLeft {
		t.Fatalf("history kinds = %v", kinds)
	}
}
