package mhs

import (
	"encoding/json"
	"fmt"
	"time"
)

// wireEnvelope encodes an envelope for the transfer protocol.
func wireEnvelope(env *Envelope) *Envelope { return env }

// unwireEnvelope decodes an envelope from a transfer request body.
func unwireEnvelope(body []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("mhs: decode transfer: %w", err)
	}
	if env.MessageID == "" {
		return nil, fmt.Errorf("mhs: transfer without message id")
	}
	return &env, nil
}

// UserAgent is the submission/retrieval interface a person or application
// uses, attached to its home MTA (local P3/P7 access).
type UserAgent struct {
	Name ORName
	mta  *MTA
}

// NewUserAgent attaches a user agent to its home MTA and provisions the
// mailbox.
func NewUserAgent(name ORName, mta *MTA) *UserAgent {
	mta.CreateMailbox(name.Personal)
	return &UserAgent{Name: name, mta: mta}
}

// SubmitOption adjusts one submission.
type SubmitOption func(*Envelope)

// WithPriority sets the grade of delivery.
func WithPriority(p Priority) SubmitOption {
	return func(e *Envelope) { e.Priority = p }
}

// WithDeferredUntil holds the message at the submission MTA until t.
func WithDeferredUntil(t time.Time) SubmitOption {
	return func(e *Envelope) { e.Deferred = t }
}

// WithDeliveryReport requests a positive delivery report.
func WithDeliveryReport() SubmitOption {
	return func(e *Envelope) { e.RequestDR = true }
}

// WithHeader attaches an application header to the content.
func WithHeader(k, v string) SubmitOption {
	return func(e *Envelope) {
		if e.Content.Headers == nil {
			e.Content.Headers = make(map[string]string)
		}
		e.Content.Headers[k] = v
	}
}

// WithInReplyTo threads the message under a previous message id.
func WithInReplyTo(msgID string) SubmitOption {
	return func(e *Envelope) { e.Content.InReplyTo = msgID }
}

// Send submits an interpersonal message and returns the message id.
func (ua *UserAgent) Send(to []ORName, subject, body string, opts ...SubmitOption) (string, error) {
	env := &Envelope{
		Originator: ua.Name,
		Recipients: to,
		Content:    Content{Subject: subject, Body: body},
	}
	for _, opt := range opts {
		opt(env)
	}
	return ua.mta.Submit(env)
}

// Probe tests deliverability to the recipients without content.
func (ua *UserAgent) Probe(to []ORName) (string, error) {
	env := &Envelope{
		Originator: ua.Name,
		Recipients: to,
		Probe:      true,
	}
	return ua.mta.Submit(env)
}

// List returns the mailbox contents.
func (ua *UserAgent) List() ([]*StoredMessage, error) {
	return ua.mta.List(ua.Name.Personal)
}

// Fetch retrieves one message and marks it read.
func (ua *UserAgent) Fetch(seq uint64) (*StoredMessage, error) {
	return ua.mta.Fetch(ua.Name.Personal, seq)
}

// Delete removes a message from the mailbox.
func (ua *UserAgent) Delete(seq uint64) error {
	return ua.mta.DeleteMessage(ua.Name.Personal, seq)
}

// Unread counts unread messages.
func (ua *UserAgent) Unread() int {
	return ua.mta.Unread(ua.Name.Personal)
}
