// Package mhs implements an X.400-style Message Handling System: user
// agents submit messages to their local Message Transfer Agent (MTA), MTAs
// relay store-and-forward across management domains, and recipients fetch
// from message stores.
//
// The paper (§4, "Support for Communication") observes that CSCW systems
// have traditionally been built on "asynchronous OSI communication
// standards such as X.400", which they "adopt and augment". This package is
// that substrate: envelopes with priorities and deferred delivery,
// distribution lists with loop-safe expansion, delivery and non-delivery
// reports, probes, and per-hop trace information.
package mhs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ORName is a (simplified) X.400 Originator/Recipient name with the
// attributes the repository needs: country, ADMD is elided, organisation,
// organisational unit, and personal name. String form:
//
//	pn=prinz;ou=cscw;o=gmd;c=de
type ORName struct {
	Country  string
	Org      string
	OrgUnit  string
	Personal string
}

// ErrBadORName reports an unparsable O/R name.
var ErrBadORName = errors.New("mhs: malformed O/R name")

// ParseORName parses the semicolon form. Unknown attributes error;
// attribute order is free.
func ParseORName(s string) (ORName, error) {
	var n ORName
	if strings.TrimSpace(s) == "" {
		return n, fmt.Errorf("%w: empty", ErrBadORName)
	}
	for _, part := range strings.Split(s, ";") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return n, fmt.Errorf("%w: component %q", ErrBadORName, part)
		}
		key := strings.ToLower(strings.TrimSpace(kv[0]))
		val := strings.ToLower(strings.TrimSpace(kv[1]))
		if val == "" {
			return n, fmt.Errorf("%w: empty value in %q", ErrBadORName, part)
		}
		switch key {
		case "pn":
			n.Personal = val
		case "ou":
			n.OrgUnit = val
		case "o":
			n.Org = val
		case "c":
			n.Country = val
		default:
			return n, fmt.Errorf("%w: unknown attribute %q", ErrBadORName, key)
		}
	}
	if n.Personal == "" || n.Org == "" {
		return n, fmt.Errorf("%w: pn and o are mandatory in %q", ErrBadORName, s)
	}
	return n, nil
}

// MustParseORName is ParseORName panicking on error.
func MustParseORName(s string) ORName {
	n, err := ParseORName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String renders the canonical semicolon form.
func (n ORName) String() string {
	parts := []string{"pn=" + n.Personal}
	if n.OrgUnit != "" {
		parts = append(parts, "ou="+n.OrgUnit)
	}
	parts = append(parts, "o="+n.Org)
	if n.Country != "" {
		parts = append(parts, "c="+n.Country)
	}
	return strings.Join(parts, ";")
}

// Domain identifies the management domain that routes this name: the
// organisation (plus country when present).
func (n ORName) Domain() string {
	if n.Country != "" {
		return n.Org + "." + n.Country
	}
	return n.Org
}

// Equal compares O/R names.
func (n ORName) Equal(o ORName) bool { return n == o }

// Priority is the X.400 grade of delivery.
type Priority int

// Grades of delivery; urgent sorts before normal before non-urgent.
const (
	PriorityUrgent Priority = iota + 1
	PriorityNormal
	PriorityNonUrgent
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityUrgent:
		return "urgent"
	case PriorityNormal:
		return "normal"
	case PriorityNonUrgent:
		return "non-urgent"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// TraceEntry records one MTA hop, for loop detection and diagnostics.
type TraceEntry struct {
	MTA string    `json:"mta"`
	At  time.Time `json:"at"`
}

// Content is the interpersonal message payload (a simplified P2).
type Content struct {
	Subject string            `json:"subject,omitempty"`
	Body    string            `json:"body,omitempty"`
	Headers map[string]string `json:"headers,omitempty"`
	// InReplyTo carries threading for message-based groupware.
	InReplyTo string `json:"inReplyTo,omitempty"`
}

// Envelope is the transfer envelope (a simplified P1).
type Envelope struct {
	MessageID  string       `json:"messageId"`
	Originator ORName       `json:"originator"`
	Recipients []ORName     `json:"recipients"`
	Priority   Priority     `json:"priority"`
	Submitted  time.Time    `json:"submitted"`
	Deferred   time.Time    `json:"deferred,omitempty"`
	Probe      bool         `json:"probe,omitempty"`
	RequestDR  bool         `json:"requestDR,omitempty"`
	Content    Content      `json:"content"`
	Trace      []TraceEntry `json:"trace,omitempty"`
	// DLHistory lists distribution lists already expanded, breaking
	// mutual-inclusion loops.
	DLHistory []string `json:"dlHistory,omitempty"`
}

// clone deep-copies the envelope.
func (e *Envelope) clone() *Envelope {
	out := *e
	out.Recipients = append([]ORName(nil), e.Recipients...)
	out.Trace = append([]TraceEntry(nil), e.Trace...)
	out.DLHistory = append([]string(nil), e.DLHistory...)
	if e.Content.Headers != nil {
		out.Content.Headers = make(map[string]string, len(e.Content.Headers))
		for k, v := range e.Content.Headers {
			out.Content.Headers[k] = v
		}
	}
	return &out
}

// visits counts how often the named MTA appears in the trace.
func (e *Envelope) visits(mta string) int {
	n := 0
	for _, t := range e.Trace {
		if t.MTA == mta {
			n++
		}
	}
	return n
}

// ReportKind discriminates delivery reports.
type ReportKind int

// Report kinds.
const (
	ReportDelivered ReportKind = iota + 1
	ReportNonDelivery
	ReportProbeOK
)

// String implements fmt.Stringer.
func (k ReportKind) String() string {
	switch k {
	case ReportDelivered:
		return "delivered"
	case ReportNonDelivery:
		return "non-delivery"
	case ReportProbeOK:
		return "probe-ok"
	default:
		return fmt.Sprintf("report(%d)", int(k))
	}
}

// Report is a delivery/non-delivery notification returned to an
// originator's message store.
type Report struct {
	Kind      ReportKind `json:"kind"`
	MessageID string     `json:"messageId"`
	Recipient ORName     `json:"recipient"`
	Reason    string     `json:"reason,omitempty"`
	At        time.Time  `json:"at"`
}

// StoredMessage is an entry in a recipient's message store.
type StoredMessage struct {
	Envelope *Envelope `json:"envelope,omitempty"`
	Report   *Report   `json:"report,omitempty"`
	// Seq orders the store; assigned at delivery.
	Seq uint64 `json:"seq"`
	// Read marks messages fetched at least once.
	Read bool `json:"read"`
	// DeliveredAt is the local delivery instant.
	DeliveredAt time.Time `json:"deliveredAt"`
}

// IsReport reports whether the entry is a report rather than a message.
func (m *StoredMessage) IsReport() bool { return m.Report != nil }

// sortStored orders by (priority, seq) so urgent messages list first.
func sortStored(msgs []*StoredMessage) {
	sort.SliceStable(msgs, func(i, j int) bool {
		pi, pj := PriorityNormal, PriorityNormal
		if msgs[i].Envelope != nil && msgs[i].Envelope.Priority != 0 {
			pi = msgs[i].Envelope.Priority
		}
		if msgs[j].Envelope != nil && msgs[j].Envelope.Priority != 0 {
			pj = msgs[j].Envelope.Priority
		}
		if pi != pj {
			return pi < pj
		}
		return msgs[i].Seq < msgs[j].Seq
	})
}
