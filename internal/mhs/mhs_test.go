package mhs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// mhsFixture builds a three-domain MHS, mirroring the paper's authorship:
//
//	gmd.de  (mta-gmd)  — users prinz, klaus; DL "cscw-team"
//	upc.es  (mta-upc)  — user navarro
//	lancs.uk (mta-lancs) — user rodden
//
// Routes: gmd<->upc direct; lancs reachable from gmd only via upc
// (multi-hop), upc<->lancs direct.
type mhsFixture struct {
	clk   *vclock.Simulated
	net   *netsim.Network
	gmd   *MTA
	upc   *MTA
	lancs *MTA

	prinz   *UserAgent
	klaus   *UserAgent
	navarro *UserAgent
	rodden  *UserAgent
}

func newMHSFixture(t *testing.T) *mhsFixture {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(9))

	mk := func(addr netsim.Address, name, domain string) *MTA {
		ep := rpc.NewEndpoint(net.MustAddNode(addr), clk)
		return NewMTA(name, domain, ep, clk)
	}
	f := &mhsFixture{clk: clk, net: net}
	f.gmd = mk("mta-gmd", "mta-gmd", "gmd.de")
	f.upc = mk("mta-upc", "mta-upc", "upc.es")
	f.lancs = mk("mta-lancs", "mta-lancs", "lancs.uk")

	f.gmd.AddRoute("upc.es", "mta-upc")
	f.gmd.AddRoute("lancs.uk", "mta-upc") // multi-hop via UPC
	f.upc.AddRoute("gmd.de", "mta-gmd")
	f.upc.AddRoute("lancs.uk", "mta-lancs")
	f.lancs.AddRoute("upc.es", "mta-upc")
	f.lancs.AddRoute("gmd.de", "mta-upc")

	f.prinz = NewUserAgent(MustParseORName("pn=prinz;ou=cscw;o=gmd;c=de"), f.gmd)
	f.klaus = NewUserAgent(MustParseORName("pn=klaus;ou=cscw;o=gmd;c=de"), f.gmd)
	f.navarro = NewUserAgent(MustParseORName("pn=navarro;o=upc;c=es"), f.upc)
	f.rodden = NewUserAgent(MustParseORName("pn=rodden;o=lancs;c=uk"), f.lancs)
	return f
}

func TestORNameParse(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		domain  string
		wantErr bool
	}{
		{"pn=prinz;ou=cscw;o=gmd;c=de", "pn=prinz;ou=cscw;o=gmd;c=de", "gmd.de", false},
		{"o=gmd;pn=prinz", "pn=prinz;o=gmd", "gmd", false},
		{"PN=Prinz;O=GMD", "pn=prinz;o=gmd", "gmd", false},
		{"", "", "", true},
		{"pn=prinz", "", "", true},      // missing org
		{"o=gmd", "", "", true},         // missing pn
		{"pn=x;zz=y;o=g", "", "", true}, // unknown attribute
	}
	for _, tt := range tests {
		n, err := ParseORName(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseORName(%q) = %v, want error", tt.in, n)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseORName(%q): %v", tt.in, err)
			continue
		}
		if n.String() != tt.want || n.Domain() != tt.domain {
			t.Errorf("ParseORName(%q) = %q/%q, want %q/%q", tt.in, n.String(), n.Domain(), tt.want, tt.domain)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	f := newMHSFixture(t)
	msgID, err := f.prinz.Send([]ORName{f.klaus.Name}, "meeting", "10am room 5")
	if err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, err := f.klaus.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("klaus has %d messages, want 1", len(msgs))
	}
	if msgs[0].Envelope.MessageID != msgID || msgs[0].Envelope.Content.Subject != "meeting" {
		t.Fatalf("stored message = %+v", msgs[0].Envelope)
	}
	if f.klaus.Unread() != 1 {
		t.Fatalf("Unread = %d", f.klaus.Unread())
	}
	if _, err := f.klaus.Fetch(msgs[0].Seq); err != nil {
		t.Fatal(err)
	}
	if f.klaus.Unread() != 0 {
		t.Fatal("Fetch did not mark read")
	}
}

func TestRemoteDeliverySingleHop(t *testing.T) {
	f := newMHSFixture(t)
	if _, err := f.prinz.Send([]ORName{f.navarro.Name}, "odp workshop", "berlin, october"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, err := f.navarro.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("navarro has %d messages", len(msgs))
	}
	trace := msgs[0].Envelope.Trace
	if len(trace) != 2 || trace[0].MTA != "mta-gmd" || trace[1].MTA != "mta-upc" {
		t.Fatalf("trace = %+v", trace)
	}
}

func TestRemoteDeliveryMultiHop(t *testing.T) {
	f := newMHSFixture(t)
	if _, err := f.prinz.Send([]ORName{f.rodden.Name}, "paper draft", "section 6 attached"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, err := f.rodden.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("rodden has %d messages", len(msgs))
	}
	trace := msgs[0].Envelope.Trace
	if len(trace) != 3 {
		t.Fatalf("trace length = %d, want 3 hops (gmd->upc->lancs): %+v", len(trace), trace)
	}
}

func TestMultiRecipientSplitsByDomain(t *testing.T) {
	f := newMHSFixture(t)
	to := []ORName{f.klaus.Name, f.navarro.Name, f.rodden.Name}
	if _, err := f.prinz.Send(to, "all hands", "project review friday"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	for _, ua := range []*UserAgent{f.klaus, f.navarro, f.rodden} {
		msgs, err := ua.List()
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 {
			t.Fatalf("%s has %d messages, want 1", ua.Name, len(msgs))
		}
	}
}

func TestNonDeliveryReportUnknownRecipient(t *testing.T) {
	f := newMHSFixture(t)
	ghost := MustParseORName("pn=ghost;o=upc;c=es")
	if _, err := f.prinz.Send([]ORName{ghost}, "hello?", "anyone there"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, err := f.prinz.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || !msgs[0].IsReport() {
		t.Fatalf("prinz store = %+v, want one NDR", msgs)
	}
	rep := msgs[0].Report
	if rep.Kind != ReportNonDelivery || !strings.Contains(rep.Reason, "unknown recipient") {
		t.Fatalf("report = %+v", rep)
	}
	if !rep.Recipient.Equal(ghost) {
		t.Fatalf("report recipient = %v", rep.Recipient)
	}
}

func TestNoRouteNDR(t *testing.T) {
	f := newMHSFixture(t)
	mars := MustParseORName("pn=marvin;o=mars")
	if _, err := f.prinz.Send([]ORName{mars}, "ping", ""); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, _ := f.prinz.List()
	if len(msgs) != 1 || !msgs[0].IsReport() || msgs[0].Report.Kind != ReportNonDelivery {
		t.Fatalf("want NDR for unroutable domain, got %+v", msgs)
	}
	if !strings.Contains(msgs[0].Report.Reason, "no route") {
		t.Fatalf("reason = %q", msgs[0].Report.Reason)
	}
}

func TestDeliveryReportRequested(t *testing.T) {
	f := newMHSFixture(t)
	if _, err := f.prinz.Send([]ORName{f.navarro.Name}, "with DR", "", WithDeliveryReport()); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, _ := f.prinz.List()
	if len(msgs) != 1 || !msgs[0].IsReport() {
		t.Fatalf("want DR in prinz store, got %+v", msgs)
	}
	if msgs[0].Report.Kind != ReportDelivered {
		t.Fatalf("kind = %v", msgs[0].Report.Kind)
	}
}

func TestDeferredDelivery(t *testing.T) {
	f := newMHSFixture(t)
	deliverAt := f.clk.Now().Add(time.Hour)
	if _, err := f.prinz.Send([]ORName{f.klaus.Name}, "reminder", "submit review",
		WithDeferredUntil(deliverAt)); err != nil {
		t.Fatal(err)
	}
	f.clk.Advance(59 * time.Minute)
	if msgs, _ := f.klaus.List(); len(msgs) != 0 {
		t.Fatal("deferred message delivered early")
	}
	f.clk.Advance(2 * time.Minute)
	if msgs, _ := f.klaus.List(); len(msgs) != 1 {
		t.Fatal("deferred message not delivered at deadline")
	}
}

func TestPriorityOrdering(t *testing.T) {
	f := newMHSFixture(t)
	if _, err := f.prinz.Send([]ORName{f.klaus.Name}, "slow", "", WithPriority(PriorityNonUrgent)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.prinz.Send([]ORName{f.klaus.Name}, "normal", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := f.prinz.Send([]ORName{f.klaus.Name}, "urgent", "", WithPriority(PriorityUrgent)); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, _ := f.klaus.List()
	if len(msgs) != 3 {
		t.Fatalf("klaus has %d", len(msgs))
	}
	got := []string{msgs[0].Envelope.Content.Subject, msgs[1].Envelope.Content.Subject, msgs[2].Envelope.Content.Subject}
	if got[0] != "urgent" || got[1] != "normal" || got[2] != "slow" {
		t.Fatalf("order = %v", got)
	}
}

func TestDLExpansion(t *testing.T) {
	f := newMHSFixture(t)
	if err := f.gmd.CreateDL("cscw-team", f.prinz.Name, f.klaus.Name, f.rodden.Name); err != nil {
		t.Fatal(err)
	}
	dl := MustParseORName("pn=cscw-team;o=gmd;c=de")
	if _, err := f.navarro.Send([]ORName{dl}, "team update", "models chapter done"); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	for _, ua := range []*UserAgent{f.prinz, f.klaus, f.rodden} {
		msgs, _ := ua.List()
		if len(msgs) != 1 {
			t.Fatalf("%s got %d messages from DL, want 1", ua.Name, len(msgs))
		}
	}
	if st := f.gmd.Stats(); st.DLExpansions != 1 {
		t.Fatalf("DLExpansions = %d", st.DLExpansions)
	}
}

func TestNestedDLAndLoopProtection(t *testing.T) {
	f := newMHSFixture(t)
	// dl-a includes dl-b and prinz; dl-b includes dl-a and klaus: mutual
	// inclusion must terminate with each person receiving exactly once.
	dlA := MustParseORName("pn=dl-a;o=gmd;c=de")
	dlB := MustParseORName("pn=dl-b;o=gmd;c=de")
	if err := f.gmd.CreateDL("dl-a", dlB, f.prinz.Name); err != nil {
		t.Fatal(err)
	}
	if err := f.gmd.CreateDL("dl-b", dlA, f.klaus.Name); err != nil {
		t.Fatal(err)
	}
	if _, err := f.navarro.Send([]ORName{dlA}, "loop test", ""); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	for _, ua := range []*UserAgent{f.prinz, f.klaus} {
		msgs, _ := ua.List()
		if len(msgs) != 1 {
			t.Fatalf("%s received %d copies, want exactly 1", ua.Name, len(msgs))
		}
	}
}

func TestDuplicateDLRejected(t *testing.T) {
	f := newMHSFixture(t)
	if err := f.gmd.CreateDL("x"); err != nil {
		t.Fatal(err)
	}
	if err := f.gmd.CreateDL("x"); !errors.Is(err, ErrDLExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestProbe(t *testing.T) {
	f := newMHSFixture(t)
	if _, err := f.prinz.Probe([]ORName{f.navarro.Name}); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	// Probe must NOT deliver content.
	if msgs, _ := f.navarro.List(); len(msgs) != 0 {
		t.Fatal("probe delivered content")
	}
	msgs, _ := f.prinz.List()
	if len(msgs) != 1 || !msgs[0].IsReport() || msgs[0].Report.Kind != ReportProbeOK {
		t.Fatalf("probe report = %+v", msgs)
	}
}

func TestRetryAfterPartitionHeals(t *testing.T) {
	f := newMHSFixture(t)
	f.net.Partition([]netsim.Address{"mta-gmd"}, []netsim.Address{"mta-upc", "mta-lancs"})
	if _, err := f.prinz.Send([]ORName{f.navarro.Name}, "during partition", ""); err != nil {
		t.Fatal(err)
	}
	// First attempt times out (5s), first retry at +2s also fails, heal
	// before the second retry (+10s) fires.
	f.clk.Advance(8 * time.Second)
	f.net.Heal()
	f.clk.RunUntilIdle()
	msgs, _ := f.navarro.List()
	if len(msgs) != 1 {
		t.Fatalf("message not delivered after heal: %d", len(msgs))
	}
	if st := f.gmd.Stats(); st.Retries == 0 {
		t.Fatal("no retries recorded")
	}
}

func TestRetriesExhaustedNDR(t *testing.T) {
	f := newMHSFixture(t)
	f.net.Partition([]netsim.Address{"mta-gmd"}, []netsim.Address{"mta-upc", "mta-lancs"})
	if _, err := f.prinz.Send([]ORName{f.navarro.Name}, "never arrives", ""); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle() // all retries burn down while partitioned
	msgs, _ := f.prinz.List()
	if len(msgs) != 1 || !msgs[0].IsReport() || msgs[0].Report.Kind != ReportNonDelivery {
		t.Fatalf("want NDR after exhausted retries, got %+v", msgs)
	}
	if !strings.Contains(msgs[0].Report.Reason, "failed after") {
		t.Fatalf("reason = %q", msgs[0].Report.Reason)
	}
}

func TestRemoteNDRTravelsBack(t *testing.T) {
	f := newMHSFixture(t)
	ghost := MustParseORName("pn=ghost;o=lancs;c=uk")
	if _, err := f.prinz.Send([]ORName{ghost}, "to nobody", ""); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	// NDR generated at lancs travels lancs->upc->gmd and unwraps into a
	// Report in prinz's store.
	msgs, _ := f.prinz.List()
	if len(msgs) != 1 || !msgs[0].IsReport() {
		t.Fatalf("prinz store = %+v", msgs)
	}
	if msgs[0].Report.Kind != ReportNonDelivery || !msgs[0].Report.Recipient.Equal(ghost) {
		t.Fatalf("report = %+v", msgs[0].Report)
	}
}

func TestDeleteMessage(t *testing.T) {
	f := newMHSFixture(t)
	if _, err := f.prinz.Send([]ORName{f.klaus.Name}, "x", ""); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, _ := f.klaus.List()
	if err := f.klaus.Delete(msgs[0].Seq); err != nil {
		t.Fatal(err)
	}
	if msgs, _ := f.klaus.List(); len(msgs) != 0 {
		t.Fatal("delete failed")
	}
	if err := f.klaus.Delete(999); err == nil {
		t.Fatal("delete of missing seq succeeded")
	}
}

func TestWatcherFires(t *testing.T) {
	f := newMHSFixture(t)
	var seen []string
	f.gmd.Watch(func(rcpt ORName, msg *StoredMessage) {
		seen = append(seen, rcpt.Personal+":"+msg.Envelope.Content.Subject)
	})
	if _, err := f.prinz.Send([]ORName{f.klaus.Name}, "live", ""); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	if len(seen) != 1 || seen[0] != "klaus:live" {
		t.Fatalf("watcher saw %v", seen)
	}
}

func TestStatsAccounting(t *testing.T) {
	f := newMHSFixture(t)
	if _, err := f.prinz.Send([]ORName{f.klaus.Name, f.navarro.Name}, "s", ""); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	gmd := f.gmd.Stats()
	if gmd.Submitted != 1 || gmd.DeliveredHere != 1 || gmd.Relayed != 1 {
		t.Fatalf("gmd stats = %+v", gmd)
	}
	upc := f.upc.Stats()
	if upc.DeliveredHere != 1 {
		t.Fatalf("upc stats = %+v", upc)
	}
}
