package mhs

import (
	"testing"
	"testing/quick"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// TestQuickNoSilentLoss: for any seed and moderate link loss, a message to
// a provisioned remote recipient either arrives in the recipient's store
// or produces a non-delivery report in the sender's store — never neither,
// never both.
func TestQuickNoSilentLoss(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		loss := float64(lossPct%50) / 100.0 // 0..0.49
		clk := vclock.NewSimulated(netsim.DefaultEpoch)
		net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(seed))
		net.SetLink("m1", "m2", netsim.LinkProfile{Latency: 5 * time.Millisecond, Loss: loss})

		gmd := NewMTA("m1", "gmd.de", rpc.NewEndpoint(net.MustAddNode("m1"), clk), clk)
		upc := NewMTA("m2", "upc.es", rpc.NewEndpoint(net.MustAddNode("m2"), clk), clk)
		gmd.AddRoute("upc.es", "m2")
		upc.AddRoute("gmd.de", "m1")

		sender := NewUserAgent(MustParseORName("pn=s;o=gmd;c=de"), gmd)
		rcpt := NewUserAgent(MustParseORName("pn=r;o=upc;c=es"), upc)

		if _, err := sender.Send([]ORName{rcpt.Name}, "x", "y"); err != nil {
			return false
		}
		clk.RunUntilIdle()

		// At-least-once semantics: lost transfer acks cause retries, so
		// duplicates are possible (delivered >= 1) and a delivery plus an
		// NDR can coexist (delivered, but every ack lost). What must
		// NEVER happen is silent loss: no delivery AND no NDR.
		delivered := rcpt.Unread() >= 1
		senderMsgs, err := sender.List()
		if err != nil {
			return false
		}
		ndr := false
		for _, m := range senderMsgs {
			if m.IsReport() && m.Report.Kind == ReportNonDelivery {
				ndr = true
			}
		}
		return delivered || ndr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPriorityNeverReordersWithinClass: within one priority class,
// mailbox listing preserves delivery order.
func TestQuickPriorityNeverReordersWithinClass(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		n := int(count%16) + 2
		clk := vclock.NewSimulated(netsim.DefaultEpoch)
		net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(seed))
		mta := NewMTA("m", "gmd.de", rpc.NewEndpoint(net.MustAddNode("m"), clk), clk)
		sender := NewUserAgent(MustParseORName("pn=s;o=gmd;c=de"), mta)
		rcpt := NewUserAgent(MustParseORName("pn=r;o=gmd;c=de"), mta)
		for i := 0; i < n; i++ {
			if _, err := sender.Send([]ORName{rcpt.Name}, string(rune('a'+i)), ""); err != nil {
				return false
			}
		}
		clk.RunUntilIdle()
		msgs, err := rcpt.List()
		if err != nil || len(msgs) != n {
			return false
		}
		for i := 1; i < len(msgs); i++ {
			if msgs[i].Seq < msgs[i-1].Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
