package mhs

import (
	"strings"
	"testing"
	"time"

	"mocca/internal/netsim"
	"mocca/internal/rpc"
)

// TestRerouteDuringRetryWindow: the next-hop for a domain dies, the admin
// re-routes the domain to a different MTA while the transfer is still
// inside its retry schedule, and the message must follow the new route
// instead of bouncing.
func TestRerouteDuringRetryWindow(t *testing.T) {
	f := newMHSFixture(t)
	// Second MTA for upc.es reachable under a different address, same
	// domain (a warm standby).
	standbyEP := rpc.NewEndpoint(f.net.MustAddNode("mta-upc2"), f.clk)
	standby := NewMTA("mta-upc2", "upc.es", standbyEP, f.clk)
	NewUserAgent(MustParseORName("pn=navarro;o=upc;c=es"), standby)

	// Primary upc MTA goes dark.
	node, _ := f.net.Node("mta-upc")
	node.SetDown(true)

	if _, err := f.prinz.Send([]ORName{f.navarro.Name}, "failover", "x"); err != nil {
		t.Fatal(err)
	}
	// Burn the first attempt (5s timeout) and the first backoff retry,
	// then re-route the domain to the standby before the schedule ends.
	f.clk.Advance(8 * time.Second)
	f.gmd.AddRoute("upc.es", "mta-upc2")
	f.clk.RunUntilIdle()

	msgs, err := standby.List("navarro")
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("standby mailbox = %d messages, want 1 (message bounced instead of following new route)", len(msgs))
	}
	// The originator must NOT hold a non-delivery report.
	orig, _ := f.prinz.List()
	for _, m := range orig {
		if m.IsReport() && m.Report.Kind == ReportNonDelivery {
			t.Fatalf("NDR issued despite successful failover: %+v", m.Report)
		}
	}
}

// TestNDRAttemptCountAccurate: the non-delivery reason reports how many
// transfer attempts were actually made.
func TestNDRAttemptCountAccurate(t *testing.T) {
	f := newMHSFixture(t)
	f.net.Partition([]netsim.Address{"mta-gmd"}, []netsim.Address{"mta-upc", "mta-lancs"})
	if _, err := f.prinz.Send([]ORName{f.navarro.Name}, "doomed", ""); err != nil {
		t.Fatal(err)
	}
	f.clk.RunUntilIdle()
	msgs, _ := f.prinz.List()
	if len(msgs) != 1 || !msgs[0].IsReport() {
		t.Fatalf("want one NDR, got %+v", msgs)
	}
	want := "failed after 4 attempts" // initial + 3-entry retry schedule
	if got := msgs[0].Report.Reason; !strings.Contains(got, want) {
		t.Fatalf("reason = %q, want it to contain %q", got, want)
	}
}
