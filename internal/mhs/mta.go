package mhs

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"mocca/internal/id"
	"mocca/internal/netsim"
	"mocca/internal/rpc"
	"mocca/internal/vclock"
)

// RPC method names of the MTA transfer protocol (a simplified P1).
const (
	MethodTransfer = "mhs.transfer"
)

// Errors surfaced by MTA operations.
var (
	ErrNoRoute          = errors.New("mhs: no route to domain")
	ErrUnknownRecipient = errors.New("mhs: unknown local recipient")
	ErrUnknownMailbox   = errors.New("mhs: no such mailbox")
	ErrLoopDetected     = errors.New("mhs: routing loop detected")
	ErrDLExists         = errors.New("mhs: distribution list already exists")
)

// maxTraceHops bounds the relay path length before a loop is declared.
const maxTraceHops = 16

// transfer retry schedule: attempts are spaced by these delays, after which
// the MTA gives up and issues a non-delivery report.
var retrySchedule = []time.Duration{
	2 * time.Second,
	10 * time.Second,
	60 * time.Second,
}

// Option configures an MTA.
type Option func(*MTA)

// WithIDs sets the identifier generator.
func WithIDs(g *id.Generator) Option {
	return func(m *MTA) { m.ids = g }
}

// Stats counts MTA activity.
type Stats struct {
	Submitted     int64
	Relayed       int64
	DeliveredHere int64
	NonDelivered  int64
	DLExpansions  int64
	Retries       int64
}

// MTA is a Message Transfer Agent bound to a network node. It serves one
// management domain (e.g. "gmd.de"), holds message stores for its local
// users, and relays everything else toward peer MTAs.
type MTA struct {
	name     string // MTA identifier used in traces, e.g. "mta.gmd.de"
	domain   string // management domain this MTA is authoritative for
	endpoint *rpc.Endpoint
	clock    vclock.Clock
	ids      *id.Generator

	mu       sync.Mutex
	routes   map[string]netsim.Address // domain -> next-hop MTA node
	boxes    map[string][]*StoredMessage
	boxSeq   uint64
	dls      map[string][]ORName // DL personal-name -> members
	watchers []func(rcpt ORName, msg *StoredMessage)
	stats    Stats
}

// NewMTA creates an MTA authoritative for domain on the given endpoint.
func NewMTA(name, domain string, endpoint *rpc.Endpoint, clock vclock.Clock, opts ...Option) *MTA {
	m := &MTA{
		name:     name,
		domain:   strings.ToLower(domain),
		endpoint: endpoint,
		clock:    clock,
		routes:   make(map[string]netsim.Address),
		boxes:    make(map[string][]*StoredMessage),
		dls:      make(map[string][]ORName),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.ids == nil {
		m.ids = id.New()
	}
	endpoint.MustRegister(MethodTransfer, m.onTransfer)
	return m
}

// Name returns the MTA's trace identifier.
func (m *MTA) Name() string { return m.name }

// Domain returns the management domain this MTA serves.
func (m *MTA) Domain() string { return m.domain }

// Addr returns the MTA's network address.
func (m *MTA) Addr() netsim.Address { return m.endpoint.Addr() }

// AddRoute installs a next-hop for a remote domain.
func (m *MTA) AddRoute(domain string, nextHop netsim.Address) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.routes[strings.ToLower(domain)] = nextHop
}

// CreateMailbox provisions a local message store for the personal name.
func (m *MTA) CreateMailbox(personal string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(personal)
	if _, ok := m.boxes[key]; !ok {
		m.boxes[key] = []*StoredMessage{}
	}
}

// CreateDL registers a distribution list expanded at this MTA. The DL's
// own O/R name is pn=<name> within this MTA's domain.
func (m *MTA) CreateDL(name string, members ...ORName) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := m.dls[key]; ok {
		return fmt.Errorf("%w: %q", ErrDLExists, name)
	}
	m.dls[key] = append([]ORName(nil), members...)
	return nil
}

// Watch registers a callback invoked on every local delivery. Callbacks
// run on the event goroutine and must not block; the comm layer uses this
// to bridge asynchronous messages into live sessions.
func (m *MTA) Watch(fn func(rcpt ORName, msg *StoredMessage)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.watchers = append(m.watchers, fn)
}

// Stats returns a snapshot of the counters.
func (m *MTA) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Submit accepts a message from a co-located user agent, stamps it, and
// begins processing. It returns the assigned message id.
func (m *MTA) Submit(env *Envelope) (string, error) {
	if len(env.Recipients) == 0 {
		return "", errors.New("mhs: no recipients")
	}
	e := env.clone()
	if e.MessageID == "" {
		e.MessageID = m.ids.Next("msg")
	}
	if e.Priority == 0 {
		e.Priority = PriorityNormal
	}
	e.Submitted = m.clock.Now()
	m.mu.Lock()
	m.stats.Submitted++
	m.mu.Unlock()

	if !e.Deferred.IsZero() && e.Deferred.After(m.clock.Now()) {
		delay := e.Deferred.Sub(m.clock.Now())
		m.clock.AfterFunc(delay, func() { m.process(e) })
		return e.MessageID, nil
	}
	m.process(e)
	return e.MessageID, nil
}

// process routes the envelope: local recipients are delivered (or
// expanded), remote ones are grouped by domain and relayed.
func (m *MTA) process(env *Envelope) {
	env.Trace = append(env.Trace, TraceEntry{MTA: m.name, At: m.clock.Now()})

	byDomain := make(map[string][]ORName)
	for _, rcpt := range env.Recipients {
		byDomain[rcpt.Domain()] = append(byDomain[rcpt.Domain()], rcpt)
	}
	for domain, rcpts := range byDomain {
		if domain == m.domain {
			for _, rcpt := range rcpts {
				m.deliverLocal(env, rcpt)
			}
			continue
		}
		remote := env.clone()
		remote.Recipients = rcpts
		m.relay(remote, domain)
	}
}

// deliverLocal puts the message in the recipient's box, expands DLs, and
// generates reports.
func (m *MTA) deliverLocal(env *Envelope, rcpt ORName) {
	key := strings.ToLower(rcpt.Personal)
	m.mu.Lock()
	members, isDL := m.dls[key]
	m.mu.Unlock()

	if isDL {
		m.expandDL(env, rcpt, members)
		return
	}

	// Reports wrapped for wide-area travel unwrap into Report entries at
	// the originator's store, so local and remote reports look alike.
	if env.Content.Headers["report-is-wrap"] == "true" {
		rep := Report{
			MessageID: env.Content.Headers["report-msgid"],
			Reason:    env.Content.Headers["report-reason"],
			At:        m.clock.Now(),
		}
		switch env.Content.Headers["report-kind"] {
		case ReportDelivered.String():
			rep.Kind = ReportDelivered
		case ReportProbeOK.String():
			rep.Kind = ReportProbeOK
		default:
			rep.Kind = ReportNonDelivery
		}
		if n, err := ParseORName(env.Content.Headers["report-rcpt"]); err == nil {
			rep.Recipient = n
		}
		m.storeReport(rcpt, rep)
		return
	}

	m.mu.Lock()
	_, ok := m.boxes[key]
	if !ok {
		m.mu.Unlock()
		m.report(env, Report{
			Kind:      ReportNonDelivery,
			MessageID: env.MessageID,
			Recipient: rcpt,
			Reason:    fmt.Sprintf("unknown recipient %q in domain %q", rcpt.Personal, m.domain),
			At:        m.clock.Now(),
		})
		return
	}
	if env.Probe {
		m.mu.Unlock()
		m.report(env, Report{
			Kind:      ReportProbeOK,
			MessageID: env.MessageID,
			Recipient: rcpt,
			At:        m.clock.Now(),
		})
		return
	}
	m.boxSeq++
	stored := &StoredMessage{
		Envelope:    env.clone(),
		Seq:         m.boxSeq,
		DeliveredAt: m.clock.Now(),
	}
	m.boxes[key] = append(m.boxes[key], stored)
	m.stats.DeliveredHere++
	watchers := make([]func(ORName, *StoredMessage), len(m.watchers))
	copy(watchers, m.watchers)
	m.mu.Unlock()

	for _, w := range watchers {
		w(rcpt, stored)
	}
	if env.RequestDR {
		m.report(env, Report{
			Kind:      ReportDelivered,
			MessageID: env.MessageID,
			Recipient: rcpt,
			At:        m.clock.Now(),
		})
	}
}

// expandDL re-processes the envelope for each member, guarding against
// mutually-including lists.
func (m *MTA) expandDL(env *Envelope, dl ORName, members []ORName) {
	dlKey := dl.String()
	for _, seen := range env.DLHistory {
		if seen == dlKey {
			return // already expanded on this path; drop silently per X.400
		}
	}
	m.mu.Lock()
	m.stats.DLExpansions++
	m.mu.Unlock()

	// Expansion is a fresh submission on behalf of the list: the copy gets
	// a clean trace (DLHistory still guards against mutual inclusion).
	expanded := env.clone()
	expanded.DLHistory = append(expanded.DLHistory, dlKey)
	expanded.Recipients = members
	expanded.Trace = nil
	m.process(expanded)
}

// relay forwards the envelope toward the next hop for the domain. Retries
// and their spacing are the transport's job now: the rpc layer replays the
// call per retrySchedule, and the MTA only decides what a final failure
// means — try a changed route once (failover while the schedule ran), or
// issue a non-delivery report. Loop detection happens on receipt
// (onTransfer), where a revisited trace is decisive.
func (m *MTA) relay(env *Envelope, domain string) {
	m.relayVia(env, domain, false)
}

func (m *MTA) relayVia(env *Envelope, domain string, rerouted bool) {
	m.mu.Lock()
	next, ok := m.routes[domain]
	if ok {
		m.stats.Relayed++
	}
	m.mu.Unlock()
	if !ok {
		m.nonDeliverAll(env, fmt.Sprintf("%v: %q", ErrNoRoute, domain))
		return
	}

	attempts := 1
	m.endpoint.GoJSON(next, MethodTransfer, wireEnvelope(env), func(r rpc.Result) {
		if r.Err == nil {
			return // accepted downstream
		}
		m.mu.Lock()
		cur, routed := m.routes[domain]
		m.mu.Unlock()
		if routed && cur != next && !rerouted {
			// The domain was re-routed while we were retrying; give the
			// new next-hop one full schedule before giving up.
			m.relayVia(env, domain, true)
			return
		}
		m.nonDeliverAll(env, fmt.Sprintf("transfer to %s failed after %d attempts: %v", next, attempts, r.Err))
	},
		rpc.CallTimeout(5*time.Second),
		rpc.CallBackoff(retrySchedule...),
		rpc.CallOnRetry(func(int) {
			attempts++
			m.mu.Lock()
			m.stats.Retries++
			m.stats.Relayed++
			m.mu.Unlock()
		}))
}

// nonDeliverAll issues an NDR for every recipient on the envelope.
func (m *MTA) nonDeliverAll(env *Envelope, reason string) {
	m.mu.Lock()
	m.stats.NonDelivered += int64(len(env.Recipients))
	m.mu.Unlock()
	for _, rcpt := range env.Recipients {
		m.report(env, Report{
			Kind:      ReportNonDelivery,
			MessageID: env.MessageID,
			Recipient: rcpt,
			Reason:    reason,
			At:        m.clock.Now(),
		})
	}
}

// report routes a report back to the originator. Reports for local
// originators land directly in their store; remote ones travel as report
// envelopes.
func (m *MTA) report(orig *Envelope, rep Report) {
	originator := orig.Originator
	if originator.Domain() == m.domain {
		m.storeReport(originator, rep)
		return
	}
	// Wrap the report as a system message to the originator.
	env := &Envelope{
		MessageID:  m.ids.Next("rpt"),
		Originator: ORName{Personal: "mta-" + m.name, Org: m.domain},
		Recipients: []ORName{originator},
		Priority:   PriorityNormal,
		Content: Content{
			Subject: fmt.Sprintf("%s: %s", rep.Kind, rep.MessageID),
			Headers: map[string]string{
				"report-kind":    rep.Kind.String(),
				"report-msgid":   rep.MessageID,
				"report-rcpt":    rep.Recipient.String(),
				"report-reason":  rep.Reason,
				"report-is-wrap": "true",
			},
		},
	}
	m.mu.Lock()
	next, ok := m.routes[originator.Domain()]
	m.mu.Unlock()
	if !ok {
		return // cannot report back; drop
	}
	m.endpoint.GoJSON(next, MethodTransfer, wireEnvelope(env), func(rpc.Result) {},
		rpc.CallTimeout(5*time.Second), rpc.CallBackoff(retrySchedule...))
}

// storeReport files a report into a local originator's store.
func (m *MTA) storeReport(originator ORName, rep Report) {
	key := strings.ToLower(originator.Personal)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.boxes[key]; !ok {
		return // originator unknown locally; drop
	}
	m.boxSeq++
	r := rep
	m.boxes[key] = append(m.boxes[key], &StoredMessage{
		Report:      &r,
		Seq:         m.boxSeq,
		DeliveredAt: m.clock.Now(),
	})
}

// onTransfer handles an inbound relay from a peer MTA.
func (m *MTA) onTransfer(req rpc.Request) ([]byte, error) {
	env, err := unwireEnvelope(req.Body)
	if err != nil {
		return nil, err
	}
	// A second revisit of the same MTA (or an absurdly long trace) is a
	// routing loop; a single revisit can be a legitimate hub path.
	if env.visits(m.name) >= 2 || len(env.Trace) > maxTraceHops {
		m.nonDeliverAll(env, fmt.Sprintf("%v: %s revisited", ErrLoopDetected, m.name))
		return []byte(`{"ok":true}`), nil
	}
	// Accept, then continue processing asynchronously so the transfer ack
	// returns promptly.
	m.clock.AfterFunc(0, func() { m.process(env) })
	return []byte(`{"ok":true}`), nil
}

// Mailbox operations (the P7-ish message store access used by UAs).

// List returns the recipient's messages sorted by priority then arrival.
func (m *MTA) List(personal string) ([]*StoredMessage, error) {
	key := strings.ToLower(personal)
	m.mu.Lock()
	defer m.mu.Unlock()
	box, ok := m.boxes[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMailbox, personal)
	}
	out := make([]*StoredMessage, len(box))
	copy(out, box)
	sortStored(out)
	return out, nil
}

// Fetch returns a message by sequence number and marks it read.
func (m *MTA) Fetch(personal string, seq uint64) (*StoredMessage, error) {
	key := strings.ToLower(personal)
	m.mu.Lock()
	defer m.mu.Unlock()
	box, ok := m.boxes[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownMailbox, personal)
	}
	for _, msg := range box {
		if msg.Seq == seq {
			msg.Read = true
			return msg, nil
		}
	}
	return nil, fmt.Errorf("mhs: message %d not in mailbox %q", seq, personal)
}

// DeleteMessage removes a message from a mailbox.
func (m *MTA) DeleteMessage(personal string, seq uint64) error {
	key := strings.ToLower(personal)
	m.mu.Lock()
	defer m.mu.Unlock()
	box, ok := m.boxes[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMailbox, personal)
	}
	for i, msg := range box {
		if msg.Seq == seq {
			m.boxes[key] = append(box[:i], box[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("mhs: message %d not in mailbox %q", seq, personal)
}

// Unread counts unread non-report messages in a mailbox.
func (m *MTA) Unread(personal string) int {
	key := strings.ToLower(personal)
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, msg := range m.boxes[key] {
		if !msg.Read && !msg.IsReport() {
			n++
		}
	}
	return n
}
