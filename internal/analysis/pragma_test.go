package analysis_test

import (
	"strings"
	"testing"

	"mocca/internal/analysis"
)

// TestPragmaDriver runs the goroutines analyzer over the pragma fixture
// and checks the //lint:allow contract end to end: covered findings are
// suppressed, uncovered findings survive, and stale pragmas (unknown
// analyzer, missing reason, suppressing nothing) become findings.
func TestPragmaDriver(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/pragma")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	analyzers := []*analysis.Analyzer{analysis.Goroutines}
	diags := analysis.RunPackage(pkg, analyzers)
	if len(diags) != 3 {
		t.Fatalf("before pragmas: got %d findings, want 3 (one per go statement):\n%s", len(diags), format(diags))
	}

	filtered := analysis.ApplyPragmas(pkg, diags, analyzers)

	var goroutines, pragma []analysis.Diagnostic
	for _, d := range filtered {
		switch d.Analyzer {
		case "goroutines":
			goroutines = append(goroutines, d)
		case "pragma":
			pragma = append(pragma, d)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}

	// Exactly the uncovered go statement survives: the pragmas above and
	// trailing each suppressed their one finding, nothing more.
	if len(goroutines) != 1 {
		t.Errorf("after pragmas: got %d goroutines findings, want 1:\n%s", len(goroutines), format(goroutines))
	}

	wantStale := []string{
		`no analyzer named "nosuchanalyzer"`,
		"pragma for goroutines has no justification",
		"suppresses no goroutines finding",
	}
	if len(pragma) != len(wantStale) {
		t.Fatalf("got %d pragma findings, want %d:\n%s", len(pragma), len(wantStale), format(pragma))
	}
	for _, want := range wantStale {
		found := false
		for _, d := range pragma {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no pragma finding containing %q:\n%s", want, format(pragma))
		}
	}
}

// TestPragmas checks the parser in isolation.
func TestPragmas(t *testing.T) {
	pkg, err := analysis.LoadDir("testdata/pragma")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pragmas := analysis.Pragmas(pkg)
	if len(pragmas) != 5 {
		t.Fatalf("got %d pragmas, want 5: %+v", len(pragmas), pragmas)
	}
	byAnalyzer := map[string]int{}
	for _, p := range pragmas {
		byAnalyzer[p.Analyzer]++
	}
	if byAnalyzer["goroutines"] != 4 || byAnalyzer["nosuchanalyzer"] != 1 {
		t.Errorf("unexpected pragma analyzers: %v", byAnalyzer)
	}
}

func format(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
