package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ImportMap  map[string]string
}

// goList runs `go list -export -deps -json` for patterns in dir,
// returning the target packages (the ones the patterns name) and the
// export-data index for every package in the dependency closure. The
// export files come out of the build cache, so imports resolve through
// the same compiled artifacts `go build` would use — no source
// re-type-checking of dependencies, and no network.
func goList(dir string, patterns ...string) (targets []listPkg, exports map[string]string, err error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,ImportMap",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	exports = make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, nil, fmt.Errorf("go list %v: decoding output: %w", patterns, derr)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	return targets, exports, nil
}

// exportImporter satisfies types.Importer by reading export data named
// in the go list index, applying the package's vendor ImportMap first.
func exportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load resolves patterns (./... style) against the module rooted at dir
// and returns each matched package parsed and type-checked. Only
// non-test GoFiles are analyzed: the invariants moccalint enforces are
// production-path properties, and test files routinely (and harmlessly)
// use wall clocks and goroutines.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, exports, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: exportImporter(fset, exports, t.ImportMap)}
		info := newInfo()
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// LoadDir parses every .go file in dir as one package and type-checks
// it, resolving imports through the surrounding module's build cache.
// This is the fixture loader: analyzer testdata lives outside the
// module's package graph (under testdata/, which the go tool skips), so
// it cannot be named by a go list pattern — but its imports (sync,
// time, ...) still resolve through export data.
func LoadDir(dir string) (*Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			importSet[path] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		imports := make([]string, 0, len(importSet))
		for path := range importSet {
			imports = append(imports, path)
		}
		sort.Strings(imports)
		_, exports, err = goList(dir, imports...)
		if err != nil {
			return nil, err
		}
	}
	conf := types.Config{Importer: exportImporter(fset, exports, nil)}
	info := newInfo()
	pkgName := files[0].Name.Name
	tpkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", dir, err)
	}
	return &Package{
		ImportPath: pkgName,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
