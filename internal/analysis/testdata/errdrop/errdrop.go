// Package logstore (fixture) exercises the errdrop analyzer: on the
// WAL/segment/wire durability paths, every discarded error is flagged —
// bare statements, blank assignments, and deferred calls alike. Hash
// writes and properly handled errors stay quiet.
package logstore

import (
	"crypto/sha256"
	"os"
)

func appendRecord(f *os.File, p []byte) {
	f.Write(p) // want "error result of f.Write discarded"
}

func dropViaBlank(f *os.File, p []byte) int {
	n, _ := f.Write(p) // want "error result of f.Write assigned to _"
	return n
}

func closeLater(f *os.File) {
	defer f.Close() // want "deferred call f.Close discards its error"
}

// checksum writes into a hash; hash.Hash.Write is documented to never
// return an error, so it is exempt.
func checksum(p []byte) []byte {
	h := sha256.New()
	h.Write(p)
	return h.Sum(nil)
}

// appendChecked handles every error: nothing to flag.
func appendChecked(f *os.File, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	return f.Sync()
}
