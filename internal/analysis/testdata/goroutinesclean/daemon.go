// Package daemon (fixture) is outside the simulated-clock set: packages
// that own real concurrency may spawn goroutines freely, so nothing
// here is flagged.
package daemon

func serve(conns []func()) {
	for _, c := range conns {
		go c()
	}
}
