// Package statfix exercises the statsnapshot analyzer: on types that
// have opted into concurrency, exported Stats/Snapshot methods must
// read counters under one lock or through atomics.
package statfix

import (
	"sync"
	"sync/atomic"
)

// Counters is plain data: copying it unlocked is the classic torn read.
type Counters struct {
	Ops   int64
	Fails int64
}

type Server struct {
	mu    sync.Mutex
	stats Counters
}

// Stats reads the counter struct with no lock held.
func (s *Server) Stats() Counters {
	return s.stats // want "read outside any lock"
}

// LockedStats is the correct shape: one critical section.
func (s *Server) LockedStats() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// SplitStats tears the snapshot across two critical sections of mu.
func (s *Server) SplitStats() Counters { // want "2 separate critical sections"
	var out Counters
	s.mu.Lock()
	out.Ops = s.stats.Ops
	s.mu.Unlock()
	s.mu.Lock()
	out.Fails = s.stats.Fails
	s.mu.Unlock()
	return out
}

// AtomicServer keeps its counter in an atomic; loads are always safe.
type AtomicServer struct {
	ops atomic.Int64
}

func (a *AtomicServer) Stats() int64 {
	return a.ops.Load()
}

// PackedServer mixes a mutex with an atomically-read field: reading
// through sync/atomic needs no lock.
type PackedServer struct {
	mu sync.Mutex
	n  int64
}

func (p *PackedServer) Snapshot() int64 {
	return atomic.LoadInt64(&p.n)
}

// Plain has neither mutexes nor atomics: single-goroutine by design in
// this codebase, so its snapshot method is skipped.
type Plain struct{ n int }

func (p *Plain) Stats() int { return p.n }
