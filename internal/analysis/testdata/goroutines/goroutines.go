// Package replica (fixture) exercises the goroutines analyzer: the
// simulated-clock packages must leave all scheduling to the deployment
// driver, so any go statement is a finding.
package replica

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want "goroutine spawned in simulated-clock package"
	}
}

func background(done chan struct{}) {
	go func() { // want "goroutine spawned in simulated-clock package"
		close(done)
	}()
}

// Sequential execution is the required shape.
func runAll(work []func()) {
	for _, w := range work {
		w()
	}
}
