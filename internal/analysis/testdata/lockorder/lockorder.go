// Package lockfix exercises the lockorder analyzer with the PR 6
// Compact-vs-Exec deadlock shape: a writer acquires the store lock then
// the group-commit lock (the documented order), while compaction holds
// both and calls a helper that drops and retakes the outer store lock —
// inverting the order against a writer blocked on the group lock.
package lockfix

import "sync"

type group struct {
	mu  sync.Mutex
	buf []byte
}

// Store mirrors the logstore shape: an outer store lock and an inner
// group-commit lock, documented order mu before g.mu.
type Store struct {
	mu   sync.Mutex
	g    group
	rows int
}

// Exec is the writer path: mu before g.mu, the documented order.
func (s *Store) Exec(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows++
	s.g.mu.Lock()
	s.g.buf = append(s.g.buf, p...)
	s.g.mu.Unlock()
}

// Compact holds both locks and calls a helper that drops and retakes
// the store lock — while a writer in Exec holds mu and waits on g.mu,
// Compact holds g.mu and waits on mu.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.g.mu.Lock()
	defer s.g.mu.Unlock()
	s.mergeAllLocked() // want "PR 6 deadlock shape" "mutex acquisition cycle"
}

// mergeAllLocked is called with mu held and drops it to merge outside
// the lock, retaking it before returning.
func (s *Store) mergeAllLocked() {
	s.mu.Unlock()
	s.rows = 0 // merge work outside the store lock
	s.mu.Lock()
}
