package lockfix

import "sync"

// Cache holds a coarse table lock and a fine entry lock, always table
// before entry. Dropping and retaking the *inner* entry lock under the
// table lock is the safe direction — no path acquires tableMu while
// holding entryMu, so there is no inverted edge and no finding.
type Cache struct {
	tableMu sync.Mutex
	entryMu sync.Mutex
	n       int
}

func (c *Cache) Get() int {
	c.tableMu.Lock()
	defer c.tableMu.Unlock()
	c.entryMu.Lock()
	n := c.n
	c.entryMu.Unlock()
	c.entryMu.Lock() // retake of the inner lock: safe, stays quiet
	n += c.n
	c.entryMu.Unlock()
	return n
}

func (c *Cache) Put(n int) {
	c.tableMu.Lock()
	c.entryMu.Lock()
	c.n = n
	c.entryMu.Unlock()
	c.tableMu.Unlock()
}
