// Package determfix exercises the determinism analyzer: wall-clock and
// global-rand uses are flagged, seeded sources stay quiet.
package determfix

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// Wall-clock reads and scheduling are forbidden in library packages.
func wallClock() time.Duration {
	start := time.Now()          // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	return time.Since(start)     // want "time.Since reads the wall clock"
}

// Even taking the function's value counts as a use.
var clock = time.Now // want "time.Now reads the wall clock"

func globalRand() int {
	return rand.Intn(6) // want "global rand.Intn draws from the process-wide source"
}

func cryptoRand(b []byte) int {
	n, _ := crand.Read(b) // want "crypto/rand is nondeterministic by design"
	return n
}

// Seeded sources are the sanctioned doorway into math/rand.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}
