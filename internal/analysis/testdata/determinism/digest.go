package determfix

import "sort"

// Fingerprint matches the digest-root pattern; feeding raw map order
// into its output bytes is flagged.
func Fingerprint(counts map[string]int) []byte {
	var out []byte
	for k, v := range counts { // want "map iteration on digest path"
		out = append(out, encodeEntry(k, v)...)
	}
	return out
}

// DigestTree's helper inherits the digest constraint through the call
// graph: the range is flagged inside collect, not just at the root.
func DigestTree(m map[string]int) []byte { return collect(m) }

func collect(m map[string]int) []byte {
	var out []byte
	for k := range m { // want "map iteration on digest path"
		out = append(out, sealKey(k)...)
	}
	return out
}

// MarshalSorted is the sanctioned idiom: collect keys through builtins
// only, sort, then iterate the slice.
func MarshalSorted(counts map[string]int) []byte {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []byte
	for _, k := range keys {
		out = append(out, encodeEntry(k, counts[k])...)
	}
	return out
}

// HashInputs writes through keys: each iteration lands in its own slot
// regardless of visit order, so the range stays quiet.
func HashInputs(src map[string]int) map[string]int {
	out := make(map[string]int, len(src))
	for k, v := range src {
		out[k] = scale(v)
	}
	return out
}

// report is neither a digest root nor reachable from one; its map
// iteration is unconstrained.
func report(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += weight(v)
	}
	return total
}

func encodeEntry(k string, v int) []byte {
	return append([]byte(k), byte(v))
}

func sealKey(k string) []byte { return []byte(k) }

func scale(v int) int { return v * 2 }

func weight(v int) int { return v + 1 }
