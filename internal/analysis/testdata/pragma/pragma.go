// Package replica (fixture) exercises the //lint:allow pragma driver:
// a pragma on the flagged line or the line above suppresses exactly the
// findings it covers, and stale pragmas become findings themselves.
package replica

// suppressedAbove carries the pragma on the line above the finding.
func suppressedAbove(f func()) {
	//lint:allow goroutines fixture: sanctioned background helper
	go f()
}

// suppressedTrailing carries the pragma on the flagged line itself.
func suppressedTrailing(f func()) {
	go f() //lint:allow goroutines fixture: trailing allowance
}

// unsuppressed has no pragma; its finding must survive.
func unsuppressed(f func()) {
	go f()
}

//lint:allow nosuchanalyzer the analyzer name is bogus
func staleUnknown() {}

//lint:allow goroutines
func staleNoReason() {}

//lint:allow goroutines this allowance covers no finding at all
func staleUnused() {}
