package analysis_test

import (
	"testing"

	"mocca/internal/analysis"
	"mocca/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata/determinism", analysis.Determinism)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/lockorder", analysis.LockOrder)
}

func TestStatSnapshot(t *testing.T) {
	analysistest.Run(t, "testdata/statsnapshot", analysis.StatSnapshot)
}

func TestGoroutines(t *testing.T) {
	analysistest.Run(t, "testdata/goroutines", analysis.Goroutines)
}

func TestGoroutinesOutsideSimulatedPackages(t *testing.T) {
	analysistest.Run(t, "testdata/goroutinesclean", analysis.Goroutines)
}

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata/errdrop", analysis.ErrDrop)
}
