package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// Determinism enforces the byte-reproducibility contract: a run is a
// pure function of its seed. It flags
//
//   - wall-clock reads (time.Now, time.Since, time.Until) and
//     wall-clock scheduling (time.Sleep/After/Tick/NewTimer/NewTicker/
//     AfterFunc) — simulated-clock code must take its time from
//     vclock.Clock;
//   - the global math/rand (and math/rand/v2) functions, which draw
//     from a process-wide source — randomness must flow from a seeded
//     *rand.Rand;
//   - any use of crypto/rand, which is nondeterministic by design;
//   - map iteration inside functions reachable from fingerprint /
//     digest / marshal / encode / hash paths, unless the loop body is
//     pure collection (append/len/counting through builtins only) —
//     Go's map order is randomized per run, so feeding it directly
//     into bytes or hashes breaks byte-reproducibility.
//
// package main is exempt: daemons and demo binaries live on the wall
// clock on purpose. The library packages they drive do not.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags wall-clock, global-rand, and unordered map iteration on digest paths",
	Run:  runDeterminism,
}

var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// allowedRandFuncs construct seeded sources and are the *only* sanctioned
// doorway into math/rand.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// digestRootRE marks functions whose output feeds fingerprints, wire
// bytes, or digests; map iteration anywhere reachable from them is
// order-sensitive until proven otherwise.
var digestRootRE = regexp.MustCompile(`(?i)fingerprint|digest|marshal|encode|hash|checksum`)

func runDeterminism(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return
	}
	checkForbiddenUses(pass)
	checkDigestMapRanges(pass)
}

// checkForbiddenUses flags every reference (call or function value) to
// the wall clock and the global/crypto rand.
func checkForbiddenUses(pass *Pass) {
	type use struct {
		id  *ast.Ident
		msg string
	}
	var uses []use
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if obj.Pkg() == nil {
			continue
		}
		switch obj.Pkg().Path() {
		case "time":
			if ok && fn.Signature().Recv() == nil && forbiddenTimeFuncs[fn.Name()] {
				uses = append(uses, use{id, "time." + fn.Name() + " reads the wall clock; runs must be reproducible from their seed — use the deployment clock (vclock.Clock)"})
			}
		case "math/rand", "math/rand/v2":
			if ok && fn.Signature().Recv() == nil && !allowedRandFuncs[fn.Name()] {
				uses = append(uses, use{id, "global rand." + fn.Name() + " draws from the process-wide source; use a seeded *rand.Rand"})
			}
		case "crypto/rand":
			uses = append(uses, use{id, "crypto/rand is nondeterministic by design; derive bytes from the run seed instead"})
		}
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i].id.Pos() < uses[j].id.Pos() })
	for _, u := range uses {
		pass.Report(u.id.Pos(), u.msg)
	}
}

// checkDigestMapRanges flags order-sensitive map iteration in functions
// reachable from digest/fingerprint/encoding roots.
func checkDigestMapRanges(pass *Pass) {
	order, decls := packageFuncs(pass)

	roots := map[*types.Func]bool{}
	wirePkg := pass.Pkg.Name() == "wire"
	for _, fn := range order {
		if digestRootRE.MatchString(fn.Name()) || (wirePkg && fn.Exported()) {
			roots[fn] = true
		}
	}
	if len(roots) == 0 {
		return
	}

	// Intra-package reachability from the digest roots.
	calls := map[*types.Func][]*types.Func{}
	for _, fn := range order {
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pass.Info, call); callee != nil {
					if _, local := decls[callee]; local {
						calls[fn] = append(calls[fn], callee)
					}
				}
			}
			return true
		})
	}
	reachable := map[*types.Func]bool{}
	var queue []*types.Func
	for _, fn := range order {
		if roots[fn] {
			reachable[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range calls[fn] {
			if !reachable[callee] {
				reachable[callee] = true
				queue = append(queue, callee)
			}
		}
	}

	for _, fn := range order {
		if !reachable[fn] {
			continue
		}
		fnName := fn.Name()
		ast.Inspect(decls[fn].Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if !orderSensitiveBody(pass.Info, rng.Body.List) {
				return true
			}
			pass.Reportf(rng.Pos(), "map iteration on digest path (%s is reachable from a fingerprint/digest/encode root); map order is randomized per run — collect and sort keys first", fnName)
			return true
		})
	}
}

// orderSensitiveBody reports whether a map-range body does anything
// whose effect depends on iteration order. Pure collection — appending
// keys, counting, deleting, assignments through builtins only — is
// order-insensitive (the standard collect-then-sort idiom). Any other
// call on a path that falls through is order-sensitive. Branches that
// terminate (error guards ending in return/panic) are exempt: they run
// at most once.
func orderSensitiveBody(info *types.Info, stmts []ast.Stmt) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if exprHasNonBuiltinCall(info, s.Cond) {
				return true
			}
			if !blockTerminates(s.Body.List) && orderSensitiveBody(info, s.Body.List) {
				return true
			}
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				if !blockTerminates(blk.List) && orderSensitiveBody(info, blk.List) {
					return true
				}
			}
		case *ast.RangeStmt:
			if orderSensitiveBody(info, s.Body.List) {
				return true
			}
		case *ast.ForStmt:
			if orderSensitiveBody(info, s.Body.List) {
				return true
			}
		case *ast.BlockStmt:
			if orderSensitiveBody(info, s.List) {
				return true
			}
		case *ast.AssignStmt:
			// Keyed writes (out[k] = clone(v)) are order-insensitive:
			// each iteration lands in its own slot regardless of visit
			// order. Anything else falls through to the call check.
			if allIndexTargets(s) {
				continue
			}
			if stmtHasNonBuiltinCall(info, stmt) {
				return true
			}
		default:
			if stmtHasNonBuiltinCall(info, stmt) {
				return true
			}
		}
	}
	return false
}

// allIndexTargets reports whether every assignment target is an index
// expression (m[k] = ..., never a plain variable or accumulator).
func allIndexTargets(s *ast.AssignStmt) bool {
	if s.Tok != token.ASSIGN {
		return false
	}
	for _, lhs := range s.Lhs {
		if _, ok := ast.Unparen(lhs).(*ast.IndexExpr); !ok {
			return false
		}
	}
	return true
}

func blockTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return terminates(stmts[len(stmts)-1])
}

func stmtHasNonBuiltinCall(info *types.Info, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && exprIsNonBuiltinCall(info, e) {
			found = true
		}
		return !found
	})
	return found
}

func exprHasNonBuiltinCall(info *types.Info, expr ast.Expr) bool {
	return stmtHasNonBuiltinCall(info, &ast.ExprStmt{X: expr})
}

func exprIsNonBuiltinCall(info *types.Info, expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return false // conversion
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			return false
		}
	}
	return true
}
