package analysis

import "go/ast"

// simulatedClockPackages are the packages whose entire behaviour must
// unfold on the simulated clock: the deployment driver advances time
// and drains the network, and nothing else schedules. A goroutine in
// one of these packages gives the OS scheduler a vote in event order,
// and byte-reproducible runs lose to it. (logstore's background merger
// and the daemons' HTTP servers are outside this set on purpose — they
// live in packages that own real concurrency.)
var simulatedClockPackages = map[string]bool{
	"replica":  true,
	"gossip":   true,
	"workload": true,
	"observe":  true,
	"rtc":      true,
}

// Goroutines preserves the zero-goroutine driver property of the
// simulated-clock packages.
var Goroutines = &Analyzer{
	Name: "goroutines",
	Doc:  "forbids goroutines in simulated-clock packages",
	Run:  runGoroutines,
}

func runGoroutines(pass *Pass) {
	if !simulatedClockPackages[pass.Pkg.Name()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "goroutine spawned in simulated-clock package %s; the deployment driver must remain the only scheduler", pass.Pkg.Name())
			}
			return true
		})
	}
}
