package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StatSnapshot guards the consistency of exported Stats()/Snapshot
// methods — the torn-read pattern PR 9 had to audit by hand. On any
// type that has opted into concurrency (it carries a mutex or atomic
// fields), a snapshot method must read each plain counter field either
// under a lock or through sync/atomic; and its reads must not be split
// across multiple critical sections of the same lock, which tears the
// snapshot between sections. Types with neither mutexes nor atomics are
// single-goroutine by design in this codebase (the zero-goroutine
// driver property) and are skipped.
var StatSnapshot = &Analyzer{
	Name: "statsnapshot",
	Doc:  "flags torn reads in exported Stats/Snapshot methods",
	Run:  runStatSnapshot,
}

func isSnapshotMethod(name string) bool {
	return name == "Stats" || name == "Snapshot" ||
		strings.HasSuffix(name, "Stats") || strings.HasSuffix(name, "Snapshot")
}

func runStatSnapshot(pass *Pass) {
	order, decls := packageFuncs(pass)
	for _, fn := range order {
		decl := decls[fn]
		if decl.Recv == nil || !fn.Exported() || !isSnapshotMethod(fn.Name()) {
			continue
		}
		recvType := namedOf(fn.Signature().Recv().Type())
		if recvType == nil {
			continue
		}
		st, ok := recvType.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if !typeHasSync(st, 2) {
			continue
		}
		recvVar := receiverVar(pass.Info, decl)
		if recvVar == nil {
			continue
		}
		checkSnapshotBody(pass, decl, recvVar)
	}
}

// typeHasSync reports whether the struct carries a mutex or atomic
// field, directly or through depth levels of struct-typed fields.
func typeHasSync(st *types.Struct, depth int) bool {
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if isSyncType(ft) {
			return true
		}
		if depth > 0 {
			if inner, ok := deref(ft).Underlying().(*types.Struct); ok {
				if typeHasSync(inner, depth-1) {
					return true
				}
			}
		}
	}
	return false
}

func isSyncType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

func receiverVar(info *types.Info, decl *ast.FuncDecl) *types.Var {
	if len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[decl.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// checkSnapshotBody walks the method, flagging counter reads outside
// any critical section and snapshots split across sections of one lock.
func checkSnapshotBody(pass *Pass, decl *ast.FuncDecl, recv *types.Var) {
	atomicArgs := atomicCallArgs(pass.Info, decl.Body)

	section := map[lockID]int{}
	readIn := map[lockID]map[int]bool{}

	w := &lockWalker{info: pass.Info, hooks: bodyHooks{
		onAcquire: func(id lockID, pos token.Pos, st *lockState, retaken bool) {
			section[id]++
		},
		onNode: func(n ast.Node, st *lockState) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return
			}
			if !selectorRootedAt(pass.Info, sel, recv) {
				return
			}
			tv, ok := pass.Info.Types[sel]
			if !ok || !isCounterType(tv.Type) {
				return
			}
			if len(st.held) == 0 {
				pass.Reportf(sel.Pos(), "%s read outside any lock in snapshot method %s (torn-read hazard); hold the lock or use atomics",
					types.ExprString(sel), decl.Name.Name)
				return
			}
			for _, h := range st.held {
				if readIn[h.id] == nil {
					readIn[h.id] = map[int]bool{}
				}
				readIn[h.id][section[h.id]] = true
			}
		},
	}}
	w.walkBody(decl.Body)

	for id, sections := range readIn {
		if len(sections) > 1 {
			pass.Reportf(decl.Pos(), "snapshot method %s reads counters in %d separate critical sections of %s; the state can move between them — take one section",
				decl.Name.Name, len(sections), id)
		}
	}
}

// atomicCallArgs marks selector expressions passed (by address) to
// sync/atomic functions: atomic.LoadInt64(&s.n) reads s.n safely.
func atomicCallArgs(info *types.Info, body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	out := map[*ast.SelectorExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if sel, ok := m.(*ast.SelectorExpr); ok {
					out[sel] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

// selectorRootedAt reports whether sel is a field chain hanging off the
// receiver variable (s.n, s.g.flushes, ...).
func selectorRootedAt(info *types.Info, sel *ast.SelectorExpr, recv *types.Var) bool {
	for {
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			return info.Uses[x] == recv
		case *ast.SelectorExpr:
			sel = x
		default:
			return false
		}
	}
}

// isCounterType reports whether t is snapshot-counter-shaped: a plain
// number, or a plain-data struct of numbers (copying one unlocked is
// the classic torn read). Atomic types, mutexes, pointers, slices and
// maps are excluded — atomics are safe, the rest are not counters.
func isCounterType(t types.Type) bool {
	if isSyncType(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsNumeric != 0
	case *types.Struct:
		if u.NumFields() == 0 {
			return false
		}
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if isSyncType(ft) {
				return false
			}
			b, ok := ft.Underlying().(*types.Basic)
			if !ok {
				return false
			}
			if b.Info()&(types.IsNumeric|types.IsBoolean|types.IsString) == 0 {
				return false
			}
		}
		return true
	}
	return false
}
