// Package analysistest runs moccalint analyzers over golden fixtures:
// directories of Go files annotated with // want "regexp" comments on
// the lines a finding must land on. It is this repo's dependency-free
// restatement of golang.org/x/tools/go/analysis/analysistest.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mocca/internal/analysis"
)

// want is one expected finding.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package in dir, applies the analyzers (without
// pragma filtering), and checks the findings against the fixture's
// // want comments: every finding must match a want on its line, every
// want must be matched by a finding.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	runFixture(t, dir, false, analyzers...)
}

// RunWithPragmas is Run with the //lint:allow pragma driver applied, so
// fixtures can assert suppression and stale-pragma behaviour.
func RunWithPragmas(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	runFixture(t, dir, true, analyzers...)
}

func runFixture(t *testing.T, dir string, pragmas bool, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	wants, err := parseWants(pkg)
	if err != nil {
		t.Fatalf("parsing want comments: %v", err)
	}
	diags := analysis.RunPackage(pkg, analyzers)
	if pragmas {
		diags = analysis.ApplyPragmas(pkg, diags, analyzers)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts // want "re" ["re" ...] annotations.
func parseWants(pkg *analysis.Package) ([]*want, error) {
	var out []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				for rest != "" {
					if rest[0] != '"' {
						return nil, fmt.Errorf("%s: malformed want: %q", pos, c.Text)
					}
					end := 1
					for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
						end++
					}
					if end >= len(rest) {
						return nil, fmt.Errorf("%s: unterminated want pattern: %q", pos, c.Text)
					}
					quoted := rest[:end+1]
					rest = strings.TrimSpace(rest[end+1:])
					pat, err := strconv.Unquote(quoted)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, quoted, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}
