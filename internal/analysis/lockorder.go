package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a per-package mutex-acquisition graph and flags
// (a) cycles in it — two call paths that take the same pair of locks in
// opposite orders will, eventually, deadlock — and (b) drop-and-retake:
// releasing a lock and re-acquiring it (directly or through a callee)
// while a second lock is held. The latter is the exact shape of the
// PR 6 Compact deadlock: compactLocked held the group-commit g.mu while
// mergeAllLocked dropped and retook the store's s.mu, inverting the
// documented s.mu-before-g.mu order against a writer blocked on g.mu.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flags mutex-acquisition cycles and drop-and-retake under a second lock",
	Run:  runLockOrder,
}

// lockSummary is what a function does to locks, transitively through
// same-package callees.
type lockSummary struct {
	acquires map[lockID]bool
	retakes  map[lockID]bool
}

func newLockSummary() *lockSummary {
	return &lockSummary{acquires: map[lockID]bool{}, retakes: map[lockID]bool{}}
}

func (s *lockSummary) size() int { return len(s.acquires) + len(s.retakes) }

// calleeFunc resolves the static callee of call, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// packageFuncs maps each function declared in the pass's files to its
// declaration, in deterministic (source) order.
func packageFuncs(pass *Pass) (order []*types.Func, decls map[*types.Func]*ast.FuncDecl) {
	decls = map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			decl, ok := d.(*ast.FuncDecl)
			if !ok || decl.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			order = append(order, fn)
			decls[fn] = decl
		}
	}
	return order, decls
}

type lockEdge struct {
	from, to lockID
	pos      token.Pos
}

func runLockOrder(pass *Pass) {
	order, decls := packageFuncs(pass)
	summaries := map[*types.Func]*lockSummary{}
	for _, fn := range order {
		summaries[fn] = newLockSummary()
	}

	// Fixpoint over function summaries: which locks does each function
	// acquire or drop-and-retake, transitively through local callees?
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			sum := newLockSummary()
			w := &lockWalker{info: pass.Info, hooks: bodyHooks{
				onAcquire: func(id lockID, pos token.Pos, st *lockState, retaken bool) {
					sum.acquires[id] = true
					if retaken {
						sum.retakes[id] = true
					}
				},
				onCall: func(call *ast.CallExpr, st *lockState) {
					callee := calleeFunc(pass.Info, call)
					if callee == nil {
						return
					}
					csum, ok := summaries[callee]
					if !ok {
						return
					}
					for id := range csum.acquires {
						sum.acquires[id] = true
					}
					for id := range csum.retakes {
						sum.retakes[id] = true
					}
				},
			}}
			w.walkBody(decls[fn].Body)
			if sum.size() != summaries[fn].size() {
				summaries[fn] = sum
				changed = true
			}
		}
	}

	// Reporting pass: collect acquisition-order edges and drop-and-
	// retake candidates. A retake of R while H is held is only a
	// deadlock when some other path acquires H while holding R — the
	// retaking goroutine waits on R's holder, who waits on H. So
	// candidates are held back and judged against the finished edge
	// graph: retaking an *inner* lock under an outer one (Close
	// re-entering g.mu under s.mu) is the documented safe direction and
	// stays quiet; retaking an *outer* lock under an inner one
	// (compactLocked's PR 6 bug) is flagged.
	edges := map[lockID]map[lockID]token.Pos{}
	addEdge := func(from, to lockID, pos token.Pos) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = map[lockID]token.Pos{}
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = pos
		}
	}
	type retakeCand struct {
		pos     token.Pos
		retaken lockID
		held    []lockID
		via     string // callee name, or "" for a direct relock
	}
	var cands []retakeCand
	for _, fn := range order {
		w := &lockWalker{info: pass.Info, hooks: bodyHooks{
			onAcquire: func(id lockID, pos token.Pos, st *lockState, retaken bool) {
				for _, h := range st.held {
					addEdge(h.id, id, pos)
				}
				if retaken {
					if others := st.othersHeld(id); len(others) > 0 {
						c := retakeCand{pos: pos, retaken: id}
						for _, h := range others {
							c.held = append(c.held, h.id)
						}
						cands = append(cands, c)
					}
				}
			},
			onCall: func(call *ast.CallExpr, st *lockState) {
				if len(st.held) == 0 {
					return
				}
				callee := calleeFunc(pass.Info, call)
				if callee == nil {
					return
				}
				csum, ok := summaries[callee]
				if !ok {
					return
				}
				var acquired []lockID
				for id := range csum.acquires {
					acquired = append(acquired, id)
				}
				sort.Slice(acquired, func(i, j int) bool { return acquired[i] < acquired[j] })
				for _, id := range acquired {
					for _, h := range st.held {
						addEdge(h.id, id, call.Pos())
					}
				}
				var retaken []lockID
				for id := range csum.retakes {
					retaken = append(retaken, id)
				}
				sort.Slice(retaken, func(i, j int) bool { return retaken[i] < retaken[j] })
				for _, id := range retaken {
					if others := st.othersHeld(id); len(others) > 0 {
						c := retakeCand{pos: call.Pos(), retaken: id, via: callee.Name()}
						for _, h := range others {
							c.held = append(c.held, h.id)
						}
						cands = append(cands, c)
					}
				}
			},
		}}
		w.walkBody(decls[fn].Body)
	}

	for _, c := range cands {
		for _, h := range c.held {
			if _, inverted := edges[c.retaken][h]; !inverted {
				continue
			}
			if c.via != "" {
				pass.Reportf(c.pos, "call to %s drops and retakes %s while %s is held, but %s is acquired under %s elsewhere — the PR 6 deadlock shape",
					c.via, c.retaken, h, h, c.retaken)
			} else {
				pass.Reportf(c.pos, "lock %s dropped and retaken while %s is held, but %s is acquired under %s elsewhere — the PR 6 deadlock shape",
					c.retaken, h, h, c.retaken)
			}
			break
		}
	}

	reportLockCycles(pass, edges)
}

// reportLockCycles finds and reports each distinct cycle in the
// acquisition graph once.
func reportLockCycles(pass *Pass, edges map[lockID]map[lockID]token.Pos) {
	nodes := make([]lockID, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	succs := func(n lockID) []lockID {
		out := make([]lockID, 0, len(edges[n]))
		for to := range edges[n] {
			out = append(out, to)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	seen := map[string]bool{}
	var path []lockID
	onPath := map[lockID]bool{}
	var visit func(n lockID)
	visit = func(n lockID) {
		path = append(path, n)
		onPath[n] = true
		for _, to := range succs(n) {
			if onPath[to] {
				// Back edge closes a cycle: path from `to`..n plus n->to.
				start := 0
				for i, p := range path {
					if p == to {
						start = i
						break
					}
				}
				cycle := append([]lockID(nil), path[start:]...)
				key := canonicalCycle(cycle)
				if !seen[key] {
					seen[key] = true
					reportCycle(pass, cycle, edges)
				}
				continue
			}
			visit(to)
		}
		onPath[n] = false
		path = path[:len(path)-1]
	}
	for _, n := range nodes {
		visit(n)
	}
}

// canonicalCycle keys a cycle independent of starting node.
func canonicalCycle(cycle []lockID) string {
	min := 0
	for i := range cycle {
		if cycle[i] < cycle[min] {
			min = i
		}
	}
	parts := make([]string, 0, len(cycle))
	for i := range cycle {
		parts = append(parts, string(cycle[(min+i)%len(cycle)]))
	}
	return strings.Join(parts, "->")
}

func reportCycle(pass *Pass, cycle []lockID, edges map[lockID]map[lockID]token.Pos) {
	var b strings.Builder
	for _, n := range cycle {
		fmt.Fprintf(&b, "%s -> ", n)
	}
	b.WriteString(string(cycle[0]))
	var details []string
	for i := range cycle {
		from, to := cycle[i], cycle[(i+1)%len(cycle)]
		pos := edges[from][to]
		details = append(details, fmt.Sprintf("%s -> %s at %s", from, to, pass.Fset.Position(pos)))
	}
	pos := edges[cycle[len(cycle)-1]][cycle[0]]
	pass.Reportf(pos, "mutex acquisition cycle: %s (%s)", b.String(), strings.Join(details, "; "))
}
