package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockID names a mutex for ordering purposes: "Type.field" for a mutex
// field reached through a struct ("Store.mu", "group.mu" — the type is
// the one that declares the field, however deep the selector chain),
// "Type" for a mutex embedded in a named type, and "var name" for a
// bare local or package-level mutex variable.
type lockID string

type lockOp int

const (
	opNone lockOp = iota
	opAcquire
	opRelease
)

var lockMethods = map[string]lockOp{
	"Lock":     opAcquire,
	"RLock":    opAcquire,
	"TryLock":  opAcquire,
	"TryRLock": opAcquire,
	"Unlock":   opRelease,
	"RUnlock":  opRelease,
}

// classifyLock recognises sync.Mutex / sync.RWMutex method calls and
// resolves the identity of the lock they act on.
func classifyLock(info *types.Info, call *ast.CallExpr) (lockID, lockOp) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	op, ok := lockMethods[sel.Sel.Name]
	if !ok {
		return "", opNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	return lockIdentity(info, sel.X), op
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func namedOf(t types.Type) *types.Named {
	if n, ok := deref(t).(*types.Named); ok {
		return n
	}
	return nil
}

// lockIdentity names the mutex denoted by expr (the receiver of a
// Lock/Unlock call).
func lockIdentity(info *types.Info, expr ast.Expr) lockID {
	switch x := expr.(type) {
	case *ast.SelectorExpr:
		// parent.field — name the lock after the struct type that
		// declares the field, so s.g.mu and g.mu are the same lock.
		if tv, ok := info.Types[x.X]; ok {
			if n := namedOf(tv.Type); n != nil {
				return lockID(n.Obj().Name() + "." + x.Sel.Name)
			}
		}
		return lockID(x.Sel.Name)
	case *ast.Ident:
		if tv, ok := info.Types[x]; ok {
			if n := namedOf(tv.Type); n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() != "sync" {
				// x.Lock() through an embedded mutex: the named type is
				// the lock.
				return lockID(n.Obj().Name())
			}
		}
		return lockID("var " + x.Name)
	case *ast.ParenExpr:
		return lockIdentity(info, x.X)
	case *ast.StarExpr:
		return lockIdentity(info, x.X)
	}
	return lockID("anon")
}

// heldLock is one entry in the walker's held-set.
type heldLock struct {
	id  lockID
	pos token.Pos
}

// lockState is the walker's abstract state at one program point.
type lockState struct {
	held     []heldLock
	released map[lockID]token.Pos
}

func newLockState() *lockState {
	return &lockState{released: map[lockID]token.Pos{}}
}

func (st *lockState) clone() *lockState {
	cp := &lockState{
		held:     append([]heldLock(nil), st.held...),
		released: make(map[lockID]token.Pos, len(st.released)),
	}
	for k, v := range st.released {
		cp.released[k] = v
	}
	return cp
}

func (st *lockState) holds(id lockID) bool {
	for _, h := range st.held {
		if h.id == id {
			return true
		}
	}
	return false
}

func (st *lockState) acquire(id lockID, pos token.Pos) {
	st.held = append(st.held, heldLock{id: id, pos: pos})
}

func (st *lockState) release(id lockID, pos token.Pos) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].id == id {
			st.held = append(st.held[:i], st.held[i+1:]...)
			break
		}
	}
	st.released[id] = pos
}

// othersHeld returns the held locks excluding id.
func (st *lockState) othersHeld(id lockID) []heldLock {
	var out []heldLock
	for _, h := range st.held {
		if h.id != id {
			out = append(out, h)
		}
	}
	return out
}

// bodyHooks are the walker's callbacks. All are optional.
type bodyHooks struct {
	// onAcquire fires for each Lock/RLock with the locks already held
	// and whether this lock was previously released in the same body (a
	// drop-and-retake).
	onAcquire func(id lockID, pos token.Pos, st *lockState, retaken bool)
	// onCall fires for every non-lock call expression with the current
	// held-set.
	onCall func(call *ast.CallExpr, st *lockState)
	// onNode fires for every expression node visited, in source order,
	// with the current held-set.
	onNode func(n ast.Node, st *lockState)
}

// lockWalker performs an abstract, source-order walk of a function
// body, tracking which locks are held. Branches that terminate
// (return/panic/goto) do not leak their lock-state into the
// continuation; branches that fall through merge conservatively (a lock
// counts as held only if every surviving path holds it). Deferred
// unlocks keep their lock held to the end of the body — which is what
// they mean. Function literals are walked with a fresh state: their
// bodies run at another time (goroutine, callback), not under the
// current held-set.
type lockWalker struct {
	info  *types.Info
	hooks bodyHooks
}

func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	w.walkStmts(body.List, newLockState())
}

// terminates reports whether stmt unconditionally leaves the enclosing
// block.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// walkStmts processes stmts in order against st, returning whether the
// sequence unconditionally terminates.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, st *lockState) bool {
	for _, stmt := range stmts {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, st *lockState) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, op := classifyLock(w.info, call); op != opNone {
				w.applyLock(id, op, call.Pos(), st)
				return false
			}
		}
		w.visitExpr(s.X, st)
		return terminates(stmt)
	case *ast.DeferStmt:
		if id, op := classifyLock(w.info, s.Call); op != opNone {
			// A deferred Unlock holds the lock for the rest of the
			// body; a deferred Lock is nonsense we leave to vet.
			_ = id
			return false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; mu.Unlock() }(): same contract as a
			// plain deferred unlock — the lock stays held to the end.
			w.walkFreshLit(lit)
			return false
		}
		w.visitExpr(s.Call, st)
		return false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.visitExpr(rhs, st)
		}
		for _, lhs := range s.Lhs {
			w.visitExpr(lhs, st)
		}
		return false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		w.visitNode(stmt, st)
		return false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.visitExpr(r, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.visitExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := w.walkStmts(s.Body.List, thenSt)
		var surviving []*lockState
		if !thenTerm {
			surviving = append(surviving, thenSt)
		}
		switch {
		case s.Else == nil:
			surviving = append(surviving, st.clone())
		default:
			elseSt := st.clone()
			var elseTerm bool
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				elseTerm = w.walkStmts(blk.List, elseSt)
			} else {
				elseTerm = w.walkStmt(s.Else, elseSt)
			}
			if !elseTerm {
				surviving = append(surviving, elseSt)
			}
		}
		if len(surviving) == 0 {
			return true
		}
		mergeInto(st, surviving)
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.visitExpr(s.Cond, st)
		}
		w.walkStmts(s.Body.List, st.clone())
		return false
	case *ast.RangeStmt:
		w.visitExpr(s.X, st)
		w.walkStmts(s.Body.List, st.clone())
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				w.walkStmt(sw.Init, st)
			}
			if sw.Tag != nil {
				w.visitExpr(sw.Tag, st)
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			clauses = sw.Body.List
		case *ast.SelectStmt:
			clauses = sw.Body.List
		}
		for _, c := range clauses {
			switch cc := c.(type) {
			case *ast.CaseClause:
				w.walkStmts(cc.Body, st.clone())
			case *ast.CommClause:
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, st.clone())
				}
				w.walkStmts(cc.Body, st.clone())
			}
		}
		return false
	case *ast.GoStmt:
		// The spawned body runs concurrently: its acquisitions are not
		// "while holding" ours.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkFreshLit(lit)
		} else {
			w.visitExpr(s.Call, st)
		}
		return false
	case nil:
		return false
	default:
		w.visitNode(stmt, st)
		return false
	}
}

func (w *lockWalker) applyLock(id lockID, op lockOp, pos token.Pos, st *lockState) {
	switch op {
	case opAcquire:
		_, retaken := st.released[id]
		if w.hooks.onAcquire != nil {
			w.hooks.onAcquire(id, pos, st, retaken)
		}
		st.acquire(id, pos)
	case opRelease:
		st.release(id, pos)
	}
}

// visitExpr inspects an expression subtree, firing onNode/onCall and
// diverting function literals to fresh walks.
func (w *lockWalker) visitExpr(expr ast.Expr, st *lockState) {
	w.visitNode(expr, st)
}

func (w *lockWalker) visitNode(root ast.Node, st *lockState) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			w.walkFreshLit(lit)
			return false
		}
		if w.hooks.onNode != nil {
			w.hooks.onNode(n, st)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, op := classifyLock(w.info, call); op != opNone {
				// A lock call in expression position (if mu.TryLock()
				// { ... }): apply its effect in place.
				w.applyLock(id, op, call.Pos(), st)
				return false
			}
			if w.hooks.onCall != nil {
				w.hooks.onCall(call, st)
			}
		}
		return true
	})
}

func (w *lockWalker) walkFreshLit(lit *ast.FuncLit) {
	w.walkStmts(lit.Body.List, newLockState())
}

// mergeInto replaces st with the conservative merge of the surviving
// branch states: a lock is held only if every survivor holds it;
// releases union.
func mergeInto(st *lockState, surviving []*lockState) {
	first := surviving[0]
	var held []heldLock
	for _, h := range first.held {
		all := true
		for _, other := range surviving[1:] {
			if !other.holds(h.id) {
				all = false
				break
			}
		}
		if all {
			held = append(held, h)
		}
	}
	st.held = held
	merged := map[lockID]token.Pos{}
	for _, s := range surviving {
		for k, v := range s.released {
			merged[k] = v
		}
	}
	st.released = merged
}
