package analysis

import (
	"go/token"
	"strings"
)

// pragmaPrefix introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason>
//
// A pragma suppresses findings from exactly one analyzer on its own
// line or the line directly below it (so it can ride as a trailing
// comment or sit above the flagged statement). The reason is mandatory:
// an allowance without a written justification is itself a finding.
const pragmaPrefix = "lint:allow"

// pragmaAnalyzer attributes the pragma driver's own findings.
const pragmaAnalyzer = "pragma"

// Pragma is one parsed //lint:allow comment.
type Pragma struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// Pragmas extracts every //lint:allow pragma from the package's
// comments.
func Pragmas(pkg *Package) []Pragma {
	var out []Pragma
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, pragmaPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, pragmaPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				out = append(out, Pragma{
					Pos:      pkg.Fset.Position(c.Pos()),
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
				})
			}
		}
	}
	return out
}

// ApplyPragmas filters diags through the package's //lint:allow
// pragmas. A pragma suppresses findings of its named analyzer in the
// same file on the pragma's line or the line immediately after. Stale
// pragmas — naming an analyzer the suite does not run, missing a
// reason, or suppressing nothing — are appended as findings of the
// "pragma" pseudo-analyzer, so dead allowances are flushed out as
// mechanically as the violations they once excused.
func ApplyPragmas(pkg *Package, diags []Diagnostic, analyzers []*Analyzer) []Diagnostic {
	pragmas := Pragmas(pkg)
	if len(pragmas) == 0 {
		return diags
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	used := make([]bool, len(pragmas))
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for i, p := range pragmas {
			if p.Analyzer != d.Analyzer || p.Pos.Filename != d.Pos.Filename {
				continue
			}
			if d.Pos.Line == p.Pos.Line || d.Pos.Line == p.Pos.Line+1 {
				suppressed = true
				used[i] = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for i, p := range pragmas {
		switch {
		case !known[p.Analyzer]:
			kept = append(kept, Diagnostic{
				Pos:      p.Pos,
				Analyzer: pragmaAnalyzer,
				Message:  "stale pragma: no analyzer named \"" + p.Analyzer + "\"",
			})
		case p.Reason == "":
			kept = append(kept, Diagnostic{
				Pos:      p.Pos,
				Analyzer: pragmaAnalyzer,
				Message:  "pragma for " + p.Analyzer + " has no justification",
			})
		case !used[i]:
			kept = append(kept, Diagnostic{
				Pos:      p.Pos,
				Analyzer: pragmaAnalyzer,
				Message:  "stale pragma: suppresses no " + p.Analyzer + " finding",
			})
		}
	}
	return kept
}
