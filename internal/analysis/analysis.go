// Package analysis is moccalint's static-analysis framework: a small,
// dependency-free re-statement of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus the project-specific
// suite that mechanically enforces invariants this codebase has already
// paid to learn the hard way:
//
//   - determinism: every run must be byte-reproducible from its seed, so
//     wall-clock reads, global math/rand and unordered map iteration on
//     fingerprint/digest/wire paths are violations;
//   - lockorder: the PR 6 Compact deadlock — a cycle in the
//     mutex-acquisition order, or dropping and retaking a lock while a
//     second is held — must not come back;
//   - statsnapshot: exported Stats()/snapshot methods must read their
//     counters under one lock or via atomics (the torn-read pattern PR 9
//     audited by hand);
//   - goroutines: simulated-clock packages stay zero-goroutine so the
//     deployment driver remains the only scheduler;
//   - errdrop: WAL/segment/wire append-read paths must not discard
//     errors — a swallowed error there is silent row loss.
//
// Findings can be suppressed, one at a time and with a written
// justification, by a pragma on the flagged line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// The pragma driver itself is checked: pragmas naming an unknown
// analyzer, lacking a reason, or suppressing nothing are flagged as
// stale so suppressions cannot outlive the code they excused.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a fully
// type-checked package through the Pass and reports findings via
// Pass.Report/Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow pragmas.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  msg,
	})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Suite returns the moccalint analyzers in their canonical order.
func Suite() []*Analyzer {
	return []*Analyzer{
		Determinism,
		LockOrder,
		StatSnapshot,
		Goroutines,
		ErrDrop,
	}
}

// RunPackage applies each analyzer to pkg and returns the raw findings
// (pragma suppression not yet applied — see ApplyPragmas).
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	return diags
}

// Run loads the packages matched by patterns (relative to dir), applies
// the analyzers and the pragma driver, and returns the surviving
// findings sorted by position.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags := RunPackage(pkg, analyzers)
		diags = ApplyPragmas(pkg, diags, analyzers)
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return all, nil
}
