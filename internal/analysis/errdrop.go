package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// durabilityPackages are the packages where a swallowed error is silent
// row loss: the WAL/segment machinery (logstore), the wire codec every
// frame passes through, and the information store that sits on both.
var durabilityPackages = map[string]bool{
	"logstore":    true,
	"wire":        true,
	"information": true,
}

// ErrDrop flags discarded error returns on the WAL/segment/wire
// append-read paths: a call whose error result is thrown away — as a
// bare statement, assigned to _, or deferred — previously meant rows
// vanishing without a trace. Every drop must be either handled or
// carry a //lint:allow errdrop pragma explaining why losing it is
// safe.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded errors on WAL/segment/wire append-read paths",
	Run:  runErrDrop,
}

var errType = types.Universe.Lookup("error").Type()

// isHashWrite recognises Write on the standard hash interfaces and
// implementations (hash.Hash, hash/fnv, crypto/sha256, ...), which are
// documented to never return an error. Flagging those would bury the
// real drops under pragma noise.
func isHashWrite(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Write" {
		return false
	}
	// The method resolves through hash.Hash's embedded io.Writer, so
	// judge by the receiver's static type, not the method's package.
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	n := namedOf(tv.Type)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	return path == "hash" || strings.HasPrefix(path, "hash/") || strings.HasPrefix(path, "crypto/")
}

// errResultIndex returns the index of the trailing error result of
// call, or -1.
func errResultIndex(info *types.Info, call *ast.CallExpr) int {
	tv, ok := info.Types[call]
	if !ok {
		return -1
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		if t.Len() > 0 && types.Identical(t.At(t.Len()-1).Type(), errType) {
			return t.Len() - 1
		}
	default:
		if types.Identical(tv.Type, errType) {
			return 0
		}
	}
	return -1
}

func runErrDrop(pass *Pass) {
	if !durabilityPackages[pass.Pkg.Name()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if errResultIndex(pass.Info, call) >= 0 && !isHashWrite(pass.Info, call) {
						pass.Reportf(call.Pos(), "error result of %s discarded; on this path a swallowed error is silent data loss",
							types.ExprString(call.Fun))
					}
				}
			case *ast.DeferStmt:
				if errResultIndex(pass.Info, s.Call) >= 0 {
					pass.Reportf(s.Call.Pos(), "deferred call %s discards its error; on this path a swallowed error is silent data loss",
						types.ExprString(s.Call.Fun))
				}
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				idx := errResultIndex(pass.Info, call)
				if idx < 0 || idx >= len(s.Lhs) {
					return true
				}
				if id, ok := s.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(id.Pos(), "error result of %s assigned to _; on this path a swallowed error is silent data loss",
						types.ExprString(call.Fun))
				}
			}
			return true
		})
	}
}
