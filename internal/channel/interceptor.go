package channel

import (
	"fmt"
	"math/rand"
	"sync"

	"mocca/internal/odp"
)

// Tracer observes every frame crossing the stack without altering it. The
// callback receives a copy of the Frame header; the envelope pointer is
// shared, so callbacks must not mutate it.
func Tracer(fn func(Frame)) Interceptor {
	return func(f *Frame) error {
		fn(*f)
		return nil
	}
}

// DropIf discards (as ErrDropFrame) every frame the predicate selects —
// the building block for targeted fault injection in tests and scenarios.
func DropIf(pred func(*Frame) bool) Interceptor {
	return func(f *Frame) error {
		if pred(f) {
			return ErrDropFrame
		}
		return nil
	}
}

// FailureInjector drops frames with probability rate, deterministically
// from seed — a transparency-testing tool: with failure transparency in
// place above (retries, rebinding), injected loss must not surface to
// applications.
func FailureInjector(seed int64, rate float64) Interceptor {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func(*Frame) error {
		mu.Lock()
		hit := rng.Float64() < rate
		mu.Unlock()
		if hit {
			return ErrDropFrame
		}
		return nil
	}
}

// TransparencyGate enforces a required transparency mask on inbound
// frames: peers that declare a mask (MaskHeader) lacking a required
// transparency are rejected. Frames without a declaration pass — the gate
// constrains declared bindings, it does not demand declarations.
func TransparencyGate(required odp.Mask) Interceptor {
	return func(f *Frame) error {
		if f.Dir != Inbound {
			return nil
		}
		declared, ok := f.Env.Header(MaskHeader)
		if !ok {
			return nil
		}
		mask, err := odp.ParseMask(declared)
		if err != nil {
			return fmt.Errorf("channel: bad transparency declaration %q: %w", declared, err)
		}
		if mask&required != required {
			return fmt.Errorf("channel: binding provides %v, requires %v", mask, required)
		}
		return nil
	}
}
