// Package channel implements the ODP engineering-viewpoint channel that
// figure 4 of the paper places between the CSCW environment and the
// network: every computational binding compiles down to a stack of
//
//	client stub  — frames wire.Envelopes onto bytes (and back)
//	binder       — tracks binding epochs, rebinds after migration/failure
//	protocol     — owns the netsim.Node and its delivery semantics
//
// with a composable interceptor chain threaded through the stack for the
// transparency functions the paper wants the infrastructure (not the
// application) to provide: tracing, per-channel accounting, transparency
// declarations, failure injection.
//
// All production traffic in the repository — rpc interrogations and
// announcements, and through them MHS transfers, conference fan-out,
// directory and trader operations, and the information replicas'
// anti-entropy sync — traverses a Stack; nothing above this package calls
// netsim.Node.Send directly. That single choke point is what lets
// interceptors observe 100% of traffic and lets the engineering
// bookkeeping (engineering.Fabric) reconcile exactly with netsim.Stats.
// ARCHITECTURE.md places this package in the viewpoint map and traces one
// write through the full stack.
package channel

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/odp"
	"mocca/internal/wire"
)

// Envelope headers owned by the channel stack.
const (
	// EpochHeader carries the sender's binding epoch. Absent means epoch 1
	// (the initial binding), so steady-state frames pay no extra bytes.
	EpochHeader = "ch.epoch"
	// MaskHeader declares the transparencies this channel provides, in
	// odp.Mask string form. Stamped only when the stack is configured with
	// transparencies.
	MaskHeader = "ch.transparencies"
)

// Direction distinguishes the two ways a frame crosses the stack.
type Direction int

// Frame directions.
const (
	Outbound Direction = iota + 1
	Inbound
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Outbound:
		return "outbound"
	case Inbound:
		return "inbound"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Frame is one envelope crossing the stack, as interceptors observe it.
// Outbound frames are intercepted before the stub marshals; inbound frames
// after the stub unmarshals — interceptors always see structured envelopes,
// never raw bytes. The *Frame an interceptor receives is pooled: valid
// only for the duration of the call, never to be retained.
type Frame struct {
	Dir    Direction
	Local  netsim.Address
	Remote netsim.Address
	Env    *wire.Envelope
}

// ErrDropFrame is the sentinel an interceptor returns to discard a frame
// silently, exactly as link loss would: the sender sees success and the
// frame never reaches the wire (outbound) or the layer above (inbound).
var ErrDropFrame = errors.New("channel: frame dropped by interceptor")

// Interceptor observes or vetoes frames. Returning nil passes the frame
// on; ErrDropFrame discards it silently; any other error aborts an
// outbound send (surfaced to the caller) or discards an inbound frame.
// Interceptors run in registration order on both directions.
type Interceptor func(*Frame) error

// Receiver consumes inbound envelopes that survived the stack.
type Receiver func(from netsim.Address, env *wire.Envelope)

// Stats counts one binding's traffic (local node ↔ one remote address).
type Stats struct {
	FramesOut, FramesIn   int64
	BytesOut, BytesIn     int64
	DroppedOut, DroppedIn int64 // vetoed by interceptors
	StaleIn               int64 // discarded by the binder: stale epoch
	DecodeErrors          int64 // undecodable frames from this remote
	Rebinds               int64 // epoch changes observed or initiated
}

// add folds o into s.
func (s *Stats) add(o Stats) {
	s.FramesOut += o.FramesOut
	s.FramesIn += o.FramesIn
	s.BytesOut += o.BytesOut
	s.BytesIn += o.BytesIn
	s.DroppedOut += o.DroppedOut
	s.DroppedIn += o.DroppedIn
	s.StaleIn += o.StaleIn
	s.DecodeErrors += o.DecodeErrors
	s.Rebinds += o.Rebinds
}

// Observer receives channel lifecycle and traffic notifications; the
// engineering layer implements it to mirror live channels into its
// capsule/cluster bookkeeping. Addresses are strings so implementations
// need not import netsim's types. Callbacks run on the sending/delivering
// goroutine and must be fast.
type Observer interface {
	ChannelBound(local, remote string, epoch uint64)
	ChannelRebound(local, remote string, epoch uint64)
	FrameSent(local, remote string, wireBytes int)
	FrameReceived(local, remote string, wireBytes int)
	// FrameDiscarded reports a frame the network delivered but the stack
	// dropped before the receiver (decode error, stale epoch, interceptor
	// veto) — needed so observers can still reconcile with the network's
	// delivery counters.
	FrameDiscarded(local, remote string, wireBytes int, reason string)
}

// namedInterceptor pairs an interceptor with the name drops are
// attributed to in telemetry.
type namedInterceptor struct {
	name string
	fn   Interceptor
}

// Option configures a Stack.
type Option func(*Stack)

// WithInterceptor appends an interceptor to the chain. It is attributed
// by chain position ("#0", "#1", …) in drop telemetry; use
// WithNamedInterceptor when the name matters.
func WithInterceptor(i Interceptor) Option {
	return func(s *Stack) {
		s.interceptors = append(s.interceptors, namedInterceptor{
			name: fmt.Sprintf("#%d", len(s.interceptors)),
			fn:   i,
		})
	}
}

// WithNamedInterceptor appends an interceptor under an explicit name.
// When the interceptor vetoes a frame, the drop is counted (and, for
// traced frames, the drop span is attributed) under this name — so
// failure-injection experiments stay visible in telemetry instead of
// vanishing.
func WithNamedInterceptor(name string, i Interceptor) Option {
	return func(s *Stack) {
		s.interceptors = append(s.interceptors, namedInterceptor{name: name, fn: i})
	}
}

// WithTelemetry attaches the deployment telemetry plane. The stack then
// records interceptor drops in the metrics registry under the dropping
// interceptor's name, and closes the span of any traced frame an
// interceptor discards with a "drop" status.
func WithTelemetry(tel *observe.Telemetry) Option {
	return func(s *Stack) {
		if tel != nil {
			s.tracer = tel.Tracer
			s.metrics = tel.Metrics
		}
	}
}

// TracingInterceptor returns the channel-stack tracing interceptor: it
// records every traced frame crossing the stack as an instantaneous
// span ("frame.out:<kind>" / "frame.in:<kind>") attributed to the local
// node, parented under the context the frame carries. Untraced frames
// cost one field check.
func TracingInterceptor(tr *observe.Tracer) Interceptor {
	return func(f *Frame) error {
		if !f.Env.Trace.IsZero() && tr.On() {
			name := "frame.out:" + f.Env.Kind
			if f.Dir == Inbound {
				name = "frame.in:" + f.Env.Kind
			}
			tr.Event(name, string(f.Local), f.Env.Trace, "",
				observe.Attr{Key: "remote", Value: string(f.Remote)})
		}
		return nil
	}
}

// WithObserver registers the lifecycle/traffic observer.
func WithObserver(o Observer) Option {
	return func(s *Stack) { s.observer = o }
}

// WithTransparencies declares the transparencies this channel provides;
// outbound frames carry the declaration in MaskHeader so peers (and
// interceptors) can check a binding's guarantees against requirements.
func WithTransparencies(m odp.Mask) Option {
	return func(s *Stack) { s.mask = m }
}

// Stack is the engineering channel bound to one network node. Create with
// New; exactly one Stack owns a node.
type Stack struct {
	proto        protocol
	binder       Binder
	interceptors []namedInterceptor
	observer     Observer
	tracer       *observe.Tracer
	metrics      *observe.Registry
	mask         odp.Mask
	maskString   string

	mu    sync.Mutex
	stats map[netsim.Address]*Stats
	recv  Receiver

	// framePool recycles the Frame handed to interceptors: passing a
	// pointer to dynamic funcs forces a heap escape per frame, which a
	// pool amortises to zero steady-state allocations.
	framePool sync.Pool
}

// New builds a channel stack over the node and installs the protocol
// object as the node's network handler.
func New(node *netsim.Node, opts ...Option) *Stack {
	s := &Stack{
		proto: protocol{node: node},
		stats: make(map[netsim.Address]*Stats),
	}
	s.binder.init()
	for _, opt := range opts {
		opt(s)
	}
	if s.mask != 0 {
		s.maskString = s.mask.String()
	}
	node.Handle(s.onMessage)
	return s
}

// Addr returns the local node address.
func (s *Stack) Addr() netsim.Address { return s.proto.node.Addr() }

// Transparencies returns the declared transparency mask.
func (s *Stack) Transparencies() odp.Mask { return s.mask }

// Handle installs the receiver for inbound envelopes. One receiver per
// stack; the layer above (rpc) demultiplexes by envelope kind.
func (s *Stack) Handle(r Receiver) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recv = r
}

// Send pushes an envelope down the stack toward remote: interceptors, then
// the binder stamps the binding epoch, then the client stub marshals, then
// the protocol object transmits. The envelope must not be reused after a
// successful Send (the binder may have stamped headers on it).
func (s *Stack) Send(to netsim.Address, env *wire.Envelope) error {
	if len(s.interceptors) > 0 {
		f := s.frame(Outbound, to, env)
		for _, ic := range s.interceptors {
			if err := ic.fn(f); err != nil {
				s.framePool.Put(f)
				s.bumpLocked(to, func(st *Stats) { st.DroppedOut++ })
				s.frameDropped(ic.name, Outbound, env)
				if errors.Is(err, ErrDropFrame) {
					return nil
				}
				return err
			}
		}
		s.framePool.Put(f)
	}

	// Binder: record (or establish) the binding and stamp its epoch.
	epoch, fresh := s.binder.bind(to)
	if fresh && s.observer != nil {
		s.observer.ChannelBound(string(s.proto.node.Addr()), string(to), epoch)
	}
	if epoch > 1 {
		env.SetHeader(EpochHeader, strconv.FormatUint(epoch, 10))
	}
	if s.maskString != "" {
		env.SetHeader(MaskHeader, s.maskString)
	}

	data, err := marshalStub(env)
	if err != nil {
		return err
	}
	if err := s.proto.transmit(to, env.Kind, data); err != nil {
		return err
	}
	s.bumpLocked(to, func(st *Stats) {
		st.FramesOut++
		st.BytesOut += int64(len(data))
	})
	if s.observer != nil {
		s.observer.FrameSent(string(s.proto.node.Addr()), string(to), len(data))
	}
	return nil
}

// Rebind bumps the binding epoch toward remote — called after the remote
// end migrated or failed over, so the peer's binder observes the new epoch
// on the next frame and re-establishes. Returns the new epoch.
func (s *Stack) Rebind(remote netsim.Address) uint64 {
	epoch := s.binder.rebind(remote)
	s.bumpLocked(remote, func(st *Stats) { st.Rebinds++ })
	if s.observer != nil {
		s.observer.ChannelRebound(string(s.proto.node.Addr()), string(remote), epoch)
	}
	return epoch
}

// Epoch returns the current binding epoch toward remote (1 if unbound).
func (s *Stack) Epoch(remote netsim.Address) uint64 { return s.binder.epoch(remote) }

// Stats returns a snapshot of the binding counters toward remote.
func (s *Stack) Stats(remote netsim.Address) Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st, ok := s.stats[remote]; ok {
		return *st
	}
	return Stats{}
}

// AllStats snapshots every binding's counters, keyed by remote address.
func (s *Stack) AllStats() map[netsim.Address]Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[netsim.Address]Stats, len(s.stats))
	for addr, st := range s.stats {
		out[addr] = *st
	}
	return out
}

// Total aggregates all bindings' counters.
func (s *Stack) Total() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t Stats
	for _, st := range s.stats {
		t.add(*st)
	}
	return t
}

// frame checks a pooled Frame out and fills it for one interceptor pass.
// Interceptors must not retain the pointer past their return.
func (s *Stack) frame(dir Direction, remote netsim.Address, env *wire.Envelope) *Frame {
	f, _ := s.framePool.Get().(*Frame)
	if f == nil {
		f = new(Frame)
	}
	*f = Frame{Dir: dir, Local: s.proto.node.Addr(), Remote: remote, Env: env}
	return f
}

// frameDropped records an interceptor veto in telemetry: a counter
// under the dropping interceptor's name, and — when the frame carried a
// trace — a span closed with "drop" status, so the frame's fate is
// visible in the trace instead of silently vanishing.
func (s *Stack) frameDropped(interceptor string, dir Direction, env *wire.Envelope) {
	if s.metrics != nil {
		s.metrics.Counter("mocca.channel.interceptor_drops",
			observe.L("interceptor", interceptor, "dir", dir.String())...).Inc()
	}
	if !env.Trace.IsZero() && s.tracer.On() {
		s.tracer.Event("frame.drop:"+env.Kind, string(s.proto.node.Addr()), env.Trace, "drop",
			observe.Attr{Key: "interceptor", Value: interceptor},
			observe.Attr{Key: "dir", Value: dir.String()})
	}
}

// bumpLocked applies fn to the remote's counters under the lock.
func (s *Stack) bumpLocked(remote netsim.Address, fn func(*Stats)) {
	s.mu.Lock()
	st, ok := s.stats[remote]
	if !ok {
		st = &Stats{}
		s.stats[remote] = st
	}
	fn(st)
	s.mu.Unlock()
}

// onMessage is the protocol object's upcall: server stub unmarshals, the
// binder validates the epoch, interceptors run, and the surviving envelope
// goes to the receiver.
func (s *Stack) onMessage(msg netsim.Message) {
	discard := func(reason string, bump func(*Stats)) {
		s.bumpLocked(msg.From, bump)
		if s.observer != nil {
			s.observer.FrameDiscarded(string(s.proto.node.Addr()), string(msg.From), len(msg.Payload), reason)
		}
	}
	env, err := unmarshalStub(msg.Payload)
	if err != nil {
		// Drop undecodable traffic, as a real stack would.
		discard("decode", func(st *Stats) { st.DecodeErrors++ })
		return
	}

	// Binder: a higher epoch means the peer re-established the binding
	// (migration/failover) — adopt it; a lower epoch is a frame from a
	// binding that no longer exists — discard it as stale.
	epoch := uint64(1)
	if v, ok := env.Header(EpochHeader); ok {
		if parsed, perr := strconv.ParseUint(v, 10, 64); perr == nil && parsed > 0 {
			epoch = parsed
		}
	}
	switch adopted, stale := s.binder.observe(msg.From, epoch); {
	case stale:
		discard("stale-epoch", func(st *Stats) { st.StaleIn++ })
		return
	case adopted:
		s.bumpLocked(msg.From, func(st *Stats) { st.Rebinds++ })
		if s.observer != nil {
			s.observer.ChannelRebound(string(s.proto.node.Addr()), string(msg.From), epoch)
		}
	}

	if len(s.interceptors) > 0 {
		f := s.frame(Inbound, msg.From, env)
		for _, ic := range s.interceptors {
			if ic.fn(f) != nil {
				s.framePool.Put(f)
				discard("interceptor", func(st *Stats) { st.DroppedIn++ })
				s.frameDropped(ic.name, Inbound, env)
				return
			}
		}
		s.framePool.Put(f)
	}

	s.mu.Lock()
	st, ok := s.stats[msg.From]
	if !ok {
		st = &Stats{}
		s.stats[msg.From] = st
	}
	st.FramesIn++
	st.BytesIn += int64(len(msg.Payload))
	recv := s.recv
	s.mu.Unlock()
	if s.observer != nil {
		s.observer.FrameReceived(string(s.proto.node.Addr()), string(msg.From), len(msg.Payload))
	}
	if recv != nil {
		recv(msg.From, env)
	}
}

// --- stubs ---------------------------------------------------------------

// marshalStub is the client stub: it turns a structured envelope into the
// byte frame the protocol object transmits.
func marshalStub(env *wire.Envelope) ([]byte, error) { return wire.Marshal(env) }

// unmarshalStub is the server stub: it rebuilds the structured envelope
// from a received frame.
func unmarshalStub(data []byte) (*wire.Envelope, error) { return wire.Unmarshal(data) }

// --- binder --------------------------------------------------------------

// Binder tracks binding epochs per remote interface. Epochs start at 1 and
// only move forward; Rebind bumps the local view and the peer adopts the
// higher epoch from the next frame's EpochHeader.
type Binder struct {
	mu     sync.Mutex
	epochs map[netsim.Address]uint64
}

func (b *Binder) init() { b.epochs = make(map[netsim.Address]uint64) }

// bind returns the current epoch toward remote, establishing the binding
// at epoch 1 on first use. fresh reports whether this call established it.
func (b *Binder) bind(remote netsim.Address) (epoch uint64, fresh bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.epochs[remote]; ok {
		return e, false
	}
	b.epochs[remote] = 1
	return 1, true
}

// epoch returns the recorded epoch without establishing a binding.
func (b *Binder) epoch(remote netsim.Address) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if e, ok := b.epochs[remote]; ok {
		return e
	}
	return 1
}

// rebind advances the epoch toward remote.
func (b *Binder) rebind(remote netsim.Address) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	e, ok := b.epochs[remote]
	if !ok {
		e = 1
	}
	e++
	b.epochs[remote] = e
	return e
}

// observe reconciles an inbound frame's epoch with the recorded binding:
// higher adopts (the peer rebound), lower is stale, equal is steady state.
func (b *Binder) observe(remote netsim.Address, epoch uint64) (adopted, stale bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	cur, ok := b.epochs[remote]
	if !ok {
		cur = 1
		b.epochs[remote] = 1
	}
	switch {
	case epoch > cur:
		b.epochs[remote] = epoch
		return true, false
	case epoch < cur:
		return false, true
	default:
		return false, false
	}
}

// --- protocol object -----------------------------------------------------

// protocol owns the netsim.Node: it is the only place in the repository
// above netsim itself that calls Node.Send.
type protocol struct {
	node *netsim.Node
}

func (p protocol) transmit(to netsim.Address, kind string, data []byte) error {
	return p.node.Send(netsim.Message{To: to, Kind: kind, Payload: data})
}
