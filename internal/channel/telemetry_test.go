package channel

import (
	"testing"

	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

// TestDroppedFrameClosesSpanUnderInterceptorName is the
// failure-visibility contract: a frame vetoed by an interceptor must
// still close its span with "drop" status, attributed to the dropping
// interceptor, and count in the registry under that interceptor's name.
func TestDroppedFrameClosesSpanUnderInterceptorName(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
	tel := observe.New(1, clk.Now)

	a := New(net.MustAddNode("a"), WithTelemetry(tel))
	drops := 0
	b := New(net.MustAddNode("b"),
		WithTelemetry(tel),
		WithNamedInterceptor("trace", TracingInterceptor(tel.Tracer)),
		WithNamedInterceptor("chaos", func(f *Frame) error {
			if f.Dir == Inbound && f.Env.Kind == "test.drop" {
				drops++
				return ErrDropFrame
			}
			return nil
		}),
	)
	got := 0
	b.Handle(func(from netsim.Address, env *wire.Envelope) { got++ })

	root := tel.Tracer.StartRoot("op", "a")
	rootCtx := root.Context()
	env := wire.NewEnvelope("test.drop", "c1", []byte("x"))
	env.Trace = rootCtx
	if err := a.Send("b", env); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	root.End()

	if drops != 1 || got != 0 {
		t.Fatalf("drops=%d delivered=%d", drops, got)
	}

	// The drop must be counted under the dropping interceptor's name.
	snap := tel.Metrics.Snapshot()
	if n := snap.Value("mocca.channel.interceptor_drops",
		observe.L("interceptor", "chaos", "dir", "inbound")...); n != 1 {
		t.Fatalf("interceptor drop counter = %d, want 1\n%+v", n, snap.Points)
	}

	// And the trace must contain a span with drop status naming the
	// interceptor — plus the inbound frame event from the tracing
	// interceptor that ran before the chaos one.
	var dropSpan, frameIn bool
	for _, sp := range tel.Tracer.Spans() {
		if sp.TraceID != rootCtx.TraceID {
			continue
		}
		switch sp.Name {
		case "frame.drop:test.drop":
			dropSpan = true
			if sp.Status != "drop" || sp.Site != "b" {
				t.Fatalf("drop span = %+v", sp)
			}
			var named bool
			for _, a := range sp.Attrs {
				if a.Key == "interceptor" && a.Value == "chaos" {
					named = true
				}
			}
			if !named {
				t.Fatalf("drop span not attributed: %+v", sp.Attrs)
			}
		case "frame.in:test.drop":
			frameIn = true
		}
	}
	if !dropSpan {
		t.Fatalf("no drop span recorded; spans: %+v", tel.Tracer.Spans())
	}
	if !frameIn {
		t.Fatalf("tracing interceptor recorded no inbound frame event")
	}
}

// TestAnonymousInterceptorDropsAttributedByPosition: interceptors
// registered without a name still get a stable identity in drop
// accounting.
func TestAnonymousInterceptorDropsAttributedByPosition(t *testing.T) {
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
	tel := observe.New(1, clk.Now)

	a := New(net.MustAddNode("a"),
		WithTelemetry(tel),
		WithInterceptor(func(f *Frame) error { return nil }),
		WithInterceptor(func(f *Frame) error { return ErrDropFrame }),
	)
	env := wire.NewEnvelope("k", "c", nil)
	if err := a.Send("b", env); err != nil {
		t.Fatal(err)
	}
	snap := tel.Metrics.Snapshot()
	if n := snap.Value("mocca.channel.interceptor_drops",
		observe.L("interceptor", "#1", "dir", "outbound")...); n != 1 {
		t.Fatalf("positional drop counter = %d, want 1\n%+v", n, snap.Points)
	}
	if a.Stats("b").DroppedOut != 1 {
		t.Fatalf("stack stats missed the drop")
	}
}
