package channel

import (
	"errors"
	"testing"

	"mocca/internal/netsim"
	"mocca/internal/odp"
	"mocca/internal/vclock"
	"mocca/internal/wire"
)

func newPair(t *testing.T, aOpts, bOpts []Option) (*vclock.Simulated, *netsim.Network, *Stack, *Stack) {
	t.Helper()
	clk := vclock.NewSimulated(netsim.DefaultEpoch)
	net := netsim.New(netsim.WithClock(clk), netsim.WithSeed(1))
	a := New(net.MustAddNode("a"), aOpts...)
	b := New(net.MustAddNode("b"), bOpts...)
	return clk, net, a, b
}

func TestSendReceiveRoundTrip(t *testing.T) {
	clk, net, a, b := newPair(t, nil, nil)
	var got *wire.Envelope
	var from netsim.Address
	b.Handle(func(f netsim.Address, env *wire.Envelope) { from, got = f, env })

	env := wire.NewEnvelope("test.kind", "c1", []byte("payload"))
	env.SetHeader("method", "m")
	if err := a.Send("b", env); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()

	if got == nil {
		t.Fatal("no envelope received")
	}
	if from != "a" || got.Kind != "test.kind" || got.Corr != "c1" || string(got.Body) != "payload" {
		t.Fatalf("received %v from %q", got, from)
	}
	if m, _ := got.Header("method"); m != "m" {
		t.Fatalf("method header = %q", m)
	}

	// Per-channel stats reconcile with the network's own accounting.
	as, bs := a.Stats("b"), b.Stats("a")
	if as.FramesOut != 1 || bs.FramesIn != 1 {
		t.Fatalf("frames: out=%d in=%d", as.FramesOut, bs.FramesIn)
	}
	ns := net.Stats()
	if as.BytesOut != ns.Bytes || bs.BytesIn != ns.Bytes {
		t.Fatalf("bytes: out=%d in=%d net=%d", as.BytesOut, bs.BytesIn, ns.Bytes)
	}
}

func TestInterceptorOrderAndDrop(t *testing.T) {
	var order []string
	first := func(f *Frame) error { order = append(order, "first:"+f.Dir.String()); return nil }
	second := func(f *Frame) error { order = append(order, "second:"+f.Dir.String()); return nil }

	clk, _, a, b := newPair(t,
		[]Option{WithInterceptor(first), WithInterceptor(second)},
		nil)
	delivered := 0
	b.Handle(func(netsim.Address, *wire.Envelope) { delivered++ })

	if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if len(order) != 2 || order[0] != "first:outbound" || order[1] != "second:outbound" {
		t.Fatalf("order = %v", order)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
}

func TestDropFrameIsSilent(t *testing.T) {
	clk, net, a, b := newPair(t,
		[]Option{DropIfOption(func(f *Frame) bool { return f.Env.Kind == "drop.me" })},
		nil)
	delivered := 0
	b.Handle(func(netsim.Address, *wire.Envelope) { delivered++ })

	if err := a.Send("b", wire.NewEnvelope("drop.me", "", nil)); err != nil {
		t.Fatalf("dropped frame surfaced error: %v", err)
	}
	if err := a.Send("b", wire.NewEnvelope("keep.me", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()

	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if st := a.Stats("b"); st.DroppedOut != 1 || st.FramesOut != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if net.Stats().Sent != 1 {
		t.Fatalf("dropped frame reached the network: %+v", net.Stats())
	}
}

// DropIfOption adapts DropIf for option lists in tests.
func DropIfOption(pred func(*Frame) bool) Option {
	return WithInterceptor(DropIf(pred))
}

func TestInboundInterceptorError(t *testing.T) {
	clk, _, a, b := newPair(t, nil,
		[]Option{WithInterceptor(func(f *Frame) error {
			if f.Dir == Inbound {
				return errors.New("rejected")
			}
			return nil
		})})
	delivered := 0
	b.Handle(func(netsim.Address, *wire.Envelope) { delivered++ })

	if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("rejected frame delivered")
	}
	if st := b.Stats("a"); st.DroppedIn != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBinderRebindAdoptedByPeer(t *testing.T) {
	clk, _, a, b := newPair(t, nil, nil)
	b.Handle(func(netsim.Address, *wire.Envelope) {})

	if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if e := b.Epoch("a"); e != 1 {
		t.Fatalf("epoch before rebind = %d", e)
	}

	// The server migrated/failed over: the client re-establishes.
	if e := a.Rebind("b"); e != 2 {
		t.Fatalf("Rebind = %d", e)
	}
	if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()

	if e := b.Epoch("a"); e != 2 {
		t.Fatalf("peer epoch = %d, want 2", e)
	}
	if st := b.Stats("a"); st.Rebinds != 1 || st.FramesIn != 2 {
		t.Fatalf("peer stats = %+v", st)
	}
}

func TestBinderStaleEpoch(t *testing.T) {
	var b Binder
	b.init()
	if adopted, stale := b.observe("x", 3); !adopted || stale {
		t.Fatalf("observe(3) = %v,%v", adopted, stale)
	}
	if adopted, stale := b.observe("x", 2); adopted || !stale {
		t.Fatalf("observe(2) after 3 = %v,%v", adopted, stale)
	}
	if adopted, stale := b.observe("x", 3); adopted || stale {
		t.Fatalf("observe(3) steady state = %v,%v", adopted, stale)
	}
}

func TestStaleFrameDiscarded(t *testing.T) {
	clk, _, a, b := newPair(t, nil, nil)
	delivered := 0
	b.Handle(func(netsim.Address, *wire.Envelope) { delivered++ })

	// Peer's binder has already adopted epoch 5 for "a".
	b.Epoch("a") // no-op read
	bStack := b
	bStack.binder.observe("a", 5)

	// A frame from the old epoch-1 binding must be discarded as stale.
	if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("stale frame delivered")
	}
	if st := b.Stats("a"); st.StaleIn != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTransparencyDeclarationAndGate(t *testing.T) {
	mask := odp.MaskOf(odp.Access, odp.Location, odp.Failure)
	clk, _, a, b := newPair(t,
		[]Option{WithTransparencies(mask)},
		[]Option{WithInterceptor(TransparencyGate(odp.MaskOf(odp.Access)))})
	var got *wire.Envelope
	b.Handle(func(_ netsim.Address, env *wire.Envelope) { got = env })

	if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if got == nil {
		t.Fatal("gated frame not delivered despite satisfying mask")
	}
	declared, _ := got.Header(MaskHeader)
	m, err := odp.ParseMask(declared)
	if err != nil || m != mask {
		t.Fatalf("declared mask %q parsed to %v (err %v)", declared, m, err)
	}
}

func TestTransparencyGateRejects(t *testing.T) {
	clk, _, a, b := newPair(t,
		[]Option{WithTransparencies(odp.MaskOf(odp.Access))},
		[]Option{WithInterceptor(TransparencyGate(odp.MaskOf(odp.Migration)))})
	delivered := 0
	b.Handle(func(netsim.Address, *wire.Envelope) { delivered++ })

	if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	if delivered != 0 {
		t.Fatal("frame lacking required transparency delivered")
	}
	if st := b.Stats("a"); st.DroppedIn != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailureInjectorDeterministic(t *testing.T) {
	run := func() int {
		clk, _, a, b := newPair(t, []Option{WithInterceptor(FailureInjector(42, 0.5))}, nil)
		delivered := 0
		b.Handle(func(netsim.Address, *wire.Envelope) { delivered++ })
		for i := 0; i < 100; i++ {
			if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
				t.Fatal(err)
			}
		}
		clk.RunUntilIdle()
		return delivered
	}
	first := run()
	if first == 0 || first == 100 {
		t.Fatalf("injector at rate 0.5 delivered %d/100", first)
	}
	if again := run(); again != first {
		t.Fatalf("injection not deterministic: %d then %d", first, again)
	}
}

type recordingObserver struct {
	bound, rebound    int
	sent, received    int
	bytesOut, bytesIn int
	discarded         int
	discardReasons    []string
}

func (r *recordingObserver) ChannelBound(_, _ string, _ uint64)   { r.bound++ }
func (r *recordingObserver) ChannelRebound(_, _ string, _ uint64) { r.rebound++ }
func (r *recordingObserver) FrameSent(_, _ string, n int)         { r.sent++; r.bytesOut += n }
func (r *recordingObserver) FrameReceived(_, _ string, n int)     { r.received++; r.bytesIn += n }
func (r *recordingObserver) FrameDiscarded(_, _ string, _ int, reason string) {
	r.discarded++
	r.discardReasons = append(r.discardReasons, reason)
}

func TestObserverNotified(t *testing.T) {
	obs := &recordingObserver{}
	clk, net, a, b := newPair(t, []Option{WithObserver(obs)}, []Option{WithObserver(obs)})
	b.Handle(func(netsim.Address, *wire.Envelope) {})

	for i := 0; i < 3; i++ {
		if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunUntilIdle()

	if obs.bound != 1 || obs.sent != 3 || obs.received != 3 {
		t.Fatalf("observer = %+v", obs)
	}
	ns := net.Stats()
	if int64(obs.bytesOut) != ns.Bytes || int64(obs.bytesIn) != ns.Bytes {
		t.Fatalf("observer bytes %d/%d, network %d", obs.bytesOut, obs.bytesIn, ns.Bytes)
	}
}

// TestObserverSeesDiscards: frames the network delivers but the stack
// drops (stale epoch, interceptor veto) are reported to the observer, so
// delivered-frame accounting stays reconcilable.
func TestObserverSeesDiscards(t *testing.T) {
	obs := &recordingObserver{}
	clk, net, a, b := newPair(t, nil, []Option{
		WithObserver(obs),
		WithInterceptor(DropIf(func(f *Frame) bool {
			return f.Dir == Inbound && f.Env.Kind == "veto.me"
		})),
	})
	b.Handle(func(netsim.Address, *wire.Envelope) {})

	// Interceptor veto.
	if err := a.Send("b", wire.NewEnvelope("veto.me", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()
	// Stale epoch: b's binder already adopted epoch 5 for a.
	b.binder.observe("a", 5)
	if err := a.Send("b", wire.NewEnvelope("k", "", nil)); err != nil {
		t.Fatal(err)
	}
	clk.RunUntilIdle()

	if obs.discarded != 2 || obs.received != 0 {
		t.Fatalf("observer = %+v", obs)
	}
	if obs.discardReasons[0] != "interceptor" || obs.discardReasons[1] != "stale-epoch" {
		t.Fatalf("reasons = %v", obs.discardReasons)
	}
	if ns := net.Stats(); ns.Delivered != 2 {
		t.Fatalf("network delivered = %d", ns.Delivered)
	}
}
