// Package odp models the vocabulary of the ISO Basic Reference Model of
// Open Distributed Processing that the paper's §6 builds on: the five
// viewpoints, distribution transparencies, and binding descriptors between
// computational objects.
//
// The package is deliberately descriptive — it gives the CSCW environment
// (internal/core) the terms in which it declares WHERE a requirement sits
// (enterprise vs information vs computation) and WHICH transparencies a
// binding provides, so that the claims of §6.1 ("for CSCW applications
// [the design] starts from the enterprise or information viewpoint") are
// expressed in code rather than prose.
package odp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Viewpoint is one of the five ODP viewpoints.
type Viewpoint int

// The five viewpoints of the Basic Reference Model.
const (
	Enterprise Viewpoint = iota + 1
	Information
	Computation
	Engineering
	Technology
)

var viewpointNames = map[Viewpoint]string{
	Enterprise:  "enterprise",
	Information: "information",
	Computation: "computation",
	Engineering: "engineering",
	Technology:  "technology",
}

// String implements fmt.Stringer.
func (v Viewpoint) String() string {
	if s, ok := viewpointNames[v]; ok {
		return s
	}
	return fmt.Sprintf("viewpoint(%d)", int(v))
}

// ParseViewpoint parses a viewpoint name.
func ParseViewpoint(s string) (Viewpoint, error) {
	for v, name := range viewpointNames {
		if strings.EqualFold(s, name) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("odp: unknown viewpoint %q", s)
}

// Viewpoints lists all five in canonical order.
func Viewpoints() []Viewpoint {
	return []Viewpoint{Enterprise, Information, Computation, Engineering, Technology}
}

// Transparency is a distribution transparency of the computational
// viewpoint. The paper (§4, §6.1) extends the ODP set with CSCW-specific
// transparencies (organisation, time, view, activity) — both families share
// this type so a single selection mask covers them.
type Transparency int

// ODP distribution transparencies.
const (
	Access Transparency = iota + 1
	Location
	Migration
	Replication
	Failure
	Concurrency
	// CSCW transparencies introduced by the paper (§4).
	Organisation
	Time
	View
	Activity
)

var transparencyNames = map[Transparency]string{
	Access:       "access",
	Location:     "location",
	Migration:    "migration",
	Replication:  "replication",
	Failure:      "failure",
	Concurrency:  "concurrency",
	Organisation: "organisation",
	Time:         "time",
	View:         "view",
	Activity:     "activity",
}

// String implements fmt.Stringer.
func (t Transparency) String() string {
	if s, ok := transparencyNames[t]; ok {
		return s
	}
	return fmt.Sprintf("transparency(%d)", int(t))
}

// ParseTransparency parses a transparency name.
func ParseTransparency(s string) (Transparency, error) {
	for t, name := range transparencyNames {
		if strings.EqualFold(s, name) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("odp: unknown transparency %q", s)
}

// ODPTransparencies returns the classic ODP set.
func ODPTransparencies() []Transparency {
	return []Transparency{Access, Location, Migration, Replication, Failure, Concurrency}
}

// CSCWTransparencies returns the paper's extension set.
func CSCWTransparencies() []Transparency {
	return []Transparency{Organisation, Time, View, Activity}
}

// Mask is a selectable set of transparencies. The paper's core demand on
// ODP is that this selection be available to USERS, not only designers
// ("the user should be allowed to select their required transparency");
// internal/transparency attaches a Mask to each principal.
type Mask uint32

// MaskOf builds a mask from transparencies.
func MaskOf(ts ...Transparency) Mask {
	var m Mask
	for _, t := range ts {
		m |= 1 << uint(t)
	}
	return m
}

// Has reports whether the mask selects t.
func (m Mask) Has(t Transparency) bool { return m&(1<<uint(t)) != 0 }

// With returns the mask with t selected.
func (m Mask) With(t Transparency) Mask { return m | 1<<uint(t) }

// Without returns the mask with t deselected.
func (m Mask) Without(t Transparency) Mask { return m &^ (1 << uint(t)) }

// List returns the selected transparencies in declaration order.
func (m Mask) List() []Transparency {
	var out []Transparency
	for t := Access; t <= Activity; t++ {
		if m.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// String renders e.g. "access+time+view".
func (m Mask) String() string {
	ts := m.List()
	if len(ts) == 0 {
		return "none"
	}
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.String()
	}
	return strings.Join(names, "+")
}

// ParseMask parses the "a+b+c" form ("none" and "" mean empty).
func ParseMask(s string) (Mask, error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.EqualFold(s, "none") {
		return 0, nil
	}
	var m Mask
	for _, part := range strings.Split(s, "+") {
		t, err := ParseTransparency(strings.TrimSpace(part))
		if err != nil {
			return 0, err
		}
		m = m.With(t)
	}
	return m, nil
}

// InteractionKind is an ODP computational interaction.
type InteractionKind int

// The two computational interaction kinds.
const (
	// Interrogation is request/reply.
	Interrogation InteractionKind = iota + 1
	// Announcement is one-way.
	Announcement
)

// String implements fmt.Stringer.
func (k InteractionKind) String() string {
	switch k {
	case Interrogation:
		return "interrogation"
	case Announcement:
		return "announcement"
	default:
		return fmt.Sprintf("interaction(%d)", int(k))
	}
}

// Binding describes an established channel between two computational
// objects and the transparencies the infrastructure provides on it.
type Binding struct {
	ID       string
	Client   string
	Server   string
	Kind     InteractionKind
	Provides Mask
}

// Satisfies reports whether the binding provides every transparency in
// required.
func (b Binding) Satisfies(required Mask) bool {
	return b.Provides&required == required
}

// Missing lists transparencies in required that the binding lacks.
func (b Binding) Missing(required Mask) []Transparency {
	var out []Transparency
	for _, t := range required.List() {
		if !b.Provides.Has(t) {
			out = append(out, t)
		}
	}
	return out
}

// Requirement records that some environment function addresses a concern at
// a given viewpoint — the machine-readable form of the paper's §6 mapping.
type Requirement struct {
	Name      string
	Viewpoint Viewpoint
	// Function names the environment service that realises it.
	Function string
}

// ErrDuplicateRequirement reports a name collision in a Registry.
var ErrDuplicateRequirement = errors.New("odp: duplicate requirement")

// Registry catalogues requirements by viewpoint; the environment publishes
// its §6 conformance table from one of these.
type Registry struct {
	byName map[string]Requirement
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Requirement)}
}

// Add records a requirement.
func (r *Registry) Add(req Requirement) error {
	if _, ok := r.byName[req.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateRequirement, req.Name)
	}
	r.byName[req.Name] = req
	return nil
}

// ByViewpoint returns requirements at the given viewpoint, sorted by name.
func (r *Registry) ByViewpoint(v Viewpoint) []Requirement {
	var out []Requirement
	for _, req := range r.byName {
		if req.Viewpoint == v {
			out = append(out, req)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// All returns every requirement, sorted by (viewpoint, name).
func (r *Registry) All() []Requirement {
	out := make([]Requirement, 0, len(r.byName))
	for _, req := range r.byName {
		out = append(out, req)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Viewpoint != out[j].Viewpoint {
			return out[i].Viewpoint < out[j].Viewpoint
		}
		return out[i].Name < out[j].Name
	})
	return out
}
