package odp

import (
	"testing"
	"testing/quick"
)

func TestViewpointStringAndParse(t *testing.T) {
	for _, v := range Viewpoints() {
		got, err := ParseViewpoint(v.String())
		if err != nil {
			t.Fatalf("ParseViewpoint(%q): %v", v.String(), err)
		}
		if got != v {
			t.Fatalf("round-trip %v -> %v", v, got)
		}
	}
	if _, err := ParseViewpoint("bogus"); err == nil {
		t.Fatal("ParseViewpoint accepted bogus")
	}
}

func TestFiveViewpoints(t *testing.T) {
	if len(Viewpoints()) != 5 {
		t.Fatalf("ODP defines five viewpoints, got %d", len(Viewpoints()))
	}
}

func TestTransparencyFamilies(t *testing.T) {
	if len(ODPTransparencies()) != 6 {
		t.Fatalf("ODP transparencies = %d, want 6", len(ODPTransparencies()))
	}
	if len(CSCWTransparencies()) != 4 {
		t.Fatalf("CSCW transparencies = %d, want 4 (org, time, view, activity)", len(CSCWTransparencies()))
	}
	// The two families must not overlap.
	seen := map[Transparency]bool{}
	for _, t2 := range append(ODPTransparencies(), CSCWTransparencies()...) {
		if seen[t2] {
			t.Fatalf("transparency %v in both families", t2)
		}
		seen[t2] = true
	}
}

func TestMaskOperations(t *testing.T) {
	m := MaskOf(Time, View)
	if !m.Has(Time) || !m.Has(View) || m.Has(Access) {
		t.Fatalf("mask membership wrong: %v", m)
	}
	m = m.With(Access).Without(View)
	if !m.Has(Access) || m.Has(View) {
		t.Fatalf("With/Without wrong: %v", m)
	}
	if got := MaskOf().String(); got != "none" {
		t.Fatalf("empty mask = %q", got)
	}
}

func TestMaskStringParseRoundTrip(t *testing.T) {
	masks := []Mask{
		0,
		MaskOf(Access),
		MaskOf(Time, Organisation, View, Activity),
		MaskOf(ODPTransparencies()...),
	}
	for _, m := range masks {
		got, err := ParseMask(m.String())
		if err != nil {
			t.Fatalf("ParseMask(%q): %v", m.String(), err)
		}
		if got != m {
			t.Fatalf("round-trip %v -> %v", m, got)
		}
	}
	if _, err := ParseMask("time+bogus"); err == nil {
		t.Fatal("ParseMask accepted bogus member")
	}
}

func TestQuickMaskWithHas(t *testing.T) {
	f := func(raw uint8) bool {
		t1 := Transparency(raw%10) + 1
		m := Mask(0).With(t1)
		return m.Has(t1) && !Mask(0).Has(t1) && m.Without(t1) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBindingSatisfies(t *testing.T) {
	b := Binding{
		ID:       "b1",
		Client:   "editor",
		Server:   "store",
		Kind:     Interrogation,
		Provides: MaskOf(Access, Location, Time),
	}
	if !b.Satisfies(MaskOf(Access)) || !b.Satisfies(MaskOf(Access, Time)) {
		t.Fatal("Satisfies false negative")
	}
	if b.Satisfies(MaskOf(Access, View)) {
		t.Fatal("Satisfies false positive")
	}
	missing := b.Missing(MaskOf(Access, View, Activity))
	if len(missing) != 2 || missing[0] != View || missing[1] != Activity {
		t.Fatalf("Missing = %v", missing)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	reqs := []Requirement{
		{Name: "information-sharing", Viewpoint: Information, Function: "information.Space"},
		{Name: "activity-support", Viewpoint: Enterprise, Function: "activity.Coordinator"},
		{Name: "org-modelling", Viewpoint: Enterprise, Function: "org.KnowledgeBase"},
		{Name: "selective-transparency", Viewpoint: Computation, Function: "transparency.Selector"},
	}
	for _, req := range reqs {
		if err := r.Add(req); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Add(reqs[0]); err == nil {
		t.Fatal("duplicate requirement accepted")
	}
	ent := r.ByViewpoint(Enterprise)
	if len(ent) != 2 || ent[0].Name != "activity-support" {
		t.Fatalf("ByViewpoint(Enterprise) = %v", ent)
	}
	all := r.All()
	if len(all) != 4 || all[0].Viewpoint != Enterprise || all[3].Viewpoint != Computation {
		t.Fatalf("All() ordering wrong: %v", all)
	}
}

func TestInteractionKindString(t *testing.T) {
	if Interrogation.String() != "interrogation" || Announcement.String() != "announcement" {
		t.Fatal("interaction kind names wrong")
	}
}
