package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"mocca/internal/observe"
)

// servicePrefixes are the Fabric address prefixes the report slices
// per-service throughput by, in canonical order.
var servicePrefixes = []string{"mta-", "repl-", "place-", "gossip-", "user-", "load-", "dsa-", "trade-", "mcu"}

// ServiceStats is one service plane's share of the run's wire traffic.
type ServiceStats struct {
	Channels  int   `json:"channels"`
	FramesOut int64 `json:"framesOut"`
	FramesIn  int64 `json:"framesIn"`
	BytesOut  int64 `json:"bytesOut"`
	BytesIn   int64 `json:"bytesIn"`
}

// Report is the deterministic outcome of one scenario run: everything in
// it — counters, histograms, digests, the fault log — is a pure function
// of the Spec, so its Fingerprint doubles as the run's reproducibility
// check.
type Report struct {
	Spec        Spec          `json:"spec"` // StoreDir blanked: temp paths must not enter the fingerprint
	SimDuration time.Duration `json:"simDuration"`

	Classes  map[string]*ClassStats  `json:"classes"`
	Services map[string]ServiceStats `json:"services"`

	Converged     bool   `json:"converged"`
	Objects       int    `json:"objects"`
	MerkleRoot    string `json:"merkleRoot"`
	Digest        string `json:"digest"`
	PendingWrites int    `json:"pendingWrites"`
	PendingMail   int    `json:"pendingMail"`

	FaultLog []string `json:"faultLog"`

	// Telemetry is present only for runs with Spec.Telemetry: the final
	// metrics snapshot (deterministically ordered by the registry) and
	// the trace counts. Both are pure functions of the spec, so the
	// fingerprint stays byte-reproducible with telemetry enabled; runs
	// without telemetry omit the section and keep their old fingerprints.
	Telemetry *TelemetryReport `json:"telemetry,omitempty"`
}

// TelemetryReport is the run's observability outcome.
type TelemetryReport struct {
	Traces  observe.TraceCounts `json:"traces"`
	Metrics []observe.Point     `json:"metrics"`
}

func (h *Harness) report(converged bool) *Report {
	r := &Report{
		Spec:        h.spec,
		SimDuration: h.clock.Now().Sub(h.start),
		Classes:     h.stats,
		Services:    make(map[string]ServiceStats),
		Converged:   converged,
		PendingMail: len(h.pendingMail),
		FaultLog:    h.faultLog,
	}
	r.Spec.StoreDir = ""
	r.Spec.Faults = h.faults
	for _, p := range h.pending {
		r.PendingWrites += len(p)
	}
	for _, prefix := range servicePrefixes {
		t := h.dep.Fabric().TotalsFor(prefix)
		r.Services[strings.TrimSuffix(prefix, "-")] = ServiceStats{
			Channels:  t.Channels,
			FramesOut: t.FramesOut,
			FramesIn:  t.FramesIn,
			BytesOut:  t.BytesOut,
			BytesIn:   t.BytesIn,
		}
	}
	if converged {
		sp := h.sites[h.org.Sites[0]].Space()
		r.Objects = sp.Len()
		r.MerkleRoot = fmt.Sprintf("%016x", sp.Tree().Root())
		r.Digest = h.commonDigest()
	}
	if tel := h.dep.Telemetry(); tel != nil {
		r.Telemetry = &TelemetryReport{
			Traces:  tel.Tracer.Counts(),
			Metrics: h.dep.Metrics().Snapshot().Points,
		}
	}
	return r
}

// commonDigest hashes every site's full version-vector digest canonically
// and returns the shared value — or "diverged" if any site disagrees,
// which the acceptance tests treat as failure. This is the byte-identical
// digest check: Merkle roots catching up is necessary, matching full
// digests is the proof.
func (h *Harness) commonDigest() string {
	var common string
	for _, name := range h.org.Sites {
		sum := sha256.New()
		digest := h.sites[name].Space().Digest()
		ids := make([]string, 0, len(digest))
		for id := range digest {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		var scratch [8]byte
		for _, id := range ids {
			sum.Write([]byte(id))
			sum.Write([]byte{0})
			vv := digest[id]
			sites := make([]string, 0, len(vv))
			for s := range vv {
				sites = append(sites, s)
			}
			sort.Strings(sites)
			for _, s := range sites {
				sum.Write([]byte(s))
				binary.BigEndian.PutUint64(scratch[:], vv[s])
				sum.Write(scratch[:])
			}
			sum.Write([]byte{0xff})
		}
		d := hex.EncodeToString(sum.Sum(nil))
		if common == "" {
			common = d
		} else if d != common {
			return "diverged"
		}
	}
	return common
}

// Fingerprint is the sha256 of the report's canonical JSON encoding.
// Same spec, same seed → same fingerprint, byte for byte; that is the
// harness's core determinism contract.
func (r *Report) Fingerprint() string {
	blob, err := json.Marshal(r)
	if err != nil {
		return "unfingerprintable: " + err.Error()
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// Summary renders a human-readable digest of the run for CLI output and
// test logs.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload: %d sites, %d users, %v traffic (%s topology), seed %d\n",
		r.Spec.Sites, r.Spec.Users, r.Spec.Duration, r.Spec.Topology, r.Spec.Seed)
	fmt.Fprintf(&b, "converged=%v objects=%d merkle=%s pendingWrites=%d pendingMail=%d\n",
		r.Converged, r.Objects, r.MerkleRoot, r.PendingWrites, r.PendingMail)
	for _, c := range Classes {
		st := r.Classes[c]
		if st == nil || st.Issued == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-12s issued=%-6d done=%-6d failed=%-4d skipped=%-4d %s\n",
			c, st.Issued, st.Completed, st.Failed, st.Skipped, st.Hist)
	}
	keys := make([]string, 0, len(r.Services))
	for k := range r.Services {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := r.Services[k]
		if s.FramesOut == 0 && s.FramesIn == 0 {
			continue
		}
		fmt.Fprintf(&b, "  svc %-8s channels=%-4d framesOut=%-8d bytesOut=%-10d framesIn=%-8d bytesIn=%d\n",
			k, s.Channels, s.FramesOut, s.BytesOut, s.FramesIn, s.BytesIn)
	}
	for _, f := range r.FaultLog {
		fmt.Fprintf(&b, "  fault: %s\n", f)
	}
	fmt.Fprintf(&b, "fingerprint: %s", r.Fingerprint())
	return b.String()
}
