// Package workload synthesizes organization-scale traffic — sites, org
// units, activities, users with Zipf-distributed object popularity and a
// diurnal arrival curve — and drives it open-loop against a
// mocca.Deployment on the simulated clock, composed with a seeded chaos
// schedule (crashes, partitions, slow links, torn WAL tails). Every run
// is byte-reproducible from its seed: the driver never spawns goroutines,
// never reads the wall clock, and never iterates a map without sorting.
package workload

import (
	"fmt"
	"math/bits"
	"time"
)

// histBuckets is the number of geometric latency buckets: bucket i covers
// [2^i, 2^(i+1)) microseconds, so 48 buckets span sub-microsecond local
// commits through partition-stretched visibility lags of several simulated
// years — everything a scenario can produce.
const histBuckets = 48

// Histogram is a fixed-boundary, power-of-two-bucketed latency histogram.
// Fixed boundaries keep two same-seed runs bucket-for-bucket identical and
// make the histogram itself part of the run fingerprint.
type Histogram struct {
	Count   int64              `json:"count"`
	SumUS   int64              `json:"sumUS"`
	MaxUS   int64              `json:"maxUS"`
	Buckets [histBuckets]int64 `json:"buckets"`
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.Count++
	h.SumUS += us
	if us > h.MaxUS {
		h.MaxUS = us
	}
	h.Buckets[bucketFor(us)]++
}

func bucketFor(us int64) int {
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Quantile returns an upper bound for the p-quantile (0 < p <= 1): the
// upper boundary of the bucket where the cumulative count crosses rank.
// Bucket-edge answers are coarse (within 2x) but deterministic, which is
// what a reproducibility harness needs.
func (h *Histogram) Quantile(p float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	rank := int64(p * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.Buckets {
		cum += c
		if cum >= rank {
			upper := int64(1) << uint(i+1)
			if h.MaxUS < upper {
				upper = h.MaxUS
			}
			return time.Duration(upper) * time.Microsecond
		}
	}
	return time.Duration(h.MaxUS) * time.Microsecond
}

// Mean returns the average observed latency.
func (h *Histogram) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumUS/h.Count) * time.Microsecond
}

// String renders the canonical p50/p99/p999 summary line.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		h.Count, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999),
		time.Duration(h.MaxUS)*time.Microsecond)
}
