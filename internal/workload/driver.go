package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"mocca"
	"mocca/internal/access"
	"mocca/internal/core"
	"mocca/internal/directory"
	"mocca/internal/information"
	"mocca/internal/mhs"
	"mocca/internal/netsim"
	"mocca/internal/observe"
	"mocca/internal/rpc"
	"mocca/internal/rtc"
	"mocca/internal/trader"
	"mocca/internal/vclock"
)

// Infrastructure addresses the harness adds to a deployment. They live
// outside every site's address group, so chaos partitions (which list
// site addresses only) never cut users off from the DSA, the trading
// service, or the MCU — faults hit the replication/mail planes while the
// access plane stays up, which is where visibility lag becomes observable.
const (
	dsaAddr   = "dsa-hub"
	tradeAddr = "trade-hub"
	// tradeServiceType is the offer type the harness exports per site so
	// trader lookups have a non-empty, deterministic answer set.
	tradeServiceType = "cscw.collab"
)

// ClassStats aggregates one op class.
type ClassStats struct {
	Issued    int64      `json:"issued"`
	Completed int64      `json:"completed"`
	Failed    int64      `json:"failed"`
	Skipped   int64      `json:"skipped"` // target site was down at issue time
	Hist      *Histogram `json:"hist"`
}

// pendingWrite tracks one information write from local commit until every
// site has applied it (or a causally newer version of the object).
type pendingWrite struct {
	class     string
	origin    string // committing site
	vv        vclock.Version
	issued    time.Time
	remaining map[string]bool
}

// Harness drives one scenario against one deployment. It is single-
// goroutine by construction: every op issues from a simulated-clock
// callback, async rpc replies land on the same event loop, and all
// randomness flows from one seeded rng — which is what makes a run
// byte-reproducible.
type Harness struct {
	spec Spec
	org  *Org
	rng  *rand.Rand
	zipf *rand.Zipf

	dep    *mocca.Deployment
	clock  *vclock.Simulated
	sites  map[string]*mocca.Site
	uas    map[string]*mhs.UserAgent
	loadEP map[string]*rpc.Endpoint
	live   map[string]bool

	sessions map[string]*rtc.Session
	joined   map[string]bool
	rtcUsers []string

	// objIDs / objOwner / objActivity are the seeded object pool in
	// synthesis order; zipf indexes into it.
	objIDs      []string
	objActivity []string

	stats       map[string]*ClassStats
	pending     map[string][]*pendingWrite
	pendingMail map[string]time.Time

	faults   []Fault
	faultLog []string

	start  time.Time // traffic-phase start (simulated)
	cursor time.Duration
	seq    int64 // per-run op counter, used to vary payloads deterministically
}

// Run executes the scenario and returns its report.
func Run(spec Spec) (*Report, error) {
	rep, _, err := run(spec)
	return rep, err
}

// RunTrace executes the scenario with telemetry forced on and also
// returns the deployment's telemetry plane, so callers (moccaload's
// -trace/-metrics flags) can export the span timeline and the metric
// families after the run.
func RunTrace(spec Spec) (*Report, *observe.Telemetry, error) {
	spec.Telemetry = true
	rep, h, err := run(spec)
	if err != nil {
		return nil, nil, err
	}
	return rep, h.dep.Telemetry(), nil
}

func run(spec Spec) (*Report, *Harness, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	h := &Harness{
		spec:        spec,
		sites:       make(map[string]*mocca.Site),
		uas:         make(map[string]*mhs.UserAgent),
		loadEP:      make(map[string]*rpc.Endpoint),
		live:        make(map[string]bool),
		sessions:    make(map[string]*rtc.Session),
		joined:      make(map[string]bool),
		stats:       make(map[string]*ClassStats),
		pending:     make(map[string][]*pendingWrite),
		pendingMail: make(map[string]time.Time),
	}
	for _, c := range Classes {
		h.stats[c] = &ClassStats{Hist: &Histogram{}}
	}
	if err := h.build(); err != nil {
		return nil, nil, err
	}
	if err := h.seedObjects(); err != nil {
		return nil, nil, err
	}
	// Drain the seeding wave so traffic starts from a converged baseline:
	// visibility latencies then measure the run's own writes, not the
	// initial bulk load.
	if !h.advanceUntilConverged(h.spec.ConvergeTimeout) {
		return nil, nil, errors.New("workload: seed data did not converge before traffic start")
	}

	h.start = h.clock.Now()
	h.scheduleFaults()
	h.armNextArrival()
	h.clock.Advance(h.spec.Duration)

	converged := h.advanceUntilConverged(h.spec.ConvergeTimeout)
	// A fixed post-convergence grace drains in-flight mail retries (a
	// recipient site that restarted late in the window is still being
	// redelivered to). Mail never touches the information space, so the
	// convergence verdict stands.
	h.clock.Advance(mailDrainGrace)
	return h.report(converged), h, nil
}

// mailDrainGrace is simulated, not wall-clock, time: one minute covers
// the MTA's full retry backoff ladder.
const mailDrainGrace = time.Minute

// --- construction --------------------------------------------------------

func (h *Harness) build() error {
	opts := []mocca.Option{
		mocca.WithSeed(h.spec.Seed),
		mocca.WithSyncInterval(h.spec.SyncInterval),
	}
	if h.spec.Topology == "gossip" {
		opts = append(opts, mocca.WithGossip())
	}
	if h.spec.Telemetry {
		opts = append(opts, mocca.WithTelemetry())
	}
	if h.spec.StoreDir != "" {
		opts = append(opts, mocca.WithDurableStore(h.spec.StoreDir))
	}
	h.dep = mocca.NewDeployment(opts...)
	h.clock = h.dep.Clock()
	h.rng = rand.New(rand.NewSource(h.spec.Seed))
	h.org = SynthesizeOrg(h.spec, h.rng)
	h.zipf = rand.NewZipf(h.rng, h.spec.ZipfS, h.spec.ZipfV, uint64(h.spec.Objects-1))

	for i, name := range h.org.Sites {
		site := h.dep.AddSite(name, h.org.Domains[i])
		h.sites[name] = site
		h.live[name] = true
		h.subscribeSite(name)
		site.MTA().Watch(h.onDeliver)
		h.loadEP[name] = h.dep.ServiceEndpoint("load-" + name)
	}
	acl := h.dep.Env().Access()
	for _, u := range h.org.Users {
		h.uas[u.Name] = h.sites[u.Site].AddUser(u.Name)
		// The interchange space is organization-shared: anyone may read
		// and update. Without the grant the default-deny ACL would turn
		// every cross-user update into a denial.
		acl.GrantPrincipal(u.Name, access.OpRead, "*")
		acl.GrantPrincipal(u.Name, access.OpWrite, "*")
	}
	if err := h.seedDirectory(); err != nil {
		return err
	}
	directory.NewServer(h.dep.ServiceEndpoint(dsaAddr), h.dep.Env().Directory())
	trader.NewServer(h.dep.ServiceEndpoint(tradeAddr), h.dep.Env().Trader())
	for _, name := range h.org.Sites {
		if err := h.dep.RegisterTradingService(tradeServiceType, "wl-"+name, "load-"+name,
			map[string]string{"site": name}); err != nil {
			return err
		}
	}
	// Conference sessions exist up front (creation is local); joins are
	// traffic. A user in several activities confers in the first one.
	seen := make(map[string]bool)
	for _, act := range h.org.Activities {
		cid, err := h.dep.Conferencing().CreateConference(act.ID, rtc.ModeOpen)
		if err != nil {
			return err
		}
		for _, m := range act.Members {
			if seen[m] {
				continue
			}
			seen[m] = true
			sess, err := h.dep.NewConferenceSession(cid, m)
			if err != nil {
				return err
			}
			h.sessions[m] = sess
			h.rtcUsers = append(h.rtcUsers, m)
		}
	}
	sort.Strings(h.rtcUsers)
	return nil
}

func (h *Harness) seedDirectory() error {
	dit := h.dep.Env().Directory()
	add := func(dn string, attrs directory.Attributes) error {
		parsed, err := directory.ParseDN(dn)
		if err != nil {
			return err
		}
		if err := dit.Add(parsed, attrs); err != nil && !errors.Is(err, directory.ErrEntryExists) {
			return err
		}
		return nil
	}
	if err := add("o=mocca", directory.Attributes{"o": {"mocca"}}); err != nil {
		return err
	}
	for _, unit := range h.org.Units {
		if err := add("ou="+unit+",o=mocca", directory.Attributes{"ou": {unit}}); err != nil {
			return err
		}
	}
	for _, u := range h.org.Users {
		attrs := directory.Attributes{
			"cn":   {u.Name},
			"site": {u.Site},
			"mail": {u.Name + "@" + u.Site + ".example"},
		}
		if err := add(h.org.DN(u), attrs); err != nil {
			return err
		}
	}
	return nil
}

func (h *Harness) seedObjects() error {
	for _, o := range h.org.Objects {
		site := h.org.SiteOf(o.Owner)
		obj, err := h.sites[site].Space().Put(o.Owner, core.SharedSchemaName, map[string]string{
			"title":   "seed " + o.ID,
			"body":    "shared working material for " + o.Activity,
			"author":  o.Owner,
			"context": o.Activity,
		})
		if err != nil {
			return fmt.Errorf("workload: seed %s at %s: %w", o.ID, site, err)
		}
		h.objIDs = append(h.objIDs, obj.ID)
		h.objActivity = append(h.objActivity, o.Activity)
	}
	return nil
}

// subscribeSite (re)wires the write-visibility probe onto a site's current
// Space. Site.Restart swaps the Space object, so the chaos executor calls
// this again after every restart.
func (h *Harness) subscribeSite(name string) {
	h.sites[name].Space().Subscribe("", func(ev information.Event) {
		h.onSpaceEvent(name, ev)
	})
}

// --- traffic -------------------------------------------------------------

// meanOpsPerSec is the diurnal-average arrival rate across all users.
func (h *Harness) meanOpsPerSec() float64 {
	return float64(h.spec.Users) * h.spec.OpsPerUserHour / 3600
}

func (h *Harness) rateAt(t time.Duration) float64 {
	phase := 2 * math.Pi * float64(t) / float64(h.spec.DiurnalPeriod)
	return h.meanOpsPerSec() * (1 + h.spec.DiurnalAmplitude*math.Sin(phase))
}

// armNextArrival schedules the next op via Lewis thinning: draw candidate
// arrivals at the diurnal peak rate, accept each with probability
// rate(t)/peak. Open loop: arrivals never wait for completions.
func (h *Harness) armNextArrival() {
	peak := h.meanOpsPerSec() * (1 + h.spec.DiurnalAmplitude)
	for {
		h.cursor += time.Duration(h.rng.ExpFloat64() / peak * float64(time.Second))
		if h.cursor >= h.spec.Duration {
			return
		}
		if h.rng.Float64() > h.rateAt(h.cursor)/peak {
			continue
		}
		at := h.start.Add(h.cursor)
		h.clock.AfterFunc(at.Sub(h.clock.Now()), func() {
			h.issueOp()
			h.armNextArrival()
		})
		return
	}
}

func (h *Harness) issueOp() {
	h.seq++
	w := h.spec.Mix.weights()
	var total float64
	for _, x := range w {
		total += x
	}
	pick := h.rng.Float64() * total
	idx := 0
	for i, x := range w {
		if pick < x || i == len(w)-1 {
			idx = i
			break
		}
		pick -= x
	}
	user := h.org.Users[h.rng.Intn(len(h.org.Users))]
	switch Classes[idx] {
	case ClassWrite:
		h.opWrite(user)
	case ClassUpdate:
		h.opUpdate(user)
	case ClassMail:
		h.opMail(user)
	case ClassDir:
		h.opDirLookup(user)
	case ClassTrade:
		h.opTradeLookup(user)
	case ClassJoin:
		h.opJoin()
	case ClassSet:
		h.opSet()
	}
}

// trackWrite registers a committed write for visibility tracking across
// every other site. The writer's own "put"/"update" event fired
// synchronously inside the commit, before registration — hence the
// exclusion. A single-site deployment is visible immediately.
func (h *Harness) trackWrite(class string, obj *information.Object, committedAt string) {
	st := h.stats[class]
	remaining := make(map[string]bool, len(h.org.Sites)-1)
	for _, s := range h.org.Sites {
		if s != committedAt {
			remaining[s] = true
		}
	}
	if len(remaining) == 0 {
		st.Completed++
		st.Hist.Observe(0)
		return
	}
	h.pending[obj.ID] = append(h.pending[obj.ID], &pendingWrite{
		class:     class,
		origin:    committedAt,
		vv:        obj.VV.Clone(),
		issued:    h.clock.Now(),
		remaining: remaining,
	})
}

// dropLostWrites retires pending writes that a lossy crash destroyed: the
// committing site went down without a durable store (or with its WAL tail
// torn) before any peer applied the write, so no replica can ever
// propagate it. They count as failed, not slow — an honest open-loop
// harness reports durability loss instead of waiting for it forever.
func (h *Harness) dropLostWrites(site string) {
	ids := make([]string, 0, len(h.pending))
	for id := range h.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		list := h.pending[id]
		keep := list[:0]
		for _, p := range list {
			if p.origin == site && len(p.remaining) == len(h.org.Sites)-1 {
				h.stats[p.class].Failed++
				continue
			}
			keep = append(keep, p)
		}
		if len(keep) == 0 {
			delete(h.pending, id)
		} else {
			h.pending[id] = keep
		}
	}
}

func (h *Harness) opWrite(u User) {
	st := h.stats[ClassWrite]
	st.Issued++
	if !h.live[u.Site] {
		st.Skipped++
		return
	}
	act := h.org.Activities[h.rng.Intn(len(h.org.Activities))]
	obj, err := h.sites[u.Site].Space().Put(u.Name, core.SharedSchemaName, map[string]string{
		"title":   fmt.Sprintf("note %d", h.seq),
		"body":    fmt.Sprintf("drafted by %s for %s", u.Name, act.ID),
		"author":  u.Name,
		"context": act.ID,
	})
	if err != nil {
		st.Failed++
		return
	}
	h.trackWrite(ClassWrite, obj, u.Site)
}

func (h *Harness) opUpdate(u User) {
	st := h.stats[ClassUpdate]
	st.Issued++
	if !h.live[u.Site] {
		st.Skipped++
		return
	}
	i := int(h.zipf.Uint64())
	sp := h.sites[u.Site].Space()
	cur, err := sp.Get(u.Name, h.objIDs[i])
	if err != nil {
		st.Failed++
		return
	}
	obj, err := sp.Update(u.Name, cur.ID, cur.Version, map[string]string{
		"body":   fmt.Sprintf("rev %d by %s", h.seq, u.Name),
		"author": u.Name,
	})
	if err != nil {
		st.Failed++
		return
	}
	h.trackWrite(ClassUpdate, obj, u.Site)
}

func (h *Harness) opMail(u User) {
	st := h.stats[ClassMail]
	st.Issued++
	if !h.live[u.Site] {
		st.Skipped++
		return
	}
	rcpt := h.org.Users[h.rng.Intn(len(h.org.Users))]
	id, err := h.uas[u.Name].Send([]mhs.ORName{h.uas[rcpt.Name].Name},
		fmt.Sprintf("update %d", h.seq), "status report")
	if err != nil {
		st.Failed++
		return
	}
	h.pendingMail[id] = h.clock.Now()
}

// onDeliver completes a tracked mail on its arrival in the recipient
// mailbox. Unknown messages (probes, duplicate redeliveries) are ignored.
func (h *Harness) onDeliver(_ mhs.ORName, msg *mhs.StoredMessage) {
	t0, ok := h.pendingMail[msg.Envelope.MessageID]
	if !ok {
		return
	}
	delete(h.pendingMail, msg.Envelope.MessageID)
	st := h.stats[ClassMail]
	st.Completed++
	st.Hist.Observe(h.clock.Now().Sub(t0))
}

func (h *Harness) opDirLookup(u User) {
	st := h.stats[ClassDir]
	st.Issued++
	target := h.org.Users[h.rng.Intn(len(h.org.Users))]
	req := struct {
		Base      string `json:"base"`
		Scope     int    `json:"scope"`
		Filter    string `json:"filter"`
		SizeLimit int    `json:"sizeLimit,omitempty"`
	}{
		Base:      "ou=" + target.Unit + ",o=mocca",
		Scope:     int(directory.ScopeSubtree),
		Filter:    "(cn=" + target.Name + ")",
		SizeLimit: 8,
	}
	t0 := h.clock.Now()
	h.loadEP[u.Site].GoJSON(dsaAddr, directory.MethodSearch, req, func(r rpc.Result) {
		var resp struct {
			Entries []directory.WireEntry `json:"entries"`
		}
		if err := r.Decode(&resp); err != nil || len(resp.Entries) == 0 {
			st.Failed++
			return
		}
		st.Completed++
		st.Hist.Observe(h.clock.Now().Sub(t0))
	})
}

func (h *Harness) opTradeLookup(u User) {
	st := h.stats[ClassTrade]
	st.Issued++
	req := struct {
		ServiceType string `json:"serviceType"`
		MaxOffers   int    `json:"maxOffers,omitempty"`
	}{ServiceType: tradeServiceType, MaxOffers: 3}
	t0 := h.clock.Now()
	h.loadEP[u.Site].GoJSON(tradeAddr, trader.MethodImport, req, func(r rpc.Result) {
		var resp struct {
			Offers []trader.WireOffer `json:"offers"`
		}
		if err := r.Decode(&resp); err != nil || len(resp.Offers) == 0 {
			st.Failed++
			return
		}
		st.Completed++
		st.Hist.Observe(h.clock.Now().Sub(t0))
	})
}

func (h *Harness) opJoin() {
	st := h.stats[ClassJoin]
	st.Issued++
	m := h.rtcUsers[h.rng.Intn(len(h.rtcUsers))]
	if h.joined[m] {
		st.Skipped++
		return
	}
	t0 := h.clock.Now()
	h.sessions[m].GoJoin(func(err error) {
		if err != nil {
			st.Failed++
			return
		}
		h.joined[m] = true
		st.Completed++
		st.Hist.Observe(h.clock.Now().Sub(t0))
	})
}

func (h *Harness) opSet() {
	st := h.stats[ClassSet]
	st.Issued++
	m := h.rtcUsers[h.rng.Intn(len(h.rtcUsers))]
	if !h.joined[m] {
		st.Skipped++
		return
	}
	t0 := h.clock.Now()
	h.sessions[m].GoSet(fmt.Sprintf("cursor-%s", m), fmt.Sprintf("pos %d", h.seq), func(err error) {
		if err != nil {
			st.Failed++
			return
		}
		st.Completed++
		st.Hist.Observe(h.clock.Now().Sub(t0))
	})
}

// onSpaceEvent resolves pending writes as their versions surface at each
// site. A causally newer version counts: an update superseded under LWW
// still became visible — merged — everywhere.
func (h *Harness) onSpaceEvent(site string, ev information.Event) {
	if ev.Object == nil {
		return
	}
	list, ok := h.pending[ev.Object.ID]
	if !ok {
		return
	}
	keep := list[:0]
	for _, p := range list {
		if p.remaining[site] {
			if ord := ev.Object.VV.Compare(p.vv); ord == vclock.Equal || ord == vclock.After {
				delete(p.remaining, site)
			}
		}
		if len(p.remaining) == 0 {
			st := h.stats[p.class]
			st.Completed++
			st.Hist.Observe(h.clock.Now().Sub(p.issued))
			continue
		}
		keep = append(keep, p)
	}
	if len(keep) == 0 {
		delete(h.pending, ev.Object.ID)
	} else {
		h.pending[ev.Object.ID] = keep
	}
}

// --- chaos ---------------------------------------------------------------

func (h *Harness) scheduleFaults() {
	h.faults = h.spec.Faults
	if h.faults == nil && h.spec.Chaos != nil {
		h.faults = generateFaults(h.spec, h.org, h.rng)
	}
	sort.SliceStable(h.faults, func(i, j int) bool { return h.faults[i].At < h.faults[j].At })
	for _, f := range h.faults {
		f := f
		h.faultLog = append(h.faultLog, f.String())
		h.clock.AfterFunc(f.At, func() { h.applyFault(f) })
	}
}

func (h *Harness) applyFault(f Fault) {
	switch f.Kind {
	case "crash", "tornwal":
		site, ok := h.sites[f.Site]
		if !ok || !h.live[f.Site] {
			return
		}
		site.Crash()
		h.live[f.Site] = false
		if f.Kind == "tornwal" {
			h.tearWAL(f.Site, f.TornBytes)
		}
		if h.spec.StoreDir == "" || f.Kind == "tornwal" {
			// No WAL to recover from (or a torn one): writes nobody else
			// has applied yet died with the site.
			h.dropLostWrites(f.Site)
		}
		h.clock.AfterFunc(f.Duration, func() {
			if err := site.Restart(); err != nil {
				h.faultLog = append(h.faultLog, "restart "+f.Site+" failed: "+err.Error())
				return
			}
			h.live[f.Site] = true
			h.subscribeSite(f.Site)
		})
	case "partition":
		inA := make(map[string]bool, len(f.Sites))
		for _, s := range f.Sites {
			inA[s] = true
		}
		var a, b []netsim.Address
		for _, s := range h.org.Sites {
			if inA[s] {
				a = append(a, h.siteAddrs(s)...)
			} else {
				b = append(b, h.siteAddrs(s)...)
			}
		}
		h.dep.Network().Partition(a, b)
		h.clock.AfterFunc(f.Duration, func() { h.dep.Network().Heal() })
	case "slowlink":
		slow := netsim.LinkProfile{Latency: 400 * time.Millisecond, Loss: 0.2}
		normal := netsim.LinkProfile{Latency: 20 * time.Millisecond}
		a := netsim.Address("repl-" + f.Site)
		b := netsim.Address("repl-" + f.Peer)
		h.dep.Network().SetLink(a, b, slow)
		h.dep.Network().SetLink(b, a, slow)
		h.clock.AfterFunc(f.Duration, func() {
			h.dep.Network().SetLink(a, b, normal)
			h.dep.Network().SetLink(b, a, normal)
		})
	}
}

// tearWAL truncates the tail of a crashed site's write-ahead log,
// modelling a torn final write that the crash interrupted. Recovery must
// drop the torn suffix and anti-entropy must re-fetch whatever was lost.
func (h *Harness) tearWAL(site string, tornBytes int) {
	path := filepath.Join(h.spec.StoreDir, site, "wal.log")
	info, err := os.Stat(path)
	if err != nil {
		return
	}
	size := info.Size() - int64(tornBytes)
	if size < 0 {
		size = 0
	}
	_ = os.Truncate(path, size)
}

// siteAddrs lists the site-plane addresses a partition moves as a group.
func (h *Harness) siteAddrs(site string) []netsim.Address {
	addrs := []netsim.Address{
		netsim.Address("mta-" + site),
		netsim.Address("repl-" + site),
		netsim.Address("place-" + site),
	}
	if h.spec.Topology == "gossip" {
		addrs = append(addrs, netsim.Address("gossip-"+site))
	}
	return addrs
}

// generateFaults derives a fault timeline from the run seed. Everything
// lands inside [10%, 70%] of the traffic window and heals by 90%, so a
// chaotic run always gets a fault-free tail before convergence is judged.
func generateFaults(spec Spec, org *Org, rng *rand.Rand) []Fault {
	c := spec.Chaos
	var out []Fault
	window := func() (at, dur time.Duration) {
		lo, hi := spec.Duration/10, spec.Duration*7/10
		if hi <= lo {
			hi = lo + 1
		}
		at = lo + time.Duration(rng.Int63n(int64(hi-lo)))
		dur = c.OutageMin + time.Duration(rng.Int63n(int64(c.OutageMax-c.OutageMin)+1))
		if at+dur > spec.Duration*9/10 {
			dur = spec.Duration*9/10 - at
		}
		return at, dur
	}
	crashes := c.Crashes
	if crashes > len(org.Sites)-1 {
		crashes = len(org.Sites) - 1 // never crash the whole organization
	}
	perm := rng.Perm(len(org.Sites))
	for i := 0; i < crashes; i++ {
		at, dur := window()
		f := Fault{At: at, Kind: "crash", Site: org.Sites[perm[i]], Duration: dur}
		if i < c.TornTails {
			f.Kind = "tornwal"
			f.TornBytes = 1 + rng.Intn(64)
		}
		out = append(out, f)
	}
	for i := 0; i < c.Partitions; i++ {
		at, dur := window()
		p := rng.Perm(len(org.Sites))
		half := len(org.Sites) / 2
		group := make([]string, 0, half)
		for _, j := range p[:half] {
			group = append(group, org.Sites[j])
		}
		sort.Strings(group)
		out = append(out, Fault{At: at, Kind: "partition", Sites: group, Duration: dur})
	}
	for i := 0; i < c.SlowLinks; i++ {
		at, dur := window()
		p := rng.Perm(len(org.Sites))
		out = append(out, Fault{At: at, Kind: "slowlink",
			Site: org.Sites[p[0]], Peer: org.Sites[p[1]], Duration: dur})
	}
	return out
}

// --- convergence ---------------------------------------------------------

// advanceUntilConverged advances simulated time event-by-event until every
// site is live with identical Merkle roots and object counts, or until
// budget elapses (or the event queue drains) first.
func (h *Harness) advanceUntilConverged(budget time.Duration) bool {
	deadline := h.clock.Now().Add(budget)
	for !h.rootsConverged() {
		d, ok := h.clock.NextDeadline()
		if !ok || d.After(deadline) {
			return h.rootsConverged()
		}
		h.clock.AdvanceTo(d)
	}
	return true
}

func (h *Harness) rootsConverged() bool {
	var root uint64
	var count, first = 0, true
	for _, name := range h.org.Sites {
		if !h.live[name] {
			return false
		}
		sp := h.sites[name].Space()
		if first {
			root, count, first = sp.Tree().Root(), sp.Len(), false
			continue
		}
		if sp.Tree().Root() != root || sp.Len() != count {
			return false
		}
	}
	return true
}
