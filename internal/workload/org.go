package workload

import (
	"fmt"
	"math/rand"
)

// User is one synthesized member of the organization.
type User struct {
	Name string // "u00042"
	Site string // home site
	Unit string // org unit
}

// Activity is one synthesized collaboration: an org unit's members
// sharing a conference and a slice of the object pool.
type Activity struct {
	ID      string
	Unit    string
	Members []string // user names; bounded, these are the rtc participants
}

// Object is one synthesized shared-information object.
type Object struct {
	ID       string
	Owner    string // user name; its home site is the owner's site
	Activity string // context activity
}

// Org is a deterministic synthetic organization: every slice is in
// creation order and every assignment came from the org's own seeded rng,
// so the same (spec, seed) always yields the same org.
type Org struct {
	Sites      []string
	Domains    []string
	Units      []string
	Users      []User
	Activities []Activity
	Objects    []Object

	siteOf map[string]string // user -> site
}

// maxConfMembers bounds an activity's conference size: rtc fan-out is
// O(members) per event, and CSCW conferences are meetings, not stadiums.
const maxConfMembers = 8

// SynthesizeOrg builds the organization for a spec. All randomness comes
// from rng; the caller seeds it from the run seed.
func SynthesizeOrg(spec Spec, rng *rand.Rand) *Org {
	o := &Org{siteOf: make(map[string]string)}
	for i := 0; i < spec.Sites; i++ {
		name := fmt.Sprintf("s%03d", i)
		o.Sites = append(o.Sites, name)
		o.Domains = append(o.Domains, name+".example")
	}
	for i := 0; i < spec.OrgUnits; i++ {
		o.Units = append(o.Units, fmt.Sprintf("ou%03d", i))
	}
	// Users round-robin across sites and units: the load is spatially
	// uniform, the popularity skew (Zipf over objects) carries the heat.
	for i := 0; i < spec.Users; i++ {
		u := User{
			Name: fmt.Sprintf("u%05d", i),
			Site: o.Sites[i%len(o.Sites)],
			Unit: o.Units[i%len(o.Units)],
		}
		o.Users = append(o.Users, u)
		o.siteOf[u.Name] = u.Site
	}
	// Activities draw their members from one unit, capped at conference
	// size. Member choice is rng-driven but order-stable.
	byUnit := make(map[string][]string)
	for _, u := range o.Users {
		byUnit[u.Unit] = append(byUnit[u.Unit], u.Name)
	}
	for i := 0; i < spec.Activities; i++ {
		unit := o.Units[i%len(o.Units)]
		pool := byUnit[unit]
		n := maxConfMembers
		if n > len(pool) {
			n = len(pool)
		}
		members := make([]string, 0, n)
		seen := make(map[int]bool)
		for len(members) < n {
			j := rng.Intn(len(pool))
			if seen[j] {
				continue
			}
			seen[j] = true
			members = append(members, pool[j])
		}
		o.Activities = append(o.Activities, Activity{
			ID:      fmt.Sprintf("act%04d", i),
			Unit:    unit,
			Members: members,
		})
	}
	// Objects get an rng-picked owner (home site) and a context activity.
	for i := 0; i < spec.Objects; i++ {
		owner := o.Users[rng.Intn(len(o.Users))]
		act := o.Activities[rng.Intn(len(o.Activities))]
		o.Objects = append(o.Objects, Object{
			ID:       fmt.Sprintf("obj%05d", i),
			Owner:    owner.Name,
			Activity: act.ID,
		})
	}
	return o
}

// SiteOf reports a user's home site.
func (o *Org) SiteOf(user string) string { return o.siteOf[user] }

// DN renders a user's directory distinguished name.
func (o *Org) DN(u User) string {
	return fmt.Sprintf("cn=%s,ou=%s,o=mocca", u.Name, u.Unit)
}
