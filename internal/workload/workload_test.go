package workload

import (
	"testing"
	"time"
)

// smokeSpec is a small chaotic scenario that runs in well under a second:
// the always-on guard that the harness itself works.
func smokeSpec(seed int64) Spec {
	return Spec{
		Seed:           seed,
		Sites:          5,
		Users:          150,
		Objects:        60,
		Duration:       40 * time.Second,
		OpsPerUserHour: 240,
		Chaos:          &ChaosSpec{Crashes: 1, Partitions: 1, SlowLinks: 1},
	}
}

func TestWorkloadSmoke(t *testing.T) {
	rep, err := Run(smokeSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Summary())
	if !rep.Converged {
		t.Fatal("smoke scenario did not reconverge")
	}
	if rep.Digest == "" || rep.Digest == "diverged" {
		t.Fatalf("digest = %q, want a common value", rep.Digest)
	}
	if rep.PendingWrites != 0 {
		t.Errorf("%d writes never became visible everywhere", rep.PendingWrites)
	}
	if len(rep.FaultLog) < 3 {
		t.Errorf("fault log %v, want the 3 scheduled faults", rep.FaultLog)
	}
	for _, class := range Classes {
		st := rep.Classes[class]
		if st.Issued == 0 {
			t.Errorf("class %s: no ops issued", class)
		}
		if st.Completed == 0 {
			t.Errorf("class %s: no ops completed", class)
		}
	}
	// Throughput slicing must see the planes the traffic exercised.
	for _, svc := range []string{"mta", "repl", "load", "user", "mcu"} {
		if rep.Services[svc].FramesOut == 0 {
			t.Errorf("service %s: no frames recorded", svc)
		}
	}
}

// TestWorkloadDeterminism is the regression gate for the harness's core
// contract: two same-seed runs are byte-identical — Fabric totals,
// histograms, digests, fault log, everything the fingerprint covers —
// and a different seed yields a different schedule. Wall-clock reads,
// goroutine scheduling, or map-iteration order leaking anywhere into the
// driver shows up here as a fingerprint mismatch.
func TestWorkloadDeterminism(t *testing.T) {
	a, err := Run(smokeSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smokeSpec(11))
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same seed, different runs:\n%s\n---\n%s", a.Summary(), b.Summary())
	}
	// Spot-check the components the fingerprint summarises, so a failure
	// in the full comparison has a more specific twin here.
	if a.Digest != b.Digest {
		t.Errorf("digests differ: %s vs %s", a.Digest, b.Digest)
	}
	for _, class := range Classes {
		if *a.Classes[class].Hist != *b.Classes[class].Hist {
			t.Errorf("class %s histograms differ", class)
		}
	}
	if a.Services["repl"] != b.Services["repl"] {
		t.Errorf("replication totals differ: %+v vs %+v", a.Services["repl"], b.Services["repl"])
	}

	c, err := Run(smokeSpec(12))
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different seeds produced identical runs")
	}
	if c.FaultLog[0] == a.FaultLog[0] && c.FaultLog[1] == a.FaultLog[1] {
		t.Errorf("different seeds produced the same fault schedule: %v", c.FaultLog)
	}
}

// TestWorkloadTelemetryFingerprint: a telemetry run carries the metrics
// snapshot and trace counts in its report, and stays as reproducible as
// an untraced one — same spec, same fingerprint, byte for byte. And a
// run without telemetry must not grow the section at all, so its
// fingerprints are unchanged from before the telemetry plane existed.
func TestWorkloadTelemetryFingerprint(t *testing.T) {
	spec := smokeSpec(31)
	spec.Telemetry = true
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Telemetry == nil {
		t.Fatal("telemetry run produced no Report.Telemetry section")
	}
	if a.Telemetry.Traces.Spans == 0 || a.Telemetry.Traces.Traces == 0 {
		t.Fatalf("no spans traced: %+v", a.Telemetry.Traces)
	}
	if len(a.Telemetry.Metrics) == 0 {
		t.Fatal("no metric points in the report")
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("telemetry broke reproducibility:\n%s\n---\n%s", a.Summary(), b.Summary())
	}

	// RunTrace forces telemetry on and hands back the live plane.
	plain := smokeSpec(31)
	rep, tel, err := RunTrace(plain)
	if err != nil {
		t.Fatal(err)
	}
	if tel == nil || rep.Telemetry == nil {
		t.Fatal("RunTrace returned no telemetry")
	}
	if rep.Fingerprint() != a.Fingerprint() {
		t.Fatal("RunTrace(spec) differs from Run(spec with Telemetry)")
	}
	if len(tel.Tracer.Spans()) == 0 {
		t.Fatal("RunTrace telemetry retained no spans")
	}

	// Without the flag the section must be absent from the JSON entirely.
	off, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if off.Telemetry != nil {
		t.Fatal("untraced run grew a telemetry section")
	}
}

// TestWorkloadGossipTopology runs the same smoke scenario over the
// epidemic overlay instead of the full mesh.
func TestWorkloadGossipTopology(t *testing.T) {
	spec := smokeSpec(21)
	spec.Topology = "gossip"
	spec.Sites = 8
	spec.ConvergeTimeout = 20 * time.Minute
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Summary())
	if !rep.Converged {
		t.Fatal("gossip scenario did not reconverge")
	}
	if rep.Services["gossip"].FramesOut == 0 {
		t.Error("no overlay traffic recorded under gossip topology")
	}
}

// TestWorkloadTornWAL crashes a durable site, tears the WAL tail while it
// is down, and requires recovery plus anti-entropy to reconverge anyway.
func TestWorkloadTornWAL(t *testing.T) {
	spec := smokeSpec(31)
	spec.StoreDir = t.TempDir()
	spec.Chaos = &ChaosSpec{Crashes: 2, TornTails: 2, Partitions: 1}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Summary())
	if !rep.Converged {
		t.Fatal("torn-WAL scenario did not reconverge")
	}
	if rep.PendingWrites != 0 {
		t.Errorf("%d writes lost to the torn tail", rep.PendingWrites)
	}
	torn := 0
	for _, f := range rep.FaultLog {
		if len(f) > 0 && containsTorn(f) {
			torn++
		}
	}
	if torn != 2 {
		t.Errorf("fault log shows %d torn-WAL faults, want 2: %v", torn, rep.FaultLog)
	}
}

func containsTorn(s string) bool {
	for i := 0; i+7 <= len(s); i++ {
		if s[i:i+7] == "tornwal" {
			return true
		}
	}
	return false
}

// TestWorkloadScenarioAcceptance is the organization-scale gate from the
// roadmap: 32 sites and 10⁴ synthesized users under a seeded
// crash+partition+heal (and torn-WAL) schedule must reconverge to
// byte-identical digests and Merkle roots, with p99 write visibility
// bounded by the fault schedule's worst outage.
func TestWorkloadScenarioAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("organization-scale scenario skipped in -short")
	}
	spec := Spec{
		Seed:           1992,
		Sites:          32,
		Users:          10_000,
		Objects:        2_000,
		Duration:       2 * time.Minute,
		OpsPerUserHour: 12, // ~67k ops over the window
		StoreDir:       t.TempDir(),
		Chaos: &ChaosSpec{
			Crashes:    3,
			TornTails:  1,
			Partitions: 2,
			SlowLinks:  2,
			OutageMin:  5 * time.Second,
			OutageMax:  15 * time.Second,
		},
		ConvergeTimeout: 30 * time.Minute,
	}
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", rep.Summary())

	if !rep.Converged {
		t.Fatal("32-site organization did not reconverge after chaos")
	}
	if rep.Digest == "" || rep.Digest == "diverged" {
		t.Fatalf("digest = %q, want byte-identical digests at every site", rep.Digest)
	}
	if rep.MerkleRoot == "" {
		t.Fatal("no common Merkle root")
	}
	if rep.PendingWrites != 0 {
		t.Errorf("%d writes never reached every site", rep.PendingWrites)
	}
	// p99 write visibility is bounded by the chaos schedule: a write can
	// land just as a partition starts and must wait out the outage plus
	// sync rounds. Two sync intervals of slack on top of the worst
	// outage keeps the bound tight enough to catch a convergence
	// regression but stable across seeds.
	bound := spec.Chaos.OutageMax + 2*5*time.Second
	for _, class := range []string{ClassWrite, ClassUpdate} {
		st := rep.Classes[class]
		if st.Completed == 0 {
			t.Errorf("class %s: nothing completed", class)
			continue
		}
		if p99 := st.Hist.Quantile(0.99); p99 > bound {
			t.Errorf("class %s: p99 visibility %v exceeds %v", class, p99, bound)
		}
	}
	// The acceptance report must carry per-class tail latencies.
	for _, class := range Classes {
		st := rep.Classes[class]
		if st.Issued == 0 {
			t.Errorf("class %s: absent from organization-scale mix", class)
			continue
		}
		t.Logf("%-12s p50=%v p99=%v p999=%v", class,
			st.Hist.Quantile(0.50), st.Hist.Quantile(0.99), st.Hist.Quantile(0.999))
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Quantile(0.5); got < 256*time.Millisecond || got > 1024*time.Millisecond {
		t.Errorf("p50 = %v, want within a bucket of ~500ms", got)
	}
	if got := h.Quantile(1.0); got != time.Second {
		t.Errorf("p100 = %v, want 1s (clamped to max)", got)
	}
	if h.Count != 1000 {
		t.Errorf("count = %d", h.Count)
	}
	var zero Histogram
	if zero.Quantile(0.99) != 0 || zero.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}
